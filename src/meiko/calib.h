// Calibration constants for the Meiko CS/2 model.
//
// The CS/2 node pairs a 40 MHz SPARC main processor with a 10 MHz Elan
// communications co-processor; nodes connect through a fat-tree network
// with hardware broadcast, and the Elan drives a DMA engine whose best
// observed bandwidth in the paper is 39 MB/s (Fig. 3).
//
// Constants are chosen so the modelled stacks land on the paper's measured
// endpoints:
//   * raw tport widget 1-byte round trip       =  52 us   (Fig. 2)
//   * low-latency MPI (SPARC matching) 1 B RTT = 104 us   (Fig. 2)
//   * MPICH-over-tport 1 B RTT                 = 210 us   (Fig. 2)
//   * eager/rendezvous crossover               = 180 bytes (Fig. 1)
//   * DMA asymptotic bandwidth                 =  39 MB/s  (Fig. 3)
// The split between SPARC-side and Elan-side cost within a path follows the
// paper's qualitative description (the 10 MHz Elan is the slow matching
// engine; SPARC-Elan synchronisation is the extra tax on the MPICH path).
#pragma once

#include <cstdint>

#include "src/util/time.h"

namespace lcmpi::meiko {

struct Calib {
  // --- raw network fabric -------------------------------------------------
  /// One switch traversal of the CS/2 fat tree (few hundred ns in hardware;
  /// we charge a single figure per network crossing).
  Duration wire_latency = microseconds(1.0);

  // --- remote transactions (small control packets / envelope deposits) ----
  /// SPARC writes a command descriptor into the Elan input queue.
  Duration sparc_issue_txn = microseconds(2.0);
  /// Source Elan formats and launches the transaction packet.
  Duration elan_txn_tx = microseconds(4.0);
  /// Per-byte cost of moving transaction payload through the Elan.
  Duration txn_per_byte = nanoseconds(12);
  /// Destination Elan deposits the payload and raises the event flag.
  Duration elan_txn_rx = microseconds(4.5);
  /// SPARC observes the event and reads the deposited slot.
  Duration sparc_poll_deliver = microseconds(4.0);

  // --- remote-word / remote-event transactions (one-sided RMA) ------------
  // The paper's remote-transaction machinery writes words into remote
  // memory and raises remote events WITHOUT the envelope-slot protocol a
  // full MPI transaction carries, so each leg is cheaper than the
  // elan_txn_* pair above. These drive Machine::rma_txn — the modelled
  // RDMA analog behind MPI_Put/Get/Accumulate (src/core/win.h).
  /// SPARC issues a remote-word command (a store to the Elan command
  /// port; no descriptor build).
  Duration sparc_issue_rma = microseconds(1.0);
  /// Source Elan formats and launches the remote-word packet.
  Duration elan_rma_tx = microseconds(1.5);
  /// Per-byte cost of remote-word payload through the Elan.
  Duration rma_per_byte = nanoseconds(12);
  /// Destination Elan deposits the words and raises the remote event (no
  /// envelope-slot bookkeeping).
  Duration elan_rma_event_rx = microseconds(2.0);

  // --- DMA engine ----------------------------------------------------------
  /// SPARC builds a DMA descriptor.
  Duration dma_setup_sparc = microseconds(3.0);
  /// Elan programs the engine / processes a DMA request arriving by wire.
  Duration dma_setup_elan = microseconds(4.0);
  /// 39 MB/s asymptote (Fig. 3): 1e9 / 39e6 = 25.64 ns per byte.
  double dma_bytes_per_sec = 39e6;
  /// Destination Elan retires the transfer and raises the completion event.
  Duration dma_completion_elan = microseconds(4.0);

  // --- hardware broadcast ---------------------------------------------------
  /// Extra Elan cost to launch a broadcast rather than a unicast packet.
  Duration bcast_extra_tx = microseconds(2.0);

  // --- hardware barrier -----------------------------------------------------
  /// Elan cost to issue a barrier-enter transaction into the combine tree
  /// (a tiny fixed packet: cheaper than a full payload transaction).
  Duration barrier_enter_tx = microseconds(3.0);
  /// Fat-tree combine propagation plus release replication, charged once
  /// when the last node's arrival reaches the switch.
  Duration barrier_release = microseconds(2.0);

  // --- tport widget (Meiko's tagged message layer, matching on the Elan) ---
  /// SPARC-side cost of the tport tx/rx calls themselves.
  Duration tport_sparc_call = microseconds(3.0);
  /// Elan-side processing of an outgoing tport message.
  Duration tport_elan_tx = microseconds(5.0);
  /// Elan-side matching of an arriving message against posted descriptors.
  Duration tport_elan_match = microseconds(5.6);
  /// Per posted-but-unmatched descriptor scanned by the 10 MHz Elan.
  Duration tport_elan_match_per_entry = microseconds(0.8);
  /// Elan -> SPARC completion notification (event write + SPARC pickup).
  Duration tport_deliver = microseconds(4.0);
  /// tport carries payloads at most this size inside the envelope packet;
  /// larger messages go through an internal rendezvous to the DMA engine.
  /// Generous (latency traded for bandwidth), per the paper's description.
  std::int64_t tport_inline_max = 512;
  /// Per-byte cost of inline payloads (Elan copies through its buffers).
  Duration tport_inline_per_byte = nanoseconds(60);

  // --- the paper's low-latency MPI path ------------------------------------
  /// SPARC-side cost of building an MPI envelope (communicator, datatype,
  /// mode handling) before issuing the transaction.
  Duration mpi_envelope_build = microseconds(12.0);
  /// SPARC-side matching against posted-receive / unexpected queues.
  Duration mpi_match = microseconds(10.0);
  /// Per queue entry scanned during matching (40 MHz SPARC: fast).
  Duration mpi_match_per_entry = microseconds(0.25);
  /// Copy from the receiver-side envelope slot to the user buffer (eager).
  Duration mpi_eager_copy_base = microseconds(2.0);
  /// Per-byte cost of the eager double-copy at the receiver. This is the
  /// term that makes buffering lose to rendezvous past the crossover.
  Duration mpi_eager_copy_per_byte = nanoseconds(120);
  /// Request/handle bookkeeping per completed operation.
  Duration mpi_request_bookkeeping = microseconds(4.0);
  /// Copy-out of a hardware-broadcast payload (plain SPARC memcpy).
  Duration mpi_bcast_copy_per_byte = nanoseconds(30);

  // --- MPICH-over-tport baseline -------------------------------------------
  /// MPICH ADI/device-layer cost per send or receive on the SPARC.
  Duration mpich_adi_overhead = microseconds(52.0);
  /// Extra SPARC <-> Elan synchronisation per operation: the SPARC must
  /// learn about completions the Elan discovered in the background.
  Duration mpich_elan_sync = microseconds(22.0);
  /// Elan-side matching is busier under MPICH (context/tag demultiplexing
  /// squeezed through tport tags on the 10 MHz co-processor).
  Duration mpich_elan_extra_match = microseconds(6.0);

  // --- protocol knobs --------------------------------------------------------
  /// Eager/rendezvous switch (Fig. 1 crossover). Bytes.
  std::int64_t eager_threshold = 180;
  /// Size of the single per-sender envelope slot preallocated at every
  /// receiver (envelope + max eager payload).
  std::int64_t envelope_slot_bytes = 256;
};

}  // namespace lcmpi::meiko
