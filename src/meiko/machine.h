// Discrete-event model of a Meiko CS/2 machine.
//
// Each node couples a SPARC main processor (modelled by the caller: rank
// actors charge SPARC time themselves via Actor::advance) with an Elan
// communications co-processor and a DMA engine. The Elan is a 10 MHz
// in-order engine, so each node's Elan is a FifoServer: command processing
// serialises there, which is precisely the contention the paper's
// SPARC-vs-Elan matching comparison is about. The DMA engine is a second
// server so bulk transfers overlap Elan command processing.
//
// Three hardware mechanisms are exposed, mirroring the CS/2 communication
// primitives the paper's implementation is built on:
//   * remote transactions — small packets deposited into a remote memory
//     slot, raising an event the remote SPARC can poll (used for MPI
//     envelopes, eager payloads, CTS/credit control traffic);
//   * DMA put/get — bulk memory-to-memory transfers; `get` is served
//     entirely by the remote Elan without involving the remote SPARC,
//     which is how the rendezvous protocol pulls large payloads;
//   * hardware broadcast — one launch delivers to every other node.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/meiko/calib.h"
#include "src/sim/kernel.h"
#include "src/sim/server.h"
#include "src/util/status.h"

namespace lcmpi::meiko {

using Bytes = std::vector<std::byte>;

/// A transaction (or broadcast) arriving at a node. `port` demultiplexes
/// independent protocols sharing the fabric (like Elan event slots).
struct TxnDelivery {
  int src = -1;
  int port = 0;
  Bytes data;
};

class Machine;

/// One CS/2 node: handler registration plus the node's co-processor servers.
class Node {
 public:
  Node(sim::Kernel& kernel, int id)
      : id_(id), elan_(kernel), dma_engine_(kernel) {}

  [[nodiscard]] int id() const { return id_; }

  /// Handler for transactions arriving on `port` (runs at envelope-deposit
  /// time; the model has already charged the destination Elan's receive
  /// cost). Ports let independent protocol layers share one fabric.
  void set_txn_handler(int port, std::function<void(TxnDelivery)> h) {
    on_txn_[port] = std::move(h);
  }

  /// Handler for hardware broadcasts arriving on `port`.
  void set_bcast_handler(int port, std::function<void(TxnDelivery)> h) {
    on_bcast_[port] = std::move(h);
  }

  /// Stages a payload for a future DMA-get by a remote node. Returns the
  /// key the remote side must quote. `on_pulled` runs (Elan context, no
  /// SPARC involvement) when the engine has read the data — the sender's
  /// buffer-free notification. One-shot: the key is consumed by the get.
  std::uint64_t stage_dma(Bytes data, std::function<void()> on_pulled = {});

  /// Number of staged-but-not-yet-pulled payloads (leak detection in tests).
  [[nodiscard]] std::size_t staged_dma_count() const { return staged_.size(); }

  [[nodiscard]] sim::FifoServer& elan() { return elan_; }
  [[nodiscard]] sim::FifoServer& dma_engine() { return dma_engine_; }

 private:
  friend class Machine;
  int id_;
  sim::FifoServer elan_;
  sim::FifoServer dma_engine_;
  struct StagedDma {
    Bytes data;
    std::function<void()> on_pulled;
  };

  std::map<int, std::function<void(TxnDelivery)>> on_txn_;
  std::map<int, std::function<void(TxnDelivery)>> on_bcast_;
  std::map<std::uint64_t, StagedDma> staged_;
  std::uint64_t next_dma_key_ = 1;
};

class Machine {
 public:
  Machine(sim::Kernel& kernel, int nnodes, Calib calib = {});

  [[nodiscard]] int size() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] Node& node(int i);
  [[nodiscard]] const Calib& calib() const { return calib_; }
  [[nodiscard]] sim::Kernel& kernel() const { return kernel_; }

  /// Launches a remote transaction from `src` to `dst`. The caller has
  /// already charged the SPARC issue cost; this models source-Elan
  /// processing, the wire, and destination-Elan deposit, then invokes the
  /// destination's txn handler. `on_sent` fires when the source Elan has
  /// finished with the outgoing packet (source buffer reusable).
  void txn(int src, int dst, int port, Bytes data, std::function<void()> on_sent = {});

  /// Launches a remote-word/remote-event transaction from `src` to `dst`
  /// — the paper's lightweight remote-transaction machinery, without the
  /// envelope-slot protocol of txn(). Used by the one-sided MPI layer;
  /// shares the per-node Elan FifoServers (and the same wire latency)
  /// with txn(), so cross-port delivery order per (src, dst) pair is
  /// preserved. The caller charges the SPARC issue cost.
  void rma_txn(int src, int dst, int port, Bytes data);

  /// Bulk DMA from `src` memory into `dst` memory. `on_local_complete`
  /// fires when the engine has finished reading source memory; the
  /// destination handler `on_data` runs at delivery time.
  void dma_put(int src, int dst, Bytes data, std::function<void()> on_local_complete,
               std::function<void(Bytes)> on_data);

  /// Receiver-initiated bulk pull: `requester` asks `src`'s Elan for the
  /// payload registered under `key`; the remote SPARC is never involved.
  void dma_get(int requester, int src, std::uint64_t key, std::function<void(Bytes)> on_data);

  /// Hardware broadcast: one launch from `src`, delivered to every node
  /// except the source via each destination's bcast handler.
  void broadcast(int src, int port, Bytes data);

  /// Hardware barrier: `src` enters the fat tree's combine network; once
  /// every node has entered, the release replicates to all of them and
  /// each node's `on_release` runs in its Elan context. Strictly phased —
  /// no node can re-enter before its release fires, so one arrival
  /// counter suffices.
  void barrier_enter(int src, std::function<void()> on_release);

  /// Total bytes moved by DMA engines (bandwidth accounting for Fig. 3).
  [[nodiscard]] std::int64_t dma_bytes_moved() const { return dma_bytes_moved_; }

  /// Completed hardware-offload operations (offload-vs-software tests).
  [[nodiscard]] std::int64_t hw_bcasts() const { return hw_bcasts_; }
  [[nodiscard]] std::int64_t hw_barriers() const { return hw_barriers_; }

  /// Remote-word/remote-event transactions launched (one-sided MPI ops).
  [[nodiscard]] std::int64_t rma_txns() const { return rma_txns_; }

 private:
  void deliver_txn(int src, int dst, int port, Bytes data, bool broadcast_path);

  struct BarrierWaiter {
    int node;
    std::function<void()> on_release;
  };

  sim::Kernel& kernel_;
  Calib calib_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<BarrierWaiter> barrier_waiters_;
  std::int64_t dma_bytes_moved_ = 0;
  std::int64_t hw_bcasts_ = 0;
  std::int64_t hw_barriers_ = 0;
  std::int64_t rma_txns_ = 0;
};

}  // namespace lcmpi::meiko
