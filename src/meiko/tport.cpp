#include "src/meiko/tport.h"

#include <utility>

#include "src/util/bytes.h"

namespace lcmpi::meiko {
namespace {

// Packet header preceding any tport payload.
struct WireHeader {
  std::uint64_t tag = 0;
  std::uint64_t key = 0;     // staged-DMA key (rendezvous only)
  std::uint64_t nbytes = 0;  // payload size
  std::uint8_t inline_payload = 0;
};

Bytes encode(const WireHeader& h, const Bytes* payload) {
  Bytes out;
  ByteWriter w(out);
  w.put(h.tag);
  w.put(h.key);
  w.put(h.nbytes);
  w.put(h.inline_payload);
  if (payload) w.put_bytes(payload->data(), payload->size());
  return out;
}

WireHeader decode(ByteReader& r) {
  WireHeader h;
  h.tag = r.get<std::uint64_t>();
  h.key = r.get<std::uint64_t>();
  h.nbytes = r.get<std::uint64_t>();
  h.inline_payload = r.get<std::uint8_t>();
  return h;
}

bool tag_matches(std::uint64_t msg_tag, std::uint64_t rx_tag, std::uint64_t rx_mask) {
  return (msg_tag & rx_mask) == (rx_tag & rx_mask);
}

}  // namespace

Tport::Tport(Machine& machine, int node_id) : machine_(machine), node_(node_id) {
  machine_.node(node_).set_txn_handler(kTportPort,
                                       [this](TxnDelivery d) { on_packet(std::move(d)); });
}

Duration Tport::match_scan_cost(std::size_t entries_scanned) const {
  const Calib& c = machine_.calib();
  return c.tport_elan_match +
         c.tport_elan_match_per_entry * static_cast<std::int64_t>(entries_scanned);
}

void Tport::tx(sim::Actor& self, int dst, std::uint64_t tag, Bytes data,
               std::function<void()> on_complete) {
  const Calib& c = machine_.calib();
  self.advance(c.tport_sparc_call);

  WireHeader h;
  h.tag = tag;
  h.nbytes = data.size();
  if (static_cast<std::int64_t>(data.size()) <= c.tport_inline_max) {
    h.inline_payload = 1;
    // Inline payloads ride the transaction; the Elan copies them through
    // its buffers, charged per byte on the source Elan.
    const Duration extra = c.tport_inline_per_byte * static_cast<std::int64_t>(data.size());
    Bytes pkt = encode(h, &data);
    Node& n = machine_.node(node_);
    n.elan().submit(extra, [this, dst, pkt = std::move(pkt),
                            on_complete = std::move(on_complete)]() mutable {
      machine_.txn(node_, dst, kTportPort, std::move(pkt), std::move(on_complete));
    });
  } else {
    h.inline_payload = 0;
    h.key = machine_.node(node_).stage_dma(std::move(data), std::move(on_complete));
    machine_.txn(node_, dst, kTportPort, encode(h, nullptr));
  }
}

void Tport::rx(sim::Actor& self, std::uint64_t tag, std::uint64_t mask,
               std::function<void(TportMessage)> on_message) {
  const Calib& c = machine_.calib();
  self.advance(c.tport_sparc_call);
  // The descriptor is handed to the Elan, which first scans the unexpected
  // queue (charged per entry), then leaves the descriptor posted.
  Node& n = machine_.node(node_);
  PostedRx rx{tag, mask, std::move(on_message)};
  n.elan().submit(match_scan_cost(unexpected_.size()), [this, rx = std::move(rx)]() mutable {
    for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
      if (tag_matches(it->tag, rx.tag, rx.mask)) {
        Unexpected msg = std::move(*it);
        unexpected_.erase(it);
        if (msg.inline_payload) {
          deliver(std::move(rx), msg.src, msg.tag, std::move(msg.data));
        } else {
          pull_and_deliver(std::move(rx), std::move(msg));
        }
        return;
      }
    }
    posted_.push_back(std::move(rx));
  });
}

void Tport::on_packet(TxnDelivery d) {
  ByteReader r(d.data);
  const WireHeader h = decode(r);
  Unexpected msg;
  msg.src = d.src;
  msg.tag = h.tag;
  msg.inline_payload = h.inline_payload != 0;
  msg.key = h.key;
  msg.nbytes = h.nbytes;
  if (msg.inline_payload) msg.data = r.rest();
  // Charge the Elan for scanning posted descriptors.
  Node& n = machine_.node(node_);
  n.elan().submit(match_scan_cost(posted_.size()),
                  [this, msg = std::move(msg)]() mutable { try_match_incoming(std::move(msg)); });
}

std::optional<Tport::ProbeInfo> Tport::iprobe(sim::Actor& self, std::uint64_t tag,
                                              std::uint64_t mask) {
  const Calib& c = machine_.calib();
  self.advance(c.tport_sparc_call);
  // SPARC -> Elan query: the scan happens at Elan speed, then the result
  // returns to the caller.
  sim::Trigger done;
  std::optional<ProbeInfo> found;
  bool answered = false;
  Node& n = machine_.node(node_);
  n.elan().submit(match_scan_cost(unexpected_.size()), [&] {
    for (const Unexpected& u : unexpected_) {
      if (tag_matches(u.tag, tag, mask)) {
        found = ProbeInfo{u.src, u.tag,
                          u.inline_payload ? u.data.size() : u.nbytes};
        break;
      }
    }
    answered = true;
    done.notify_all();
  });
  while (!answered) self.wait(done);
  return found;
}

Tport::ProbeInfo Tport::probe(sim::Actor& self, std::uint64_t tag, std::uint64_t mask) {
  for (;;) {
    if (auto info = iprobe(self, tag, mask)) return *info;
    self.wait(arrivals_);
  }
}

void Tport::try_match_incoming(Unexpected msg) {
  arrivals_.notify_all();
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    if (tag_matches(msg.tag, it->tag, it->mask)) {
      PostedRx rx = std::move(*it);
      posted_.erase(it);
      if (msg.inline_payload) {
        deliver(std::move(rx), msg.src, msg.tag, std::move(msg.data));
      } else {
        pull_and_deliver(std::move(rx), std::move(msg));
      }
      return;
    }
  }
  unexpected_.push_back(std::move(msg));
}

void Tport::deliver(PostedRx rx, int src, std::uint64_t tag, Bytes data) {
  // Elan raises the completion event; the SPARC picks the message up.
  Node& n = machine_.node(node_);
  n.elan().submit(machine_.calib().tport_deliver,
                  [rx = std::move(rx), src, tag, data = std::move(data)]() mutable {
                    rx.on_message(TportMessage{src, tag, std::move(data)});
                  });
}

void Tport::pull_and_deliver(PostedRx rx, Unexpected msg) {
  // Rendezvous: the receiving Elan pulls the staged payload by DMA, then
  // delivers into the matched receive without any intermediate copy.
  machine_.dma_get(node_, msg.src, msg.key,
                   [this, rx = std::move(rx), src = msg.src, tag = msg.tag](Bytes data) mutable {
                     deliver(std::move(rx), src, tag, std::move(data));
                   });
}

void Tport::send(sim::Actor& self, int dst, std::uint64_t tag, Bytes data) {
  sim::Trigger done;
  bool complete = false;
  tx(self, dst, tag, std::move(data), [&] {
    complete = true;
    done.notify_all();
  });
  while (!complete) self.wait(done);
}

TportMessage Tport::recv(sim::Actor& self, std::uint64_t tag, std::uint64_t mask) {
  sim::Trigger arrived;
  std::optional<TportMessage> result;
  rx(self, tag, mask, [&](TportMessage m) {
    result = std::move(m);
    arrived.notify_all();
  });
  while (!result) self.wait(arrived);
  // SPARC-side pickup of the delivered message.
  self.advance(machine_.calib().tport_sparc_call);
  return std::move(*result);
}

}  // namespace lcmpi::meiko
