#include "src/meiko/machine.h"

#include <utility>

namespace lcmpi::meiko {

std::uint64_t Node::stage_dma(Bytes data, std::function<void()> on_pulled) {
  const std::uint64_t key = next_dma_key_++;
  staged_.emplace(key, StagedDma{std::move(data), std::move(on_pulled)});
  return key;
}

Machine::Machine(sim::Kernel& kernel, int nnodes, Calib calib)
    : kernel_(kernel), calib_(calib) {
  LCMPI_CHECK(nnodes >= 1, "machine needs at least one node");
  nodes_.reserve(static_cast<std::size_t>(nnodes));
  for (int i = 0; i < nnodes; ++i)
    nodes_.push_back(std::make_unique<Node>(kernel, i));
}

Node& Machine::node(int i) {
  LCMPI_CHECK(i >= 0 && i < size(), "node index out of range");
  return *nodes_[static_cast<std::size_t>(i)];
}

void Machine::deliver_txn(int src, int dst, int port, Bytes data, bool broadcast_path) {
  Node& d = node(dst);
  d.elan_.submit(calib_.elan_txn_rx, [this, src, dst, port,
                                      data = std::move(data), broadcast_path]() mutable {
    Node& n = node(dst);
    auto& handlers = broadcast_path ? n.on_bcast_ : n.on_txn_;
    auto it = handlers.find(port);
    LCMPI_CHECK(it != handlers.end() && it->second != nullptr,
                "no handler registered for arriving packet");
    it->second(TxnDelivery{src, port, std::move(data)});
  });
}

void Machine::txn(int src, int dst, int port, Bytes data, std::function<void()> on_sent) {
  Node& s = node(src);
  const Duration tx_cost =
      calib_.elan_txn_tx + calib_.txn_per_byte * static_cast<std::int64_t>(data.size());
  s.elan_.submit(tx_cost, [this, src, dst, port, data = std::move(data),
                           on_sent = std::move(on_sent)]() mutable {
    if (on_sent) on_sent();
    if (src == dst) {
      // Loopback through the local Elan, no wire traversal.
      deliver_txn(src, dst, port, std::move(data), false);
      return;
    }
    kernel_.schedule(calib_.wire_latency, [this, src, dst, port,
                                           data = std::move(data)]() mutable {
      deliver_txn(src, dst, port, std::move(data), false);
    });
  });
}

void Machine::rma_txn(int src, int dst, int port, Bytes data) {
  ++rma_txns_;
  Node& s = node(src);
  const Duration tx_cost =
      calib_.elan_rma_tx + calib_.rma_per_byte * static_cast<std::int64_t>(data.size());
  // Same source/destination Elan FifoServers and the same wire constant
  // as txn(): per-(src, dst) delivery order holds across both paths, so
  // the engine's sequence check stays valid for interleaved traffic.
  s.elan_.submit(tx_cost, [this, src, dst, port, data = std::move(data)]() mutable {
    auto arrive = [this, src, dst, port, data = std::move(data)]() mutable {
      Node& d = node(dst);
      d.elan_.submit(calib_.elan_rma_event_rx,
                     [this, src, dst, port, data = std::move(data)]() mutable {
        Node& n = node(dst);
        auto it = n.on_txn_.find(port);
        LCMPI_CHECK(it != n.on_txn_.end() && it->second != nullptr,
                    "no handler registered for arriving remote transaction");
        it->second(TxnDelivery{src, port, std::move(data)});
      });
    };
    if (src == dst) {
      arrive();
    } else {
      kernel_.schedule(calib_.wire_latency, std::move(arrive));
    }
  });
}

void Machine::dma_put(int src, int dst, Bytes data,
                      std::function<void()> on_local_complete,
                      std::function<void(Bytes)> on_data) {
  Node& s = node(src);
  const auto nbytes = static_cast<std::int64_t>(data.size());
  // Elan programs the engine; the engine then streams the payload.
  s.elan_.submit(calib_.dma_setup_elan, [this, src, dst, nbytes, data = std::move(data),
                                         on_local_complete = std::move(on_local_complete),
                                         on_data = std::move(on_data)]() mutable {
    Node& sn = node(src);
    const Duration xfer = transmission_time(nbytes, calib_.dma_bytes_per_sec);
    sn.dma_engine_.submit(xfer, [this, src, dst, nbytes, data = std::move(data),
                                 on_local_complete = std::move(on_local_complete),
                                 on_data = std::move(on_data)]() mutable {
      dma_bytes_moved_ += nbytes;
      if (on_local_complete) on_local_complete();
      auto finish = [this, dst, data = std::move(data),
                     on_data = std::move(on_data)]() mutable {
        Node& dn = node(dst);
        dn.elan_.submit(calib_.dma_completion_elan,
                        [data = std::move(data), on_data = std::move(on_data)]() mutable {
                          LCMPI_CHECK(on_data != nullptr, "dma_put without destination handler");
                          on_data(std::move(data));
                        });
      };
      if (src == dst) {
        finish();
      } else {
        kernel_.schedule(calib_.wire_latency, std::move(finish));
      }
    });
  });
}

void Machine::dma_get(int requester, int src, std::uint64_t key,
                      std::function<void(Bytes)> on_data) {
  Node& r = node(requester);
  // Request packet: requester Elan -> wire -> source Elan.
  r.elan_.submit(calib_.dma_setup_elan, [this, requester, src, key,
                                         on_data = std::move(on_data)]() mutable {
    auto at_source = [this, requester, src, key, on_data = std::move(on_data)]() mutable {
      Node& sn = node(src);
      sn.elan_.submit(calib_.dma_setup_elan, [this, requester, src, key,
                                              on_data = std::move(on_data)]() mutable {
        Node& s2 = node(src);
        auto it = s2.staged_.find(key);
        LCMPI_CHECK(it != s2.staged_.end(), "dma_get for unknown staged key");
        Bytes data = std::move(it->second.data);
        std::function<void()> on_pulled = std::move(it->second.on_pulled);
        s2.staged_.erase(it);
        if (on_pulled) on_pulled();
        const auto nbytes = static_cast<std::int64_t>(data.size());
        const Duration xfer = transmission_time(nbytes, calib_.dma_bytes_per_sec);
        s2.dma_engine_.submit(xfer, [this, requester, src, nbytes, data = std::move(data),
                                     on_data = std::move(on_data)]() mutable {
          dma_bytes_moved_ += nbytes;
          auto finish = [this, requester, data = std::move(data),
                         on_data = std::move(on_data)]() mutable {
            Node& rn = node(requester);
            rn.elan_.submit(calib_.dma_completion_elan,
                            [data = std::move(data), on_data = std::move(on_data)]() mutable {
                              on_data(std::move(data));
                            });
          };
          if (requester == src) {
            finish();
          } else {
            kernel_.schedule(calib_.wire_latency, std::move(finish));
          }
        });
      });
    };
    if (requester == src) {
      at_source();
    } else {
      kernel_.schedule(calib_.wire_latency, std::move(at_source));
    }
  });
}

void Machine::broadcast(int src, int port, Bytes data) {
  Node& s = node(src);
  const Duration tx_cost = calib_.elan_txn_tx + calib_.bcast_extra_tx +
                           calib_.txn_per_byte * static_cast<std::int64_t>(data.size());
  s.elan_.submit(tx_cost, [this, src, port, data = std::move(data)]() mutable {
    ++hw_bcasts_;
    // The fat tree replicates the packet in hardware: every destination
    // sees it one wire latency later, in parallel.
    kernel_.schedule(calib_.wire_latency, [this, src, port, data = std::move(data)]() mutable {
      for (int dst = 0; dst < size(); ++dst) {
        if (dst == src) continue;
        deliver_txn(src, dst, port, data, /*broadcast_path=*/true);
      }
    });
  });
}

void Machine::barrier_enter(int src, std::function<void()> on_release) {
  Node& s = node(src);
  s.elan_.submit(calib_.barrier_enter_tx,
                 [this, src, on_release = std::move(on_release)]() mutable {
    // The arrival crosses one wire hop into the combine network.
    kernel_.schedule(calib_.wire_latency,
                     [this, src, on_release = std::move(on_release)]() mutable {
      barrier_waiters_.push_back({src, std::move(on_release)});
      if (static_cast<int>(barrier_waiters_.size()) < size()) return;
      ++hw_barriers_;
      // Last arrival: the tree combines and replicates the release to
      // every node in parallel; each destination Elan retires it.
      auto waiters = std::move(barrier_waiters_);
      barrier_waiters_.clear();
      for (auto& w : waiters) {
        kernel_.schedule(calib_.barrier_release + calib_.wire_latency,
                         [this, n = w.node, cb = std::move(w.on_release)]() mutable {
          node(n).elan_.submit(calib_.elan_txn_rx, std::move(cb));
        });
      }
    });
  });
}

}  // namespace lcmpi::meiko
