// The Meiko "tport" widget: hardware-assisted tagged message passing.
//
// tport is the layer the stock MPICH CS/2 device is built on. Sends carry a
// 64-bit tag; receives give a tag and a mask, matching any message whose
// tag agrees on the masked bits. All matching happens on the *Elan*
// co-processor: posted-receive descriptors and unexpected messages live in
// Elan memory and every match scan is charged at Elan speed — this is the
// design whose latency the paper's SPARC-matching implementation undercuts.
//
// Internal protocol (per the paper's characterisation: latency traded for
// bandwidth): payloads up to Calib::tport_inline_max travel inside the
// envelope packet; larger payloads are staged for a DMA pull that the
// receiving Elan initiates after the match.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "src/meiko/machine.h"
#include "src/sim/kernel.h"

namespace lcmpi::meiko {

/// Fabric port reserved by the tport layer.
inline constexpr int kTportPort = 1;

/// A message delivered to a tport receive.
struct TportMessage {
  int src = -1;
  std::uint64_t tag = 0;
  Bytes data;
};

class Tport {
 public:
  /// Builds the widget on `node_id` of `machine`. One Tport per node.
  Tport(Machine& machine, int node_id);
  Tport(const Tport&) = delete;
  Tport& operator=(const Tport&) = delete;

  /// Nonblocking tagged send. `on_complete` fires when the source buffer is
  /// reusable (inline: packet launched; rendezvous: payload pulled).
  /// The SPARC-side call cost is charged to `self`.
  void tx(sim::Actor& self, int dst, std::uint64_t tag, Bytes data,
          std::function<void()> on_complete = {});

  /// Nonblocking receive: `on_message` runs when a message whose tag
  /// satisfies (msg.tag & mask) == (tag & mask) is matched and delivered.
  /// The SPARC-side call cost is charged to `self`.
  void rx(sim::Actor& self, std::uint64_t tag, std::uint64_t mask,
          std::function<void(TportMessage)> on_message);

  /// Blocking send: returns when the source buffer is reusable.
  void send(sim::Actor& self, int dst, std::uint64_t tag, Bytes data);

  /// Blocking receive.
  TportMessage recv(sim::Actor& self, std::uint64_t tag, std::uint64_t mask);

  /// Envelope information from a probe (payload not transferred).
  struct ProbeInfo {
    int src = -1;
    std::uint64_t tag = 0;
    std::uint64_t nbytes = 0;
  };
  /// Queries the Elan's unexpected queue without consuming (MPI_Iprobe
  /// style); charges the SPARC call and an Elan scan.
  std::optional<ProbeInfo> iprobe(sim::Actor& self, std::uint64_t tag, std::uint64_t mask);
  /// Blocking probe: waits until a matching envelope is queued.
  ProbeInfo probe(sim::Actor& self, std::uint64_t tag, std::uint64_t mask);

  [[nodiscard]] int node_id() const { return node_; }
  [[nodiscard]] Machine& machine() const { return machine_; }

 private:
  struct PostedRx {
    std::uint64_t tag;
    std::uint64_t mask;
    std::function<void(TportMessage)> on_message;
  };
  struct Unexpected {
    int src;
    std::uint64_t tag;
    bool inline_payload;
    Bytes data;           // payload when inline
    std::uint64_t key;    // staged-DMA key when rendezvous
    std::uint64_t nbytes; // payload size when rendezvous
  };

  void on_packet(TxnDelivery d);
  void try_match_incoming(Unexpected msg);
  void deliver(PostedRx rx, int src, std::uint64_t tag, Bytes data);
  void pull_and_deliver(PostedRx rx, Unexpected msg);
  [[nodiscard]] Duration match_scan_cost(std::size_t entries_scanned) const;

  Machine& machine_;
  int node_;
  // Matching state: conceptually Elan-resident. Mutated only from Elan
  // server jobs or SPARC-issued commands (cooperatively scheduled, so no
  // locking is needed; the *costs* are what the model charges carefully).
  std::deque<PostedRx> posted_;
  std::deque<Unexpected> unexpected_;
  sim::Trigger arrivals_;  // notified whenever a packet reaches this node
};

}  // namespace lcmpi::meiko
