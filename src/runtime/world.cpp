#include "src/runtime/world.h"

#include <dirent.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

namespace lcmpi::runtime {

Duration run_ranks(sim::Kernel& kernel, fabric::Fabric& fabric,
                   const mpi::EngineConfig& cfg, const RankFn& fn) {
  const TimePoint t0 = kernel.now();
  for (int r = 0; r < fabric.nranks(); ++r) {
    kernel.spawn("rank-" + std::to_string(r), [&fabric, cfg, fn, r](sim::Actor& self) {
      mpi::Engine engine(fabric.endpoint(r), self, cfg);
      mpi::Comm world = mpi::Comm::world(engine);
      fn(world, self);
    });
  }
  kernel.run();
  return kernel.now() - t0;
}

// ----------------------------------------------------------------- Meiko

MeikoWorld::MeikoWorld(int nranks, meiko::Calib calib, mpi::EngineConfig engine_cfg)
    : engine_cfg_(engine_cfg) {
  machine_ = std::make_unique<meiko::Machine>(kernel_, nranks, calib);
  fabric_ = std::make_unique<fabric::MeikoFabric>(*machine_);
}

Duration MeikoWorld::run(const RankFn& fn) {
  return run_ranks(kernel_, *fabric_, engine_cfg_, fn);
}

MpichMeikoWorld::MpichMeikoWorld(int nranks, meiko::Calib calib) {
  machine_ = std::make_unique<meiko::Machine>(kernel_, nranks, calib);
  for (int i = 0; i < nranks; ++i)
    tports_.push_back(std::make_unique<meiko::Tport>(*machine_, i));
}

Duration MpichMeikoWorld::run(const MpichRankFn& fn) {
  const TimePoint t0 = kernel_.now();
  const int n = nranks();
  for (int r = 0; r < n; ++r) {
    kernel_.spawn("rank-" + std::to_string(r), [this, fn, r, n](sim::Actor& self) {
      mpi::MpichComm world(*tports_[static_cast<std::size_t>(r)], self, n);
      fn(world, self);
    });
  }
  kernel_.run();
  return kernel_.now() - t0;
}

// ---------------------------------------------------------------- Cluster

ClusterWorld::ClusterWorld(int nranks, Media media, Transport transport,
                           mpi::EngineConfig engine_cfg,
                           fabric::StreamFabric::Options fabric_opt,
                           bool eth_broadcast_collectives)
    : nranks_(nranks), engine_cfg_(engine_cfg) {
  LCMPI_CHECK(!eth_broadcast_collectives || media == Media::kEthernet,
              "broadcast collectives require the Ethernet medium");
  if (media == Media::kAtm) {
    net_ = std::make_unique<atmnet::AtmNetwork>(kernel_, nranks);
    cluster_ = std::make_unique<inet::InetCluster>(*net_, inet::atm_profile());
  } else {
    net_ = std::make_unique<atmnet::EthernetNetwork>(kernel_, nranks);
    cluster_ = std::make_unique<inet::InetCluster>(*net_, inet::ethernet_profile());
  }

  // Static all-pairs connections, as in the paper's clusters.
  std::vector<std::vector<inet::StreamEndpoint*>> streams(
      static_cast<std::size_t>(nranks),
      std::vector<inet::StreamEndpoint*>(static_cast<std::size_t>(nranks), nullptr));
  std::uint16_t next_port = 10000;
  for (int i = 0; i < nranks; ++i) {
    for (int j = i + 1; j < nranks; ++j) {
      if (transport == Transport::kTcp) {
        inet::TcpConnection& c = cluster_->tcp_pair(i, j);
        streams[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = &c.on_host(i);
        streams[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = &c.on_host(j);
      } else {
        inet::RudpChannel& c = cluster_->rudp_pair(i, j, next_port);
        next_port = static_cast<std::uint16_t>(next_port + 2);
        streams[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = &c.on_host(i);
        streams[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = &c.on_host(j);
      }
    }
  }
  std::vector<inet::DatagramSocket*> bcast_socks;
  if (eth_broadcast_collectives) {
    constexpr std::uint16_t kBcastPort = 9999;
    for (int i = 0; i < nranks; ++i)
      bcast_socks.push_back(&cluster_->udp_socket(i, kBcastPort));
  }
  fabric_ = std::make_unique<fabric::StreamFabric>(kernel_, std::move(streams), fabric_opt,
                                                   std::move(bcast_socks));
}

Duration ClusterWorld::run(const RankFn& fn) {
  return run_ranks(kernel_, *fabric_, engine_cfg_, fn);
}

// ------------------------------------------------------------------- Loop

LoopWorld::LoopWorld(int nranks, fabric::LoopFabric::Options opt,
                     mpi::EngineConfig engine_cfg)
    : engine_cfg_(engine_cfg) {
  fabric_ = std::make_unique<fabric::LoopFabric>(kernel_, nranks, opt);
}

Duration LoopWorld::run(const RankFn& fn) {
  return run_ranks(kernel_, *fabric_, engine_cfg_, fn);
}

// ---------------------------------------------------------------- Threads

ThreadsWorld::ThreadsWorld(int nranks, fabric::ShmFabric::Options opt,
                           mpi::EngineConfig engine_cfg)
    : engine_cfg_(engine_cfg) {
  fabric_ = std::make_unique<fabric::ShmFabric>(nranks, opt);
}

void run_detached_rank(fabric::Endpoint& ep, int rank,
                       const mpi::EngineConfig& cfg, const RankFn& fn) {
  auto actor = sim::Actor::detached("rank-" + std::to_string(rank));
  sim::Actor::BindScope bind(actor.get());
  mpi::Engine engine(ep, *actor, cfg);
  mpi::Comm world = mpi::Comm::world(engine);
  fn(world, *actor);
}

Duration ThreadsWorld::run(const RankFn& fn) {
  LCMPI_CHECK(!ran_, "a ThreadsWorld can run only once");
  ran_ = true;
  const int n = nranks();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n));
  const TimePoint t0 = fabric_->wall_now();
  for (int r = 0; r < n; ++r) {
    threads.emplace_back([this, &fn, &errors, r] {
      try {
        run_detached_rank(fabric_->endpoint(r), r, engine_cfg_, fn);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const Duration elapsed = fabric_->wall_now() - t0;
  for (const std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);
  return elapsed;
}

Duration run_threads(int nranks, const RankFn& fn, fabric::ShmFabric::Options opt,
                     mpi::EngineConfig engine_cfg) {
  ThreadsWorld world(nranks, opt, engine_cfg);
  return world.run(fn);
}

// ---------------------------------------------------------------- Sockets

namespace {

/// Child->launcher result record: [u8 status][u32 len][len bytes].
/// status 0 = ok (bytes are the rank's result), 1 = FabricError,
/// 2 = any other exception (bytes are what()).
enum : std::uint8_t { kRankOk = 0, kRankFabricError = 1, kRankFailed = 2 };

void pipe_write_all(int fd, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, p + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return;  // launcher gone; nothing useful left to do
    }
    off += static_cast<std::size_t>(w);
  }
}

/// Reads exactly n bytes; returns false on EOF/error (child died early).
bool pipe_read_all(int fd, void* data, std::size_t n) {
  auto* p = static_cast<unsigned char*>(data);
  std::size_t off = 0;
  while (off < n) {
    const ssize_t r = ::read(fd, p + off, n - off);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;
    off += static_cast<std::size_t>(r);
  }
  return true;
}

/// Pre-binds an ephemeral loopback listener in the launcher so rank 0
/// inherits it across fork() — no port-guessing conflict window.
int bind_loopback_listener(std::uint16_t& port_out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  LCMPI_CHECK(fd >= 0, "socket() failed for rendezvous listener");
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in sin{};
  sin.sin_family = AF_INET;
  sin.sin_port = 0;
  sin.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  LCMPI_CHECK(::bind(fd, reinterpret_cast<sockaddr*>(&sin), sizeof sin) == 0,
              "bind() failed for rendezvous listener");
  LCMPI_CHECK(::listen(fd, SOMAXCONN) == 0, "listen() failed for rendezvous listener");
  socklen_t len = sizeof sin;
  LCMPI_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&sin), &len) == 0,
              "getsockname() failed for rendezvous listener");
  port_out = ntohs(sin.sin_port);
  return fd;
}

Bytes str_bytes(const char* s) {
  Bytes b;
  const std::size_t n = std::strlen(s);
  b.resize(n);
  if (n > 0) std::memcpy(b.data(), s, n);
  return b;
}

}  // namespace

SocketWorld::SocketWorld(int nranks, fabric::SocketFabric::Options opt,
                         mpi::EngineConfig engine_cfg)
    : nranks_(nranks), opt_(opt), engine_cfg_(engine_cfg) {
  LCMPI_CHECK(nranks > 0, "SocketWorld needs at least one rank");
  if (opt_.domain == fabric::SocketFabric::Domain::kUnix) {
    // AF_UNIX paths are short (<104 bytes), so prefer /tmp over a possibly
    // deep TMPDIR; fall back to the working directory if /tmp is off-limits.
    const char* bases[] = {"/tmp", std::getenv("TMPDIR"), "."};
    for (const char* base : bases) {
      if (base == nullptr) continue;
      std::string tmpl = std::string(base) + "/lcmpi-sock.XXXXXX";
      if (::mkdtemp(tmpl.data()) != nullptr) {
        unix_dir_ = tmpl;
        break;
      }
    }
    LCMPI_CHECK(!unix_dir_.empty(), "could not create a socket directory");
  }
}

SocketWorld::~SocketWorld() {
  if (unix_dir_.empty()) return;
  // Failed runs can leave socket files behind; sweep then remove the dir.
  if (DIR* d = ::opendir(unix_dir_.c_str()); d != nullptr) {
    while (const dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name == "." || name == "..") continue;
      (void)::unlink((unix_dir_ + "/" + name).c_str());
    }
    ::closedir(d);
  }
  (void)::rmdir(unix_dir_.c_str());
}

std::vector<Bytes> SocketWorld::run_collect(const CollectRankFn& fn) {
  return run_collect_fab(
      [&fn](mpi::Comm& world, sim::Actor& self, fabric::SocketFabric&) {
        return fn(world, self);
      });
}

std::vector<Bytes> SocketWorld::run_collect_fab(const CollectFabricRankFn& fn) {
  LCMPI_CHECK(!ran_, "a SocketWorld can run only once");
  ran_ = true;
  const int n = nranks_;
  const bool unix_domain = opt_.domain == fabric::SocketFabric::Domain::kUnix;

  fabric::SocketFabric::Rendezvous rdv;
  int listen_fd = -1;
  if (unix_domain) {
    rdv.unix_dir = unix_dir_;
  } else {
    listen_fd = bind_loopback_listener(rdv.port);
  }

  // All pipes exist before the first fork so every child can close every
  // descriptor that is not its own write end — a stray copy of rank r's
  // write end in a sibling would hold off the launcher's EOF on pipe r.
  std::vector<std::array<int, 2>> pipes(static_cast<std::size_t>(n), {-1, -1});
  for (auto& p : pipes)
    LCMPI_CHECK(::pipe(p.data()) == 0, "pipe() failed");

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<pid_t> pids(static_cast<std::size_t>(n), -1);
  for (int r = 0; r < n; ++r) {
    const pid_t pid = ::fork();
    LCMPI_CHECK(pid >= 0, "fork() failed");
    if (pid > 0) {
      pids[static_cast<std::size_t>(r)] = pid;
      continue;
    }

    // ---- child: rank r. Never returns; _exit only (no parent atexit/
    // static-dtor replay, no double-flushed stdio).
    const int out_fd = pipes[static_cast<std::size_t>(r)][1];
    for (int i = 0; i < n; ++i) {
      ::close(pipes[static_cast<std::size_t>(i)][0]);
      if (i != r) ::close(pipes[static_cast<std::size_t>(i)][1]);
    }
    if (listen_fd >= 0 && r != 0) ::close(listen_fd);

    std::uint8_t status = kRankOk;
    Bytes result;
    try {
      fabric::SocketFabric::Rendezvous child_rdv = rdv;
      child_rdv.listen_fd = (!unix_domain && r == 0) ? listen_fd : -1;
      fabric::SocketFabric fab(n, r, child_rdv,
                               rank_opt_ ? rank_opt_(r, opt_) : opt_);
      auto actor = sim::Actor::detached("rank-" + std::to_string(r));
      sim::Actor::BindScope bind(actor.get());
      mpi::Engine engine(fab.endpoint(r), *actor, engine_cfg_);
      mpi::Comm world = mpi::Comm::world(engine);
      result = fn(world, *actor, fab);
    } catch (const fabric::FabricError& e) {
      status = kRankFabricError;
      result = str_bytes(e.what());
    } catch (const std::exception& e) {
      status = kRankFailed;
      result = str_bytes(e.what());
    } catch (...) {
      status = kRankFailed;
      result = str_bytes("unknown exception");
    }
    // The fabric is gone here (scope end above): BYE sent, sockets closed,
    // so peers cannot mistake this exit for a death even if the record
    // write below blocks on a busy launcher.
    pipe_write_all(out_fd, &status, sizeof status);
    const std::uint32_t len = static_cast<std::uint32_t>(result.size());
    pipe_write_all(out_fd, &len, sizeof len);
    pipe_write_all(out_fd, result.data(), result.size());
    ::close(out_fd);
    ::_exit(status == kRankOk ? 0 : 13);
  }

  // ---- launcher. Drop child-only descriptors, harvest records, reap.
  if (listen_fd >= 0) ::close(listen_fd);
  for (auto& p : pipes) {
    ::close(p[1]);
    p[1] = -1;
  }

  // Harvest result records with poll() over ALL pipes at once, not
  // rank-by-rank: connections are lazy, so a rank that dies before ever
  // dialing anyone is invisible to its peers' fabrics — a blocked
  // receiver would hang forever. The launcher is the only party that
  // always notices (the result pipe EOFs recordless); when it does, it
  // grants the survivors a short grace to surface their own errors, then
  // SIGKILLs the stragglers and reports the ORIGINAL death — ranks the
  // launcher reaped are casualties, not causes.
  std::vector<Bytes> results(static_cast<std::size_t>(n));
  std::vector<std::uint8_t> statuses(static_cast<std::size_t>(n), kRankOk);
  std::vector<bool> have_record(static_cast<std::size_t>(n), false);
  std::vector<bool> launcher_killed(static_cast<std::size_t>(n), false);
  int first_hard = -1;  // lowest rank that died recordless on its own
  int remaining = n;
  bool grace_armed = false;
  std::chrono::steady_clock::time_point grace_deadline{};
  std::vector<pollfd> pfds;
  std::vector<int> pfd_rank;
  while (remaining > 0) {
    pfds.clear();
    pfd_rank.clear();
    for (int r = 0; r < n; ++r) {
      const int fd = pipes[static_cast<std::size_t>(r)][0];
      if (fd < 0) continue;
      pfds.push_back({fd, POLLIN, 0});
      pfd_rank.push_back(r);
    }
    int timeout = -1;
    if (grace_armed) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          grace_deadline - std::chrono::steady_clock::now());
      timeout = left.count() > 0 ? static_cast<int>(left.count()) : 0;
    }
    const int rc = ::poll(pfds.data(), pfds.size(), timeout);
    if (rc < 0) {
      LCMPI_CHECK(errno == EINTR, "poll() over result pipes failed");
      continue;
    }
    if (rc == 0) {
      // Grace expired with ranks still running: they are wedged on the
      // dead peer (or each other). Reap them; their pipes EOF below.
      for (int r = 0; r < n; ++r) {
        if (pipes[static_cast<std::size_t>(r)][0] < 0) continue;
        (void)::kill(pids[static_cast<std::size_t>(r)], SIGKILL);
        launcher_killed[static_cast<std::size_t>(r)] = true;
      }
      grace_armed = false;  // subsequent polls just wait for the EOFs
      continue;
    }
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const int r = pfd_rank[i];
      const int fd = pfds[i].fd;
      // The record may span the pipe's capacity; the child is actively
      // writing it, so finishing the read blockingly is bounded.
      std::uint8_t status = kRankOk;
      std::uint32_t len = 0;
      if (pipe_read_all(fd, &status, sizeof status) &&
          pipe_read_all(fd, &len, sizeof len)) {
        Bytes body(len);
        if (len == 0 || pipe_read_all(fd, body.data(), len)) {
          have_record[static_cast<std::size_t>(r)] = true;
          statuses[static_cast<std::size_t>(r)] = status;
          results[static_cast<std::size_t>(r)] = std::move(body);
        }
      }
      ::close(fd);
      pipes[static_cast<std::size_t>(r)][0] = -1;
      remaining--;
      if (!have_record[static_cast<std::size_t>(r)] &&
          !launcher_killed[static_cast<std::size_t>(r)]) {
        if (first_hard < 0 || r < first_hard) first_hard = r;
        if (!grace_armed && remaining > 0) {
          grace_armed = true;
          grace_deadline =
              std::chrono::steady_clock::now() + std::chrono::seconds(2);
        }
      }
    }
  }

  std::vector<int> wait_status(static_cast<std::size_t>(n), 0);
  for (int r = 0; r < n; ++r) {
    pid_t got;
    do {
      got = ::waitpid(pids[static_cast<std::size_t>(r)],
                      &wait_status[static_cast<std::size_t>(r)], 0);
    } while (got < 0 && errno == EINTR);
    LCMPI_CHECK(got == pids[static_cast<std::size_t>(r)], "waitpid() failed");
  }
  elapsed_ = Duration{std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count()};

  // Lowest failing rank wins, mirroring ThreadsWorld's rethrow order. A
  // recordless rank the LAUNCHER killed is a casualty of the grace-kill,
  // not a cause: name the first rank that died on its own instead.
  for (int r = 0; r < n; ++r) {
    const auto i = static_cast<std::size_t>(r);
    if (!have_record[i]) {
      const int culprit = launcher_killed[i] && first_hard >= 0 ? first_hard : r;
      const int ws = wait_status[static_cast<std::size_t>(culprit)];
      std::string how = WIFSIGNALED(ws)
                            ? "killed by signal " + std::to_string(WTERMSIG(ws))
                            : "exited with status " +
                                  std::to_string(WIFEXITED(ws) ? WEXITSTATUS(ws) : -1);
      throw fabric::FabricError("rank " + std::to_string(culprit) +
                                " died without reporting (" + how + ")");
    }
    const std::string what(reinterpret_cast<const char*>(results[i].data()),
                           results[i].size());
    if (statuses[i] == kRankFabricError) throw fabric::FabricError(what);
    if (statuses[i] != kRankOk)
      throw std::runtime_error("rank " + std::to_string(r) + " failed: " + what);
  }
  return results;
}

Duration SocketWorld::run(const RankFn& fn) {
  (void)run_collect([&fn](mpi::Comm& world, sim::Actor& self) {
    fn(world, self);
    return Bytes{};
  });
  return elapsed_;
}

Duration run_sockets(int nranks, const RankFn& fn, fabric::SocketFabric::Options opt,
                     mpi::EngineConfig engine_cfg) {
  SocketWorld world(nranks, opt, engine_cfg);
  return world.run(fn);
}

}  // namespace lcmpi::runtime
