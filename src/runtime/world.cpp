#include "src/runtime/world.h"

#include <string>
#include <thread>

namespace lcmpi::runtime {

Duration run_ranks(sim::Kernel& kernel, fabric::Fabric& fabric,
                   const mpi::EngineConfig& cfg, const RankFn& fn) {
  const TimePoint t0 = kernel.now();
  for (int r = 0; r < fabric.nranks(); ++r) {
    kernel.spawn("rank-" + std::to_string(r), [&fabric, cfg, fn, r](sim::Actor& self) {
      mpi::Engine engine(fabric.endpoint(r), self, cfg);
      mpi::Comm world = mpi::Comm::world(engine);
      fn(world, self);
    });
  }
  kernel.run();
  return kernel.now() - t0;
}

// ----------------------------------------------------------------- Meiko

MeikoWorld::MeikoWorld(int nranks, meiko::Calib calib, mpi::EngineConfig engine_cfg)
    : engine_cfg_(engine_cfg) {
  machine_ = std::make_unique<meiko::Machine>(kernel_, nranks, calib);
  fabric_ = std::make_unique<fabric::MeikoFabric>(*machine_);
}

Duration MeikoWorld::run(const RankFn& fn) {
  return run_ranks(kernel_, *fabric_, engine_cfg_, fn);
}

MpichMeikoWorld::MpichMeikoWorld(int nranks, meiko::Calib calib) {
  machine_ = std::make_unique<meiko::Machine>(kernel_, nranks, calib);
  for (int i = 0; i < nranks; ++i)
    tports_.push_back(std::make_unique<meiko::Tport>(*machine_, i));
}

Duration MpichMeikoWorld::run(const MpichRankFn& fn) {
  const TimePoint t0 = kernel_.now();
  const int n = nranks();
  for (int r = 0; r < n; ++r) {
    kernel_.spawn("rank-" + std::to_string(r), [this, fn, r, n](sim::Actor& self) {
      mpi::MpichComm world(*tports_[static_cast<std::size_t>(r)], self, n);
      fn(world, self);
    });
  }
  kernel_.run();
  return kernel_.now() - t0;
}

// ---------------------------------------------------------------- Cluster

ClusterWorld::ClusterWorld(int nranks, Media media, Transport transport,
                           mpi::EngineConfig engine_cfg,
                           fabric::StreamFabric::Options fabric_opt,
                           bool eth_broadcast_collectives)
    : nranks_(nranks), engine_cfg_(engine_cfg) {
  LCMPI_CHECK(!eth_broadcast_collectives || media == Media::kEthernet,
              "broadcast collectives require the Ethernet medium");
  if (media == Media::kAtm) {
    net_ = std::make_unique<atmnet::AtmNetwork>(kernel_, nranks);
    cluster_ = std::make_unique<inet::InetCluster>(*net_, inet::atm_profile());
  } else {
    net_ = std::make_unique<atmnet::EthernetNetwork>(kernel_, nranks);
    cluster_ = std::make_unique<inet::InetCluster>(*net_, inet::ethernet_profile());
  }

  // Static all-pairs connections, as in the paper's clusters.
  std::vector<std::vector<inet::StreamEndpoint*>> streams(
      static_cast<std::size_t>(nranks),
      std::vector<inet::StreamEndpoint*>(static_cast<std::size_t>(nranks), nullptr));
  std::uint16_t next_port = 10000;
  for (int i = 0; i < nranks; ++i) {
    for (int j = i + 1; j < nranks; ++j) {
      if (transport == Transport::kTcp) {
        inet::TcpConnection& c = cluster_->tcp_pair(i, j);
        streams[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = &c.on_host(i);
        streams[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = &c.on_host(j);
      } else {
        rudp_chans_.push_back(
            std::make_unique<inet::RudpChannel>(*cluster_, i, j, next_port));
        next_port = static_cast<std::uint16_t>(next_port + 2);
        inet::RudpChannel& c = *rudp_chans_.back();
        streams[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = &c.on_host(i);
        streams[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = &c.on_host(j);
      }
    }
  }
  std::vector<inet::DatagramSocket*> bcast_socks;
  if (eth_broadcast_collectives) {
    constexpr std::uint16_t kBcastPort = 9999;
    for (int i = 0; i < nranks; ++i)
      bcast_socks.push_back(&cluster_->udp_socket(i, kBcastPort));
  }
  fabric_ = std::make_unique<fabric::StreamFabric>(kernel_, std::move(streams), fabric_opt,
                                                   std::move(bcast_socks));
}

Duration ClusterWorld::run(const RankFn& fn) {
  return run_ranks(kernel_, *fabric_, engine_cfg_, fn);
}

// ------------------------------------------------------------------- Loop

LoopWorld::LoopWorld(int nranks, fabric::LoopFabric::Options opt,
                     mpi::EngineConfig engine_cfg)
    : engine_cfg_(engine_cfg) {
  fabric_ = std::make_unique<fabric::LoopFabric>(kernel_, nranks, opt);
}

Duration LoopWorld::run(const RankFn& fn) {
  return run_ranks(kernel_, *fabric_, engine_cfg_, fn);
}

// ---------------------------------------------------------------- Threads

ThreadsWorld::ThreadsWorld(int nranks, fabric::ShmFabric::Options opt,
                           mpi::EngineConfig engine_cfg)
    : engine_cfg_(engine_cfg) {
  fabric_ = std::make_unique<fabric::ShmFabric>(nranks, opt);
}

Duration ThreadsWorld::run(const RankFn& fn) {
  LCMPI_CHECK(!ran_, "a ThreadsWorld can run only once");
  ran_ = true;
  const int n = nranks();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n));
  const TimePoint t0 = fabric_->wall_now();
  for (int r = 0; r < n; ++r) {
    threads.emplace_back([this, &fn, &errors, r] {
      try {
        auto actor = sim::Actor::detached("rank-" + std::to_string(r));
        sim::Actor::BindScope bind(actor.get());
        mpi::Engine engine(fabric_->endpoint(r), *actor, engine_cfg_);
        mpi::Comm world = mpi::Comm::world(engine);
        fn(world, *actor);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const Duration elapsed = fabric_->wall_now() - t0;
  for (const std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);
  return elapsed;
}

Duration run_threads(int nranks, const RankFn& fn, fabric::ShmFabric::Options opt,
                     mpi::EngineConfig engine_cfg) {
  ThreadsWorld world(nranks, opt, engine_cfg);
  return world.run(fn);
}

}  // namespace lcmpi::runtime
