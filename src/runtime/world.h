// World builders: one object assembles a whole platform — simulator
// kernel, machine/network model, fabric, and per-rank engines — and runs a
// rank function on every rank, mirroring mpirun.
//
//   MeikoWorld      — CS/2 + the paper's low-latency MPI (mpi::Comm)
//   MpichMeikoWorld — CS/2 + MPICH-over-tport baseline (mpi::MpichComm)
//   ClusterWorld    — SGI cluster over {ATM, Ethernet} x {TCP, reliable-UDP}
//                     with the low-latency MPI (mpi::Comm)
//   LoopWorld       — idealised fabric for fast semantics tests
//   ThreadsWorld    — REAL execution: one OS thread per rank over the
//                     shared-memory SPSC-ring fabric (wall-clock time)
//   SocketWorld     — REAL execution: one OS *process* per rank over a
//                     kernel socket mesh (SocketFabric, wall-clock time)
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "src/atmnet/atm.h"
#include "src/atmnet/ethernet.h"
#include "src/core/comm.h"
#include "src/core/mpich.h"
#include "src/fabric/loop_fabric.h"
#include "src/fabric/meiko_fabric.h"
#include "src/fabric/shm_fabric.h"
#include "src/fabric/socket_fabric.h"
#include "src/fabric/stream_fabric.h"
#include "src/inet/rudp.h"
#include "src/inet/tcp.h"
#include "src/meiko/machine.h"
#include "src/meiko/tport.h"

namespace lcmpi::runtime {

/// Rank function for worlds using the low-latency MPI.
using RankFn = std::function<void(mpi::Comm& world, sim::Actor& self)>;
/// Rank function for the MPICH baseline world.
using MpichRankFn = std::function<void(mpi::MpichComm& world, sim::Actor& self)>;

class MeikoWorld {
 public:
  explicit MeikoWorld(int nranks, meiko::Calib calib = {},
                      mpi::EngineConfig engine_cfg = {});

  [[nodiscard]] sim::Kernel& kernel() { return kernel_; }
  [[nodiscard]] meiko::Machine& machine() { return *machine_; }
  [[nodiscard]] int nranks() const { return machine_->size(); }

  /// Spawns every rank running `fn` and drives the simulation to
  /// completion. Returns the elapsed virtual time.
  Duration run(const RankFn& fn);

 private:
  sim::Kernel kernel_;
  std::unique_ptr<meiko::Machine> machine_;
  std::unique_ptr<fabric::MeikoFabric> fabric_;
  mpi::EngineConfig engine_cfg_;
};

class MpichMeikoWorld {
 public:
  explicit MpichMeikoWorld(int nranks, meiko::Calib calib = {});

  [[nodiscard]] sim::Kernel& kernel() { return kernel_; }
  [[nodiscard]] meiko::Machine& machine() { return *machine_; }
  [[nodiscard]] int nranks() const { return machine_->size(); }

  Duration run(const MpichRankFn& fn);

 private:
  sim::Kernel kernel_;
  std::unique_ptr<meiko::Machine> machine_;
  std::vector<std::unique_ptr<meiko::Tport>> tports_;
};

enum class Media { kAtm, kEthernet };
enum class Transport { kTcp, kRudp };

class ClusterWorld {
 public:
  /// `eth_broadcast_collectives` enables the Bruck-et-al.-style extension:
  /// MPI_Bcast rides the Ethernet's link-layer broadcast instead of a
  /// point-to-point tree. Ethernet media only.
  ClusterWorld(int nranks, Media media, Transport transport,
               mpi::EngineConfig engine_cfg = {},
               fabric::StreamFabric::Options fabric_opt = {},
               bool eth_broadcast_collectives = false);

  [[nodiscard]] sim::Kernel& kernel() { return kernel_; }
  [[nodiscard]] atmnet::Network& network() { return *net_; }
  [[nodiscard]] inet::InetCluster& cluster() { return *cluster_; }
  [[nodiscard]] int nranks() const { return nranks_; }

  Duration run(const RankFn& fn);

 private:
  int nranks_;
  sim::Kernel kernel_;
  std::unique_ptr<atmnet::Network> net_;
  // All connections/channels live in the cluster (tcp_pair / rudp_pair):
  // one owner, and teardown order is fixed by the cluster's member order
  // (channels before the sockets they point into).
  std::unique_ptr<inet::InetCluster> cluster_;
  std::unique_ptr<fabric::StreamFabric> fabric_;
  mpi::EngineConfig engine_cfg_;
};

class LoopWorld {
 public:
  explicit LoopWorld(int nranks, fabric::LoopFabric::Options opt = {},
                     mpi::EngineConfig engine_cfg = {});

  [[nodiscard]] sim::Kernel& kernel() { return kernel_; }
  [[nodiscard]] fabric::LoopFabric& fabric() { return *fabric_; }
  [[nodiscard]] int nranks() const { return fabric_->nranks(); }

  Duration run(const RankFn& fn);

 private:
  sim::Kernel kernel_;
  std::unique_ptr<fabric::LoopFabric> fabric_;
  mpi::EngineConfig engine_cfg_;
};

/// The one world that is not a simulation: every rank is a real OS thread
/// and messages move through the lock-free SPSC rings of ShmFabric. The
/// same RankFn programs run unchanged — each thread gets a detached
/// sim::Actor (no kernel) so Actor::current(), actor-local state (the C
/// API), and the engine's cost charging (inert here) all keep working.
/// run() returns elapsed *wall-clock* time, and a World can run only once.
class ThreadsWorld {
 public:
  explicit ThreadsWorld(int nranks, fabric::ShmFabric::Options opt = {},
                        mpi::EngineConfig engine_cfg = {});

  [[nodiscard]] fabric::ShmFabric& fabric() { return *fabric_; }
  [[nodiscard]] int nranks() const { return fabric_->nranks(); }

  /// Runs `fn` on every rank concurrently; joins all threads, rethrowing
  /// the lowest-ranked escaped exception. Returns elapsed wall-clock time.
  Duration run(const RankFn& fn);

 private:
  std::unique_ptr<fabric::ShmFabric> fabric_;
  mpi::EngineConfig engine_cfg_;
  bool ran_ = false;
};

/// One-shot convenience mirroring the other worlds' run() entry points.
Duration run_threads(int nranks, const RankFn& fn,
                     fabric::ShmFabric::Options opt = {},
                     mpi::EngineConfig engine_cfg = {});

/// Rank function whose returned bytes are shipped back to the launcher —
/// the only way data leaves a SocketWorld rank, since each rank is a
/// separate process and writes to captured variables die with the child.
using CollectRankFn = std::function<Bytes(mpi::Comm& world, sim::Actor& self)>;

/// As CollectRankFn, with the rank's live SocketFabric exposed — the hook
/// scale tests and benchmarks use to ship per-rank fabric::Stats (fd
/// gauges, lazy-dial counters) back across the process boundary.
using CollectFabricRankFn = std::function<Bytes(
    mpi::Comm& world, sim::Actor& self, fabric::SocketFabric& fab)>;

/// Real execution across PROCESS boundaries: run() forks one child per
/// rank; each child builds its SocketFabric attachment (rank-0 rendezvous
/// over AF_UNIX or AF_INET loopback, lazy per-pair connections dialed on
/// first send) and runs the unchanged engine + RankFn. The launcher
/// harvests one result record per rank over a pipe — poll()ing all pipes
/// at once, because a rank that dies before ever connecting is invisible
/// to its peers' fabrics: on a recordless pipe EOF the launcher grants
/// the survivors a short grace to report their own errors, then SIGKILLs
/// the wedged stragglers and names the original death. Failure
/// propagation otherwise: a rank that threw reports its message
/// (FabricError kept as FabricError — the peer-death path), a rank that
/// died without a record is named by exit status or signal. Like
/// ThreadsWorld, a SocketWorld runs only once (second run() throws
/// std::logic_error) and run() returns elapsed wall-clock time.
class SocketWorld {
 public:
  explicit SocketWorld(int nranks, fabric::SocketFabric::Options opt = {},
                       mpi::EngineConfig engine_cfg = {});
  ~SocketWorld();
  SocketWorld(const SocketWorld&) = delete;
  SocketWorld& operator=(const SocketWorld&) = delete;

  [[nodiscard]] int nranks() const { return nranks_; }

  /// Per-rank Options override, applied in each child on top of the
  /// world's base Options before the fabric is built. This is how tests
  /// exercise asymmetric bulk negotiation (e.g. one kMemfd rank against
  /// one kStream rank — the pair must degrade to stream, not hang).
  /// Options::bulk may only vary between kStream and kMemfd: a kInline
  /// rank builds half the connections and deadlocks the mesh.
  using RankOptions =
      std::function<fabric::SocketFabric::Options(int rank,
                                                  fabric::SocketFabric::Options)>;
  void set_rank_options(RankOptions fn) { rank_opt_ = std::move(fn); }

  /// Forks, runs `fn` on every rank, joins. Returns wall-clock elapsed.
  Duration run(const RankFn& fn);

  /// As run(), but returns each rank's result bytes (index = rank).
  std::vector<Bytes> run_collect(const CollectRankFn& fn);

  /// As run_collect(), additionally handing `fn` the rank's SocketFabric.
  std::vector<Bytes> run_collect_fab(const CollectFabricRankFn& fn);

 private:
  int nranks_;
  fabric::SocketFabric::Options opt_;
  RankOptions rank_opt_;
  mpi::EngineConfig engine_cfg_;
  std::string unix_dir_;  // mkdtemp'd socket dir (kUnix), removed in dtor
  Duration elapsed_{};    // wall-clock of the (single) run
  bool ran_ = false;
};

/// One-shot convenience mirroring run_threads.
Duration run_sockets(int nranks, const RankFn& fn,
                     fabric::SocketFabric::Options opt = {},
                     mpi::EngineConfig engine_cfg = {});

/// Shared helper: spawn one actor per rank running `fn` over `fabric`.
Duration run_ranks(sim::Kernel& kernel, fabric::Fabric& fabric,
                   const mpi::EngineConfig& cfg, const RankFn& fn);

/// Shared child-side body for REAL-execution ranks — a ThreadsWorld
/// thread or a whole env-bootstrapped process (lcmpirun): binds a
/// detached actor to the calling thread, builds the engine over `ep`,
/// and hands `fn` the world communicator. Exceptions propagate to the
/// caller, which owns reporting (rethrow order, status files).
void run_detached_rank(fabric::Endpoint& ep, int rank,
                       const mpi::EngineConfig& cfg, const RankFn& fn);

}  // namespace lcmpi::runtime
