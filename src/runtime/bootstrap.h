// Cluster launch without fork-inherited state — the lcmpirun core.
//
// SocketWorld forks every rank on one machine and feeds each child a
// result pipe; nothing of that survives a hop to a second host. This
// library is the exec-based replacement: the launcher computes, for each
// rank, a command line plus a pure `LCMPI_*` environment (the
// `SocketFabric::from_env` contract), spawns it locally or through ssh,
// and collects exit status through wait/ssh exit codes plus optional
// per-rank status files — no pipes, no inherited fds, no shared address
// space. The fabric's lazy dialing is untouched: the launcher only
// decides WHERE processes run and how they find rank 0 (fixed port,
// LCMPI_ROOT_ADDR, or a shared-filesystem rendezvous file).
//
// The seam is split deliberately:
//   plan()   — pure: LaunchSpec -> one RankCmd per rank (argv + env).
//              What --dry-run prints and what tests pin, ssh included,
//              without spawning anything.
//   launch() — executes a plan: fork/exec (or ssh) each rank, reap,
//              grace-kill stragglers after a failure, report the lowest
//              failing rank first (the ThreadsWorld/SocketWorld order).
//   rank_main*() — the child side: build the fabric from env, run the
//              rank function, write `$LCMPI_STATUS_DIR/rank-R.status`.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/runtime/world.h"

namespace lcmpi::runtime::bootstrap {

/// One hostfile line: a machine and how many ranks it takes per round.
struct Host {
  std::string name;
  int slots = 1;
};

/// True for names that mean "this machine, no ssh": empty, "localhost",
/// loopback literals.
[[nodiscard]] bool is_local_host(const std::string& name);

/// Parses an mpirun-style hostfile: one host per line, optional
/// "slots=N", '#' comments. Throws std::runtime_error naming the file
/// and line on malformed input.
[[nodiscard]] std::vector<Host> parse_hostfile(const std::string& path);

/// Parses a compact host list: "a,b:4,c" ("host[:slots]", comma-split) —
/// the LCMPI_HOSTS / --hosts form.
[[nodiscard]] std::vector<Host> parse_host_list(const std::string& spec);

/// Round-robins `nranks` over the hosts' slots (all of host 0's slots,
/// then host 1's, wrapping as often as needed). Empty hosts = all local.
[[nodiscard]] std::vector<std::string> assign_hosts(
    const std::vector<Host>& hosts, int nranks);

enum class Domain : std::uint8_t { kUnix, kInet };

struct LaunchSpec {
  int nranks = 1;
  /// Empty: every rank spawns locally (and kUnix is allowed). Any
  /// non-local entry forces kInet and routes that rank through ssh.
  std::vector<Host> hosts;
  Domain domain = Domain::kUnix;
  /// kUnix rendezvous directory; empty = launch() mkdtemps one.
  std::string socket_dir;
  /// kInet: fixed rendezvous port (0 = none; needs rendezvous_file).
  std::uint16_t port = 0;
  /// kInet: rank-0-published "addr:port" file on a shared filesystem;
  /// empty with port == 0 = launch() picks a private local temp file.
  std::string rendezvous_file;
  std::string root_addr;  // LCMPI_ROOT_ADDR ("host" or "host:port")
  std::string bind_addr;  // LCMPI_BIND_ADDR
  /// Directory for per-rank status files; empty = launch() mkdtemps one
  /// (local runs) so failures carry messages, not just exit codes.
  std::string status_dir;
  /// The ssh client argv prefix for remote ranks ("ssh", or e.g.
  /// "ssh -o BatchMode=yes"; split on spaces).
  std::string ssh = "ssh";
  /// Extra "K=V" assignments shipped to every rank (app config).
  std::vector<std::string> extra_env;
  /// The application argv. For ssh ranks the path must exist on the
  /// remote host (shared filesystem or identical install).
  std::vector<std::string> cmd;
};

/// One rank's spawn recipe. For local ranks `env` is applied via
/// setenv + execvp(argv). For ssh ranks the assignments are folded into
/// the remote command ("env K=V ... cmd") and `argv` is the full ssh
/// client invocation — `env` is still filled for inspection/tests.
struct RankCmd {
  int rank = 0;
  std::string host;  // empty/localhost = local spawn
  bool via_ssh = false;
  std::vector<std::pair<std::string, std::string>> env;
  std::vector<std::string> argv;
};

/// Pure planning: validates the spec (multi-host needs kInet and an
/// addressable rendezvous; kUnix socket paths must fit sun_path) and
/// returns one RankCmd per rank. Throws std::runtime_error on a spec
/// that could not launch.
[[nodiscard]] std::vector<RankCmd> plan(const LaunchSpec& spec);

struct RankResult {
  int rank = 0;
  std::string host;
  int exit_code = 0;    // WEXITSTATUS (ssh forwards the remote status)
  int term_signal = 0;  // nonzero if the (local) process was signalled
  /// First line of the rank's status file: "ok", "error: ...", or empty
  /// when the rank never reported (no status dir, or it died first).
  std::string status;
  [[nodiscard]] bool ok() const {
    return exit_code == 0 && term_signal == 0 &&
           (status.empty() || status == "ok");
  }
};

struct LaunchResult {
  std::vector<RankResult> ranks;  // index = rank
  bool ok = false;
  int first_failed = -1;          // lowest failing rank, -1 if ok
  std::string error;              // human summary naming that rank
};

/// Executes plan(spec): spawns every rank, reaps, and — once any rank
/// fails — grants the survivors a grace period to report their own
/// errors before SIGKILLing stragglers (a dead peer leaves survivors
/// blocked in dials until their deadline; the launcher should not wait
/// that long). Never throws for rank failures (they land in the
/// result); throws std::runtime_error only when spawning itself is
/// impossible.
[[nodiscard]] LaunchResult launch(const LaunchSpec& spec);

// ---------------------------------------------------------- child side

/// True when this process was started by an env-bootstrap launcher
/// (LCMPI_RANK is set) — how a binary decides between "I am the
/// launcher" and "I am one rank of a world".
[[nodiscard]] bool env_launched();

/// Rank function with the live fabric exposed (stats shipping).
using EnvRankFn = std::function<void(mpi::Comm& world, sim::Actor& self,
                                     fabric::SocketFabric& fab)>;

/// The whole child side of an env-bootstrapped rank: builds
/// `SocketFabric::from_env(opt)`, runs `fn` as that rank (detached
/// actor, engine, world comm), writes `$LCMPI_STATUS_DIR/rank-R.status`
/// ("ok" or "error: what") if the variable is set, and returns the
/// process exit code (0 ok, 13 fabric/peer-death, 1 other failure) —
/// `main` should return it. Never throws.
[[nodiscard]] int rank_main_fab(const EnvRankFn& fn,
                                fabric::SocketFabric::Options opt = {},
                                mpi::EngineConfig cfg = {});

/// As rank_main_fab for rank functions that don't need the fabric.
[[nodiscard]] int rank_main(const RankFn& fn,
                            fabric::SocketFabric::Options opt = {},
                            mpi::EngineConfig cfg = {});

}  // namespace lcmpi::runtime::bootstrap
