#include "src/runtime/bootstrap.h"

#include <dirent.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "src/util/env.h"

namespace lcmpi::runtime::bootstrap {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error(what);
}

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> split_ws(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream in(s);
  for (std::string tok; in >> tok;) out.push_back(tok);
  return out;
}

/// POSIX-shell single-quoting for the ssh remote command line (ssh joins
/// its arguments with spaces and hands the string to the remote shell).
std::string shell_quote(const std::string& s) {
  std::string out = "'";
  for (const char c : s) {
    if (c == '\'')
      out += "'\\''";
    else
      out += c;
  }
  out += "'";
  return out;
}

std::string make_temp_dir(const char* tag) {
  const char* bases[] = {"/tmp", std::getenv("TMPDIR"), "."};
  for (const char* base : bases) {
    if (base == nullptr) continue;
    std::string tmpl = std::string(base) + "/" + tag + ".XXXXXX";
    if (::mkdtemp(tmpl.data()) != nullptr) return tmpl;
  }
  fail(std::string("cannot create a temporary directory for ") + tag);
}

void remove_tree_shallow(const std::string& dir) {
  // One level deep is all the launcher ever creates (sockets, status
  // files, the rendezvous file).
  if (dir.empty()) return;
  if (DIR* d = ::opendir(dir.c_str()); d != nullptr) {
    while (const dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name == "." || name == "..") continue;
      (void)::unlink((dir + "/" + name).c_str());
    }
    ::closedir(d);
  }
  (void)::rmdir(dir.c_str());
}

std::string read_first_line(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  if (in && std::getline(in, line)) return line;
  return "";
}

void write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return;  // best effort: exit code still reports
    out << content;
  }
  (void)::rename(tmp.c_str(), path.c_str());
}

std::string describe(const RankResult& r) {
  if (r.term_signal != 0)
    return "killed by signal " + std::to_string(r.term_signal);
  if (!r.status.empty() && r.status != "ok") return r.status;
  if (r.exit_code != 0)
    return "died without reporting (exited with status " +
           std::to_string(r.exit_code) + ")";
  return "ok";
}

}  // namespace

bool is_local_host(const std::string& name) {
  return name.empty() || name == "localhost" || name == "127.0.0.1" ||
         name == "::1";
}

std::vector<Host> parse_hostfile(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open hostfile " + path);
  std::vector<Host> hosts;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::vector<std::string> toks = split_ws(trim(line));
    if (toks.empty()) continue;
    Host h;
    h.name = toks[0];
    for (std::size_t i = 1; i < toks.size(); ++i) {
      const std::string& t = toks[i];
      const std::string where =
          path + ":" + std::to_string(lineno);
      if (t.rfind("slots=", 0) == 0) {
        try {
          h.slots = static_cast<int>(
              env::parse_long(where.c_str(), t.substr(6), 1, 1 << 20));
        } catch (const env::EnvError& e) {
          fail(std::string("hostfile ") + e.what());
        }
      } else {
        fail("hostfile " + where + ": unknown token \"" + t + "\"");
      }
    }
    hosts.push_back(std::move(h));
  }
  if (hosts.empty()) fail("hostfile " + path + " names no hosts");
  return hosts;
}

std::vector<Host> parse_host_list(const std::string& spec) {
  std::vector<Host> hosts;
  std::size_t start = 0;
  while (start <= spec.size()) {
    auto end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string item = trim(spec.substr(start, end - start));
    start = end + 1;
    if (item.empty()) continue;
    Host h;
    const auto colon = item.rfind(':');
    if (colon != std::string::npos) {
      h.name = item.substr(0, colon);
      try {
        h.slots = static_cast<int>(env::parse_long(
            "LCMPI_HOSTS slots", item.substr(colon + 1), 1, 1 << 20));
      } catch (const env::EnvError& e) {
        fail(e.what());
      }
    } else {
      h.name = item;
    }
    hosts.push_back(std::move(h));
  }
  if (hosts.empty()) fail("host list \"" + spec + "\" names no hosts");
  return hosts;
}

std::vector<std::string> assign_hosts(const std::vector<Host>& hosts,
                                      int nranks) {
  std::vector<std::string> out(static_cast<std::size_t>(nranks));
  if (hosts.empty()) return out;  // all local
  int rank = 0;
  while (rank < nranks) {
    for (const Host& h : hosts) {
      for (int s = 0; s < h.slots && rank < nranks; ++s)
        out[static_cast<std::size_t>(rank++)] = h.name;
      if (rank >= nranks) break;
    }
  }
  return out;
}

std::vector<RankCmd> plan(const LaunchSpec& spec) {
  if (spec.nranks < 1) fail("lcmpirun: nranks must be >= 1");
  if (spec.cmd.empty()) fail("lcmpirun: no command to run");
  const std::vector<std::string> where = assign_hosts(spec.hosts, spec.nranks);
  bool any_remote = false;
  for (const std::string& h : where) any_remote |= !is_local_host(h);

  if (any_remote && spec.domain == Domain::kUnix)
    fail("lcmpirun: AF_UNIX sockets cannot cross hosts — use --domain inet");
  if (spec.domain == Domain::kUnix) {
    if (spec.socket_dir.empty()) fail("lcmpirun: kUnix needs a socket dir");
    const std::string worst = spec.socket_dir + "/rank-" +
                              std::to_string(spec.nranks - 1) + ".sock";
    if (worst.size() >= sizeof(sockaddr_un{}.sun_path))
      fail("lcmpirun: socket dir \"" + spec.socket_dir +
           "\" makes AF_UNIX paths longer than sun_path (" + worst + ")");
  } else if (spec.port == 0 && spec.rendezvous_file.empty()) {
    fail("lcmpirun: AF_INET needs --port or --rendezvous-file");
  }
  if (any_remote && spec.rendezvous_file.empty() && spec.root_addr.empty() &&
      where[0].empty())
    fail("lcmpirun: multi-host launch needs a reachable rank-0 address "
         "(--root-addr, a hostfile naming rank 0's host, or a shared "
         "--rendezvous-file)");

  // Rank 0's dialable address: explicit --root-addr wins; otherwise the
  // host rank 0 was assigned to (multi-host), otherwise unset (loopback).
  std::string root = spec.root_addr;
  if (root.empty() && any_remote && !is_local_host(where[0]))
    root = where[0];

  const std::vector<std::string> ssh_words = split_ws(spec.ssh);
  if (any_remote && ssh_words.empty())
    fail("lcmpirun: empty ssh command with remote hosts");

  std::vector<RankCmd> out;
  out.reserve(static_cast<std::size_t>(spec.nranks));
  for (int r = 0; r < spec.nranks; ++r) {
    RankCmd rc;
    rc.rank = r;
    rc.host = where[static_cast<std::size_t>(r)];
    rc.via_ssh = !is_local_host(rc.host);
    rc.env.emplace_back("LCMPI_RANK", std::to_string(r));
    rc.env.emplace_back("LCMPI_NRANKS", std::to_string(spec.nranks));
    if (spec.domain == Domain::kUnix) {
      rc.env.emplace_back("LCMPI_SOCKET_DIR", spec.socket_dir);
    } else {
      if (spec.port != 0)
        rc.env.emplace_back("LCMPI_PORT", std::to_string(spec.port));
      if (!spec.rendezvous_file.empty())
        rc.env.emplace_back("LCMPI_RENDEZVOUS_FILE", spec.rendezvous_file);
      if (!root.empty()) rc.env.emplace_back("LCMPI_ROOT_ADDR", root);
      if (!spec.bind_addr.empty())
        rc.env.emplace_back("LCMPI_BIND_ADDR", spec.bind_addr);
    }
    if (!spec.status_dir.empty())
      rc.env.emplace_back("LCMPI_STATUS_DIR", spec.status_dir);
    for (const std::string& kv : spec.extra_env) {
      const auto eq = kv.find('=');
      if (eq == std::string::npos || eq == 0)
        fail("lcmpirun: malformed -x assignment \"" + kv + "\" (want K=V)");
      rc.env.emplace_back(kv.substr(0, eq), kv.substr(eq + 1));
    }
    if (rc.via_ssh) {
      // ssh host env K=V ... cmd args — quoting survives the remote
      // shell, and ssh forwards the remote exit status as its own.
      rc.argv = ssh_words;
      rc.argv.push_back(rc.host);
      rc.argv.push_back("env");
      for (const auto& [k, v] : rc.env) rc.argv.push_back(k + "=" + shell_quote(v));
      for (const std::string& w : spec.cmd) rc.argv.push_back(shell_quote(w));
    } else {
      rc.argv = spec.cmd;
    }
    out.push_back(std::move(rc));
  }
  return out;
}

LaunchResult launch(const LaunchSpec& spec_in) {
  LaunchSpec spec = spec_in;
  // Fill the local defaults a bare "lcmpirun -n 4 ./app" needs: a private
  // socket dir (kUnix), a private rendezvous file (kInet with no fixed
  // port), and a status dir so failures carry messages.
  std::vector<std::string> temp_dirs;
  if (spec.domain == Domain::kUnix && spec.socket_dir.empty()) {
    spec.socket_dir = make_temp_dir("lcmpi-sock");
    temp_dirs.push_back(spec.socket_dir);
  }
  if (spec.domain == Domain::kInet && spec.port == 0 &&
      spec.rendezvous_file.empty()) {
    const std::string dir = make_temp_dir("lcmpi-rdv");
    temp_dirs.push_back(dir);
    spec.rendezvous_file = dir + "/rendezvous";
  }
  if (spec.status_dir.empty()) {
    spec.status_dir = make_temp_dir("lcmpi-status");
    temp_dirs.push_back(spec.status_dir);
  }
  const std::vector<RankCmd> cmds = plan(spec);

  const int n = spec.nranks;
  std::vector<pid_t> pids(static_cast<std::size_t>(n), -1);
  for (const RankCmd& rc : cmds) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      // Out of processes: kill what we started and give up.
      for (pid_t p : pids)
        if (p > 0) (void)::kill(p, SIGKILL);
      for (pid_t p : pids)
        if (p > 0) (void)::waitpid(p, nullptr, 0);
      for (const std::string& d : temp_dirs) remove_tree_shallow(d);
      fail("lcmpirun: fork() failed: " + std::string(std::strerror(errno)));
    }
    if (pid == 0) {
      // Child. Local ranks get the env directly; ssh ranks carry it
      // inside the remote command line.
      if (!rc.via_ssh)
        for (const auto& [k, v] : rc.env) ::setenv(k.c_str(), v.c_str(), 1);
      std::vector<char*> argv;
      argv.reserve(rc.argv.size() + 1);
      for (const std::string& a : rc.argv)
        argv.push_back(const_cast<char*>(a.c_str()));
      argv.push_back(nullptr);
      ::execvp(argv[0], argv.data());
      std::fprintf(stderr, "lcmpirun: exec %s failed for rank %d: %s\n",
                   argv[0], rc.rank, std::strerror(errno));
      ::_exit(127);
    }
    pids[static_cast<std::size_t>(rc.rank)] = pid;
  }

  // Reap. After the first failure, survivors get a short grace to report
  // their own errors (a dead peer leaves them blocked in dials until
  // their fabric deadline — far longer than anyone should wait), then
  // stragglers are SIGKILLed. For ssh ranks the kill hits the local ssh
  // client; the remote side is left to its own fabric deadline.
  LaunchResult res;
  res.ranks.resize(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    res.ranks[static_cast<std::size_t>(r)].rank = r;
    res.ranks[static_cast<std::size_t>(r)].host =
        cmds[static_cast<std::size_t>(r)].host;
  }
  std::vector<bool> reaped(static_cast<std::size_t>(n), false);
  int remaining = n;
  bool any_failed = false;
  bool killed = false;
  std::chrono::steady_clock::time_point grace_deadline{};
  while (remaining > 0) {
    bool progressed = false;
    for (int r = 0; r < n; ++r) {
      if (reaped[static_cast<std::size_t>(r)]) continue;
      int ws = 0;
      const pid_t got =
          ::waitpid(pids[static_cast<std::size_t>(r)], &ws, WNOHANG);
      if (got == 0) continue;
      RankResult& rr = res.ranks[static_cast<std::size_t>(r)];
      if (got < 0) {
        rr.exit_code = -1;  // lost track of the child (should not happen)
      } else if (WIFSIGNALED(ws)) {
        rr.term_signal = WTERMSIG(ws);
      } else {
        rr.exit_code = WIFEXITED(ws) ? WEXITSTATUS(ws) : -1;
      }
      reaped[static_cast<std::size_t>(r)] = true;
      remaining--;
      progressed = true;
      if ((rr.exit_code != 0 || rr.term_signal != 0) && !any_failed) {
        any_failed = true;
        grace_deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(2);
      }
    }
    if (remaining == 0) break;
    if (any_failed && !killed &&
        std::chrono::steady_clock::now() >= grace_deadline) {
      for (int r = 0; r < n; ++r)
        if (!reaped[static_cast<std::size_t>(r)])
          (void)::kill(pids[static_cast<std::size_t>(r)], SIGKILL);
      killed = true;
    }
    if (!progressed)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Status files refine the exit codes into messages (and catch a rank
  // that reported an error but still exited 0 somehow).
  for (RankResult& rr : res.ranks) {
    const std::string path =
        spec.status_dir + "/rank-" + std::to_string(rr.rank) + ".status";
    rr.status = read_first_line(path);
  }
  for (const RankResult& rr : res.ranks) {
    if (!rr.ok() && res.first_failed < 0) res.first_failed = rr.rank;
  }
  res.ok = res.first_failed < 0;
  if (!res.ok) {
    const RankResult& rr =
        res.ranks[static_cast<std::size_t>(res.first_failed)];
    res.error = "rank " + std::to_string(rr.rank) +
                (rr.host.empty() ? std::string() : " (" + rr.host + ")") +
                ": " + describe(rr);
  }
  for (const std::string& d : temp_dirs) remove_tree_shallow(d);
  return res;
}

// ------------------------------------------------------------ child side

bool env_launched() { return std::getenv("LCMPI_RANK") != nullptr; }

namespace {

/// Best-effort per-rank status report — the exec-based replacement for
/// SocketWorld's result pipe. Written atomically so the launcher never
/// reads a torn line.
void write_status(const std::string& status) {
  const char* dir = std::getenv("LCMPI_STATUS_DIR");
  if (dir == nullptr) return;
  const char* rank = std::getenv("LCMPI_RANK");
  const std::string path = std::string(dir) + "/rank-" +
                           (rank != nullptr ? rank : "unknown") + ".status";
  write_file_atomic(path, status + "\n");
}

}  // namespace

int rank_main_fab(const EnvRankFn& fn, fabric::SocketFabric::Options opt,
                  mpi::EngineConfig cfg) {
  std::string status = "ok";
  int code = 0;
  try {
    fabric::SocketFabric fab = fabric::SocketFabric::from_env(opt);
    const int r = fab.local_rank();
    run_detached_rank(fab.endpoint(r), r, cfg,
                      [&fn, &fab](mpi::Comm& world, sim::Actor& self) {
                        fn(world, self, fab);
                      });
  } catch (const fabric::FabricError& e) {
    code = 13;
    status = std::string("error: ") + e.what();
  } catch (const std::exception& e) {
    code = 1;
    status = std::string("error: ") + e.what();
  } catch (...) {
    code = 1;
    status = "error: unknown exception";
  }
  write_status(status);
  return code;
}

int rank_main(const RankFn& fn, fabric::SocketFabric::Options opt,
              mpi::EngineConfig cfg) {
  return rank_main_fab(
      [&fn](mpi::Comm& world, sim::Actor& self, fabric::SocketFabric&) {
        fn(world, self);
      },
      opt, cfg);
}

}  // namespace lcmpi::runtime::bootstrap
