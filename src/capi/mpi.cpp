#include "src/capi/mpi.h"

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "src/core/cart.h"
#include "src/core/win.h"
#include "src/runtime/bootstrap.h"

namespace {

using lcmpi::MpiError;
using lcmpi::mpi::Comm;
using lcmpi::mpi::Datatype;
using lcmpi::mpi::Mode;
using lcmpi::mpi::Op;

/// Per-rank C API state. Each rank is a sim::Actor, so the state lives in
/// the actor-local storage slot (Actor::set_local) and is found through
/// Actor::current() — the classic global-feeling API gets per-rank
/// semantics under every actor backend. (A plain thread_local would only
/// work for the thread backend; under fibers every rank shares the kernel
/// thread, so thread identity no longer distinguishes ranks.)
/// A window together with a stable copy of its communicator: Win holds a
/// Comm&, and the RankState::comms vector may reallocate, so each window
/// gets its own heap-pinned Comm to reference.
struct WinState {
  explicit WinState(Comm c) : comm(std::move(c)) {}
  Comm comm;
  std::unique_ptr<lcmpi::mpi::Win> win;
};

struct RankState {
  std::vector<std::optional<Comm>> comms;       // handle -> communicator
  std::vector<lcmpi::mpi::Request> requests;    // handle -> request
  std::vector<std::optional<Datatype>> types;   // derived datatypes (>= 5)
  std::map<MPI_Comm, lcmpi::mpi::CartComm> carts;  // topology attached to a comm
  std::vector<lcmpi::Bytes> bsend_buffers;      // keep-alive for attach
  std::vector<std::unique_ptr<WinState>> wins;  // handle -> one-sided window
  bool initialized = false;
};

constexpr MPI_Datatype kFirstDerived = 5;

RankState* rank_state() {
  lcmpi::sim::Actor* a = lcmpi::sim::Actor::current();
  return a == nullptr ? nullptr : static_cast<RankState*>(a->local());
}

RankState& st() {
  RankState* s = rank_state();
  LCMPI_CHECK(s != nullptr, "MPI C API used outside capi::run_on");
  return *s;
}

Comm& comm_of(MPI_Comm c) {
  RankState& s = st();
  LCMPI_CHECK(c >= 0 && static_cast<std::size_t>(c) < s.comms.size() &&
                  s.comms[static_cast<std::size_t>(c)].has_value(),
              "bad communicator handle");
  return *s.comms[static_cast<std::size_t>(c)];
}

const Datatype& type_of(MPI_Datatype dt) {
  static const Datatype kTypes[] = {
      Datatype::byte_type(), Datatype::int32_type(), Datatype::int64_type(),
      Datatype::float_type(), Datatype::double_type()};
  if (dt >= 0 && dt < kFirstDerived) return kTypes[dt];
  RankState& s = st();
  const auto i = static_cast<std::size_t>(dt - kFirstDerived);
  LCMPI_CHECK(dt >= kFirstDerived && i < s.types.size() && s.types[i].has_value(),
              "bad datatype handle");
  return *s.types[i];
}

MPI_Datatype stash_type(Datatype t) {
  RankState& s = st();
  s.types.emplace_back(std::move(t));
  return static_cast<MPI_Datatype>(s.types.size() - 1) + kFirstDerived;
}

Op op_of(MPI_Op op) {
  switch (op) {
    case MPI_SUM: return Op::kSum;
    case MPI_PROD: return Op::kProd;
    case MPI_MIN: return Op::kMin;
    case MPI_MAX: return Op::kMax;
  }
  throw lcmpi::InternalError("bad op handle");
}

int err_code(lcmpi::Err e) {
  switch (e) {
    case lcmpi::Err::kSuccess: return MPI_SUCCESS;
    case lcmpi::Err::kTruncate: return MPI_ERR_TRUNCATE;
    case lcmpi::Err::kBadArgument: return MPI_ERR_ARG;
    case lcmpi::Err::kBufferExhausted: return MPI_ERR_BUFFER;
    case lcmpi::Err::kRange: return MPI_ERR_RANGE;
    default: return MPI_ERR_OTHER;
  }
}

void fill_status(MPI_Status* out, const lcmpi::mpi::Status& in) {
  if (out == nullptr) return;
  out->MPI_SOURCE = in.source;
  out->MPI_TAG = in.tag;
  out->MPI_ERROR = err_code(in.error);
  out->count_bytes_ = in.count_bytes;
}

/// Runs `body`, translating library errors into MPI return codes.
template <typename Fn>
int guarded(Fn&& body) {
  try {
    body();
    return MPI_SUCCESS;
  } catch (const MpiError& e) {
    return err_code(e.code());
  } catch (const lcmpi::InternalError&) {
    return MPI_ERR_INTERN;
  }
}

int do_send(const void* buf, int count, MPI_Datatype dt, int dest, int tag, MPI_Comm comm,
            Mode mode) {
  return guarded([&] { comm_of(comm).send(buf, count, type_of(dt), dest, tag, mode); });
}

MPI_Request stash_request(lcmpi::mpi::Request r) {
  RankState& s = st();
  s.requests.push_back(std::move(r));
  return static_cast<MPI_Request>(s.requests.size() - 1);
}

}  // namespace

// ------------------------------------------------------------ environment

int MPI_Init(int*, char***) {
  st().initialized = true;
  return MPI_SUCCESS;
}

int MPI_Finalize() {
  // Quiesce like real MPI_Finalize: every rank synchronises.
  return guarded([&] { comm_of(MPI_COMM_WORLD).barrier(); });
}

int MPI_Initialized(int* flag) {
  RankState* s = rank_state();
  *flag = s != nullptr && s->initialized ? 1 : 0;
  return MPI_SUCCESS;
}

double MPI_Wtime() { return comm_of(MPI_COMM_WORLD).wtime(); }

// ------------------------------------------------------------ communicator

int MPI_Comm_rank(MPI_Comm comm, int* rank) {
  return guarded([&] { *rank = comm_of(comm).rank(); });
}

int MPI_Comm_size(MPI_Comm comm, int* size) {
  return guarded([&] { *size = comm_of(comm).size(); });
}

int MPI_Comm_dup(MPI_Comm comm, MPI_Comm* newcomm) {
  return guarded([&] {
    RankState& s = st();
    s.comms.emplace_back(comm_of(comm).dup());
    *newcomm = static_cast<MPI_Comm>(s.comms.size() - 1);
  });
}

int MPI_Comm_split(MPI_Comm comm, int color, int key, MPI_Comm* newcomm) {
  return guarded([&] {
    RankState& s = st();
    auto sub = comm_of(comm).split(color, key);
    if (!sub) {
      *newcomm = MPI_COMM_NULL;
      return;
    }
    s.comms.emplace_back(std::move(*sub));
    *newcomm = static_cast<MPI_Comm>(s.comms.size() - 1);
  });
}

int MPI_Comm_free(MPI_Comm* comm) {
  return guarded([&] {
    LCMPI_CHECK(*comm != MPI_COMM_WORLD, "cannot free MPI_COMM_WORLD");
    RankState& s = st();
    LCMPI_CHECK(*comm > 0 && static_cast<std::size_t>(*comm) < s.comms.size(),
                "bad communicator handle");
    s.comms[static_cast<std::size_t>(*comm)].reset();
    *comm = MPI_COMM_NULL;
  });
}

// ---------------------------------------------------------- point-to-point

int MPI_Send(const void* buf, int count, MPI_Datatype dt, int dest, int tag, MPI_Comm comm) {
  return do_send(buf, count, dt, dest, tag, comm, Mode::kStandard);
}
int MPI_Bsend(const void* buf, int count, MPI_Datatype dt, int dest, int tag, MPI_Comm comm) {
  return do_send(buf, count, dt, dest, tag, comm, Mode::kBuffered);
}
int MPI_Ssend(const void* buf, int count, MPI_Datatype dt, int dest, int tag, MPI_Comm comm) {
  return do_send(buf, count, dt, dest, tag, comm, Mode::kSynchronous);
}
int MPI_Rsend(const void* buf, int count, MPI_Datatype dt, int dest, int tag, MPI_Comm comm) {
  return do_send(buf, count, dt, dest, tag, comm, Mode::kReady);
}

int MPI_Recv(void* buf, int count, MPI_Datatype dt, int source, int tag, MPI_Comm comm,
             MPI_Status* status) {
  return guarded([&] {
    lcmpi::mpi::Status s = comm_of(comm).recv(buf, count, type_of(dt), source, tag);
    fill_status(status, s);
  });
}

int MPI_Isend(const void* buf, int count, MPI_Datatype dt, int dest, int tag, MPI_Comm comm,
              MPI_Request* request) {
  return guarded([&] {
    *request = stash_request(comm_of(comm).isend(buf, count, type_of(dt), dest, tag));
  });
}

int MPI_Irecv(void* buf, int count, MPI_Datatype dt, int source, int tag, MPI_Comm comm,
              MPI_Request* request) {
  return guarded([&] {
    *request = stash_request(comm_of(comm).irecv(buf, count, type_of(dt), source, tag));
  });
}

int MPI_Wait(MPI_Request* request, MPI_Status* status) {
  return guarded([&] {
    RankState& s = st();
    LCMPI_CHECK(*request >= 0 && static_cast<std::size_t>(*request) < s.requests.size(),
                "bad request handle");
    lcmpi::mpi::Request r = s.requests[static_cast<std::size_t>(*request)];
    comm_of(MPI_COMM_WORLD).engine().wait(r);
    fill_status(status, comm_of(MPI_COMM_WORLD).translate(r->status));
    *request = MPI_REQUEST_NULL;
  });
}

int MPI_Waitall(int count, MPI_Request* requests, MPI_Status* statuses) {
  for (int i = 0; i < count; ++i) {
    const int rc = MPI_Wait(&requests[i], statuses == nullptr ? nullptr : &statuses[i]);
    if (rc != MPI_SUCCESS) return rc;
  }
  return MPI_SUCCESS;
}

int MPI_Test(MPI_Request* request, int* flag, MPI_Status* status) {
  return guarded([&] {
    RankState& s = st();
    LCMPI_CHECK(*request >= 0 && static_cast<std::size_t>(*request) < s.requests.size(),
                "bad request handle");
    lcmpi::mpi::Request r = s.requests[static_cast<std::size_t>(*request)];
    *flag = comm_of(MPI_COMM_WORLD).engine().test(r) ? 1 : 0;
    if (*flag) {
      fill_status(status, comm_of(MPI_COMM_WORLD).translate(r->status));
      *request = MPI_REQUEST_NULL;
    }
  });
}

int MPI_Probe(int source, int tag, MPI_Comm comm, MPI_Status* status) {
  return guarded([&] { fill_status(status, comm_of(comm).probe(source, tag)); });
}

int MPI_Iprobe(int source, int tag, MPI_Comm comm, int* flag, MPI_Status* status) {
  return guarded([&] {
    auto s = comm_of(comm).iprobe(source, tag);
    *flag = s.has_value() ? 1 : 0;
    if (s) fill_status(status, *s);
  });
}

int MPI_Get_count(const MPI_Status* status, MPI_Datatype dt, int* count) {
  const std::int64_t elem = type_of(dt).size();
  if (elem == 0 || status->count_bytes_ % elem != 0) return MPI_ERR_ARG;
  *count = static_cast<int>(status->count_bytes_ / elem);
  return MPI_SUCCESS;
}

int MPI_Sendrecv(const void* sendbuf, int sendcount, MPI_Datatype sendtype, int dest,
                 int sendtag, void* recvbuf, int recvcount, MPI_Datatype recvtype,
                 int source, int recvtag, MPI_Comm comm, MPI_Status* status) {
  return guarded([&] {
    lcmpi::mpi::Status s =
        comm_of(comm).sendrecv(sendbuf, sendcount, type_of(sendtype), dest, sendtag,
                               recvbuf, recvcount, type_of(recvtype), source, recvtag);
    fill_status(status, s);
  });
}

int MPI_Buffer_attach(void* buffer, int size) {
  // We manage the buffer internally; the caller's pointer is accepted for
  // API compatibility but the engine accounts capacity itself.
  (void)buffer;
  return guarded([&] { comm_of(MPI_COMM_WORLD).engine().buffer_attach(size); });
}

int MPI_Buffer_detach(void* buffer_addr, int* size) {
  (void)buffer_addr;
  return guarded([&] {
    *size = static_cast<int>(comm_of(MPI_COMM_WORLD).engine().buffer_detach());
  });
}

// ----------------------------------------------------------- virtual topology

namespace {
lcmpi::mpi::CartComm& cart_of(MPI_Comm comm) {
  RankState& s = st();
  auto it = s.carts.find(comm);
  LCMPI_CHECK(it != s.carts.end(), "communicator has no Cartesian topology");
  return it->second;
}
}  // namespace

int MPI_Dims_create(int nnodes, int ndims, int* dims) {
  return guarded([&] {
    std::vector<int> in(dims, dims + ndims);
    auto out = lcmpi::mpi::dims_create(nnodes, ndims, std::move(in));
    for (int i = 0; i < ndims; ++i) dims[i] = out[static_cast<std::size_t>(i)];
  });
}

int MPI_Cart_create(MPI_Comm comm, int ndims, const int* dims, const int* periods,
                    int /*reorder*/, MPI_Comm* comm_cart) {
  return guarded([&] {
    std::vector<int> d(dims, dims + ndims);
    std::vector<bool> p(static_cast<std::size_t>(ndims));
    for (int i = 0; i < ndims; ++i) p[static_cast<std::size_t>(i)] = periods[i] != 0;
    auto cart = lcmpi::mpi::CartComm::create(comm_of(comm), std::move(d), std::move(p));
    if (!cart) {
      *comm_cart = MPI_COMM_NULL;
      return;
    }
    RankState& s = st();
    // Register the cart's communicator as a fresh handle, with the
    // topology object keyed beside it.
    s.comms.emplace_back(cart->comm());
    const auto handle = static_cast<MPI_Comm>(s.comms.size() - 1);
    s.carts.emplace(handle, std::move(*cart));
    *comm_cart = handle;
  });
}

int MPI_Cartdim_get(MPI_Comm comm, int* ndims) {
  return guarded([&] { *ndims = cart_of(comm).ndims(); });
}

int MPI_Cart_coords(MPI_Comm comm, int rank, int maxdims, int* coords) {
  return guarded([&] {
    auto c = cart_of(comm).coords(rank);
    LCMPI_CHECK(static_cast<int>(c.size()) <= maxdims, "coords buffer too small");
    for (std::size_t i = 0; i < c.size(); ++i) coords[i] = c[i];
  });
}

int MPI_Cart_rank(MPI_Comm comm, const int* coords, int* rank) {
  return guarded([&] {
    auto& cart = cart_of(comm);
    std::vector<int> at(coords, coords + cart.ndims());
    *rank = cart.rank_at(std::move(at));
  });
}

int MPI_Cart_shift(MPI_Comm comm, int direction, int disp, int* rank_source,
                   int* rank_dest) {
  return guarded([&] {
    auto s = cart_of(comm).shift(direction, disp);
    *rank_source = s.source;
    *rank_dest = s.dest;
  });
}

// ----------------------------------------------------------------- datatypes

int MPI_Type_contiguous(int count, MPI_Datatype oldtype, MPI_Datatype* newtype) {
  return guarded(
      [&] { *newtype = stash_type(Datatype::contiguous(count, type_of(oldtype))); });
}

int MPI_Type_vector(int count, int blocklength, int stride, MPI_Datatype oldtype,
                    MPI_Datatype* newtype) {
  return guarded([&] {
    *newtype = stash_type(Datatype::vector(count, blocklength, stride, type_of(oldtype)));
  });
}

int MPI_Type_commit(MPI_Datatype* datatype) {
  return guarded([&] { (void)type_of(*datatype); });  // validates the handle
}

int MPI_Type_free(MPI_Datatype* datatype) {
  return guarded([&] {
    LCMPI_CHECK(*datatype >= kFirstDerived, "cannot free a basic datatype");
    RankState& s = st();
    const auto i = static_cast<std::size_t>(*datatype - kFirstDerived);
    LCMPI_CHECK(i < s.types.size() && s.types[i].has_value(), "bad datatype handle");
    s.types[i].reset();
    *datatype = -1;
  });
}

int MPI_Type_size(MPI_Datatype datatype, int* size) {
  return guarded([&] { *size = static_cast<int>(type_of(datatype).size()); });
}

// ---------------------------------------------------------------- one-sided

namespace {
lcmpi::mpi::Win& win_of(MPI_Win w) {
  RankState& s = st();
  LCMPI_CHECK(w >= 0 && static_cast<std::size_t>(w) < s.wins.size() &&
                  s.wins[static_cast<std::size_t>(w)] != nullptr,
              "bad window handle");
  return *s.wins[static_cast<std::size_t>(w)]->win;
}
}  // namespace

int MPI_Win_create(void* base, MPI_Aint size, int disp_unit, MPI_Info /*info*/,
                   MPI_Comm comm, MPI_Win* win) {
  return guarded([&] {
    RankState& s = st();
    auto ws = std::make_unique<WinState>(comm_of(comm));
    ws->win = std::make_unique<lcmpi::mpi::Win>(ws->comm, base,
                                                static_cast<std::int64_t>(size), disp_unit);
    s.wins.push_back(std::move(ws));
    *win = static_cast<MPI_Win>(s.wins.size() - 1);
  });
}

int MPI_Win_free(MPI_Win* win) {
  return guarded([&] {
    win_of(*win).free();  // throws (handle stays valid) on an open epoch
    st().wins[static_cast<std::size_t>(*win)].reset();
    *win = MPI_WIN_NULL;
  });
}

int MPI_Win_fence(int /*assert_flags*/, MPI_Win win) {
  return guarded([&] { win_of(win).fence(); });
}

int MPI_Put(const void* origin_addr, int origin_count, MPI_Datatype origin_datatype,
            int target_rank, MPI_Aint target_disp, int target_count,
            MPI_Datatype target_datatype, MPI_Win win) {
  return guarded([&] {
    win_of(win).put(origin_addr, origin_count, type_of(origin_datatype), target_rank,
                    static_cast<std::int64_t>(target_disp), target_count,
                    type_of(target_datatype));
  });
}

int MPI_Get(void* origin_addr, int origin_count, MPI_Datatype origin_datatype,
            int target_rank, MPI_Aint target_disp, int target_count,
            MPI_Datatype target_datatype, MPI_Win win) {
  return guarded([&] {
    win_of(win).get(origin_addr, origin_count, type_of(origin_datatype), target_rank,
                    static_cast<std::int64_t>(target_disp), target_count,
                    type_of(target_datatype));
  });
}

int MPI_Accumulate(const void* origin_addr, int origin_count,
                   MPI_Datatype origin_datatype, int target_rank, MPI_Aint target_disp,
                   int target_count, MPI_Datatype target_datatype, MPI_Op op,
                   MPI_Win win) {
  return guarded([&] {
    win_of(win).accumulate(origin_addr, origin_count, type_of(origin_datatype),
                           target_rank, static_cast<std::int64_t>(target_disp),
                           target_count, type_of(target_datatype), op_of(op));
  });
}

// -------------------------------------------------------------- collectives

int MPI_Barrier(MPI_Comm comm) {
  return guarded([&] { comm_of(comm).barrier(); });
}

int MPI_Bcast(void* buffer, int count, MPI_Datatype dt, int root, MPI_Comm comm) {
  return guarded([&] { comm_of(comm).bcast(buffer, count, type_of(dt), root); });
}

int MPI_Reduce(const void* sendbuf, void* recvbuf, int count, MPI_Datatype dt, MPI_Op op,
               int root, MPI_Comm comm) {
  return guarded(
      [&] { comm_of(comm).reduce(sendbuf, recvbuf, count, type_of(dt), op_of(op), root); });
}

int MPI_Allreduce(const void* sendbuf, void* recvbuf, int count, MPI_Datatype dt, MPI_Op op,
                  MPI_Comm comm) {
  return guarded(
      [&] { comm_of(comm).allreduce(sendbuf, recvbuf, count, type_of(dt), op_of(op)); });
}

int MPI_Gather(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
               int recvcount, MPI_Datatype recvtype, int root, MPI_Comm comm) {
  LCMPI_CHECK(sendtype == recvtype && sendcount == recvcount,
              "heterogeneous gather shapes unsupported");
  return guarded(
      [&] { comm_of(comm).gather(sendbuf, sendcount, recvbuf, type_of(sendtype), root); });
}

int MPI_Scatter(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                int recvcount, MPI_Datatype recvtype, int root, MPI_Comm comm) {
  LCMPI_CHECK(sendtype == recvtype && sendcount == recvcount,
              "heterogeneous scatter shapes unsupported");
  return guarded(
      [&] { comm_of(comm).scatter(sendbuf, recvbuf, recvcount, type_of(recvtype), root); });
}

int MPI_Allgather(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                  int recvcount, MPI_Datatype recvtype, MPI_Comm comm) {
  LCMPI_CHECK(sendtype == recvtype && sendcount == recvcount,
              "heterogeneous allgather shapes unsupported");
  return guarded(
      [&] { comm_of(comm).allgather(sendbuf, sendcount, recvbuf, type_of(sendtype)); });
}

int MPI_Scan(const void* sendbuf, void* recvbuf, int count, MPI_Datatype dt, MPI_Op op,
             MPI_Comm comm) {
  return guarded(
      [&] { comm_of(comm).scan(sendbuf, recvbuf, count, type_of(dt), op_of(op)); });
}

// ----------------------------------------------------------------- runners

namespace lcmpi::capi {
namespace {

template <typename World>
Duration run_impl(World& world, const std::function<void()>& c_main) {
  return world.run([&c_main](mpi::Comm& comm, sim::Actor& actor) {
    RankState state;
    state.comms.emplace_back(std::move(comm));
    actor.set_local(&state);
    try {
      c_main();
    } catch (...) {
      actor.set_local(nullptr);
      throw;
    }
    actor.set_local(nullptr);
  });
}

}  // namespace

Duration run_on(runtime::MeikoWorld& world, const std::function<void()>& c_main) {
  return run_impl(world, c_main);
}
Duration run_on(runtime::ClusterWorld& world, const std::function<void()>& c_main) {
  return run_impl(world, c_main);
}
Duration run_on(runtime::LoopWorld& world, const std::function<void()>& c_main) {
  return run_impl(world, c_main);
}
Duration run_on(runtime::ThreadsWorld& world, const std::function<void()>& c_main) {
  // Real threads: RankState still routes through Actor::current(), which a
  // detached actor pins per OS thread (Actor::BindScope in ThreadsWorld).
  return run_impl(world, c_main);
}
Duration run_on(runtime::SocketWorld& world, const std::function<void()>& c_main) {
  // Real processes: the lambda below executes in the forked child, where
  // SocketWorld binds a detached actor exactly as ThreadsWorld does.
  return run_impl(world, c_main);
}

int run_env(const std::function<void()>& c_main) {
  // One process = one rank (lcmpirun): same RankState binding as
  // run_impl, but over the fabric described by the LCMPI_* environment.
  return runtime::bootstrap::rank_main(
      [&c_main](mpi::Comm& comm, sim::Actor& actor) {
        RankState state;
        state.comms.emplace_back(std::move(comm));
        actor.set_local(&state);
        try {
          c_main();
        } catch (...) {
          actor.set_local(nullptr);
          throw;
        }
        actor.set_local(nullptr);
      });
}

}  // namespace lcmpi::capi
