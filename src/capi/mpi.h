// A classic MPI-1 C API over the low-latency library.
//
// Programs written against 1990s mpi.h — MPI_Init, MPI_Comm_rank,
// MPI_Send/MPI_Recv, collectives — run nearly verbatim on the simulated
// platforms: capi::run_on() launches a plain `void()` per rank, binding
// that rank's communicator and actor to thread-local state (each rank IS
// a thread, so the global-feeling C API stays per-rank).
//
// Handles are small integers per MPI tradition; errors return MPI error
// codes instead of throwing (MPI_ERRORS_RETURN semantics).
#pragma once

#include <functional>

#include "src/runtime/world.h"

// ---------------------------------------------------------------- handles

using MPI_Comm = int;
using MPI_Datatype = int;
using MPI_Request = int;
using MPI_Op = int;
using MPI_Win = int;
using MPI_Info = int;
using MPI_Aint = long long;

struct MPI_Status {
  int MPI_SOURCE = -1;
  int MPI_TAG = -1;
  int MPI_ERROR = 0;
  long long count_bytes_ = 0;  // internal: feeds MPI_Get_count
};

// --------------------------------------------------------------- constants

inline constexpr MPI_Comm MPI_COMM_WORLD = 0;
inline constexpr MPI_Comm MPI_COMM_NULL = -1;
inline constexpr MPI_Win MPI_WIN_NULL = -1;
inline constexpr MPI_Info MPI_INFO_NULL = 0;

inline constexpr MPI_Datatype MPI_BYTE = 0;
inline constexpr MPI_Datatype MPI_INT = 1;
inline constexpr MPI_Datatype MPI_LONG_LONG = 2;
inline constexpr MPI_Datatype MPI_FLOAT = 3;
inline constexpr MPI_Datatype MPI_DOUBLE = 4;

inline constexpr MPI_Op MPI_SUM = 0;
inline constexpr MPI_Op MPI_PROD = 1;
inline constexpr MPI_Op MPI_MIN = 2;
inline constexpr MPI_Op MPI_MAX = 3;

inline constexpr int MPI_ANY_SOURCE = lcmpi::mpi::kAnySource;
inline constexpr int MPI_ANY_TAG = lcmpi::mpi::kAnyTag;
inline constexpr int MPI_PROC_NULL = lcmpi::mpi::kProcNull;
inline constexpr MPI_Request MPI_REQUEST_NULL = -1;
inline MPI_Status* const MPI_STATUS_IGNORE = nullptr;
inline MPI_Status* const MPI_STATUSES_IGNORE = nullptr;

inline constexpr int MPI_SUCCESS = 0;
inline constexpr int MPI_ERR_TRUNCATE = 1;
inline constexpr int MPI_ERR_ARG = 2;
inline constexpr int MPI_ERR_OTHER = 3;
inline constexpr int MPI_ERR_BUFFER = 4;
inline constexpr int MPI_ERR_INTERN = 5;
inline constexpr int MPI_ERR_RANGE = 6;

// ------------------------------------------------------------ environment

int MPI_Init(int* argc, char*** argv);
int MPI_Finalize();
int MPI_Initialized(int* flag);
double MPI_Wtime();

// ------------------------------------------------------------ communicator

int MPI_Comm_rank(MPI_Comm comm, int* rank);
int MPI_Comm_size(MPI_Comm comm, int* size);
int MPI_Comm_dup(MPI_Comm comm, MPI_Comm* newcomm);
int MPI_Comm_split(MPI_Comm comm, int color, int key, MPI_Comm* newcomm);
int MPI_Comm_free(MPI_Comm* comm);

// ---------------------------------------------------------- point-to-point

int MPI_Send(const void* buf, int count, MPI_Datatype dt, int dest, int tag, MPI_Comm comm);
int MPI_Bsend(const void* buf, int count, MPI_Datatype dt, int dest, int tag, MPI_Comm comm);
int MPI_Ssend(const void* buf, int count, MPI_Datatype dt, int dest, int tag, MPI_Comm comm);
int MPI_Rsend(const void* buf, int count, MPI_Datatype dt, int dest, int tag, MPI_Comm comm);
int MPI_Recv(void* buf, int count, MPI_Datatype dt, int source, int tag, MPI_Comm comm,
             MPI_Status* status);
int MPI_Isend(const void* buf, int count, MPI_Datatype dt, int dest, int tag, MPI_Comm comm,
              MPI_Request* request);
int MPI_Irecv(void* buf, int count, MPI_Datatype dt, int source, int tag, MPI_Comm comm,
              MPI_Request* request);
int MPI_Wait(MPI_Request* request, MPI_Status* status);
int MPI_Waitall(int count, MPI_Request* requests, MPI_Status* statuses);
int MPI_Test(MPI_Request* request, int* flag, MPI_Status* status);
int MPI_Probe(int source, int tag, MPI_Comm comm, MPI_Status* status);
int MPI_Iprobe(int source, int tag, MPI_Comm comm, int* flag, MPI_Status* status);
int MPI_Get_count(const MPI_Status* status, MPI_Datatype dt, int* count);
int MPI_Sendrecv(const void* sendbuf, int sendcount, MPI_Datatype sendtype, int dest,
                 int sendtag, void* recvbuf, int recvcount, MPI_Datatype recvtype,
                 int source, int recvtag, MPI_Comm comm, MPI_Status* status);
int MPI_Buffer_attach(void* buffer, int size);
int MPI_Buffer_detach(void* buffer_addr, int* size);

// ----------------------------------------------------------- virtual topology

int MPI_Dims_create(int nnodes, int ndims, int* dims);
int MPI_Cart_create(MPI_Comm comm, int ndims, const int* dims, const int* periods,
                    int reorder, MPI_Comm* comm_cart);
int MPI_Cartdim_get(MPI_Comm comm, int* ndims);
int MPI_Cart_coords(MPI_Comm comm, int rank, int maxdims, int* coords);
int MPI_Cart_rank(MPI_Comm comm, const int* coords, int* rank);
int MPI_Cart_shift(MPI_Comm comm, int direction, int disp, int* rank_source,
                   int* rank_dest);

// ----------------------------------------------------------------- datatypes

int MPI_Type_contiguous(int count, MPI_Datatype oldtype, MPI_Datatype* newtype);
int MPI_Type_vector(int count, int blocklength, int stride, MPI_Datatype oldtype,
                    MPI_Datatype* newtype);
int MPI_Type_commit(MPI_Datatype* datatype);  // layouts are always ready: no-op
int MPI_Type_free(MPI_Datatype* datatype);
int MPI_Type_size(MPI_Datatype datatype, int* size);

// ---------------------------------------------------------------- one-sided

int MPI_Win_create(void* base, MPI_Aint size, int disp_unit, MPI_Info info,
                   MPI_Comm comm, MPI_Win* win);
int MPI_Win_free(MPI_Win* win);
int MPI_Win_fence(int assert_flags, MPI_Win win);
int MPI_Put(const void* origin_addr, int origin_count, MPI_Datatype origin_datatype,
            int target_rank, MPI_Aint target_disp, int target_count,
            MPI_Datatype target_datatype, MPI_Win win);
int MPI_Get(void* origin_addr, int origin_count, MPI_Datatype origin_datatype,
            int target_rank, MPI_Aint target_disp, int target_count,
            MPI_Datatype target_datatype, MPI_Win win);
int MPI_Accumulate(const void* origin_addr, int origin_count,
                   MPI_Datatype origin_datatype, int target_rank, MPI_Aint target_disp,
                   int target_count, MPI_Datatype target_datatype, MPI_Op op,
                   MPI_Win win);

// -------------------------------------------------------------- collectives

int MPI_Barrier(MPI_Comm comm);
int MPI_Bcast(void* buffer, int count, MPI_Datatype dt, int root, MPI_Comm comm);
int MPI_Reduce(const void* sendbuf, void* recvbuf, int count, MPI_Datatype dt, MPI_Op op,
               int root, MPI_Comm comm);
int MPI_Allreduce(const void* sendbuf, void* recvbuf, int count, MPI_Datatype dt, MPI_Op op,
                  MPI_Comm comm);
int MPI_Gather(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
               int recvcount, MPI_Datatype recvtype, int root, MPI_Comm comm);
int MPI_Scatter(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                int recvcount, MPI_Datatype recvtype, int root, MPI_Comm comm);
int MPI_Allgather(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                  int recvcount, MPI_Datatype recvtype, MPI_Comm comm);
int MPI_Scan(const void* sendbuf, void* recvbuf, int count, MPI_Datatype dt, MPI_Op op,
             MPI_Comm comm);

// ----------------------------------------------------------------- runners

namespace lcmpi::capi {

/// Runs `c_main` once per rank of the world, with the C API bound to that
/// rank. Returns elapsed virtual time.
Duration run_on(runtime::MeikoWorld& world, const std::function<void()>& c_main);
Duration run_on(runtime::ClusterWorld& world, const std::function<void()>& c_main);
Duration run_on(runtime::LoopWorld& world, const std::function<void()>& c_main);
/// Real execution: one OS thread per rank, elapsed time is wall-clock.
Duration run_on(runtime::ThreadsWorld& world, const std::function<void()>& c_main);
/// Real execution: one OS process per rank over kernel sockets; `c_main`
/// runs in the child, so side effects stay in the child (wall-clock).
Duration run_on(runtime::SocketWorld& world, const std::function<void()>& c_main);

/// Real execution as ONE rank of an env-bootstrapped world: the process
/// was started by lcmpirun (or any launcher exporting LCMPI_RANK etc. —
/// see runtime::bootstrap::env_launched()), builds its fabric with
/// SocketFabric::from_env, runs `c_main` with the C API bound, and
/// reports through its status file. Returns the process exit code for
/// main() to return.
[[nodiscard]] int run_env(const std::function<void()>& c_main);

}  // namespace lcmpi::capi
