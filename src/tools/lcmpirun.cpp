// lcmpirun — launch one process per rank across N hosts, mpirun-style.
//
// The exec-based successor to SocketWorld's single-box fork loop: every
// rank is an independent exec of the application binary, configured
// purely through `LCMPI_*` environment variables (the
// `SocketFabric::from_env` contract), so ranks can start on different
// machines. Local ranks are fork/exec'd directly; ranks assigned to a
// remote host go through ssh, with the environment folded into the
// remote command line. Rank 0 is found through a fixed port
// (`--port`), an explicit `--root-addr`, or a shared-filesystem
// rendezvous file (`--rendezvous-file`) that rank 0 publishes its
// ephemeral "addr:port" into.
//
//   lcmpirun -n 4 ./app args...                # local, AF_UNIX
//   lcmpirun -n 4 --domain inet ./app          # local, AF_INET + rdv file
//   lcmpirun -n 8 --hostfile hosts --port 7777 ./app
//   lcmpirun -n 8 --hosts a:4,b:4 --rendezvous-file /nfs/rdv ./app
//
// Hosts come from --hostfile/--hosts or the LCMPI_HOSTS variable
// ("host[:slots],..."); any non-local host forces --domain inet.
// --dry-run prints each rank's argv and environment without spawning —
// exactly what the ssh backend would ship.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/runtime/bootstrap.h"
#include "src/util/env.h"

using namespace lcmpi;
using runtime::bootstrap::LaunchSpec;

namespace {

[[noreturn]] void usage(int code) {
  std::fprintf(
      code == 0 ? stdout : stderr,
      "usage: lcmpirun -n NRANKS [options] [--] COMMAND [ARGS...]\n"
      "\n"
      "  -n, --np N            number of ranks (required)\n"
      "      --hostfile FILE   one host per line, optional 'slots=N'\n"
      "      --hosts LIST      compact form: host[:slots],host[:slots],...\n"
      "                        (default: $LCMPI_HOSTS, else all local)\n"
      "      --domain unix|inet  transport (default unix; multi-host\n"
      "                        launches force inet)\n"
      "      --port P          fixed AF_INET rendezvous port for rank 0\n"
      "      --rendezvous-file F  rank 0 publishes 'addr:port' here\n"
      "                        (must be on a filesystem all ranks share)\n"
      "      --root-addr H[:P] rank 0's dialable address\n"
      "      --bind-addr H     listener bind address (default INADDR_ANY)\n"
      "      --ssh CMD         ssh client for remote ranks (default 'ssh')\n"
      "      --status-dir D    per-rank status files (default: private tmp)\n"
      "  -x, --env K=V         extra environment shipped to every rank\n"
      "      --dry-run         print per-rank argv + env, spawn nothing\n"
      "  -h, --help\n");
  std::exit(code);
}

[[noreturn]] void bad(const std::string& msg) {
  std::fprintf(stderr, "lcmpirun: %s\n", msg.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  LaunchSpec spec;
  spec.nranks = 0;
  bool dry_run = false;
  bool domain_given = false;

  int i = 1;
  const auto need_value = [&](const char* flag) -> std::string {
    if (i + 1 >= argc) bad(std::string(flag) + " needs a value");
    return argv[++i];
  };
  for (; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "-h" || a == "--help") usage(0);
    if (a == "--") {
      ++i;
      break;
    }
    if (a == "-n" || a == "--np") {
      try {
        spec.nranks = static_cast<int>(
            env::parse_long("-n", need_value("-n"), 1, 1 << 20));
      } catch (const env::EnvError& e) {
        bad(e.what());
      }
    } else if (a == "--hostfile") {
      try {
        spec.hosts = runtime::bootstrap::parse_hostfile(need_value(a.c_str()));
      } catch (const std::exception& e) {
        bad(e.what());
      }
    } else if (a == "--hosts") {
      try {
        spec.hosts = runtime::bootstrap::parse_host_list(need_value(a.c_str()));
      } catch (const std::exception& e) {
        bad(e.what());
      }
    } else if (a == "--domain") {
      const std::string d = need_value(a.c_str());
      if (d == "unix")
        spec.domain = runtime::bootstrap::Domain::kUnix;
      else if (d == "inet")
        spec.domain = runtime::bootstrap::Domain::kInet;
      else
        bad("--domain must be unix or inet, not \"" + d + "\"");
      domain_given = true;
    } else if (a == "--port") {
      try {
        spec.port = env::parse_port("--port", need_value(a.c_str()));
      } catch (const env::EnvError& e) {
        bad(e.what());
      }
    } else if (a == "--rendezvous-file") {
      spec.rendezvous_file = need_value(a.c_str());
    } else if (a == "--root-addr") {
      spec.root_addr = need_value(a.c_str());
    } else if (a == "--bind-addr") {
      spec.bind_addr = need_value(a.c_str());
    } else if (a == "--socket-dir") {
      spec.socket_dir = need_value(a.c_str());
    } else if (a == "--ssh") {
      spec.ssh = need_value(a.c_str());
    } else if (a == "--status-dir") {
      spec.status_dir = need_value(a.c_str());
    } else if (a == "-x" || a == "--env") {
      spec.extra_env.push_back(need_value(a.c_str()));
    } else if (a == "--dry-run") {
      dry_run = true;
    } else if (!a.empty() && a[0] == '-') {
      bad("unknown option " + a + " (see --help)");
    } else {
      break;  // first non-option = start of the command
    }
  }
  for (; i < argc; ++i) spec.cmd.emplace_back(argv[i]);

  if (spec.nranks < 1) bad("-n NRANKS is required");
  if (spec.cmd.empty()) bad("no command to run (see --help)");
  if (spec.hosts.empty()) {
    if (const char* hosts = std::getenv("LCMPI_HOSTS")) {
      try {
        spec.hosts = runtime::bootstrap::parse_host_list(hosts);
      } catch (const std::exception& e) {
        bad(e.what());
      }
    }
  }
  bool any_remote = false;
  for (const auto& h : spec.hosts)
    any_remote |= !runtime::bootstrap::is_local_host(h.name);
  // Multi-host implies inet; a kInet launch with no port and no file gets
  // a private rendezvous file from launch() (local runs only — remote
  // ranks could never read it).
  if (any_remote && !domain_given)
    spec.domain = runtime::bootstrap::Domain::kInet;
  if (any_remote && spec.port == 0 && spec.rendezvous_file.empty())
    bad("multi-host launch needs --port or a shared --rendezvous-file");

  try {
    if (dry_run) {
      // Planning only — print what each rank would exec, ssh ranks with
      // the environment folded into the remote command line.
      for (const auto& rc : runtime::bootstrap::plan(spec)) {
        std::printf("rank %d on %s%s:\n", rc.rank,
                    rc.host.empty() ? "localhost" : rc.host.c_str(),
                    rc.via_ssh ? " (ssh)" : "");
        if (!rc.via_ssh)
          for (const auto& [k, v] : rc.env)
            std::printf("  env %s=%s\n", k.c_str(), v.c_str());
        std::printf("  exec");
        for (const auto& w : rc.argv) std::printf(" %s", w.c_str());
        std::printf("\n");
      }
      return 0;
    }
    const auto res = runtime::bootstrap::launch(spec);
    if (!res.ok) {
      std::fprintf(stderr, "lcmpirun: %s\n", res.error.c_str());
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lcmpirun: %s\n", e.what());
    return 2;
  }
}
