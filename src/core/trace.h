// Message-level protocol tracing.
//
// The paper's analysis is a latency decomposition: how long an envelope
// takes to build, to cross the network, to match, and to land in the user
// buffer. MsgTrace records those protocol milestones with virtual
// timestamps for every message, keyed by (sender world rank, sender
// request id) — the same key the rendezvous protocol already routes by.
// One MsgTrace is shared by all ranks of a world (the simulator runs one
// actor at a time, so no locking is needed).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "src/util/status.h"
#include "src/util/time.h"

namespace lcmpi::mpi {

enum class MsgEvent : std::uint8_t {
  kIsendStart,    // sender entered isend
  kLaunched,      // protocol message handed to the fabric
  kArrived,       // envelope reached the receiver's engine
  kMatched,       // matched a posted receive (or a receive found it)
  kDelivered,     // payload in the user buffer; receive complete
  kSendComplete,  // sender-side completion semantics satisfied
};

[[nodiscard]] const char* msg_event_name(MsgEvent e);

class MsgTrace {
 public:
  struct Key {
    int src = -1;
    std::uint64_t sender_req = 0;
    auto operator<=>(const Key&) const = default;
  };

  void record(Key key, MsgEvent ev, TimePoint t) {
    events_[key].push_back({ev, t});
  }

  /// Timestamp of `ev` for the message, if recorded.
  [[nodiscard]] std::optional<TimePoint> at(Key key, MsgEvent ev) const {
    auto it = events_.find(key);
    if (it == events_.end()) return std::nullopt;
    for (const auto& [e, t] : it->second)
      if (e == ev) return t;
    return std::nullopt;
  }

  /// Duration between two milestones of one message.
  [[nodiscard]] std::optional<Duration> span(Key key, MsgEvent from, MsgEvent to) const {
    auto a = at(key, from);
    auto b = at(key, to);
    if (!a || !b) return std::nullopt;
    return *b - *a;
  }

  [[nodiscard]] std::size_t traced_messages() const { return events_.size(); }
  [[nodiscard]] const std::map<Key, std::vector<std::pair<MsgEvent, TimePoint>>>& all()
      const {
    return events_;
  }

 private:
  std::map<Key, std::vector<std::pair<MsgEvent, TimePoint>>> events_;
};

}  // namespace lcmpi::mpi
