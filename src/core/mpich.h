// MpichComm — the ANL/MSU MPICH baseline on the Meiko, over the tport
// widget (the implementation the paper compares against in Figs. 2/3/7/8).
//
// MPI (context, source, tag) triples are squeezed into 64-bit tport tags
// and matching happens where tport does it: on the 10 MHz Elan
// co-processor, in the background. The price the paper measures is charged
// here: ADI/device-layer overhead per operation on the SPARC, extra
// SPARC<->Elan synchronisation to learn about completions the Elan
// discovered, and heavier Elan-side matching (mpich_* calibration
// constants). Collectives — including MPI_Bcast — are built from
// point-to-point messages only, which is what Fig. 7 punishes.
//
// The class mirrors mpi::Comm's surface, so applications and benchmarks
// are templates over either implementation.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/core/datatype.h"
#include "src/core/types.h"
#include "src/meiko/tport.h"

namespace lcmpi::mpi {

class MpichComm {
 public:
  /// One per rank; `tports[r]` is rank r's widget (shared across comms).
  MpichComm(meiko::Tport& tport, sim::Actor& self, int nranks);

  struct RequestState {
    bool done = false;
    Status status;
    // A matched synchronous send awaiting its ack: the ack is issued from
    // wait(), i.e. when the SPARC processes the completed receive (the
    // Elan-side callback cannot run SPARC code).
    bool ack_pending = false;
    int ack_dst = -1;
    std::uint32_t ack_id = 0;
  };
  using Request = std::shared_ptr<RequestState>;

  [[nodiscard]] int rank() const { return tport_.node_id(); }
  [[nodiscard]] int size() const { return nranks_; }

  void send(const void* buf, int count, const Datatype& type, int dst, int tag,
            Mode mode = Mode::kStandard);
  Status recv(void* buf, int count, const Datatype& type, int src, int tag);
  Request isend(const void* buf, int count, const Datatype& type, int dst, int tag,
                Mode mode = Mode::kStandard);
  Request irecv(void* buf, int count, const Datatype& type, int src, int tag);
  void wait(const Request& req);
  bool test(const Request& req);
  void wait_all(const std::vector<Request>& reqs);

  Status sendrecv(const void* sendbuf, int sendcount, const Datatype& sendtype, int dst,
                  int sendtag, void* recvbuf, int recvcount, const Datatype& recvtype,
                  int src, int recvtag);

  /// Probe/iprobe: envelope lookup on the Elan's unexpected queue.
  Status probe(int src, int tag);
  std::optional<Status> iprobe(int src, int tag);

  // Collectives: point-to-point trees only (no hardware broadcast).
  void barrier();
  void bcast(void* buf, int count, const Datatype& type, int root);
  void reduce(const void* sendbuf, void* recvbuf, int count, const Datatype& type, Op op,
              int root);
  void allreduce(const void* sendbuf, void* recvbuf, int count, const Datatype& type, Op op);
  void gather(const void* sendbuf, int sendcount, void* recvbuf, const Datatype& type,
              int root);
  void scatter(const void* sendbuf, void* recvbuf, int recvcount, const Datatype& type,
               int root);
  void allgather(const void* sendbuf, int sendcount, void* recvbuf, const Datatype& type);

 private:
  void tx(int dst, int tag, std::uint32_t context, Bytes payload, Mode mode,
          const Request& req);
  void wait_done(const Request& req);
  void charge_adi();

  meiko::Tport& tport_;
  sim::Actor& self_;
  int nranks_;
  std::uint32_t context_ = 1;  // single world communicator for the baseline
  sim::Trigger activity_;
};

}  // namespace lcmpi::mpi
