// Collective-algorithm selection — the seam between "what collective was
// called" and "which algorithm runs it".
//
// Three software algorithm families cover the latency/bandwidth plane:
//
//   kBinomial          log2(n) rounds; each payload byte crosses up to
//                      log2(n) links. Latency-optimal — short messages.
//   kScatterAllgather  van de Geijn split collectives (scatter + ring
//                      allgather for bcast, block reduce-scatter + ring
//                      allgatherv for reductions): every byte crosses each
//                      link ~twice regardless of n. Bandwidth-optimal for
//                      long messages at moderate rank counts.
//   kRing              pipelined chain, segmented at ring_segment_bytes:
//                      near-perfect link utilisation once the pipeline
//                      fills. Wins for huge messages where even the
//                      scatter phase's p-way fan-out is the bottleneck.
//
// select() maps (collective kind, payload bytes, communicator size) to one
// algorithm through the crossover table below, unless a force is in effect.
// Forces layer as: programmatic Tuning::force (tests, ablations) beats the
// LCMPI_COLL environment variable (CI forced-algorithm legs) beats the
// table. resolve() folds the environment into a Tuning once, at Engine
// construction. Hardware offload (the Meiko broadcast/barrier) is NOT part
// of this table: Comm checks fabric caps first, so a forced software
// algorithm never disables the offload path — it only picks which software
// algorithm runs when the hardware path is unavailable.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace lcmpi::mpi::coll {

enum class Algo : std::uint8_t {
  kBinomial = 0,
  kScatterAllgather = 1,
  kRing = 2,
};

/// All software algorithms, for tests/benches sweeping the space.
inline constexpr Algo kAllAlgos[] = {Algo::kBinomial, Algo::kScatterAllgather,
                                     Algo::kRing};

/// Which collective is asking (the crossover differs per collective).
enum class Kind : std::uint8_t {
  kBcast = 0,
  kReduce = 1,
  kAllreduce = 2,
  kBarrier = 3,
};

struct Tuning {
  /// Forced algorithm for every software collective (programmatic: beats
  /// the LCMPI_COLL environment variable). Unset = consult the table.
  std::optional<Algo> force;
  /// Broadcast payloads above this leave the binomial tree (bytes).
  std::int64_t long_msg_bytes = 16 * 1024;
  /// Broadcast payloads above this leave scatter-allgather for the
  /// pipelined ring.
  std::int64_t huge_msg_bytes = 128 * 1024;
  /// Reduce/allreduce payloads above this leave the binomial tree for the
  /// block reduce-scatter path (which wins earlier than the broadcast
  /// crossover: the fold work parallelises as well as the bytes do).
  std::int64_t reduce_long_msg_bytes = 4 * 1024;
  /// Pipelined-ring segment size (bytes).
  std::int64_t ring_segment_bytes = 8 * 1024;
};

[[nodiscard]] const char* name(Algo a);

/// "binomial"/"tree", "scatter_allgather"/"vdg", "ring"/"pipeline".
[[nodiscard]] std::optional<Algo> parse_algo(std::string_view s);

/// The LCMPI_COLL environment override, if set to a recognised algorithm
/// (unset, empty, or unrecognised values mean "no override").
[[nodiscard]] std::optional<Algo> env_force();

/// Folds env_force() into `t.force` when no programmatic force is present.
/// Called once at Engine construction so selection stays stable per run.
[[nodiscard]] Tuning resolve(Tuning t);

/// The selection table: exactly one algorithm per (kind, bytes, nranks)
/// cell. A force (already resolved into `t`) wins over the table.
[[nodiscard]] Algo select(Kind kind, std::int64_t bytes, int nranks, const Tuning& t);

}  // namespace lcmpi::mpi::coll
