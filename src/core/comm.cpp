#include "src/core/comm.h"

#include <algorithm>
#include <cstring>

namespace lcmpi::mpi {
namespace {

/// Internal tags for collective phases (user tags are >= 0, and the
/// collective context separates this traffic anyway). Offsets from
/// kCollTag: 0 tree bcast, +1 binomial reduce, +2 gather, +3 scatter,
/// +4 allgather, +5 alltoall, +6 context agreement, +7 scan, +8 gatherv,
/// +9 scatterv, +10 ring bcast, +11 reduce-scatter exchange, +12
/// reduce-scatter gather-to-root, +13 reduce-scatter ring allgatherv,
/// +14 chain reduce, +16 binomial-reduce root relay, +20/+21 ring-barrier
/// laps, +22/+23 tree-barrier fan-in/fan-out, +64+k dissemination rounds.
constexpr int kCollTag = 0;

/// Equal block partition of `count` elements over `n` ranks (the first
/// count%n blocks get one extra element). Shared by the reduce-scatter
/// family so senders and receivers agree on every block boundary.
void block_partition(int count, int n, std::vector<int>& starts, std::vector<int>& lens) {
  starts.assign(static_cast<std::size_t>(n), 0);
  lens.assign(static_cast<std::size_t>(n), 0);
  const int base = count / n;
  const int extra = count % n;
  int at = 0;
  for (int r = 0; r < n; ++r) {
    lens[static_cast<std::size_t>(r)] = base + (r < extra ? 1 : 0);
    starts[static_cast<std::size_t>(r)] = at;
    at += lens[static_cast<std::size_t>(r)];
  }
}

template <typename T>
void apply_op(Op op, const T* in, T* inout, int n) {
  switch (op) {
    case Op::kSum:
      for (int i = 0; i < n; ++i) inout[i] = static_cast<T>(inout[i] + in[i]);
      break;
    case Op::kProd:
      for (int i = 0; i < n; ++i) inout[i] = static_cast<T>(inout[i] * in[i]);
      break;
    case Op::kMin:
      for (int i = 0; i < n; ++i) inout[i] = std::min(inout[i], in[i]);
      break;
    case Op::kMax:
      for (int i = 0; i < n; ++i) inout[i] = std::max(inout[i], in[i]);
      break;
  }
}

}  // namespace

void reduce_op(const Datatype& type, Op op, const void* in, void* inout, int count) {
  switch (type.primitive()) {
    case Datatype::Primitive::kInt32:
      apply_op(op, static_cast<const std::int32_t*>(in), static_cast<std::int32_t*>(inout),
               count);
      break;
    case Datatype::Primitive::kInt64:
      apply_op(op, static_cast<const std::int64_t*>(in), static_cast<std::int64_t*>(inout),
               count);
      break;
    case Datatype::Primitive::kFloat:
      apply_op(op, static_cast<const float*>(in), static_cast<float*>(inout), count);
      break;
    case Datatype::Primitive::kDouble:
      apply_op(op, static_cast<const double*>(in), static_cast<double*>(inout), count);
      break;
    case Datatype::Primitive::kByte:
      apply_op(op, static_cast<const std::uint8_t*>(in), static_cast<std::uint8_t*>(inout),
               count);
      break;
    case Datatype::Primitive::kNone:
      throw MpiError(Err::kBadArgument, "reduction requires a basic numeric datatype");
  }
}

// ----------------------------------------------------------------- plumbing

Comm::Comm(Engine& engine, std::vector<int> group, int my_rank, std::uint32_t ctx_pt2pt)
    : eng_(&engine),
      group_(std::move(group)),
      my_rank_(my_rank),
      ctx_pt2pt_(ctx_pt2pt),
      ctx_coll_(ctx_pt2pt + 1) {}

Comm Comm::world(Engine& engine) {
  std::vector<int> group(static_cast<std::size_t>(engine.nranks()));
  for (int i = 0; i < engine.nranks(); ++i) group[static_cast<std::size_t>(i)] = i;
  return Comm(engine, std::move(group), engine.rank(), /*ctx_pt2pt=*/0);
}

int Comm::world_rank(int comm_rank) const {
  LCMPI_CHECK(comm_rank >= 0 && comm_rank < size(), "comm rank out of range");
  return group_[static_cast<std::size_t>(comm_rank)];
}

bool Comm::spans_world() const {
  if (size() != eng_->nranks()) return false;
  for (int i = 0; i < size(); ++i)
    if (group_[static_cast<std::size_t>(i)] != i) return false;
  return true;
}

Status Comm::translate(Status s) const {
  if (s.source != kAnySource && s.source != kProcNull) {
    auto it = std::find(group_.begin(), group_.end(), s.source);
    LCMPI_CHECK(it != group_.end(), "message from outside the group");
    s.source = static_cast<int>(it - group_.begin());
  }
  return s;
}

/// Outermost-call timing scope for the profiling interface.
class ProfScope {
 public:
  ProfScope(Profiler* p, Engine& e, CallKind kind, std::int64_t bytes)
      : p_(p), e_(e), kind_(kind), bytes_(bytes) {
    if (p_ != nullptr) {
      outermost_ = p_->enter();
      t0_ = e_.now();
    }
  }
  ~ProfScope() {
    if (p_ != nullptr) {
      p_->leave();
      if (outermost_) p_->record(kind_, e_.now() - t0_, bytes_);
    }
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  Profiler* p_;
  Engine& e_;
  CallKind kind_;
  std::int64_t bytes_;
  bool outermost_ = false;
  TimePoint t0_{};
};

// ------------------------------------------------------------ point-to-point

void Comm::send(const void* buf, int count, const Datatype& type, int dst, int tag,
                Mode mode) {
  ProfScope prof(profiler_, *eng_, CallKind::kSend, type.size() * count);
  wait(isend(buf, count, type, dst, tag, mode));
}

Status Comm::recv(void* buf, int count, const Datatype& type, int src, int tag) {
  ProfScope prof(profiler_, *eng_, CallKind::kRecv, type.size() * count);
  Request r = irecv(buf, count, type, src, tag);
  wait(r);
  return translate(r->status);
}

namespace {
/// A pre-completed request (MPI_PROC_NULL endpoints).
Request null_request(RequestState::Kind kind) {
  auto req = std::make_shared<RequestState>();
  req->kind = kind;
  req->done = true;
  req->status.source = kProcNull;
  req->status.tag = kAnyTag;
  req->status.count_bytes = 0;
  return req;
}
}  // namespace

Request Comm::isend(const void* buf, int count, const Datatype& type, int dst, int tag,
                    Mode mode) {
  ProfScope prof(profiler_, *eng_, CallKind::kIsend, type.size() * count);
  if (dst == kProcNull) return null_request(RequestState::Kind::kSend);
  return eng_->isend(buf, count, type, world_rank(dst), tag, ctx_pt2pt_, mode);
}

Request Comm::irecv(void* buf, int count, const Datatype& type, int src, int tag) {
  ProfScope prof(profiler_, *eng_, CallKind::kIrecv, type.size() * count);
  if (src == kProcNull) return null_request(RequestState::Kind::kRecv);
  const int src_world = src == kAnySource ? kAnySource : world_rank(src);
  return eng_->irecv(buf, count, type, src_world, tag, ctx_pt2pt_);
}

void Comm::wait(const Request& req) {
  ProfScope prof(profiler_, *eng_, CallKind::kWait, 0);
  eng_->wait(req);
}

bool Comm::test(const Request& req) {
  ProfScope prof(profiler_, *eng_, CallKind::kTest, 0);
  return eng_->test(req);
}

void Comm::wait_all(const std::vector<Request>& reqs) {
  for (const Request& r : reqs) eng_->wait(r);
}

std::size_t Comm::wait_any(const std::vector<Request>& reqs) {
  LCMPI_CHECK(!reqs.empty(), "wait_any on empty set");
  std::size_t found = reqs.size();
  eng_->progress_until([&] {
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      if (reqs[i]->done) {
        found = i;
        return true;
      }
    }
    return false;
  });
  return found;
}

std::vector<std::size_t> Comm::wait_some(const std::vector<Request>& reqs) {
  LCMPI_CHECK(!reqs.empty(), "wait_some on empty set");
  std::vector<std::size_t> done;
  eng_->progress_until([&] {
    done.clear();
    for (std::size_t i = 0; i < reqs.size(); ++i)
      if (reqs[i]->done) done.push_back(i);
    return !done.empty();
  });
  return done;
}

bool Comm::test_all(const std::vector<Request>& reqs) {
  eng_->progress();
  for (const Request& r : reqs)
    if (!r->done) return false;
  return true;
}

std::optional<std::size_t> Comm::test_any(const std::vector<Request>& reqs) {
  eng_->progress();
  for (std::size_t i = 0; i < reqs.size(); ++i)
    if (reqs[i]->done) return i;
  return std::nullopt;
}

Comm::PersistentOp Comm::send_init(const void* buf, int count, const Datatype& type,
                                   int dst, int tag, Mode mode) const {
  PersistentOp op;
  op.is_send = true;
  op.send_buf = buf;
  op.count = count;
  op.type = type;
  op.peer = dst;
  op.tag = tag;
  op.mode = mode;
  return op;
}

Comm::PersistentOp Comm::recv_init(void* buf, int count, const Datatype& type, int src,
                                   int tag) const {
  PersistentOp op;
  op.is_send = false;
  op.recv_buf = buf;
  op.count = count;
  op.type = type;
  op.peer = src;
  op.tag = tag;
  return op;
}

Request Comm::start(const PersistentOp& op) {
  if (op.is_send) return isend(op.send_buf, op.count, op.type, op.peer, op.tag, op.mode);
  return irecv(op.recv_buf, op.count, op.type, op.peer, op.tag);
}

Status Comm::sendrecv(const void* sendbuf, int sendcount, const Datatype& sendtype, int dst,
                      int sendtag, void* recvbuf, int recvcount, const Datatype& recvtype,
                      int src, int recvtag) {
  ProfScope prof(profiler_, *eng_, CallKind::kSendrecv, sendtype.size() * sendcount + recvtype.size() * recvcount);
  Request rr = irecv(recvbuf, recvcount, recvtype, src, recvtag);
  Request sr = isend(sendbuf, sendcount, sendtype, dst, sendtag);
  wait(sr);
  wait(rr);
  return translate(rr->status);
}

Status Comm::sendrecv_replace(void* buf, int count, const Datatype& type, int dst,
                              int sendtag, int src, int recvtag) {
  ProfScope prof(profiler_, *eng_, CallKind::kSendrecv, 2 * type.size() * count);
  // Snapshot the outgoing data (as packed bytes — the wire format anyway);
  // the incoming message overwrites the buffer.
  Bytes staging = type.pack(buf, count);
  Request rr = irecv(buf, count, type, src, recvtag);
  if (dst != kProcNull) {
    Request sr = eng_->isend(staging.data(), static_cast<int>(staging.size()),
                             Datatype::byte_type(), world_rank(dst), sendtag, ctx_pt2pt_,
                             Mode::kStandard);
    wait(sr);
  }
  wait(rr);
  return translate(rr->status);
}

Status Comm::probe(int src, int tag) {
  ProfScope prof(profiler_, *eng_, CallKind::kProbe, 0);
  const int src_world = src == kAnySource ? kAnySource : world_rank(src);
  return translate(eng_->probe(src_world, tag, ctx_pt2pt_));
}

std::optional<Status> Comm::iprobe(int src, int tag) {
  const int src_world = src == kAnySource ? kAnySource : world_rank(src);
  auto s = eng_->iprobe(src_world, tag, ctx_pt2pt_);
  if (!s) return std::nullopt;
  return translate(*s);
}

// ----------------------------------------------------------------- barriers

void Comm::barrier() {
  ProfScope prof(profiler_, *eng_, CallKind::kBarrier, 0);
  if (size() == 1) return;
  // Hardware offload is checked before software selection and is never
  // disabled by a forced software algorithm: the fat tree's combine
  // network synchronises world-spanning communicators in one round trip.
  if (eng_->caps().hw_barrier && eng_->config().use_hw_barrier && spans_world()) {
    eng_->hw_barrier();
    return;
  }
  switch (coll::select(coll::Kind::kBarrier, 0, size(), eng_->config().coll)) {
    case coll::Algo::kBinomial:
      barrier_tree();
      break;
    case coll::Algo::kScatterAllgather:
      barrier_dissemination();
      break;
    case coll::Algo::kRing:
      barrier_ring();
      break;
  }
}

void Comm::barrier_dissemination() {
  // Dissemination barrier: log2(n) rounds of paired exchanges.
  const int n = size();
  std::uint8_t token = 0;
  std::uint8_t sink = 0;
  for (int k = 1; k < n; k <<= 1) {
    const int to = (my_rank_ + k) % n;
    const int from = (my_rank_ - k % n + n) % n;
    Request rr = eng_->irecv(&sink, 1, Datatype::byte_type(), world_rank(from),
                             kCollTag + 64 + k, ctx_coll_);
    Request sr = eng_->isend(&token, 1, Datatype::byte_type(), world_rank(to),
                             kCollTag + 64 + k, ctx_coll_, Mode::kStandard);
    eng_->wait(sr);
    eng_->wait(rr);
  }
}

void Comm::barrier_tree() {
  // Binomial fan-in to rank 0, then a binomial fan-out: two half-trees of
  // empty tokens.
  const int n = size();
  std::uint8_t token = 0;
  std::uint8_t sink = 0;
  int mask = 1;
  while (mask < n) {
    if (my_rank_ & mask) {
      Request r = eng_->isend(&token, 1, Datatype::byte_type(),
                              world_rank(my_rank_ - mask), kCollTag + 22, ctx_coll_,
                              Mode::kStandard);
      eng_->wait(r);
      break;
    }
    if (my_rank_ + mask < n) {
      Request r = eng_->irecv(&sink, 1, Datatype::byte_type(),
                              world_rank(my_rank_ + mask), kCollTag + 22, ctx_coll_);
      eng_->wait(r);
    }
    mask <<= 1;
  }
  mask = 1;
  while (mask < n) {
    if (my_rank_ & mask) {
      Request r = eng_->irecv(&sink, 1, Datatype::byte_type(),
                              world_rank(my_rank_ - mask), kCollTag + 23, ctx_coll_);
      eng_->wait(r);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (my_rank_ + mask < n) {
      Request r = eng_->isend(&token, 1, Datatype::byte_type(),
                              world_rank(my_rank_ + mask), kCollTag + 23, ctx_coll_,
                              Mode::kStandard);
      eng_->wait(r);
    }
    mask >>= 1;
  }
}

void Comm::barrier_ring() {
  // Two token laps around the ring: the first lap's return to rank 0
  // proves every rank entered; the second lap releases them.
  const int n = size();
  std::uint8_t token = 0;
  std::uint8_t sink = 0;
  const int right = world_rank((my_rank_ + 1) % n);
  const int left = world_rank((my_rank_ - 1 + n) % n);
  for (int lap = 0; lap < 2; ++lap) {
    const int tag = kCollTag + 20 + lap;
    if (my_rank_ == 0) {
      Request sr = eng_->isend(&token, 1, Datatype::byte_type(), right, tag, ctx_coll_,
                               Mode::kStandard);
      eng_->wait(sr);
      Request rr = eng_->irecv(&sink, 1, Datatype::byte_type(), left, tag, ctx_coll_);
      eng_->wait(rr);
    } else {
      Request rr = eng_->irecv(&sink, 1, Datatype::byte_type(), left, tag, ctx_coll_);
      eng_->wait(rr);
      Request sr = eng_->isend(&token, 1, Datatype::byte_type(), right, tag, ctx_coll_,
                               Mode::kStandard);
      eng_->wait(sr);
    }
  }
}

// ---------------------------------------------------------------- broadcast

void Comm::p2p_tree_bcast(void* buf, int count, const Datatype& type, int root) {
  // Binomial tree over relative ranks (MPICH-style point-to-point bcast).
  const int n = size();
  const int vrank = (my_rank_ - root + n) % n;
  int mask = 1;
  while (mask < n) {
    if (vrank & mask) {
      const int parent = ((vrank - mask) + root) % n;
      Request r = eng_->irecv(buf, count, type, world_rank(parent), kCollTag, ctx_coll_);
      eng_->wait(r);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < n) {
      const int child = ((vrank + mask) + root) % n;
      Request r = eng_->isend(buf, count, type, world_rank(child), kCollTag, ctx_coll_,
                              Mode::kStandard);
      eng_->wait(r);
    }
    mask >>= 1;
  }
}

void Comm::scatter_allgather_bcast(void* buf, int count, const Datatype& type, int root) {
  // van de Geijn: scatter the payload in equal blocks, then ring-allgather
  // them back — every byte crosses each link ~twice regardless of rank
  // count, vs log2(n) times for the tree. Wins for long messages.
  const int p = size();
  const std::int64_t total = type.size() * count;
  const std::int64_t block = (total + p - 1) / p;
  auto bt = Datatype::byte_type();

  // Staging comes from the engine's pool: a broadcast-heavy loop reuses
  // the same two allocations instead of paying a multi-megabyte malloc
  // per call. resize() value-initializes, matching the old fresh vectors.
  BufferPool& pool = eng_->pool();
  Bytes packed = pool.acquire(static_cast<std::size_t>(block) * static_cast<std::size_t>(p));
  packed.resize(static_cast<std::size_t>(block) * static_cast<std::size_t>(p));
  if (my_rank_ == root) {
    Bytes real = type.pack(buf, count);
    std::copy(real.begin(), real.end(), packed.begin());
  }
  Bytes mine = pool.acquire(static_cast<std::size_t>(block));
  mine.resize(static_cast<std::size_t>(block));
  scatter(packed.data(), mine.data(), static_cast<int>(block), bt, root);
  allgather(mine.data(), static_cast<int>(block), packed.data(), bt);
  if (my_rank_ != root) {
    packed.resize(static_cast<std::size_t>(total));
    type.unpack(packed, buf, count);
  }
  pool.release(std::move(packed));
  pool.release(std::move(mine));
}

void Comm::ring_bcast(void* buf, int count, const Datatype& type, int root) {
  // Pipelined chain in root-relative rank order: the payload streams
  // through the ring in ring_segment_bytes slices, so every byte crosses
  // each link exactly once and all links run concurrently once the
  // pipeline fills. Wins for huge messages.
  const int n = size();
  const int vrank = (my_rank_ - root + n) % n;
  const std::int64_t total = type.size() * count;
  if (total == 0) return;
  auto bt = Datatype::byte_type();
  BufferPool& pool = eng_->pool();
  Bytes packed = pool.acquire(static_cast<std::size_t>(total));
  if (my_rank_ == root) {
    type.pack_append(buf, count, packed);
  } else {
    packed.resize(static_cast<std::size_t>(total));
  }
  const std::int64_t seg =
      std::max<std::int64_t>(1, eng_->config().coll.ring_segment_bytes);
  const int prev = world_rank((my_rank_ - 1 + n) % n);
  const int next = world_rank((my_rank_ + 1) % n);
  for (std::int64_t off = 0; off < total; off += seg) {
    const int len = static_cast<int>(std::min(seg, total - off));
    if (vrank > 0) {
      Request r = eng_->irecv(packed.data() + off, len, bt, prev, kCollTag + 10, ctx_coll_);
      eng_->wait(r);
    }
    if (vrank + 1 < n) {
      Request r = eng_->isend(packed.data() + off, len, bt, next, kCollTag + 10, ctx_coll_,
                              Mode::kStandard);
      eng_->wait(r);
    }
  }
  if (my_rank_ != root) type.unpack(packed, buf, count);
  pool.release(std::move(packed));
}

void Comm::bcast(void* buf, int count, const Datatype& type, int root) {
  ProfScope prof(profiler_, *eng_, CallKind::kBcast, type.size() * count);
  LCMPI_CHECK(root >= 0 && root < size(), "bcast root out of range");
  if (size() == 1) {
    ++bcast_seq_;
    return;
  }
  // Hardware offload is checked before software selection and is never
  // disabled by a forced software algorithm (the force only picks which
  // software algorithm runs when the offload path is unavailable).
  const bool hw = eng_->caps().hw_broadcast && eng_->config().use_hw_bcast && spans_world();
  if (hw) {
    // The Meiko hardware broadcast: one launch reaches every node.
    const std::uint64_t seq = bcast_seq_++;
    if (my_rank_ == root) {
      eng_->hw_bcast_root(type.pack(buf, count), ctx_coll_, seq);
    } else {
      Bytes payload = eng_->hw_bcast_recv(ctx_coll_, seq);
      const std::int64_t capacity = type.size() * count;
      if (static_cast<std::int64_t>(payload.size()) > capacity)
        throw MpiError(Err::kTruncate, "broadcast payload exceeds receive buffer");
      type.unpack(payload, buf, count);
    }
    return;
  }
  ++bcast_seq_;
  switch (coll::select(coll::Kind::kBcast, type.size() * count, size(),
                       eng_->config().coll)) {
    case coll::Algo::kBinomial:
      p2p_tree_bcast(buf, count, type, root);
      break;
    case coll::Algo::kScatterAllgather:
      scatter_allgather_bcast(buf, count, type, root);
      break;
    case coll::Algo::kRing:
      ring_bcast(buf, count, type, root);
      break;
  }
}

// --------------------------------------------------------------- reductions

void Comm::binomial_reduce(const void* sendbuf, void* recvbuf, int count,
                           const Datatype& type, const CombineFn& combine, int root) {
  // Binomial reduction tree rooted at rank 0: children fold into parents,
  // and a parent's accumulator always covers a contiguous lower rank range
  // while the incoming child data covers the adjacent higher range — so
  // contributions combine in ascending rank order and non-commutative ops
  // are safe. Rooting at 0 keeps that order independent of `root`; the
  // result is relayed to a non-zero root in one extra message.
  const int n = size();
  const std::size_t bytes = static_cast<std::size_t>(type.size() * count);
  BufferPool& pool = eng_->pool();
  Bytes acc = pool.acquire(bytes);
  acc.resize(bytes);
  std::memcpy(acc.data(), sendbuf, bytes);
  Bytes incoming = pool.acquire(bytes);
  incoming.resize(bytes);
  int mask = 1;
  while (mask < n) {
    if (my_rank_ & mask) {
      Request r = eng_->isend(acc.data(), count, type, world_rank(my_rank_ - mask),
                              kCollTag + 1, ctx_coll_, Mode::kStandard);
      eng_->wait(r);
      break;
    }
    if (my_rank_ + mask < n) {
      Request r = eng_->irecv(incoming.data(), count, type, world_rank(my_rank_ + mask),
                              kCollTag + 1, ctx_coll_);
      eng_->wait(r);
      combine(incoming.data(), acc.data(), count);
    }
    mask <<= 1;
  }
  if (root == 0) {
    if (my_rank_ == 0) std::memcpy(recvbuf, acc.data(), bytes);
  } else if (my_rank_ == 0) {
    Request r = eng_->isend(acc.data(), count, type, world_rank(root), kCollTag + 16,
                            ctx_coll_, Mode::kStandard);
    eng_->wait(r);
  } else if (my_rank_ == root) {
    Request r = eng_->irecv(recvbuf, count, type, world_rank(0), kCollTag + 16, ctx_coll_);
    eng_->wait(r);
  }
  pool.release(std::move(acc));
  pool.release(std::move(incoming));
}

void Comm::chain_reduce(const void* sendbuf, void* recvbuf, int count, const Datatype& type,
                        const CombineFn& combine, int root) {
  // Pipelined bidirectional chain: ranks below the root stream a growing
  // prefix fold upward (0 -> root), ranks above stream a suffix fold
  // downward (n-1 -> root), segment by segment; the root splices
  // prefix op own op suffix. Contributions always combine in ascending
  // rank order, and the segmentation overlaps the links into a pipeline.
  const int n = size();
  const auto elem = static_cast<std::size_t>(type.size());
  const std::size_t bytes = elem * static_cast<std::size_t>(count);
  const int seg_elems = std::max(
      1, static_cast<int>(static_cast<std::size_t>(std::max<std::int64_t>(
                              1, eng_->config().coll.ring_segment_bytes)) /
                          elem));
  BufferPool& pool = eng_->pool();
  Bytes own = pool.acquire(bytes);
  own.resize(bytes);
  std::memcpy(own.data(), sendbuf, bytes);
  Bytes stage = pool.acquire(static_cast<std::size_t>(seg_elems) * elem);
  stage.resize(static_cast<std::size_t>(seg_elems) * elem);
  auto* out = static_cast<std::byte*>(recvbuf);
  for (int at = 0; at < count; at += seg_elems) {
    const int len = std::min(seg_elems, count - at);
    std::byte* own_seg = own.data() + static_cast<std::size_t>(at) * elem;
    if (my_rank_ < root) {
      if (my_rank_ > 0) {
        Request r = eng_->irecv(stage.data(), len, type, world_rank(my_rank_ - 1),
                                kCollTag + 14, ctx_coll_);
        eng_->wait(r);
        combine(own_seg, stage.data(), len);  // stage = prefix(0..r-1) op own
        Request s = eng_->isend(stage.data(), len, type, world_rank(my_rank_ + 1),
                                kCollTag + 14, ctx_coll_, Mode::kStandard);
        eng_->wait(s);
      } else {
        Request s = eng_->isend(own_seg, len, type, world_rank(my_rank_ + 1),
                                kCollTag + 14, ctx_coll_, Mode::kStandard);
        eng_->wait(s);
      }
    } else if (my_rank_ > root) {
      if (my_rank_ < n - 1) {
        Request r = eng_->irecv(stage.data(), len, type, world_rank(my_rank_ + 1),
                                kCollTag + 14, ctx_coll_);
        eng_->wait(r);
        combine(stage.data(), own_seg, len);  // own = own op suffix(r+1..n-1)
      }
      Request s = eng_->isend(own_seg, len, type, world_rank(my_rank_ - 1), kCollTag + 14,
                              ctx_coll_, Mode::kStandard);
      eng_->wait(s);
    } else {
      std::byte* out_seg = out + static_cast<std::size_t>(at) * elem;
      if (root > 0) {
        Request r = eng_->irecv(stage.data(), len, type, world_rank(root - 1),
                                kCollTag + 14, ctx_coll_);
        eng_->wait(r);
        std::memcpy(out_seg, stage.data(), static_cast<std::size_t>(len) * elem);
        combine(own_seg, out_seg, len);  // out = prefix op own
      } else {
        std::memcpy(out_seg, own_seg, static_cast<std::size_t>(len) * elem);
      }
      if (root < n - 1) {
        Request r = eng_->irecv(stage.data(), len, type, world_rank(root + 1),
                                kCollTag + 14, ctx_coll_);
        eng_->wait(r);
        combine(stage.data(), out_seg, len);  // out op= suffix
      }
    }
  }
  pool.release(std::move(own));
  pool.release(std::move(stage));
}

void Comm::reduce_scatter_ascending(const void* sendbuf, const Datatype& type,
                                    const std::vector<int>& starts,
                                    const std::vector<int>& lens, const CombineFn& combine,
                                    std::byte* myblock) {
  // Direct exchange: rank b owns block b, everyone sends its contribution
  // for block b straight to the owner (a transposed all-to-all), then each
  // owner folds the n contributions in ascending rank order. Combined with
  // a gather or ring allgatherv this moves every payload byte ~twice total
  // regardless of rank count — the bandwidth-optimal family.
  const int n = size();
  const auto elem = static_cast<std::size_t>(type.size());
  const auto* in = static_cast<const std::byte*>(sendbuf);
  const auto myl = static_cast<std::size_t>(lens[static_cast<std::size_t>(my_rank_)]);
  BufferPool& pool = eng_->pool();
  Bytes contrib = pool.acquire(myl * elem * static_cast<std::size_t>(n));
  contrib.resize(myl * elem * static_cast<std::size_t>(n));
  std::vector<Request> reqs;
  for (int s = 0; s < n && myl > 0; ++s) {
    std::byte* slot = contrib.data() + static_cast<std::size_t>(s) * myl * elem;
    if (s == my_rank_) {
      std::memcpy(slot,
                  in + static_cast<std::size_t>(starts[static_cast<std::size_t>(s)]) * elem,
                  myl * elem);
      continue;
    }
    reqs.push_back(eng_->irecv(slot, static_cast<int>(myl), type, world_rank(s),
                               kCollTag + 11, ctx_coll_));
  }
  for (int b = 0; b < n; ++b) {
    if (b == my_rank_ || lens[static_cast<std::size_t>(b)] == 0) continue;
    reqs.push_back(eng_->isend(
        in + static_cast<std::size_t>(starts[static_cast<std::size_t>(b)]) * elem,
        lens[static_cast<std::size_t>(b)], type, world_rank(b), kCollTag + 11, ctx_coll_,
        Mode::kStandard));
  }
  for (const Request& r : reqs) eng_->wait(r);
  if (myl > 0) {
    std::memcpy(myblock, contrib.data(), myl * elem);
    for (int s = 1; s < n; ++s)
      combine(contrib.data() + static_cast<std::size_t>(s) * myl * elem, myblock,
              static_cast<int>(myl));
  }
  pool.release(std::move(contrib));
}

void Comm::rs_reduce(const void* sendbuf, void* recvbuf, int count, const Datatype& type,
                     const CombineFn& combine, int root) {
  // Reduce-scatter, then gather the reduced blocks at the root.
  const int n = size();
  const auto elem = static_cast<std::size_t>(type.size());
  std::vector<int> starts;
  std::vector<int> lens;
  block_partition(count, n, starts, lens);
  const auto myl = static_cast<std::size_t>(lens[static_cast<std::size_t>(my_rank_)]);
  BufferPool& pool = eng_->pool();
  Bytes myblock = pool.acquire(myl * elem);
  myblock.resize(myl * elem);
  reduce_scatter_ascending(sendbuf, type, starts, lens, combine, myblock.data());
  if (my_rank_ == root) {
    auto* out = static_cast<std::byte*>(recvbuf);
    std::memcpy(out + static_cast<std::size_t>(starts[static_cast<std::size_t>(root)]) * elem,
                myblock.data(), myl * elem);
    std::vector<Request> reqs;
    for (int b = 0; b < n; ++b) {
      if (b == my_rank_ || lens[static_cast<std::size_t>(b)] == 0) continue;
      reqs.push_back(eng_->irecv(
          out + static_cast<std::size_t>(starts[static_cast<std::size_t>(b)]) * elem,
          lens[static_cast<std::size_t>(b)], type, world_rank(b), kCollTag + 12, ctx_coll_));
    }
    for (const Request& r : reqs) eng_->wait(r);
  } else if (myl > 0) {
    Request r = eng_->isend(myblock.data(), static_cast<int>(myl), type, world_rank(root),
                            kCollTag + 12, ctx_coll_, Mode::kStandard);
    eng_->wait(r);
  }
  pool.release(std::move(myblock));
}

void Comm::rs_allreduce(const void* sendbuf, void* recvbuf, int count, const Datatype& type,
                        const CombineFn& combine) {
  // Reduce-scatter, then a ring allgatherv of the reduced blocks.
  const int n = size();
  const auto elem = static_cast<std::size_t>(type.size());
  std::vector<int> starts;
  std::vector<int> lens;
  block_partition(count, n, starts, lens);
  auto* out = static_cast<std::byte*>(recvbuf);
  const auto block_at = [&](int b) {
    return out + static_cast<std::size_t>(starts[static_cast<std::size_t>(b)]) * elem;
  };
  reduce_scatter_ascending(sendbuf, type, starts, lens, combine, block_at(my_rank_));
  const int left = world_rank((my_rank_ - 1 + n) % n);
  const int right = world_rank((my_rank_ + 1) % n);
  int have = my_rank_;
  for (int step = 0; step < n - 1; ++step) {
    const int incoming = (my_rank_ - 1 - step + 2 * n) % n;
    Request rr;
    Request sr;
    if (lens[static_cast<std::size_t>(incoming)] > 0)
      rr = eng_->irecv(block_at(incoming), lens[static_cast<std::size_t>(incoming)], type,
                       left, kCollTag + 13, ctx_coll_);
    if (lens[static_cast<std::size_t>(have)] > 0)
      sr = eng_->isend(block_at(have), lens[static_cast<std::size_t>(have)], type, right,
                       kCollTag + 13, ctx_coll_, Mode::kStandard);
    if (sr) eng_->wait(sr);
    if (rr) eng_->wait(rr);
    have = incoming;
  }
}

void Comm::reduce_impl(const void* sendbuf, void* recvbuf, int count, const Datatype& type,
                       const CombineFn& combine, int root, coll::Algo algo) {
  if (count == 0) return;
  if (size() == 1) {
    std::memmove(recvbuf, sendbuf, static_cast<std::size_t>(type.size() * count));
    return;
  }
  switch (algo) {
    case coll::Algo::kBinomial:
      binomial_reduce(sendbuf, recvbuf, count, type, combine, root);
      break;
    case coll::Algo::kScatterAllgather:
      rs_reduce(sendbuf, recvbuf, count, type, combine, root);
      break;
    case coll::Algo::kRing:
      chain_reduce(sendbuf, recvbuf, count, type, combine, root);
      break;
  }
}

void Comm::allreduce_impl(const void* sendbuf, void* recvbuf, int count,
                          const Datatype& type, const CombineFn& combine) {
  if (count == 0) return;
  if (size() == 1) {
    // 1-rank fast path: a plain copy — no tree, no pool staging.
    std::memmove(recvbuf, sendbuf, static_cast<std::size_t>(type.size() * count));
    return;
  }
  switch (coll::select(coll::Kind::kAllreduce, type.size() * count, size(),
                       eng_->config().coll)) {
    case coll::Algo::kBinomial:
      // Reduce to 0, then bcast — which dispatches again and may take the
      // hardware broadcast (today's Meiko behavior for short payloads).
      reduce_impl(sendbuf, recvbuf, count, type, combine, 0, coll::Algo::kBinomial);
      bcast(recvbuf, count, type, 0);
      break;
    case coll::Algo::kScatterAllgather:
      rs_allreduce(sendbuf, recvbuf, count, type, combine);
      break;
    case coll::Algo::kRing:
      reduce_impl(sendbuf, recvbuf, count, type, combine, 0, coll::Algo::kRing);
      ring_bcast(recvbuf, count, type, 0);
      break;
  }
}

void Comm::reduce(const void* sendbuf, void* recvbuf, int count, const Datatype& type,
                  Op op, int root) {
  ProfScope prof(profiler_, *eng_, CallKind::kReduce, type.size() * count);
  LCMPI_CHECK(type.is_contiguous(), "reduce requires a contiguous basic type");
  LCMPI_CHECK(root >= 0 && root < size(), "reduce root out of range");
  const CombineFn combine = [&type, op](const void* in, void* inout, int cnt) {
    reduce_op(type, op, in, inout, cnt);
  };
  reduce_impl(sendbuf, recvbuf, count, type, combine, root,
              coll::select(coll::Kind::kReduce, type.size() * count, size(),
                           eng_->config().coll));
}

void Comm::allreduce(const void* sendbuf, void* recvbuf, int count, const Datatype& type,
                     Op op) {
  ProfScope prof(profiler_, *eng_, CallKind::kAllreduce, type.size() * count);
  LCMPI_CHECK(type.is_contiguous(), "allreduce requires a contiguous basic type");
  const CombineFn combine = [&type, op](const void* in, void* inout, int cnt) {
    reduce_op(type, op, in, inout, cnt);
  };
  allreduce_impl(sendbuf, recvbuf, count, type, combine);
}

void Comm::reduce(const void* sendbuf, void* recvbuf, int count, const Datatype& type,
                  const UserOp& op, int root) {
  ProfScope prof(profiler_, *eng_, CallKind::kReduce, type.size() * count);
  LCMPI_CHECK(type.is_contiguous(), "reduce requires a contiguous type");
  LCMPI_CHECK(root >= 0 && root < size(), "reduce root out of range");
  reduce_impl(sendbuf, recvbuf, count, type, op, root,
              coll::select(coll::Kind::kReduce, type.size() * count, size(),
                           eng_->config().coll));
}

void Comm::allreduce(const void* sendbuf, void* recvbuf, int count, const Datatype& type,
                     const UserOp& op) {
  ProfScope prof(profiler_, *eng_, CallKind::kAllreduce, type.size() * count);
  LCMPI_CHECK(type.is_contiguous(), "allreduce requires a contiguous type");
  allreduce_impl(sendbuf, recvbuf, count, type, op);
}

// --------------------------------------------------------- gather / scatter

void Comm::gather(const void* sendbuf, int sendcount, void* recvbuf, const Datatype& type,
                  int root) {
  ProfScope prof(profiler_, *eng_, CallKind::kGather, type.size() * sendcount);
  const std::size_t block = static_cast<std::size_t>(type.size() * sendcount);
  if (my_rank_ == root) {
    auto* out = static_cast<std::byte*>(recvbuf);
    std::memcpy(out + static_cast<std::size_t>(my_rank_) * block, sendbuf, block);
    std::vector<Request> reqs;
    for (int r = 0; r < size(); ++r) {
      if (r == my_rank_) continue;
      reqs.push_back(eng_->irecv(out + static_cast<std::size_t>(r) * block, sendcount, type,
                                 world_rank(r), kCollTag + 2, ctx_coll_));
    }
    for (const Request& r : reqs) eng_->wait(r);
  } else {
    Request r = eng_->isend(sendbuf, sendcount, type, world_rank(root), kCollTag + 2,
                            ctx_coll_, Mode::kStandard);
    eng_->wait(r);
  }
}

void Comm::scatter(const void* sendbuf, void* recvbuf, int recvcount, const Datatype& type,
                   int root) {
  ProfScope prof(profiler_, *eng_, CallKind::kScatter, type.size() * recvcount);
  const std::size_t block = static_cast<std::size_t>(type.size() * recvcount);
  if (my_rank_ == root) {
    const auto* in = static_cast<const std::byte*>(sendbuf);
    std::vector<Request> reqs;
    for (int r = 0; r < size(); ++r) {
      if (r == my_rank_) {
        std::memcpy(recvbuf, in + static_cast<std::size_t>(r) * block, block);
        continue;
      }
      reqs.push_back(eng_->isend(in + static_cast<std::size_t>(r) * block, recvcount, type,
                                 world_rank(r), kCollTag + 3, ctx_coll_, Mode::kStandard));
    }
    for (const Request& r : reqs) eng_->wait(r);
  } else {
    Request r =
        eng_->irecv(recvbuf, recvcount, type, world_rank(root), kCollTag + 3, ctx_coll_);
    eng_->wait(r);
  }
}

void Comm::allgather(const void* sendbuf, int sendcount, void* recvbuf,
                     const Datatype& type) {
  ProfScope prof(profiler_, *eng_, CallKind::kAllgather, type.size() * sendcount);
  // Ring allgather: n-1 steps, each passing one block around.
  const int n = size();
  const std::size_t block = static_cast<std::size_t>(type.size() * sendcount);
  auto* out = static_cast<std::byte*>(recvbuf);
  std::memcpy(out + static_cast<std::size_t>(my_rank_) * block, sendbuf, block);
  const int right = (my_rank_ + 1) % n;
  const int left = (my_rank_ - 1 + n) % n;
  int have = my_rank_;  // block we forward this step
  for (int step = 0; step < n - 1; ++step) {
    const int incoming = (my_rank_ - 1 - step + 2 * n) % n;
    Request rr = eng_->irecv(out + static_cast<std::size_t>(incoming) * block, sendcount,
                             type, world_rank(left), kCollTag + 4, ctx_coll_);
    Request sr = eng_->isend(out + static_cast<std::size_t>(have) * block, sendcount, type,
                             world_rank(right), kCollTag + 4, ctx_coll_, Mode::kStandard);
    eng_->wait(sr);
    eng_->wait(rr);
    have = incoming;
  }
}

void Comm::alltoall(const void* sendbuf, int count_per_peer, void* recvbuf,
                    const Datatype& type) {
  ProfScope prof(profiler_, *eng_, CallKind::kAlltoall, type.size() * count_per_peer);
  const int n = size();
  const std::size_t block = static_cast<std::size_t>(type.size() * count_per_peer);
  const auto* in = static_cast<const std::byte*>(sendbuf);
  auto* out = static_cast<std::byte*>(recvbuf);
  std::memcpy(out + static_cast<std::size_t>(my_rank_) * block,
              in + static_cast<std::size_t>(my_rank_) * block, block);
  std::vector<Request> reqs;
  for (int r = 0; r < n; ++r) {
    if (r == my_rank_) continue;
    reqs.push_back(eng_->irecv(out + static_cast<std::size_t>(r) * block, count_per_peer,
                               type, world_rank(r), kCollTag + 5, ctx_coll_));
  }
  for (int r = 0; r < n; ++r) {
    if (r == my_rank_) continue;
    reqs.push_back(eng_->isend(in + static_cast<std::size_t>(r) * block, count_per_peer,
                               type, world_rank(r), kCollTag + 5, ctx_coll_,
                               Mode::kStandard));
  }
  for (const Request& r : reqs) eng_->wait(r);
}

void Comm::scan(const void* sendbuf, void* recvbuf, int count, const Datatype& type,
                Op op) {
  ProfScope prof(profiler_, *eng_, CallKind::kScan, type.size() * count);
  // Linear chain: receive the prefix from rank-1, fold, pass to rank+1.
  const std::size_t bytes = static_cast<std::size_t>(type.size() * count);
  std::memcpy(recvbuf, sendbuf, bytes);
  std::vector<std::byte> prefix(bytes);
  if (my_rank_ > 0) {
    Request r = eng_->irecv(prefix.data(), count, type, world_rank(my_rank_ - 1),
                            kCollTag + 7, ctx_coll_);
    eng_->wait(r);
    reduce_op(type, op, prefix.data(), recvbuf, count);
  }
  if (my_rank_ + 1 < size()) {
    Request r = eng_->isend(recvbuf, count, type, world_rank(my_rank_ + 1), kCollTag + 7,
                            ctx_coll_, Mode::kStandard);
    eng_->wait(r);
  }
}

void Comm::reduce_scatter_block(const void* sendbuf, void* recvbuf, int count_per_rank,
                                const Datatype& type, Op op) {
  const int n = size();
  std::vector<std::byte> full(static_cast<std::size_t>(type.size()) *
                              static_cast<std::size_t>(count_per_rank) *
                              static_cast<std::size_t>(n));
  reduce(sendbuf, full.data(), count_per_rank * n, type, op, 0);
  scatter(full.data(), recvbuf, count_per_rank, type, 0);
}

void Comm::gatherv(const void* sendbuf, int sendcount, void* recvbuf,
                   const std::vector<int>& counts, const std::vector<int>& displs,
                   const Datatype& type, int root) {
  LCMPI_CHECK(static_cast<int>(counts.size()) == size() &&
                  static_cast<int>(displs.size()) == size(),
              "gatherv shape mismatch");
  if (my_rank_ == root) {
    auto* out = static_cast<std::byte*>(recvbuf);
    std::vector<Request> reqs;
    for (int r = 0; r < size(); ++r) {
      std::byte* dst = out + static_cast<std::size_t>(displs[static_cast<std::size_t>(r)]) *
                                 static_cast<std::size_t>(type.extent());
      if (r == my_rank_) {
        Bytes packed = type.pack(sendbuf, sendcount);
        type.unpack(packed, dst, counts[static_cast<std::size_t>(r)]);
        continue;
      }
      reqs.push_back(eng_->irecv(dst, counts[static_cast<std::size_t>(r)], type,
                                 world_rank(r), kCollTag + 8, ctx_coll_));
    }
    for (const Request& r : reqs) eng_->wait(r);
  } else {
    Request r = eng_->isend(sendbuf, sendcount, type, world_rank(root), kCollTag + 8,
                            ctx_coll_, Mode::kStandard);
    eng_->wait(r);
  }
}

void Comm::scatterv(const void* sendbuf, const std::vector<int>& counts,
                    const std::vector<int>& displs, void* recvbuf, int recvcount,
                    const Datatype& type, int root) {
  LCMPI_CHECK(static_cast<int>(counts.size()) == size() &&
                  static_cast<int>(displs.size()) == size(),
              "scatterv shape mismatch");
  if (my_rank_ == root) {
    const auto* in = static_cast<const std::byte*>(sendbuf);
    std::vector<Request> reqs;
    for (int r = 0; r < size(); ++r) {
      const std::byte* src = in + static_cast<std::size_t>(displs[static_cast<std::size_t>(r)]) *
                                      static_cast<std::size_t>(type.extent());
      if (r == my_rank_) {
        Bytes packed = type.pack(src, counts[static_cast<std::size_t>(r)]);
        type.unpack(packed, recvbuf, recvcount);
        continue;
      }
      reqs.push_back(eng_->isend(src, counts[static_cast<std::size_t>(r)], type,
                                 world_rank(r), kCollTag + 9, ctx_coll_, Mode::kStandard));
    }
    for (const Request& r : reqs) eng_->wait(r);
  } else {
    Request r = eng_->irecv(recvbuf, recvcount, type, world_rank(root), kCollTag + 9,
                            ctx_coll_);
    eng_->wait(r);
  }
}

// --------------------------------------------------- communicator management

std::uint32_t Comm::agree_new_context() {
  // Everyone proposes their engine's next free context; the max wins, and
  // all members advance past it. Overlapping communicators share member
  // ranks, so the counter information always propagates.
  std::uint32_t mine = eng_->next_context_;
  std::uint32_t agreed = mine;
  // allreduce(max) over this comm using p2p (coll context, distinct tag).
  const int n = size();
  const int vrank = my_rank_;
  int mask = 1;
  while (mask < n) {
    if (vrank & mask) {
      const int parent = vrank - mask;
      Request r = eng_->isend(&agreed, 1, Datatype::int32_type(), world_rank(parent),
                              kCollTag + 6, ctx_coll_, Mode::kStandard);
      eng_->wait(r);
      break;
    }
    if (vrank + mask < n) {
      std::uint32_t other = 0;
      Request r = eng_->irecv(&other, 1, Datatype::int32_type(), world_rank(vrank + mask),
                              kCollTag + 6, ctx_coll_);
      eng_->wait(r);
      agreed = std::max(agreed, other);
    }
    mask <<= 1;
  }
  p2p_tree_bcast(&agreed, 1, Datatype::int32_type(), 0);
  eng_->next_context_ = agreed + 2;
  return agreed;
}

Comm Comm::dup() {
  ProfScope prof(profiler_, *eng_, CallKind::kCommMgmt, 0);
  const std::uint32_t ctx = agree_new_context();
  Comm child(*eng_, group_, my_rank_, ctx);
  child.profiler_ = profiler_;
  return child;
}

std::optional<Comm> Comm::create_from_group(const Group& g) {
  for (int r : g.ranks())
    LCMPI_CHECK(std::find(group_.begin(), group_.end(), r) != group_.end(),
                "create_from_group: group not a subset of the communicator");
  const int my_new_rank = g.rank_of(eng_->rank());
  auto sub = split(my_new_rank >= 0 ? 0 : -1, my_new_rank);
  if (!sub) return std::nullopt;
  LCMPI_CHECK(sub->group_ == g.ranks(), "create_from_group rank ordering mismatch");
  return sub;
}

std::optional<Comm> Comm::split(int color, int key) {
  // Gather (color, key, world_rank) from everyone via allgather.
  struct Entry {
    std::int32_t color;
    std::int32_t key;
    std::int32_t world;
  };
  std::vector<Entry> all(static_cast<std::size_t>(size()));
  Entry mine{color, key, eng_->rank()};
  allgather(&mine, static_cast<int>(sizeof(Entry)), all.data(), Datatype::byte_type());

  const std::uint32_t ctx = agree_new_context();
  if (color < 0) return std::nullopt;

  std::vector<Entry> members;
  for (const Entry& e : all)
    if (e.color == color) members.push_back(e);
  std::sort(members.begin(), members.end(), [](const Entry& a, const Entry& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.world < b.world;
  });
  std::vector<int> group;
  int my_new_rank = -1;
  for (std::size_t i = 0; i < members.size(); ++i) {
    group.push_back(members[i].world);
    if (members[i].world == eng_->rank()) my_new_rank = static_cast<int>(i);
  }
  LCMPI_CHECK(my_new_rank >= 0, "rank missing from its own split group");
  Comm child(*eng_, std::move(group), my_new_rank, ctx);
  child.profiler_ = profiler_;
  return child;
}

}  // namespace lcmpi::mpi
