#include "src/core/trace.h"

namespace lcmpi::mpi {

const char* msg_event_name(MsgEvent e) {
  switch (e) {
    case MsgEvent::kIsendStart: return "isend-start";
    case MsgEvent::kLaunched: return "launched";
    case MsgEvent::kArrived: return "arrived";
    case MsgEvent::kMatched: return "matched";
    case MsgEvent::kDelivered: return "delivered";
    case MsgEvent::kSendComplete: return "send-complete";
  }
  return "?";
}

}  // namespace lcmpi::mpi
