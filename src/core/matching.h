// Send/receive matching — the queues at the heart of the paper's design.
//
// MPI receives may wildcard the source and the tag, so matching must happen
// at the receiver (paper §4.1). Two FIFO queues per rank implement it:
// posted receives awaiting messages, and unexpected messages awaiting
// receives. Arrival order gives the MPI non-overtaking guarantee, because
// the fabrics deliver in order per (sender, receiver) pair.
//
// Both queues report how many entries a lookup scanned; the engine charges
// that to the matching processor — the term the paper moves from the
// 10 MHz Elan to the 40 MHz SPARC.
//
// Host-time implementation: hash buckets keyed by (context, source) with a
// global arrival sequence number per queue. A non-wildcard lookup touches
// only its own bucket (O(1) expected when sources are spread); a wildcard
// receive walks a per-context arrival-order index — one entry per arrival,
// pointing back into the buckets — so its cost is linear in the candidates
// it actually examines, not in the number of live source buckets.
// The *virtual* cost stays that of the paper's linear scan: `scanned` is
// the matched entry's rank in global arrival order among the entries still
// queued, computed by a Fenwick order-statistic over sequence numbers —
// bit-identical to counting the entries a linear scan would have examined.
// The original linear implementation is retained in matching_ref.h as the
// executable specification; tests/matching_property_test.cpp asserts
// equivalence on randomized workloads.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/matching_ref.h"  // envelope_matches + Linear* reference
#include "src/core/types.h"
#include "src/fabric/fabric.h"

namespace lcmpi::mpi {

/// Host-time observability counters for one matching queue (virtual-time
/// charges are derived from `entries_scanned`, so this is also how the
/// cost model stays auditable after the bucketed rewrite).
struct MatchStats {
  std::int64_t lookups = 0;          // match/peek calls
  std::int64_t hits = 0;             // lookups that found an entry
  std::int64_t entries_scanned = 0;  // sum of logical `scanned` counts
  std::size_t max_depth = 0;         // high-water queue depth
  std::size_t depth = 0;             // current queue depth
  std::size_t buckets = 0;           // current (context, src) bucket count
  std::size_t max_bucket = 0;        // deepest current bucket
};

/// Order statistics over a queue's arrival sequence numbers: how many live
/// entries arrived at or before a given one. That count is exactly the
/// number of entries a linear FIFO scan examines to reach it, which is the
/// paper's per-match processor charge. Sequence numbers are dense
/// (0,1,2,...); a Fenwick tree over them gives O(log n) insert/erase/rank.
/// Dead prefixes are compacted away once they dominate, so memory tracks
/// the live span of the queue, not its total history.
class ArrivalRanker {
 public:
  /// Registers the next sequence number (must be issued densely ascending).
  void insert_next() {
    alive_.push_back(true);
    const std::size_t i = alive_.size();  // 1-based Fenwick index
    if (tree_.empty()) tree_.push_back(0);
    const std::size_t lo = i - lowbit(i);
    std::int32_t v = 1;
    if (lo + 1 < i) v += static_cast<std::int32_t>(prefix(i - 1) - prefix(lo));
    tree_.push_back(v);
    ++live_;
  }

  void erase(std::uint64_t seq) {
    const std::size_t idx = static_cast<std::size_t>(seq - base_);
    alive_[idx] = false;
    add(idx + 1, -1);
    --live_;
    if (idx == head_) {
      while (head_ < alive_.size() && !alive_[head_]) ++head_;
      maybe_compact();
    }
  }

  /// Live entries with sequence number <= seq (the logical scan count).
  [[nodiscard]] std::size_t rank(std::uint64_t seq) const {
    return prefix(static_cast<std::size_t>(seq - base_) + 1);
  }

  [[nodiscard]] std::size_t size() const { return live_; }

 private:
  static std::size_t lowbit(std::size_t i) { return i & (~i + 1); }

  void add(std::size_t i, std::int32_t delta) {
    for (; i < tree_.size(); i += lowbit(i)) tree_[i] += delta;
  }

  [[nodiscard]] std::size_t prefix(std::size_t i) const {
    std::int64_t s = 0;
    for (; i > 0; i -= lowbit(i)) s += tree_[i];
    return static_cast<std::size_t>(s);
  }

  // Drop the dead prefix once it is most of the structure. O(remaining)
  // rebuild, amortized O(1) per erase because the prefix must regrow past
  // half the (doubled-from-live) span before the next compaction.
  void maybe_compact() {
    if (alive_.size() < 64 || head_ * 2 < alive_.size()) return;
    alive_.erase(alive_.begin(), alive_.begin() + static_cast<std::ptrdiff_t>(head_));
    base_ += head_;
    head_ = 0;
    const std::size_t n = alive_.size();
    tree_.assign(n + 1, 0);
    for (std::size_t i = 1; i <= n; ++i) {
      if (alive_[i - 1]) tree_[i] += 1;
      const std::size_t j = i + lowbit(i);
      if (j <= n) tree_[j] += tree_[i];
    }
  }

  std::uint64_t base_ = 0;   // sequence number of alive_[0]
  std::size_t head_ = 0;     // first possibly-live slot (dead-prefix bound)
  std::size_t live_ = 0;
  std::vector<bool> alive_;
  std::vector<std::int32_t> tree_;  // Fenwick over alive_, [0] unused
};

namespace detail {
/// Bucket key: (context, source). kAnySource (-1) hashes like any value.
inline std::uint64_t match_key(std::uint32_t ctx, int src) {
  return (static_cast<std::uint64_t>(ctx) << 32) |
         static_cast<std::uint32_t>(src);
}
}  // namespace detail

/// FIFO of posted receives, bucketed by (context, posted source). Wildcard
/// sources live in the (context, kAnySource) bucket.
///
/// A concrete envelope arriving in a context with *no* live MPI_ANY_SOURCE
/// receives scans only its own bucket — no wildcard-bucket lookup, no
/// merge machinery. When wildcards are parked, the probe walks the
/// context's arrival-order index (the same stale-counting deque the
/// unexpected queue uses for the mirror-image case): candidates from the
/// exact and wildcard buckets are visited in arrival order, and entries
/// belonging to other sources' concrete buckets are skipped by a pointer
/// compare without their buckets ever being merge-scanned. `scanned`
/// billing is unchanged either way (Fenwick rank of the matched arrival).
class PostedQueue {
 public:
  struct Entry {
    std::uint32_t context = 0;
    int src = kAnySource;  // world rank or kAnySource
    int tag = kAnyTag;
    std::uint64_t request_id = 0;
  };

  void post(Entry e) {
    const std::uint64_t seq = next_seq_++;
    ranker_.insert_next();
    const std::uint64_t key = detail::match_key(e.context, e.src);
    const std::uint32_t ctx = e.context;
    Bucket& b = buckets_[key];  // references survive rehashing
    b.push_back(Stamped{e, seq});
    ctx_index_[ctx].order.push_back(IndexEntry{seq, &b});
    stats_.depth = ranker_.size();
    if (stats_.depth > stats_.max_depth) stats_.max_depth = stats_.depth;
  }

  /// First posted receive accepting the envelope; removed if found.
  /// `scanned` counts entries a linear scan would have examined.
  std::optional<Entry> match(std::uint32_t ctx, int src, int tag, std::size_t* scanned) {
    Bucket* wild = find_bucket(detail::match_key(ctx, kAnySource));
    if (src == kAnySource) {
      // A kAnySource probe (tests only; envelopes always carry a concrete
      // sender) can only be accepted by wildcard-posted receives.
      if (wild != nullptr) {
        for (std::size_t i = 0; i < wild->size(); ++i) {
          if ((*wild)[i].e.tag == kAnyTag || (*wild)[i].e.tag == tag)
            return take(ctx, *wild, i, scanned);
        }
      }
      return miss(scanned);
    }
    Bucket* exact = find_bucket(detail::match_key(ctx, src));
    if (wild == nullptr || wild->empty()) {
      // No parked wildcards: the exact bucket is the whole candidate set.
      if (exact != nullptr) {
        for (std::size_t i = 0; i < exact->size(); ++i) {
          if ((*exact)[i].e.tag == kAnyTag || (*exact)[i].e.tag == tag)
            return take(ctx, *exact, i, scanned);
        }
      }
      return miss(scanned);
    }
    // Parked wildcards: walk the context's arrivals oldest-first. Entries
    // in other sources' concrete buckets are skipped by pointer compare —
    // their buckets are never content-scanned.
    CtxIndex& ix = ctx_index_[ctx];
    maybe_sweep(ix);
    std::size_t pos = 0;
    while (pos < ix.order.size()) {
      const IndexEntry en = ix.order[pos];
      if (en.bucket != exact && en.bucket != wild) {
        ++pos;
        continue;
      }
      const std::size_t bi = position_of(*en.bucket, en.seq);
      if (bi == kNpos) {
        // Stale. At the head it can be unlinked for good; mid-queue it is
        // skipped until a sweep collects it.
        if (pos == 0) {
          ix.order.pop_front();
          --ix.stale;
        } else {
          ++pos;
        }
        continue;
      }
      const Stamped& s = (*en.bucket)[bi];
      if (s.e.tag == kAnyTag || s.e.tag == tag)
        return take(ctx, *const_cast<Bucket*>(en.bucket), bi, scanned);
      ++pos;
    }
    return miss(scanned);
  }

  /// Removes a posted receive (MPI_Cancel-style); true if it was present.
  /// Cancellation is rare, so this walks the buckets rather than taxing
  /// every post/match with a request-id index.
  bool remove(std::uint64_t request_id) {
    for (auto& [key, b] : buckets_) {
      for (std::size_t i = 0; i < b.size(); ++i) {
        if (b[i].e.request_id == request_id) {
          erase_at(b[i].e.context, b, i);
          return true;
        }
      }
    }
    return false;
  }

  [[nodiscard]] std::size_t size() const { return ranker_.size(); }

  [[nodiscard]] MatchStats stats() const { return finish_stats(stats_, buckets_); }

 private:
  struct Stamped {
    Entry e;
    std::uint64_t seq;
  };
  using Bucket = std::deque<Stamped>;

  /// One arrival, as the per-context index saw it (see UnexpectedQueue:
  /// bucket nodes are stable; entries go stale rather than being unlinked).
  struct IndexEntry {
    std::uint64_t seq;
    const Bucket* bucket;
  };
  struct CtxIndex {
    std::deque<IndexEntry> order;  // every post of the context, seq order
    std::size_t stale = 0;         // entries whose receive was consumed
  };

  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  // Empty buckets are kept alive (their deque keeps its allocation for the
  // next entry with that key), so occupancy counts only non-empty ones.
  template <typename Buckets>
  static MatchStats finish_stats(MatchStats s, const Buckets& buckets) {
    for (const auto& [k, b] : buckets) {
      if (b.empty()) continue;
      ++s.buckets;
      if (b.size() > s.max_bucket) s.max_bucket = b.size();
    }
    return s;
  }

  /// Position of `seq` in a bucket (seq-sorted), or kNpos if consumed.
  static std::size_t position_of(const Bucket& b, std::uint64_t seq) {
    auto it = std::lower_bound(
        b.begin(), b.end(), seq,
        [](const Stamped& s, std::uint64_t v) { return s.seq < v; });
    if (it == b.end() || it->seq != seq) return kNpos;
    return static_cast<std::size_t>(it - b.begin());
  }

  /// Drops consumed index entries once they dominate, so wildcard-present
  /// walks stay linear in live posts. Also called from the erase path:
  /// contexts that never park a wildcard would otherwise accrete stale
  /// entries without bound, since only the walk prunes incrementally.
  void maybe_sweep(CtxIndex& ix) {
    if (ix.stale < 16 || ix.stale * 2 <= ix.order.size()) return;
    std::deque<IndexEntry> live;
    for (const IndexEntry& en : ix.order)
      if (position_of(*en.bucket, en.seq) != kNpos) live.push_back(en);
    ix.order.swap(live);
    ix.stale = 0;
  }

  Bucket* find_bucket(std::uint64_t key) {
    auto it = buckets_.find(key);
    return it == buckets_.end() ? nullptr : &it->second;
  }

  std::optional<Entry> take(std::uint32_t ctx, Bucket& b, std::size_t i,
                            std::size_t* scanned) {
    const Entry e = b[i].e;
    const std::size_t n = ranker_.rank(b[i].seq);
    note_lookup(n, true);
    if (scanned) *scanned = n;
    erase_at(ctx, b, i);
    return e;
  }

  std::optional<Entry> miss(std::size_t* scanned) {
    note_lookup(ranker_.size(), false);
    if (scanned) *scanned = ranker_.size();
    return std::nullopt;
  }

  void erase_at(std::uint32_t ctx, Bucket& b, std::size_t i) {
    ranker_.erase(b[i].seq);
    b.erase(b.begin() + static_cast<std::ptrdiff_t>(i));
    stats_.depth = ranker_.size();
    CtxIndex& ix = ctx_index_[ctx];
    ++ix.stale;  // its arrival-index entry now dangles
    maybe_sweep(ix);
  }

  void note_lookup(std::size_t scanned, bool hit) {
    ++stats_.lookups;
    stats_.hits += hit ? 1 : 0;
    stats_.entries_scanned += static_cast<std::int64_t>(scanned);
  }

  std::unordered_map<std::uint64_t, Bucket> buckets_;
  // Per-context arrival-order index, consulted by concrete probes when
  // MPI_ANY_SOURCE receives are parked in the context.
  std::unordered_map<std::uint32_t, CtxIndex> ctx_index_;
  ArrivalRanker ranker_;
  std::uint64_t next_seq_ = 0;
  MatchStats stats_;
};

/// FIFO of messages that arrived before a matching receive was posted,
/// bucketed by (context, sender). A concrete-source receive looks at one
/// bucket; a wildcard-source receive walks the context's arrival-order
/// index (one entry per arrival, in sequence order) instead of
/// merge-scanning every source bucket of the context.
class UnexpectedQueue {
 public:
  void add(fabric::ProtoMsg msg) {
    buffered_bytes_ += static_cast<std::int64_t>(msg.payload.size());
    const std::uint64_t seq = next_seq_++;
    ranker_.insert_next();
    const std::uint64_t key = detail::match_key(msg.context, msg.src);
    const std::uint32_t ctx = msg.context;
    Bucket& b = buckets_[key];  // references survive rehashing
    b.push_back(Stamped{std::move(msg), seq});
    ctx_index_[ctx].order.push_back(IndexEntry{seq, &b});
    stats_.depth = ranker_.size();
    if (stats_.depth > stats_.max_depth) stats_.max_depth = stats_.depth;
  }

  /// First unexpected message a (context, src-or-any, tag-or-any) receive
  /// accepts; removed if found.
  std::optional<fabric::ProtoMsg> match(std::uint32_t ctx, int src, int tag,
                                        std::size_t* scanned) {
    const Location loc = find(ctx, src, tag, scanned);
    if (loc.bucket == nullptr) return std::nullopt;
    Bucket& b = const_cast<Bucket&>(*loc.bucket);  // *this is non-const here
    fabric::ProtoMsg m = std::move(b[loc.index].msg);
    ranker_.erase(b[loc.index].seq);
    b.erase(b.begin() + static_cast<std::ptrdiff_t>(loc.index));
    ++ctx_index_[ctx].stale;  // its arrival-index entry now dangles
    buffered_bytes_ -= static_cast<std::int64_t>(m.payload.size());
    stats_.depth = ranker_.size();
    return m;
  }

  /// Probe: peek without removing.
  [[nodiscard]] const fabric::ProtoMsg* peek(std::uint32_t ctx, int src, int tag,
                                             std::size_t* scanned) const {
    const Location loc = find(ctx, src, tag, scanned);
    return loc.bucket == nullptr ? nullptr : &(*loc.bucket)[loc.index].msg;
  }

  /// Bytes of eager payload parked here (Burns & Daoud resource accounting).
  [[nodiscard]] std::int64_t buffered_bytes() const { return buffered_bytes_; }
  [[nodiscard]] std::size_t size() const { return ranker_.size(); }

  [[nodiscard]] MatchStats stats() const {
    MatchStats s = stats_;
    for (const auto& [k, b] : buckets_) {
      if (b.empty()) continue;
      ++s.buckets;
      if (b.size() > s.max_bucket) s.max_bucket = b.size();
    }
    return s;
  }

 private:
  struct Stamped {
    fabric::ProtoMsg msg;
    std::uint64_t seq;
  };
  using Bucket = std::deque<Stamped>;

  struct Location {
    const Bucket* bucket = nullptr;
    std::size_t index = 0;
  };

  /// One arrival, as the per-context index saw it. Bucket pointers are
  /// stable (unordered_map never moves its nodes); the entry goes stale —
  /// rather than being unlinked — when the message is consumed, because
  /// consumption happens in the bucket, which has no back-pointer here.
  struct IndexEntry {
    std::uint64_t seq;
    const Bucket* bucket;
  };
  struct CtxIndex {
    std::deque<IndexEntry> order;  // every arrival of the context, seq order
    std::size_t stale = 0;         // entries whose message was consumed
  };

  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  /// Position of `seq` in a bucket, or kNpos if consumed. Buckets are
  /// seq-sorted (adds are stamped by one monotone counter), so this is a
  /// binary search.
  static std::size_t position_of(const Bucket& b, std::uint64_t seq) {
    auto it = std::lower_bound(
        b.begin(), b.end(), seq,
        [](const Stamped& s, std::uint64_t v) { return s.seq < v; });
    if (it == b.end() || it->seq != seq) return kNpos;
    return static_cast<std::size_t>(it - b.begin());
  }

  /// Earliest-arrival message the pattern accepts; also records the
  /// lookup's logical scan count into `scanned` and the stats.
  Location find(std::uint32_t ctx, int src, int tag, std::size_t* scanned) const {
    if (src != kAnySource) {
      auto it = buckets_.find(detail::match_key(ctx, src));
      if (it != buckets_.end()) {
        const Bucket& b = it->second;
        for (std::size_t i = 0; i < b.size(); ++i) {
          if (tag == kAnyTag || b[i].msg.tag == tag) return found(b, i, scanned);
        }
      }
    } else if (auto cit = ctx_index_.find(ctx); cit != ctx_index_.end()) {
      // Walk the context's arrivals oldest-first: the same candidates, in
      // the same order, as a merge-scan over its source buckets — without
      // paying a bucket-head comparison per live source at every step.
      CtxIndex& ix = cit->second;
      if (ix.stale >= 16 && ix.stale * 2 > ix.order.size()) {
        // Consumed entries dominate: drop them in one sweep (amortized
        // against the matches that created them), so wildcard walks stay
        // linear in *live* entries.
        std::deque<IndexEntry> live;
        for (const IndexEntry& en : ix.order)
          if (position_of(*en.bucket, en.seq) != kNpos) live.push_back(en);
        ix.order.swap(live);
        ix.stale = 0;
      }
      std::size_t pos = 0;
      while (pos < ix.order.size()) {
        const IndexEntry en = ix.order[pos];
        const std::size_t bi = position_of(*en.bucket, en.seq);
        if (bi == kNpos) {
          // Stale. At the head it can be unlinked for good; mid-queue it
          // is skipped until a sweep collects it.
          if (pos == 0) {
            ix.order.pop_front();
            --ix.stale;
          } else {
            ++pos;
          }
          continue;
        }
        const Stamped& s = (*en.bucket)[bi];
        if (tag == kAnyTag || s.msg.tag == tag) return found(*en.bucket, bi, scanned);
        ++pos;
      }
    }
    note_lookup(ranker_.size(), false);
    if (scanned) *scanned = ranker_.size();
    return {};
  }

  Location found(const Bucket& b, std::size_t i, std::size_t* scanned) const {
    const std::size_t n = ranker_.rank(b[i].seq);
    note_lookup(n, true);
    if (scanned) *scanned = n;
    return Location{&b, i};
  }

  void note_lookup(std::size_t scanned, bool hit) const {
    ++stats_.lookups;
    stats_.hits += hit ? 1 : 0;
    stats_.entries_scanned += static_cast<std::int64_t>(scanned);
  }

  std::unordered_map<std::uint64_t, Bucket> buckets_;
  // Per-context arrival-order index for MPI_ANY_SOURCE receives. Mutable
  // because find() (shared by const peek) prunes stale entries in place.
  mutable std::unordered_map<std::uint32_t, CtxIndex> ctx_index_;
  ArrivalRanker ranker_;
  std::uint64_t next_seq_ = 0;
  std::int64_t buffered_bytes_ = 0;
  mutable MatchStats stats_;  // peek() records lookups too
};

}  // namespace lcmpi::mpi
