// Reference linear matcher — the executable specification of matching.
//
// This is the original O(n)-scan implementation of the posted/unexpected
// queues, retained verbatim (classes renamed Linear*) after the bucketed
// rewrite in matching.h. It defines the semantics the fast path must
// reproduce *exactly*: the FIFO match order and, critically, the `scanned`
// count charged to the matching processor. The paper's cost model says a
// match examines every entry ahead of the winner in arrival order; both
// implementations must report that same number, bit for bit, so virtual
// timings are implementation-independent (see DESIGN.md §6).
//
// Used by tests/matching_property_test.cpp (randomized equivalence) and by
// bench/host_perf (the speedup baseline). Not used by the engine.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "src/core/types.h"
#include "src/fabric/fabric.h"

namespace lcmpi::mpi {

/// True if a posted (context, src-or-any, tag-or-any) pattern accepts a
/// concrete envelope (context, src, tag).
inline bool envelope_matches(std::uint32_t posted_ctx, int posted_src, int posted_tag,
                             std::uint32_t env_ctx, int env_src, int env_tag) {
  return posted_ctx == env_ctx &&
         (posted_src == kAnySource || posted_src == env_src) &&
         (posted_tag == kAnyTag || posted_tag == env_tag);
}

/// FIFO of posted receives, linear scan (reference implementation).
class LinearPostedQueue {
 public:
  struct Entry {
    std::uint32_t context = 0;
    int src = kAnySource;  // world rank or kAnySource
    int tag = kAnyTag;
    std::uint64_t request_id = 0;
  };

  void post(Entry e) { entries_.push_back(e); }

  /// First posted receive accepting the envelope; removed if found.
  /// `scanned` counts entries examined (matching cost accounting).
  std::optional<Entry> match(std::uint32_t ctx, int src, int tag, std::size_t* scanned) {
    std::size_t n = 0;
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      ++n;
      if (envelope_matches(it->context, it->src, it->tag, ctx, src, tag)) {
        Entry e = *it;
        entries_.erase(it);
        if (scanned) *scanned = n;
        return e;
      }
    }
    if (scanned) *scanned = n;
    return std::nullopt;
  }

  /// Removes a posted receive (MPI_Cancel-style); true if it was present.
  bool remove(std::uint64_t request_id) {
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->request_id == request_id) {
        entries_.erase(it);
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  std::deque<Entry> entries_;
};

/// FIFO of unexpected messages, linear scan (reference implementation).
class LinearUnexpectedQueue {
 public:
  void add(fabric::ProtoMsg msg) {
    buffered_bytes_ += static_cast<std::int64_t>(msg.payload.size());
    entries_.push_back(std::move(msg));
  }

  /// First unexpected message a (context, src-or-any, tag-or-any) receive
  /// accepts; removed if found.
  std::optional<fabric::ProtoMsg> match(std::uint32_t ctx, int src, int tag,
                                        std::size_t* scanned) {
    std::size_t n = 0;
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      ++n;
      if (envelope_matches(ctx, src, tag, it->context, it->src, it->tag)) {
        fabric::ProtoMsg m = std::move(*it);
        entries_.erase(it);
        buffered_bytes_ -= static_cast<std::int64_t>(m.payload.size());
        if (scanned) *scanned = n;
        return m;
      }
    }
    if (scanned) *scanned = n;
    return std::nullopt;
  }

  /// Probe: peek without removing.
  [[nodiscard]] const fabric::ProtoMsg* peek(std::uint32_t ctx, int src, int tag,
                                             std::size_t* scanned) const {
    std::size_t n = 0;
    for (const auto& m : entries_) {
      ++n;
      if (envelope_matches(ctx, src, tag, m.context, m.src, m.tag)) {
        if (scanned) *scanned = n;
        return &m;
      }
    }
    if (scanned) *scanned = n;
    return nullptr;
  }

  /// Bytes of eager payload parked here (Burns & Daoud resource accounting).
  [[nodiscard]] std::int64_t buffered_bytes() const { return buffered_bytes_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  std::deque<fabric::ProtoMsg> entries_;
  std::int64_t buffered_bytes_ = 0;
};

}  // namespace lcmpi::mpi
