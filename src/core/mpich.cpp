#include "src/core/mpich.h"

#include <cstring>

#include "src/core/comm.h"  // reduce_op

namespace lcmpi::mpi {
namespace {

// 64-bit tport tag layout: [context:16][src:16][tag:32].
constexpr std::uint64_t kSrcShift = 32;
constexpr std::uint64_t kCtxShift = 48;
constexpr std::uint64_t kTagMask = 0xffffffffULL;
constexpr std::uint64_t kSrcMask = 0xffffULL << kSrcShift;
constexpr std::uint64_t kCtxMask = 0xffffULL << kCtxShift;
/// Tag bit reserved for synchronous-send acknowledgements.
constexpr std::int32_t kAckTagBit = 1 << 30;

// MPICH device header carried inside every tport payload.
struct DevHeader {
  std::uint8_t mode = 0;
  std::uint8_t pad[3] = {0, 0, 0};
  std::uint32_t ack_id = 0;
};

std::uint64_t make_tag(std::uint32_t context, int src, int tag) {
  return (static_cast<std::uint64_t>(context) << kCtxShift) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src) & 0xffff) << kSrcShift) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag)) & kTagMask);
}

}  // namespace

MpichComm::MpichComm(meiko::Tport& tport, sim::Actor& self, int nranks)
    : tport_(tport), self_(self), nranks_(nranks) {}

void MpichComm::charge_adi() {
  self_.advance(tport_.machine().calib().mpich_adi_overhead);
}

void MpichComm::tx(int dst, int tag, std::uint32_t context, Bytes payload, Mode mode,
                   const Request& req) {
  tport_.tx(self_, dst, make_tag(context, rank(), tag), std::move(payload),
            [this, req, mode] {
              if (mode != Mode::kSynchronous) {
                req->done = true;
                activity_.notify_all();
              }
            });
}

MpichComm::Request MpichComm::isend(const void* buf, int count, const Datatype& type,
                                    int dst, int tag, Mode mode) {
  LCMPI_CHECK(dst >= 0 && dst < nranks_ && tag >= 0 && tag < kAckTagBit,
              "invalid isend arguments");
  charge_adi();
  auto req = std::make_shared<RequestState>();

  static std::uint32_t next_ack_id = 1;  // per-process in reality; fine per-sim
  DevHeader h;
  h.mode = static_cast<std::uint8_t>(mode);
  if (mode == Mode::kSynchronous) h.ack_id = next_ack_id++;

  Bytes payload;
  ByteWriter w(payload);
  w.put(h);
  Bytes packed = type.pack(buf, count);
  w.put_bytes(packed.data(), packed.size());
  tx(dst, tag, context_, std::move(payload), mode, req);

  if (mode == Mode::kSynchronous) {
    // Wait for the receiver's ack on the reserved tag space.
    tport_.rx(self_, make_tag(context_, dst, kAckTagBit | static_cast<std::int32_t>(h.ack_id)),
              ~0ULL, [this, req](meiko::TportMessage) {
                req->done = true;
                activity_.notify_all();
              });
  }
  return req;
}

MpichComm::Request MpichComm::irecv(void* buf, int count, const Datatype& type, int src,
                                    int tag) {
  charge_adi();
  auto req = std::make_shared<RequestState>();
  const meiko::Calib& c = tport_.machine().calib();
  // MPICH's heavier Elan-side demultiplexing: extra co-processor work per
  // posted receive, ahead of tport's own matching.
  tport_.machine().node(rank()).elan().submit(c.mpich_elan_extra_match, [] {});

  std::uint64_t mask = kCtxMask | kTagMask | kSrcMask;
  if (src == kAnySource) mask &= ~kSrcMask;
  if (tag == kAnyTag) mask &= ~kTagMask;
  const std::uint64_t want =
      make_tag(context_, src == kAnySource ? 0 : src, tag == kAnyTag ? 0 : tag);

  tport_.rx(self_, want, mask,
            [this, req, buf, count, type](meiko::TportMessage m) {
              ByteReader r(m.data);
              const auto h = r.get<DevHeader>();
              Bytes packed = r.rest();
              const std::int64_t capacity = type.size() * count;
              req->status.source = m.src;
              req->status.tag = static_cast<std::int32_t>(m.tag & kTagMask);
              if (static_cast<std::int64_t>(packed.size()) > capacity) {
                req->status.error = Err::kTruncate;
                packed.resize(static_cast<std::size_t>(capacity));
              }
              req->status.count_bytes = static_cast<std::int64_t>(packed.size());
              type.unpack(packed, buf, count);
              if (static_cast<Mode>(h.mode) == Mode::kSynchronous) {
                // Ack the sender once the SPARC observes this completion.
                req->ack_pending = true;
                req->ack_dst = m.src;
                req->ack_id = h.ack_id;
              }
              req->done = true;
              activity_.notify_all();
            });
  return req;
}

void MpichComm::wait_done(const Request& req) {
  while (!req->done) self_.wait(activity_);
}

void MpichComm::wait(const Request& req) {
  wait_done(req);
  // The SPARC learns of a completion the Elan discovered in the background.
  self_.advance(tport_.machine().calib().mpich_elan_sync);
  if (req->ack_pending) {
    req->ack_pending = false;
    tport_.tx(self_, req->ack_dst,
              make_tag(context_, rank(), kAckTagBit | static_cast<std::int32_t>(req->ack_id)),
              Bytes{}, {});
  }
  if (req->status.error != Err::kSuccess)
    throw MpiError(req->status.error, "MPICH request completed with error");
}

bool MpichComm::test(const Request& req) {
  if (req->done) self_.advance(tport_.machine().calib().mpich_elan_sync);
  return req->done;
}

void MpichComm::wait_all(const std::vector<Request>& reqs) {
  for (const Request& r : reqs) wait(r);
}

void MpichComm::send(const void* buf, int count, const Datatype& type, int dst, int tag,
                     Mode mode) {
  wait(isend(buf, count, type, dst, tag, mode));
}

Status MpichComm::recv(void* buf, int count, const Datatype& type, int src, int tag) {
  Request r = irecv(buf, count, type, src, tag);
  wait(r);
  return r->status;
}

Status MpichComm::sendrecv(const void* sendbuf, int sendcount, const Datatype& sendtype,
                           int dst, int sendtag, void* recvbuf, int recvcount,
                           const Datatype& recvtype, int src, int recvtag) {
  Request rr = irecv(recvbuf, recvcount, recvtype, src, recvtag);
  Request sr = isend(sendbuf, sendcount, sendtype, dst, sendtag);
  wait(sr);
  wait(rr);
  return rr->status;
}

namespace {

std::uint64_t probe_mask(int src, int tag) {
  std::uint64_t mask = kCtxMask | kTagMask | kSrcMask;
  if (src == kAnySource) mask &= ~kSrcMask;
  if (tag == kAnyTag) mask &= ~kTagMask;
  return mask;
}

Status probe_status(const meiko::Tport::ProbeInfo& info) {
  Status s;
  s.source = info.src;
  s.tag = static_cast<std::int32_t>(info.tag & kTagMask);
  s.count_bytes = static_cast<std::int64_t>(info.nbytes) -
                  static_cast<std::int64_t>(sizeof(DevHeader));
  return s;
}

}  // namespace

Status MpichComm::probe(int src, int tag) {
  charge_adi();
  const std::uint64_t want =
      make_tag(context_, src == kAnySource ? 0 : src, tag == kAnyTag ? 0 : tag);
  return probe_status(tport_.probe(self_, want, probe_mask(src, tag)));
}

std::optional<Status> MpichComm::iprobe(int src, int tag) {
  charge_adi();
  const std::uint64_t want =
      make_tag(context_, src == kAnySource ? 0 : src, tag == kAnyTag ? 0 : tag);
  auto info = tport_.iprobe(self_, want, probe_mask(src, tag));
  if (!info) return std::nullopt;
  return probe_status(*info);
}

// ------------------------------------------------------ collectives (p2p)

namespace {
/// Collective phases use the top of the user tag space (below the ack bit).
constexpr int kCollBase = (1 << 29);
}  // namespace

void MpichComm::barrier() {
  const int n = size();
  std::uint8_t token = 0, sink = 0;
  for (int k = 1; k < n; k <<= 1) {
    const int to = (rank() + k) % n;
    const int from = (rank() - k % n + n) % n;
    Request rr = irecv(&sink, 1, Datatype::byte_type(), from, kCollBase + 8 + k);
    Request sr = isend(&token, 1, Datatype::byte_type(), to, kCollBase + 8 + k);
    wait(sr);
    wait(rr);
  }
}

void MpichComm::bcast(void* buf, int count, const Datatype& type, int root) {
  // Point-to-point binomial tree: the MPICH approach the paper's hardware
  // broadcast beats in Fig. 7. Deliberately NOT wired to the coll::select
  // engine (and immune to LCMPI_COLL): this communicator exists to model
  // the fixed-algorithm MPICH-over-tport baseline, so its broadcast stays
  // a plain binomial tree no matter how the low-latency library tunes its
  // own collectives.
  const int n = size();
  const int vrank = (rank() - root + n) % n;
  int mask = 1;
  while (mask < n) {
    if (vrank & mask) {
      const int parent = ((vrank - mask) + root) % n;
      Request r = irecv(buf, count, type, parent, kCollBase + 1);
      wait(r);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < n) {
      const int child = ((vrank + mask) + root) % n;
      Request r = isend(buf, count, type, child, kCollBase + 1);
      wait(r);
    }
    mask >>= 1;
  }
}

void MpichComm::reduce(const void* sendbuf, void* recvbuf, int count, const Datatype& type,
                       Op op, int root) {
  const int n = size();
  const int vrank = (rank() - root + n) % n;
  const std::size_t bytes = static_cast<std::size_t>(type.size() * count);
  std::vector<std::byte> acc(bytes), incoming(bytes);
  std::memcpy(acc.data(), sendbuf, bytes);
  int mask = 1;
  while (mask < n) {
    if (vrank & mask) {
      const int parent = ((vrank - mask) + root) % n;
      Request r = isend(acc.data(), count, type, parent, kCollBase + 2);
      wait(r);
      break;
    }
    if (vrank + mask < n) {
      const int child = ((vrank + mask) + root) % n;
      Request r = irecv(incoming.data(), count, type, child, kCollBase + 2);
      wait(r);
      reduce_op(type, op, incoming.data(), acc.data(), count);
    }
    mask <<= 1;
  }
  if (rank() == root) std::memcpy(recvbuf, acc.data(), bytes);
}

void MpichComm::allreduce(const void* sendbuf, void* recvbuf, int count,
                          const Datatype& type, Op op) {
  reduce(sendbuf, recvbuf, count, type, op, 0);
  bcast(recvbuf, count, type, 0);
}

void MpichComm::gather(const void* sendbuf, int sendcount, void* recvbuf,
                       const Datatype& type, int root) {
  const std::size_t block = static_cast<std::size_t>(type.size() * sendcount);
  if (rank() == root) {
    auto* out = static_cast<std::byte*>(recvbuf);
    std::memcpy(out + static_cast<std::size_t>(rank()) * block, sendbuf, block);
    std::vector<Request> reqs;
    for (int r = 0; r < size(); ++r) {
      if (r == rank()) continue;
      reqs.push_back(irecv(out + static_cast<std::size_t>(r) * block, sendcount, type, r,
                           kCollBase + 3));
    }
    wait_all(reqs);
  } else {
    Request r = isend(sendbuf, sendcount, type, root, kCollBase + 3);
    wait(r);
  }
}

void MpichComm::scatter(const void* sendbuf, void* recvbuf, int recvcount,
                        const Datatype& type, int root) {
  const std::size_t block = static_cast<std::size_t>(type.size() * recvcount);
  if (rank() == root) {
    const auto* in = static_cast<const std::byte*>(sendbuf);
    std::vector<Request> reqs;
    for (int r = 0; r < size(); ++r) {
      if (r == rank()) {
        std::memcpy(recvbuf, in + static_cast<std::size_t>(r) * block, block);
        continue;
      }
      reqs.push_back(isend(in + static_cast<std::size_t>(r) * block, recvcount, type, r,
                           kCollBase + 5));
    }
    wait_all(reqs);
  } else {
    Request r = irecv(recvbuf, recvcount, type, root, kCollBase + 5);
    wait(r);
  }
}

void MpichComm::allgather(const void* sendbuf, int sendcount, void* recvbuf,
                          const Datatype& type) {
  const int n = size();
  const std::size_t block = static_cast<std::size_t>(type.size() * sendcount);
  auto* out = static_cast<std::byte*>(recvbuf);
  std::memcpy(out + static_cast<std::size_t>(rank()) * block, sendbuf, block);
  const int right = (rank() + 1) % n;
  const int left = (rank() - 1 + n) % n;
  int have = rank();
  for (int step = 0; step < n - 1; ++step) {
    const int incoming = (rank() - 1 - step + 2 * n) % n;
    Request rr = irecv(out + static_cast<std::size_t>(incoming) * block, sendcount, type,
                       left, kCollBase + 4);
    Request sr = isend(out + static_cast<std::size_t>(have) * block, sendcount, type, right,
                       kCollBase + 4);
    wait(sr);
    wait(rr);
    have = incoming;
  }
}

}  // namespace lcmpi::mpi
