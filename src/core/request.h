// Request objects for nonblocking operations.
#pragma once

#include <cstdint>
#include <memory>

#include "src/core/datatype.h"
#include "src/core/types.h"
#include "src/util/bytes.h"

namespace lcmpi::mpi {

/// Shared state of one nonblocking operation. The engine owns progress;
/// user code holds a Request (shared_ptr) and waits/tests on it.
struct RequestState {
  enum class Kind : std::uint8_t { kSend, kRecv };
  Kind kind = Kind::kSend;
  std::uint64_t id = 0;
  bool done = false;
  Status status;  // filled for receives (and error reporting on sends)

  // --- send-side fields -------------------------------------------------------
  Mode mode = Mode::kStandard;
  int dst = -1;  // world rank
  bool launched = false;       // protocol message actually handed to fabric
  bool needs_ssend_ack = false;
  bool got_ssend_ack = false;
  bool data_out = false;       // payload has left (or been secured from) the user buffer
  Bytes send_payload;          // packed payload (eager; push-rendezvous packs lazily)
  const void* send_buf = nullptr;  // for lazy pack on CTS
  int send_count = 0;
  Datatype send_type;
  std::int32_t tag = 0;
  std::uint32_t context = 0;
  bool from_bsend_buffer = false;  // on completion, release attached-buffer bytes
  std::int64_t bsend_bytes = 0;
  bool bulk_pooled = false;  // send_payload came from the engine's BufferPool

  // --- receive-side fields ----------------------------------------------------
  void* recv_buf = nullptr;
  int recv_count = 0;
  Datatype recv_type;
  int src = kAnySource;  // world rank or wildcard
  bool matched = false;
  // Bulk-plane rendezvous state: total size announced by the RTS, whether
  // the fabric writes straight into the user buffer (contiguous type) or
  // into the pooled staging buffer unpacked at kBulkDelivered.
  std::uint32_t bulk_total = 0;
  bool bulk_direct = false;
  Bytes bulk_staging;
};

using Request = std::shared_ptr<RequestState>;

}  // namespace lcmpi::mpi
