#include "src/core/group.h"

#include <algorithm>

namespace lcmpi::mpi {

Group::Group(std::vector<int> world_ranks) : ranks_(std::move(world_ranks)) {
  std::vector<int> sorted = ranks_;
  std::sort(sorted.begin(), sorted.end());
  LCMPI_CHECK(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
              "duplicate rank in group");
}

int Group::world_rank(int i) const {
  LCMPI_CHECK(i >= 0 && i < size(), "group rank out of range");
  return ranks_[static_cast<std::size_t>(i)];
}

int Group::rank_of(int world_rank) const {
  auto it = std::find(ranks_.begin(), ranks_.end(), world_rank);
  return it == ranks_.end() ? -1 : static_cast<int>(it - ranks_.begin());
}

Group Group::incl(const std::vector<int>& positions) const {
  std::vector<int> out;
  out.reserve(positions.size());
  for (int p : positions) out.push_back(world_rank(p));
  return Group(std::move(out));
}

Group Group::excl(const std::vector<int>& positions) const {
  std::vector<bool> drop(ranks_.size(), false);
  for (int p : positions) {
    LCMPI_CHECK(p >= 0 && p < size(), "excl position out of range");
    drop[static_cast<std::size_t>(p)] = true;
  }
  std::vector<int> out;
  for (std::size_t i = 0; i < ranks_.size(); ++i)
    if (!drop[i]) out.push_back(ranks_[i]);
  return Group(std::move(out));
}

Group Group::set_union(const Group& other) const {
  std::vector<int> out = ranks_;
  for (int r : other.ranks_)
    if (!contains(r)) out.push_back(r);
  return Group(std::move(out));
}

Group Group::set_intersection(const Group& other) const {
  std::vector<int> out;
  for (int r : ranks_)
    if (other.contains(r)) out.push_back(r);
  return Group(std::move(out));
}

Group Group::set_difference(const Group& other) const {
  std::vector<int> out;
  for (int r : ranks_)
    if (!other.contains(r)) out.push_back(r);
  return Group(std::move(out));
}

}  // namespace lcmpi::mpi
