// Communicator — the user-facing MPI interface of the low-latency library.
//
// A Comm owns a process group (comm rank -> world rank), a pair of context
// ids (point-to-point and collective traffic are segregated, MPICH-style),
// and translates between comm ranks and the engine's world ranks. dup()
// and split() are collective and agree on fresh context ids by an
// allreduce over the parent group, so overlapping communicators can never
// collide (disjoint ones may share ids harmlessly).
//
// Collectives are implemented over point-to-point — except broadcast,
// which uses the fabric's hardware broadcast when available and the
// communicator spans the world (the paper's Meiko MPI_Bcast).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "src/core/engine.h"
#include "src/core/group.h"
#include "src/core/profile.h"

namespace lcmpi::mpi {

class Comm {
 public:
  /// The world communicator over every rank of the engine's fabric.
  static Comm world(Engine& engine);

  [[nodiscard]] int rank() const { return my_rank_; }
  [[nodiscard]] int size() const { return static_cast<int>(group_.size()); }
  [[nodiscard]] Engine& engine() const { return *eng_; }
  [[nodiscard]] std::uint32_t context() const { return ctx_pt2pt_; }
  [[nodiscard]] int world_rank(int comm_rank) const;

  // --- point-to-point --------------------------------------------------------
  void send(const void* buf, int count, const Datatype& type, int dst, int tag,
            Mode mode = Mode::kStandard);
  Status recv(void* buf, int count, const Datatype& type, int src, int tag);
  Request isend(const void* buf, int count, const Datatype& type, int dst, int tag,
                Mode mode = Mode::kStandard);
  Request irecv(void* buf, int count, const Datatype& type, int src, int tag);
  void wait(const Request& req);
  bool test(const Request& req);
  void wait_all(const std::vector<Request>& reqs);
  /// Index of the first completed request (blocks until one finishes).
  std::size_t wait_any(const std::vector<Request>& reqs);
  /// Indices of all currently completed requests, blocking until at least
  /// one completes (MPI_Waitsome).
  std::vector<std::size_t> wait_some(const std::vector<Request>& reqs);
  /// True when every request has completed (one progress pass).
  bool test_all(const std::vector<Request>& reqs);
  /// Index of some completed request, if any (one progress pass).
  std::optional<std::size_t> test_any(const std::vector<Request>& reqs);

  // --- persistent requests (MPI_Send_init / MPI_Recv_init / MPI_Start) -----
  struct PersistentOp {
    bool is_send = false;
    const void* send_buf = nullptr;
    void* recv_buf = nullptr;
    int count = 0;
    Datatype type;
    int peer = 0;  // dst or src (may be wildcards/kProcNull per direction)
    int tag = 0;
    Mode mode = Mode::kStandard;
  };
  [[nodiscard]] PersistentOp send_init(const void* buf, int count, const Datatype& type,
                                       int dst, int tag, Mode mode = Mode::kStandard) const;
  [[nodiscard]] PersistentOp recv_init(void* buf, int count, const Datatype& type, int src,
                                       int tag) const;
  /// Fires one instance of the persistent operation.
  Request start(const PersistentOp& op);
  Status sendrecv(const void* sendbuf, int sendcount, const Datatype& sendtype, int dst,
                  int sendtag, void* recvbuf, int recvcount, const Datatype& recvtype,
                  int src, int recvtag);
  /// In-place exchange (MPI_Sendrecv_replace): the buffer is sent to `dst`
  /// and overwritten with the message from `src`.
  Status sendrecv_replace(void* buf, int count, const Datatype& type, int dst, int sendtag,
                          int src, int recvtag);
  Status probe(int src, int tag);
  std::optional<Status> iprobe(int src, int tag);

  /// Converts an engine Status (world source rank) to comm ranks.
  [[nodiscard]] Status translate(Status s) const;

  // --- collectives -----------------------------------------------------------
  void barrier();
  void bcast(void* buf, int count, const Datatype& type, int root);
  void reduce(const void* sendbuf, void* recvbuf, int count, const Datatype& type, Op op,
              int root);
  void allreduce(const void* sendbuf, void* recvbuf, int count, const Datatype& type, Op op);

  /// User-defined reduction operator (MPI_Op_create): combines `in` into
  /// `inout`, elementwise over `count` elements of the datatype. Must be
  /// associative; commutativity is NOT required — every reduction
  /// algorithm folds contributions in ascending rank order
  /// (lower-rank accumulator op= higher-rank data).
  using UserOp = std::function<void(const void* in, void* inout, int count)>;
  void reduce(const void* sendbuf, void* recvbuf, int count, const Datatype& type,
              const UserOp& op, int root);
  void allreduce(const void* sendbuf, void* recvbuf, int count, const Datatype& type,
                 const UserOp& op);
  void gather(const void* sendbuf, int sendcount, void* recvbuf, const Datatype& type,
              int root);
  void scatter(const void* sendbuf, void* recvbuf, int recvcount, const Datatype& type,
               int root);
  void allgather(const void* sendbuf, int sendcount, void* recvbuf, const Datatype& type);
  void alltoall(const void* sendbuf, int count_per_peer, void* recvbuf, const Datatype& type);
  /// Inclusive prefix reduction (MPI_Scan): rank r receives op over ranks 0..r.
  void scan(const void* sendbuf, void* recvbuf, int count, const Datatype& type, Op op);
  /// Reduce then scatter equal blocks: rank r gets block r of the reduction.
  void reduce_scatter_block(const void* sendbuf, void* recvbuf, int count_per_rank,
                            const Datatype& type, Op op);
  /// Variable-count gather: rank r contributes counts[r] elements,
  /// concatenated at displacements displs[r] (elements) on the root.
  void gatherv(const void* sendbuf, int sendcount, void* recvbuf,
               const std::vector<int>& counts, const std::vector<int>& displs,
               const Datatype& type, int root);
  /// Variable-count scatter (the inverse of gatherv).
  void scatterv(const void* sendbuf, const std::vector<int>& counts,
                const std::vector<int>& displs, void* recvbuf, int recvcount,
                const Datatype& type, int root);

  // --- communicator management ------------------------------------------------
  [[nodiscard]] Comm dup();
  /// Collective split; ranks passing color < 0 receive std::nullopt.
  [[nodiscard]] std::optional<Comm> split(int color, int key);
  /// This communicator's process group.
  [[nodiscard]] Group group() const { return Group(group_); }
  /// Collective (over this comm): new communicator over `g`, which must be
  /// a subset of this group; non-members receive std::nullopt
  /// (MPI_Comm_create).
  [[nodiscard]] std::optional<Comm> create_from_group(const Group& g);

  /// Number of broadcasts completed (hardware-broadcast sequencing).
  [[nodiscard]] std::uint64_t bcast_count() const { return bcast_seq_; }

  /// Elapsed virtual time in seconds (MPI_Wtime).
  [[nodiscard]] double wtime() const { return static_cast<double>(eng_->now().ns) / 1e9; }

  /// Attaches a profiler recording per-call counts/time/bytes (the MPI
  /// profiling interface). Derived communicators inherit it.
  void set_profiler(Profiler* p) { profiler_ = p; }
  [[nodiscard]] Profiler* profiler() const { return profiler_; }

 private:
  Comm(Engine& engine, std::vector<int> group, int my_rank, std::uint32_t ctx_pt2pt);

  /// Elementwise fold shared by the built-in Op and UserOp reduction paths:
  /// inout = inout op in, over count elements.
  using CombineFn = std::function<void(const void* in, void* inout, int count)>;

  // Broadcast algorithms (software).
  void p2p_tree_bcast(void* buf, int count, const Datatype& type, int root);
  void scatter_allgather_bcast(void* buf, int count, const Datatype& type, int root);
  void ring_bcast(void* buf, int count, const Datatype& type, int root);

  // Reduction algorithms. All fold in ascending rank order, so results are
  // bit-identical across algorithms whenever the op is exactly associative.
  void reduce_impl(const void* sendbuf, void* recvbuf, int count, const Datatype& type,
                   const CombineFn& combine, int root, coll::Algo algo);
  void binomial_reduce(const void* sendbuf, void* recvbuf, int count, const Datatype& type,
                       const CombineFn& combine, int root);
  void chain_reduce(const void* sendbuf, void* recvbuf, int count, const Datatype& type,
                    const CombineFn& combine, int root);
  void rs_reduce(const void* sendbuf, void* recvbuf, int count, const Datatype& type,
                 const CombineFn& combine, int root);
  void rs_allreduce(const void* sendbuf, void* recvbuf, int count, const Datatype& type,
                    const CombineFn& combine);
  void allreduce_impl(const void* sendbuf, void* recvbuf, int count, const Datatype& type,
                      const CombineFn& combine);
  /// Block reduce-scatter: direct exchange (rank b owns block b), then an
  /// ascending fold of all contributions locally. On return `myblock`
  /// holds this rank's reduced block.
  void reduce_scatter_ascending(const void* sendbuf, const Datatype& type,
                                const std::vector<int>& starts, const std::vector<int>& lens,
                                const CombineFn& combine, std::byte* myblock);

  // Barrier algorithms (software).
  void barrier_dissemination();
  void barrier_tree();
  void barrier_ring();

  std::uint32_t agree_new_context();
  [[nodiscard]] bool spans_world() const;

  Engine* eng_;
  std::vector<int> group_;  // comm rank -> world rank
  int my_rank_;
  std::uint32_t ctx_pt2pt_;
  std::uint32_t ctx_coll_;
  std::uint64_t bcast_seq_ = 0;
  Profiler* profiler_ = nullptr;
};

/// Applies a reduction op elementwise; type must be a basic numeric type.
void reduce_op(const Datatype& type, Op op, const void* in, void* inout, int count);

}  // namespace lcmpi::mpi
