// The low-latency MPI engine — the paper's point-to-point machinery.
//
// One Engine runs per rank, on that rank's actor (the modelled main
// processor: the SPARC on the Meiko, the SGI host over TCP). Everything
// the paper argues about lives here:
//
//  * matching at the receiver on the MAIN processor (not a co-processor):
//    the posted/unexpected queues are scanned inside MPI calls and charged
//    to the calling actor at MpiCosts rates;
//  * the hybrid transfer protocol: payloads at or below the fabric's
//    eager threshold travel WITH the envelope, overlapped with matching,
//    buffered at the receiver when no receive is posted; larger payloads
//    send an envelope first (RTS) and move by DMA pull (Meiko) or
//    CTS-then-push (TCP) straight into the user buffer — no intermediate
//    copy;
//  * flow control: a single pre-allocated envelope slot per sender
//    (Meiko), or per-sender credit that the receiver replenishes as
//    messages are matched and drained (TCP) — sends that cannot proceed
//    are deferred per-destination in FIFO order, preserving MPI's
//    non-overtaking guarantee;
//  * all four send modes, blocking and nonblocking, probe, and the
//    envelope-resource overflow detection of Burns & Daoud.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <optional>

#include "src/core/buffer_pool.h"
#include "src/core/coll.h"
#include "src/core/datatype.h"
#include "src/core/matching.h"
#include "src/core/request.h"
#include "src/core/trace.h"
#include "src/core/types.h"
#include "src/fabric/fabric.h"

namespace lcmpi::mpi {

/// How much of an owed-credit balance fits the wire's u32 credit field.
struct CreditGrant {
  std::uint32_t grant = 0;        // goes out in ProtoMsg::credit
  std::int64_t remainder = 0;     // stays in owed_ for a later message
};

/// Splits `owed` into the largest grant the u32 field can carry plus the
/// remainder to keep owing. The engine's credit unit is bytes, so a
/// balance past 4 GiB is exotic but legal (credit_bytes is configurable);
/// truncating it would silently destroy credit and eventually wedge the
/// sender — the remainder must ride a later message instead.
[[nodiscard]] constexpr CreditGrant clamp_credit(std::int64_t owed) {
  constexpr std::int64_t kFieldMax = std::numeric_limits<std::uint32_t>::max();
  if (owed <= 0) return {0, owed};
  if (owed <= kFieldMax) return {static_cast<std::uint32_t>(owed), 0};
  return {static_cast<std::uint32_t>(kFieldMax), owed - kFieldMax};
}

struct EngineConfig {
  /// Cap on eager payload bytes parked in the unexpected queue; exceeding
  /// it raises Err::kResources (Burns & Daoud overflow reporting).
  std::int64_t max_unexpected_bytes = 4 << 20;
  /// false: error completions throw MpiError (MPI_ERRORS_ARE_FATAL).
  /// true: errors are reported in Status (MPI_ERRORS_RETURN) where the
  /// standard allows continuing (truncation); resource errors still throw.
  bool errors_return = false;
  /// Ablation override of the fabric's eager/rendezvous threshold.
  std::optional<std::int64_t> eager_threshold_override;
  /// Use fabric hardware broadcast for world-spanning communicators.
  bool use_hw_bcast = true;
  /// Use the fabric's hardware barrier for world-spanning communicators.
  bool use_hw_barrier = true;
  /// Software collective-algorithm selection (src/core/coll.h): crossover
  /// thresholds plus an optional forced algorithm. The LCMPI_COLL
  /// environment override is folded in once, at Engine construction; a
  /// programmatic force set here beats it.
  coll::Tuning coll;
  /// Optional shared protocol-milestone tracer (see src/core/trace.h).
  MsgTrace* trace = nullptr;
};

/// Receiver of routed one-sided frames: a window (src/core/win.h)
/// registers itself under its key and the engine's progress loop feeds it
/// every kRma* frame addressed to that key — Get replies and Accumulate
/// folds run entirely inside the target's progress, never in user code.
class RmaTarget {
 public:
  virtual ~RmaTarget() = default;
  virtual void on_rma(fabric::ProtoMsg msg) = 0;
};

class Engine {
 public:
  Engine(fabric::Endpoint& ep, sim::Actor& self, EngineConfig cfg = {});
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] int rank() const { return ep_.rank(); }
  [[nodiscard]] int nranks() const { return ep_.fabric().nranks(); }
  [[nodiscard]] sim::Actor& self() const { return self_; }
  [[nodiscard]] TimePoint now() const { return ep_.now(); }
  [[nodiscard]] const EngineConfig& config() const { return cfg_; }
  /// MPI_Errhandler_set(MPI_ERRORS_RETURN) equivalent: report failed
  /// requests through Status::error instead of throwing on wait.
  void set_errors_return(bool v) { cfg_.errors_return = v; }
  [[nodiscard]] const fabric::FabricCaps& caps() const { return ep_.fabric().caps(); }
  [[nodiscard]] fabric::Endpoint& endpoint() const { return ep_; }

  // --- point-to-point (world ranks; communicators translate) ---------------
  Request isend(const void* buf, int count, const Datatype& type, int dst_world,
                std::int32_t tag, std::uint32_t context, Mode mode);
  Request irecv(void* buf, int count, const Datatype& type, int src_world,
                std::int32_t tag, std::uint32_t context);
  void wait(const Request& req);
  bool test(const Request& req);
  /// MPI_Cancel for receives: true if the posted receive was withdrawn
  /// before matching (the request then completes as cancelled). Sends and
  /// already-matched receives cannot be cancelled (returns false).
  bool cancel(const Request& req);
  Status probe(int src_world, std::int32_t tag, std::uint32_t context);
  std::optional<Status> iprobe(int src_world, std::int32_t tag, std::uint32_t context);

  // --- buffered-send buffer management (MPI_Buffer_attach/detach) ----------
  void buffer_attach(std::int64_t bytes);
  /// Blocks until all buffered sends complete; returns the detached size.
  std::int64_t buffer_detach();
  [[nodiscard]] std::int64_t buffer_bytes_in_use() const { return bsend_used_; }

  // --- hardware collective offload ------------------------------------------
  void hw_bcast_root(Bytes payload, std::uint32_t context, std::uint64_t seq);
  Bytes hw_bcast_recv(std::uint32_t context, std::uint64_t seq);
  /// Enters the fabric's hardware barrier and blocks until the release
  /// (caps().hw_barrier only). Releases arrive strictly one per enter, so
  /// concurrent communicators cannot confuse them: no engine can re-enter
  /// before every engine left the previous barrier.
  void hw_barrier();

  // --- one-sided (RMA) plumbing ---------------------------------------------
  /// A window key every rank of a communicator derives identically:
  /// windows are created collectively, so per-context creation order
  /// agrees across ranks. High word = context, low word = per-context
  /// creation sequence.
  [[nodiscard]] std::uint64_t rma_make_key(std::uint32_t context);
  void rma_register(std::uint64_t key, RmaTarget* win);
  void rma_deregister(std::uint64_t key);
  /// Sends an RMA frame down the normal sequenced channel. No credit is
  /// charged (epochs bound the target's buffering); owed credit still
  /// piggybacks like any other control message.
  void rma_send(int dst_world, fabric::ProtoMsg msg);

  // --- progress --------------------------------------------------------------
  /// Drains and handles every arrived message. Nonblocking.
  void progress();
  /// progress(), then blocks for activity if `until` is still false.
  void progress_until(const std::function<bool()>& until);

  // --- diagnostics -------------------------------------------------------------
  [[nodiscard]] std::size_t unexpected_count() const { return unexpected_.size(); }
  [[nodiscard]] std::int64_t unexpected_bytes() const { return unexpected_.buffered_bytes(); }
  [[nodiscard]] std::size_t posted_count() const { return posted_.size(); }
  [[nodiscard]] std::int64_t eager_sends() const { return eager_sends_; }
  [[nodiscard]] std::int64_t rendezvous_sends() const { return rndv_sends_; }
  /// Matching-engine observability (depth high-water, logical scan totals,
  /// bucket occupancy) — see MatchStats in src/core/matching.h.
  [[nodiscard]] MatchStats posted_match_stats() const { return posted_.stats(); }
  [[nodiscard]] MatchStats unexpected_match_stats() const { return unexpected_.stats(); }

  /// Effective eager/rendezvous threshold in force.
  [[nodiscard]] std::int64_t eager_threshold() const;

  /// Recycled staging buffers (bulk rendezvous, long-message collectives).
  [[nodiscard]] BufferPool& pool() { return pool_; }

  /// Next derived-communicator context id (managed by Comm).
  std::uint32_t next_context_ = 2;

 private:
  // Send-side protocol.
  void enqueue_launch(const Request& req);
  void try_launch(int dst);
  void launch(const Request& req);
  [[nodiscard]] std::int64_t flow_cost(const RequestState& r) const;
  void send_msg(int dst, fabric::ProtoMsg msg);
  void complete_send(const Request& req);

  // Receive-side protocol.
  void handle(fabric::ProtoMsg msg);
  void handle_eager(fabric::ProtoMsg msg);
  void handle_rts(fabric::ProtoMsg msg);
  /// Moves msg.payload into the user buffer (msg's envelope fields survive).
  void deliver_payload(const Request& req, fabric::ProtoMsg& msg);
  void start_rendezvous(const Request& req, const fabric::ProtoMsg& rts);
  void complete_recv(const Request& req);
  void accrue_credit(int src, std::int64_t bytes);
  void send_slot_free(int src);
  void charge_match(std::size_t scanned);
  void raise(Err code, const std::string& what);

  fabric::Endpoint& ep_;
  sim::Actor& self_;
  EngineConfig cfg_;

  std::uint64_t next_req_id_ = 1;
  std::map<std::uint64_t, Request> live_;  // all requests the engine drives

  // Matching state (the paper's receiver-side queues).
  PostedQueue posted_;
  UnexpectedQueue unexpected_;

  // Rendezvous routing: (src world rank, sender request id) -> recv request.
  std::map<std::pair<int, std::uint64_t>, std::uint64_t> pending_rdata_;

  // Flow control.
  std::vector<bool> slot_free_;          // single-slot fabrics
  std::vector<std::int64_t> credit_;     // credit fabrics: available to us
  std::vector<std::int64_t> owed_;       // credit fabrics: owed back per src
  std::vector<std::deque<std::uint64_t>> deferred_;  // per-dst launch queue
  std::vector<std::uint64_t> next_seq_;  // per-dst send sequence
  std::vector<std::uint64_t> expect_seq_;  // per-src delivery check

  // One-sided routing: window key -> registered window.
  std::map<std::uint64_t, RmaTarget*> rma_wins_;
  std::map<std::uint32_t, std::uint32_t> rma_win_seq_;  // per-context counter

  // Hardware broadcast reassembly: per context, in-order payload queue.
  std::map<std::uint32_t, std::deque<fabric::ProtoMsg>> bcast_q_;

  // Hardware barrier bookkeeping (entered vs released counts).
  std::uint64_t hw_barrier_entered_ = 0;
  std::uint64_t hw_barrier_released_ = 0;

  // Buffered sends.
  std::int64_t bsend_capacity_ = 0;
  std::int64_t bsend_used_ = 0;

  // Recycled staging buffers.
  BufferPool pool_;

  // Stats.
  std::int64_t eager_sends_ = 0;
  std::int64_t rndv_sends_ = 0;
};

}  // namespace lcmpi::mpi
