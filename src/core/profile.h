// Profiling interface (MPI-1 chapter 8 names one; the paper lists it
// among the standard's features).
//
// A Profiler attached to a communicator records, per MPI call kind, the
// call count, the virtual time spent inside the library (communication +
// protocol overhead, as distinct from application compute), and the bytes
// handed over. Nested library calls (send = isend + wait) are attributed
// to the outermost call only, PMPI-style.
#pragma once

#include <array>
#include <cstdint>

#include "src/core/buffer_pool.h"
#include "src/core/matching.h"
#include "src/fabric/shm_fabric.h"
#include "src/fabric/socket_fabric.h"
#include "src/sim/kernel.h"
#include "src/util/status.h"
#include "src/util/table.h"
#include "src/util/time.h"

namespace lcmpi::mpi {

/// Formats the matching-engine counters of one rank (posted + unexpected
/// queues) as a table: queue depth high-water, lookup/scan totals, and
/// bucket occupancy. The `entries_scanned` column is the *logical* linear
/// scan count — exactly what Engine::charge_match billed in virtual time —
/// so the paper's cost model stays observable after the bucketed rewrite.
[[nodiscard]] Table matching_report(const MatchStats& posted,
                                    const MatchStats& unexpected);

/// Formats a kernel's actor-execution counters (Kernel::actor_stats) as a
/// table: context switches, spawns, and — fiber backend only — stack
/// allocations vs. pool reuses, stack high-water, and the configured stack
/// size. These are host-side numbers; virtual time never depends on them.
[[nodiscard]] Table actor_report(const sim::ActorStats& s);

/// Formats one rank's SocketFabric transport counters as a table. The
/// scale gauges (fds_open, pairs_connected, lazy_dials, epoll_wakeups)
/// sit next to the traffic totals so a scaling run can assert the lazy
/// story directly: idle pairs cost zero fds and zero dials.
[[nodiscard]] Table fabric_report(const fabric::SocketFabric::Stats& s);

/// Formats ShmFabric transport counters, including the mux-mode gauges
/// (mux_msgs, promoted_pairs, mux_pairs — all zero when mux is off).
[[nodiscard]] Table fabric_report(const fabric::ShmFabric::Stats& s);

/// Formats an engine BufferPool's recycling counters (acquires, capacity
/// hits, fresh bytes allocated) — the observable for the pooled-staging
/// fix on the long-broadcast and bulk-rendezvous paths.
[[nodiscard]] Table pool_report(const BufferPool::Stats& s);

enum class CallKind : std::uint8_t {
  kSend, kRecv, kIsend, kIrecv, kWait, kTest, kProbe, kSendrecv,
  kBcast, kBarrier, kReduce, kAllreduce, kGather, kScatter, kAllgather,
  kAlltoall, kScan, kCommMgmt,
  kCount,
};

[[nodiscard]] const char* call_kind_name(CallKind k);

class Profiler {
 public:
  struct Entry {
    std::int64_t calls = 0;
    Duration time{};
    std::int64_t bytes = 0;
  };

  void record(CallKind kind, Duration elapsed, std::int64_t bytes) {
    Entry& e = entries_[static_cast<std::size_t>(kind)];
    ++e.calls;
    e.time += elapsed;
    e.bytes += bytes;
  }

  [[nodiscard]] const Entry& entry(CallKind kind) const {
    return entries_[static_cast<std::size_t>(kind)];
  }

  [[nodiscard]] std::int64_t total_calls() const {
    std::int64_t n = 0;
    for (const Entry& e : entries_) n += e.calls;
    return n;
  }
  [[nodiscard]] Duration total_time() const {
    Duration t{};
    for (const Entry& e : entries_) t += e.time;
    return t;
  }

  /// Formats the non-empty rows as a table (calls, time, bytes).
  [[nodiscard]] Table report() const;

  // Depth tracking for outermost-only attribution.
  [[nodiscard]] bool enter() { return depth_++ == 0; }
  void leave() { --depth_; }

 private:
  std::array<Entry, static_cast<std::size_t>(CallKind::kCount)> entries_{};
  int depth_ = 0;
};

}  // namespace lcmpi::mpi
