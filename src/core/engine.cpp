#include "src/core/engine.h"

#include <algorithm>
#include <string>
#include <utility>

namespace lcmpi::mpi {

using fabric::FlowControl;
using fabric::MsgKind;
using fabric::ProtoMsg;

Engine::Engine(fabric::Endpoint& ep, sim::Actor& self, EngineConfig cfg)
    : ep_(ep), self_(self), cfg_(cfg) {
  cfg_.coll = coll::resolve(cfg_.coll);
  const int n = nranks();
  slot_free_.assign(static_cast<std::size_t>(n), true);
  credit_.assign(static_cast<std::size_t>(n), caps().credit_bytes);
  owed_.assign(static_cast<std::size_t>(n), 0);
  deferred_.resize(static_cast<std::size_t>(n));
  next_seq_.assign(static_cast<std::size_t>(n), 0);
  expect_seq_.assign(static_cast<std::size_t>(n), 0);
}

std::int64_t Engine::eager_threshold() const {
  return cfg_.eager_threshold_override.value_or(caps().eager_threshold);
}

void Engine::raise(Err code, const std::string& what) {
  throw MpiError(code, "rank " + std::to_string(rank()) + ": " + what);
}

namespace {
void trace_ev(MsgTrace* t, int src, std::uint64_t req, MsgEvent ev, TimePoint now) {
  if (t != nullptr) t->record(MsgTrace::Key{src, req}, ev, now);
}
}  // namespace

void Engine::charge_match(std::size_t scanned) {
  const fabric::MpiCosts& c = ep_.fabric().mpi_costs();
  self_.advance(c.match + c.match_per_entry * static_cast<std::int64_t>(scanned));
}

// ------------------------------------------------------------------- sends

Request Engine::isend(const void* buf, int count, const Datatype& type, int dst_world,
                      std::int32_t tag, std::uint32_t context, Mode mode) {
  if (count < 0 || dst_world < 0 || dst_world >= nranks() || tag < 0)
    raise(Err::kBadArgument, "invalid isend arguments");
  const fabric::MpiCosts& c = ep_.fabric().mpi_costs();
  const TimePoint isend_entry = now();
  self_.advance(c.envelope_build + c.bookkeeping);

  auto req = std::make_shared<RequestState>();
  req->kind = RequestState::Kind::kSend;
  req->id = next_req_id_++;
  trace_ev(cfg_.trace, rank(), req->id, MsgEvent::kIsendStart, isend_entry);
  req->mode = mode;
  req->dst = dst_world;
  req->tag = tag;
  req->context = context;
  req->send_buf = buf;
  req->send_count = count;
  req->send_type = type;
  req->needs_ssend_ack = (mode == Mode::kSynchronous);

  const std::int64_t nbytes = type.size() * count;
  if (nbytes <= eager_threshold()) {
    // Eager: pack now; the payload travels with the envelope.
    req->send_payload = type.pack(buf, count);
    ++eager_sends_;
  } else {
    ++rndv_sends_;
    // Pull fabrics need the data staged at launch; push fabrics pack
    // lazily when the CTS arrives (the user buffer must stay valid, per
    // the MPI standard).
    if (caps().pull_bulk) req->send_payload = type.pack(buf, count);
  }

  if (mode == Mode::kBuffered) {
    const std::int64_t need = nbytes;
    if (bsend_used_ + need > bsend_capacity_)
      raise(Err::kBufferExhausted, "buffered send exceeds attached buffer");
    bsend_used_ += need;
    req->from_bsend_buffer = true;
    req->bsend_bytes = need;
    // Buffered semantics: the user-visible operation completes now; the
    // engine keeps driving the transfer in the background.
    if (req->send_payload.empty() && nbytes > 0)
      req->send_payload = type.pack(buf, count);  // snapshot before returning
    req->done = true;
  }

  live_[req->id] = req;
  enqueue_launch(req);
  return req;
}

std::int64_t Engine::flow_cost(const RequestState& r) const {
  const std::int64_t nbytes = r.send_type.size() * r.send_count;
  if (nbytes <= eager_threshold()) return caps().control_record_bytes + nbytes;
  return caps().control_record_bytes;  // RTS envelope only
}

void Engine::enqueue_launch(const Request& req) {
  deferred_[static_cast<std::size_t>(req->dst)].push_back(req->id);
  try_launch(req->dst);
}

void Engine::try_launch(int dst) {
  auto& q = deferred_[static_cast<std::size_t>(dst)];
  while (!q.empty()) {
    auto it = live_.find(q.front());
    LCMPI_CHECK(it != live_.end(), "deferred send vanished");
    const Request req = it->second;
    if (dst != rank()) {
      switch (caps().flow) {
        case FlowControl::kSingleSlot:
          if (!slot_free_[static_cast<std::size_t>(dst)]) return;
          slot_free_[static_cast<std::size_t>(dst)] = false;
          break;
        case FlowControl::kCredit: {
          const std::int64_t need = flow_cost(*req);
          if (credit_[static_cast<std::size_t>(dst)] < need) return;
          credit_[static_cast<std::size_t>(dst)] -= need;
          break;
        }
        case FlowControl::kNone:
          break;
      }
    }
    q.pop_front();
    launch(req);
  }
}

void Engine::launch(const Request& req) {
  const std::int64_t nbytes = req->send_type.size() * req->send_count;
  req->launched = true;
  trace_ev(cfg_.trace, rank(), req->id, MsgEvent::kLaunched, now());

  ProtoMsg msg;
  msg.tag = req->tag;
  msg.context = req->context;
  msg.mode = static_cast<std::uint8_t>(req->mode);
  msg.size = static_cast<std::uint32_t>(nbytes);
  msg.sender_req = req->id;

  if (nbytes <= eager_threshold()) {
    msg.kind = MsgKind::kEager;
    // The request never reads the payload again after launch; hand the
    // buffer to the fabric instead of copying it.
    msg.payload = std::move(req->send_payload);
    req->data_out = true;
    send_msg(req->dst, std::move(msg));
    if (!req->needs_ssend_ack) complete_send(req);
    return;
  }

  msg.kind = MsgKind::kRts;
  if (caps().pull_bulk) {
    // Stage for the receiver's DMA pull; completion = data pulled.
    const std::uint64_t id = req->id;
    msg.bulk_key = ep_.stage_bulk(self_, std::move(req->send_payload),
                                  [this, id] {
                                    auto it = live_.find(id);
                                    if (it == live_.end()) return;
                                    it->second->data_out = true;
                                    complete_send(it->second);
                                    ep_.wake();  // unblock a waiting sender
                                  });
    req->send_payload.clear();
  }
  send_msg(req->dst, std::move(msg));
  // Push fabrics: completion happens when the CTS arrives and the data is
  // written (handle() drives it). Pull fabrics: on_pulled above.
}

void Engine::send_msg(int dst, ProtoMsg msg) {
  if (dst == rank()) {
    // Self-send: no fabric, no flow control; deliver synchronously.
    msg.src = rank();
    msg.seq = next_seq_[static_cast<std::size_t>(dst)]++;
    expect_seq_[static_cast<std::size_t>(dst)]++;  // keep the check aligned
    handle(std::move(msg));
    return;
  }
  if (caps().flow == FlowControl::kCredit) {
    // Piggyback any credit we owe this peer — clamped to the u32 wire
    // field; any overflow stays owed and rides the next message.
    auto& owed = owed_[static_cast<std::size_t>(dst)];
    const CreditGrant g = clamp_credit(owed);
    msg.credit = g.grant;
    owed = g.remainder;
  }
  msg.seq = next_seq_[static_cast<std::size_t>(dst)]++;
  ep_.send(self_, dst, std::move(msg));
}

void Engine::complete_send(const Request& req) {
  trace_ev(cfg_.trace, rank(), req->id, MsgEvent::kSendComplete, now());
  if (req->from_bsend_buffer) {
    bsend_used_ -= req->bsend_bytes;
    LCMPI_CHECK(bsend_used_ >= 0, "bsend buffer accounting underflow");
  }
  req->done = true;
  live_.erase(req->id);
}

// ---------------------------------------------------------------- receives

Request Engine::irecv(void* buf, int count, const Datatype& type, int src_world,
                      std::int32_t tag, std::uint32_t context) {
  if (count < 0 || (src_world != kAnySource && (src_world < 0 || src_world >= nranks())))
    raise(Err::kBadArgument, "invalid irecv arguments");
  // Drain arrivals first: entering the library is when the main processor
  // notices deposited envelopes (and when erroneous ready sends surface).
  progress();
  const fabric::MpiCosts& c = ep_.fabric().mpi_costs();
  self_.advance(c.bookkeeping);

  auto req = std::make_shared<RequestState>();
  req->kind = RequestState::Kind::kRecv;
  req->id = next_req_id_++;
  req->recv_buf = buf;
  req->recv_count = count;
  req->recv_type = type;
  req->src = src_world;
  req->tag = tag;
  req->context = context;
  live_[req->id] = req;

  // First look in the unexpected queue (charged scan).
  std::size_t scanned = 0;
  if (auto m = unexpected_.match(context, src_world, tag, &scanned)) {
    charge_match(scanned);
    req->matched = true;
    if (m->kind == MsgKind::kEager) {
      // Second copy of the buffering path: temp buffer -> user buffer.
      const std::int64_t payload_bytes = static_cast<std::int64_t>(m->payload.size());
      const fabric::MpiCosts& costs = ep_.fabric().mpi_costs();
      self_.advance(costs.unexpected_copy_per_byte * payload_bytes);
      trace_ev(cfg_.trace, m->src, m->sender_req, MsgEvent::kMatched, now());
      deliver_payload(req, *m);
      accrue_credit(m->src, caps().control_record_bytes + payload_bytes);
      complete_recv(req);
      trace_ev(cfg_.trace, m->src, m->sender_req, MsgEvent::kDelivered, now());
    } else {
      LCMPI_CHECK(m->kind == MsgKind::kRts, "unexpected queue held non-envelope");
      accrue_credit(m->src, caps().control_record_bytes);
      start_rendezvous(req, *m);
    }
    return req;
  }
  charge_match(scanned);
  posted_.post(PostedQueue::Entry{context, src_world, tag, req->id});
  return req;
}

void Engine::deliver_payload(const Request& req, ProtoMsg& msg) {
  const std::int64_t capacity = req->recv_type.size() * req->recv_count;
  Bytes payload = std::move(msg.payload);  // consumed: delivery is terminal
  req->status.source = msg.src;
  req->status.tag = msg.tag;
  if (static_cast<std::int64_t>(msg.size) > capacity) {
    req->status.error = Err::kTruncate;
    payload.resize(static_cast<std::size_t>(capacity));
  }
  req->status.count_bytes = static_cast<std::int64_t>(payload.size());
  req->recv_type.unpack(payload, req->recv_buf, req->recv_count);
  // Only eager synchronous sends need an explicit ack; rendezvous
  // completion (pull finished / CTS received) already implies the match.
  if (msg.kind == MsgKind::kEager &&
      static_cast<Mode>(msg.mode) == Mode::kSynchronous) {
    ProtoMsg ack;
    ack.kind = MsgKind::kSsendAck;
    ack.sender_req = msg.sender_req;
    send_msg(msg.src, std::move(ack));
  }
}

void Engine::complete_recv(const Request& req) {
  req->done = true;
  live_.erase(req->id);
}

void Engine::start_rendezvous(const Request& req, const ProtoMsg& rts) {
  req->status.source = rts.src;
  req->status.tag = rts.tag;
  if (caps().pull_bulk) {
    // The paper's Meiko path: the receiver initiates a DMA from the sender
    // straight into the user buffer — no intermediate buffering.
    const std::uint64_t id = req->id;
    const int rts_src = rts.src;
    const std::uint64_t rts_req = rts.sender_req;
    ep_.pull_bulk(self_, rts.src, rts.bulk_key, [this, id, rts_src, rts_req](Bytes data) {
      auto it = live_.find(id);
      LCMPI_CHECK(it != live_.end(), "pull completion for dead request");
      const Request r = it->second;
      const std::int64_t capacity = r->recv_type.size() * r->recv_count;
      if (static_cast<std::int64_t>(data.size()) > capacity) {
        r->status.error = Err::kTruncate;
        data.resize(static_cast<std::size_t>(capacity));
      }
      r->status.count_bytes = static_cast<std::int64_t>(data.size());
      r->recv_type.unpack(data, r->recv_buf, r->recv_count);
      r->done = true;
      live_.erase(r->id);
      trace_ev(cfg_.trace, rts_src, rts_req, MsgEvent::kDelivered, now());
      ep_.wake();
    });
    return;
  }
  // Push path (TCP): tell the sender to transmit; route the data back to
  // this request by the sender's request id.
  if (ep_.bulk_plane(rts.src) != fabric::BulkPlane::kInline) {
    // Bulk plane: the payload will bypass the framed control channel, so
    // register the landing buffer with the fabric BEFORE the CTS leaves —
    // the sender writes bulk bytes only after the CTS arrives, so the
    // registration always precedes the transfer header. A contiguous
    // receive type lands straight in the user buffer (single-copy or
    // zero-copy, per transport); otherwise the fabric fills a pooled
    // staging buffer unpacked at kBulkDelivered.
    const std::int64_t capacity = req->recv_type.size() * req->recv_count;
    const std::int64_t expect =
        std::min<std::int64_t>(capacity, static_cast<std::int64_t>(rts.size));
    req->bulk_total = rts.size;
    void* dst = nullptr;
    if (req->recv_type.is_contiguous()) {
      req->bulk_direct = true;
      dst = req->recv_buf;
    } else {
      req->bulk_staging = pool_.acquire(static_cast<std::size_t>(expect));
      req->bulk_staging.resize(static_cast<std::size_t>(expect));
      dst = req->bulk_staging.data();
    }
    ep_.bulk_post(rts.src, rts.sender_req, dst, static_cast<std::size_t>(expect));
  }
  pending_rdata_[{rts.src, rts.sender_req}] = req->id;
  ProtoMsg cts;
  cts.kind = MsgKind::kCts;
  cts.sender_req = rts.sender_req;
  send_msg(rts.src, std::move(cts));
}

// ----------------------------------------------------------------- handlers

void Engine::progress() {
  while (auto m = ep_.poll(self_)) handle(std::move(*m));
}

void Engine::progress_until(const std::function<bool()>& until) {
  for (;;) {
    progress();
    if (until()) return;
    ep_.wait_activity(self_);
  }
}

void Engine::handle(ProtoMsg msg) {
  // Bulk completion notes are synthesized by the local fabric, not popped
  // off a sequenced channel: they carry no seq and no piggybacked credit.
  // Hardware broadcast and barrier releases likewise bypass the per-pair
  // sequenced channel (the fat tree replicates them in hardware).
  const bool local_note =
      msg.kind == MsgKind::kBulkSent || msg.kind == MsgKind::kBulkDelivered;
  if (msg.src != rank() && msg.kind != MsgKind::kBcast &&
      msg.kind != MsgKind::kBarrier && !local_note) {
    LCMPI_CHECK(msg.seq == expect_seq_[static_cast<std::size_t>(msg.src)]++,
                "fabric delivered out of order");
    if (caps().flow == FlowControl::kCredit && msg.credit > 0) {
      credit_[static_cast<std::size_t>(msg.src)] += msg.credit;
      try_launch(msg.src);
    }
  }
  switch (msg.kind) {
    case MsgKind::kEager:
      handle_eager(std::move(msg));
      break;
    case MsgKind::kRts:
      handle_rts(std::move(msg));
      break;
    case MsgKind::kCts: {
      auto it = live_.find(msg.sender_req);
      LCMPI_CHECK(it != live_.end(), "CTS for unknown send");
      const Request req = it->second;
      if (ep_.bulk_plane(req->dst) != fabric::BulkPlane::kInline) {
        // Bulk plane: stream the payload outside the framed control
        // channel. A contiguous user buffer is handed to the fabric
        // as-is — zero pack copy; the MPI standard keeps it valid until
        // the request completes, which happens at kBulkSent. Bsend
        // snapshots and pull-staged payloads already sit in send_payload;
        // non-contiguous sends pack into a pooled buffer returned at
        // completion. The transfer is asynchronous and chunk-pumped from
        // poll()/wait_activity, so eager envelopes interleave with it.
        const std::int64_t nbytes = req->send_type.size() * req->send_count;
        const void* src = nullptr;
        if (!req->send_payload.empty()) {
          src = req->send_payload.data();
        } else if (req->send_type.is_contiguous()) {
          src = req->send_buf;
        } else {
          req->send_payload = pool_.acquire(static_cast<std::size_t>(nbytes));
          req->send_type.pack_append(req->send_buf, req->send_count,
                                     req->send_payload);
          req->bulk_pooled = true;
          src = req->send_payload.data();
        }
        ep_.bulk_send(self_, req->dst, req->id, src,
                      static_cast<std::size_t>(nbytes));
        break;  // completes at kBulkSent
      }
      ProtoMsg data;
      data.kind = MsgKind::kRdata;
      data.sender_req = req->id;
      data.mode = static_cast<std::uint8_t>(req->mode);
      data.size = static_cast<std::uint32_t>(req->send_type.size() * req->send_count);
      data.payload = req->send_payload.empty() && req->send_count > 0
                         ? req->send_type.pack(req->send_buf, req->send_count)
                         : std::move(req->send_payload);  // send completes below
      req->data_out = true;
      send_msg(req->dst, std::move(data));
      complete_send(req);
      break;
    }
    case MsgKind::kRdata: {
      auto key = std::make_pair(msg.src, msg.sender_req);
      auto it = pending_rdata_.find(key);
      LCMPI_CHECK(it != pending_rdata_.end(), "RDATA with no pending rendezvous");
      const std::uint64_t req_id = it->second;
      pending_rdata_.erase(it);
      auto lit = live_.find(req_id);
      LCMPI_CHECK(lit != live_.end(), "RDATA for dead request");
      const Request req = lit->second;
      // Rendezvous data lands straight in the user buffer (the fabric
      // already charged the transport read). The RDATA record does not
      // repeat the envelope, so restore the matched RTS's source/tag.
      ProtoMsg as_delivery = std::move(msg);
      as_delivery.src = req->status.source;
      as_delivery.tag = req->status.tag;
      deliver_payload(req, as_delivery);
      complete_recv(req);
      trace_ev(cfg_.trace, as_delivery.src, as_delivery.sender_req, MsgEvent::kDelivered,
               now());
      break;
    }
    case MsgKind::kCredit:
      // Credit was already banked by the common path above.
      break;
    case MsgKind::kSlotFree:
      slot_free_[static_cast<std::size_t>(msg.src)] = true;
      try_launch(msg.src);
      break;
    case MsgKind::kSsendAck: {
      auto it = live_.find(msg.sender_req);
      LCMPI_CHECK(it != live_.end(), "ssend ack for unknown send");
      const Request req = it->second;
      req->got_ssend_ack = true;
      if (req->launched) complete_send(req);
      break;
    }
    case MsgKind::kRmaPut:
    case MsgKind::kRmaGet:
    case MsgKind::kRmaGetReply:
    case MsgKind::kRmaAcc: {
      auto it = rma_wins_.find(msg.bulk_key);
      LCMPI_CHECK(it != rma_wins_.end(), "RMA frame for unknown window");
      it->second->on_rma(std::move(msg));
      break;
    }
    case MsgKind::kBcast:
      bcast_q_[msg.context].push_back(std::move(msg));
      break;
    case MsgKind::kBarrier:
      ++hw_barrier_released_;
      break;
    case MsgKind::kBulkSent: {
      // Local note: our bulk payload has fully left the user buffer.
      auto it = live_.find(msg.sender_req);
      LCMPI_CHECK(it != live_.end(), "bulk-sent note for unknown send");
      const Request req = it->second;
      req->data_out = true;
      if (req->bulk_pooled) {
        pool_.release(std::move(req->send_payload));
        req->bulk_pooled = false;
      }
      complete_send(req);
      break;
    }
    case MsgKind::kBulkDelivered: {
      // Local note: a bulk transfer fully landed in the registered buffer.
      const auto key = std::make_pair(msg.src, msg.sender_req);
      auto it = pending_rdata_.find(key);
      LCMPI_CHECK(it != pending_rdata_.end(), "bulk delivery with no pending rendezvous");
      const std::uint64_t req_id = it->second;
      pending_rdata_.erase(it);
      auto lit = live_.find(req_id);
      LCMPI_CHECK(lit != live_.end(), "bulk delivery for dead request");
      const Request req = lit->second;
      const std::int64_t capacity = req->recv_type.size() * req->recv_count;
      const std::int64_t total = static_cast<std::int64_t>(req->bulk_total);
      if (total > capacity) req->status.error = Err::kTruncate;
      req->status.count_bytes = std::min(capacity, total);
      if (!req->bulk_direct) {
        req->recv_type.unpack(req->bulk_staging, req->recv_buf, req->recv_count);
        pool_.release(std::move(req->bulk_staging));
      }
      complete_recv(req);
      trace_ev(cfg_.trace, msg.src, msg.sender_req, MsgEvent::kDelivered, now());
      break;
    }
  }
}

void Engine::handle_eager(ProtoMsg msg) {
  trace_ev(cfg_.trace, msg.src, msg.sender_req, MsgEvent::kArrived, now());
  std::size_t scanned = 0;
  auto posted = posted_.match(msg.context, msg.src, msg.tag, &scanned);
  charge_match(scanned);
  if (posted) trace_ev(cfg_.trace, msg.src, msg.sender_req, MsgEvent::kMatched, now());
  const std::int64_t payload_bytes = static_cast<std::int64_t>(msg.payload.size());
  if (posted) {
    auto it = live_.find(posted->request_id);
    LCMPI_CHECK(it != live_.end(), "posted receive vanished");
    const Request req = it->second;
    // Copy out of the envelope slot into the user buffer.
    const fabric::MpiCosts& c = ep_.fabric().mpi_costs();
    self_.advance(c.unexpected_copy_base + c.unexpected_copy_per_byte * payload_bytes);
    if (msg.src != rank()) send_slot_free(msg.src);
    deliver_payload(req, msg);
    accrue_credit(msg.src, caps().control_record_bytes + payload_bytes);
    complete_recv(req);
    trace_ev(cfg_.trace, msg.src, msg.sender_req, MsgEvent::kDelivered, now());
    return;
  }
  if (static_cast<Mode>(msg.mode) == Mode::kReady)
    raise(Err::kNoPostedRecv, "ready-mode message with no posted receive");
  if (unexpected_.buffered_bytes() + payload_bytes > cfg_.max_unexpected_bytes)
    throw MpiError(Err::kResources,
                   "rank " + std::to_string(rank()) +
                       ": unexpected-message buffer overflow (Burns & Daoud)");
  // Buffer temporarily at the receiver (the paper's eager trade-off):
  // copy into reserved memory, freeing the envelope slot.
  const fabric::MpiCosts& c = ep_.fabric().mpi_costs();
  self_.advance(c.unexpected_copy_base + c.unexpected_copy_per_byte * payload_bytes);
  const int src = msg.src;
  unexpected_.add(std::move(msg));
  if (src != rank()) send_slot_free(src);
}

void Engine::handle_rts(ProtoMsg msg) {
  trace_ev(cfg_.trace, msg.src, msg.sender_req, MsgEvent::kArrived, now());
  std::size_t scanned = 0;
  auto posted = posted_.match(msg.context, msg.src, msg.tag, &scanned);
  charge_match(scanned);
  if (posted) trace_ev(cfg_.trace, msg.src, msg.sender_req, MsgEvent::kMatched, now());
  if (msg.src != rank()) send_slot_free(msg.src);
  if (posted) {
    auto it = live_.find(posted->request_id);
    LCMPI_CHECK(it != live_.end(), "posted receive vanished");
    accrue_credit(msg.src, caps().control_record_bytes);
    start_rendezvous(it->second, msg);
    return;
  }
  if (static_cast<Mode>(msg.mode) == Mode::kReady)
    raise(Err::kNoPostedRecv, "ready-mode rendezvous with no posted receive");
  unexpected_.add(std::move(msg));
}

void Engine::send_slot_free(int src) {
  if (caps().flow != FlowControl::kSingleSlot) return;
  ProtoMsg m;
  m.kind = MsgKind::kSlotFree;
  send_msg(src, std::move(m));
}

void Engine::accrue_credit(int src, std::int64_t bytes) {
  if (caps().flow != FlowControl::kCredit || src == rank()) return;
  auto& owed = owed_[static_cast<std::size_t>(src)];
  owed += bytes;
  if (owed >= caps().credit_bytes / 4) {
    ProtoMsg m;
    m.kind = MsgKind::kCredit;
    send_msg(src, std::move(m));  // send_msg piggybacks (and clears) owed_
  }
}

// ------------------------------------------------------------ one-sided RMA

std::uint64_t Engine::rma_make_key(std::uint32_t context) {
  const std::uint32_t seq = rma_win_seq_[context]++;
  return (static_cast<std::uint64_t>(context) << 32) | seq;
}

void Engine::rma_register(std::uint64_t key, RmaTarget* win) {
  LCMPI_CHECK(rma_wins_.emplace(key, win).second, "window key registered twice");
}

void Engine::rma_deregister(std::uint64_t key) { rma_wins_.erase(key); }

void Engine::rma_send(int dst_world, ProtoMsg msg) {
  send_msg(dst_world, std::move(msg));
}

// --------------------------------------------------------- wait/test/probe

void Engine::wait(const Request& req) {
  progress_until([&] { return req->done; });
  const fabric::MpiCosts& c = ep_.fabric().mpi_costs();
  self_.advance(c.bookkeeping);
  if (req->status.error != Err::kSuccess && !cfg_.errors_return)
    raise(req->status.error, "request completed with error");
}

bool Engine::test(const Request& req) {
  progress();
  if (req->done && req->status.error != Err::kSuccess && !cfg_.errors_return)
    raise(req->status.error, "request completed with error");
  return req->done;
}

bool Engine::cancel(const Request& req) {
  if (req->kind != RequestState::Kind::kRecv || req->done || req->matched) return false;
  if (!posted_.remove(req->id)) return false;
  req->status.source = kProcNull;
  req->status.count_bytes = 0;
  req->done = true;
  live_.erase(req->id);
  return true;
}

Status Engine::probe(int src_world, std::int32_t tag, std::uint32_t context) {
  const fabric::ProtoMsg* found = nullptr;
  progress_until([&] {
    std::size_t scanned = 0;
    found = unexpected_.peek(context, src_world, tag, &scanned);
    charge_match(scanned);
    return found != nullptr;
  });
  Status s;
  s.source = found->src;
  s.tag = found->tag;
  s.count_bytes = found->size;
  return s;
}

std::optional<Status> Engine::iprobe(int src_world, std::int32_t tag,
                                     std::uint32_t context) {
  progress();
  std::size_t scanned = 0;
  const fabric::ProtoMsg* found = unexpected_.peek(context, src_world, tag, &scanned);
  charge_match(scanned);
  if (!found) return std::nullopt;
  Status s;
  s.source = found->src;
  s.tag = found->tag;
  s.count_bytes = found->size;
  return s;
}

// ------------------------------------------------------------ bsend buffer

void Engine::buffer_attach(std::int64_t bytes) {
  LCMPI_CHECK(bytes >= 0, "negative buffer size");
  bsend_capacity_ = bytes;
}

std::int64_t Engine::buffer_detach() {
  progress_until([&] { return bsend_used_ == 0; });
  const std::int64_t old = bsend_capacity_;
  bsend_capacity_ = 0;
  return old;
}

// ------------------------------------------------------- hardware broadcast

void Engine::hw_bcast_root(Bytes payload, std::uint32_t context, std::uint64_t seq) {
  ProtoMsg msg;
  msg.kind = MsgKind::kBcast;
  msg.context = context;
  msg.seq = seq;
  msg.size = static_cast<std::uint32_t>(payload.size());
  msg.payload = std::move(payload);
  const fabric::MpiCosts& c = ep_.fabric().mpi_costs();
  self_.advance(c.envelope_build);
  ep_.hw_broadcast(self_, std::move(msg));
}

Bytes Engine::hw_bcast_recv(std::uint32_t context, std::uint64_t seq) {
  progress_until([&] {
    auto it = bcast_q_.find(context);
    return it != bcast_q_.end() && !it->second.empty();
  });
  auto& q = bcast_q_[context];
  ProtoMsg msg = std::move(q.front());
  q.pop_front();
  LCMPI_CHECK(msg.seq == seq, "hardware broadcast out of order");
  const fabric::MpiCosts& c = ep_.fabric().mpi_costs();
  self_.advance(c.unexpected_copy_base +
                c.bcast_copy_per_byte * static_cast<std::int64_t>(msg.payload.size()));
  return std::move(msg.payload);
}

void Engine::hw_barrier() {
  ep_.hw_barrier_enter(self_);
  const std::uint64_t target = ++hw_barrier_entered_;
  progress_until([&] { return hw_barrier_released_ >= target; });
}

}  // namespace lcmpi::mpi
