// One-sided MPI: windows, fence epochs, and Put/Get/Accumulate.
//
// A Win exposes a region of each rank's memory for remote access between
// collective fences (MPI-2 active-target synchronization). Two strategies
// hide behind the fabric's RMA seam, chosen once at window creation:
//
//  * DIRECT (ShmFabric — ranks share an address space): Put is a store
//    into the target's registered base, Get is a load; the fence barrier
//    pair supplies the happens-before edges. Accumulate is serialized per
//    target window: origins append records to the target's mutex-guarded
//    sink and the target folds them at its fence, sorted by origin rank.
//
//  * MESSAGE (Loop/Meiko/Socket): ops become kRma* frames the target's
//    progress loop services — Get replies and Accumulate folds run with
//    no user-code involvement, preserving passive-target semantics at
//    fence granularity. The fence reduce-scatters per-target op counts
//    (the MPICH fence) so each rank knows how many frames to await.
//
// Both strategies apply accumulates at the fence in ascending origin-rank
// order (program order within an origin), so non-commutative user ops
// produce byte-identical windows on every world. Epoch-tagged frames from
// a fast peer's next epoch are deferred, never applied early.
//
// On the Meiko, kRma* frames ride the modelled Elan remote-transaction
// machinery (Machine::rma_txn) — the paper's remote-word/remote-event
// path — at calibrated costs cheaper than the full protocol transaction.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/core/comm.h"

namespace lcmpi::mpi {

/// One buffered accumulate contribution awaiting the target's fence.
struct AccRecord {
  int origin = 0;                // comm rank of the contributing origin
  std::uint32_t origin_seq = 0;  // program order within the origin's epoch
  std::int64_t disp_bytes = 0;   // byte offset into the target window
  Op op = Op::kSum;
  std::int32_t user_op_id = -1;  // >= 0: registered user op instead of op
  Datatype::Primitive prim = Datatype::Primitive::kNone;
  std::int64_t elem_bytes = 0;
  std::int32_t count = 0;
  Bytes data;
};

/// The target-side accumulate buffer. In direct mode remote origin
/// threads append under the mutex ("Accumulate serialized per target
/// window"); the target drains it between the fence barriers.
struct AccSink {
  std::mutex mu;
  std::vector<AccRecord> recs;
};

class Win : public RmaTarget {
 public:
  /// Collective over `comm`: every rank exposes `size_bytes` at `base`
  /// with displacement unit `disp_unit` (sizes may differ per rank; both
  /// are allgathered so origins range-check locally).
  Win(Comm& comm, void* base, std::int64_t size_bytes, int disp_unit);
  ~Win() override;
  Win(const Win&) = delete;
  Win& operator=(const Win&) = delete;

  [[nodiscard]] void* base() const { return base_; }
  [[nodiscard]] std::int64_t size_bytes() const { return sizes_[static_cast<std::size_t>(comm_.rank())]; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] bool direct_mode() const { return all_direct_; }
  [[nodiscard]] Comm& comm() const { return comm_; }

  /// MPI_Put: origin elements land at target_disp (in the target's
  /// displacement units). The target datatype must be contiguous; the
  /// origin datatype may be any derived layout (packed locally).
  void put(const void* origin, int origin_count, const Datatype& origin_type,
           int target_rank, std::int64_t target_disp, int target_count,
           const Datatype& target_type);

  /// MPI_Get: the target region is copied into the origin buffer. Reads
  /// observe the window as of the start of the epoch in any region this
  /// epoch accumulates into (folds apply at the fence); overlapping a
  /// same-epoch put is erroneous (see DESIGN §6i conflict rules).
  void get(void* origin, int origin_count, const Datatype& origin_type,
           int target_rank, std::int64_t target_disp, int target_count,
           const Datatype& target_type);

  /// MPI_Accumulate: folds origin data into the target region at the
  /// target's fence, in ascending origin-rank order (program order within
  /// an origin). Built-in ops require a primitive element type; a
  /// user_op_id >= 0 selects an op registered identically on every rank
  /// via register_user_op (the id travels on the wire).
  void accumulate(const void* origin, int origin_count, const Datatype& origin_type,
                  int target_rank, std::int64_t target_disp, int target_count,
                  const Datatype& target_type, Op op, int user_op_id = -1);

  /// Registers a user combine op under an id agreed by all ranks. Must be
  /// associative; folds happen in ascending origin-rank order.
  void register_user_op(int id, Comm::UserOp fn);

  /// MPI_Win_fence: closes the current epoch (all issued ops complete at
  /// their targets, accumulates fold) and opens the next.
  void fence();

  /// MPI_Win_free: collective. Throws Err::kBadArgument if this rank has
  /// issued ops since its last fence (an open access epoch).
  void free();

  /// Engine progress routing (message mode) — not for users.
  void on_rma(fabric::ProtoMsg msg) override;

 private:
  [[nodiscard]] Engine& engine() const { return comm_.engine(); }
  void check_common(int target_rank, int origin_count, const Datatype& origin_type,
                    int target_count, const Datatype& target_type, const char* what);
  void check_range(int target_rank, std::int64_t disp_bytes, std::int64_t nbytes,
                   const char* what);
  [[nodiscard]] std::int64_t disp_bytes_at(int target_rank, std::int64_t target_disp) const;
  void raise(Err code, const std::string& what) const;
  void apply_frame(fabric::ProtoMsg& msg);
  void apply_accs();
  void fence_direct();
  void fence_message();

  Comm& comm_;
  std::byte* base_;
  int my_disp_unit_;
  std::uint64_t key_;
  std::vector<std::int64_t> sizes_;   // window bytes per comm rank
  std::vector<std::int64_t> units_;   // displacement unit per comm rank
  std::unordered_map<int, int> world_to_comm_;

  bool all_direct_ = false;
  std::vector<fabric::Endpoint::RmaSegment> direct_;  // per comm rank

  std::uint64_t epoch_ = 0;
  std::uint32_t acc_seq_ = 0;            // my per-epoch program-order counter
  std::int64_t ops_since_fence_ = 0;     // open-epoch detection for free()
  std::vector<std::int32_t> sent_counts_;  // frames sent per target (message)
  std::int64_t recv_count_ = 0;            // frames received this epoch
  std::uint64_t next_get_id_ = 1;
  struct PendingGet {
    void* buf = nullptr;
    int count = 0;
    Datatype type;
  };
  std::map<std::uint64_t, PendingGet> pending_gets_;
  std::vector<fabric::ProtoMsg> deferred_;  // next-epoch frames, held back

  AccSink sink_;
  std::map<int, Comm::UserOp> user_ops_;
  bool freed_ = false;
};

}  // namespace lcmpi::mpi
