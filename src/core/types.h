// Fundamental MPI-1.1 types used across the library.
#pragma once

#include <cstdint>

#include "src/util/status.h"

namespace lcmpi::mpi {

/// Wildcards, as in MPI_ANY_SOURCE / MPI_ANY_TAG.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// MPI_PROC_NULL: sends/receives addressed here complete immediately and
/// transfer nothing (the standard's edge-of-topology convention).
inline constexpr int kProcNull = -2;

/// Send modes (MPI_Send / MPI_Bsend / MPI_Ssend / MPI_Rsend).
enum class Mode : std::uint8_t {
  kStandard = 0,
  kBuffered = 1,
  kSynchronous = 2,
  kReady = 3,
};

/// Reduction operators for MPI_Reduce / MPI_Allreduce.
enum class Op : std::uint8_t { kSum, kProd, kMin, kMax };

/// The result record a receive/probe fills in (MPI_Status).
struct Status {
  int source = kAnySource;
  int tag = kAnyTag;
  Err error = Err::kSuccess;
  /// Received payload size in bytes (MPI_Get_count is derived from this).
  std::int64_t count_bytes = 0;
};

}  // namespace lcmpi::mpi
