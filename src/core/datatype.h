// MPI datatypes: basic types plus the MPI-1 derived constructors.
//
// A Datatype describes a memory layout — a list of (offset, length) byte
// extents relative to the start of one element, plus the element extent
// used to stride across `count` elements. Derived types compose:
// contiguous, vector (strided blocks), indexed (irregular blocks), and
// struct (heterogeneous). pack/unpack gather and scatter through the
// layout; contiguous layouts take a single-memcpy fast path.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/types.h"
#include "src/util/bytes.h"

namespace lcmpi::mpi {

class Datatype {
 public:
  /// One contiguous piece of an element, relative to the element start.
  struct Block {
    std::int64_t offset = 0;
    std::int64_t length = 0;
  };

  /// Element kind for basic types: reductions need to know how to combine.
  enum class Primitive : std::uint8_t { kNone, kByte, kInt32, kInt64, kFloat, kDouble };

  // --- basic types ----------------------------------------------------------
  static Datatype byte_type() { return basic(1, Primitive::kByte); }
  static Datatype int32_type() { return basic(4, Primitive::kInt32); }
  static Datatype int64_type() { return basic(8, Primitive::kInt64); }
  static Datatype float_type() { return basic(4, Primitive::kFloat); }
  static Datatype double_type() { return basic(8, Primitive::kDouble); }

  [[nodiscard]] Primitive primitive() const { return primitive_; }

  // --- derived constructors (MPI_Type_contiguous / vector / indexed / struct)
  static Datatype contiguous(int count, const Datatype& old);
  static Datatype vector(int count, int blocklength, int stride, const Datatype& old);
  static Datatype indexed(const std::vector<int>& blocklengths,
                          const std::vector<int>& displacements, const Datatype& old);
  /// Struct-style: explicit byte displacements of otherwise complete types.
  static Datatype structure(const std::vector<int>& blocklengths,
                            const std::vector<std::int64_t>& byte_displacements,
                            const std::vector<Datatype>& types);

  /// Payload bytes of one element (sum of block lengths).
  [[nodiscard]] std::int64_t size() const { return size_; }
  /// Memory span of one element, including holes (stride between elements).
  [[nodiscard]] std::int64_t extent() const { return extent_; }
  /// True if one element is a single gap-free block starting at offset 0.
  [[nodiscard]] bool is_contiguous() const;
  [[nodiscard]] const std::vector<Block>& blocks() const { return blocks_; }

  /// Gathers `count` elements starting at `src` into a packed buffer.
  [[nodiscard]] Bytes pack(const void* src, int count) const;
  /// Scatters packed bytes into `count` elements at `dst`. `packed` must
  /// hold at most count*size() bytes; returns bytes consumed.
  std::int64_t unpack(const Bytes& packed, void* dst, int count) const;

  // --- MPI_Pack / MPI_Unpack style explicit packing --------------------------
  /// Bytes `count` elements occupy in packed form (MPI_Pack_size).
  [[nodiscard]] std::int64_t pack_size(int count) const { return size_ * count; }
  /// Appends `count` elements to `outbuf` (MPI_Pack; the buffer is the
  /// position cursor).
  void pack_append(const void* inbuf, int count, Bytes& outbuf) const;
  /// Consumes `count` elements from `inbuf` starting at `position`,
  /// advancing it (MPI_Unpack).
  void unpack_at(const Bytes& inbuf, std::size_t& position, void* outbuf, int count) const;

 private:
  static Datatype basic(std::int64_t bytes, Primitive prim);

  std::vector<Block> blocks_;  // normalised: sorted by offset, coalesced
  std::int64_t size_ = 0;
  std::int64_t extent_ = 0;
  Primitive primitive_ = Primitive::kNone;

  void normalise();
};

}  // namespace lcmpi::mpi
