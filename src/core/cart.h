// Cartesian virtual topologies (MPI-1 chapter 6).
//
// The paper lists "virtual topology management" among the MPI standard's
// features; this module provides the Cartesian subset: dims_create
// factorisation, cart communicator construction (row-major rank order,
// as the standard specifies), coordinate/rank conversion, and cart_shift
// returning MPI_PROC_NULL at non-periodic edges — which plugs directly
// into sendrecv for stencil halo exchanges.
#pragma once

#include <optional>
#include <vector>

#include "src/core/comm.h"

namespace lcmpi::mpi {

/// MPI_Dims_create: factor `nnodes` into `ndims` balanced dimensions.
/// Entries of `dims` that are nonzero are kept as constraints.
std::vector<int> dims_create(int nnodes, int ndims, std::vector<int> dims = {});

class CartComm {
 public:
  /// Collective over `parent`. Ranks beyond prod(dims) get std::nullopt
  /// (the standard allows the grid to be smaller than the parent).
  static std::optional<CartComm> create(Comm& parent, std::vector<int> dims,
                                        std::vector<bool> periodic);

  [[nodiscard]] Comm& comm() { return comm_; }
  [[nodiscard]] const Comm& comm() const { return comm_; }
  [[nodiscard]] int ndims() const { return static_cast<int>(dims_.size()); }
  [[nodiscard]] const std::vector<int>& dims() const { return dims_; }
  [[nodiscard]] bool periodic(int dim) const;

  /// Row-major coordinates of a cart rank (MPI_Cart_coords).
  [[nodiscard]] std::vector<int> coords(int rank) const;
  [[nodiscard]] std::vector<int> my_coords() const { return coords(comm_.rank()); }
  /// Cart rank at coordinates; periodic dims wrap, non-periodic
  /// out-of-range coordinates yield kProcNull (MPI_Cart_rank semantics
  /// extended the way shift needs them).
  [[nodiscard]] int rank_at(std::vector<int> at) const;

  /// MPI_Cart_shift: ranks to receive-from and send-to for a displacement
  /// along `dim`. Either may be kProcNull at a non-periodic edge.
  struct Shift {
    int source = kProcNull;
    int dest = kProcNull;
  };
  [[nodiscard]] Shift shift(int dim, int displacement) const;

 private:
  CartComm(Comm comm, std::vector<int> dims, std::vector<bool> periodic)
      : comm_(std::move(comm)), dims_(std::move(dims)), periodic_(std::move(periodic)) {}

  Comm comm_;
  std::vector<int> dims_;
  std::vector<bool> periodic_;
};

}  // namespace lcmpi::mpi
