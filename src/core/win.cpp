#include "src/core/win.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>

namespace lcmpi::mpi {

using fabric::MsgKind;
using fabric::ProtoMsg;

namespace {

Datatype prim_type(Datatype::Primitive p) {
  switch (p) {
    case Datatype::Primitive::kByte: return Datatype::byte_type();
    case Datatype::Primitive::kInt32: return Datatype::int32_type();
    case Datatype::Primitive::kInt64: return Datatype::int64_type();
    case Datatype::Primitive::kFloat: return Datatype::float_type();
    case Datatype::Primitive::kDouble: return Datatype::double_type();
    case Datatype::Primitive::kNone: break;
  }
  throw InternalError("accumulate record without a primitive type");
}

}  // namespace

Win::Win(Comm& comm, void* base, std::int64_t size_bytes, int disp_unit)
    : comm_(comm), base_(static_cast<std::byte*>(base)), my_disp_unit_(disp_unit) {
  if (size_bytes < 0 || disp_unit <= 0 || (size_bytes > 0 && base == nullptr))
    raise(Err::kBadArgument, "invalid window creation arguments");
  const int n = comm_.size();

  // Advertise (bytes, disp_unit) so origins range-check locally — an
  // out-of-bounds op raises Err::kRange at the origin before any bytes
  // move, instead of corrupting the target.
  const std::int64_t mine[2] = {size_bytes, static_cast<std::int64_t>(disp_unit)};
  std::vector<std::int64_t> all(static_cast<std::size_t>(2 * n));
  comm_.allgather(mine, 2, all.data(), Datatype::int64_type());
  sizes_.resize(static_cast<std::size_t>(n));
  units_.resize(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    sizes_[static_cast<std::size_t>(r)] = all[static_cast<std::size_t>(2 * r)];
    units_[static_cast<std::size_t>(r)] = all[static_cast<std::size_t>(2 * r + 1)];
    world_to_comm_[comm_.world_rank(r)] = r;
  }
  sent_counts_.assign(static_cast<std::size_t>(n), 0);

  // Same creation order per context on every rank => same key everywhere.
  key_ = engine().rma_make_key(comm_.context());
  fabric::Endpoint& ep = engine().endpoint();
  ep.rma_expose(key_, base_, size_bytes, &sink_);
  engine().rma_register(key_, this);
  comm_.barrier();  // every rank exposed + registered before any op flies

  // Commit to one strategy for the window's lifetime: direct only if every
  // peer's segment is addressable from here (agreed by allreduce so no
  // rank fences by barrier while another counts frames).
  direct_.resize(static_cast<std::size_t>(n));
  std::int32_t mine_direct = 1;
  for (int r = 0; r < n; ++r) {
    if (r == comm_.rank()) {
      direct_[static_cast<std::size_t>(r)] = {base_, size_bytes, &sink_};
      continue;
    }
    if (!ep.rma_direct(comm_.world_rank(r), key_, &direct_[static_cast<std::size_t>(r)]))
      mine_direct = 0;
  }
  std::int32_t all_direct = 0;
  comm_.allreduce(&mine_direct, &all_direct, 1, Datatype::int32_type(), Op::kMin);
  all_direct_ = all_direct == 1;
}

Win::~Win() {
  if (!freed_) {
    // Abandoned window (e.g. after a thrown error): withdraw locally.
    // Destructors must not throw or run collectives.
    engine().rma_deregister(key_);
    engine().endpoint().rma_retract(key_);
  }
}

void Win::raise(Err code, const std::string& what) const {
  throw MpiError(code, "rank " + std::to_string(comm_.rank()) + ": " + what);
}

void Win::register_user_op(int id, Comm::UserOp fn) {
  LCMPI_CHECK(id >= 0, "user op ids must be non-negative");
  user_ops_[id] = std::move(fn);
}

std::int64_t Win::disp_bytes_at(int target_rank, std::int64_t target_disp) const {
  return target_disp * units_[static_cast<std::size_t>(target_rank)];
}

void Win::check_common(int target_rank, int origin_count, const Datatype& origin_type,
                       int target_count, const Datatype& target_type, const char* what) {
  LCMPI_CHECK(!freed_, "RMA operation on a freed window");
  if (origin_count < 0 || target_count < 0 || target_rank < 0 || target_rank >= comm_.size())
    raise(Err::kBadArgument, std::string(what) + ": invalid count or target rank");
  if (!target_type.is_contiguous())
    raise(Err::kBadArgument,
          std::string(what) + ": target datatype must be contiguous (origin may be derived)");
  if (origin_type.size() * origin_count != target_type.size() * target_count)
    raise(Err::kBadArgument, std::string(what) + ": origin and target sizes differ");
}

void Win::check_range(int target_rank, std::int64_t disp_bytes, std::int64_t nbytes,
                      const char* what) {
  const std::int64_t limit = sizes_[static_cast<std::size_t>(target_rank)];
  if (disp_bytes < 0 || disp_bytes + nbytes > limit)
    raise(Err::kRange, std::string(what) + " of " + std::to_string(nbytes) +
                           " bytes at offset " + std::to_string(disp_bytes) +
                           " outside window bounds [0, " + std::to_string(limit) +
                           ") at target rank " + std::to_string(target_rank));
}

// ------------------------------------------------------------------ origin ops

void Win::put(const void* origin, int origin_count, const Datatype& origin_type,
              int target_rank, std::int64_t target_disp, int target_count,
              const Datatype& target_type) {
  check_common(target_rank, origin_count, origin_type, target_count, target_type, "put");
  const std::int64_t nbytes = origin_type.size() * origin_count;
  if (nbytes == 0) return;  // zero-length: a no-op, no frame, no count
  const std::int64_t disp = disp_bytes_at(target_rank, target_disp);
  check_range(target_rank, disp, nbytes, "put");
  ++ops_since_fence_;
  if (target_rank == comm_.rank() || all_direct_) {
    const Bytes packed = origin_type.pack(origin, origin_count);
    std::memcpy(direct_[static_cast<std::size_t>(target_rank)].base + disp, packed.data(),
                packed.size());
    return;
  }
  ProtoMsg m;
  m.kind = MsgKind::kRmaPut;
  m.context = comm_.context();
  m.bulk_key = key_;
  m.tag = static_cast<std::int32_t>(static_cast<std::uint32_t>(epoch_));
  ByteWriter w(m.payload);
  w.put<std::int64_t>(disp);
  const Bytes packed = origin_type.pack(origin, origin_count);
  w.put_bytes(packed.data(), packed.size());
  m.size = static_cast<std::uint32_t>(m.payload.size());
  ++sent_counts_[static_cast<std::size_t>(target_rank)];
  engine().rma_send(comm_.world_rank(target_rank), std::move(m));
}

void Win::get(void* origin, int origin_count, const Datatype& origin_type, int target_rank,
              std::int64_t target_disp, int target_count, const Datatype& target_type) {
  check_common(target_rank, origin_count, origin_type, target_count, target_type, "get");
  const std::int64_t nbytes = origin_type.size() * origin_count;
  if (nbytes == 0) return;
  const std::int64_t disp = disp_bytes_at(target_rank, target_disp);
  check_range(target_rank, disp, nbytes, "get");
  ++ops_since_fence_;
  if (target_rank == comm_.rank() || all_direct_) {
    const std::byte* src = direct_[static_cast<std::size_t>(target_rank)].base + disp;
    const Bytes tmp(src, src + nbytes);
    origin_type.unpack(tmp, origin, origin_count);
    return;
  }
  const std::uint64_t id = next_get_id_++;
  pending_gets_[id] = PendingGet{origin, origin_count, origin_type};
  ProtoMsg m;
  m.kind = MsgKind::kRmaGet;
  m.context = comm_.context();
  m.bulk_key = key_;
  m.tag = static_cast<std::int32_t>(static_cast<std::uint32_t>(epoch_));
  m.sender_req = id;
  ByteWriter w(m.payload);
  w.put<std::int64_t>(disp);
  w.put<std::int64_t>(nbytes);
  m.size = static_cast<std::uint32_t>(m.payload.size());
  ++sent_counts_[static_cast<std::size_t>(target_rank)];
  engine().rma_send(comm_.world_rank(target_rank), std::move(m));
}

void Win::accumulate(const void* origin, int origin_count, const Datatype& origin_type,
                     int target_rank, std::int64_t target_disp, int target_count,
                     const Datatype& target_type, Op op, int user_op_id) {
  check_common(target_rank, origin_count, origin_type, target_count, target_type,
               "accumulate");
  Datatype::Primitive prim = Datatype::Primitive::kNone;
  if (user_op_id < 0) {
    prim = target_type.primitive();
    if (prim == Datatype::Primitive::kNone || origin_type.primitive() != prim)
      raise(Err::kBadArgument,
            "accumulate with a built-in op requires matching primitive datatypes");
  }
  const std::int64_t nbytes = origin_type.size() * origin_count;
  if (nbytes == 0) return;
  const std::int64_t disp = disp_bytes_at(target_rank, target_disp);
  check_range(target_rank, disp, nbytes, "accumulate");
  ++ops_since_fence_;

  if (target_rank == comm_.rank() || all_direct_) {
    AccRecord rec;
    rec.origin = comm_.rank();
    rec.origin_seq = acc_seq_++;
    rec.disp_bytes = disp;
    rec.op = op;
    rec.user_op_id = user_op_id;
    rec.prim = prim;
    rec.elem_bytes = target_type.size();
    rec.count = target_count;
    rec.data = origin_type.pack(origin, origin_count);
    auto* sink = static_cast<AccSink*>(direct_[static_cast<std::size_t>(target_rank)].acc_sink);
    const std::lock_guard<std::mutex> lk(sink->mu);
    sink->recs.push_back(std::move(rec));
    return;
  }
  ProtoMsg m;
  m.kind = MsgKind::kRmaAcc;
  m.context = comm_.context();
  m.bulk_key = key_;
  m.tag = static_cast<std::int32_t>(static_cast<std::uint32_t>(epoch_));
  ByteWriter w(m.payload);
  w.put<std::int64_t>(disp);
  w.put<std::uint32_t>(acc_seq_++);
  w.put<std::int32_t>(user_op_id);
  w.put<std::uint8_t>(static_cast<std::uint8_t>(op));
  w.put<std::uint8_t>(static_cast<std::uint8_t>(prim));
  w.put<std::int64_t>(target_type.size());
  w.put<std::int32_t>(target_count);
  const Bytes packed = origin_type.pack(origin, origin_count);
  w.put_bytes(packed.data(), packed.size());
  m.size = static_cast<std::uint32_t>(m.payload.size());
  ++sent_counts_[static_cast<std::size_t>(target_rank)];
  engine().rma_send(comm_.world_rank(target_rank), std::move(m));
}

// ------------------------------------------------------------------ target side

void Win::on_rma(ProtoMsg msg) {
  if (msg.kind == MsgKind::kRmaGetReply) {
    // Origin side: land the fetched bytes. Never epoch-deferred — the
    // reply belongs to the epoch the origin is still in.
    auto it = pending_gets_.find(msg.sender_req);
    LCMPI_CHECK(it != pending_gets_.end(), "RMA get reply for unknown get");
    it->second.type.unpack(msg.payload, it->second.buf, it->second.count);
    pending_gets_.erase(it);
    return;
  }
  const std::uint32_t ep = static_cast<std::uint32_t>(msg.tag);
  if (ep != static_cast<std::uint32_t>(epoch_)) {
    // A fast peer finished its fence first and opened the next epoch; hold
    // the frame until our fence advances. It can never be 2+ ahead: the
    // fence's collective would block the peer until we caught up.
    LCMPI_CHECK(ep == static_cast<std::uint32_t>(epoch_ + 1),
                "RMA frame from a closed or far-future epoch");
    deferred_.push_back(std::move(msg));
    return;
  }
  apply_frame(msg);
}

void Win::apply_frame(ProtoMsg& msg) {
  ++recv_count_;
  ByteReader r(msg.payload);
  switch (msg.kind) {
    case MsgKind::kRmaPut: {
      const std::int64_t disp = r.get<std::int64_t>();
      const std::int64_t nbytes = static_cast<std::int64_t>(r.remaining());
      LCMPI_CHECK(disp >= 0 && disp + nbytes <= size_bytes(),
                  "remote put outside window bounds");
      r.get_bytes(base_ + disp, static_cast<std::size_t>(nbytes));
      break;
    }
    case MsgKind::kRmaGet: {
      const std::int64_t disp = r.get<std::int64_t>();
      const std::int64_t nbytes = r.get<std::int64_t>();
      LCMPI_CHECK(disp >= 0 && nbytes >= 0 && disp + nbytes <= size_bytes(),
                  "remote get outside window bounds");
      ProtoMsg reply;
      reply.kind = MsgKind::kRmaGetReply;
      reply.context = comm_.context();
      reply.bulk_key = key_;
      reply.sender_req = msg.sender_req;
      ByteWriter w(reply.payload);
      w.put_bytes(base_ + disp, static_cast<std::size_t>(nbytes));
      reply.size = static_cast<std::uint32_t>(reply.payload.size());
      engine().rma_send(msg.src, std::move(reply));
      break;
    }
    case MsgKind::kRmaAcc: {
      const auto wit = world_to_comm_.find(msg.src);
      LCMPI_CHECK(wit != world_to_comm_.end(),
                  "RMA frame from outside the window's communicator");
      AccRecord rec;
      rec.origin = wit->second;
      rec.disp_bytes = r.get<std::int64_t>();
      rec.origin_seq = r.get<std::uint32_t>();
      rec.user_op_id = r.get<std::int32_t>();
      rec.op = static_cast<Op>(r.get<std::uint8_t>());
      rec.prim = static_cast<Datatype::Primitive>(r.get<std::uint8_t>());
      rec.elem_bytes = r.get<std::int64_t>();
      rec.count = r.get<std::int32_t>();
      rec.data = r.rest();
      LCMPI_CHECK(rec.disp_bytes >= 0 &&
                      rec.disp_bytes + static_cast<std::int64_t>(rec.data.size()) <=
                          size_bytes(),
                  "remote accumulate outside window bounds");
      const std::lock_guard<std::mutex> lk(sink_.mu);
      sink_.recs.push_back(std::move(rec));
      break;
    }
    default:
      throw InternalError("unexpected RMA frame kind");
  }
}

void Win::apply_accs() {
  std::vector<AccRecord> recs;
  {
    const std::lock_guard<std::mutex> lk(sink_.mu);
    recs.swap(sink_.recs);
  }
  // Ascending origin-rank fold; stable keeps each origin's program order
  // (arrival order per origin is program order on every strategy).
  std::stable_sort(recs.begin(), recs.end(), [](const AccRecord& a, const AccRecord& b) {
    if (a.origin != b.origin) return a.origin < b.origin;
    return a.origin_seq < b.origin_seq;
  });
  for (const AccRecord& rec : recs) {
    std::byte* dst = base_ + rec.disp_bytes;
    if (rec.user_op_id >= 0) {
      const auto it = user_ops_.find(rec.user_op_id);
      LCMPI_CHECK(it != user_ops_.end(), "accumulate names an unregistered user op");
      it->second(rec.data.data(), dst, rec.count);
    } else {
      reduce_op(prim_type(rec.prim), rec.op, rec.data.data(), dst, rec.count);
    }
  }
}

// ----------------------------------------------------------------------- fence

void Win::fence() {
  LCMPI_CHECK(!freed_, "fence on a freed window");
  if (all_direct_) {
    fence_direct();
  } else {
    fence_message();
  }
  ops_since_fence_ = 0;
  acc_seq_ = 0;
}

void Win::fence_direct() {
  // Barrier 1: every origin's stores/appends for this epoch are issued and
  // the barrier's release/acquire edges order them before what follows.
  comm_.barrier();
  apply_accs();
  ++epoch_;
  // Barrier 2: the folds are visible before any next-epoch direct access.
  comm_.barrier();
}

void Win::fence_message() {
  // The MPICH fence: reduce-scatter the per-target op counts so each rank
  // learns how many frames target it this epoch, then progress until they
  // all arrived and our own gets are answered.
  std::int32_t expected = 0;
  comm_.reduce_scatter_block(sent_counts_.data(), &expected, 1, Datatype::int32_type(),
                             Op::kSum);
  engine().progress_until(
      [&] { return recv_count_ >= expected && pending_gets_.empty(); });
  apply_accs();
  ++epoch_;
  recv_count_ = 0;
  std::fill(sent_counts_.begin(), sent_counts_.end(), 0);
  // Frames a fast peer already sent for the epoch we just opened.
  std::vector<ProtoMsg> replay;
  replay.swap(deferred_);
  for (ProtoMsg& m : replay) {
    LCMPI_CHECK(static_cast<std::uint32_t>(m.tag) == static_cast<std::uint32_t>(epoch_),
                "deferred RMA frame missed its epoch");
    apply_frame(m);
  }
}

// ------------------------------------------------------------------------ free

void Win::free() {
  if (freed_) return;
  if (ops_since_fence_ > 0)
    raise(Err::kBadArgument, "window freed with an open access epoch (fence first)");
  // A peer with an open epoch throws on its own free; our target-side
  // state for it is simply dropped. Quiesce collectively, then withdraw.
  comm_.barrier();
  engine().rma_deregister(key_);
  engine().endpoint().rma_retract(key_);
  freed_ = true;
}

}  // namespace lcmpi::mpi
