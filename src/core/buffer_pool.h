// BufferPool — recycled byte buffers for per-call staging.
//
// The collectives (van de Geijn scatter-allgather broadcast) and the
// bulk-plane rendezvous path both need a transient staging buffer sized
// to the message. Allocating a fresh multi-megabyte vector per call is
// pure overhead on the hot path, so each Engine owns one small pool:
// acquire() hands back a cleared buffer whose capacity is already big
// enough whenever one is available, release() returns it. Single-threaded
// by design — the engine runs on one rank's actor/thread — so there is no
// locking. Reuse counters feed mpi::pool_report (src/core/profile.h).
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/util/bytes.h"

namespace lcmpi::mpi {

class BufferPool {
 public:
  struct Stats {
    std::int64_t acquires = 0;       // total acquire() calls
    std::int64_t reuses = 0;         // served by a pooled buffer's capacity
    std::int64_t releases = 0;       // buffers returned
    std::int64_t discards = 0;       // returns dropped (pool already full)
    std::int64_t bytes_allocated = 0;  // fresh capacity allocated on misses
  };

  explicit BufferPool(std::size_t max_buffers = 8) : max_buffers_(max_buffers) {}

  /// A buffer with size 0 and capacity >= min_capacity. Callers resize()
  /// (value-initializing, as a fresh vector would) or pack_append into it.
  [[nodiscard]] Bytes acquire(std::size_t min_capacity) {
    ++stats_.acquires;
    // Smallest pooled buffer that already fits, so big buffers survive
    // for the big callers instead of being burned on small requests.
    std::size_t best = free_.size();
    for (std::size_t i = 0; i < free_.size(); ++i) {
      if (free_[i].capacity() < min_capacity) continue;
      if (best == free_.size() || free_[i].capacity() < free_[best].capacity())
        best = i;
    }
    if (best != free_.size()) {
      ++stats_.reuses;
      Bytes b = std::move(free_[best]);
      free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(best));
      b.clear();
      return b;
    }
    Bytes b;
    b.reserve(min_capacity);
    stats_.bytes_allocated += static_cast<std::int64_t>(min_capacity);
    return b;
  }

  /// Returns a buffer to the pool (keeps at most max_buffers, preferring
  /// to keep the larger capacities).
  void release(Bytes&& b) {
    ++stats_.releases;
    if (b.capacity() == 0) return;
    if (free_.size() < max_buffers_) {
      free_.push_back(std::move(b));
      return;
    }
    auto smallest = std::min_element(
        free_.begin(), free_.end(),
        [](const Bytes& a, const Bytes& c) { return a.capacity() < c.capacity(); });
    if (smallest->capacity() < b.capacity()) {
      *smallest = std::move(b);
    }
    ++stats_.discards;
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t pooled() const { return free_.size(); }

 private:
  std::size_t max_buffers_;
  std::vector<Bytes> free_;
  Stats stats_;
};

}  // namespace lcmpi::mpi
