#include "src/core/datatype.h"

#include <algorithm>
#include <cstring>

namespace lcmpi::mpi {

Datatype Datatype::basic(std::int64_t bytes, Primitive prim) {
  Datatype t;
  t.blocks_.push_back(Block{0, bytes});
  t.size_ = bytes;
  t.extent_ = bytes;
  t.primitive_ = prim;
  return t;
}

void Datatype::normalise() {
  std::sort(blocks_.begin(), blocks_.end(),
            [](const Block& a, const Block& b) { return a.offset < b.offset; });
  std::vector<Block> merged;
  for (const Block& b : blocks_) {
    if (b.length == 0) continue;
    if (!merged.empty() && merged.back().offset + merged.back().length == b.offset) {
      merged.back().length += b.length;
    } else {
      LCMPI_CHECK(merged.empty() ||
                      merged.back().offset + merged.back().length <= b.offset,
                  "overlapping datatype blocks");
      merged.push_back(b);
    }
  }
  blocks_ = std::move(merged);
  size_ = 0;
  for (const Block& b : blocks_) size_ += b.length;
}

bool Datatype::is_contiguous() const {
  return blocks_.size() == 1 && blocks_[0].offset == 0 && blocks_[0].length == extent_;
}

Datatype Datatype::contiguous(int count, const Datatype& old) {
  LCMPI_CHECK(count >= 0, "negative count");
  Datatype t;
  for (int i = 0; i < count; ++i)
    for (const Block& b : old.blocks_)
      t.blocks_.push_back(Block{i * old.extent_ + b.offset, b.length});
  t.extent_ = count * old.extent_;
  t.normalise();
  return t;
}

Datatype Datatype::vector(int count, int blocklength, int stride, const Datatype& old) {
  LCMPI_CHECK(count >= 0 && blocklength >= 0, "negative vector shape");
  Datatype t;
  for (int i = 0; i < count; ++i) {
    const std::int64_t base = static_cast<std::int64_t>(i) * stride * old.extent_;
    for (int j = 0; j < blocklength; ++j)
      for (const Block& b : old.blocks_)
        t.blocks_.push_back(Block{base + j * old.extent_ + b.offset, b.length});
  }
  // MPI extent: from the first byte to the last byte spanned.
  std::int64_t hi = 0;
  for (const Block& b : t.blocks_) hi = std::max(hi, b.offset + b.length);
  t.extent_ = hi;
  t.normalise();
  return t;
}

Datatype Datatype::indexed(const std::vector<int>& blocklengths,
                           const std::vector<int>& displacements, const Datatype& old) {
  LCMPI_CHECK(blocklengths.size() == displacements.size(), "indexed shape mismatch");
  Datatype t;
  for (std::size_t i = 0; i < blocklengths.size(); ++i) {
    const std::int64_t base = static_cast<std::int64_t>(displacements[i]) * old.extent_;
    for (int j = 0; j < blocklengths[i]; ++j)
      for (const Block& b : old.blocks_)
        t.blocks_.push_back(Block{base + j * old.extent_ + b.offset, b.length});
  }
  std::int64_t hi = 0;
  for (const Block& b : t.blocks_) hi = std::max(hi, b.offset + b.length);
  t.extent_ = hi;
  t.normalise();
  return t;
}

Datatype Datatype::structure(const std::vector<int>& blocklengths,
                             const std::vector<std::int64_t>& byte_displacements,
                             const std::vector<Datatype>& types) {
  LCMPI_CHECK(blocklengths.size() == byte_displacements.size() &&
                  blocklengths.size() == types.size(),
              "struct shape mismatch");
  Datatype t;
  for (std::size_t i = 0; i < types.size(); ++i) {
    for (int j = 0; j < blocklengths[i]; ++j) {
      const std::int64_t base = byte_displacements[i] + j * types[i].extent_;
      for (const Block& b : types[i].blocks_)
        t.blocks_.push_back(Block{base + b.offset, b.length});
    }
  }
  std::int64_t hi = 0;
  for (const Block& b : t.blocks_) hi = std::max(hi, b.offset + b.length);
  t.extent_ = hi;
  t.normalise();
  return t;
}

Bytes Datatype::pack(const void* src, int count) const {
  const auto* base = static_cast<const std::byte*>(src);
  Bytes out(static_cast<std::size_t>(size_ * count));
  if (is_contiguous()) {
    if (!out.empty()) std::memcpy(out.data(), base, out.size());
    return out;
  }
  std::size_t at = 0;
  for (int i = 0; i < count; ++i) {
    const std::int64_t elem = static_cast<std::int64_t>(i) * extent_;
    for (const Block& b : blocks_) {
      std::memcpy(out.data() + at, base + elem + b.offset,
                  static_cast<std::size_t>(b.length));
      at += static_cast<std::size_t>(b.length);
    }
  }
  return out;
}

std::int64_t Datatype::unpack(const Bytes& packed, void* dst, int count) const {
  auto* base = static_cast<std::byte*>(dst);
  const std::int64_t capacity = size_ * count;
  const auto avail = static_cast<std::int64_t>(packed.size());
  LCMPI_CHECK(avail <= capacity, "unpack overflow (truncation unhandled upstream)");
  if (is_contiguous()) {
    if (!packed.empty()) std::memcpy(base, packed.data(), packed.size());
    return avail;
  }
  std::int64_t at = 0;
  for (int i = 0; i < count && at < avail; ++i) {
    const std::int64_t elem = static_cast<std::int64_t>(i) * extent_;
    for (const Block& b : blocks_) {
      const std::int64_t take = std::min(b.length, avail - at);
      if (take <= 0) break;
      std::memcpy(base + elem + b.offset, packed.data() + at,
                  static_cast<std::size_t>(take));
      at += take;
    }
  }
  return at;
}

void Datatype::pack_append(const void* inbuf, int count, Bytes& outbuf) const {
  Bytes packed = pack(inbuf, count);
  outbuf.insert(outbuf.end(), packed.begin(), packed.end());
}

void Datatype::unpack_at(const Bytes& inbuf, std::size_t& position, void* outbuf,
                         int count) const {
  const auto need = static_cast<std::size_t>(pack_size(count));
  LCMPI_CHECK(position + need <= inbuf.size(), "unpack past end of packed buffer");
  Bytes view(inbuf.begin() + static_cast<std::ptrdiff_t>(position),
             inbuf.begin() + static_cast<std::ptrdiff_t>(position + need));
  unpack(view, outbuf, count);
  position += need;
}

}  // namespace lcmpi::mpi
