#include "src/core/coll.h"

#include <cstdlib>

namespace lcmpi::mpi::coll {

const char* name(Algo a) {
  switch (a) {
    case Algo::kBinomial:
      return "binomial";
    case Algo::kScatterAllgather:
      return "scatter_allgather";
    case Algo::kRing:
      return "ring";
  }
  return "?";
}

std::optional<Algo> parse_algo(std::string_view s) {
  if (s == "binomial" || s == "tree") return Algo::kBinomial;
  if (s == "scatter_allgather" || s == "vdg") return Algo::kScatterAllgather;
  if (s == "ring" || s == "pipeline") return Algo::kRing;
  return std::nullopt;
}

std::optional<Algo> env_force() {
  const char* v = std::getenv("LCMPI_COLL");
  if (v == nullptr || *v == '\0') return std::nullopt;
  return parse_algo(v);
}

Tuning resolve(Tuning t) {
  if (!t.force) t.force = env_force();
  return t;
}

Algo select(Kind kind, std::int64_t bytes, int nranks, const Tuning& t) {
  if (t.force) return *t.force;
  // Barriers carry no payload: the dissemination exchange (filed under the
  // scatter-allgather family — symmetric, log2(n) rounds, no root) beats
  // both the two-pass tree and the 2(n-1)-step token ring.
  if (kind == Kind::kBarrier) return Algo::kScatterAllgather;
  // Reductions: the block reduce-scatter + ring allgatherv owns the
  // bandwidth regime at EVERY rank count (even 2 ranks split the fold work
  // in half), and the chain pipeline never wins — its reduce pass cannot
  // overlap with the redistribution the way reduce-scatter does. Measured
  // in bench/host_perf's collectives sweep on the CS/2 model.
  if (kind == Kind::kReduce || kind == Kind::kAllreduce)
    return bytes <= t.reduce_long_msg_bytes ? Algo::kBinomial
                                            : Algo::kScatterAllgather;
  // Broadcast: the tree's log2(n) byte retransmissions only hurt once the
  // payload is long, and with <= 2 ranks every algorithm degenerates to
  // the same single send. Past huge_msg_bytes the pipelined ring's
  // fill-once-then-stream behaviour beats even the scatter's p-way split.
  if (nranks <= 2 || bytes <= t.long_msg_bytes) return Algo::kBinomial;
  if (bytes <= t.huge_msg_bytes) return Algo::kScatterAllgather;
  return Algo::kRing;
}

}  // namespace lcmpi::mpi::coll
