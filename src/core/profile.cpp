#include "src/core/profile.h"

namespace lcmpi::mpi {

const char* call_kind_name(CallKind k) {
  switch (k) {
    case CallKind::kSend: return "send";
    case CallKind::kRecv: return "recv";
    case CallKind::kIsend: return "isend";
    case CallKind::kIrecv: return "irecv";
    case CallKind::kWait: return "wait";
    case CallKind::kTest: return "test";
    case CallKind::kProbe: return "probe";
    case CallKind::kSendrecv: return "sendrecv";
    case CallKind::kBcast: return "bcast";
    case CallKind::kBarrier: return "barrier";
    case CallKind::kReduce: return "reduce";
    case CallKind::kAllreduce: return "allreduce";
    case CallKind::kGather: return "gather";
    case CallKind::kScatter: return "scatter";
    case CallKind::kAllgather: return "allgather";
    case CallKind::kAlltoall: return "alltoall";
    case CallKind::kScan: return "scan";
    case CallKind::kCommMgmt: return "comm-mgmt";
    case CallKind::kCount: break;
  }
  return "?";
}

Table matching_report(const MatchStats& posted, const MatchStats& unexpected) {
  Table t({"queue", "lookups", "hits", "entries_scanned", "avg_scan", "max_depth",
           "buckets", "max_bucket"});
  const auto row = [&t](const char* name, const MatchStats& s) {
    const double avg =
        s.lookups == 0 ? 0.0
                       : static_cast<double>(s.entries_scanned) / static_cast<double>(s.lookups);
    t.add_row({name, std::to_string(s.lookups), std::to_string(s.hits),
               std::to_string(s.entries_scanned), fmt(avg, 2),
               std::to_string(s.max_depth), std::to_string(s.buckets),
               std::to_string(s.max_bucket)});
  };
  row("posted", posted);
  row("unexpected", unexpected);
  return t;
}

Table actor_report(const sim::ActorStats& s) {
  Table t({"metric", "value"});
  t.add_row({"switches", std::to_string(s.switches)});
  t.add_row({"actors_spawned", std::to_string(s.actors_spawned)});
  t.add_row({"stacks_allocated", std::to_string(s.stacks_allocated)});
  t.add_row({"stack_reuses", std::to_string(s.stack_reuses)});
  t.add_row({"stack_high_water", std::to_string(s.stack_high_water)});
  t.add_row({"stack_bytes", std::to_string(s.stack_bytes)});
  return t;
}

Table fabric_report(const fabric::SocketFabric::Stats& s) {
  Table t({"metric", "value"});
  t.add_row({"messages_tx", std::to_string(s.messages_tx)});
  t.add_row({"messages_rx", std::to_string(s.messages_rx)});
  t.add_row({"bytes_tx", std::to_string(s.bytes_tx)});
  t.add_row({"bytes_rx", std::to_string(s.bytes_rx)});
  t.add_row({"send_stalls", std::to_string(s.send_stalls)});
  t.add_row({"idle_polls", std::to_string(s.idle_polls)});
  t.add_row({"dial_retries", std::to_string(s.dial_retries)});
  t.add_row({"fds_open", std::to_string(s.fds_open)});
  t.add_row({"pairs_connected", std::to_string(s.pairs_connected)});
  t.add_row({"lazy_dials", std::to_string(s.lazy_dials)});
  t.add_row({"epoll_wakeups", std::to_string(s.epoll_wakeups)});
  t.add_row({"bulk_tx_transfers", std::to_string(s.bulk_tx_transfers)});
  t.add_row({"bulk_rx_transfers", std::to_string(s.bulk_rx_transfers)});
  t.add_row({"bulk_tx_bytes", std::to_string(s.bulk_tx_bytes)});
  t.add_row({"bulk_rx_bytes", std::to_string(s.bulk_rx_bytes)});
  t.add_row({"memfd_pairs", std::to_string(s.memfd_pairs)});
  t.add_row({"doorbells_tx", std::to_string(s.doorbells_tx)});
  t.add_row({"zerocopy_sends", std::to_string(s.zerocopy_sends)});
  t.add_row({"zerocopy_completions", std::to_string(s.zerocopy_completions)});
  return t;
}

Table fabric_report(const fabric::ShmFabric::Stats& s) {
  Table t({"metric", "value"});
  t.add_row({"messages", std::to_string(s.messages)});
  t.add_row({"full_parks", std::to_string(s.full_parks)});
  t.add_row({"idle_parks", std::to_string(s.idle_parks)});
  t.add_row({"bulk_transfers", std::to_string(s.bulk_transfers)});
  t.add_row({"bulk_bytes", std::to_string(s.bulk_bytes)});
  t.add_row({"mux_msgs", std::to_string(s.mux_msgs)});
  t.add_row({"promoted_pairs", std::to_string(s.promoted_pairs)});
  t.add_row({"mux_pairs", std::to_string(s.mux_pairs)});
  return t;
}

Table pool_report(const BufferPool::Stats& s) {
  Table t({"metric", "value"});
  t.add_row({"acquires", std::to_string(s.acquires)});
  t.add_row({"reuses", std::to_string(s.reuses)});
  t.add_row({"releases", std::to_string(s.releases)});
  t.add_row({"discards", std::to_string(s.discards)});
  t.add_row({"bytes_allocated", std::to_string(s.bytes_allocated)});
  return t;
}

Table Profiler::report() const {
  Table t({"call", "count", "time_us", "bytes"});
  for (std::size_t k = 0; k < entries_.size(); ++k) {
    const Entry& e = entries_[k];
    if (e.calls == 0) continue;
    t.add_row({call_kind_name(static_cast<CallKind>(k)), std::to_string(e.calls),
               fmt(e.time.usec()), std::to_string(e.bytes)});
  }
  return t;
}

}  // namespace lcmpi::mpi
