#include "src/core/cart.h"

#include <algorithm>

namespace lcmpi::mpi {

std::vector<int> dims_create(int nnodes, int ndims, std::vector<int> dims) {
  LCMPI_CHECK(nnodes >= 1 && ndims >= 1, "bad dims_create arguments");
  if (dims.empty()) dims.assign(static_cast<std::size_t>(ndims), 0);
  LCMPI_CHECK(static_cast<int>(dims.size()) == ndims, "dims size mismatch");

  int fixed_product = 1;
  int free_count = 0;
  for (int d : dims) {
    if (d > 0) fixed_product *= d;
    else ++free_count;
  }
  LCMPI_CHECK(fixed_product > 0 && nnodes % fixed_product == 0,
              "constrained dims do not divide nnodes");
  int remaining = nnodes / fixed_product;
  if (free_count == 0) {
    LCMPI_CHECK(remaining == 1, "constrained dims do not cover nnodes");
    return dims;
  }

  // Greedy balanced factorisation: repeatedly assign the largest prime
  // factor to the currently smallest free dimension.
  std::vector<int> free_vals(static_cast<std::size_t>(free_count), 1);
  std::vector<int> primes;
  int n = remaining;
  for (int p = 2; p * p <= n; ++p)
    while (n % p == 0) {
      primes.push_back(p);
      n /= p;
    }
  if (n > 1) primes.push_back(n);
  std::sort(primes.rbegin(), primes.rend());
  for (int p : primes) {
    auto it = std::min_element(free_vals.begin(), free_vals.end());
    *it *= p;
  }
  std::sort(free_vals.rbegin(), free_vals.rend());

  std::size_t next_free = 0;
  for (auto& d : dims)
    if (d == 0) d = free_vals[next_free++];
  return dims;
}

std::optional<CartComm> CartComm::create(Comm& parent, std::vector<int> dims,
                                         std::vector<bool> periodic) {
  LCMPI_CHECK(!dims.empty() && dims.size() == periodic.size(), "bad cart shape");
  int cells = 1;
  for (int d : dims) {
    LCMPI_CHECK(d >= 1, "cart dimension must be positive");
    cells *= d;
  }
  LCMPI_CHECK(cells <= parent.size(), "cart grid larger than communicator");
  // Ranks [0, cells) keep their order (row-major grid); the rest drop out.
  auto sub = parent.split(parent.rank() < cells ? 0 : -1, parent.rank());
  if (!sub) return std::nullopt;
  return CartComm(std::move(*sub), std::move(dims), std::move(periodic));
}

bool CartComm::periodic(int dim) const {
  LCMPI_CHECK(dim >= 0 && dim < ndims(), "dimension out of range");
  return periodic_[static_cast<std::size_t>(dim)];
}

std::vector<int> CartComm::coords(int rank) const {
  LCMPI_CHECK(rank >= 0 && rank < comm_.size(), "cart rank out of range");
  std::vector<int> c(dims_.size());
  int rem = rank;
  for (int d = ndims() - 1; d >= 0; --d) {
    c[static_cast<std::size_t>(d)] = rem % dims_[static_cast<std::size_t>(d)];
    rem /= dims_[static_cast<std::size_t>(d)];
  }
  return c;
}

int CartComm::rank_at(std::vector<int> at) const {
  LCMPI_CHECK(static_cast<int>(at.size()) == ndims(), "coordinate arity mismatch");
  int rank = 0;
  for (int d = 0; d < ndims(); ++d) {
    int v = at[static_cast<std::size_t>(d)];
    const int extent = dims_[static_cast<std::size_t>(d)];
    if (periodic_[static_cast<std::size_t>(d)]) {
      v = ((v % extent) + extent) % extent;
    } else if (v < 0 || v >= extent) {
      return kProcNull;
    }
    rank = rank * extent + v;
  }
  return rank;
}

CartComm::Shift CartComm::shift(int dim, int displacement) const {
  LCMPI_CHECK(dim >= 0 && dim < ndims(), "dimension out of range");
  std::vector<int> me = my_coords();
  Shift s;
  std::vector<int> up = me;
  up[static_cast<std::size_t>(dim)] += displacement;
  s.dest = rank_at(std::move(up));
  std::vector<int> down = me;
  down[static_cast<std::size_t>(dim)] -= displacement;
  s.source = rank_at(std::move(down));
  return s;
}

}  // namespace lcmpi::mpi
