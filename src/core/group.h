// Process groups (MPI-1 §5.3): ordered sets of world ranks with the
// standard set operations, plus group-based communicator creation.
//
// The paper lists "process group management" among the MPI features its
// implementation supports; groups here are plain value types — only
// Comm::create_from_group involves communication.
#pragma once

#include <vector>

#include "src/util/status.h"

namespace lcmpi::mpi {

class Group {
 public:
  Group() = default;
  explicit Group(std::vector<int> world_ranks);

  [[nodiscard]] int size() const { return static_cast<int>(ranks_.size()); }
  [[nodiscard]] bool empty() const { return ranks_.empty(); }
  /// World rank of group member `i`.
  [[nodiscard]] int world_rank(int i) const;
  /// This group's rank of `world_rank`, or -1 (MPI_UNDEFINED) if absent.
  [[nodiscard]] int rank_of(int world_rank) const;
  [[nodiscard]] bool contains(int world_rank) const { return rank_of(world_rank) >= 0; }
  [[nodiscard]] const std::vector<int>& ranks() const { return ranks_; }

  /// Members at the given positions, in that order (MPI_Group_incl).
  [[nodiscard]] Group incl(const std::vector<int>& positions) const;
  /// All members except those at the given positions (MPI_Group_excl).
  [[nodiscard]] Group excl(const std::vector<int>& positions) const;
  /// Members of `this`, then members of `other` not in `this`
  /// (MPI_Group_union's ordering rule).
  [[nodiscard]] Group set_union(const Group& other) const;
  /// Members of `this` that are also in `other`, in `this`'s order.
  [[nodiscard]] Group set_intersection(const Group& other) const;
  /// Members of `this` not in `other`, in `this`'s order.
  [[nodiscard]] Group set_difference(const Group& other) const;

  bool operator==(const Group& other) const { return ranks_ == other.ranks_; }

 private:
  std::vector<int> ranks_;  // group rank -> world rank; no duplicates
};

}  // namespace lcmpi::mpi
