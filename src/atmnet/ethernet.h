// Shared 10 Mbit/s Ethernet segment.
//
// All hosts contend for one bus; CSMA/CD arbitration is approximated by
// FIFO service of the shared medium, which preserves the property the
// paper's application study depends on: every frame any host sends delays
// every other host's traffic. Broadcast is natural — one bus occupancy
// delivers to all stations — which is what Bruck et al. exploit and what
// our Ethernet collective ablation uses.
#pragma once

#include "src/atmnet/calib.h"
#include "src/atmnet/network.h"
#include "src/sim/server.h"

namespace lcmpi::atmnet {

class EthernetNetwork final : public Network {
 public:
  EthernetNetwork(sim::Kernel& kernel, int nhosts, EthCalib calib = {});

  [[nodiscard]] int size() const override { return nhosts_; }
  [[nodiscard]] std::int64_t mtu() const override { return calib_.ip_mtu; }
  void send(int src, int dst, Bytes pdu) override;
  [[nodiscard]] bool supports_broadcast() const override { return true; }
  void broadcast(int src, Bytes pdu) override;

  [[nodiscard]] const EthCalib& calib() const { return calib_; }

  /// Bus occupancy of one frame carrying `payload_bytes`.
  [[nodiscard]] Duration frame_time(std::int64_t payload_bytes) const;
  /// Fraction of simulated time the bus spent busy.
  [[nodiscard]] Duration bus_busy_time() const { return bus_.busy_time(); }

 private:
  void transmit(int src, int dst, Bytes pdu, bool is_broadcast);

  EthCalib calib_;
  int nhosts_;
  sim::FifoServer bus_;
};

}  // namespace lcmpi::atmnet
