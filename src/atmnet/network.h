// Abstract cluster network: hosts exchanging link-layer PDUs.
//
// The simulated internet stack (src/inet) sits on top of this interface;
// AtmNetwork and EthernetNetwork provide the two media the paper measures.
// Loss injection lives here so transport-layer recovery (TCP retransmit,
// reliable-UDP) can be exercised under controlled fault conditions.
#pragma once

#include <cstdint>
#include <functional>

#include "src/sim/kernel.h"
#include "src/util/bytes.h"
#include "src/util/rng.h"

namespace lcmpi::atmnet {

class Network {
 public:
  explicit Network(sim::Kernel& kernel) : kernel_(kernel) {}
  virtual ~Network() = default;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Number of attached hosts.
  [[nodiscard]] virtual int size() const = 0;

  /// Largest PDU the medium carries (the IP MTU for the transport layer).
  [[nodiscard]] virtual std::int64_t mtu() const = 0;

  /// Queues `pdu` from `src` for delivery to `dst`'s handler.
  virtual void send(int src, int dst, Bytes pdu) = 0;

  /// True if the medium delivers one transmission to every host (Ethernet).
  [[nodiscard]] virtual bool supports_broadcast() const { return false; }

  /// Broadcast `pdu` to every host except `src` (only if supported).
  virtual void broadcast(int src, Bytes pdu);

  /// Registers the delivery handler for `host`.
  void set_handler(int host, std::function<void(int src, Bytes)> h);

  /// Enables random PDU loss with probability `rate` (deterministic seed).
  void set_loss(double rate, std::uint64_t seed);

  [[nodiscard]] sim::Kernel& kernel() const { return kernel_; }
  [[nodiscard]] std::int64_t pdus_dropped() const { return pdus_dropped_; }
  [[nodiscard]] std::int64_t pdus_delivered() const { return pdus_delivered_; }

 protected:
  /// Subclasses call this at delivery time; applies loss injection.
  void deliver(int src, int dst, Bytes pdu);
  /// Loss decision at launch time (lets subclasses skip dead transmissions).
  bool should_drop();

  sim::Kernel& kernel_;

 private:
  std::vector<std::function<void(int, Bytes)>> handlers_;
  double loss_rate_ = 0.0;
  Rng loss_rng_{0};
  std::int64_t pdus_dropped_ = 0;
  std::int64_t pdus_delivered_ = 0;
};

}  // namespace lcmpi::atmnet
