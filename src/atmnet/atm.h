// ATM cluster model: hosts on 155 Mbit/s links through an ASX-200 switch.
//
// A PDU submitted for transmission passes through:
//   1. the source i960 SAR (per-PDU + per-cell segmentation cost),
//   2. the source host's uplink (transmission of every 53-byte cell,
//      serialised — this is where concurrent flows out of one host queue),
//   3. the switch (cut-through transit: one fixed latency, because the
//      first cells exit while later ones are still arriving),
//   4. the destination i960 SAR reassembly (per-PDU + per-cell),
// after which the PDU is delivered. Cells are accounted arithmetically
// (payload + AAL5 trailer padded to 48-byte multiples), not simulated
// individually, keeping event counts O(1) per PDU while preserving exact
// wire occupancy and the 48/53 goodput tax.
#pragma once

#include <memory>
#include <vector>

#include "src/atmnet/calib.h"
#include "src/atmnet/network.h"
#include "src/sim/server.h"

namespace lcmpi::atmnet {

class AtmNetwork final : public Network {
 public:
  AtmNetwork(sim::Kernel& kernel, int nhosts, AtmCalib calib = {});

  [[nodiscard]] int size() const override { return static_cast<int>(uplinks_.size()); }
  [[nodiscard]] std::int64_t mtu() const override { return calib_.ip_mtu; }
  void send(int src, int dst, Bytes pdu) override;

  [[nodiscard]] const AtmCalib& calib() const { return calib_; }

  /// Cells a PDU of `payload_bytes` occupies after AAL5 trailer + padding.
  [[nodiscard]] std::int64_t cells_for(std::int64_t payload_bytes) const;
  /// Wire time for those cells on one 155 Mbit/s link.
  [[nodiscard]] Duration wire_time(std::int64_t payload_bytes) const;

 private:
  AtmCalib calib_;
  // Per host: the SAR processor and the uplink into the switch.
  std::vector<std::unique_ptr<sim::FifoServer>> sars_;
  std::vector<std::unique_ptr<sim::FifoServer>> uplinks_;
  // Per host: when its downlink (switch output port) next frees up.
  // Cut-through contention model: a PDU's delivery is pushed back if the
  // output port is still clocking out a competing sender's cells, but a
  // single uncontended flow never pays the wire time twice.
  std::vector<TimePoint> downlink_free_;
};

}  // namespace lcmpi::atmnet
