#include "src/atmnet/network.h"

namespace lcmpi::atmnet {

void Network::set_handler(int host, std::function<void(int, Bytes)> h) {
  if (static_cast<int>(handlers_.size()) <= host)
    handlers_.resize(static_cast<std::size_t>(host) + 1);
  handlers_[static_cast<std::size_t>(host)] = std::move(h);
}

void Network::set_loss(double rate, std::uint64_t seed) {
  LCMPI_CHECK(rate >= 0.0 && rate < 1.0, "loss rate out of range");
  loss_rate_ = rate;
  loss_rng_ = Rng(seed);
}

bool Network::should_drop() {
  if (loss_rate_ > 0.0 && loss_rng_.chance(loss_rate_)) {
    ++pdus_dropped_;
    return true;
  }
  return false;
}

void Network::deliver(int src, int dst, Bytes pdu) {
  const auto i = static_cast<std::size_t>(dst);
  LCMPI_CHECK(i < handlers_.size() && handlers_[i] != nullptr,
              "PDU delivered to host with no handler");
  ++pdus_delivered_;
  handlers_[i](src, std::move(pdu));
}

void Network::broadcast(int /*src*/, Bytes /*pdu*/) {
  throw InternalError("this medium does not support broadcast");
}

}  // namespace lcmpi::atmnet
