#include "src/atmnet/ethernet.h"

#include <algorithm>

namespace lcmpi::atmnet {

EthernetNetwork::EthernetNetwork(sim::Kernel& kernel, int nhosts, EthCalib calib)
    : Network(kernel), calib_(calib), nhosts_(nhosts), bus_(kernel) {
  LCMPI_CHECK(nhosts >= 1, "Ethernet segment needs at least one host");
}

Duration EthernetNetwork::frame_time(std::int64_t payload_bytes) const {
  const std::int64_t padded = std::max(payload_bytes, calib_.min_payload_bytes);
  const std::int64_t wire_bytes = padded + calib_.frame_overhead_bytes;
  return transmission_time(wire_bytes, calib_.bus_bits_per_sec / 8.0);
}

void EthernetNetwork::transmit(int src, int dst, Bytes pdu, bool is_broadcast) {
  LCMPI_CHECK(static_cast<std::int64_t>(pdu.size()) <= mtu(), "frame exceeds Ethernet MTU");
  if (should_drop()) return;
  const Duration occupancy = frame_time(static_cast<std::int64_t>(pdu.size()));
  bus_.submit(occupancy, [this, src, dst, is_broadcast, pdu = std::move(pdu)]() mutable {
    kernel_.schedule(calib_.propagation, [this, src, dst, is_broadcast,
                                          pdu = std::move(pdu)]() mutable {
      if (is_broadcast) {
        for (int h = 0; h < nhosts_; ++h)
          if (h != src) deliver(src, h, pdu);
      } else {
        deliver(src, dst, std::move(pdu));
      }
    });
  });
}

void EthernetNetwork::send(int src, int dst, Bytes pdu) {
  LCMPI_CHECK(src >= 0 && src < nhosts_ && dst >= 0 && dst < nhosts_, "bad host id");
  transmit(src, dst, std::move(pdu), /*is_broadcast=*/false);
}

void EthernetNetwork::broadcast(int src, Bytes pdu) {
  LCMPI_CHECK(src >= 0 && src < nhosts_, "bad host id");
  transmit(src, -1, std::move(pdu), /*is_broadcast=*/true);
}

}  // namespace lcmpi::atmnet
