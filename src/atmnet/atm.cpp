#include "src/atmnet/atm.h"

#include <algorithm>

namespace lcmpi::atmnet {

AtmNetwork::AtmNetwork(sim::Kernel& kernel, int nhosts, AtmCalib calib)
    : Network(kernel), calib_(calib) {
  LCMPI_CHECK(nhosts >= 1, "ATM network needs at least one host");
  for (int i = 0; i < nhosts; ++i) {
    sars_.push_back(std::make_unique<sim::FifoServer>(kernel));
    uplinks_.push_back(std::make_unique<sim::FifoServer>(kernel));
  }
  downlink_free_.assign(static_cast<std::size_t>(nhosts), TimePoint{});
}

std::int64_t AtmNetwork::cells_for(std::int64_t payload_bytes) const {
  const std::int64_t framed = payload_bytes + calib_.aal5_trailer_bytes;
  return (framed + calib_.cell_payload_bytes - 1) / calib_.cell_payload_bytes;
}

Duration AtmNetwork::wire_time(std::int64_t payload_bytes) const {
  const std::int64_t wire_bytes = cells_for(payload_bytes) * calib_.cell_total_bytes;
  return transmission_time(wire_bytes, calib_.link_bits_per_sec / 8.0);
}

void AtmNetwork::send(int src, int dst, Bytes pdu) {
  LCMPI_CHECK(src >= 0 && src < size() && dst >= 0 && dst < size(), "bad host id");
  LCMPI_CHECK(static_cast<std::int64_t>(pdu.size()) <= mtu(), "PDU exceeds ATM MTU");
  if (should_drop()) return;

  const auto nbytes = static_cast<std::int64_t>(pdu.size());
  const std::int64_t ncells = cells_for(nbytes);
  const Duration sar_cost = calib_.sar_per_pdu + calib_.sar_per_cell * ncells;
  const Duration tx_time = wire_time(nbytes);

  // Source SAR segments the PDU, then the uplink clocks the cells out.
  sars_[static_cast<std::size_t>(src)]->submit(sar_cost, [this, src, dst, tx_time, sar_cost,
                                                          pdu = std::move(pdu)]() mutable {
    uplinks_[static_cast<std::size_t>(src)]->submit(tx_time, [this, src, dst, sar_cost,
                                                              tx_time,
                                                              pdu = std::move(pdu)]() mutable {
      // Cut-through switch: fixed transit + propagation... unless the
      // destination's output port is still busy with a competing flow, in
      // which case the tail cells queue there.
      const TimePoint uncontended =
          kernel_.now() + calib_.switch_transit + calib_.propagation;
      TimePoint& port_free = downlink_free_[static_cast<std::size_t>(dst)];
      const TimePoint arrival =
          std::max(uncontended, port_free + tx_time);
      port_free = arrival;
      kernel_.schedule_at(arrival, [this, src, dst, sar_cost,
                                    pdu = std::move(pdu)]() mutable {
        sars_[static_cast<std::size_t>(dst)]->submit(
            sar_cost, [this, src, dst, pdu = std::move(pdu)]() mutable {
              deliver(src, dst, std::move(pdu));
            });
      });
    });
  });
}

}  // namespace lcmpi::atmnet
