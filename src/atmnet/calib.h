// Calibration constants for the workstation-cluster networks.
//
// The paper's cluster: eight SGI Indy workstations (133 MHz) plus an SGI
// Challenge SMP, connected both by a shared 10 Mbit/s Ethernet and by
// 155 Mbit/s ATM through a Fore Systems ForeRunner ASX-200 switch. Each
// host's Fore GIA-200 interface carries an Intel i960 that performs AAL
// segmentation-and-reassembly without the main processor.
#pragma once

#include <cstdint>

#include "src/util/time.h"

namespace lcmpi::atmnet {

struct AtmCalib {
  /// Link rate, bits per second (OC-3).
  double link_bits_per_sec = 155e6;
  /// ATM cell geometry: 53 bytes on the wire, 48 of payload.
  std::int64_t cell_total_bytes = 53;
  std::int64_t cell_payload_bytes = 48;
  /// AAL5 trailer appended to every PDU before padding to a cell multiple.
  std::int64_t aal5_trailer_bytes = 8;
  /// Switch transit (cut-through) per PDU.
  Duration switch_transit = microseconds(10.0);
  /// Fibre propagation + clocking per hop.
  Duration propagation = microseconds(1.0);
  /// i960 SAR: fixed cost per PDU at each end.
  Duration sar_per_pdu = microseconds(12.0);
  /// i960 SAR: per-cell handling cost at each end.
  Duration sar_per_cell = nanoseconds(250);
  /// Classical IP over ATM default MTU.
  std::int64_t ip_mtu = 9180;
};

struct EthCalib {
  /// Shared bus rate, bits per second.
  double bus_bits_per_sec = 10e6;
  /// Wire overhead per frame: preamble 8 + MAC header 14 + FCS 4 + IFG 12.
  std::int64_t frame_overhead_bytes = 38;
  /// Minimum Ethernet payload (frames are padded up to this).
  std::int64_t min_payload_bytes = 46;
  /// Propagation across the segment.
  Duration propagation = microseconds(3.0);
  /// Ethernet MTU.
  std::int64_t ip_mtu = 1500;
};

}  // namespace lcmpi::atmnet
