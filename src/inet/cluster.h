// InetCluster — the hosts' kernel network stacks over one shared medium.
//
// Owns per-host servers for interrupt-side work, demultiplexes arriving
// PDUs to TCP connections / UDP sockets / raw (Fore API) sockets, and
// charges every syscall-shaped operation per the attachment's
// DriverProfile. One InetCluster models one network attachment: build one
// over an AtmNetwork with atm_profile() and another over an
// EthernetNetwork with ethernet_profile() to compare the two media.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/atmnet/network.h"
#include "src/inet/calib.h"
#include "src/sim/mailbox.h"
#include "src/sim/server.h"

namespace lcmpi::inet {

class TcpEndpoint;
class TcpConnection;
class RudpChannel;

/// A datagram as seen by UDP / raw sockets.
struct Datagram {
  int src_host = -1;
  std::uint16_t src_port = 0;
  Bytes data;
};

/// Connectionless socket (UDP, or the Fore API's AAL3/4 access). Datagram
/// semantics: unreliable (drops under loss injection or queue overflow),
/// but never reordered by the media models here.
class DatagramSocket {
 public:
  DatagramSocket(const DatagramSocket&) = delete;
  DatagramSocket& operator=(const DatagramSocket&) = delete;

  /// Blocking sendto: charges the app thread for the syscall + copy, then
  /// hands the datagram to the kernel tx path. Max size = MTU - headers.
  void send_to(sim::Actor& self, int dst_host, std::uint16_t dst_port, Bytes data);

  /// Event-context sendto for protocol engines: no actor is charged; the
  /// given cost (the engine's notional syscall work) lands on the tx server.
  void engine_send(int dst_host, std::uint16_t dst_port, Bytes data, Duration cost);

  /// Broadcast sendto: one transmission reaches every other host's socket
  /// bound to `dst_port` (media with hardware broadcast only — Ethernet).
  /// This is the mechanism Bruck et al. exploit for collective operations.
  void send_broadcast(sim::Actor& self, std::uint16_t dst_port, Bytes data);

  /// Blocking receive.
  Datagram recv(sim::Actor& self);
  /// Nonblocking receive.
  std::optional<Datagram> try_recv(sim::Actor& self);
  /// Receive with timeout; nullopt if nothing arrives in time.
  std::optional<Datagram> recv_timeout(sim::Actor& self, Duration timeout);

  /// Switches the socket to callback delivery: arriving datagrams bypass
  /// the receive queue and invoke `fn` in kernel context (after receive
  /// charges). Used by protocol engines (reliable-UDP) that must react to
  /// ACKs while the application is blocked elsewhere.
  void set_on_arrival(std::function<void(Datagram)> fn) { on_arrival_cb_ = std::move(fn); }

  [[nodiscard]] std::size_t queued() const { return queue_.size(); }
  [[nodiscard]] int host() const { return host_; }
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] std::int64_t max_payload() const;
  [[nodiscard]] std::int64_t dropped_overflow() const { return dropped_overflow_; }

 private:
  friend class InetCluster;
  DatagramSocket(class InetCluster& cluster, int host, std::uint16_t port, bool raw);
  void on_arrival(Datagram d);  // kernel context, after rx charges

  class InetCluster& cluster_;
  int host_;
  std::uint16_t port_;
  bool raw_;
  std::deque<Datagram> queue_;
  std::function<void(Datagram)> on_arrival_cb_;
  sim::Trigger readable_;
  std::size_t max_queued_ = 64;  // kernel socket buffer, in datagrams
  std::int64_t dropped_overflow_ = 0;
};

class InetCluster {
 public:
  /// `profile` describes this attachment's driver costs; raw sockets use
  /// `raw_profile` (the Fore API path) and may differ.
  InetCluster(atmnet::Network& net, DriverProfile profile,
              DriverProfile raw_profile = fore_aal_profile());
  ~InetCluster();
  InetCluster(const InetCluster&) = delete;
  InetCluster& operator=(const InetCluster&) = delete;

  [[nodiscard]] int size() const { return net_.size(); }
  [[nodiscard]] sim::Kernel& kernel() const { return net_.kernel(); }
  [[nodiscard]] const DriverProfile& profile() const { return profile_; }
  [[nodiscard]] const DriverProfile& raw_profile() const { return raw_profile_; }
  [[nodiscard]] atmnet::Network& network() const { return net_; }

  /// Creates a pre-connected TCP connection between two hosts (the paper's
  /// clusters use static connections; setup dynamics are out of scope).
  TcpConnection& tcp_pair(int host_a, int host_b);

  /// Creates a reliable-UDP channel between two hosts, binding
  /// `port_base` on host_a and `port_base + 1` on host_b. Owned by the
  /// cluster, like tcp_pair — so the sockets a channel points into
  /// outlive it by construction (channels are declared after, and thus
  /// destroyed before, the socket map).
  RudpChannel& rudp_pair(int host_a, int host_b, std::uint16_t port_base);

  /// Binds a UDP socket on `host`:`port`.
  DatagramSocket& udp_socket(int host, std::uint16_t port);
  /// Binds a Fore-API (raw AAL) socket on `host`:`port`.
  DatagramSocket& raw_socket(int host, std::uint16_t port);

  // --- internals used by sockets/endpoints ---------------------------------
  sim::FifoServer& tx_server(int host) { return *tx_[static_cast<std::size_t>(host)]; }
  sim::FifoServer& softirq(int host) { return *softirq_[static_cast<std::size_t>(host)]; }

  /// Kernel tx path: per-segment cost (plus `extra_cost`, e.g. a user-level
  /// protocol's syscall) on the host tx server, then the wire.
  void kernel_send(int src, int dst, Bytes pdu, bool raw_path,
                   Duration extra_cost = Duration{});

  /// Kernel tx path for link-layer broadcast (requires medium support).
  void kernel_broadcast(int src, Bytes pdu, bool raw_path);

  /// Charges an app-thread write of `n` payload bytes per `p`.
  static void charge_write(sim::Actor& self, const DriverProfile& p, std::int64_t n);
  /// Charges an app-thread read of `n` payload bytes per `p`.
  static void charge_read(sim::Actor& self, const DriverProfile& p, std::int64_t n);

 private:
  void on_pdu(int host, int src, Bytes pdu);

  atmnet::Network& net_;
  DriverProfile profile_;
  DriverProfile raw_profile_;
  std::vector<std::unique_ptr<sim::FifoServer>> tx_;
  std::vector<std::unique_ptr<sim::FifoServer>> softirq_;
  std::map<std::uint64_t, std::unique_ptr<DatagramSocket>> dgram_socks_;  // host:port:raw
  std::vector<std::unique_ptr<TcpConnection>> tcp_conns_;
  std::vector<std::unique_ptr<RudpChannel>> rudp_chans_;  // after dgram_socks_: see rudp_pair
  friend class TcpEndpoint;
};

}  // namespace lcmpi::inet
