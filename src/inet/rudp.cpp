#include "src/inet/rudp.h"

#include <algorithm>

namespace lcmpi::inet {
namespace {

constexpr std::uint8_t kData = 1;
constexpr std::uint8_t kAck = 2;
constexpr std::int64_t kMaxChunk = 4096;

}  // namespace

// -------------------------------------------------------------- RudpChannel

RudpChannel::RudpChannel(InetCluster& cluster, int host_a, int host_b,
                         std::uint16_t port_base)
    : host_a_(host_a), host_b_(host_b) {
  DatagramSocket& sa = cluster.udp_socket(host_a, port_base);
  DatagramSocket& sb = cluster.udp_socket(host_b, static_cast<std::uint16_t>(port_base + 1));
  a_.attach(cluster, sa, host_b, sb.port());
  b_.attach(cluster, sb, host_a, sa.port());
}

RudpEndpoint& RudpChannel::on_host(int host) {
  if (host == host_a_) return a_;
  LCMPI_CHECK(host == host_b_, "host is not an endpoint of this channel");
  return b_;
}

// ------------------------------------------------------------- RudpEndpoint

void RudpEndpoint::attach(InetCluster& cluster, DatagramSocket& sock, int peer_host,
                          std::uint16_t peer_port) {
  cluster_ = &cluster;
  sock_ = &sock;
  peer_host_ = peer_host;
  peer_port_ = peer_port;
  rto_cur_ = cluster.profile().rto;
  sock_->set_on_arrival([this](Datagram d) { on_datagram(std::move(d)); });
}

std::int64_t RudpEndpoint::chunk_size() const {
  return std::min<std::int64_t>(kMaxChunk, sock_->max_payload() - 13 /*rudp header*/);
}

void RudpEndpoint::write(sim::Actor& self, const Bytes& data) {
  // The application pays one write's worth of copy cost; the per-chunk
  // syscalls are charged by the engine as the chunks go out.
  InetCluster::charge_write(self, cluster_->profile(), static_cast<std::int64_t>(data.size()));
  std::size_t offset = 0;
  while (offset < data.size()) {
    const std::int64_t space = sndbuf_ - static_cast<std::int64_t>(send_q_.size());
    if (space <= 0) {
      self.wait(writable_);
      continue;
    }
    const std::size_t take =
        std::min<std::size_t>(static_cast<std::size_t>(space), data.size() - offset);
    send_q_.insert(send_q_.end(), data.begin() + static_cast<std::ptrdiff_t>(offset),
                   data.begin() + static_cast<std::ptrdiff_t>(offset + take));
    offset += take;
    pump();
  }
}

void RudpEndpoint::pump() {
  for (;;) {
    const std::int64_t unsent = static_cast<std::int64_t>(send_q_.size()) - in_flight();
    const std::int64_t win_left = window_bytes_ - in_flight();
    if (unsent <= 0 || win_left <= 0) break;
    const std::int64_t len = std::min({unsent, win_left, chunk_size()});
    Bytes payload(static_cast<std::size_t>(len));
    const auto start = static_cast<std::size_t>(in_flight());
    for (std::int64_t i = 0; i < len; ++i)
      payload[static_cast<std::size_t>(i)] = send_q_[start + static_cast<std::size_t>(i)];
    send_chunk(snd_nxt_, std::move(payload));
    snd_nxt_ += static_cast<std::uint64_t>(len);
  }
  if (in_flight() > 0) arm_rto();
}

void RudpEndpoint::send_chunk(std::uint64_t seq, Bytes payload) {
  Bytes msg;
  ByteWriter w(msg);
  w.put(kData);
  w.put(seq);
  w.put(static_cast<std::uint32_t>(payload.size()));
  w.put_bytes(payload.data(), payload.size());
  ++chunks_sent_;
  // User-level protocol: each chunk is a sendto syscall.
  sock_->engine_send(peer_host_, peer_port_, std::move(msg),
                     cluster_->profile().write_syscall);
}

void RudpEndpoint::send_ack() {
  Bytes msg;
  ByteWriter w(msg);
  w.put(kAck);
  w.put(rcv_nxt_);
  w.put(std::uint32_t{0});
  sock_->engine_send(peer_host_, peer_port_, std::move(msg),
                     cluster_->profile().write_syscall);
}

void RudpEndpoint::arm_rto() {
  if (rto_armed_) return;
  rto_armed_ = true;
  rto_timer_ = cluster_->kernel().schedule(rto_cur_, [this] {
    rto_armed_ = false;
    on_rto();
  });
}

void RudpEndpoint::on_rto() {
  if (in_flight() == 0 && send_q_.empty()) return;
  snd_nxt_ = snd_una_;  // go-back-N
  ++retransmits_;
  // Exponential backoff: each expiry without forward progress doubles the
  // next timeout (capped), so an unreachable peer costs O(log) probes per
  // unit time, not a retransmit burst every fixed RTO. Any cumulative-ACK
  // advance resets to the profile base (on_datagram).
  rto_cur_ = std::min(rto_cur_ * 2, cluster_->profile().rto * kRtoBackoffCap);
  pump();
  arm_rto();
}

void RudpEndpoint::on_datagram(Datagram d) {
  ByteReader r(d.data);
  const auto kind = r.get<std::uint8_t>();
  const auto seq = r.get<std::uint64_t>();
  const auto len = r.get<std::uint32_t>();
  if (kind == kAck) {
    if (seq > snd_una_) {
      const auto acked = static_cast<std::size_t>(seq - snd_una_);
      LCMPI_CHECK(acked <= send_q_.size(), "RUDP ACK beyond sent data");
      send_q_.erase(send_q_.begin(), send_q_.begin() + static_cast<std::ptrdiff_t>(acked));
      snd_una_ = seq;
      if (snd_nxt_ < snd_una_) snd_nxt_ = snd_una_;
      rto_cur_ = cluster_->profile().rto;  // forward progress: reset backoff
      if (rto_armed_) {
        rto_timer_.cancel();
        rto_armed_ = false;
      }
      writable_.notify_all();
      pump();
    }
    return;
  }
  LCMPI_CHECK(kind == kData, "unknown RUDP datagram kind");
  Bytes payload = r.rest();
  LCMPI_CHECK(payload.size() == len, "RUDP chunk length mismatch");
  if (seq != rcv_nxt_) {
    send_ack();  // duplicate or gap: re-ACK our position
    return;
  }
  // User-level receive: the library recvfrom()s this chunk.
  cluster_->softirq(sock_->host()).submit(cluster_->profile().read_syscall, [this] {});
  rcv_buf_.insert(rcv_buf_.end(), payload.begin(), payload.end());
  rcv_nxt_ += payload.size();
  send_ack();
  cluster_->kernel().schedule(cluster_->profile().sock_wakeup, [this] {
    readable_.notify_all();
    signal_readable();
  });
}

Bytes RudpEndpoint::read(sim::Actor& self, std::size_t max) {
  LCMPI_CHECK(max > 0, "zero-length read");
  while (rcv_buf_.empty()) self.wait(readable_);
  const std::size_t take = std::min(max, rcv_buf_.size());
  // The app-level read out of the library's reassembly buffer: memcpy only.
  self.advance(cluster_->profile().read_per_byte * static_cast<std::int64_t>(take));
  Bytes out(rcv_buf_.begin(), rcv_buf_.begin() + static_cast<std::ptrdiff_t>(take));
  rcv_buf_.erase(rcv_buf_.begin(), rcv_buf_.begin() + static_cast<std::ptrdiff_t>(take));
  return out;
}

}  // namespace lcmpi::inet
