// Reliable UDP: the paper's user-level reliable transport over datagrams.
//
// The paper implemented MPI over UDP "with additional measures taken to
// make the UDP communication reliable", and found performance very similar
// to TCP — the reliability machinery (per-datagram syscalls, ACKs,
// retransmission state) costs about what the kernel TCP path does. This
// module reproduces that: a go-back-N byte stream over DatagramSockets,
// presenting the same StreamEndpoint interface as TcpEndpoint so every
// consumer (the MPI fabric, the benches) runs unchanged on either.
//
// Cost model: chunks and ACKs are user-level sendto/recvfrom calls, so each
// chunk charges a full write syscall on the tx path and a read syscall on
// the receive path, on top of the kernel's per-segment costs.
#pragma once

#include <cstdint>
#include <deque>

#include "src/inet/cluster.h"
#include "src/inet/stream.h"

namespace lcmpi::inet {

class RudpChannel;

class RudpEndpoint final : public StreamEndpoint {
 public:
  void write(sim::Actor& self, const Bytes& data) override;
  Bytes read(sim::Actor& self, std::size_t max) override;
  [[nodiscard]] std::size_t available() const override { return rcv_buf_.size(); }
  [[nodiscard]] int peer_host() const override { return peer_host_; }

  [[nodiscard]] std::int64_t chunk_size() const;
  [[nodiscard]] std::int64_t retransmits() const { return retransmits_; }
  [[nodiscard]] std::int64_t chunks_sent() const { return chunks_sent_; }
  /// The RTO the next timer will be armed with: profile().rto after any
  /// forward ACK progress, doubled per expiry up to kRtoBackoffCap times
  /// the base — so a dead or partitioned peer is probed at a geometrically
  /// decaying rate instead of a fixed line-rate burst per RTO.
  [[nodiscard]] Duration current_rto() const { return rto_cur_; }

  /// Backoff ceiling, as a multiple of the profile's base RTO.
  static constexpr std::int64_t kRtoBackoffCap = 64;

 private:
  friend class RudpChannel;
  RudpEndpoint() = default;

  void attach(InetCluster& cluster, DatagramSocket& sock, int peer_host,
              std::uint16_t peer_port);
  void pump();
  void send_chunk(std::uint64_t seq, Bytes payload);
  void send_ack();
  void on_datagram(Datagram d);
  void arm_rto();
  void on_rto();
  [[nodiscard]] std::int64_t in_flight() const {
    return static_cast<std::int64_t>(snd_nxt_ - snd_una_);
  }

  InetCluster* cluster_ = nullptr;
  DatagramSocket* sock_ = nullptr;
  int peer_host_ = -1;
  std::uint16_t peer_port_ = 0;

  // Sender (go-back-N over a byte sequence space).
  std::deque<std::byte> send_q_;
  std::uint64_t snd_una_ = 0;
  std::uint64_t snd_nxt_ = 0;
  std::int64_t window_bytes_ = 32 * 1024;
  sim::EventHandle rto_timer_;
  bool rto_armed_ = false;
  Duration rto_cur_{};  // current (possibly backed-off) RTO; set in attach()
  sim::Trigger writable_;
  std::int64_t sndbuf_ = 65536;

  // Receiver.
  std::deque<std::byte> rcv_buf_;
  std::uint64_t rcv_nxt_ = 0;
  sim::Trigger readable_;

  // Stats.
  std::int64_t retransmits_ = 0;
  std::int64_t chunks_sent_ = 0;
};

/// A reliable bidirectional channel between two hosts over UDP.
class RudpChannel {
 public:
  RudpChannel(InetCluster& cluster, int host_a, int host_b, std::uint16_t port_base);
  RudpChannel(const RudpChannel&) = delete;
  RudpChannel& operator=(const RudpChannel&) = delete;

  [[nodiscard]] RudpEndpoint& a() { return a_; }
  [[nodiscard]] RudpEndpoint& b() { return b_; }
  [[nodiscard]] RudpEndpoint& on_host(int host);

 private:
  RudpEndpoint a_;
  RudpEndpoint b_;
  int host_a_;
  int host_b_;
};

}  // namespace lcmpi::inet
