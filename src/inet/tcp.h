// Simulated TCP: reliable ordered byte streams with go-back-N recovery.
//
// Enough of TCP is modelled to make the paper's measurements meaningful:
// segmentation to the medium's MSS, a receiver-advertised window (so
// bandwidth is bounded by buffer/RTT when that binds), cumulative ACKs
// with the ack-every-second-segment rule plus a delayed-ACK timer (so
// ping-pong traffic piggybacks ACKs instead of paying a pure-ACK frame on
// the shared Ethernet), window updates from the reader, go-back-N
// retransmission on timeout, and zero-window probes. Connection setup is
// not modelled — the paper's clusters use static connections.
#pragma once

#include <cstdint>
#include <deque>

#include "src/inet/cluster.h"
#include "src/inet/stream.h"

namespace lcmpi::inet {

class TcpConnection;

class TcpEndpoint final : public StreamEndpoint {
 public:
  void write(sim::Actor& self, const Bytes& data) override;
  Bytes read(sim::Actor& self, std::size_t max) override;
  [[nodiscard]] std::size_t available() const override { return rcv_buf_.size(); }
  [[nodiscard]] int peer_host() const override { return peer_host_; }

  /// Maximum segment size on this attachment.
  [[nodiscard]] std::int64_t mss() const;

  /// TCP_NODELAY. Default on (MPI implementations always set it); turning
  /// it off enables Nagle's algorithm: sub-MSS data is held while any
  /// earlier data is unacknowledged — catastrophic for request/response
  /// message traffic once it interlocks with the peer's delayed ACKs.
  void set_nodelay(bool nodelay) { nodelay_ = nodelay; }
  [[nodiscard]] bool nodelay() const { return nodelay_; }

  // Diagnostics.
  [[nodiscard]] std::int64_t segments_sent() const { return segs_sent_; }
  [[nodiscard]] std::int64_t retransmits() const { return retransmits_; }
  [[nodiscard]] std::int64_t pure_acks_sent() const { return pure_acks_; }
  [[nodiscard]] std::int64_t cwnd() const { return cwnd_; }
  /// Cancellable kernel timers armed by this endpoint (RTO re-arms plus
  /// delayed-ACK arms). Timer-heavy workloads — many connections idling
  /// with retransmit clocks running — are exactly what the calendar-queue
  /// scheduler is sized against, and bench/host_perf uses these counters to
  /// report how much timer pressure its TCP workload actually generated.
  [[nodiscard]] std::int64_t rto_timer_arms() const { return rto_arms_; }
  [[nodiscard]] std::int64_t delayed_ack_timer_arms() const { return ack_arms_; }

 private:
  friend class TcpConnection;
  friend class InetCluster;
  TcpEndpoint() = default;

  void pump();
  void send_segment(std::uint64_t seq, Bytes payload);
  void send_pure_ack();
  void schedule_delayed_ack();
  void on_segment(std::uint64_t seq, std::uint64_t ack, std::int64_t wnd, Bytes payload);
  void handle_ack(std::uint64_t ack, std::int64_t wnd);
  void arm_rto();
  void on_rto();
  [[nodiscard]] std::int64_t advertised_window() const;
  [[nodiscard]] std::int64_t in_flight() const {
    return static_cast<std::int64_t>(snd_nxt_ - snd_una_);
  }

  InetCluster* cluster_ = nullptr;
  int host_ = -1;
  int peer_host_ = -1;
  std::uint32_t conn_ = 0;
  std::uint8_t side_ = 0;  // 0 = a, 1 = b; segments are addressed to a side
  TcpEndpoint* peer_ = nullptr;

  // --- sender state ---------------------------------------------------------
  std::deque<std::byte> send_q_;  // [snd_una_, snd_una_+size): unacked + unsent
  std::uint64_t snd_una_ = 0;
  std::uint64_t snd_nxt_ = 0;
  std::int64_t peer_wnd_ = 0;
  // Tahoe congestion control: slow start from one segment, additive
  // increase past ssthresh, collapse to one segment on timeout.
  std::int64_t cwnd_ = 0;     // initialised to one MSS on first use
  std::int64_t ssthresh_ = 0; // initialised to the receive buffer
  bool nodelay_ = true;       // MPI sets TCP_NODELAY; Nagle is the ablation
  sim::EventHandle rto_timer_;
  bool rto_armed_ = false;
  sim::Trigger writable_;

  // --- receiver state ---------------------------------------------------------
  std::deque<std::byte> rcv_buf_;
  std::uint64_t rcv_nxt_ = 0;
  std::int64_t unacked_rx_ = 0;       // bytes received since last ACK we sent
  std::int64_t last_advertised_ = 0;  // window we last told the peer about
  bool delayed_ack_pending_ = false;
  sim::EventHandle ack_timer_;
  sim::Trigger readable_;

  // --- stats -----------------------------------------------------------------
  std::int64_t segs_sent_ = 0;
  std::int64_t retransmits_ = 0;
  std::int64_t pure_acks_ = 0;
  std::int64_t rto_arms_ = 0;
  std::int64_t ack_arms_ = 0;
};

/// A pre-connected TCP connection; `a()` lives on host_a, `b()` on host_b.
class TcpConnection {
 public:
  TcpConnection(InetCluster& cluster, int host_a, int host_b, std::uint32_t conn_id);
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  [[nodiscard]] TcpEndpoint& a() { return a_; }
  [[nodiscard]] TcpEndpoint& b() { return b_; }
  /// The endpoint living on `host` (the two hosts must differ).
  [[nodiscard]] TcpEndpoint& on_host(int host);

 private:
  friend class InetCluster;
  TcpEndpoint a_;
  TcpEndpoint b_;
};

}  // namespace lcmpi::inet
