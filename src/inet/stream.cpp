#include "src/inet/stream.h"

#include <cstring>

namespace lcmpi::inet {

void StreamEndpoint::read_exact(sim::Actor& self, void* out, std::size_t n) {
  auto* dst = static_cast<std::byte*>(out);
  std::size_t got = 0;
  while (got < n) {
    Bytes chunk = read(self, n - got);
    std::memcpy(dst + got, chunk.data(), chunk.size());
    got += chunk.size();
  }
}

}  // namespace lcmpi::inet
