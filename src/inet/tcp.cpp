#include "src/inet/tcp.h"

#include <algorithm>

namespace lcmpi::inet {
namespace {

constexpr std::uint8_t kProtoTcp = 1;

struct SegHeader {
  std::uint32_t conn = 0;
  std::uint8_t to_side = 0;  // which endpoint this segment is addressed to
  std::uint64_t seq = 0;
  std::uint64_t ack = 0;
  std::int64_t wnd = 0;
  std::uint32_t len = 0;
};

Bytes encode_segment(const SegHeader& h, const Bytes* payload) {
  Bytes out;
  ByteWriter w(out);
  w.put(kProtoTcp);
  w.put(h.conn);
  w.put(h.to_side);
  w.put(h.seq);
  w.put(h.ack);
  w.put(h.wnd);
  w.put(h.len);
  if (payload) w.put_bytes(payload->data(), payload->size());
  return out;
}

}  // namespace

// ------------------------------------------------------------ TcpConnection

TcpConnection::TcpConnection(InetCluster& cluster, int host_a, int host_b,
                             std::uint32_t conn_id) {
  LCMPI_CHECK(host_a != host_b, "TCP loopback connections are not modelled");
  auto init = [&](TcpEndpoint& e, int host, int peer, std::uint8_t side, TcpEndpoint* p) {
    e.cluster_ = &cluster;
    e.host_ = host;
    e.peer_host_ = peer;
    e.conn_ = conn_id;
    e.side_ = side;
    e.peer_ = p;
    e.peer_wnd_ = cluster.profile().rcvbuf;
    e.last_advertised_ = cluster.profile().rcvbuf;
  };
  init(a_, host_a, host_b, 0, &b_);
  init(b_, host_b, host_a, 1, &a_);
}

TcpEndpoint& TcpConnection::on_host(int host) {
  if (host == a_.host_) return a_;
  LCMPI_CHECK(host == b_.host_, "host is not an endpoint of this connection");
  return b_;
}

// -------------------------------------------------------------- TcpEndpoint

std::int64_t TcpEndpoint::mss() const {
  return cluster_->network().mtu() - cluster_->profile().header_bytes;
}

std::int64_t TcpEndpoint::advertised_window() const {
  return cluster_->profile().rcvbuf - static_cast<std::int64_t>(rcv_buf_.size());
}

void TcpEndpoint::write(sim::Actor& self, const Bytes& data) {
  const DriverProfile& p = cluster_->profile();
  InetCluster::charge_write(self, p, static_cast<std::int64_t>(data.size()));
  std::size_t offset = 0;
  while (offset < data.size()) {
    const std::int64_t space = p.sndbuf - static_cast<std::int64_t>(send_q_.size());
    if (space <= 0) {
      self.wait(writable_);
      continue;
    }
    const std::size_t take = std::min<std::size_t>(static_cast<std::size_t>(space),
                                                   data.size() - offset);
    send_q_.insert(send_q_.end(), data.begin() + static_cast<std::ptrdiff_t>(offset),
                   data.begin() + static_cast<std::ptrdiff_t>(offset + take));
    offset += take;
    pump();
  }
}

void TcpEndpoint::pump() {
  if (cwnd_ == 0) {  // first use
    cwnd_ = mss();
    ssthresh_ = cluster_->profile().rcvbuf;
  }
  const std::int64_t window = std::min(peer_wnd_, cwnd_);
  for (;;) {
    const std::int64_t unsent =
        static_cast<std::int64_t>(send_q_.size()) - in_flight();
    const std::int64_t win_left = window - in_flight();
    if (unsent <= 0 || win_left <= 0) break;
    // Nagle: hold a sub-MSS tail while earlier data is unacknowledged.
    if (!nodelay_ && unsent < mss() && in_flight() > 0) break;
    const std::int64_t len = std::min({unsent, win_left, mss()});
    Bytes payload(static_cast<std::size_t>(len));
    const std::size_t start = static_cast<std::size_t>(in_flight());
    for (std::int64_t i = 0; i < len; ++i)
      payload[static_cast<std::size_t>(i)] = send_q_[start + static_cast<std::size_t>(i)];
    send_segment(snd_nxt_, std::move(payload));
    snd_nxt_ += static_cast<std::uint64_t>(len);
  }
  if (in_flight() > 0) arm_rto();
}

void TcpEndpoint::send_segment(std::uint64_t seq, Bytes payload) {
  SegHeader h;
  h.conn = conn_;
  h.to_side = static_cast<std::uint8_t>(1 - side_);
  h.seq = seq;
  h.ack = rcv_nxt_;
  h.wnd = advertised_window();
  h.len = static_cast<std::uint32_t>(payload.size());
  // Data segments piggyback the ACK: cancel any pending pure ACK.
  if (delayed_ack_pending_) {
    ack_timer_.cancel();
    delayed_ack_pending_ = false;
  }
  unacked_rx_ = 0;
  last_advertised_ = h.wnd;
  ++segs_sent_;
  cluster_->kernel_send(host_, peer_host_, encode_segment(h, &payload), /*raw_path=*/false);
}

void TcpEndpoint::send_pure_ack() {
  SegHeader h;
  h.conn = conn_;
  h.to_side = static_cast<std::uint8_t>(1 - side_);
  h.seq = snd_nxt_;
  h.ack = rcv_nxt_;
  h.wnd = advertised_window();
  h.len = 0;
  unacked_rx_ = 0;
  last_advertised_ = h.wnd;
  ++pure_acks_;
  cluster_->kernel_send(host_, peer_host_, encode_segment(h, nullptr), /*raw_path=*/false);
}

void TcpEndpoint::schedule_delayed_ack() {
  if (delayed_ack_pending_) return;
  delayed_ack_pending_ = true;
  ++ack_arms_;
  ack_timer_ = cluster_->kernel().schedule(cluster_->profile().delayed_ack, [this] {
    delayed_ack_pending_ = false;
    send_pure_ack();
  });
}

void TcpEndpoint::arm_rto() {
  if (rto_armed_) return;
  rto_armed_ = true;
  ++rto_arms_;
  rto_timer_ = cluster_->kernel().schedule(cluster_->profile().rto, [this] {
    rto_armed_ = false;
    on_rto();
  });
}

void TcpEndpoint::on_rto() {
  if (send_q_.empty()) return;
  // Go-back-N: rewind to the oldest unacknowledged byte, and Tahoe
  // congestion response: halve ssthresh, restart slow start.
  ssthresh_ = std::max<std::int64_t>(in_flight() / 2, 2 * mss());
  cwnd_ = mss();
  snd_nxt_ = snd_una_;
  ++retransmits_;
  if (peer_wnd_ <= 0) {
    // Zero-window probe: one byte, ignoring the window, so a lost window
    // update cannot wedge the connection.
    Bytes probe{send_q_.front()};
    send_segment(snd_nxt_, std::move(probe));
    snd_nxt_ += 1;
  } else {
    pump();
  }
  arm_rto();
}

void TcpEndpoint::handle_ack(std::uint64_t ack, std::int64_t wnd) {
  peer_wnd_ = wnd;
  if (ack > snd_una_) {
    LCMPI_CHECK(ack <= snd_una_ + send_q_.size(), "ACK beyond sent data");
    // Tahoe window growth: exponential below ssthresh, linear above.
    if (cwnd_ > 0) {
      if (cwnd_ < ssthresh_) cwnd_ += mss();
      else cwnd_ += std::max<std::int64_t>(1, mss() * mss() / cwnd_);
    }
    const auto acked = static_cast<std::size_t>(ack - snd_una_);
    send_q_.erase(send_q_.begin(), send_q_.begin() + static_cast<std::ptrdiff_t>(acked));
    snd_una_ = ack;
    if (snd_nxt_ < snd_una_) snd_nxt_ = snd_una_;
    if (rto_armed_) {
      rto_timer_.cancel();
      rto_armed_ = false;
    }
    writable_.notify_all();
  }
  pump();
}

void TcpEndpoint::on_segment(std::uint64_t seq, std::uint64_t ack, std::int64_t wnd,
                             Bytes payload) {
  handle_ack(ack, wnd);
  if (payload.empty()) return;  // pure ACK / window update

  const std::uint64_t end = seq + payload.size();
  if (end <= rcv_nxt_) {
    // Complete duplicate (retransmission raced our ACK): re-ACK it.
    send_pure_ack();
    return;
  }
  if (seq > rcv_nxt_) {
    // Gap after a loss: go-back-N receiver drops and re-ACKs.
    send_pure_ack();
    return;
  }
  // Accept the new suffix (handles partial overlap from retransmits).
  const auto skip = static_cast<std::size_t>(rcv_nxt_ - seq);
  const std::int64_t fresh = static_cast<std::int64_t>(payload.size() - skip);
  const std::int64_t room = advertised_window();
  const std::int64_t take = std::min(fresh, room);
  if (take <= 0) {
    send_pure_ack();  // window full: tell the peer where we are
    return;
  }
  rcv_buf_.insert(rcv_buf_.end(), payload.begin() + static_cast<std::ptrdiff_t>(skip),
                  payload.begin() + static_cast<std::ptrdiff_t>(skip + take));
  rcv_nxt_ += static_cast<std::uint64_t>(take);
  unacked_rx_ += take;

  // ACK policy: immediately after two segments' worth, else delayed.
  if (unacked_rx_ >= 2 * mss()) {
    send_pure_ack();
  } else {
    schedule_delayed_ack();
  }
  // Wake a blocked reader after the kernel's wakeup delay.
  cluster_->kernel().schedule(cluster_->profile().sock_wakeup, [this] {
    readable_.notify_all();
    signal_readable();
  });
}

Bytes TcpEndpoint::read(sim::Actor& self, std::size_t max) {
  LCMPI_CHECK(max > 0, "zero-length read");
  while (rcv_buf_.empty()) self.wait(readable_);
  const std::size_t take = std::min(max, rcv_buf_.size());
  InetCluster::charge_read(self, cluster_->profile(), static_cast<std::int64_t>(take));
  Bytes out(rcv_buf_.begin(), rcv_buf_.begin() + static_cast<std::ptrdiff_t>(take));
  rcv_buf_.erase(rcv_buf_.begin(), rcv_buf_.begin() + static_cast<std::ptrdiff_t>(take));
  // Window update if the reader just opened significant space.
  if (advertised_window() - last_advertised_ >= mss()) send_pure_ack();
  return out;
}

}  // namespace lcmpi::inet
