// StreamEndpoint — a blocking, reliable, ordered byte-stream interface.
//
// TcpEndpoint and RudpEndpoint both implement it, so everything written
// against a stream (the MPI-over-TCP fabric, the bandwidth benches) runs
// unchanged over either transport — exactly the reuse the paper describes
// when it swaps TCP for reliable UDP and measures near-identical results.
#pragma once

#include <cstddef>
#include <functional>

#include "src/sim/kernel.h"
#include "src/util/bytes.h"

namespace lcmpi::inet {

class StreamEndpoint {
 public:
  virtual ~StreamEndpoint() = default;

  /// Blocking write of the whole buffer (waits for send-buffer space).
  virtual void write(sim::Actor& self, const Bytes& data) = 0;

  /// Blocking read of 1..max bytes (returns as soon as any data arrives).
  virtual Bytes read(sim::Actor& self, std::size_t max) = 0;

  /// Bytes currently readable without blocking.
  [[nodiscard]] virtual std::size_t available() const = 0;

  /// Blocking read of exactly n bytes.
  void read_exact(sim::Actor& self, void* out, std::size_t n);

  /// The peer's host id (ranks map 1:1 onto hosts in the MPI fabric).
  [[nodiscard]] virtual int peer_host() const = 0;

  /// Registers a kernel-context callback invoked whenever new bytes become
  /// readable (select()-style readiness for a progress engine).
  void set_on_readable(std::function<void()> fn) { on_readable_ = std::move(fn); }

 protected:
  void signal_readable() {
    if (on_readable_) on_readable_();
  }

 private:
  std::function<void()> on_readable_;
};

}  // namespace lcmpi::inet
