#include "src/inet/cluster.h"

#include <algorithm>

#include "src/inet/rudp.h"
#include "src/inet/tcp.h"

namespace lcmpi::inet {
namespace {

constexpr std::uint8_t kProtoTcp = 1;
constexpr std::uint8_t kProtoUdp = 2;
constexpr std::uint8_t kProtoRaw = 3;

std::uint64_t sock_key(int host, std::uint16_t port, bool raw) {
  return (static_cast<std::uint64_t>(raw) << 48) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(host)) << 16) | port;
}

}  // namespace

// ----------------------------------------------------------- DatagramSocket

DatagramSocket::DatagramSocket(InetCluster& cluster, int host, std::uint16_t port, bool raw)
    : cluster_(cluster), host_(host), port_(port), raw_(raw) {}

std::int64_t DatagramSocket::max_payload() const {
  const DriverProfile& p = raw_ ? cluster_.raw_profile() : cluster_.profile();
  return cluster_.network().mtu() - p.header_bytes - 6 /*our demux header*/;
}

void DatagramSocket::send_to(sim::Actor& self, int dst_host, std::uint16_t dst_port,
                             Bytes data) {
  LCMPI_CHECK(static_cast<std::int64_t>(data.size()) <= max_payload(),
              "datagram exceeds maximum payload");
  const DriverProfile& p = raw_ ? cluster_.raw_profile() : cluster_.profile();
  InetCluster::charge_write(self, p, static_cast<std::int64_t>(data.size()));
  Bytes pdu;
  ByteWriter w(pdu);
  w.put(raw_ ? kProtoRaw : kProtoUdp);
  w.put(port_);
  w.put(dst_port);
  w.put_bytes(data.data(), data.size());
  cluster_.kernel_send(host_, dst_host, std::move(pdu), raw_);
}

void DatagramSocket::on_arrival(Datagram d) {
  if (on_arrival_cb_) {
    on_arrival_cb_(std::move(d));
    return;
  }
  if (queue_.size() >= max_queued_) {
    ++dropped_overflow_;  // kernel socket buffer overflow: silently dropped
    return;
  }
  queue_.push_back(std::move(d));
  const DriverProfile& p = raw_ ? cluster_.raw_profile() : cluster_.profile();
  cluster_.kernel().schedule(p.sock_wakeup, [this] { readable_.notify_all(); });
}

void DatagramSocket::engine_send(int dst_host, std::uint16_t dst_port, Bytes data,
                                 Duration cost) {
  LCMPI_CHECK(static_cast<std::int64_t>(data.size()) <= max_payload(),
              "datagram exceeds maximum payload");
  Bytes pdu;
  ByteWriter w(pdu);
  w.put(raw_ ? kProtoRaw : kProtoUdp);
  w.put(port_);
  w.put(dst_port);
  w.put_bytes(data.data(), data.size());
  cluster_.kernel_send(host_, dst_host, std::move(pdu), raw_, cost);
}

void DatagramSocket::send_broadcast(sim::Actor& self, std::uint16_t dst_port, Bytes data) {
  LCMPI_CHECK(static_cast<std::int64_t>(data.size()) <= max_payload(),
              "datagram exceeds maximum payload");
  LCMPI_CHECK(cluster_.network().supports_broadcast(),
              "medium does not support broadcast");
  const DriverProfile& p = raw_ ? cluster_.raw_profile() : cluster_.profile();
  InetCluster::charge_write(self, p, static_cast<std::int64_t>(data.size()));
  Bytes pdu;
  ByteWriter w(pdu);
  w.put(raw_ ? kProtoRaw : kProtoUdp);
  w.put(port_);
  w.put(dst_port);
  w.put_bytes(data.data(), data.size());
  cluster_.kernel_broadcast(host_, std::move(pdu), raw_);
}

Datagram DatagramSocket::recv(sim::Actor& self) {
  while (queue_.empty()) self.wait(readable_);
  Datagram d = std::move(queue_.front());
  queue_.pop_front();
  const DriverProfile& p = raw_ ? cluster_.raw_profile() : cluster_.profile();
  InetCluster::charge_read(self, p, static_cast<std::int64_t>(d.data.size()));
  return d;
}

std::optional<Datagram> DatagramSocket::try_recv(sim::Actor& self) {
  if (queue_.empty()) return std::nullopt;
  return recv(self);
}

std::optional<Datagram> DatagramSocket::recv_timeout(sim::Actor& self, Duration timeout) {
  const TimePoint deadline = self.now() + timeout;
  while (queue_.empty()) {
    const Duration left = deadline - self.now();
    if (left.ns <= 0) return std::nullopt;
    self.wait_with_timeout(readable_, left);
  }
  return recv(self);
}

// -------------------------------------------------------------- InetCluster

InetCluster::InetCluster(atmnet::Network& net, DriverProfile profile,
                         DriverProfile raw_profile)
    : net_(net), profile_(profile), raw_profile_(raw_profile) {
  for (int h = 0; h < net.size(); ++h) {
    tx_.push_back(std::make_unique<sim::FifoServer>(kernel()));
    softirq_.push_back(std::make_unique<sim::FifoServer>(kernel()));
    net_.set_handler(h, [this, h](int src, Bytes pdu) { on_pdu(h, src, std::move(pdu)); });
  }
}

InetCluster::~InetCluster() = default;

TcpConnection& InetCluster::tcp_pair(int host_a, int host_b) {
  const auto conn_id = static_cast<std::uint32_t>(tcp_conns_.size());
  tcp_conns_.push_back(std::make_unique<TcpConnection>(*this, host_a, host_b, conn_id));
  return *tcp_conns_.back();
}

RudpChannel& InetCluster::rudp_pair(int host_a, int host_b, std::uint16_t port_base) {
  rudp_chans_.push_back(std::make_unique<RudpChannel>(*this, host_a, host_b, port_base));
  return *rudp_chans_.back();
}

DatagramSocket& InetCluster::udp_socket(int host, std::uint16_t port) {
  const std::uint64_t key = sock_key(host, port, false);
  LCMPI_CHECK(dgram_socks_.find(key) == dgram_socks_.end(), "port already bound");
  auto& slot = dgram_socks_[key];
  slot.reset(new DatagramSocket(*this, host, port, false));
  return *slot;
}

DatagramSocket& InetCluster::raw_socket(int host, std::uint16_t port) {
  const std::uint64_t key = sock_key(host, port, true);
  LCMPI_CHECK(dgram_socks_.find(key) == dgram_socks_.end(), "port already bound");
  auto& slot = dgram_socks_[key];
  slot.reset(new DatagramSocket(*this, host, port, true));
  return *slot;
}

void InetCluster::charge_write(sim::Actor& self, const DriverProfile& p, std::int64_t n) {
  const std::int64_t small = std::min(n, p.small_copy_limit);
  const std::int64_t bulk = n - small;
  self.advance(p.write_syscall + p.write_per_byte_small * small + p.write_per_byte_bulk * bulk);
}

void InetCluster::charge_read(sim::Actor& self, const DriverProfile& p, std::int64_t n) {
  self.advance(p.read_syscall + p.read_per_byte * n);
}

void InetCluster::kernel_send(int src, int dst, Bytes pdu, bool raw_path,
                              Duration extra_cost) {
  const DriverProfile& p = raw_path ? raw_profile_ : profile_;
  tx_server(src).submit(p.tx_per_segment + extra_cost,
                        [this, src, dst, pdu = std::move(pdu)]() mutable {
    if (src == dst) {
      // Loopback: straight to the local softirq path, no wire.
      on_pdu(dst, src, std::move(pdu));
    } else {
      net_.send(src, dst, std::move(pdu));
    }
  });
}

void InetCluster::kernel_broadcast(int src, Bytes pdu, bool raw_path) {
  const DriverProfile& p = raw_path ? raw_profile_ : profile_;
  tx_server(src).submit(p.tx_per_segment, [this, src, pdu = std::move(pdu)]() mutable {
    net_.broadcast(src, std::move(pdu));
  });
}

void InetCluster::on_pdu(int host, int src, Bytes pdu) {
  LCMPI_CHECK(!pdu.empty(), "empty PDU");
  const auto proto = static_cast<std::uint8_t>(pdu[0]);
  const DriverProfile& p = proto == kProtoRaw ? raw_profile_ : profile_;
  softirq(host).submit(p.rx_per_segment, [this, host, src, pdu = std::move(pdu)]() mutable {
    ByteReader r(pdu);
    const auto proto2 = r.get<std::uint8_t>();
    if (proto2 == kProtoTcp) {
      const auto conn = r.get<std::uint32_t>();
      const auto to_side = r.get<std::uint8_t>();
      const auto seq = r.get<std::uint64_t>();
      const auto ack = r.get<std::uint64_t>();
      const auto wnd = r.get<std::int64_t>();
      const auto len = r.get<std::uint32_t>();
      LCMPI_CHECK(conn < tcp_conns_.size(), "segment for unknown connection");
      Bytes payload = r.rest();
      LCMPI_CHECK(payload.size() == len, "segment length mismatch");
      TcpConnection& c = *tcp_conns_[conn];
      TcpEndpoint& e = to_side == 0 ? c.a() : c.b();
      LCMPI_CHECK(e.host_ == host, "segment routed to wrong host");
      e.on_segment(seq, ack, wnd, std::move(payload));
    } else {
      const auto sport = r.get<std::uint16_t>();
      const auto dport = r.get<std::uint16_t>();
      const std::uint64_t key = sock_key(host, dport, proto2 == kProtoRaw);
      auto it = dgram_socks_.find(key);
      if (it == dgram_socks_.end()) return;  // no listener: datagram vanishes
      it->second->on_arrival(Datagram{src, sport, r.rest()});
    }
  });
}

}  // namespace lcmpi::inet
