// Host software cost model for the simulated internet stack.
//
// The paper's Table 1 shows that MPI-over-TCP latency is dominated by
// *kernel boundary crossings* on the 133 MHz SGI hosts: a 1-byte read()
// costs 65 us through the Ethernet driver and 85 us through the Fore
// STREAMS stack; raw 1-byte round trips are 925 us (Ethernet) and 1065 us
// (ATM). A DriverProfile captures those per-operation costs for one
// network attachment; the cluster stack charges them at syscall and
// interrupt time. Per-byte costs are piecewise: small writes pay the
// mbuf-chain rate, large writes the bulk-copy rate (this is what makes the
// 25-byte MPI header measurably expensive on Ethernet — Table 1 line 2 —
// without wrecking large-transfer bandwidth).
#pragma once

#include <cstdint>

#include "src/util/time.h"

namespace lcmpi::inet {

struct DriverProfile {
  // ---- app-thread transmit path -------------------------------------------
  /// Fixed cost of a write()/send() syscall incl. protocol output.
  Duration write_syscall{};
  /// Per-byte cost for the first `small_copy_limit` bytes of a write.
  Duration write_per_byte_small{};
  /// Per-byte cost beyond `small_copy_limit` (bulk copy path).
  Duration write_per_byte_bulk{};
  std::int64_t small_copy_limit = 64;

  // ---- kernel transmit path (off the app thread) --------------------------
  /// Per-segment driver/protocol cost, charged on the host tx server.
  Duration tx_per_segment{};

  // ---- receive path ---------------------------------------------------------
  /// Interrupt + protocol cost per arriving segment (softirq server).
  Duration rx_per_segment{};
  /// Scheduling delay to wake a blocked reader.
  Duration sock_wakeup{};
  /// Fixed cost of a read()/recv() syscall (Table 1: 65 us Eth, 85 us ATM).
  Duration read_syscall{};
  /// Per-byte copy-out cost on read.
  Duration read_per_byte{};

  // ---- TCP engine -----------------------------------------------------------
  /// Retransmission timeout (go-back-N recovery). BSD-era stacks floor
  /// this high: on the 10 Mb/s shared Ethernet a full 64 KB window takes
  /// >50 ms to drain, and ACKs queue behind it on the bus, so a short RTO
  /// causes spurious go-back-N storms.
  Duration rto = milliseconds(250);
  /// Delayed-ACK timer: pure ACKs wait this long for piggyback chances.
  Duration delayed_ack = microseconds(400);
  /// Socket buffer sizes (bytes).
  std::int64_t sndbuf = 65536;
  std::int64_t rcvbuf = 65536;
  /// Transport header bytes modelled per segment (TCP/IP or UDP/IP).
  std::int64_t header_bytes = 40;
};

/// TCP/UDP through the BSD-style Ethernet driver.
inline DriverProfile ethernet_profile() {
  DriverProfile p;
  p.write_syscall = microseconds(150);
  p.write_per_byte_small = microseconds(1.8);
  p.write_per_byte_bulk = nanoseconds(45);
  p.tx_per_segment = microseconds(30);
  p.rx_per_segment = microseconds(120);
  p.sock_wakeup = microseconds(30);
  p.read_syscall = microseconds(65);
  p.read_per_byte = nanoseconds(40);
  return p;
}

/// TCP/UDP through the Fore STREAMS stack on the ATM interface.
inline DriverProfile atm_profile() {
  DriverProfile p;
  p.write_syscall = microseconds(190);
  p.write_per_byte_small = microseconds(0.2);  // i960 does checksum/SAR work
  p.write_per_byte_bulk = nanoseconds(30);
  p.tx_per_segment = microseconds(40);
  p.rx_per_segment = microseconds(160);
  p.sock_wakeup = microseconds(30);
  p.read_syscall = microseconds(85);
  p.read_per_byte = nanoseconds(35);
  return p;
}

/// The Fore API's direct AAL3/4 access path: skips IP/TCP processing but
/// still crosses the same STREAMS modules, so it is only marginally
/// cheaper — the paper's Fig. 4 observation.
inline DriverProfile fore_aal_profile() {
  DriverProfile p = atm_profile();
  p.write_syscall = microseconds(150);
  p.tx_per_segment = microseconds(25);
  p.rx_per_segment = microseconds(130);
  p.read_syscall = microseconds(80);
  p.header_bytes = 8;  // AAL headers only, no IP/UDP
  return p;
}

}  // namespace lcmpi::inet
