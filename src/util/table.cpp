#include "src/util/table.h"

#include <algorithm>
#include <cstdio>

#include "src/util/status.h"

namespace lcmpi {

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  LCMPI_CHECK(cells.size() == headers_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
}

void Table::add_row_values(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

void Table::print(std::FILE* out) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c)
      std::fprintf(out, "%s%-*s", c ? "  " : "", static_cast<int>(width[c]), cells[c].c_str());
    std::fprintf(out, "\n");
  };
  line(headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c)
    rule += std::string(width[c], '-') + (c + 1 < headers_.size() ? "  " : "");
  std::fprintf(out, "%s\n", rule.c_str());
  for (const auto& row : rows_) line(row);
}

void Table::print_csv(std::FILE* out) const {
  auto csv_line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c)
      std::fprintf(out, "%s%s", c ? "," : "", cells[c].c_str());
    std::fprintf(out, "\n");
  };
  csv_line(headers_);
  for (const auto& row : rows_) csv_line(row);
}

}  // namespace lcmpi
