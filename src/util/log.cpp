#include "src/util/log.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>

namespace lcmpi {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kError};
std::atomic<int> g_fd{STDERR_FILENO};

const char* level_tag(LogLevel l) {
  switch (l) {
    case LogLevel::kError: return "E";
    case LogLevel::kInfo: return "I";
    case LogLevel::kDebug: return "D";
    case LogLevel::kTrace: return "T";
    default: return "?";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_fd(int fd) { g_fd.store(fd, std::memory_order_relaxed); }

void log_at(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(log_level()) < static_cast<int>(level)) return;
  // One local buffer, one write(2): concurrent writers emit whole lines
  // (POSIX pipes/terminals keep writes this small atomic) and share no
  // stdio stream state. Overlong messages are truncated, never split.
  char buf[1024];
  int n = std::snprintf(buf, sizeof buf, "[lcmpi:%s] ", level_tag(level));
  if (n < 0) return;
  va_list ap;
  va_start(ap, fmt);
  const int m = std::vsnprintf(buf + n, sizeof buf - static_cast<std::size_t>(n) - 1,
                               fmt, ap);
  va_end(ap);
  if (m > 0) n = std::min(n + m, static_cast<int>(sizeof buf) - 2);
  buf[n] = '\n';
  [[maybe_unused]] const ssize_t written =
      ::write(g_fd.load(std::memory_order_relaxed), buf, static_cast<std::size_t>(n) + 1);
}

}  // namespace lcmpi
