#include "src/util/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace lcmpi {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kError};
std::mutex g_mu;

const char* level_tag(LogLevel l) {
  switch (l) {
    case LogLevel::kError: return "E";
    case LogLevel::kInfo: return "I";
    case LogLevel::kDebug: return "D";
    case LogLevel::kTrace: return "T";
    default: return "?";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_at(LogLevel level, const char* fmt, ...) {
  std::lock_guard<std::mutex> lock(g_mu);
  std::fprintf(stderr, "[lcmpi:%s] ", level_tag(level));
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  std::fprintf(stderr, "\n");
}

}  // namespace lcmpi
