// Byte-buffer packing helpers.
//
// Wire messages in the models are real byte vectors (envelopes are packed
// and parsed, payloads are carried end to end), so data integrity is
// testable through the whole stack. Writer/Reader give bounds-checked
// little-endian access for the POD header fields.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "src/util/status.h"

namespace lcmpi {

using Bytes = std::vector<std::byte>;

class ByteWriter {
 public:
  explicit ByteWriter(Bytes& out) : out_(out) {}

  template <typename T>
  void put(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t at = out_.size();
    out_.resize(at + sizeof(T));
    std::memcpy(out_.data() + at, &v, sizeof(T));
  }

  void put_bytes(const void* p, std::size_t n) {
    const std::size_t at = out_.size();
    out_.resize(at + n);
    if (n > 0) std::memcpy(out_.data() + at, p, n);
  }

 private:
  Bytes& out_;
};

class ByteReader {
 public:
  explicit ByteReader(const Bytes& in) : in_(in) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    LCMPI_CHECK(pos_ + sizeof(T) <= in_.size(), "byte reader underflow");
    T v;
    std::memcpy(&v, in_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  void get_bytes(void* p, std::size_t n) {
    LCMPI_CHECK(pos_ + n <= in_.size(), "byte reader underflow");
    if (n > 0) std::memcpy(p, in_.data() + pos_, n);
    pos_ += n;
  }

  /// Remaining bytes as a fresh vector.
  [[nodiscard]] Bytes rest() const { return Bytes(in_.begin() + static_cast<std::ptrdiff_t>(pos_), in_.end()); }

  [[nodiscard]] std::size_t remaining() const { return in_.size() - pos_; }
  [[nodiscard]] std::size_t position() const { return pos_; }

 private:
  const Bytes& in_;
  std::size_t pos_ = 0;
};

}  // namespace lcmpi
