#include "src/util/stats.h"

#include <algorithm>
#include <cmath>

#include "src/util/status.h"

namespace lcmpi {

void Samples::ensure_sorted() const {
  if (sorted_.size() != xs_.size()) {
    sorted_ = xs_;
    std::sort(sorted_.begin(), sorted_.end());
  }
}

double Samples::mean() const {
  LCMPI_CHECK(!xs_.empty(), "mean of empty sample set");
  double s = 0.0;
  for (double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

double Samples::min() const {
  ensure_sorted();
  LCMPI_CHECK(!sorted_.empty(), "min of empty sample set");
  return sorted_.front();
}

double Samples::max() const {
  ensure_sorted();
  LCMPI_CHECK(!sorted_.empty(), "max of empty sample set");
  return sorted_.back();
}

double Samples::stddev() const {
  if (xs_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double x : xs_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs_.size() - 1));
}

double Samples::percentile(double p) const {
  ensure_sorted();
  LCMPI_CHECK(!sorted_.empty(), "percentile of empty sample set");
  if (p <= 0.0) return sorted_.front();
  if (p >= 100.0) return sorted_.back();
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y) {
  LCMPI_CHECK(x.size() == y.size() && x.size() >= 2, "fit_linear needs >=2 points");
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i]; sy += y[i];
    sxx += x[i] * x[i]; sxy += x[i] * y[i]; syy += y[i] * y[i];
  }
  LinearFit f;
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) return f;
  f.slope = (n * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = y[i] - (f.intercept + f.slope * x[i]);
    ss_res += e * e;
  }
  f.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return f;
}

}  // namespace lcmpi
