// Error model for the library.
//
// The MPI layer reports recoverable standard-defined failures (truncation,
// erroneous ready sends, resource exhaustion) with error codes mirroring
// MPI-1.1 error classes; programming errors abort via exceptions.
#pragma once

#include <stdexcept>
#include <string>

namespace lcmpi {

/// MPI-1.1-style error classes used by the core library.
enum class Err {
  kSuccess = 0,
  kTruncate,       // receive buffer smaller than incoming message
  kNoPostedRecv,   // ready-mode send with no matching posted receive
  kResources,      // envelope/unexpected-buffer resources exhausted
  kBufferExhausted,// buffered send with insufficient attached buffer
  kBadArgument,    // invalid count/datatype/rank/tag
  kRange,          // one-sided access outside the target window bounds
  kInternal,
};

[[nodiscard]] inline const char* err_name(Err e) {
  switch (e) {
    case Err::kSuccess: return "SUCCESS";
    case Err::kTruncate: return "TRUNCATE";
    case Err::kNoPostedRecv: return "NO_POSTED_RECV";
    case Err::kResources: return "RESOURCES";
    case Err::kBufferExhausted: return "BUFFER_EXHAUSTED";
    case Err::kBadArgument: return "BAD_ARGUMENT";
    case Err::kRange: return "RANGE";
    case Err::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

/// Exception carrying an MPI error class; thrown by the default error
/// handler (the analogue of MPI_ERRORS_ARE_FATAL, but testable).
class MpiError : public std::runtime_error {
 public:
  MpiError(Err code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  [[nodiscard]] Err code() const { return code_; }

 private:
  Err code_;
};

/// Internal invariant violation in the simulator or library.
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

#define LCMPI_CHECK(cond, msg)                                    \
  do {                                                            \
    if (!(cond)) throw ::lcmpi::InternalError(std::string(msg));  \
  } while (0)

}  // namespace lcmpi
