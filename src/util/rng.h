// Deterministic, seedable random number generation.
//
// All stochastic behaviour in the simulator (drop injection, workload
// generation) draws from explicitly seeded generators so that every run is
// reproducible; nothing uses std::random_device or global state.
#pragma once

#include <cstdint>

namespace lcmpi {

/// splitmix64: tiny, fast, and good enough for workload/fault injection.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n).
  std::uint64_t next_below(std::uint64_t n) { return n == 0 ? 0 : next_u64() % n; }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial.
  bool chance(double p) { return next_double() < p; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Derive an independent stream (for per-rank generators).
  [[nodiscard]] Rng split(std::uint64_t stream) const {
    return Rng(state_ ^ (0xd1342543de82ef95ULL * (stream + 1)));
  }

 private:
  std::uint64_t state_;
};

}  // namespace lcmpi
