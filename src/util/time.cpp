#include "src/util/time.h"

#include <cstdio>

namespace lcmpi {

std::string to_string(Duration d) {
  char buf[64];
  if (d.ns < 10'000) std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(d.ns));
  else if (d.ns < 10'000'000) std::snprintf(buf, sizeof buf, "%.2fus", d.usec());
  else if (d.ns < 10'000'000'000LL) std::snprintf(buf, sizeof buf, "%.2fms", d.msec());
  else std::snprintf(buf, sizeof buf, "%.3fs", d.sec());
  return buf;
}

std::string to_string(TimePoint t) { return to_string(Duration{t.ns}) + "@"; }

}  // namespace lcmpi
