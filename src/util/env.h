// Strict environment-variable parsing for the bootstrap paths.
//
// Every rank of an env-bootstrapped world (lcmpirun, `SocketFabric::from_env`)
// configures itself purely from `LCMPI_*` variables, so a typo'd value must
// fail fast and name the variable — `atoi`'s silent 0 would instead produce a
// quiet rank collision (two ranks both believing they are rank 0). All
// parsers here reject empty strings and trailing junk, enforce explicit
// ranges, and throw `EnvError` with the variable name and the offending value
// in the message.
#pragma once

#include <cerrno>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace lcmpi::env {

/// Malformed or missing `LCMPI_*` configuration. Always names the variable.
class EnvError : public std::runtime_error {
 public:
  explicit EnvError(const std::string& what) : std::runtime_error(what) {}
};

/// The raw value of `name`, or `fallback` when unset. Empty-but-set counts
/// as set (and will then fail the numeric parsers below).
[[nodiscard]] inline const char* get(const char* name,
                                     const char* fallback = nullptr) {
  const char* v = std::getenv(name);
  return v != nullptr ? v : fallback;
}

/// Strict integer parse of an explicit string: base 10, whole-string match
/// (no trailing junk, no empty value), result within [min, max]. `name` is
/// only used for the error message.
[[nodiscard]] inline long parse_long(const char* name, const std::string& val,
                                     long min, long max) {
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(val.c_str(), &end, 10);
  if (val.empty() || end != val.c_str() + val.size()) {
    throw EnvError(std::string(name) + "=\"" + val +
                   "\" is not an integer");
  }
  if (errno == ERANGE || parsed < min || parsed > max) {
    throw EnvError(std::string(name) + "=\"" + val + "\" out of range [" +
                   std::to_string(min) + ", " + std::to_string(max) + "]");
  }
  return parsed;
}

/// Required integer env var within [min, max]; throws naming `name` when the
/// variable is unset, malformed, or out of range.
[[nodiscard]] inline long require_long(const char* name, long min, long max) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) throw EnvError(std::string(name) + " is not set");
  return parse_long(name, raw, min, max);
}

/// TCP port parse: 1..65535. Port 0 is rejected — a rank advertising an
/// ephemeral rendezvous port its peers were never told is unreachable.
[[nodiscard]] inline std::uint16_t parse_port(const char* name,
                                              const std::string& val) {
  return static_cast<std::uint16_t>(parse_long(name, val, 1, 65535));
}

}  // namespace lcmpi::env
