// Bounded lock-free single-producer/single-consumer ring buffer — the
// message path of the real-threads shared-memory fabric (one ring per
// directed rank pair, src/fabric/shm_fabric.h).
//
// The fast path is the classic Lamport queue hardened for modern memory
// models: head and tail are monotonically increasing counters published
// with release stores and read with acquire loads, slot selection masks
// them against a power-of-two capacity, and each side keeps a *cached*
// copy of the opposite index so an uncontended push/pop touches only its
// own cache line plus the slot (the shared index is re-read only when the
// cached value says full/empty). No CAS, no fences, no syscalls.
//
// Blocking is deliberately layered *outside* the ring: ParkingLot is a
// mutex/condvar pad with an atomic "parked" flag, and SpscChannel composes
// ring + two pads into blocking push/pop with deadlines. Publishers run
// a store-buffer-safe handshake (seq_cst fence between publishing and
// reading the flag; the parker fences between raising the flag and
// re-checking the ring), and parks are additionally time-bounded, so a
// lost wakeup can delay a waiter but never deadlock it. The fabric uses
// the same pads with one consumer pad shared across all of an endpoint's
// inbound rings ("anything arrived for me"), which is why the channel's
// consumer pad is pluggable.
//
// The mutex/condvar baseline the benchmarks compare against (MutexChannel,
// the handoff the ROADMAP item retires) lives at the bottom of this file.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "src/util/status.h"

namespace lcmpi::util {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two (>= 2) so slot selection is
  /// a mask, not a modulo.
  explicit SpscRing(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }
  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

  /// Producer side only. False if the ring is full.
  bool try_push(T&& v) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ > mask_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ > mask_) return false;
    }
    slots_[tail & mask_] = std::move(v);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side only. Empty if no message is available.
  std::optional<T> try_pop() {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return std::nullopt;
    }
    std::optional<T> v(std::move(slots_[head & mask_]));
    slots_[head & mask_] = T{};  // drop payload-owning state eagerly
    head_.store(head + 1, std::memory_order_release);
    return v;
  }

  /// Racy by nature (either side may be mid-publish); exact when the
  /// caller is the only active side.
  [[nodiscard]] std::size_t size_approx() const {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail - head);
  }
  [[nodiscard]] bool empty_approx() const { return size_approx() == 0; }
  [[nodiscard]] bool full_approx() const { return size_approx() > mask_; }

 private:
  // Producer-owned line: tail plus its cached view of head.
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  std::uint64_t head_cache_ = 0;
  // Consumer-owned line: head plus its cached view of tail.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  std::uint64_t tail_cache_ = 0;
  alignas(64) std::vector<T> slots_;
  std::size_t mask_ = 0;
};

/// Mutex/condvar parking pad for one side of a lock-free structure.
///
/// Contract: the waiter calls park_until(deadline, ready) where `ready`
/// reads only atomics; the other side publishes its change (release/acq on
/// the ring indices), then calls unpark(). The seq_cst fences on both
/// sides close the store-buffer window (publisher's flag load reordered
/// before its publish × parker's re-check reordered before its flag
/// store); the bounded wait below is insurance, not the mechanism.
///
/// parked_ is a COUNTER, not a flag: the MPMC mux ring parks several
/// producers on one pad at once, and a flag one waiter clears on its way
/// out would hide the others from unpark().
class ParkingLot {
 public:
  /// Blocks until ready() or the deadline. Returns ready()'s final value.
  template <typename Pred>
  bool park_until(std::chrono::steady_clock::time_point deadline, Pred&& ready) {
    for (;;) {
      if (ready()) return true;
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return ready();
      std::unique_lock<std::mutex> lock(mu_);
      parked_.fetch_add(1, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (ready()) {
        parked_.fetch_sub(1, std::memory_order_relaxed);
        return true;
      }
      cv_.wait_until(lock, std::min(deadline, now + kParkBound));
      parked_.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  /// Publisher side: call *after* the release-store that made ready() true.
  void unpark() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (parked_.load(std::memory_order_relaxed) != 0) {
      std::lock_guard<std::mutex> lock(mu_);
      cv_.notify_all();
    }
  }

 private:
  // Upper bound on any single sleep: caps the cost of the (fenced-away)
  // lost-wakeup race and of waiters whose predicate involves state the
  // publisher does not know to unpark for.
  static constexpr std::chrono::milliseconds kParkBound{2};

  std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<int> parked_{0};
};

/// Bounded lock-free multi-producer/multi-consumer ring (Vyukov's bounded
/// MPMC queue): each cell carries a sequence number that encodes whose
/// turn it is — a producer claims a cell by CASing the shared enqueue
/// position forward, then publishes with a release store of seq=pos+1; a
/// consumer claims with the dequeue position and recycles the cell with
/// seq=pos+capacity. Per-producer FIFO holds (one thread's pushes claim
/// increasing positions), which is exactly the ordering contract the
/// shared-memory fabric's mux mode needs: MPI only promises
/// non-overtaking per (src, dst).
template <typename T>
class MpmcRing {
 public:
  explicit MpmcRing(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    cells_ = std::vector<Cell>(cap);
    for (std::size_t i = 0; i < cap; ++i)
      cells_[i].seq.store(i, std::memory_order_relaxed);
    mask_ = cap - 1;
  }
  MpmcRing(const MpmcRing&) = delete;
  MpmcRing& operator=(const MpmcRing&) = delete;

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

  /// Any thread. False if the ring is full.
  bool try_push(T&& v) {
    std::uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& c = cells_[pos & mask_];
      const std::uint64_t seq = c.seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (dif == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          c.val = std::move(v);
          c.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Any thread. Empty if no message is available.
  std::optional<T> try_pop() {
    std::uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& c = cells_[pos & mask_];
      const std::uint64_t seq = c.seq.load(std::memory_order_acquire);
      const auto dif =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos + 1);
      if (dif == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          std::optional<T> v(std::move(c.val));
          c.val = T{};  // drop payload-owning state eagerly
          c.seq.store(pos + mask_ + 1, std::memory_order_release);
          return v;
        }
      } else if (dif < 0) {
        return std::nullopt;  // empty
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Racy by nature; exact only when quiescent.
  [[nodiscard]] std::size_t size_approx() const {
    const std::uint64_t e = enqueue_pos_.load(std::memory_order_acquire);
    const std::uint64_t d = dequeue_pos_.load(std::memory_order_acquire);
    return e > d ? static_cast<std::size_t>(e - d) : 0;
  }
  [[nodiscard]] bool empty_approx() const { return size_approx() == 0; }
  [[nodiscard]] bool full_approx() const { return size_approx() > mask_; }

 private:
  struct Cell {
    std::atomic<std::uint64_t> seq{0};
    T val{};
  };

  alignas(64) std::atomic<std::uint64_t> enqueue_pos_{0};
  alignas(64) std::atomic<std::uint64_t> dequeue_pos_{0};
  alignas(64) std::vector<Cell> cells_;
  std::size_t mask_ = 0;
};

/// MpmcRing + parking, mirroring SpscChannel's shape. The producer pad is
/// shared by ALL producers (hence the ParkingLot counter) and the
/// consumer pad is pluggable, so a receiving endpoint can park on its mux
/// ring and its promoted SPSC rings with one pad.
template <typename T>
class MpmcChannel {
 public:
  explicit MpmcChannel(std::size_t min_capacity) : ring_(min_capacity) {}

  /// All of this channel's "data available" unparks go to `pad` instead of
  /// the internal consumer pad. Call before any traffic.
  void share_consumer_pad(ParkingLot* pad) { consumer_pad_ = pad; }

  bool try_push(T&& v) {
    if (!ring_.try_push(std::move(v))) return false;
    consumer_pad_->unpark();
    return true;
  }

  std::optional<T> try_pop() {
    std::optional<T> v = ring_.try_pop();
    if (v) producer_pad_.unpark();
    return v;
  }

  /// Blocks while the ring is full. False if the deadline passed first (v
  /// is then untouched and still owned by the caller). Unlike the SPSC
  /// channel, observed space may be claimed by a racing producer before
  /// the retry — the loop simply parks again.
  bool push_until(T& v, std::chrono::steady_clock::time_point deadline) {
    if (try_push(std::move(v))) return true;
    for (;;) {
      if (!producer_pad_.park_until(deadline, [this] { return !ring_.full_approx(); }))
        return false;
      if (try_push(std::move(v))) return true;
    }
  }

  /// Blocks while the ring is empty; nullopt if the deadline passed first.
  std::optional<T> pop_until(std::chrono::steady_clock::time_point deadline) {
    for (;;) {
      if (std::optional<T> v = try_pop()) return v;
      if (!consumer_pad_->park_until(deadline, [this] { return !ring_.empty_approx(); }))
        return try_pop();
    }
  }

  [[nodiscard]] MpmcRing<T>& ring() { return ring_; }
  [[nodiscard]] std::size_t capacity() const { return ring_.capacity(); }
  [[nodiscard]] std::size_t size_approx() const { return ring_.size_approx(); }

 private:
  MpmcRing<T> ring_;
  ParkingLot producer_pad_;
  ParkingLot own_consumer_pad_;
  ParkingLot* consumer_pad_ = &own_consumer_pad_;
};

/// SpscRing + parking: blocking push/pop with deadlines. The consumer pad
/// may be external and shared across several channels (one endpoint
/// parking on all its inbound rings at once).
template <typename T>
class SpscChannel {
 public:
  explicit SpscChannel(std::size_t min_capacity) : ring_(min_capacity) {}

  /// All of this channel's "data available" unparks go to `pad` instead of
  /// the internal consumer pad. Call before any traffic.
  void share_consumer_pad(ParkingLot* pad) { consumer_pad_ = pad; }

  bool try_push(T&& v) {
    if (!ring_.try_push(std::move(v))) return false;
    consumer_pad_->unpark();
    return true;
  }

  std::optional<T> try_pop() {
    std::optional<T> v = ring_.try_pop();
    if (v) producer_pad_.unpark();
    return v;
  }

  /// Blocks while the ring is full. False if the deadline passed first (v
  /// is then untouched and still owned by the caller).
  bool push_until(T& v, std::chrono::steady_clock::time_point deadline) {
    if (try_push(std::move(v))) return true;
    // Only this thread pushes (SPSC), so space observed by the predicate
    // cannot be taken by anyone else before the retry.
    for (;;) {
      if (!producer_pad_.park_until(deadline, [this] { return !ring_.full_approx(); }))
        return false;
      if (try_push(std::move(v))) return true;
    }
  }

  /// Blocks while the ring is empty; nullopt if the deadline passed first.
  std::optional<T> pop_until(std::chrono::steady_clock::time_point deadline) {
    for (;;) {
      if (std::optional<T> v = try_pop()) return v;
      if (!consumer_pad_->park_until(deadline, [this] { return !ring_.empty_approx(); }))
        return try_pop();
    }
  }

  [[nodiscard]] SpscRing<T>& ring() { return ring_; }
  [[nodiscard]] std::size_t capacity() const { return ring_.capacity(); }
  [[nodiscard]] std::size_t size_approx() const { return ring_.size_approx(); }

 private:
  SpscRing<T> ring_;
  ParkingLot producer_pad_;
  ParkingLot own_consumer_pad_;
  ParkingLot* consumer_pad_ = &own_consumer_pad_;
};

/// The retained mutex/condvar baseline: a bounded deque where every
/// operation takes the lock and signals. This is the handoff style the
/// SPSC ring replaces; host_perf gates ring throughput >= 5x this.
template <typename T>
class MutexChannel {
 public:
  explicit MutexChannel(std::size_t capacity) : capacity_(capacity) {}

  bool push_until(T& v, std::chrono::steady_clock::time_point deadline) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!cv_space_.wait_until(lock, deadline, [this] { return q_.size() < capacity_; }))
      return false;
    q_.push_back(std::move(v));
    cv_data_.notify_one();
    return true;
  }

  std::optional<T> pop_until(std::chrono::steady_clock::time_point deadline) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!cv_data_.wait_until(lock, deadline, [this] { return !q_.empty(); }))
      return std::nullopt;
    std::optional<T> v(std::move(q_.front()));
    q_.pop_front();
    cv_space_.notify_one();
    return v;
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  std::mutex mu_;
  std::condition_variable cv_data_;
  std::condition_variable cv_space_;
  std::deque<T> q_;
  std::size_t capacity_;
};

}  // namespace lcmpi::util
