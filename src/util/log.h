// Minimal leveled logging.
//
// Logging is off by default (benchmarks measure virtual time, but log I/O
// still slows real runs); tests enable kDebug selectively. Thread-safe for
// concurrent writers (the real-threads shm fabric logs from every rank
// thread at once): the level is an atomic, and each call formats its whole
// line into a local buffer and emits it with a single write(2), so lines
// never interleave mid-record and there is no shared stdio state to race
// on. log_at itself rechecks the level, so direct calls are also gated.
#pragma once

#include <cstdarg>

namespace lcmpi {

enum class LogLevel { kNone = 0, kError, kInfo, kDebug, kTrace };

void set_log_level(LogLevel level);
LogLevel log_level();

/// Redirects log output to `fd` (default: stderr). Tests point this at
/// /dev/null to exercise the concurrent formatting path silently.
void set_log_fd(int fd);

void log_at(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

#define LCMPI_LOG(level, ...)                                        \
  do {                                                               \
    if (static_cast<int>(::lcmpi::log_level()) >=                    \
        static_cast<int>(::lcmpi::LogLevel::level))                  \
      ::lcmpi::log_at(::lcmpi::LogLevel::level, __VA_ARGS__);        \
  } while (0)

}  // namespace lcmpi
