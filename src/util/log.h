// Minimal leveled logging.
//
// Logging is off by default (benchmarks measure virtual time, but log I/O
// still slows real runs); tests enable kDebug selectively. Thread-safe: the
// simulator hands control to one actor at a time, but the real-threads shm
// fabric logs concurrently.
#pragma once

#include <cstdarg>

namespace lcmpi {

enum class LogLevel { kNone = 0, kError, kInfo, kDebug, kTrace };

void set_log_level(LogLevel level);
LogLevel log_level();

void log_at(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

#define LCMPI_LOG(level, ...)                                        \
  do {                                                               \
    if (static_cast<int>(::lcmpi::log_level()) >=                    \
        static_cast<int>(::lcmpi::LogLevel::level))                  \
      ::lcmpi::log_at(::lcmpi::LogLevel::level, __VA_ARGS__);        \
  } while (0)

}  // namespace lcmpi
