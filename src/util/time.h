// Virtual-time representation shared by the simulator and the MPI library.
//
// All simulated clocks count integer nanoseconds from the start of the run.
// Strong typedefs (rather than raw int64_t) keep durations and absolute
// times from being mixed up across the fabric/simulator boundary.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace lcmpi {

/// A span of virtual time, in nanoseconds. Supports the arithmetic needed by
/// the network models; deliberately minimal otherwise.
struct Duration {
  std::int64_t ns = 0;

  [[nodiscard]] constexpr double usec() const { return static_cast<double>(ns) / 1e3; }
  [[nodiscard]] constexpr double msec() const { return static_cast<double>(ns) / 1e6; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(ns) / 1e9; }

  constexpr Duration& operator+=(Duration d) { ns += d.ns; return *this; }
  constexpr Duration& operator-=(Duration d) { ns -= d.ns; return *this; }
  constexpr auto operator<=>(const Duration&) const = default;
};

constexpr Duration operator+(Duration a, Duration b) { return {a.ns + b.ns}; }
constexpr Duration operator-(Duration a, Duration b) { return {a.ns - b.ns}; }
constexpr Duration operator*(Duration a, std::int64_t k) { return {a.ns * k}; }
constexpr Duration operator*(std::int64_t k, Duration a) { return {a.ns * k}; }

constexpr Duration nanoseconds(std::int64_t n) { return {n}; }
constexpr Duration microseconds(double us) { return {static_cast<std::int64_t>(us * 1e3)}; }
constexpr Duration milliseconds(double ms) { return {static_cast<std::int64_t>(ms * 1e6)}; }
constexpr Duration seconds(double s) { return {static_cast<std::int64_t>(s * 1e9)}; }

/// An absolute point on a virtual clock, in nanoseconds since run start.
struct TimePoint {
  std::int64_t ns = 0;

  constexpr auto operator<=>(const TimePoint&) const = default;

  static constexpr TimePoint max() { return {std::numeric_limits<std::int64_t>::max()}; }
};

constexpr TimePoint operator+(TimePoint t, Duration d) { return {t.ns + d.ns}; }
constexpr Duration operator-(TimePoint a, TimePoint b) { return {a.ns - b.ns}; }

/// Time to move `bytes` across a link of `bytes_per_sec` throughput.
constexpr Duration transmission_time(std::int64_t bytes, double bytes_per_sec) {
  return {static_cast<std::int64_t>(static_cast<double>(bytes) / bytes_per_sec * 1e9)};
}

std::string to_string(Duration d);
std::string to_string(TimePoint t);

}  // namespace lcmpi
