// Small statistics helpers used by the benchmark harnesses.
#pragma once

#include <cstddef>
#include <vector>

namespace lcmpi {

/// Accumulates samples; supports mean, min/max, stddev and percentiles.
class Samples {
 public:
  void add(double x) { xs_.push_back(x); }
  [[nodiscard]] std::size_t count() const { return xs_.size(); }
  [[nodiscard]] bool empty() const { return xs_.empty(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double stddev() const;
  /// p in [0,100]; nearest-rank on the sorted samples.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

 private:
  std::vector<double> xs_;
  mutable std::vector<double> sorted_;
  void ensure_sorted() const;
};

/// Least-squares fit y = a + b*x. Used to extract per-byte cost / fixed
/// overhead from latency-vs-size sweeps (the LogGP-style decomposition the
/// paper performs implicitly when it quotes crossover points).
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace lcmpi
