// Plain-text table / CSV emission for the benchmark harnesses.
//
// Every bench binary prints the same rows/series the paper's figure or table
// reports; Table keeps that output aligned and optionally mirrors it to CSV
// so the series can be re-plotted.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace lcmpi {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Convenience: formats doubles with the given precision.
  void add_row_values(const std::vector<double>& values, int precision = 2);

  /// Writes an aligned ASCII table to `out`.
  void print(std::FILE* out = stdout) const;
  /// Writes comma-separated values (headers + rows) to `out`.
  void print_csv(std::FILE* out) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for table cells).
std::string fmt(double v, int precision = 2);

}  // namespace lcmpi
