// Deterministic discrete-event simulation kernel with cooperative actors.
//
// The kernel owns a virtual clock and an event queue. Two kinds of code run
// on top of it:
//
//  * event handlers — plain callbacks executed on the kernel thread; the
//    network models (links, switches, co-processors) are written this way;
//  * actors — sequential "processes" (one per MPI rank, one per modelled
//    co-processor loop) that may block on virtual time or on Triggers.
//
// Actors are real std::threads, but the kernel enforces that exactly one of
// {kernel, some actor} runs at any instant, handing control back and forth
// with a per-actor mutex/condvar pair. That makes the whole simulation
// single-threaded in effect: deterministic, race-free on shared state, and
// repeatable event order (ties broken by insertion sequence).
//
// Deadlock detection falls out naturally: if the event queue drains while
// actors are still blocked, no future wakeup can exist, and the kernel
// reports which actors were stuck — which is exactly what a hung MPI
// program looks like, so the tests use it to assert deadlock behaviour.
//
// Hot-path design: the dominant event kinds — actor wakeups from advance()
// / Trigger notifies, and actor starts — carry their payload inline in the
// Event record instead of a std::function, so scheduling them performs no
// heap allocation. Cancellation state lives in a pooled slab indexed by
// (cell, generation) instead of a per-event shared_ptr; callback events
// and cancellable timers borrow a cell from the free list and return it
// when they fire. The event queue is a binary heap over a plain vector
// (reserved up front, entries moved out on pop, never copied).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/util/status.h"
#include "src/util/time.h"

namespace lcmpi::sim {

class Kernel;
class Actor;

/// Thrown by Kernel::run when every remaining actor is blocked and the event
/// queue is empty (no wakeup can ever arrive).
class SimDeadlock : public std::runtime_error {
 public:
  explicit SimDeadlock(std::string what) : std::runtime_error(std::move(what)) {}
};

/// Thrown when virtual time passes the watchdog limit (a livelock guard:
/// retransmission storms and poll loops generate events forever, which a
/// deadlock detector cannot see).
class SimTimeLimit : public std::runtime_error {
 public:
  explicit SimTimeLimit(std::string what) : std::runtime_error(std::move(what)) {}
};

/// Thrown inside actor blocking calls when the kernel is tearing down; the
/// actor wrapper swallows it so threads can be joined.
class ActorCancelled {};

/// A waitable condition with condition-variable semantics (no memory): a
/// notify wakes currently blocked waiters only. Blocked actors re-check
/// their predicate in a loop, so this is safe under cooperative scheduling.
class Trigger {
 public:
  Trigger() = default;
  Trigger(const Trigger&) = delete;
  Trigger& operator=(const Trigger&) = delete;

  void notify_all();
  void notify_one();

  [[nodiscard]] std::size_t waiter_count() const { return waiters_.size(); }

 private:
  friend class Actor;
  friend class Kernel;
  std::vector<Actor*> waiters_;
  // notify_all drains into this reusable buffer before waking, so a waiter
  // that re-waits (mutating waiters_) cannot invalidate the iteration, and
  // neither vector's capacity is thrown away per notify.
  std::vector<Actor*> scratch_;
};

/// Handle to a scheduled event; allows cancellation (used for timers).
/// Refers to a pooled (cell, generation) slot in the kernel; safe to hold
/// or cancel after the event fired and even after the kernel is destroyed.
class EventHandle {
 public:
  EventHandle() = default;
  void cancel();
  [[nodiscard]] bool valid() const { return kernel_ != nullptr; }

 private:
  friend class Kernel;
  EventHandle(Kernel* kernel, std::uint32_t cell, std::uint32_t gen,
              std::weak_ptr<const bool> alive)
      : kernel_(kernel), cell_(cell), gen_(gen), alive_(std::move(alive)) {}
  Kernel* kernel_ = nullptr;
  std::uint32_t cell_ = 0;
  std::uint32_t gen_ = 0;
  std::weak_ptr<const bool> alive_;  // expires with the kernel
};

/// A cooperative simulated process. Construct only via Kernel::spawn.
class Actor {
 public:
  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;
  ~Actor();

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Kernel& kernel() const { return *kernel_; }
  [[nodiscard]] TimePoint now() const;

  /// Models local computation: blocks this actor for `d` of virtual time.
  void advance(Duration d);
  void wait_until(TimePoint t);

  /// Blocks until the trigger is notified. Caller re-checks its predicate.
  void wait(Trigger& trigger);

  /// Blocks until the trigger is notified or `timeout` elapses.
  /// Returns true if the trigger fired, false on timeout.
  bool wait_with_timeout(Trigger& trigger, Duration timeout);

  [[nodiscard]] bool finished() const { return finished_; }

 private:
  friend class Kernel;
  friend class Trigger;

  Actor(Kernel* kernel, std::string name, std::function<void(Actor&)> body);
  void start_thread();

  // Control transfer (called on the actor thread).
  void yield_to_kernel();
  // Control transfer (called on the kernel thread).
  void resume_from_kernel();

  // Blocks the actor; a wake is delivered by Kernel::wake(this, epoch).
  void block();

  Kernel* kernel_;
  std::string name_;
  std::function<void(Actor&)> body_;

  std::mutex mu_;
  std::condition_variable cv_;
  enum class Turn { kKernel, kActor };
  Turn turn_ = Turn::kKernel;
  bool started_ = false;
  bool finished_ = false;
  std::exception_ptr error_;
  std::thread thread_;

  // Wakeup bookkeeping (touched only under cooperative scheduling).
  std::uint64_t wake_epoch_ = 0;  // incremented on every block()
  bool blocked_ = false;
  bool woke_by_trigger_ = false;  // result channel for wait_with_timeout
};

class Kernel {
 public:
  Kernel();
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;
  ~Kernel();

  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `fn` to run on the kernel thread after `delay`.
  EventHandle schedule(Duration delay, std::function<void()> fn);
  EventHandle schedule_at(TimePoint t, std::function<void()> fn);

  /// Creates an actor whose body starts executing at the current time.
  Actor& spawn(std::string name, std::function<void(Actor&)> body);

  /// Runs until the event queue is empty and all actors have finished.
  /// Throws SimDeadlock if actors remain blocked with no pending events,
  /// and rethrows the first exception escaping any actor body.
  void run();

  /// Runs until virtual time would exceed `t` (events at exactly `t` run).
  void run_until(TimePoint t);

  /// Arms a watchdog: any event past `limit` makes run() throw
  /// SimTimeLimit instead of executing it.
  void set_time_limit(TimePoint limit) { time_limit_ = limit; }

  [[nodiscard]] std::uint64_t events_executed() const { return events_executed_; }
  [[nodiscard]] std::size_t live_actor_count() const;

 private:
  friend class Actor;
  friend class Trigger;
  friend class EventHandle;

  static constexpr std::uint32_t kNoCell = 0xFFFFFFFFu;

  struct Event {
    TimePoint time;
    std::uint64_t seq = 0;
    enum class Kind : std::uint8_t { kFn, kWake, kStart };
    Kind kind = Kind::kFn;
    bool by_trigger = false;        // kWake
    std::uint32_t cell = kNoCell;   // cancellation slot, kNoCell = none
    Actor* actor = nullptr;         // kWake / kStart target
    std::uint64_t epoch = 0;        // kWake staleness check
    std::function<void()> fn;       // kFn only (empty otherwise)
  };
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  // Pooled cancellation slab. A cell is borrowed while its event is queued
  // and recycled (generation bumped) when the event pops or is skipped.
  struct CancelCell {
    std::uint32_t gen = 0;
    bool cancelled = false;
    bool in_use = false;
  };

  // Schedules a wakeup for a blocked actor (valid only while its epoch
  // matches, so stale notifies and raced timeouts are ignored).
  void wake(Actor* a, std::uint64_t epoch, bool by_trigger);
  /// Allocation-free wake/timer event; with_cell => cancellable via handle.
  EventHandle schedule_wake_at(TimePoint t, Actor* a, std::uint64_t epoch,
                               bool by_trigger, bool with_cell);
  void push_event(Event ev);
  std::uint32_t borrow_cell();
  /// Recycles a cell; returns whether it had been cancelled.
  bool release_cell(std::uint32_t idx);
  void cancel_cell(std::uint32_t idx, std::uint32_t gen);
  void dispatch(Event& ev);
  void transfer_to(Actor* a);
  void drain_one_step(bool& made_progress);
  void cancel_all_actors();

  TimePoint now_{};
  TimePoint time_limit_ = TimePoint::max();
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  std::vector<Event> heap_;  // binary heap ordered by EventAfter
  std::vector<CancelCell> cells_;
  std::vector<std::uint32_t> free_cells_;
  std::shared_ptr<const bool> alive_ = std::make_shared<const bool>(true);
  std::vector<std::unique_ptr<Actor>> actors_;
  bool cancelling_ = false;
  bool running_ = false;
};

}  // namespace lcmpi::sim
