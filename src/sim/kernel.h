// Deterministic discrete-event simulation kernel with cooperative actors.
//
// The kernel owns a virtual clock and an event queue. Two kinds of code run
// on top of it:
//
//  * event handlers — plain callbacks executed on the kernel thread; the
//    network models (links, switches, co-processors) are written this way;
//  * actors — sequential "processes" (one per MPI rank, one per modelled
//    co-processor loop) that may block on virtual time or on Triggers.
//
// The kernel enforces that exactly one of {kernel, some actor} runs at any
// instant, handing control back and forth. That makes the whole simulation
// single-threaded in effect: deterministic, race-free on shared state, and
// repeatable event order (ties broken by insertion sequence).
//
// *How* control transfers is pluggable (ActorContext / ActorBackend): the
// production backend runs each actor as a stackful fiber (src/sim/fiber.h)
// — a user-space coroutine switched in a few dozen instructions — while
// the original std::thread + mutex/condvar turn-taking handoff survives
// verbatim as ThreadActorContext in kernel_ref.h, the executable reference
// (selectable via LCMPI_ACTORS=threads or a Kernel constructor argument).
// Both backends make the identical scheduling decisions — which actor
// starts, yields, or wakes, and in what order, is decided entirely by the
// kernel's event queue — so every virtual-time observable is bit-identical
// across them (pinned by tests/actor_backend_test.cpp and the golden
// figures); only the host-time cost of a switch differs (~10-100x).
//
// Deadlock detection falls out naturally: if the event queue drains while
// actors are still blocked, no future wakeup can exist, and the kernel
// reports which actors were stuck — which is exactly what a hung MPI
// program looks like, so the tests use it to assert deadlock behaviour.
//
// Hot-path design: the dominant event kinds — actor wakeups from advance()
// / Trigger notifies, and actor starts — carry their payload inline in the
// Event record instead of a std::function, so scheduling them performs no
// heap allocation. Cancellation state lives in a pooled slab indexed by
// (cell, generation) instead of a per-event shared_ptr; callback events
// and cancellable timers borrow a cell from the free list and return it
// when they fire.
//
// The event list itself is pluggable (EventQueue): the production backend
// is a calendar queue (CalendarQueue, O(1) amortized enqueue/dequeue for
// the timer-heavy TCP/ATM workloads), and the original binary heap survives
// as HeapEventQueue in kernel_ref.h — the executable specification the
// differential tests compare against. Both backends implement the same
// determinism contract: events pop in strictly non-decreasing (time, seq)
// order, where seq is the kernel-assigned insertion sequence number, so the
// executed event order — and therefore every virtual-time observable — is
// identical regardless of backend.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/util/status.h"
#include "src/util/time.h"

namespace lcmpi::sim {

class Kernel;
class Actor;
class StackPool;  // src/sim/fiber.h

/// Thrown by Kernel::run when every remaining actor is blocked and the event
/// queue is empty (no wakeup can ever arrive).
class SimDeadlock : public std::runtime_error {
 public:
  explicit SimDeadlock(std::string what) : std::runtime_error(std::move(what)) {}
};

/// Thrown when virtual time passes the watchdog limit (a livelock guard:
/// retransmission storms and poll loops generate events forever, which a
/// deadlock detector cannot see).
class SimTimeLimit : public std::runtime_error {
 public:
  explicit SimTimeLimit(std::string what) : std::runtime_error(std::move(what)) {}
};

/// Thrown inside actor blocking calls when the kernel is tearing down; it
/// unwinds the actor's stack (running destructors of locals parked in
/// Mailbox::pop and friends) and the actor body wrapper swallows it so
/// fiber stacks can be recycled and threads joined.
class ActorCancelled {};

// ------------------------------------------------------- actor execution

/// Which execution mechanism actors use. Fibers (stackful user-space
/// coroutines, src/sim/fiber.h) are the production default; threads is the
/// original std::thread + mutex/condvar handoff, retained in kernel_ref.h
/// as the executable reference.
enum class ActorBackend : std::uint8_t { kFibers, kThreads };

/// Backend selection from the environment: LCMPI_ACTORS=fibers|threads
/// (unset or anything else ⇒ fibers; targets with no fiber implementation
/// always get threads). Read at every Kernel construction, so tests and
/// CI can flip backends per-world without code changes.
ActorBackend actor_backend_from_env();

/// Host-side counters for actor execution (host_perf and tests; virtual
/// time is unaffected by any of this). Switches count one-way transfers —
/// each kernel→actor resume and each actor→kernel yield is one switch —
/// and are backend-invariant; the stack fields are fiber-backend-only.
struct ActorStats {
  std::uint64_t switches = 0;         // one-way kernel<->actor transfers
  std::uint64_t actors_spawned = 0;
  std::uint64_t stacks_allocated = 0; // fresh fiber stacks mmap'd
  std::uint64_t stack_reuses = 0;     // fiber stacks recycled from the pool
  std::size_t stack_high_water = 0;   // deepest observed fiber stack use
  std::size_t stack_bytes = 0;        // configured usable fiber stack size
};

/// The execution mechanism of one actor: how its body gets a stack and how
/// control transfers between the kernel and that stack. Exactly one side
/// runs at a time; resume() is called on the kernel side only, yield() on
/// the actor side only. Implementations: the fiber context (kernel.cpp)
/// and ThreadActorContext (kernel_ref.h).
class ActorContext {
 public:
  virtual ~ActorContext() = default;
  /// Runs or resumes the actor body; returns when it yields or finishes.
  virtual void resume() = 0;
  /// Suspends the actor body; returns when the kernel next resumes it.
  virtual void yield() = 0;
  /// Teardown fast path: if the body never started and this context can
  /// discard it without ever running it (fibers: nothing is parked on a
  /// stack yet), do so and return true. Thread contexts must return false
  /// — a parked thread has to be resumed once so it can exit and be
  /// joined.
  virtual bool discard_if_unstarted() { return false; }
  [[nodiscard]] virtual const char* name() const = 0;
};

/// A waitable condition with condition-variable semantics (no memory): a
/// notify wakes currently blocked waiters only. Blocked actors re-check
/// their predicate in a loop, so this is safe under cooperative scheduling.
class Trigger {
 public:
  Trigger() = default;
  Trigger(const Trigger&) = delete;
  Trigger& operator=(const Trigger&) = delete;

  void notify_all();
  void notify_one();

  [[nodiscard]] std::size_t waiter_count() const { return waiters_.size(); }

 private:
  friend class Actor;
  friend class Kernel;
  std::vector<Actor*> waiters_;
  // notify_all drains into this reusable buffer before waking, so a waiter
  // that re-registers (mutating waiters_) cannot invalidate the iteration,
  // and neither vector's capacity is thrown away per notify. `draining_`
  // guards the scratch buffer against re-entrant notify_all on the same
  // trigger (a woken callee notifying the trigger it was woken from): the
  // nested call falls back to a local drain buffer.
  std::vector<Actor*> scratch_;
  bool draining_ = false;
};

/// Handle to a scheduled event; allows cancellation (used for timers).
/// Refers to a pooled (cell, generation) slot in the kernel; safe to hold
/// or cancel after the event fired and even after the kernel is destroyed.
class EventHandle {
 public:
  EventHandle() = default;
  void cancel();
  [[nodiscard]] bool valid() const { return kernel_ != nullptr; }

 private:
  friend class Kernel;
  EventHandle(Kernel* kernel, std::uint32_t cell, std::uint32_t gen,
              std::weak_ptr<const bool> alive)
      : kernel_(kernel), cell_(cell), gen_(gen), alive_(std::move(alive)) {}
  Kernel* kernel_ = nullptr;
  std::uint32_t cell_ = 0;
  std::uint32_t gen_ = 0;
  std::weak_ptr<const bool> alive_;  // expires with the kernel
};

/// A cooperative simulated process. Construct via Kernel::spawn — or via
/// Actor::detached for code that runs on a real OS thread (the
/// shared-memory threads world) but still needs an Actor identity.
class Actor {
 public:
  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;
  ~Actor();

  /// An actor bound to no kernel: each rank of runtime::ThreadsWorld gets
  /// one so Actor::current(), actor-local storage, and the engine's cost
  /// charging keep working on real threads. Virtual-time calls are inert
  /// (now() is the epoch, advance()/wait_until return immediately — host
  /// work takes real time instead); blocking on a Trigger requires a
  /// kernel and throws. Pair with Actor::BindScope on the owning thread.
  [[nodiscard]] static std::unique_ptr<Actor> detached(std::string name);

  /// Binds an actor as Actor::current() for the calling OS thread and
  /// restores the previous binding on destruction. The kernel backends
  /// bind automatically (run_body / resume_from_kernel); only detached
  /// actors need this.
  class [[nodiscard]] BindScope {
   public:
    explicit BindScope(Actor* a);
    ~BindScope();
    BindScope(const BindScope&) = delete;
    BindScope& operator=(const BindScope&) = delete;

   private:
    Actor* prev_;
  };

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Kernel& kernel() const {
    LCMPI_CHECK(kernel_ != nullptr, "detached actor has no kernel");
    return *kernel_;
  }
  [[nodiscard]] bool is_detached() const { return kernel_ == nullptr; }
  [[nodiscard]] TimePoint now() const;

  /// Models local computation: blocks this actor for `d` of virtual time.
  void advance(Duration d);
  void wait_until(TimePoint t);

  /// Blocks until the trigger is notified. Caller re-checks its predicate.
  void wait(Trigger& trigger);

  /// Blocks until the trigger is notified or `timeout` elapses.
  /// Returns true if the trigger fired, false on timeout.
  bool wait_with_timeout(Trigger& trigger, Duration timeout);

  [[nodiscard]] bool finished() const { return finished_; }

  /// The actor whose body the calling code is running inside, or nullptr
  /// on the kernel side. Valid under every backend: fibers share the
  /// kernel thread, so the kernel maintains this across switches; a thread
  /// backend actor sets it once on its own thread.
  [[nodiscard]] static Actor* current();

  /// Actor-local storage (one slot, like pthread_setspecific for simulated
  /// processes): ambient per-rank state for layers like the C API whose
  /// functions take no context argument. Plain thread_local is wrong for
  /// that purpose under the fiber backend — every fiber would share the
  /// kernel thread's slot — so such layers key off Actor::current()
  /// instead. The actor does not own the pointee.
  void set_local(void* p) { local_ = p; }
  [[nodiscard]] void* local() const { return local_; }

 private:
  friend class Kernel;
  friend class Trigger;

  Actor(Kernel* kernel, std::string name, std::function<void(Actor&)> body);

  /// The body wrapper every backend runs on the actor's own stack: skips
  /// the body if the kernel is already cancelling, swallows ActorCancelled
  /// (teardown unwind), captures anything else for the kernel to rethrow.
  void run_body();

  // Control transfer (called on the actor side).
  void yield_to_kernel();
  // Control transfer (called on the kernel side).
  void resume_from_kernel();

  // Blocks the actor; a wake is delivered by Kernel::wake(this, epoch).
  void block();

  Kernel* kernel_;
  std::string name_;
  std::function<void(Actor&)> body_;
  std::unique_ptr<ActorContext> ctx_;

  bool started_ = false;
  bool finished_ = false;
  std::exception_ptr error_;
  void* local_ = nullptr;  // actor-local storage slot

  // Wakeup bookkeeping (touched only under cooperative scheduling).
  std::uint64_t wake_epoch_ = 0;  // incremented on every block()
  bool blocked_ = false;
  bool woke_by_trigger_ = false;  // result channel for wait_with_timeout
};

// --------------------------------------------------------- event scheduler

/// Sentinel for "this event holds no cancellation cell".
inline constexpr std::uint32_t kNoCell = 0xFFFFFFFFu;

/// One pending occurrence in the event list. `seq` is assigned by the
/// kernel at push time and makes (time, seq) a strict total order — the
/// determinism contract every EventQueue backend must honour.
struct Event {
  TimePoint time;
  std::uint64_t seq = 0;
  enum class Kind : std::uint8_t { kFn, kWake, kStart };
  Kind kind = Kind::kFn;
  bool by_trigger = false;        // kWake
  std::uint32_t cell = kNoCell;   // cancellation slot, kNoCell = none
  Actor* actor = nullptr;         // kWake / kStart target
  std::uint64_t epoch = 0;        // kWake staleness check
  std::function<void()> fn;       // kFn only (empty otherwise)
};

/// "a fires after b" — the shared ordering predicate. Used directly as the
/// comparator of the reference binary heap and inside calendar buckets.
struct EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

/// Pluggable pending-event list. Contract: pop() removes and returns the
/// minimum event under (time, seq); peek() exposes it without removing.
/// peek() is non-const because backends may advance internal cursors to
/// locate the minimum (the work is then amortized against the next pop).
/// Push times never precede the time of the last popped event (the kernel
/// clock only moves forward), which backends may exploit.
class EventQueue {
 public:
  virtual ~EventQueue() = default;
  /// Enqueues an event (seq already assigned by the kernel).
  virtual void push(Event&& ev) = 0;
  /// The minimum pending event, or nullptr if empty. The pointer is
  /// invalidated by any subsequent push/pop.
  virtual const Event* peek() = 0;
  /// Removes and returns the minimum pending event. Precondition: not empty.
  virtual Event pop() = 0;
  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] virtual const char* name() const = 0;
};

/// Calendar queue (Brown, CACM 1988) with a ladder-style overflow rung.
///
/// Layout: a power-of-two array of buckets, each `width_` nanoseconds of
/// virtual time wide, covering one "window" of bucket_count() consecutive
/// days starting at `base_day_`. An event whose day (= time / width)
/// falls inside the window lands in bucket `day & (count-1)`; anything
/// beyond the window end goes to the unordered overflow rung. Each bucket
/// is a tiny binary heap under EventAfter, so same-timestamp bursts inside
/// one bucket stay O(log k) and FIFO-by-seq — never O(k²) scan-min.
///
/// The cursor `cur_day_` sweeps forward across the window looking for the
/// first non-empty bucket; because bucket→day mapping is fixed between
/// rebuilds, a push behind the cursor (legal: pushes at the current virtual
/// time after the cursor skipped empty buckets during a peek) just rewinds
/// the cursor — no remapping needed. When the window drains and only
/// overflow remains, the queue rebuilds: re-anchor at the clock floor (the
/// time of the last pop, which lower-bounds every legal push) and
/// redistribute.
///
/// Resize policy: rebuild doubles/halves the bucket array when the
/// population crosses 2× / ⅛× the bucket count. The width is re-estimated
/// at each rebuild from the spread of the earliest three quarters of the
/// pending population (2× their average gap), which keeps the estimate
/// immune to far-future outliers (watchdogs, idle RTO timers) — those
/// simply stay in the overflow rung, untouched until their day comes.
///
/// Determinism: pops are strictly ordered by (time, seq) — bucket
/// separation orders distinct days, the in-bucket heap orders the rest, and
/// window/overflow separation is strict at the boundary — so the executed
/// schedule is bit-identical to HeapEventQueue's (pinned by
/// tests/sched_property_test.cpp and tests/golden_determinism_test.cpp).
class CalendarQueue final : public EventQueue {
 public:
  CalendarQueue();

  void push(Event&& ev) override;
  const Event* peek() override;
  Event pop() override;
  [[nodiscard]] std::size_t size() const override { return size_; }
  [[nodiscard]] const char* name() const override { return "calendar"; }

  // Introspection (tests and host_perf).
  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }
  [[nodiscard]] std::int64_t bucket_width_ns() const { return width_; }
  [[nodiscard]] std::size_t overflow_size() const { return overflow_.size(); }
  [[nodiscard]] std::uint64_t rebuild_count() const { return rebuilds_; }

 private:
  [[nodiscard]] std::int64_t day_of(TimePoint t) const;
  void place(Event&& ev);      // window bucket or overflow, no resize check
  void rebuild();              // re-anchor, re-estimate width, redistribute

  std::vector<std::vector<Event>> buckets_;  // each a binary heap (EventAfter)
  std::vector<Event> overflow_;              // unordered ladder rung
  std::int64_t width_ = 1;                   // bucket width, ns (>= 1)
  std::int64_t base_day_ = 0;                // first day of the window
  std::int64_t cur_day_ = 0;                 // cursor, in [base, base+count]
  std::int64_t floor_ns_ = 0;                // time of last pop (clock floor);
                                             // rebuilds anchor the window here
                                             // because pushes never precede it
  std::size_t in_window_ = 0;                // events currently in buckets_
  std::size_t size_ = 0;
  std::uint64_t rebuilds_ = 0;
};

/// Which EventQueue backend a Kernel uses. The calendar queue is the
/// production default; the heap is the executable reference (kernel_ref.h).
enum class SchedBackend : std::uint8_t { kCalendar, kHeap };

/// Backend selection from the environment: LCMPI_SCHED=calendar|heap
/// (unset or anything else ⇒ calendar). Read at every Kernel construction,
/// so tests and CI can flip backends per-world without code changes.
SchedBackend sched_backend_from_env();

/// Constructs the queue for `backend` (factory shared by Kernel and tests).
std::unique_ptr<EventQueue> make_event_queue(SchedBackend backend);

class Kernel {
 public:
  /// Backends come from the environment: LCMPI_SCHED (default: calendar
  /// queue) and LCMPI_ACTORS (default: fibers).
  Kernel();
  explicit Kernel(SchedBackend backend);
  explicit Kernel(ActorBackend actors);
  Kernel(SchedBackend backend, ActorBackend actors);
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;
  ~Kernel();

  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `fn` to run on the kernel thread after `delay`.
  EventHandle schedule(Duration delay, std::function<void()> fn);
  EventHandle schedule_at(TimePoint t, std::function<void()> fn);

  /// Creates an actor whose body starts executing at the current time.
  Actor& spawn(std::string name, std::function<void(Actor&)> body);

  /// Runs until the event queue is empty and all actors have finished.
  /// Throws SimDeadlock if actors remain blocked with no pending events,
  /// and rethrows the first exception escaping any actor body.
  void run();

  /// Runs until virtual time would exceed `t` (events at exactly `t` run).
  void run_until(TimePoint t);

  /// Arms a watchdog: any event past `limit` makes run() throw
  /// SimTimeLimit instead of executing it.
  void set_time_limit(TimePoint limit) { time_limit_ = limit; }

  [[nodiscard]] std::uint64_t events_executed() const { return events_executed_; }
  [[nodiscard]] std::size_t live_actor_count() const;
  [[nodiscard]] SchedBackend backend() const { return backend_; }
  [[nodiscard]] const char* scheduler_name() const { return queue_->name(); }
  [[nodiscard]] std::size_t pending_events() const { return queue_->size(); }
  [[nodiscard]] ActorBackend actor_backend() const { return actor_backend_; }
  [[nodiscard]] const char* actor_backend_name() const {
    return actor_backend_ == ActorBackend::kFibers ? "fibers" : "threads";
  }
  /// Context-switch / actor-lifecycle counters (merges the fiber stack
  /// pool's numbers when that backend is active).
  [[nodiscard]] ActorStats actor_stats() const;

 private:
  friend class Actor;
  friend class Trigger;
  friend class EventHandle;

  // Pooled cancellation slab. A cell is borrowed while its event is queued
  // and recycled (generation bumped) when the event pops or is skipped.
  struct CancelCell {
    std::uint32_t gen = 0;
    bool cancelled = false;
    bool in_use = false;
  };

  // Schedules a wakeup for a blocked actor (valid only while its epoch
  // matches, so stale notifies and raced timeouts are ignored).
  void wake(Actor* a, std::uint64_t epoch, bool by_trigger);
  /// Allocation-free wake/timer event; with_cell => cancellable via handle.
  EventHandle schedule_wake_at(TimePoint t, Actor* a, std::uint64_t epoch,
                               bool by_trigger, bool with_cell);
  void push_event(Event ev);
  std::uint32_t borrow_cell();
  /// Recycles a cell; returns whether it had been cancelled.
  bool release_cell(std::uint32_t idx);
  void cancel_cell(std::uint32_t idx, std::uint32_t gen);
  void dispatch(Event& ev);
  void transfer_to(Actor* a);
  void drain_one_step(bool& made_progress);
  void cancel_all_actors();

  /// Constructs the ActorContext for a newly spawned actor.
  std::unique_ptr<ActorContext> make_actor_context(Actor* a);

  TimePoint now_{};
  TimePoint time_limit_ = TimePoint::max();
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  SchedBackend backend_;
  ActorBackend actor_backend_;
  std::unique_ptr<EventQueue> queue_;
  std::unique_ptr<StackPool> stack_pool_;  // fiber backend only
  std::vector<CancelCell> cells_;
  std::vector<std::uint32_t> free_cells_;
  std::shared_ptr<const bool> alive_ = std::make_shared<const bool>(true);
  std::vector<std::unique_ptr<Actor>> actors_;
  std::uint64_t actor_switches_ = 0;
  std::uint64_t actors_spawned_ = 0;
  bool cancelling_ = false;
  bool running_ = false;
};

}  // namespace lcmpi::sim
