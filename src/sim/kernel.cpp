#include "src/sim/kernel.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "src/sim/fiber.h"
#include "src/sim/kernel_ref.h"

namespace lcmpi::sim {

// ---------------------------------------------------------------- Trigger

void Trigger::notify_all() {
  if (waiters_.empty()) return;
  if (draining_) {
    // Re-entrant notify on the same trigger (a synchronously-run callee
    // notifying the trigger it is being drained from): the scratch buffer
    // is busy holding the outer drain, so take a local one. Only waiters
    // registered since the outer drain began are here — the outer loop
    // already owns the earlier registrations.
    std::vector<Actor*> local;
    local.swap(waiters_);
    for (Actor* a : local) a->kernel().wake(a, a->wake_epoch_, /*by_trigger=*/true);
    return;
  }
  // Drain into the reusable scratch buffer first: a woken actor only gets a
  // wake *event* here (it runs later), but being defensive about re-entrant
  // registration keeps the iteration valid even if wake() ever runs waiter
  // code synchronously. Swapping (not copying) preserves both capacities.
  draining_ = true;
  scratch_.swap(waiters_);
  for (Actor* a : scratch_) a->kernel().wake(a, a->wake_epoch_, /*by_trigger=*/true);
  scratch_.clear();
  draining_ = false;
  // Shrink policy: a burst (e.g. a barrier over a large world) should not
  // pin its high-water capacity forever.
  if (scratch_.capacity() > 1024) scratch_.shrink_to_fit();
}

void Trigger::notify_one() {
  if (waiters_.empty()) return;
  Actor* a = waiters_.front();
  waiters_.erase(waiters_.begin());
  a->kernel().wake(a, a->wake_epoch_, /*by_trigger=*/true);
}

// ------------------------------------------------------------ EventHandle

void EventHandle::cancel() {
  if (kernel_ != nullptr && !alive_.expired()) kernel_->cancel_cell(cell_, gen_);
  kernel_ = nullptr;
  alive_.reset();
}

// ---------------------------------------------------------- CalendarQueue

namespace {

constexpr std::size_t kMinBuckets = 16;
constexpr std::size_t kMaxBuckets = std::size_t{1} << 22;
// Days are clamped so window-boundary arithmetic (base_day_ + bucket count)
// can never overflow even for TimePoint::max()-dated events; clamping is
// monotone in time, so bucket separation still orders distinct days.
constexpr std::int64_t kMaxDay = std::numeric_limits<std::int64_t>::max() / 4;

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

CalendarQueue::CalendarQueue() : buckets_(kMinBuckets) {}

std::int64_t CalendarQueue::day_of(TimePoint t) const {
  const std::int64_t d = t.ns / width_;
  return d < kMaxDay ? d : kMaxDay;
}

void CalendarQueue::place(Event&& ev) {
  const std::int64_t day = day_of(ev.time);
  const auto count = static_cast<std::int64_t>(buckets_.size());
  if (day < base_day_ + count) {
    // In-window. Pushes behind the cursor are legal (the cursor may have
    // skipped the event's empty bucket during a peek; the clock has not
    // passed it): rewind — the day→bucket mapping is fixed between
    // rebuilds, so no events need to move.
    auto& b = buckets_[static_cast<std::size_t>(day) & (buckets_.size() - 1)];
    b.push_back(std::move(ev));
    std::push_heap(b.begin(), b.end(), EventAfter{});
    ++in_window_;
    if (day < cur_day_) cur_day_ = day;
  } else {
    overflow_.push_back(std::move(ev));
  }
}

void CalendarQueue::rebuild() {
  ++rebuilds_;
  // Collect everything still pending.
  std::vector<Event> all;
  all.reserve(size_);
  for (auto& b : buckets_)
    for (Event& ev : b) all.push_back(std::move(ev));
  for (Event& ev : overflow_) all.push_back(std::move(ev));
  for (auto& b : buckets_) b.clear();
  overflow_.clear();
  in_window_ = 0;

  const std::size_t target = next_pow2(std::clamp(size_, kMinBuckets, kMaxBuckets));
  if (buckets_.size() != target) {
    buckets_.assign(target, {});
  }
  const auto count = static_cast<std::int64_t>(buckets_.size());

  // The window is anchored at the clock floor (time of the last pop), not
  // at the earliest pending event: the floor lower-bounds every legal
  // future push, so a push can never land before the window and corrupt
  // the day→bucket mapping (the pending minimum does not have that
  // property — the kernel's clock may lag it, and an actor woken at the
  // current time may schedule in between).
  //
  // Width estimate: twice the average gap from the floor to the 75th
  // percentile of the pending population. The top quartile is excluded so
  // far-future outliers (watchdogs, idle retransmit timers) cannot inflate
  // the width and collapse the near-term traffic into one bucket; outliers
  // land in the overflow rung instead, where they cost nothing until due.
  if (!all.empty()) {
    std::vector<std::int64_t> times;
    times.reserve(all.size());
    for (const Event& ev : all) times.push_back(ev.time.ns);
    const std::size_t q3 = (times.size() * 3) / 4;
    std::nth_element(times.begin(),
                     times.begin() + static_cast<std::ptrdiff_t>(q3), times.end());
    const std::int64_t t_q3 = times[q3];
    const std::int64_t t_min = *std::min_element(
        times.begin(), times.begin() + static_cast<std::ptrdiff_t>(q3) + 1);
    const auto denom = static_cast<std::int64_t>(std::max<std::size_t>((times.size() * 3) / 4, 1));
    width_ = std::max<std::int64_t>(1, 2 * (t_q3 - floor_ns_) / denom);
    base_day_ = floor_ns_ / width_;
    // Guarantee the earliest pending event fits the window, whatever the
    // estimate did (huge idle gap, tiny bucket array): otherwise the
    // peek → rebuild cycle could spin without ever exposing an event.
    if (day_of(TimePoint{t_min}) >= base_day_ + count) {
      width_ = (t_min - floor_ns_) / (count / 2) + 1;
      base_day_ = floor_ns_ / width_;
    }
    if (base_day_ > kMaxDay) base_day_ = kMaxDay;
  } else {
    width_ = std::max<std::int64_t>(width_, 1);
    base_day_ = floor_ns_ / width_;
    if (base_day_ > kMaxDay) base_day_ = kMaxDay;
  }
  cur_day_ = base_day_;

  for (Event& ev : all) place(std::move(ev));
}

void CalendarQueue::push(Event&& ev) {
  ++size_;
  if (size_ > 2 * buckets_.size() && buckets_.size() < kMaxBuckets) {
    --size_;  // rebuild sizes the array from size_; count this event after
    rebuild();
    ++size_;
  }
  place(std::move(ev));
}

const Event* CalendarQueue::peek() {
  if (size_ == 0) return nullptr;
  for (;;) {
    const auto count = static_cast<std::int64_t>(buckets_.size());
    while (in_window_ > 0 && cur_day_ < base_day_ + count) {
      const auto& b = buckets_[static_cast<std::size_t>(cur_day_) & (buckets_.size() - 1)];
      if (!b.empty()) return &b.front();
      ++cur_day_;
    }
    // Window drained; everything pending sits in the overflow rung.
    rebuild();
  }
}

Event CalendarQueue::pop() {
  const Event* top = peek();
  LCMPI_CHECK(top != nullptr, "pop from empty calendar queue");
  auto& b = buckets_[static_cast<std::size_t>(cur_day_) & (buckets_.size() - 1)];
  std::pop_heap(b.begin(), b.end(), EventAfter{});
  Event ev = std::move(b.back());
  b.pop_back();
  floor_ns_ = ev.time.ns;  // pops are time-ordered: the floor is monotone
  --in_window_;
  --size_;
  if (size_ < buckets_.size() / 8 && buckets_.size() > kMinBuckets) rebuild();
  return ev;
}

// ------------------------------------------------- actor execution backend

namespace {

/// Production backend: each actor body runs on a pooled fiber stack. The
/// Fiber is created lazily on the first resume (the kStart event), so an
/// actor cancelled before it ever ran never allocates a stack — that is
/// what discard_if_unstarted() exploits during teardown.
class FiberActorContext final : public ActorContext {
 public:
  FiberActorContext(StackPool& pool, std::function<void()> run)
      : pool_(pool), run_(std::move(run)) {}

  void resume() override {
    if (!fiber_)
      fiber_ = std::make_unique<Fiber>(pool_, &FiberActorContext::entry, this);
    fiber_->switch_in();
  }

  void yield() override { fiber_->switch_out(); }

  bool discard_if_unstarted() override { return fiber_ == nullptr; }

  [[nodiscard]] const char* name() const override { return "fibers"; }

 private:
  static void entry(void* self) {
    static_cast<FiberActorContext*>(self)->run_();
  }

  StackPool& pool_;
  std::function<void()> run_;
  std::unique_ptr<Fiber> fiber_;
};

}  // namespace

ActorBackend actor_backend_from_env() {
  if (!fibers_available()) return ActorBackend::kThreads;
  const char* v = std::getenv("LCMPI_ACTORS");
  if (v != nullptr && std::strcmp(v, "threads") == 0) return ActorBackend::kThreads;
  return ActorBackend::kFibers;
}

// ----------------------------------------------------------------- Actor

namespace {
// The actor the calling code is executing inside, nullptr on the kernel
// side. thread_local so the two backends compose: under fibers every actor
// shares the kernel thread and resume_from_kernel() maintains the slot
// across switches; under threads each actor body pins its own thread's
// slot once (run_body) and the kernel thread's copy is simply unused by
// actor code.
thread_local Actor* g_current_actor = nullptr;
}  // namespace

Actor* Actor::current() { return g_current_actor; }

Actor::Actor(Kernel* kernel, std::string name, std::function<void(Actor&)> body)
    : kernel_(kernel), name_(std::move(name)), body_(std::move(body)) {}

Actor::~Actor() = default;

std::unique_ptr<Actor> Actor::detached(std::string name) {
  // Not make_unique: the constructor is private and only befriends types.
  return std::unique_ptr<Actor>(new Actor(nullptr, std::move(name), nullptr));
}

Actor::BindScope::BindScope(Actor* a) : prev_(g_current_actor) {
  g_current_actor = a;
}

Actor::BindScope::~BindScope() { g_current_actor = prev_; }

TimePoint Actor::now() const {
  return kernel_ == nullptr ? TimePoint{} : kernel_->now();
}

void Actor::run_body() {
  g_current_actor = this;  // pins the slot for thread-backend bodies
  if (!kernel_->cancelling_) {
    try {
      body_(*this);
    } catch (const ActorCancelled&) {
      // Kernel teardown: unwind quietly.
    } catch (...) {
      error_ = std::current_exception();
    }
  }
  finished_ = true;
}

void Actor::yield_to_kernel() {
  ctx_->yield();
  if (kernel_->cancelling_) throw ActorCancelled{};
}

void Actor::resume_from_kernel() {
  // Each resume comes back via exactly one yield (or the body finishing),
  // so count both one-way transfers here.
  kernel_->actor_switches_ += 2;
  g_current_actor = this;  // fibers run on this thread; see Actor::current
  ctx_->resume();
  g_current_actor = nullptr;
}

void Actor::block() {
  blocked_ = true;
  ++wake_epoch_;
  yield_to_kernel();
  blocked_ = false;
}

void Actor::advance(Duration d) {
  LCMPI_CHECK(d.ns >= 0, "advance by negative duration");
  wait_until(now() + d);
}

void Actor::wait_until(TimePoint t) {
  if (kernel_ == nullptr) return;  // detached: host work takes real time
  if (t <= now()) return;
  const std::uint64_t epoch = wake_epoch_ + 1;  // epoch block() will assign
  kernel_->schedule_wake_at(t, this, epoch, /*by_trigger=*/false,
                            /*with_cell=*/false);
  block();
}

void Actor::wait(Trigger& trigger) {
  LCMPI_CHECK(kernel_ != nullptr, "detached actor cannot wait on a sim Trigger");
  trigger.waiters_.push_back(this);
  block();
}

bool Actor::wait_with_timeout(Trigger& trigger, Duration timeout) {
  LCMPI_CHECK(kernel_ != nullptr, "detached actor cannot wait on a sim Trigger");
  trigger.waiters_.push_back(this);
  const std::uint64_t epoch = wake_epoch_ + 1;
  EventHandle timer = kernel_->schedule_wake_at(
      kernel_->now() + timeout, this, epoch, /*by_trigger=*/false, /*with_cell=*/true);
  woke_by_trigger_ = false;
  block();
  timer.cancel();
  if (!woke_by_trigger_) {
    // Timed out: remove our stale registration from the trigger.
    auto& ws = trigger.waiters_;
    ws.erase(std::remove(ws.begin(), ws.end(), this), ws.end());
  }
  return woke_by_trigger_;
}

// ----------------------------------------------------------------- Kernel

SchedBackend sched_backend_from_env() {
  const char* v = std::getenv("LCMPI_SCHED");
  if (v != nullptr && std::strcmp(v, "heap") == 0) return SchedBackend::kHeap;
  return SchedBackend::kCalendar;
}

std::unique_ptr<EventQueue> make_event_queue(SchedBackend backend) {
  if (backend == SchedBackend::kHeap)
    return std::make_unique<HeapEventQueue>();
  return std::make_unique<CalendarQueue>();
}

Kernel::Kernel() : Kernel(sched_backend_from_env(), actor_backend_from_env()) {}

Kernel::Kernel(SchedBackend backend)
    : Kernel(backend, actor_backend_from_env()) {}

Kernel::Kernel(ActorBackend actors)
    : Kernel(sched_backend_from_env(), actors) {}

Kernel::Kernel(SchedBackend backend, ActorBackend actors)
    : backend_(backend),
      actor_backend_(fibers_available() ? actors : ActorBackend::kThreads),
      queue_(make_event_queue(backend)) {
  if (actor_backend_ == ActorBackend::kFibers)
    stack_pool_ = std::make_unique<StackPool>();
}

Kernel::~Kernel() { cancel_all_actors(); }

void Kernel::cancel_all_actors() {
  cancelling_ = true;
  for (auto& a : actors_) {
    // Resume until the body has actually finished: an actor that catches
    // ActorCancelled and blocks again gets cancelled again, so no fiber
    // stack stays parked and no thread stays joinable-but-waiting. An
    // actor whose body never started is discarded outright when its
    // backend allows (fibers: no stack exists yet); thread contexts must
    // be resumed once so the parked thread can exit and be joined.
    while (!a->finished_) {
      if (!a->started_ && a->ctx_->discard_if_unstarted()) {
        a->finished_ = true;
        break;
      }
      a->resume_from_kernel();
    }
  }
}

ActorStats Kernel::actor_stats() const {
  ActorStats s;
  s.switches = actor_switches_;
  s.actors_spawned = actors_spawned_;
  if (stack_pool_ != nullptr) {
    const StackPoolStats& p = stack_pool_->stats();
    s.stacks_allocated = p.allocated;
    s.stack_reuses = p.reused;
    s.stack_high_water = p.high_water;
    s.stack_bytes = p.stack_bytes;
  }
  return s;
}

std::unique_ptr<ActorContext> Kernel::make_actor_context(Actor* a) {
  if (actor_backend_ == ActorBackend::kFibers)
    return std::make_unique<FiberActorContext>(*stack_pool_, [a] { a->run_body(); });
  return std::make_unique<ThreadActorContext>([a] { a->run_body(); });
}

std::uint32_t Kernel::borrow_cell() {
  if (free_cells_.empty()) {
    cells_.push_back(CancelCell{});
    free_cells_.push_back(static_cast<std::uint32_t>(cells_.size() - 1));
  }
  const std::uint32_t idx = free_cells_.back();
  free_cells_.pop_back();
  cells_[idx].cancelled = false;
  cells_[idx].in_use = true;
  return idx;
}

bool Kernel::release_cell(std::uint32_t idx) {
  CancelCell& c = cells_[idx];
  const bool was_cancelled = c.cancelled;
  c.in_use = false;
  c.cancelled = false;
  ++c.gen;  // invalidates outstanding handles to this borrow
  free_cells_.push_back(idx);
  return was_cancelled;
}

void Kernel::cancel_cell(std::uint32_t idx, std::uint32_t gen) {
  if (idx < cells_.size() && cells_[idx].in_use && cells_[idx].gen == gen)
    cells_[idx].cancelled = true;
}

void Kernel::push_event(Event ev) {
  LCMPI_CHECK(ev.time >= now_, "schedule_at in the past");
  ev.seq = next_seq_++;
  queue_->push(std::move(ev));
}

EventHandle Kernel::schedule(Duration delay, std::function<void()> fn) {
  LCMPI_CHECK(delay.ns >= 0, "schedule with negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Kernel::schedule_at(TimePoint t, std::function<void()> fn) {
  Event ev;
  ev.time = t;
  ev.kind = Event::Kind::kFn;
  ev.fn = std::move(fn);
  ev.cell = borrow_cell();
  EventHandle h(this, ev.cell, cells_[ev.cell].gen, alive_);
  push_event(std::move(ev));
  return h;
}

EventHandle Kernel::schedule_wake_at(TimePoint t, Actor* a, std::uint64_t epoch,
                                     bool by_trigger, bool with_cell) {
  Event ev;
  ev.time = t;
  ev.kind = Event::Kind::kWake;
  ev.actor = a;
  ev.epoch = epoch;
  ev.by_trigger = by_trigger;
  EventHandle h;
  if (with_cell) {
    ev.cell = borrow_cell();
    h = EventHandle(this, ev.cell, cells_[ev.cell].gen, alive_);
  }
  push_event(std::move(ev));
  return h;
}

Actor& Kernel::spawn(std::string name, std::function<void(Actor&)> body) {
  actors_.push_back(std::unique_ptr<Actor>(new Actor(this, std::move(name), std::move(body))));
  Actor* a = actors_.back().get();
  a->ctx_ = make_actor_context(a);
  ++actors_spawned_;
  Event ev;
  ev.time = now_;
  ev.kind = Event::Kind::kStart;
  ev.actor = a;
  push_event(std::move(ev));
  return *a;
}

void Kernel::wake(Actor* a, std::uint64_t epoch, bool by_trigger) {
  schedule_wake_at(now_, a, epoch, by_trigger, /*with_cell=*/false);
}

void Kernel::transfer_to(Actor* a) {
  a->resume_from_kernel();
  if (a->finished_ && a->error_) {
    std::exception_ptr err = a->error_;
    a->error_ = nullptr;
    std::rethrow_exception(err);
  }
}

std::size_t Kernel::live_actor_count() const {
  std::size_t n = 0;
  for (const auto& a : actors_)
    if (!a->finished_) ++n;
  return n;
}

void Kernel::dispatch(Event& ev) {
  switch (ev.kind) {
    case Event::Kind::kFn:
      ev.fn();
      break;
    case Event::Kind::kWake: {
      Actor* a = ev.actor;
      if (a->finished_ || !a->blocked_ || a->wake_epoch_ != ev.epoch) return;  // stale
      a->woke_by_trigger_ = ev.by_trigger;
      transfer_to(a);
      break;
    }
    case Event::Kind::kStart:
      ev.actor->started_ = true;
      transfer_to(ev.actor);
      break;
  }
}

void Kernel::drain_one_step(bool& made_progress) {
  made_progress = false;
  while (queue_->peek() != nullptr) {
    Event ev = queue_->pop();
    if (ev.cell != kNoCell && release_cell(ev.cell)) continue;  // cancelled
    LCMPI_CHECK(ev.time >= now_, "event queue went backwards");
    if (ev.time > time_limit_)
      throw SimTimeLimit("virtual time limit exceeded at " + to_string(ev.time));
    now_ = ev.time;
    ++events_executed_;
    dispatch(ev);
    made_progress = true;
    return;
  }
}

namespace {
struct FlagGuard {
  bool& flag;
  explicit FlagGuard(bool& f) : flag(f) { flag = true; }
  ~FlagGuard() { flag = false; }
};
}  // namespace

void Kernel::run() {
  LCMPI_CHECK(!running_, "Kernel::run is not reentrant");
  FlagGuard guard(running_);
  for (;;) {
    bool progressed = false;
    drain_one_step(progressed);
    if (progressed) continue;
    // Queue empty: either everything finished, or we are deadlocked.
    std::string stuck;
    for (const auto& a : actors_) {
      if (a->started_ && !a->finished_) {
        if (!stuck.empty()) stuck += ", ";
        stuck += a->name();
      }
    }
    if (!stuck.empty())
      throw SimDeadlock("simulation deadlock at " + to_string(now_) +
                        "; blocked actors: " + stuck);
    return;
  }
}

void Kernel::run_until(TimePoint t) {
  LCMPI_CHECK(!running_, "Kernel::run is not reentrant");
  FlagGuard guard(running_);
  for (;;) {
    const Event* top = queue_->peek();
    if (top == nullptr || top->time > t) break;
    bool progressed = false;
    drain_one_step(progressed);
    if (!progressed) break;
  }
  if (now_ < t) now_ = t;
}

}  // namespace lcmpi::sim
