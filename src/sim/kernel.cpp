#include "src/sim/kernel.h"

#include <algorithm>

namespace lcmpi::sim {

// ---------------------------------------------------------------- Trigger

void Trigger::notify_all() {
  if (waiters_.empty()) return;
  // Drain into the reusable scratch buffer first: a woken actor only gets a
  // wake *event* here (it runs later), but being defensive about re-entrant
  // registration keeps the iteration valid even if wake() ever runs waiter
  // code synchronously. Swapping (not copying) preserves both capacities.
  scratch_.swap(waiters_);
  for (Actor* a : scratch_) a->kernel().wake(a, a->wake_epoch_, /*by_trigger=*/true);
  scratch_.clear();
  // Shrink policy: a burst (e.g. a barrier over a large world) should not
  // pin its high-water capacity forever.
  if (scratch_.capacity() > 1024) scratch_.shrink_to_fit();
}

void Trigger::notify_one() {
  if (waiters_.empty()) return;
  Actor* a = waiters_.front();
  waiters_.erase(waiters_.begin());
  a->kernel().wake(a, a->wake_epoch_, /*by_trigger=*/true);
}

// ------------------------------------------------------------ EventHandle

void EventHandle::cancel() {
  if (kernel_ != nullptr && !alive_.expired()) kernel_->cancel_cell(cell_, gen_);
  kernel_ = nullptr;
  alive_.reset();
}

// ------------------------------------------------------------------ Actor

Actor::Actor(Kernel* kernel, std::string name, std::function<void(Actor&)> body)
    : kernel_(kernel), name_(std::move(name)), body_(std::move(body)) {}

Actor::~Actor() {
  if (thread_.joinable()) thread_.join();
}

TimePoint Actor::now() const { return kernel_->now(); }

void Actor::start_thread() {
  thread_ = std::thread([this] {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return turn_ == Turn::kActor; });
    }
    if (!kernel_->cancelling_) {
      try {
        body_(*this);
      } catch (const ActorCancelled&) {
        // Kernel teardown: unwind quietly.
      } catch (...) {
        error_ = std::current_exception();
      }
    }
    std::unique_lock<std::mutex> lock(mu_);
    finished_ = true;
    turn_ = Turn::kKernel;
    cv_.notify_all();
  });
}

void Actor::yield_to_kernel() {
  std::unique_lock<std::mutex> lock(mu_);
  turn_ = Turn::kKernel;
  cv_.notify_all();
  cv_.wait(lock, [this] { return turn_ == Turn::kActor; });
  if (kernel_->cancelling_) throw ActorCancelled{};
}

void Actor::resume_from_kernel() {
  std::unique_lock<std::mutex> lock(mu_);
  turn_ = Turn::kActor;
  cv_.notify_all();
  cv_.wait(lock, [this] { return turn_ == Turn::kKernel; });
}

void Actor::block() {
  blocked_ = true;
  ++wake_epoch_;
  yield_to_kernel();
  blocked_ = false;
}

void Actor::advance(Duration d) {
  LCMPI_CHECK(d.ns >= 0, "advance by negative duration");
  wait_until(now() + d);
}

void Actor::wait_until(TimePoint t) {
  if (t <= now()) return;
  const std::uint64_t epoch = wake_epoch_ + 1;  // epoch block() will assign
  kernel_->schedule_wake_at(t, this, epoch, /*by_trigger=*/false,
                            /*with_cell=*/false);
  block();
}

void Actor::wait(Trigger& trigger) {
  trigger.waiters_.push_back(this);
  block();
}

bool Actor::wait_with_timeout(Trigger& trigger, Duration timeout) {
  trigger.waiters_.push_back(this);
  const std::uint64_t epoch = wake_epoch_ + 1;
  EventHandle timer = kernel_->schedule_wake_at(
      kernel_->now() + timeout, this, epoch, /*by_trigger=*/false, /*with_cell=*/true);
  woke_by_trigger_ = false;
  block();
  timer.cancel();
  if (!woke_by_trigger_) {
    // Timed out: remove our stale registration from the trigger.
    auto& ws = trigger.waiters_;
    ws.erase(std::remove(ws.begin(), ws.end(), this), ws.end());
  }
  return woke_by_trigger_;
}

// ----------------------------------------------------------------- Kernel

Kernel::Kernel() { heap_.reserve(64); }

Kernel::~Kernel() { cancel_all_actors(); }

void Kernel::cancel_all_actors() {
  cancelling_ = true;
  for (auto& a : actors_) {
    if (a->finished_) continue;
    // Resume the blocked (or never-started) actor; its blocking call throws
    // ActorCancelled (or the start wrapper skips the body entirely).
    a->resume_from_kernel();
  }
}

std::uint32_t Kernel::borrow_cell() {
  if (free_cells_.empty()) {
    cells_.push_back(CancelCell{});
    free_cells_.push_back(static_cast<std::uint32_t>(cells_.size() - 1));
  }
  const std::uint32_t idx = free_cells_.back();
  free_cells_.pop_back();
  cells_[idx].cancelled = false;
  cells_[idx].in_use = true;
  return idx;
}

bool Kernel::release_cell(std::uint32_t idx) {
  CancelCell& c = cells_[idx];
  const bool was_cancelled = c.cancelled;
  c.in_use = false;
  c.cancelled = false;
  ++c.gen;  // invalidates outstanding handles to this borrow
  free_cells_.push_back(idx);
  return was_cancelled;
}

void Kernel::cancel_cell(std::uint32_t idx, std::uint32_t gen) {
  if (idx < cells_.size() && cells_[idx].in_use && cells_[idx].gen == gen)
    cells_[idx].cancelled = true;
}

void Kernel::push_event(Event ev) {
  LCMPI_CHECK(ev.time >= now_, "schedule_at in the past");
  ev.seq = next_seq_++;
  heap_.push_back(std::move(ev));
  std::push_heap(heap_.begin(), heap_.end(), EventAfter{});
}

EventHandle Kernel::schedule(Duration delay, std::function<void()> fn) {
  LCMPI_CHECK(delay.ns >= 0, "schedule with negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Kernel::schedule_at(TimePoint t, std::function<void()> fn) {
  Event ev;
  ev.time = t;
  ev.kind = Event::Kind::kFn;
  ev.fn = std::move(fn);
  ev.cell = borrow_cell();
  EventHandle h(this, ev.cell, cells_[ev.cell].gen, alive_);
  push_event(std::move(ev));
  return h;
}

EventHandle Kernel::schedule_wake_at(TimePoint t, Actor* a, std::uint64_t epoch,
                                     bool by_trigger, bool with_cell) {
  Event ev;
  ev.time = t;
  ev.kind = Event::Kind::kWake;
  ev.actor = a;
  ev.epoch = epoch;
  ev.by_trigger = by_trigger;
  EventHandle h;
  if (with_cell) {
    ev.cell = borrow_cell();
    h = EventHandle(this, ev.cell, cells_[ev.cell].gen, alive_);
  }
  push_event(std::move(ev));
  return h;
}

Actor& Kernel::spawn(std::string name, std::function<void(Actor&)> body) {
  actors_.push_back(std::unique_ptr<Actor>(new Actor(this, std::move(name), std::move(body))));
  Actor* a = actors_.back().get();
  a->start_thread();
  Event ev;
  ev.time = now_;
  ev.kind = Event::Kind::kStart;
  ev.actor = a;
  push_event(std::move(ev));
  return *a;
}

void Kernel::wake(Actor* a, std::uint64_t epoch, bool by_trigger) {
  schedule_wake_at(now_, a, epoch, by_trigger, /*with_cell=*/false);
}

void Kernel::transfer_to(Actor* a) {
  a->resume_from_kernel();
  if (a->finished_ && a->error_) {
    std::exception_ptr err = a->error_;
    a->error_ = nullptr;
    std::rethrow_exception(err);
  }
}

std::size_t Kernel::live_actor_count() const {
  std::size_t n = 0;
  for (const auto& a : actors_)
    if (!a->finished_) ++n;
  return n;
}

void Kernel::dispatch(Event& ev) {
  switch (ev.kind) {
    case Event::Kind::kFn:
      ev.fn();
      break;
    case Event::Kind::kWake: {
      Actor* a = ev.actor;
      if (a->finished_ || !a->blocked_ || a->wake_epoch_ != ev.epoch) return;  // stale
      a->woke_by_trigger_ = ev.by_trigger;
      transfer_to(a);
      break;
    }
    case Event::Kind::kStart:
      ev.actor->started_ = true;
      transfer_to(ev.actor);
      break;
  }
}

void Kernel::drain_one_step(bool& made_progress) {
  made_progress = false;
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), EventAfter{});
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    if (ev.cell != kNoCell && release_cell(ev.cell)) continue;  // cancelled
    LCMPI_CHECK(ev.time >= now_, "event queue went backwards");
    if (ev.time > time_limit_)
      throw SimTimeLimit("virtual time limit exceeded at " + to_string(ev.time));
    now_ = ev.time;
    ++events_executed_;
    dispatch(ev);
    made_progress = true;
    return;
  }
}

namespace {
struct FlagGuard {
  bool& flag;
  explicit FlagGuard(bool& f) : flag(f) { flag = true; }
  ~FlagGuard() { flag = false; }
};
}  // namespace

void Kernel::run() {
  LCMPI_CHECK(!running_, "Kernel::run is not reentrant");
  FlagGuard guard(running_);
  for (;;) {
    bool progressed = false;
    drain_one_step(progressed);
    if (progressed) continue;
    // Queue empty: either everything finished, or we are deadlocked.
    std::string stuck;
    for (const auto& a : actors_) {
      if (a->started_ && !a->finished_) {
        if (!stuck.empty()) stuck += ", ";
        stuck += a->name();
      }
    }
    if (!stuck.empty())
      throw SimDeadlock("simulation deadlock at " + to_string(now_) +
                        "; blocked actors: " + stuck);
    return;
  }
}

void Kernel::run_until(TimePoint t) {
  LCMPI_CHECK(!running_, "Kernel::run is not reentrant");
  FlagGuard guard(running_);
  while (!heap_.empty()) {
    if (heap_.front().time > t) break;
    bool progressed = false;
    drain_one_step(progressed);
    if (!progressed) break;
  }
  if (now_ < t) now_ = t;
}

}  // namespace lcmpi::sim
