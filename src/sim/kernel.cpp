#include "src/sim/kernel.h"

#include <algorithm>

namespace lcmpi::sim {

// ---------------------------------------------------------------- Trigger

void Trigger::notify_all() {
  // Waiters re-register if their predicate still fails, so clearing the
  // list up front is correct even if a woken actor immediately re-waits.
  std::vector<Actor*> waiters;
  waiters.swap(waiters_);
  for (Actor* a : waiters) a->kernel().wake(a, a->wake_epoch_, /*by_trigger=*/true);
}

void Trigger::notify_one() {
  if (waiters_.empty()) return;
  Actor* a = waiters_.front();
  waiters_.erase(waiters_.begin());
  a->kernel().wake(a, a->wake_epoch_, /*by_trigger=*/true);
}

// ------------------------------------------------------------ EventHandle

void EventHandle::cancel() {
  if (cell_) *cell_ = true;
  cell_.reset();
}

// ------------------------------------------------------------------ Actor

Actor::Actor(Kernel* kernel, std::string name, std::function<void(Actor&)> body)
    : kernel_(kernel), name_(std::move(name)), body_(std::move(body)) {}

Actor::~Actor() {
  if (thread_.joinable()) thread_.join();
}

TimePoint Actor::now() const { return kernel_->now(); }

void Actor::start_thread() {
  thread_ = std::thread([this] {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return turn_ == Turn::kActor; });
    }
    if (!kernel_->cancelling_) {
      try {
        body_(*this);
      } catch (const ActorCancelled&) {
        // Kernel teardown: unwind quietly.
      } catch (...) {
        error_ = std::current_exception();
      }
    }
    std::unique_lock<std::mutex> lock(mu_);
    finished_ = true;
    turn_ = Turn::kKernel;
    cv_.notify_all();
  });
}

void Actor::yield_to_kernel() {
  std::unique_lock<std::mutex> lock(mu_);
  turn_ = Turn::kKernel;
  cv_.notify_all();
  cv_.wait(lock, [this] { return turn_ == Turn::kActor; });
  if (kernel_->cancelling_) throw ActorCancelled{};
}

void Actor::resume_from_kernel() {
  std::unique_lock<std::mutex> lock(mu_);
  turn_ = Turn::kActor;
  cv_.notify_all();
  cv_.wait(lock, [this] { return turn_ == Turn::kKernel; });
}

void Actor::block() {
  blocked_ = true;
  ++wake_epoch_;
  yield_to_kernel();
  blocked_ = false;
}

void Actor::advance(Duration d) {
  LCMPI_CHECK(d.ns >= 0, "advance by negative duration");
  wait_until(now() + d);
}

void Actor::wait_until(TimePoint t) {
  if (t <= now()) return;
  const std::uint64_t epoch = wake_epoch_ + 1;  // epoch block() will assign
  kernel_->schedule_at(t, [this, epoch] { kernel_->wake(this, epoch, false); });
  block();
}

void Actor::wait(Trigger& trigger) {
  trigger.waiters_.push_back(this);
  block();
}

bool Actor::wait_with_timeout(Trigger& trigger, Duration timeout) {
  trigger.waiters_.push_back(this);
  const std::uint64_t epoch = wake_epoch_ + 1;
  EventHandle timer = kernel_->schedule(
      timeout, [this, epoch] { kernel_->wake(this, epoch, false); });
  woke_by_trigger_ = false;
  block();
  timer.cancel();
  if (!woke_by_trigger_) {
    // Timed out: remove our stale registration from the trigger.
    auto& ws = trigger.waiters_;
    ws.erase(std::remove(ws.begin(), ws.end(), this), ws.end());
  }
  return woke_by_trigger_;
}

// ----------------------------------------------------------------- Kernel

Kernel::~Kernel() { cancel_all_actors(); }

void Kernel::cancel_all_actors() {
  cancelling_ = true;
  for (auto& a : actors_) {
    if (a->finished_) continue;
    // Resume the blocked (or never-started) actor; its blocking call throws
    // ActorCancelled (or the start wrapper skips the body entirely).
    a->resume_from_kernel();
  }
}

EventHandle Kernel::schedule(Duration delay, std::function<void()> fn) {
  LCMPI_CHECK(delay.ns >= 0, "schedule with negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Kernel::schedule_at(TimePoint t, std::function<void()> fn) {
  LCMPI_CHECK(t >= now_, "schedule_at in the past");
  auto cancelled = std::make_shared<bool>(false);
  queue_.push(Event{t, next_seq_++, std::move(fn), cancelled});
  return EventHandle(std::move(cancelled));
}

Actor& Kernel::spawn(std::string name, std::function<void(Actor&)> body) {
  actors_.push_back(std::unique_ptr<Actor>(new Actor(this, std::move(name), std::move(body))));
  Actor* a = actors_.back().get();
  a->start_thread();
  schedule_at(now_, [this, a] {
    a->started_ = true;
    transfer_to(a);
  });
  return *a;
}

void Kernel::wake(Actor* a, std::uint64_t epoch, bool by_trigger) {
  schedule_at(now_, [this, a, epoch, by_trigger] {
    if (a->finished_ || !a->blocked_ || a->wake_epoch_ != epoch) return;  // stale
    a->woke_by_trigger_ = by_trigger;
    transfer_to(a);
  });
}

void Kernel::transfer_to(Actor* a) {
  a->resume_from_kernel();
  if (a->finished_ && a->error_) {
    std::exception_ptr err = a->error_;
    a->error_ = nullptr;
    std::rethrow_exception(err);
  }
}

std::size_t Kernel::live_actor_count() const {
  std::size_t n = 0;
  for (const auto& a : actors_)
    if (!a->finished_) ++n;
  return n;
}

void Kernel::drain_one_step(bool& made_progress) {
  made_progress = false;
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (ev.cancelled && *ev.cancelled) continue;
    LCMPI_CHECK(ev.time >= now_, "event queue went backwards");
    if (ev.time > time_limit_)
      throw SimTimeLimit("virtual time limit exceeded at " + to_string(ev.time));
    now_ = ev.time;
    ++events_executed_;
    ev.fn();
    made_progress = true;
    return;
  }
}

namespace {
struct FlagGuard {
  bool& flag;
  explicit FlagGuard(bool& f) : flag(f) { flag = true; }
  ~FlagGuard() { flag = false; }
};
}  // namespace

void Kernel::run() {
  LCMPI_CHECK(!running_, "Kernel::run is not reentrant");
  FlagGuard guard(running_);
  for (;;) {
    bool progressed = false;
    drain_one_step(progressed);
    if (progressed) continue;
    // Queue empty: either everything finished, or we are deadlocked.
    std::string stuck;
    for (const auto& a : actors_) {
      if (a->started_ && !a->finished_) {
        if (!stuck.empty()) stuck += ", ";
        stuck += a->name();
      }
    }
    if (!stuck.empty())
      throw SimDeadlock("simulation deadlock at " + to_string(now_) +
                        "; blocked actors: " + stuck);
    return;
  }
}

void Kernel::run_until(TimePoint t) {
  LCMPI_CHECK(!running_, "Kernel::run is not reentrant");
  FlagGuard guard(running_);
  while (!queue_.empty()) {
    if (queue_.top().time > t) break;
    bool progressed = false;
    drain_one_step(progressed);
    if (!progressed) break;
  }
  if (now_ < t) now_ = t;
}

}  // namespace lcmpi::sim
