#include "src/sim/fiber.h"

#include <cstdlib>
#include <cstring>

#include "src/util/status.h"

// Implementation selection. The hand-rolled assembly switch is compiled in
// by CMake (fiber_switch_<arch>.S) which also defines LCMPI_FIBER_ASM; any
// other POSIX target falls back to ucontext over the same pooled stacks.
#if defined(LCMPI_FIBER_ASM)
// assembly path: lcmpi_fiber_switch / lcmpi_fiber_trampoline from the .S
#elif defined(__unix__) || defined(__APPLE__)
#define LCMPI_FIBER_UCONTEXT 1
#include <ucontext.h>
#else
#define LCMPI_FIBER_NONE 1
#endif

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define LCMPI_FIBER_MMAP 1
#endif

#if defined(__SANITIZE_ADDRESS__)
#define LCMPI_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define LCMPI_ASAN 1
#endif
#endif

#if defined(LCMPI_ASAN)
#include <sanitizer/common_interface_defs.h>
#endif

#if defined(LCMPI_FIBER_ASM)
extern "C" {
/// Saves the callee-saved register set (+ FP control state) on the current
/// stack, stores the resulting stack pointer into *save_sp, switches to
/// target_sp and restores. Defined in fiber_switch_<arch>.S.
void lcmpi_fiber_switch(void** save_sp, void* target_sp);
/// First "return address" of a seeded fiber stack: moves the Fiber* from
/// its seeded register into the argument register and calls
/// lcmpi_fiber_entry.
void lcmpi_fiber_trampoline();
}
#endif

namespace lcmpi::sim {
namespace {

constexpr std::size_t kDefaultStackBytes = std::size_t{1} << 20;  // 1 MiB

// ASan fake-stack annotations; no-ops outside ASan builds. The protocol
// (sanitizer/common_interface_defs.h): call start just before abandoning a
// stack, finish first thing on the stack switched to; pass nullptr as the
// save slot on a fiber's terminal switch so ASan frees its fake stack.
inline void asan_start(void** fake_save, const void* bottom, std::size_t size) {
#if defined(LCMPI_ASAN)
  __sanitizer_start_switch_fiber(fake_save, bottom, size);
#else
  (void)fake_save; (void)bottom; (void)size;
#endif
}

inline void asan_finish(void* fake, const void** bottom_old, std::size_t* size_old) {
#if defined(LCMPI_ASAN)
  __sanitizer_finish_switch_fiber(fake, bottom_old, size_old);
#else
  (void)fake; (void)bottom_old; (void)size_old;
#endif
}

}  // namespace

bool fibers_available() {
#if defined(LCMPI_FIBER_NONE)
  return false;
#else
  return true;
#endif
}

std::size_t fiber_stack_bytes_from_env() {
  const char* v = std::getenv("LCMPI_FIBER_STACK_KB");
  if (v != nullptr) {
    char* end = nullptr;
    const long kb = std::strtol(v, &end, 10);
    if (end != v && kb > 0) return static_cast<std::size_t>(kb) * 1024;
  }
  return kDefaultStackBytes;
}

// ------------------------------------------------------------- FiberStack

FiberStack::FiberStack(std::size_t usable_bytes) {
#if defined(LCMPI_FIBER_MMAP)
  const auto page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  usable_ = (usable_bytes + page - 1) / page * page;
  map_bytes_ = usable_ + page;  // one guard page below the usable region
  void* m = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  LCMPI_CHECK(m != MAP_FAILED, "fiber stack mmap failed");
  map_ = static_cast<std::byte*>(m);
  LCMPI_CHECK(::mprotect(map_, page, PROT_NONE) == 0,
              "fiber stack guard-page mprotect failed");
  base_ = map_ + page;
  mmapped_ = true;
#else
  usable_ = (usable_bytes + 63) / 64 * 64;
  map_bytes_ = usable_;
  map_ = new std::byte[map_bytes_]();  // zero-initialized, like fresh pages
  base_ = map_;
#endif
}

FiberStack::~FiberStack() {
#if defined(LCMPI_FIBER_MMAP)
  if (map_ != nullptr) ::munmap(map_, map_bytes_);
#else
  delete[] map_;
#endif
}

std::size_t FiberStack::touched() const {
  // Fresh anonymous pages (and reset() regions) read as zero, so the
  // deepest nonzero word bounds the stack's high-water mark. Word-wise
  // scan from the bottom: the untouched span is the common case.
  const auto* words = reinterpret_cast<const std::uint64_t*>(base_);
  const std::size_t n = usable_ / sizeof(std::uint64_t);
  std::size_t i = 0;
  while (i < n && words[i] == 0) ++i;
  return usable_ - i * sizeof(std::uint64_t);
}

void FiberStack::reset(std::size_t touched_bytes) {
  if (touched_bytes == 0) return;
  if (touched_bytes > usable_) touched_bytes = usable_;
#if defined(__linux__)
  // A deeply-used stack is cheaper to hand back to the kernel wholesale:
  // MADV_DONTNEED drops the pages and the next touch reads fresh zeros.
  if (mmapped_ && touched_bytes >= (std::size_t{512} << 10)) {
    if (::madvise(base_, usable_, MADV_DONTNEED) == 0) return;
  }
#endif
  std::memset(base_ + (usable_ - touched_bytes), 0, touched_bytes);
}

// -------------------------------------------------------------- StackPool

StackPool::StackPool(std::size_t usable_bytes)
    : usable_bytes_(usable_bytes != 0 ? usable_bytes
                                      : fiber_stack_bytes_from_env()) {
  stats_.stack_bytes = usable_bytes_;
}

StackPool::~StackPool() = default;

FiberStack* StackPool::acquire() {
  if (!free_.empty()) {
    FiberStack* s = free_.back();
    free_.pop_back();
    ++stats_.reused;
    return s;
  }
  all_.push_back(std::make_unique<FiberStack>(usable_bytes_));
  ++stats_.allocated;
  stats_.stack_bytes = all_.back()->usable();
  return all_.back().get();
}

void StackPool::release(FiberStack* stack) {
  const std::size_t hw = stack->touched();
  if (hw > stats_.high_water) stats_.high_water = hw;
  stack->reset(hw);
  free_.push_back(stack);
}

// ------------------------------------------------------------------ Fiber

#if defined(LCMPI_FIBER_UCONTEXT)
namespace {
struct UcontextState {
  ucontext_t fiber;
  ucontext_t caller;
};

void ucontext_entry(unsigned int hi, unsigned int lo) {
  const auto p = (static_cast<std::uintptr_t>(hi) << 32) |
                 static_cast<std::uintptr_t>(lo);
  lcmpi_fiber_entry(reinterpret_cast<void*>(p));
}
}  // namespace
#endif

Fiber::Fiber(StackPool& pool, Entry entry, void* arg)
    : pool_(pool), entry_(entry), arg_(arg) {
  LCMPI_CHECK(fibers_available(), "no fiber implementation on this target");
  stack_ = pool_.acquire();
#if defined(LCMPI_FIBER_ASM)
  // Seed the stack with the frame lcmpi_fiber_switch restores from, so the
  // first switch_in "returns" into the trampoline with this Fiber* in the
  // seeded register. The stack is zeroed, so only nonzero slots are set.
  auto* sp = static_cast<std::uintptr_t*>(stack_->top());
#if defined(__x86_64__)
  // Layout (top down), matching fiber_switch_x86_64.S:
  //   [ret=trampoline][rbp][rbx][r12=Fiber*][r13=entry][r14][r15][fpctrl]
  std::uint32_t mxcsr = 0x1F80;
  std::uint16_t fcw = 0x037F;
  asm volatile("stmxcsr %0" : "=m"(mxcsr));
  asm volatile("fnstcw %0" : "=m"(fcw));
  *--sp = reinterpret_cast<std::uintptr_t>(&lcmpi_fiber_trampoline);
  --sp;                                                    // rbp = 0
  --sp;                                                    // rbx = 0
  *--sp = reinterpret_cast<std::uintptr_t>(this);          // r12
  *--sp = reinterpret_cast<std::uintptr_t>(&lcmpi_fiber_entry);  // r13
  --sp;                                                    // r14 = 0
  --sp;                                                    // r15 = 0
  *--sp = static_cast<std::uintptr_t>(mxcsr) |
          (static_cast<std::uintptr_t>(fcw) << 32);        // fp control
#elif defined(__aarch64__)
  // Layout matching fiber_switch_aarch64.S: a 160-byte save area holding
  // x19,x20 | x21..x28 | x29,x30 | d8..d15; x19 = Fiber*, x20 = entry,
  // x30 (lr) = trampoline.
  sp -= 160 / sizeof(std::uintptr_t);
  sp[0] = reinterpret_cast<std::uintptr_t>(this);                 // x19
  sp[1] = reinterpret_cast<std::uintptr_t>(&lcmpi_fiber_entry);   // x20
  sp[11] = reinterpret_cast<std::uintptr_t>(&lcmpi_fiber_trampoline);  // x30
#else
#error "LCMPI_FIBER_ASM defined for an architecture without a seeding recipe"
#endif
  fiber_sp_ = sp;
#elif defined(LCMPI_FIBER_UCONTEXT)
  auto* st = new UcontextState();
  impl_ = st;
  LCMPI_CHECK(::getcontext(&st->fiber) == 0, "getcontext failed");
  st->fiber.uc_stack.ss_sp = stack_->base();
  st->fiber.uc_stack.ss_size = stack_->usable();
  st->fiber.uc_link = nullptr;
  const auto p = reinterpret_cast<std::uintptr_t>(this);
  ::makecontext(&st->fiber, reinterpret_cast<void (*)()>(&ucontext_entry), 2,
                static_cast<unsigned int>(p >> 32),
                static_cast<unsigned int>(p & 0xFFFFFFFFu));
#endif
}

Fiber::~Fiber() {
  // A fiber abandoned while suspended mid-body would leave frames
  // un-unwound; the kernel's cancellation protocol guarantees actors run
  // to completion (ActorCancelled) before their fiber is destroyed.
  release_stack();
#if defined(LCMPI_FIBER_UCONTEXT)
  delete static_cast<UcontextState*>(impl_);
#endif
}

void Fiber::release_stack() {
  if (stack_ != nullptr) {
    pool_.release(stack_);
    stack_ = nullptr;
  }
}

void Fiber::switch_in() {
  LCMPI_CHECK(!finished_ && stack_ != nullptr, "switch_in on a finished fiber");
  asan_start(&asan_caller_fake_, stack_->base(), stack_->usable());
#if defined(LCMPI_FIBER_ASM)
  lcmpi_fiber_switch(&caller_sp_, fiber_sp_);
#elif defined(LCMPI_FIBER_UCONTEXT)
  auto* st = static_cast<UcontextState*>(impl_);
  LCMPI_CHECK(::swapcontext(&st->caller, &st->fiber) == 0, "swapcontext failed");
#endif
  asan_finish(asan_caller_fake_, nullptr, nullptr);
  // The fiber finished: its stack is idle again, so recycle it now — a
  // later-spawned actor in the same run reuses it while it is cache-warm.
  if (finished_) release_stack();
}

void Fiber::switch_out() {
  asan_start(&asan_fiber_fake_, asan_caller_bottom_, asan_caller_size_);
#if defined(LCMPI_FIBER_ASM)
  lcmpi_fiber_switch(&fiber_sp_, caller_sp_);
#elif defined(LCMPI_FIBER_UCONTEXT)
  auto* st = static_cast<UcontextState*>(impl_);
  LCMPI_CHECK(::swapcontext(&st->fiber, &st->caller) == 0, "swapcontext failed");
#endif
  // Resumed: record where we came from so the next switch_out can hand
  // ASan the caller's (possibly different) stack bounds.
  asan_finish(asan_fiber_fake_, &asan_caller_bottom_, &asan_caller_size_);
}

void Fiber::run_entry(Fiber* f) {
  // First words executed on the fiber stack: complete the ASan handover
  // and learn the caller stack's bounds for later switch-backs.
  asan_finish(f->asan_fiber_fake_, &f->asan_caller_bottom_,
              &f->asan_caller_size_);
  f->entry_(f->arg_);
  f->finished_ = true;
  // Terminal switch: nullptr save slot tells ASan this fake stack dies.
  asan_start(nullptr, f->asan_caller_bottom_, f->asan_caller_size_);
#if defined(LCMPI_FIBER_ASM)
  lcmpi_fiber_switch(&f->fiber_sp_, f->caller_sp_);
#elif defined(LCMPI_FIBER_UCONTEXT)
  auto* st = static_cast<UcontextState*>(f->impl_);
  ::swapcontext(&st->fiber, &st->caller);
#endif
  std::abort();  // a finished fiber must never be resumed
}

}  // namespace lcmpi::sim

extern "C" void lcmpi_fiber_entry(void* fiber) {
  lcmpi::sim::Fiber::run_entry(static_cast<lcmpi::sim::Fiber*>(fiber));
}
