// Mailbox<T> — an unbounded FIFO channel between event handlers and actors.
//
// Producers (usually network completion callbacks on the kernel thread)
// push values; consumer actors block until a value is available. Built on
// Trigger, so wakeups follow the kernel's deterministic event order.
#pragma once

#include <deque>
#include <optional>
#include <utility>

#include "src/sim/kernel.h"

namespace lcmpi::sim {

template <typename T>
class Mailbox {
 public:
  Mailbox() = default;
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  void push(T value) {
    items_.push_back(std::move(value));
    trigger_.notify_all();
  }

  /// Non-blocking take.
  std::optional<T> try_pop() {
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    return v;
  }

  /// Blocking take (actor context only).
  T pop(Actor& self) {
    for (;;) {
      if (auto v = try_pop()) return std::move(*v);
      self.wait(trigger_);
    }
  }

  /// Blocking take with timeout; nullopt on timeout.
  std::optional<T> pop_with_timeout(Actor& self, Duration timeout) {
    const TimePoint deadline = self.now() + timeout;
    for (;;) {
      if (auto v = try_pop()) return v;
      const Duration remaining = deadline - self.now();
      if (remaining.ns <= 0) return std::nullopt;
      self.wait_with_timeout(trigger_, remaining);
      if (self.now() >= deadline && items_.empty()) return std::nullopt;
    }
  }

  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] Trigger& trigger() { return trigger_; }

 private:
  std::deque<T> items_;
  Trigger trigger_;
};

}  // namespace lcmpi::sim
