// Stackful user-space fibers — the execution substrate of the kernel's
// production actor backend.
//
// A Fiber is a cooperative coroutine with its own call stack, switched
// entirely in user space: saving and restoring the callee-saved register
// set and the stack pointer, nothing else. One switch is a few dozen
// instructions (no syscall, no futex, no scheduler), which is what lets a
// simulated MPI call cross the kernel↔actor boundary in tens of
// nanoseconds instead of the microseconds a mutex/condvar thread handoff
// costs (that handoff survives as ThreadActorContext in kernel_ref.h, the
// executable reference the fiber backend is tested against).
//
// Switch mechanics, per target:
//  * x86-64 / AArch64 (GNU toolchains): hand-rolled assembly
//    (fiber_switch_<arch>.S) saving the System V callee-saved registers
//    plus the FP control state; a new fiber's stack is pre-seeded with a
//    frame whose return address is a tiny trampoline that moves the Fiber
//    pointer into the argument register and calls the C++ entry.
//  * other POSIX targets: ucontext_t (makecontext/swapcontext) over the
//    same pooled stacks — slower (it saves the signal mask via a syscall)
//    but correct.
//
// Stacks come from a StackPool: mmap'd regions with a PROT_NONE guard
// page at the low end, so running off the end of a fiber stack faults
// loudly instead of silently corrupting a neighbouring allocation. Stacks
// are recycled across actor lifetimes (an actor that finishes returns its
// stack to the pool before the next one starts); because fresh anonymous
// pages read as zero, the pool measures each stack's high-water mark on
// release by scanning for the deepest non-zero byte, then re-zeroes only
// the touched region — memory cost tracks actual use, not the configured
// size. The usable stack size is configurable (LCMPI_FIBER_STACK_KB, or
// StackPool's constructor argument).
//
// Exceptions never cross a switch: ActorCancelled and actor errors are
// thrown and caught on the fiber's own stack (Actor::run_body), so the
// unwinder never has to walk through the hand-written trampoline frame.
//
// Under AddressSanitizer the switches are annotated with
// __sanitizer_{start,finish}_switch_fiber so ASan tracks the stack
// changes instead of reporting false positives.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

/// C entry point the context-switch trampoline calls on a fresh fiber
/// stack (the asm seeds a register with the Fiber*; the trampoline moves
/// it into the argument register and calls here). Never returns.
extern "C" void lcmpi_fiber_entry(void* fiber);

namespace lcmpi::sim {

/// Whether this build has a stackful-fiber implementation (always true on
/// POSIX; the kernel falls back to the thread backend when false).
[[nodiscard]] bool fibers_available();

/// One fiber stack: a mmap'd region with a guard page below the usable
/// range. Usable memory is zero on first use; the pool keeps it zeroed
/// between borrows so high-water scans stay meaningful.
class FiberStack {
 public:
  explicit FiberStack(std::size_t usable_bytes);
  ~FiberStack();
  FiberStack(const FiberStack&) = delete;
  FiberStack& operator=(const FiberStack&) = delete;

  /// Highest usable address (16-byte aligned); stacks grow down from here.
  [[nodiscard]] void* top() const { return base_ + usable_; }
  [[nodiscard]] std::byte* base() const { return base_; }
  [[nodiscard]] std::size_t usable() const { return usable_; }

  /// Bytes from the deepest non-zero byte to the top — the observed stack
  /// use since the region was last zeroed. O(usable) worst case but scans
  /// word-at-a-time through the untouched (zero) region.
  [[nodiscard]] std::size_t touched() const;

  /// Re-zeroes the touched region so the next borrower starts clean.
  void reset(std::size_t touched_bytes);

 private:
  std::byte* map_ = nullptr;    // mmap base (guard page) or heap fallback
  std::size_t map_bytes_ = 0;   // total mapped (guard + usable)
  std::byte* base_ = nullptr;   // lowest usable address
  std::size_t usable_ = 0;
  bool mmapped_ = false;
};

/// Host-side counters for a pool (folded into Kernel::actor_stats).
struct StackPoolStats {
  std::uint64_t allocated = 0;   // fresh stacks mmap'd
  std::uint64_t reused = 0;      // borrows served from the free list
  std::size_t high_water = 0;    // deepest stack use observed at any release
  std::size_t stack_bytes = 0;   // configured usable bytes per stack
};

/// Free list of fiber stacks, owned by one Kernel (single-threaded by the
/// cooperative scheduling discipline, so no locking). Released stacks are
/// measured, re-zeroed, and recycled in LIFO order — the hot cache-warm
/// stack goes back out first.
class StackPool {
 public:
  /// `usable_bytes` is rounded up to whole pages; 0 picks the default
  /// (LCMPI_FIBER_STACK_KB if set, else 1 MiB).
  explicit StackPool(std::size_t usable_bytes = 0);
  ~StackPool();
  StackPool(const StackPool&) = delete;
  StackPool& operator=(const StackPool&) = delete;

  FiberStack* acquire();
  void release(FiberStack* stack);

  [[nodiscard]] const StackPoolStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t free_count() const { return free_.size(); }

 private:
  std::size_t usable_bytes_;
  std::vector<std::unique_ptr<FiberStack>> all_;
  std::vector<FiberStack*> free_;
  StackPoolStats stats_;
};

/// Reads LCMPI_FIBER_STACK_KB (usable kilobytes per fiber stack); returns
/// the default when unset or unparsable.
[[nodiscard]] std::size_t fiber_stack_bytes_from_env();

/// A stackful coroutine bound to a pooled stack. The entry function runs
/// on the fiber's stack; when it returns, the fiber is finished and
/// control lands back in the most recent switch_in() caller.
class Fiber {
 public:
  using Entry = void (*)(void*);

  /// Acquires a stack from `pool` and seeds it so the first switch_in()
  /// calls entry(arg) on it. The stack is returned to the pool by the
  /// destructor (or as soon as the fiber finishes, by switch_in).
  Fiber(StackPool& pool, Entry entry, void* arg);
  ~Fiber();
  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Transfers control into the fiber; returns when the fiber calls
  /// switch_out() or its entry returns. Must not be called from inside
  /// the fiber, nor after finished().
  void switch_in();

  /// Transfers control back to the switch_in() caller. Must be called
  /// from inside the fiber.
  void switch_out();

  [[nodiscard]] bool finished() const { return finished_; }

 private:
  friend void ::lcmpi_fiber_entry(void*);

  static void run_entry(Fiber* f);  // runs on the fiber stack
  void release_stack();

  StackPool& pool_;
  FiberStack* stack_ = nullptr;
  Entry entry_;
  void* arg_;
  bool finished_ = false;

  // Saved stack pointers (asm path) or ucontext_t storage (fallback);
  // opaque so this header stays libc-agnostic.
  void* fiber_sp_ = nullptr;
  void* caller_sp_ = nullptr;
  void* impl_ = nullptr;  // ucontext fallback state, if any

  // AddressSanitizer fake-stack bookkeeping (no-ops outside ASan builds).
  void* asan_caller_fake_ = nullptr;
  void* asan_fiber_fake_ = nullptr;
  const void* asan_caller_bottom_ = nullptr;
  std::size_t asan_caller_size_ = 0;
};

}  // namespace lcmpi::sim
