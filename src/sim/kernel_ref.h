// Reference backends — the executable specifications the fast paths are
// differentially tested against.
//
// HeapEventQueue is the original binary-heap-over-vector event list of
// sim::Kernel, retained verbatim after the calendar-queue rewrite in
// kernel.h/kernel.cpp. It defines the semantics the fast path must
// reproduce *exactly*: events pop in strictly increasing (time, seq) order,
// seq being the kernel-assigned insertion sequence number — the FIFO
// tie-break that makes every simulation repeatable. Because that order is a
// strict total order, any two correct backends execute the identical event
// schedule, and therefore produce bit-identical virtual times; the golden
// figures in EXPERIMENTS.md are pinned against this property.
//
// ThreadActorContext is, likewise, the original actor execution mechanism
// — one std::thread per actor with a mutex/condvar turn-taking handoff —
// retained verbatim after the stackful-fiber rewrite (src/sim/fiber.h).
// Which side runs is a pure function of the kernel's event order, so both
// actor backends produce bit-identical virtual-time behaviour; only the
// host-time cost of a switch differs.
//
// Used by tests/sched_property_test.cpp (randomized differential
// equivalence), tests/sched_fuzz_test.cpp (EventHandle lifecycle parity),
// tests/actor_backend_test.cpp (actor order/cancellation parity),
// bench/host_perf (the events/sec and switches/sec baselines), and
// selectable at runtime via LCMPI_SCHED=heap / LCMPI_ACTORS=threads or the
// Kernel backend constructors.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/sim/kernel.h"

namespace lcmpi::sim {

/// Binary heap over a plain vector, ordered by EventAfter (reference
/// implementation). Reserved up front, entries moved out on pop, never
/// copied. O(log n) push and pop, O(1) peek.
class HeapEventQueue final : public EventQueue {
 public:
  HeapEventQueue() { heap_.reserve(64); }

  void push(Event&& ev) override {
    heap_.push_back(std::move(ev));
    std::push_heap(heap_.begin(), heap_.end(), EventAfter{});
  }

  const Event* peek() override { return heap_.empty() ? nullptr : &heap_.front(); }

  Event pop() override {
    std::pop_heap(heap_.begin(), heap_.end(), EventAfter{});
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    return ev;
  }

  [[nodiscard]] std::size_t size() const override { return heap_.size(); }
  [[nodiscard]] const char* name() const override { return "heap"; }

 private:
  std::vector<Event> heap_;
};

/// Reference actor backend: a dedicated OS thread per actor, with a
/// mutex/condvar "turn" token enforcing that exactly one of {kernel,
/// actor} runs at a time. This is the pre-fiber implementation, verbatim;
/// every switch costs two futex round trips, which is precisely the
/// overhead the fiber backend removes. The thread is started parked
/// (waiting for the first resume) and joined by the destructor — the
/// kernel guarantees the body has finished (Kernel::cancel_all_actors)
/// before any Actor is destroyed, so the join never blocks.
class ThreadActorContext final : public ActorContext {
 public:
  explicit ThreadActorContext(std::function<void()> run) : run_(std::move(run)) {
    thread_ = std::thread([this] {
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return turn_ == Turn::kActor; });
      }
      run_();
      std::unique_lock<std::mutex> lock(mu_);
      turn_ = Turn::kKernel;
      cv_.notify_all();
    });
  }

  ~ThreadActorContext() override {
    if (thread_.joinable()) thread_.join();
  }

  void resume() override {
    std::unique_lock<std::mutex> lock(mu_);
    turn_ = Turn::kActor;
    cv_.notify_all();
    cv_.wait(lock, [this] { return turn_ == Turn::kKernel; });
  }

  void yield() override {
    std::unique_lock<std::mutex> lock(mu_);
    turn_ = Turn::kKernel;
    cv_.notify_all();
    cv_.wait(lock, [this] { return turn_ == Turn::kActor; });
  }

  [[nodiscard]] const char* name() const override { return "threads"; }

 private:
  enum class Turn : std::uint8_t { kKernel, kActor };

  std::function<void()> run_;
  std::mutex mu_;
  std::condition_variable cv_;
  Turn turn_ = Turn::kKernel;
  std::thread thread_;
};

}  // namespace lcmpi::sim
