// Reference heap event queue — the executable specification of scheduling.
//
// This is the original binary-heap-over-vector event list of sim::Kernel,
// retained verbatim (as HeapEventQueue) after the calendar-queue rewrite in
// kernel.h/kernel.cpp. It defines the semantics the fast path must
// reproduce *exactly*: events pop in strictly increasing (time, seq) order,
// seq being the kernel-assigned insertion sequence number — the FIFO
// tie-break that makes every simulation repeatable. Because that order is a
// strict total order, any two correct backends execute the identical event
// schedule, and therefore produce bit-identical virtual times; the golden
// figures in EXPERIMENTS.md are pinned against this property.
//
// Used by tests/sched_property_test.cpp (randomized differential
// equivalence), tests/sched_fuzz_test.cpp (EventHandle lifecycle parity),
// bench/host_perf (the events/sec baseline), and selectable at runtime via
// LCMPI_SCHED=heap or Kernel(SchedBackend::kHeap).
#pragma once

#include <algorithm>
#include <vector>

#include "src/sim/kernel.h"

namespace lcmpi::sim {

/// Binary heap over a plain vector, ordered by EventAfter (reference
/// implementation). Reserved up front, entries moved out on pop, never
/// copied. O(log n) push and pop, O(1) peek.
class HeapEventQueue final : public EventQueue {
 public:
  HeapEventQueue() { heap_.reserve(64); }

  void push(Event&& ev) override {
    heap_.push_back(std::move(ev));
    std::push_heap(heap_.begin(), heap_.end(), EventAfter{});
  }

  const Event* peek() override { return heap_.empty() ? nullptr : &heap_.front(); }

  Event pop() override {
    std::pop_heap(heap_.begin(), heap_.end(), EventAfter{});
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    return ev;
  }

  [[nodiscard]] std::size_t size() const override { return heap_.size(); }
  [[nodiscard]] const char* name() const override { return "heap"; }

 private:
  std::vector<Event> heap_;
};

}  // namespace lcmpi::sim
