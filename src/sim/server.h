// FifoServer — a single-server queueing station for the network models.
//
// Links, switch output ports, the Elan co-processor's command engine, the
// i960 SAR on the Fore NIC: all are resources that serve one job at a time
// in arrival order. Submitting a job with its service time schedules the
// completion callback when the job's service finishes, including any
// queueing delay behind earlier jobs.
#pragma once

#include <deque>
#include <functional>
#include <utility>

#include "src/sim/kernel.h"
#include "src/util/time.h"

namespace lcmpi::sim {

class FifoServer {
 public:
  explicit FifoServer(Kernel& kernel) : kernel_(kernel) {}
  FifoServer(const FifoServer&) = delete;
  FifoServer& operator=(const FifoServer&) = delete;

  /// Enqueues a job taking `service` time; `done` runs when it completes.
  void submit(Duration service, std::function<void()> done) {
    queue_.push_back(Job{service, std::move(done)});
    if (!busy_) start_next();
  }

  /// Jobs queued or in service.
  [[nodiscard]] std::size_t backlog() const { return queue_.size() + (busy_ ? 1 : 0); }

  /// Virtual time when the server will next be idle (now if idle already).
  [[nodiscard]] TimePoint idle_at() const { return busy_ ? busy_until_ : kernel_.now(); }

  /// Total time spent serving jobs (utilisation accounting).
  [[nodiscard]] Duration busy_time() const { return busy_time_; }

 private:
  struct Job {
    Duration service;
    std::function<void()> done;
  };

  void start_next() {
    if (queue_.empty()) return;
    Job job = std::move(queue_.front());
    queue_.pop_front();
    busy_ = true;
    busy_until_ = kernel_.now() + job.service;
    busy_time_ += job.service;
    kernel_.schedule(job.service, [this, done = std::move(job.done)]() mutable {
      busy_ = false;
      if (done) done();
      start_next();
    });
  }

  Kernel& kernel_;
  std::deque<Job> queue_;
  bool busy_ = false;
  TimePoint busy_until_{};
  Duration busy_time_{};
};

}  // namespace lcmpi::sim
