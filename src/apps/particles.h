// Particle pairwise interactions (paper §6: Pairwise Interactions).
//
// Molecular-dynamics-style O(P^2) force computation parallelised exactly
// as the paper describes: each of N processors owns P/N particles; the
// partitions travel around a ring in P-1 (here N-1) phases. "To allow
// concurrent sending and receiving at the communication phase of each
// round, nonblocking sends are posted to send to the next processor in the
// ring, then a blocking receive is performed, followed by a wait operation
// to complete the send."
#pragma once

#include <cmath>
#include <vector>

#include "src/apps/compute.h"
#include "src/core/datatype.h"
#include "src/util/rng.h"

namespace lcmpi::apps {

struct Particle {
  double x = 0, y = 0, z = 0;
  double charge = 0;
};

struct Force {
  double fx = 0, fy = 0, fz = 0;
};

std::vector<Particle> random_particles(int count, std::uint64_t seed);

/// Accumulates the pairwise force of `src` acting on `dst` into `out`.
void accumulate_pair(const Particle& dst, const Particle& src, Force& out);

/// Serial O(P^2) reference.
std::vector<Force> forces_serial(const std::vector<Particle>& all);

/// Flops charged per particle-pair interaction.
inline constexpr std::int64_t kFlopsPerPair = 15;

/// Parallel ring version; every rank returns the forces on its own
/// cyclic-block of particles (ranks own contiguous blocks of P/N).
template <typename C>
std::vector<Force> forces_ring(C& comm, sim::Actor& self, const std::vector<Particle>& all,
                               const ComputeProfile& prof) {
  const int n = comm.size();
  const int me = comm.rank();
  const int total = static_cast<int>(all.size());
  const int base = total / n;
  const int extra = total % n;
  auto block_start = [&](int r) { return r * base + std::min(r, extra); };
  auto block_size = [&](int r) { return base + (r < extra ? 1 : 0); };

  std::vector<Particle> mine(all.begin() + block_start(me),
                             all.begin() + block_start(me) + block_size(me));
  std::vector<Force> forces(mine.size());

  // The travelling partition starts as a copy of our own.
  std::vector<Particle> visiting = mine;
  const int max_block = base + (extra > 0 ? 1 : 0);
  std::vector<Particle> incoming(static_cast<std::size_t>(max_block) + 1);

  auto particle_type = mpi::Datatype::byte_type();  // raw POD bytes
  const int to = (me + 1) % n;
  const int from = (me - 1 + n) % n;

  for (int phase = 0; phase < n; ++phase) {
    // Interact my particles with the visiting partition.
    const int visiting_owner = (me - phase + n) % n;
    std::int64_t pairs = 0;
    for (std::size_t i = 0; i < mine.size(); ++i) {
      for (std::size_t j = 0; j < visiting.size(); ++j) {
        if (visiting_owner == me && i == j) continue;  // self-interaction
        accumulate_pair(mine[i], visiting[j], forces[i]);
        ++pairs;
      }
    }
    charge_flops(self, pairs * kFlopsPerPair, prof);

    if (phase == n - 1 || n == 1) break;
    // Pass the partition along the ring: nonblocking send, blocking
    // receive, then wait — the paper's exact sequence.
    const int out_bytes = static_cast<int>(visiting.size() * sizeof(Particle));
    auto sreq = comm.isend(visiting.data(), out_bytes, particle_type, to, phase);
    const int in_owner = (me - phase - 1 + n) % n;
    const int in_bytes = block_size(in_owner) * static_cast<int>(sizeof(Particle));
    comm.recv(incoming.data(), in_bytes, particle_type, from, phase);
    comm.wait(sreq);
    visiting.assign(incoming.begin(),
                    incoming.begin() + block_size(in_owner));
  }
  return forces;
}

}  // namespace lcmpi::apps
