// 2-D heat diffusion on a Cartesian process grid.
//
// The classic padded-block decomposition: dims_create factors the world
// into a 2-D grid, cart_shift finds the four neighbours (PROC_NULL at the
// edges), and each time step exchanges row/column halos before a 5-point
// stencil update. Columns travel as a strided vector datatype, exercising
// non-contiguous communication end to end.
//
// Two halo-exchange strategies, selectable per run and bit-identical in
// their results (the differential test in tests/apps_test.cpp pins this):
//
//  * kTwoSided — isend/recv pairs per neighbour, the MPI-1 formulation;
//  * kOneSided — an MPI-2 window of four contiguous halo landing strips
//    per rank; each step is fence / MPI_Put into the neighbours' strips /
//    fence / unpack strips into the ghost cells. Origin columns are put
//    through the strided vector type (packed at the origin); the target
//    side stays contiguous, as the window layer requires.
#pragma once

#include <vector>

#include "src/core/comm.h"

namespace lcmpi::apps {

enum class HaloMode { kTwoSided, kOneSided };

/// Serial reference: `u` is the n*n grid (row-major), fixed zero boundary.
std::vector<double> heat2d_serial(std::vector<double> u, int n, int steps, double alpha);

/// Parallel run over a dims[0] x dims[1] process grid (comm.size() must
/// cover it; n must tile evenly). Every rank calls this collectively; the
/// assembled n*n grid is returned on rank 0 and empty elsewhere.
std::vector<double> heat2d_parallel(mpi::Comm& comm, const std::vector<int>& dims,
                                    const std::vector<double>& initial, int n, int steps,
                                    double alpha, HaloMode mode);

}  // namespace lcmpi::apps
