// Distributed matrix multiplication (paper §6.1 mentions it alongside the
// solver, with similar results): C = A * B with A scattered by row blocks,
// B broadcast, and C gathered back — broadcast-dominated like the solver.
#pragma once

#include <vector>

#include "src/apps/compute.h"
#include "src/core/datatype.h"
#include "src/util/rng.h"

namespace lcmpi::apps {

std::vector<double> random_matrix(int n, std::uint64_t seed);

/// Serial reference: row-major C = A * B.
std::vector<double> matmul_serial(const std::vector<double>& a,
                                  const std::vector<double>& b, int n);

/// Parallel: valid result on rank 0 (empty elsewhere). n % size must be 0.
template <typename C>
std::vector<double> matmul_parallel(C& comm, sim::Actor& self, std::vector<double> a,
                                    std::vector<double> b, int n,
                                    const ComputeProfile& prof) {
  const int p = comm.size();
  const int me = comm.rank();
  LCMPI_CHECK(n % p == 0, "matrix size must divide the rank count");
  const int rows = n / p;
  auto dt = mpi::Datatype::double_type();

  std::vector<double> my_a(static_cast<std::size_t>(rows) * n);
  if (me != 0) {
    a.resize(static_cast<std::size_t>(n) * n);  // non-roots only need space for B
    b.resize(static_cast<std::size_t>(n) * n);
  }
  comm.scatter(a.data(), my_a.data(), rows * n, dt, 0);
  comm.bcast(b.data(), n * n, dt, 0);

  std::vector<double> my_c(static_cast<std::size_t>(rows) * n, 0.0);
  for (int i = 0; i < rows; ++i)
    for (int k = 0; k < n; ++k) {
      const double aik = my_a[static_cast<std::size_t>(i) * n + k];
      for (int j = 0; j < n; ++j)
        my_c[static_cast<std::size_t>(i) * n + j] +=
            aik * b[static_cast<std::size_t>(k) * n + j];
    }
  charge_flops(self, 2LL * rows * n * n, prof);

  std::vector<double> c;
  if (me == 0) c.resize(static_cast<std::size_t>(n) * n);
  comm.gather(my_c.data(), rows * n, c.data(), dt, 0);
  return c;
}

}  // namespace lcmpi::apps
