// Distributed linear equation solver (paper §6: Linear Equation Solver).
//
// Gaussian elimination with partial broadcast structure exactly as the
// paper describes: an initial phase of computation by the initiator, N
// phases of broadcast-and-eliminate by all processes, and a final result
// gathering by the initiator. Rows are dealt cyclically; at step k the
// row's owner broadcasts the pivot row and everyone eliminates below it.
// The ONLY communication is MPI_Bcast plus the final gather — which is why
// the hardware-broadcast implementation wins Fig. 7.
//
// Templated over the communicator type so it runs unchanged on the
// low-latency MPI (mpi::Comm) and the MPICH baseline (mpi::MpichComm).
#pragma once

#include <cmath>
#include <vector>

#include "src/apps/compute.h"
#include "src/core/datatype.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace lcmpi::apps {

/// Builds a well-conditioned dense system Ax = b (diagonally dominant).
struct LinearSystem {
  int n = 0;
  std::vector<double> a;  // row-major n x n
  std::vector<double> b;

  static LinearSystem random(int n, std::uint64_t seed) {
    LinearSystem s;
    s.n = n;
    s.a.resize(static_cast<std::size_t>(n) * n);
    s.b.resize(static_cast<std::size_t>(n));
    Rng rng(seed);
    for (int i = 0; i < n; ++i) {
      double row_sum = 0.0;
      for (int j = 0; j < n; ++j) {
        const double v = rng.next_double() * 2.0 - 1.0;
        s.a[static_cast<std::size_t>(i) * n + j] = v;
        row_sum += std::abs(v);
      }
      s.a[static_cast<std::size_t>(i) * n + i] = row_sum + 1.0;  // dominance
      s.b[static_cast<std::size_t>(i)] = rng.next_double();
    }
    return s;
  }
};

/// Serial reference (Gaussian elimination + back substitution).
std::vector<double> solve_serial(LinearSystem s);

/// Parallel solve: every rank calls this; the solution is returned on the
/// initiator (rank 0) and empty elsewhere. Rows are cyclically owned.
template <typename C>
std::vector<double> solve_parallel(C& comm, sim::Actor& self, LinearSystem s,
                                   const ComputeProfile& prof) {
  const int n = s.n;
  const int p = comm.size();
  const int me = comm.rank();
  auto dt = mpi::Datatype::double_type();

  // Initial phase: the initiator owns the data; distribute rows cyclically.
  // (Broadcast the whole system; each rank keeps its rows. This keeps the
  // communication pattern broadcast-only, as in the paper.)
  comm.bcast(s.a.data(), n * n, dt, 0);
  comm.bcast(s.b.data(), n, dt, 0);

  // Elimination: n phases of broadcast + local update.
  std::vector<double> pivot_row(static_cast<std::size_t>(n) + 1);
  for (int k = 0; k < n; ++k) {
    const int owner = k % p;
    if (owner == me) {
      for (int j = 0; j < n; ++j)
        pivot_row[static_cast<std::size_t>(j)] = s.a[static_cast<std::size_t>(k) * n + j];
      pivot_row[static_cast<std::size_t>(n)] = s.b[static_cast<std::size_t>(k)];
    }
    comm.bcast(pivot_row.data(), n + 1, dt, owner);
    if (owner != me) {
      for (int j = 0; j < n; ++j)
        s.a[static_cast<std::size_t>(k) * n + j] = pivot_row[static_cast<std::size_t>(j)];
      s.b[static_cast<std::size_t>(k)] = pivot_row[static_cast<std::size_t>(n)];
    }
    // Eliminate column k from my rows below k.
    std::int64_t flops = 0;
    const double pivot = pivot_row[static_cast<std::size_t>(k)];
    for (int i = k + 1; i < n; ++i) {
      if (i % p != me) continue;
      const double f = s.a[static_cast<std::size_t>(i) * n + k] / pivot;
      s.a[static_cast<std::size_t>(i) * n + k] = 0.0;
      for (int j = k + 1; j < n; ++j)
        s.a[static_cast<std::size_t>(i) * n + j] -= f * pivot_row[static_cast<std::size_t>(j)];
      s.b[static_cast<std::size_t>(i)] -= f * pivot_row[static_cast<std::size_t>(n)];
      flops += 2 * (n - k) + 2;
    }
    charge_flops(self, flops, prof);
  }

  // Back substitution, phase-by-phase from the bottom; owners broadcast
  // each solved unknown.
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  for (int k = n - 1; k >= 0; --k) {
    const int owner = k % p;
    double xk = 0.0;
    if (owner == me) {
      double acc = s.b[static_cast<std::size_t>(k)];
      for (int j = k + 1; j < n; ++j)
        acc -= s.a[static_cast<std::size_t>(k) * n + j] * x[static_cast<std::size_t>(j)];
      xk = acc / s.a[static_cast<std::size_t>(k) * n + k];
      charge_flops(self, 2 * (n - k) + 1, prof);
    }
    comm.bcast(&xk, 1, dt, owner);
    x[static_cast<std::size_t>(k)] = xk;
  }

  // Final phase: result gathering by the initiator (x is already complete
  // everywhere thanks to the solved-unknown broadcasts; rank 0 returns it).
  comm.barrier();
  if (me == 0) return x;
  return {};
}

}  // namespace lcmpi::apps
