#include "src/apps/solver.h"

namespace lcmpi::apps {

std::vector<double> solve_serial(LinearSystem s) {
  const int n = s.n;
  for (int k = 0; k < n; ++k) {
    const double pivot = s.a[static_cast<std::size_t>(k) * n + k];
    LCMPI_CHECK(std::abs(pivot) > 1e-12, "singular system");
    for (int i = k + 1; i < n; ++i) {
      const double f = s.a[static_cast<std::size_t>(i) * n + k] / pivot;
      s.a[static_cast<std::size_t>(i) * n + k] = 0.0;
      for (int j = k + 1; j < n; ++j)
        s.a[static_cast<std::size_t>(i) * n + j] -= f * s.a[static_cast<std::size_t>(k) * n + j];
      s.b[static_cast<std::size_t>(i)] -= f * s.b[static_cast<std::size_t>(k)];
    }
  }
  std::vector<double> x(static_cast<std::size_t>(n));
  for (int k = n - 1; k >= 0; --k) {
    double acc = s.b[static_cast<std::size_t>(k)];
    for (int j = k + 1; j < n; ++j)
      acc -= s.a[static_cast<std::size_t>(k) * n + j] * x[static_cast<std::size_t>(j)];
    x[static_cast<std::size_t>(k)] = acc / s.a[static_cast<std::size_t>(k) * n + k];
  }
  return x;
}

}  // namespace lcmpi::apps
