// Modelling application compute time.
//
// Application kernels do their arithmetic for real (results are checked
// against serial references in the tests) and additionally charge the
// owning actor virtual time per floating-point operation, calibrated to
// the era's processors. Communication/computation ratios in Figs. 7-9
// depend on this charge.
#pragma once

#include "src/sim/kernel.h"
#include "src/util/time.h"

namespace lcmpi::apps {

struct ComputeProfile {
  /// Virtual time per floating-point operation.
  Duration per_flop = nanoseconds(100);  // 40 MHz SPARC (Meiko node)
};

/// 133 MHz SGI Indy (the ATM/Ethernet cluster hosts).
inline ComputeProfile sgi_profile() { return ComputeProfile{nanoseconds(45)}; }
/// 40 MHz SuperSPARC (Meiko CS/2 node).
inline ComputeProfile sparc_profile() { return ComputeProfile{nanoseconds(100)}; }

inline void charge_flops(sim::Actor& self, std::int64_t flops,
                         const ComputeProfile& prof) {
  self.advance(prof.per_flop * flops);
}

}  // namespace lcmpi::apps
