#include "src/apps/particles.h"

namespace lcmpi::apps {

std::vector<Particle> random_particles(int count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Particle> ps(static_cast<std::size_t>(count));
  for (auto& p : ps) {
    p.x = rng.next_double() * 10.0;
    p.y = rng.next_double() * 10.0;
    p.z = rng.next_double() * 10.0;
    p.charge = rng.next_double() * 2.0 - 1.0;
  }
  return ps;
}

void accumulate_pair(const Particle& dst, const Particle& src, Force& out) {
  const double dx = dst.x - src.x;
  const double dy = dst.y - src.y;
  const double dz = dst.z - src.z;
  const double r2 = dx * dx + dy * dy + dz * dz + 1e-9;  // softening
  const double inv_r3 = 1.0 / (r2 * std::sqrt(r2));
  const double k = dst.charge * src.charge * inv_r3;
  out.fx += k * dx;
  out.fy += k * dy;
  out.fz += k * dz;
}

std::vector<Force> forces_serial(const std::vector<Particle>& all) {
  std::vector<Force> out(all.size());
  for (std::size_t i = 0; i < all.size(); ++i)
    for (std::size_t j = 0; j < all.size(); ++j)
      if (i != j) accumulate_pair(all[i], all[j], out[i]);
  return out;
}

}  // namespace lcmpi::apps
