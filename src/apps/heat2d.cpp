#include "src/apps/heat2d.h"

#include <cstring>
#include <memory>
#include <utility>

#include "src/core/cart.h"
#include "src/core/win.h"

namespace lcmpi::apps {
namespace {

/// Offsets (in doubles) of the four halo landing strips inside the
/// one-sided window: [top cols][bottom cols][left rows][right rows].
/// Neighbours put the row/column we need directly into our strip; the
/// strips are contiguous so the target datatype stays contiguous and only
/// the origin side uses the strided column type.
struct StripLayout {
  std::int64_t top, bottom, left, right, total;
  StripLayout(int rows, int cols)
      : top(0),
        bottom(cols),
        left(2 * static_cast<std::int64_t>(cols)),
        right(2 * static_cast<std::int64_t>(cols) + rows),
        total(2 * static_cast<std::int64_t>(cols) + 2 * static_cast<std::int64_t>(rows)) {}
};

}  // namespace

std::vector<double> heat2d_serial(std::vector<double> u, int n, int steps, double alpha) {
  std::vector<double> next(u.size());
  auto at = [&](const std::vector<double>& g, int r, int c) {
    if (r < 0 || r >= n || c < 0 || c >= n) return 0.0;
    return g[static_cast<std::size_t>(r) * static_cast<std::size_t>(n) +
             static_cast<std::size_t>(c)];
  };
  for (int s = 0; s < steps; ++s) {
    for (int r = 0; r < n; ++r)
      for (int c = 0; c < n; ++c)
        next[static_cast<std::size_t>(r) * static_cast<std::size_t>(n) +
             static_cast<std::size_t>(c)] =
            at(u, r, c) + alpha * (at(u, r - 1, c) + at(u, r + 1, c) + at(u, r, c - 1) +
                                   at(u, r, c + 1) - 4 * at(u, r, c));
    u.swap(next);
  }
  return u;
}

std::vector<double> heat2d_parallel(mpi::Comm& comm, const std::vector<int>& dims,
                                    const std::vector<double>& initial, int n, int steps,
                                    double alpha, HaloMode mode) {
  LCMPI_CHECK(dims.size() == 2 && n % dims[0] == 0 && n % dims[1] == 0,
              "grid does not tile the process mesh");
  auto cart = mpi::CartComm::create(comm, dims, {false, false});
  if (!cart) return {};
  mpi::Comm& cc = cart->comm();
  const auto coords = cart->my_coords();
  const int rows = n / dims[0];
  const int cols = n / dims[1];
  const int row0 = coords[0] * rows;
  const int col0 = coords[1] * cols;
  auto dt = mpi::Datatype::double_type();
  const int stride = cols + 2;
  // One local column, ghost rows excluded: `rows` doubles strided by the
  // padded row length.
  auto col_type = mpi::Datatype::vector(rows, 1, stride, dt);

  // Local block padded with a one-cell halo on each side.
  std::vector<double> u(static_cast<std::size_t>(rows + 2) * static_cast<std::size_t>(stride), 0.0);
  std::vector<double> next(u.size(), 0.0);
  auto idx = [&](int r, int c) {
    return static_cast<std::size_t>(r) * static_cast<std::size_t>(stride) +
           static_cast<std::size_t>(c);
  };
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      u[idx(r + 1, c + 1)] =
          initial[static_cast<std::size_t>(row0 + r) * n + (col0 + c)];

  const auto v = cart->shift(0, 1);  // vertical: source above, dest below
  const auto h = cart->shift(1, 1);  // horizontal: source left, dest right

  const StripLayout strip(rows, cols);
  std::vector<double> land;  // one-sided halo landing strips (the window)
  std::unique_ptr<mpi::Win> win;
  if (mode == HaloMode::kOneSided) {
    land.assign(static_cast<std::size_t>(strip.total), 0.0);
    win = std::make_unique<mpi::Win>(cc, land.data(),
                                     strip.total * static_cast<std::int64_t>(sizeof(double)),
                                     static_cast<int>(sizeof(double)));
  }

  for (int s = 0; s < steps; ++s) {
    if (mode == HaloMode::kTwoSided) {
      std::vector<mpi::Request> reqs;
      // Rows are contiguous; columns use the strided datatype.
      reqs.push_back(cc.isend(&u[idx(rows, 1)], cols, dt, v.dest, 0));
      reqs.push_back(cc.isend(&u[idx(1, 1)], cols, dt, v.source, 1));
      reqs.push_back(cc.isend(&u[idx(1, cols)], 1, col_type, h.dest, 2));
      reqs.push_back(cc.isend(&u[idx(1, 1)], 1, col_type, h.source, 3));
      cc.recv(&u[idx(0, 1)], cols, dt, v.source, 0);
      cc.recv(&u[idx(rows + 1, 1)], cols, dt, v.dest, 1);
      cc.recv(&u[idx(1, 0)], 1, col_type, h.source, 2);
      cc.recv(&u[idx(1, cols + 1)], 1, col_type, h.dest, 3);
      cc.wait_all(reqs);
      // Edges bordering PROC_NULL keep their zero halos (fixed boundary).
      if (v.source == mpi::kProcNull)
        for (int c = 0; c <= cols + 1; ++c) u[idx(0, c)] = 0.0;
      if (v.dest == mpi::kProcNull)
        for (int c = 0; c <= cols + 1; ++c) u[idx(rows + 1, c)] = 0.0;
      if (h.source == mpi::kProcNull)
        for (int r = 0; r <= rows + 1; ++r) u[idx(r, 0)] = 0.0;
      if (h.dest == mpi::kProcNull)
        for (int r = 0; r <= rows + 1; ++r) u[idx(r, cols + 1)] = 0.0;
    } else {
      // One epoch of puts: my boundary row/column lands in the strip the
      // neighbour will unpack into its ghost cells.
      win->fence();
      if (v.dest != mpi::kProcNull)
        win->put(&u[idx(rows, 1)], cols, dt, v.dest, strip.top, cols, dt);
      if (v.source != mpi::kProcNull)
        win->put(&u[idx(1, 1)], cols, dt, v.source, strip.bottom, cols, dt);
      if (h.dest != mpi::kProcNull)
        win->put(&u[idx(1, cols)], 1, col_type, h.dest, strip.left, rows, dt);
      if (h.source != mpi::kProcNull)
        win->put(&u[idx(1, 1)], 1, col_type, h.source, strip.right, rows, dt);
      win->fence();
      // Ghosts along PROC_NULL edges stay zero: nothing writes them (the
      // swapped-in buffer's halo ring is never touched by the stencil).
      if (v.source != mpi::kProcNull)
        std::memcpy(&u[idx(0, 1)], &land[static_cast<std::size_t>(strip.top)],
                    static_cast<std::size_t>(cols) * sizeof(double));
      if (v.dest != mpi::kProcNull)
        std::memcpy(&u[idx(rows + 1, 1)], &land[static_cast<std::size_t>(strip.bottom)],
                    static_cast<std::size_t>(cols) * sizeof(double));
      if (h.source != mpi::kProcNull)
        for (int r = 0; r < rows; ++r)
          u[idx(r + 1, 0)] = land[static_cast<std::size_t>(strip.left + r)];
      if (h.dest != mpi::kProcNull)
        for (int r = 0; r < rows; ++r)
          u[idx(r + 1, cols + 1)] = land[static_cast<std::size_t>(strip.right + r)];
    }

    for (int r = 1; r <= rows; ++r)
      for (int c = 1; c <= cols; ++c)
        next[idx(r, c)] = u[idx(r, c)] + alpha * (u[idx(r - 1, c)] + u[idx(r + 1, c)] +
                                                  u[idx(r, c - 1)] + u[idx(r, c + 1)] -
                                                  4 * u[idx(r, c)]);
    std::swap(u, next);
  }

  if (win) win->free();

  // Gather blocks back to rank 0 via variable-displacement sends.
  std::vector<double> block(static_cast<std::size_t>(rows) * cols);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      block[static_cast<std::size_t>(r) * cols + c] = u[idx(r + 1, c + 1)];
  if (cc.rank() != 0) {
    cc.send(block.data(), static_cast<int>(block.size()), dt, 0, 9);
    return {};
  }
  std::vector<double> out(static_cast<std::size_t>(n) * n, 0.0);
  auto place = [&](int rank, const std::vector<double>& b) {
    const auto rc = cart->coords(rank);
    for (int r = 0; r < rows; ++r)
      for (int c = 0; c < cols; ++c)
        out[static_cast<std::size_t>(rc[0] * rows + r) * n + (rc[1] * cols + c)] =
            b[static_cast<std::size_t>(r) * cols + c];
  };
  place(0, block);
  std::vector<double> other(block.size());
  for (int src = 1; src < cc.size(); ++src) {
    mpi::Status st =
        cc.recv(other.data(), static_cast<int>(other.size()), dt, mpi::kAnySource, 9);
    place(st.source, other);
  }
  return out;
}

}  // namespace lcmpi::apps
