#include "src/apps/matmul.h"

namespace lcmpi::apps {

std::vector<double> random_matrix(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> m(static_cast<std::size_t>(n) * n);
  for (auto& v : m) v = rng.next_double() * 2.0 - 1.0;
  return m;
}

std::vector<double> matmul_serial(const std::vector<double>& a,
                                  const std::vector<double>& b, int n) {
  std::vector<double> c(static_cast<std::size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i)
    for (int k = 0; k < n; ++k) {
      const double aik = a[static_cast<std::size_t>(i) * n + k];
      for (int j = 0; j < n; ++j)
        c[static_cast<std::size_t>(i) * n + j] += aik * b[static_cast<std::size_t>(k) * n + j];
    }
  return c;
}

}  // namespace lcmpi::apps
