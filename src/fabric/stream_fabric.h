// StreamFabric — MPI over reliable byte streams (TCP or reliable-UDP).
//
// This is the paper's cluster implementation (§5.1): per-pair static
// connections, a fixed 25-byte control record per message (1 type byte +
// 24 bytes of credit / envelope / DMA-request information — Table 1's
// decomposition), eager payloads written right behind the envelope
// ("piggybacked"), rendezvous by CTS-then-push, and credit-based flow
// control in the engine (a window protocol cannot work because tags and
// communicators break FIFO matching order).
//
// Receive-side costs land where Table 1 measured them: the engine's poll()
// performs one charged read for the type byte, one for the control block,
// and one for any payload.
//
// Bulk plane: deliberately BulkPlane::kInline. This fabric exists to
// reproduce the paper's measured virtual-time figures, whose cost model
// charges rendezvous payloads on the same stream as the control records;
// routing them around the model would invalidate every calibrated number.
// The zero-copy seam (fabric.h) is exercised by the real-execution
// fabrics (ShmFabric, SocketFabric) instead.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "src/fabric/fabric.h"
#include "src/inet/cluster.h"
#include "src/inet/stream.h"

namespace lcmpi::fabric {

/// Bytes of the fixed control block following the 1-byte record type.
inline constexpr std::int64_t kControlBytes = 24;

class StreamFabric final : public Fabric {
 public:
  struct Options {
    std::int64_t eager_threshold = 8 * 1024;
    std::int64_t credit_bytes = 32 * 1024;
    /// The paper's §5.1 choice: credit. kSingleSlot reproduces the Meiko
    /// discipline over TCP — the ablation showing why it was abandoned.
    FlowControl flow = FlowControl::kCredit;
    MpiCosts costs;
    Options() {
      // Per-message MPI software costs on the 133 MHz hosts; match = the
      // 35 us Table 1 measures.
      costs.envelope_build = microseconds(25);
      costs.match = microseconds(35);
      costs.match_per_entry = microseconds(1.0);
      costs.unexpected_copy_base = microseconds(5);
      costs.unexpected_copy_per_byte = nanoseconds(40);
      costs.bookkeeping = microseconds(8);
      costs.bcast_copy_per_byte = nanoseconds(40);
    }
  };

  /// `streams[i][j]` is rank i's endpoint of the i<->j connection
  /// (nullptr on the diagonal). Built by the runtime over TCP or RUDP.
  ///
  /// `bcast_socks` (optional, one per rank) enables the Bruck-et-al.-style
  /// extension: MPI_Bcast over the medium's link-layer broadcast (shared
  /// Ethernet). Payloads are chunked into datagrams and reassembled at
  /// every receiver; the medium must be loss-free (the bus model is,
  /// unless loss injection is enabled).
  StreamFabric(sim::Kernel& kernel,
               std::vector<std::vector<inet::StreamEndpoint*>> streams, Options opt = {},
               std::vector<inet::DatagramSocket*> bcast_socks = {});

  [[nodiscard]] int nranks() const override { return static_cast<int>(eps_.size()); }
  [[nodiscard]] Endpoint& endpoint(int rank) override;

 private:
  class Ep;
  std::vector<std::unique_ptr<Ep>> eps_;
};

class StreamFabric::Ep final : public Endpoint {
 public:
  Ep(StreamFabric& f, int rank, std::vector<inet::StreamEndpoint*> peers,
     inet::DatagramSocket* bcast_sock, std::uint16_t bcast_port);

  void send(sim::Actor& self, int dst, ProtoMsg msg) override;
  void hw_broadcast(sim::Actor& self, ProtoMsg msg) override;
  /// Drains complete records from every peer stream (charged reads).
  std::optional<ProtoMsg> poll(sim::Actor& self) override;

 private:
  void on_bcast_datagram(inet::Datagram d);

  std::vector<inet::StreamEndpoint*> peers_;  // by peer rank; self = nullptr
  int scan_from_ = 0;                         // round-robin fairness
  inet::DatagramSocket* bcast_sock_ = nullptr;
  std::uint16_t bcast_port_ = 0;

  struct PartialBcast {
    std::uint32_t context = 0;
    std::uint64_t seq = 0;
    std::uint16_t nchunks = 0;
    std::uint16_t next_chunk = 0;
    Bytes data;
  };
  std::map<int, PartialBcast> partial_;  // by source host
};

}  // namespace lcmpi::fabric
