// LoopFabric — an idealised in-memory fabric for semantics testing.
//
// Delivers messages directly between endpoints after a small fixed
// latency, with no network model in the way. Capabilities (flow control,
// pull vs push rendezvous, hardware broadcast, thresholds) are fully
// configurable, so the MPI engine's protocol branches can each be
// exercised in isolation — including failure injection via an optional
// per-message delivery filter.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "src/fabric/fabric.h"

namespace lcmpi::fabric {

class LoopFabric final : public Fabric {
 public:
  struct Options {
    FabricCaps caps;
    MpiCosts costs;
    Duration latency = microseconds(1.0);
    Options() {
      caps.hw_broadcast = true;
      caps.pull_bulk = true;
      caps.flow = FlowControl::kNone;
      caps.eager_threshold = 180;
    }
  };

  LoopFabric(sim::Kernel& kernel, int nranks, Options opt = {});

  [[nodiscard]] int nranks() const override { return static_cast<int>(eps_.size()); }
  [[nodiscard]] Endpoint& endpoint(int rank) override;

 private:
  class Ep;
  Options opt_;
  std::vector<std::unique_ptr<Ep>> eps_;
};

class LoopFabric::Ep final : public Endpoint {
 public:
  Ep(LoopFabric& f, int rank) : Endpoint(f, rank), owner_(f) {}

  void send(sim::Actor& self, int dst, ProtoMsg msg) override;
  std::uint64_t stage_bulk(sim::Actor& self, Bytes data,
                           std::function<void()> on_pulled) override;
  void pull_bulk(sim::Actor& self, int src, std::uint64_t key,
                 std::function<void(Bytes)> on_data) override;
  void hw_broadcast(sim::Actor& self, ProtoMsg msg) override;

  void receive(ProtoMsg msg) { deliver(std::move(msg)); }

 private:
  friend class LoopFabric;
  LoopFabric& owner_;
  struct Staged {
    Bytes data;
    std::function<void()> on_pulled;
  };
  std::map<std::uint64_t, Staged> staged_;
  std::uint64_t next_key_ = 1;
};

}  // namespace lcmpi::fabric
