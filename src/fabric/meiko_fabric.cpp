#include "src/fabric/meiko_fabric.h"

#include <utility>

namespace lcmpi::fabric {
namespace {

// Transaction wire encoding of a ProtoMsg (envelope + optional payload).
Bytes encode(const ProtoMsg& m) {
  Bytes out;
  ByteWriter w(out);
  w.put(static_cast<std::uint8_t>(m.kind));
  w.put(m.tag);
  w.put(m.context);
  w.put(m.mode);
  w.put(m.size);
  w.put(m.sender_req);
  w.put(m.bulk_key);
  w.put(m.seq);
  w.put_bytes(m.payload.data(), m.payload.size());
  return out;
}

ProtoMsg decode(int src, const Bytes& data) {
  ByteReader r(data);
  ProtoMsg m;
  m.kind = static_cast<MsgKind>(r.get<std::uint8_t>());
  m.tag = r.get<std::int32_t>();
  m.context = r.get<std::uint32_t>();
  m.mode = r.get<std::uint8_t>();
  m.size = r.get<std::uint32_t>();
  m.sender_req = r.get<std::uint64_t>();
  m.bulk_key = r.get<std::uint64_t>();
  m.seq = r.get<std::uint64_t>();
  m.src = src;
  m.payload = r.rest();
  return m;
}

}  // namespace

FabricCaps MeikoFabric::caps_from(const meiko::Calib& c) {
  FabricCaps caps;
  caps.hw_broadcast = true;
  caps.hw_barrier = true;
  caps.pull_bulk = true;
  caps.flow = FlowControl::kSingleSlot;
  caps.eager_threshold = c.eager_threshold;
  caps.control_record_bytes = 25;
  return caps;
}

MpiCosts MeikoFabric::costs_from(const meiko::Calib& c) {
  MpiCosts m;
  m.envelope_build = c.mpi_envelope_build;
  m.match = c.mpi_match;
  m.match_per_entry = c.mpi_match_per_entry;
  m.unexpected_copy_base = c.mpi_eager_copy_base;
  m.unexpected_copy_per_byte = c.mpi_eager_copy_per_byte;
  m.bookkeeping = c.mpi_request_bookkeeping;
  m.bcast_copy_per_byte = c.mpi_bcast_copy_per_byte;
  return m;
}

MeikoFabric::MeikoFabric(meiko::Machine& machine)
    : Fabric(machine.kernel(), caps_from(machine.calib()), costs_from(machine.calib())),
      machine_(machine) {
  for (int i = 0; i < machine.size(); ++i)
    eps_.push_back(std::make_unique<Ep>(*this, i));
}

Endpoint& MeikoFabric::endpoint(int rank) {
  LCMPI_CHECK(rank >= 0 && rank < nranks(), "rank out of range");
  return *eps_[static_cast<std::size_t>(rank)];
}

MeikoFabric::Ep::Ep(MeikoFabric& f, int rank) : Endpoint(f, rank), owner_(f) {
  meiko::Node& node = f.machine().node(rank);
  node.set_txn_handler(kMpiTxnPort, [this](meiko::TxnDelivery d) {
    deliver(decode(d.src, d.data));
  });
  node.set_txn_handler(kMpiRmaPort, [this](meiko::TxnDelivery d) {
    deliver(decode(d.src, d.data));
  });
  node.set_bcast_handler(kMpiBcastPort, [this](meiko::TxnDelivery d) {
    deliver(decode(d.src, d.data));
  });
}

void MeikoFabric::Ep::send(sim::Actor& self, int dst, ProtoMsg msg) {
  const meiko::Calib& c = owner_.machine().calib();
  msg.src = rank_;
  if (msg.kind >= MsgKind::kRmaPut && msg.kind <= MsgKind::kRmaAcc) {
    // One-sided frames take the remote-word/remote-event path: no
    // envelope-slot protocol, cheaper calibrated costs, counted by the
    // machine's remote-transaction counter.
    self.advance(c.sparc_issue_rma);
    owner_.machine().rma_txn(rank_, dst, kMpiRmaPort, encode(msg));
    return;
  }
  self.advance(c.sparc_issue_txn);
  owner_.machine().txn(rank_, dst, kMpiTxnPort, encode(msg));
}

std::uint64_t MeikoFabric::Ep::stage_bulk(sim::Actor& self, Bytes data,
                                          std::function<void()> on_pulled) {
  const meiko::Calib& c = owner_.machine().calib();
  self.advance(c.dma_setup_sparc);
  return owner_.machine().node(rank_).stage_dma(std::move(data), std::move(on_pulled));
}

void MeikoFabric::Ep::pull_bulk(sim::Actor& self, int src, std::uint64_t key,
                                std::function<void(Bytes)> on_data) {
  const meiko::Calib& c = owner_.machine().calib();
  self.advance(c.dma_setup_sparc);
  owner_.machine().dma_get(rank_, src, key, std::move(on_data));
}

void MeikoFabric::Ep::hw_broadcast(sim::Actor& self, ProtoMsg msg) {
  const meiko::Calib& c = owner_.machine().calib();
  self.advance(c.sparc_issue_txn);
  msg.src = rank_;
  owner_.machine().broadcast(rank_, kMpiBcastPort, encode(msg));
}

void MeikoFabric::Ep::hw_barrier_enter(sim::Actor& self) {
  const meiko::Calib& c = owner_.machine().calib();
  self.advance(c.sparc_issue_txn);
  // The release lands as a locally synthesized kBarrier message (the
  // combine network carries no payload, so nothing crosses encode/decode).
  owner_.machine().barrier_enter(rank_, [this] {
    ProtoMsg m;
    m.kind = MsgKind::kBarrier;
    m.src = rank_;
    deliver(std::move(m));
  });
}

std::optional<ProtoMsg> MeikoFabric::Ep::poll(sim::Actor& self) {
  auto m = Endpoint::poll(self);
  // The SPARC notices the Elan event and reads the deposited slot.
  if (m) self.advance(owner_.machine().calib().sparc_poll_deliver);
  return m;
}

}  // namespace lcmpi::fabric
