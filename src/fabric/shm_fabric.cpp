#include "src/fabric/shm_fabric.h"

#include <cstring>
#include <deque>
#include <map>
#include <mutex>

namespace lcmpi::fabric {
namespace {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#endif
}

// How long an idle receiver sleeps per park. wait_activity has
// condition-variable semantics (callers re-poll in a loop), so this only
// bounds wakeup staleness in the already-fenced-away race cases.
constexpr std::chrono::milliseconds kIdleSlice{10};

// Mux promotion marker: the sender's LAST message through the shared
// MPMC ring, telling the receiver "everything after this is in our
// dedicated ring". Kind 0 is never a live MsgKind (those start at 1) and
// never leaves the fabric.
constexpr auto kPromoteMarker = static_cast<MsgKind>(0);

}  // namespace

class ShmFabric::Ep final : public Endpoint {
 public:
  Ep(ShmFabric& f, int rank, int nranks) : Endpoint(f, rank), owner_(f) {
    if (f.opt_.mux) {
      sent_count_ =
          std::make_unique<std::atomic<std::uint32_t>[]>(static_cast<std::size_t>(nranks));
      for (int d = 0; d < nranks; ++d)
        sent_count_[static_cast<std::size_t>(d)].store(0, std::memory_order_relaxed);
    }
  }

  void send(sim::Actor&, int dst, ProtoMsg msg) override {
    msg.src = rank_;
    if (owner_.opt_.mux) {
      send_mux(dst, std::move(msg));
    } else {
      push_blocking(owner_.chan(rank_, dst), std::move(msg));
    }
    messages_.fetch_add(1, std::memory_order_relaxed);
    owner_.eps_[static_cast<std::size_t>(dst)]->notify_arrival();
  }

  std::optional<ProtoMsg> poll(sim::Actor&) override {
    if (!staged_.empty()) {
      ProtoMsg m = std::move(staged_.front());
      staged_.pop_front();
      return m;
    }
    return pop_any();
  }

  void wait_activity(sim::Actor&) override {
    const std::uint64_t seen = wake_seq_.load(std::memory_order_acquire);
    const auto ready = [this, seen] {
      if (wake_seq_.load(std::memory_order_acquire) != seen) return true;
      if (owner_.opt_.mux) {
        // A promoted pair whose marker we have not consumed yet still
        // has that marker in the mux ring, so "mux ring non-empty" also
        // covers not-yet-visible dedicated rings.
        if (!owner_.mux_[static_cast<std::size_t>(rank_)]->ring().empty_approx())
          return true;
        for (const int src : promoted_srcs_) {
          Channel* sp = owner_.promoted(src, rank_).load(std::memory_order_acquire);
          if (!sp->ring().empty_approx()) return true;
        }
        return false;
      }
      const int n = owner_.nranks();
      for (int src = 0; src < n; ++src)
        if (!owner_.chan(src, rank_).ring().empty_approx()) return true;
      return false;
    };
    // Spin briefly first: the latency-critical case (ping-pong) has the
    // answer in flight, and a park/unpark round trip costs microseconds.
    for (int i = 0; i < 512; ++i) {
      if (ready()) return;
      cpu_relax();
    }
    idle_parks_.fetch_add(1, std::memory_order_relaxed);
    pad_.park_until(std::chrono::steady_clock::now() + kIdleSlice, ready);
  }

  void wake() override {
    wake_seq_.fetch_add(1, std::memory_order_release);
    pad_.unpark();
  }

  [[nodiscard]] TimePoint now() const override { return owner_.wall_now(); }

  // --- bulk plane: direct cross-thread copy into the posted buffer --------
  //
  // The receiver registers its landing buffer (under this endpoint's
  // mutex) BEFORE its CTS enters the ring; the sender looks it up when
  // the CTS arrives, so the registration is always visible (mutex) and
  // the payload copy happens-before the receiver's read (the completion
  // note travels through the SPSC ring's release/acquire publication).
  // One memcpy total for contiguous types — the payload never stages
  // through ring slots at all.

  [[nodiscard]] BulkPlane bulk_plane(int peer) const override {
    return owner_.opt_.bulk_direct && peer != rank_ ? BulkPlane::kShared
                                                    : BulkPlane::kInline;
  }

  void bulk_post(int src, std::uint64_t cookie, void* dst,
                 std::size_t capacity) override {
    const std::lock_guard<std::mutex> lock(bulk_mu_);
    bulk_regs_[{src, cookie}] = Landing{dst, capacity};
  }

  void bulk_send(sim::Actor& self, int dst, std::uint64_t cookie,
                 const void* data, std::size_t size) override {
    Ep& peer = *owner_.eps_[static_cast<std::size_t>(dst)];
    {
      const std::lock_guard<std::mutex> lock(peer.bulk_mu_);
      auto it = peer.bulk_regs_.find({rank_, cookie});
      LCMPI_CHECK(it != peer.bulk_regs_.end(),
                  "bulk transfer with no registered landing buffer");
      const Landing reg = it->second;
      peer.bulk_regs_.erase(it);
      const std::size_t n = std::min(size, reg.capacity);
      if (n > 0) std::memcpy(reg.dst, data, n);  // overflow past cap: dropped
    }
    bulk_transfers_.fetch_add(1, std::memory_order_relaxed);
    bulk_bytes_.fetch_add(size, std::memory_order_relaxed);
    // Receiver completion rides the normal sequencedless note: the ring
    // push publishes (release) after the copy above.
    ProtoMsg done;
    done.kind = MsgKind::kBulkDelivered;
    done.sender_req = cookie;
    done.size = static_cast<std::uint32_t>(size);
    send(self, dst, std::move(done));
    // Sender completion is local and synchronous: the bytes left the user
    // buffer in the memcpy. poll() serves staged_ first.
    ProtoMsg sent;
    sent.kind = MsgKind::kBulkSent;
    sent.src = rank_;
    sent.sender_req = cookie;
    staged_.push_back(std::move(sent));
  }

  // --- one-sided window seam: ranks share this address space --------------

  void rma_expose(std::uint64_t key, void* base, std::int64_t bytes,
                  void* acc_sink) override {
    const std::lock_guard<std::mutex> lock(owner_.rma_mu_);
    owner_.rma_segs_[{rank_, key}] =
        RmaSegment{static_cast<std::byte*>(base), bytes, acc_sink};
  }

  void rma_retract(std::uint64_t key) override {
    const std::lock_guard<std::mutex> lock(owner_.rma_mu_);
    owner_.rma_segs_.erase({rank_, key});
  }

  bool rma_direct(int peer, std::uint64_t key, RmaSegment* out) override {
    const std::lock_guard<std::mutex> lock(owner_.rma_mu_);
    const auto it = owner_.rma_segs_.find({peer, key});
    if (it == owner_.rma_segs_.end()) return false;
    *out = it->second;
    return true;
  }

  void notify_arrival() { pad_.unpark(); }

  [[nodiscard]] util::ParkingLot& pad() { return pad_; }

 private:
  /// Pushes one envelope into `ch`, parking on backpressure. Ring full is
  /// transport backpressure: a failed try_push moves nothing (the full
  /// check precedes the move), so msg stays intact for the retry loop.
  /// Crucially, a blocked sender must KEEP DRAINING its own inbound
  /// rings: rank A stuck pushing into a full A->B ring while B is stuck
  /// pushing (say, a credit update) into a full B->A ring is a deadlock
  /// unless someone consumes — and the engine only polls between fabric
  /// calls, not during them. Drained envelopes go to a staging queue that
  /// poll() serves first, preserving per-source FIFO. Short park slices
  /// bound retry latency when inbound is dry.
  template <typename Ch>
  void push_blocking(Ch& ch, ProtoMsg msg) {
    if (ch.try_push(std::move(msg))) return;
    full_parks_.fetch_add(1, std::memory_order_relaxed);
    for (;;) {
      const bool drained = drain_inbound();
      if (ch.try_push(std::move(msg))) break;
      if (!drained &&
          ch.push_until(msg, std::chrono::steady_clock::now() +
                                 std::chrono::milliseconds(1)))
        break;
    }
  }

  /// Mux-mode send: promoted pairs use their dedicated SPSC ring; the
  /// rest share the receiver's MPMC ring. Promotion happens here, on the
  /// sender's thread, when this pair's traffic crosses the threshold: the
  /// dedicated ring is published first (release), then the marker goes
  /// into the mux ring as this sender's LAST mux message — the receiver
  /// orders the two streams by refusing to read the dedicated ring until
  /// the marker arrives, which keeps per-(src,dst) FIFO intact.
  void send_mux(int dst, ProtoMsg msg) {
    if (Channel* sp = owner_.promoted(rank_, dst).load(std::memory_order_acquire)) {
      push_blocking(*sp, std::move(msg));
      return;
    }
    MuxChannel& mux = *owner_.mux_[static_cast<std::size_t>(dst)];
    push_blocking(mux, std::move(msg));
    mux_msgs_.fetch_add(1, std::memory_order_relaxed);
    const auto sent =
        sent_count_[static_cast<std::size_t>(dst)].fetch_add(
            1, std::memory_order_relaxed) + 1;
    if (sent == owner_.opt_.mux_promote_after) {
      auto ch = std::make_unique<Channel>(owner_.opt_.ring_slots);
      ch->share_consumer_pad(&owner_.eps_[static_cast<std::size_t>(dst)]->pad());
      owner_.promoted(rank_, dst).store(ch.release(), std::memory_order_release);
      ProtoMsg marker;
      marker.kind = kPromoteMarker;
      marker.src = rank_;
      push_blocking(mux, std::move(marker));
    }
  }

  /// Pops the next available inbound envelope from the transport rings
  /// (staging queue NOT consulted — callers handle staged_ first). Mux
  /// mode drains markers inline: consuming src's marker makes its
  /// dedicated ring eligible from then on.
  std::optional<ProtoMsg> pop_any() {
    if (owner_.opt_.mux) {
      MuxChannel& mux = *owner_.mux_[static_cast<std::size_t>(rank_)];
      while (std::optional<ProtoMsg> m = mux.try_pop()) {
        if (m->kind == kPromoteMarker) {
          promoted_srcs_.push_back(m->src);
          continue;
        }
        return m;
      }
      const int np = static_cast<int>(promoted_srcs_.size());
      for (int i = 0; i < np; ++i) {
        if (cursor_ >= np) cursor_ = 0;
        const int src = promoted_srcs_[static_cast<std::size_t>(cursor_)];
        ++cursor_;
        Channel* sp = owner_.promoted(src, rank_).load(std::memory_order_acquire);
        if (std::optional<ProtoMsg> m = sp->try_pop()) return m;
      }
      return std::nullopt;
    }
    const int n = owner_.nranks();
    for (int i = 0; i < n; ++i) {
      const int src = cursor_;
      cursor_ = cursor_ + 1 == n ? 0 : cursor_ + 1;
      if (std::optional<ProtoMsg> m = owner_.chan(src, rank_).try_pop()) return m;
    }
    return std::nullopt;
  }

  /// Pops every currently-available inbound envelope into the staging
  /// queue. Only the owning rank's thread calls this (from a blocked
  /// send), and only that thread touches staged_ — no locking needed.
  bool drain_inbound() {
    bool any = false;
    while (std::optional<ProtoMsg> m = pop_any()) {
      staged_.push_back(std::move(*m));
      any = true;
    }
    return any;
  }

  friend class ShmFabric;
  ShmFabric& owner_;
  int cursor_ = 0;  // round-robin fairness over inbound rings
  std::deque<ProtoMsg> staged_;  // inbound drained during blocked sends
  util::ParkingLot pad_;  // shared consumer pad of every inbound ring
  std::atomic<std::uint64_t> wake_seq_{0};
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> full_parks_{0};
  std::atomic<std::uint64_t> idle_parks_{0};

  // Mux mode only. sent_count_[dst] is written by this rank's thread and
  // read by stats(); promoted_srcs_ is the receive-side gate — srcs whose
  // promotion marker this endpoint has consumed (only then may their
  // dedicated ring be read, preserving FIFO across the switch).
  std::unique_ptr<std::atomic<std::uint32_t>[]> sent_count_;
  std::vector<int> promoted_srcs_;
  std::atomic<std::uint64_t> mux_msgs_{0};

  /// A posted receive buffer awaiting a bulk transfer (this endpoint is
  /// the receiver; senders look it up under bulk_mu_).
  struct Landing {
    void* dst = nullptr;
    std::size_t capacity = 0;
  };
  std::mutex bulk_mu_;
  std::map<std::pair<int, std::uint64_t>, Landing> bulk_regs_;
  std::atomic<std::uint64_t> bulk_transfers_{0};
  std::atomic<std::uint64_t> bulk_bytes_{0};
};

ShmFabric::ShmFabric(int nranks, Options opt)
    : Fabric(opt.caps, opt.costs), opt_(opt),
      epoch_(std::chrono::steady_clock::now()) {
  LCMPI_CHECK(nranks > 0, "ShmFabric needs at least one rank");
  eps_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r)
    eps_.push_back(std::make_unique<Ep>(*this, r, nranks));
  const auto n = static_cast<std::size_t>(nranks);
  if (opt_.mux) {
    // O(N) shared inbound rings + an initially-empty promoted-pair table
    // instead of the N² dedicated mesh.
    mux_.reserve(n);
    for (int dst = 0; dst < nranks; ++dst) {
      auto mc = std::make_unique<MuxChannel>(opt_.mux_ring_slots);
      mc->share_consumer_pad(&eps_[static_cast<std::size_t>(dst)]->pad());
      mux_.push_back(std::move(mc));
    }
    promoted_ = std::make_unique<std::atomic<Channel*>[]>(n * n);
    for (std::size_t i = 0; i < n * n; ++i)
      promoted_[i].store(nullptr, std::memory_order_relaxed);
  } else {
    chans_.reserve(n * n);
    for (int src = 0; src < nranks; ++src) {
      for (int dst = 0; dst < nranks; ++dst) {
        auto ch = std::make_unique<Channel>(opt_.ring_slots);
        ch->share_consumer_pad(&eps_[static_cast<std::size_t>(dst)]->pad());
        chans_.push_back(std::move(ch));
      }
    }
  }
}

ShmFabric::~ShmFabric() {
  if (promoted_) {
    const auto n = eps_.size();
    for (std::size_t i = 0; i < n * n; ++i)
      delete promoted_[i].load(std::memory_order_relaxed);
  }
}

Endpoint& ShmFabric::endpoint(int rank) {
  return *eps_.at(static_cast<std::size_t>(rank));
}

TimePoint ShmFabric::wall_now() const {
  return TimePoint{std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - epoch_)
                       .count()};
}

ShmFabric::Stats ShmFabric::stats() const {
  Stats s;
  for (const auto& ep : eps_) {
    s.messages += ep->messages_.load(std::memory_order_relaxed);
    s.full_parks += ep->full_parks_.load(std::memory_order_relaxed);
    s.idle_parks += ep->idle_parks_.load(std::memory_order_relaxed);
    s.bulk_transfers += ep->bulk_transfers_.load(std::memory_order_relaxed);
    s.bulk_bytes += ep->bulk_bytes_.load(std::memory_order_relaxed);
    s.mux_msgs += ep->mux_msgs_.load(std::memory_order_relaxed);
  }
  if (promoted_) {
    const auto n = eps_.size();
    for (std::size_t src = 0; src < n; ++src) {
      for (std::size_t dst = 0; dst < n; ++dst) {
        if (promoted_[src * n + dst].load(std::memory_order_relaxed) != nullptr)
          ++s.promoted_pairs;
        else if (eps_[src]->sent_count_[dst].load(std::memory_order_relaxed) > 0)
          ++s.mux_pairs;
      }
    }
  }
  return s;
}

}  // namespace lcmpi::fabric
