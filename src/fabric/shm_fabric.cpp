#include "src/fabric/shm_fabric.h"

#include <cstring>
#include <deque>
#include <map>
#include <mutex>

namespace lcmpi::fabric {
namespace {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#endif
}

// How long an idle receiver sleeps per park. wait_activity has
// condition-variable semantics (callers re-poll in a loop), so this only
// bounds wakeup staleness in the already-fenced-away race cases.
constexpr std::chrono::milliseconds kIdleSlice{10};

}  // namespace

class ShmFabric::Ep final : public Endpoint {
 public:
  Ep(ShmFabric& f, int rank) : Endpoint(f, rank), owner_(f) {}

  void send(sim::Actor&, int dst, ProtoMsg msg) override {
    msg.src = rank_;
    Channel& ch = owner_.chan(rank_, dst);
    if (!ch.try_push(std::move(msg))) {
      // Ring full: transport backpressure. A failed try_push moves nothing
      // (the full check precedes the move), so msg is still intact for the
      // retry loop. Crucially, a blocked sender must KEEP DRAINING its own
      // inbound rings: rank A stuck pushing into a full A->B ring while B
      // is stuck pushing (say, a credit update) into a full B->A ring is a
      // deadlock unless someone consumes — and the engine only polls
      // between fabric calls, not during them. Drained envelopes go to a
      // staging queue that poll() serves first, preserving per-source
      // FIFO. Short park slices bound retry latency when inbound is dry.
      full_parks_.fetch_add(1, std::memory_order_relaxed);
      for (;;) {
        const bool drained = drain_inbound();
        if (ch.try_push(std::move(msg))) break;
        if (!drained &&
            ch.push_until(msg, std::chrono::steady_clock::now() +
                                   std::chrono::milliseconds(1)))
          break;
      }
    }
    messages_.fetch_add(1, std::memory_order_relaxed);
    owner_.eps_[static_cast<std::size_t>(dst)]->notify_arrival();
  }

  std::optional<ProtoMsg> poll(sim::Actor&) override {
    if (!staged_.empty()) {
      ProtoMsg m = std::move(staged_.front());
      staged_.pop_front();
      return m;
    }
    const int n = owner_.nranks();
    for (int i = 0; i < n; ++i) {
      const int src = cursor_;
      cursor_ = cursor_ + 1 == n ? 0 : cursor_ + 1;
      if (std::optional<ProtoMsg> m = owner_.chan(src, rank_).try_pop()) return m;
    }
    return std::nullopt;
  }

  void wait_activity(sim::Actor&) override {
    const std::uint64_t seen = wake_seq_.load(std::memory_order_acquire);
    const auto ready = [this, seen] {
      if (wake_seq_.load(std::memory_order_acquire) != seen) return true;
      const int n = owner_.nranks();
      for (int src = 0; src < n; ++src)
        if (!owner_.chan(src, rank_).ring().empty_approx()) return true;
      return false;
    };
    // Spin briefly first: the latency-critical case (ping-pong) has the
    // answer in flight, and a park/unpark round trip costs microseconds.
    for (int i = 0; i < 512; ++i) {
      if (ready()) return;
      cpu_relax();
    }
    idle_parks_.fetch_add(1, std::memory_order_relaxed);
    pad_.park_until(std::chrono::steady_clock::now() + kIdleSlice, ready);
  }

  void wake() override {
    wake_seq_.fetch_add(1, std::memory_order_release);
    pad_.unpark();
  }

  [[nodiscard]] TimePoint now() const override { return owner_.wall_now(); }

  // --- bulk plane: direct cross-thread copy into the posted buffer --------
  //
  // The receiver registers its landing buffer (under this endpoint's
  // mutex) BEFORE its CTS enters the ring; the sender looks it up when
  // the CTS arrives, so the registration is always visible (mutex) and
  // the payload copy happens-before the receiver's read (the completion
  // note travels through the SPSC ring's release/acquire publication).
  // One memcpy total for contiguous types — the payload never stages
  // through ring slots at all.

  [[nodiscard]] BulkPlane bulk_plane(int peer) const override {
    return owner_.opt_.bulk_direct && peer != rank_ ? BulkPlane::kShared
                                                    : BulkPlane::kInline;
  }

  void bulk_post(int src, std::uint64_t cookie, void* dst,
                 std::size_t capacity) override {
    const std::lock_guard<std::mutex> lock(bulk_mu_);
    bulk_regs_[{src, cookie}] = Landing{dst, capacity};
  }

  void bulk_send(sim::Actor& self, int dst, std::uint64_t cookie,
                 const void* data, std::size_t size) override {
    Ep& peer = *owner_.eps_[static_cast<std::size_t>(dst)];
    {
      const std::lock_guard<std::mutex> lock(peer.bulk_mu_);
      auto it = peer.bulk_regs_.find({rank_, cookie});
      LCMPI_CHECK(it != peer.bulk_regs_.end(),
                  "bulk transfer with no registered landing buffer");
      const Landing reg = it->second;
      peer.bulk_regs_.erase(it);
      const std::size_t n = std::min(size, reg.capacity);
      if (n > 0) std::memcpy(reg.dst, data, n);  // overflow past cap: dropped
    }
    bulk_transfers_.fetch_add(1, std::memory_order_relaxed);
    bulk_bytes_.fetch_add(size, std::memory_order_relaxed);
    // Receiver completion rides the normal sequencedless note: the ring
    // push publishes (release) after the copy above.
    ProtoMsg done;
    done.kind = MsgKind::kBulkDelivered;
    done.sender_req = cookie;
    done.size = static_cast<std::uint32_t>(size);
    send(self, dst, std::move(done));
    // Sender completion is local and synchronous: the bytes left the user
    // buffer in the memcpy. poll() serves staged_ first.
    ProtoMsg sent;
    sent.kind = MsgKind::kBulkSent;
    sent.src = rank_;
    sent.sender_req = cookie;
    staged_.push_back(std::move(sent));
  }

  void notify_arrival() { pad_.unpark(); }

  [[nodiscard]] util::ParkingLot& pad() { return pad_; }

 private:
  /// Pops every currently-available inbound envelope into the staging
  /// queue. Only the owning rank's thread calls this (from a blocked
  /// send), and only that thread touches staged_ — no locking needed.
  bool drain_inbound() {
    bool any = false;
    const int n = owner_.nranks();
    for (int src = 0; src < n; ++src) {
      while (std::optional<ProtoMsg> m = owner_.chan(src, rank_).try_pop()) {
        staged_.push_back(std::move(*m));
        any = true;
      }
    }
    return any;
  }

  friend class ShmFabric;
  ShmFabric& owner_;
  int cursor_ = 0;  // round-robin fairness over inbound rings
  std::deque<ProtoMsg> staged_;  // inbound drained during blocked sends
  util::ParkingLot pad_;  // shared consumer pad of every inbound ring
  std::atomic<std::uint64_t> wake_seq_{0};
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> full_parks_{0};
  std::atomic<std::uint64_t> idle_parks_{0};

  /// A posted receive buffer awaiting a bulk transfer (this endpoint is
  /// the receiver; senders look it up under bulk_mu_).
  struct Landing {
    void* dst = nullptr;
    std::size_t capacity = 0;
  };
  std::mutex bulk_mu_;
  std::map<std::pair<int, std::uint64_t>, Landing> bulk_regs_;
  std::atomic<std::uint64_t> bulk_transfers_{0};
  std::atomic<std::uint64_t> bulk_bytes_{0};
};

ShmFabric::ShmFabric(int nranks, Options opt)
    : Fabric(opt.caps, opt.costs), opt_(opt),
      epoch_(std::chrono::steady_clock::now()) {
  LCMPI_CHECK(nranks > 0, "ShmFabric needs at least one rank");
  eps_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r)
    eps_.push_back(std::make_unique<Ep>(*this, r));
  chans_.reserve(static_cast<std::size_t>(nranks) * static_cast<std::size_t>(nranks));
  for (int src = 0; src < nranks; ++src) {
    for (int dst = 0; dst < nranks; ++dst) {
      auto ch = std::make_unique<Channel>(opt_.ring_slots);
      ch->share_consumer_pad(&eps_[static_cast<std::size_t>(dst)]->pad());
      chans_.push_back(std::move(ch));
    }
  }
}

ShmFabric::~ShmFabric() = default;

Endpoint& ShmFabric::endpoint(int rank) {
  return *eps_.at(static_cast<std::size_t>(rank));
}

TimePoint ShmFabric::wall_now() const {
  return TimePoint{std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - epoch_)
                       .count()};
}

ShmFabric::Stats ShmFabric::stats() const {
  Stats s;
  for (const auto& ep : eps_) {
    s.messages += ep->messages_.load(std::memory_order_relaxed);
    s.full_parks += ep->full_parks_.load(std::memory_order_relaxed);
    s.idle_parks += ep->idle_parks_.load(std::memory_order_relaxed);
    s.bulk_transfers += ep->bulk_transfers_.load(std::memory_order_relaxed);
    s.bulk_bytes += ep->bulk_bytes_.load(std::memory_order_relaxed);
  }
  return s;
}

}  // namespace lcmpi::fabric
