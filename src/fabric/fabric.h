// Fabric — the transport abstraction beneath the MPI core.
//
// The paper's MPI protocol needs exactly four transport services, and the
// Meiko and TCP implementations differ in how each is provided:
//
//   1. small control/eager messages, reliable and ordered per sender pair
//      (Meiko: remote transactions into the per-sender envelope slot;
//       TCP: fixed 25-byte records on the stream, per Table 1);
//   2. bulk data movement for the rendezvous protocol
//      (Meiko: receiver-initiated DMA *pull* of staged data — caps().pull_bulk;
//       TCP: CTS back to the sender, which *pushes* the payload);
//   3. optionally, hardware broadcast (Meiko only);
//   4. a cost/capability profile: what the MPI layer should charge for
//      matching and copies, the eager/rendezvous threshold, and which
//      flow-control discipline the medium requires (single envelope slot
//      on the Meiko, per-sender credit over TCP).
//
// The MPI engine (src/core/engine.h) is written once against this
// interface; every platform in the paper is a Fabric implementation.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "src/core/types.h"
#include "src/sim/kernel.h"
#include "src/util/bytes.h"
#include "src/util/time.h"

namespace lcmpi::fabric {

/// A transport-level failure on a real (non-simulated) fabric: a peer
/// process died mid-run (EOF/reset on its connection), a rendezvous timed
/// out, or a socket syscall failed unrecoverably. Simulated fabrics never
/// throw this — their transports are modelled, not real.
class FabricError : public std::runtime_error {
 public:
  explicit FabricError(const std::string& what) : std::runtime_error(what) {}
};

/// Protocol message kinds exchanged by the MPI engines.
enum class MsgKind : std::uint8_t {
  kEager = 1,    // envelope + payload, overlapped with matching
  kRts = 2,      // rendezvous request-to-send (envelope only)
  kCts = 3,      // receiver matched an RTS; push-mode fabrics only
  kRdata = 4,    // rendezvous payload push; push-mode fabrics only
  kCredit = 5,   // flow-control credit return (credit fabrics)
  kSlotFree = 6, // envelope slot released (single-slot fabrics)
  kSsendAck = 7, // synchronous-mode send matched at the receiver
  kBcast = 8,    // hardware broadcast payload
  // Bulk-plane completion notes. Locally synthesized by fabrics with a
  // separate bulk data plane (never encoded on any wire): kBulkSent tells
  // the SENDING engine its bulk payload has fully left the user buffer;
  // kBulkDelivered tells the RECEIVING engine a transfer has fully landed
  // in the buffer it registered with bulk_post(). Both carry sender_req
  // as the transfer cookie and no seq/credit (they never crossed a
  // sequenced channel).
  kBulkSent = 9,
  kBulkDelivered = 10,
  // Hardware barrier release: the fabric's combine network saw every rank
  // enter and replicated the release to all nodes. Like kBcast it bypasses
  // the per-pair sequenced channel (no seq, no credit).
  kBarrier = 11,
  // One-sided (RMA) frames, serviced entirely by the target's progress
  // loop. They ride the normal per-pair sequenced channel (seq-checked,
  // credit piggybacked) but never charge flow-control credit: the window
  // epoch protocol, not the unexpected queue, bounds their memory.
  // bulk_key carries the window key; tag carries the access epoch;
  // sender_req routes a kRmaGetReply back to the originating get.
  kRmaPut = 12,
  kRmaGet = 13,
  kRmaGetReply = 14,
  kRmaAcc = 15,
};

/// Which plane carries rendezvous payload bytes to a given peer.
/// Selected per-pair by the fabric at bootstrap (see each fabric's
/// negotiation); the engine only branches on kInline vs not.
enum class BulkPlane : std::uint8_t {
  kInline = 0,  // payload rides the framed control channel (kRdata)
  kStream = 1,  // dedicated raw byte stream (second socket per pair)
  kShared = 2,  // shared memory: copied straight into the posted buffer
};

/// A parsed protocol message. Fabrics own the wire encoding; the engine
/// never sees raw bytes except the payload.
struct ProtoMsg {
  MsgKind kind = MsgKind::kEager;
  int src = -1;                 // world rank of the sender (set on delivery)
  std::int32_t tag = 0;         // MPI tag
  std::uint32_t context = 0;    // communicator context id
  std::uint8_t mode = 0;        // mpi::Mode of the originating send
  std::uint32_t size = 0;       // full payload size of the message
  std::uint64_t sender_req = 0; // sender-side request id (CTS/ACK routing)
  std::uint64_t bulk_key = 0;   // staged-bulk handle (pull-mode rendezvous)
  std::uint32_t credit = 0;     // credit bytes returned (kCredit)
  std::uint64_t seq = 0;        // per-(src,dst) sequence number
  Bytes payload;                // eager / rdata / bcast data
};

/// Flow-control discipline the engine must apply (paper §4.1 and §5.1).
enum class FlowControl : std::uint8_t {
  kNone = 0,
  kSingleSlot = 1,  // one outstanding envelope per (sender, receiver)
  kCredit = 2,      // per-sender reserved memory at each receiver
};

struct FabricCaps {
  bool hw_broadcast = false;
  /// Hardware barrier: ranks enter via hw_barrier_enter and the fabric
  /// delivers a kBarrier release to every rank once all have entered.
  bool hw_barrier = false;
  /// True: rendezvous data is pulled by the receiver (DMA get). False: the
  /// receiver sends CTS and the sender pushes a kRdata message.
  bool pull_bulk = false;
  /// Eager/rendezvous protocol switch, bytes (Fig. 1 crossover).
  std::int64_t eager_threshold = 180;
  FlowControl flow = FlowControl::kNone;
  /// Credit reserve per sender at each receiver (credit fabrics).
  std::int64_t credit_bytes = 16 * 1024;
  /// Fixed per-message control record size used for credit accounting.
  std::int64_t control_record_bytes = 25;
};

/// Costs the MPI layer charges to the calling processor (the SPARC on the
/// Meiko, the SGI host CPU over TCP). Transport costs are charged by the
/// fabric itself.
struct MpiCosts {
  Duration envelope_build{};       // per send: communicator/datatype/mode work
  Duration match{};                // per matching attempt at the receiver
  Duration match_per_entry{};      // per queue entry scanned
  Duration unexpected_copy_base{}; // buffering an unmatched eager message
  Duration unexpected_copy_per_byte{};
  Duration bookkeeping{};          // request allocate/complete
  /// Copy-out of a hardware-broadcast payload (bulk memcpy; cheaper than
  /// the envelope-slot double copy of the eager path).
  Duration bcast_copy_per_byte{};
};

class Fabric;

/// One rank's attachment to the fabric.
class Endpoint {
 public:
  Endpoint(Fabric& fabric, int rank) : fabric_(fabric), rank_(rank) {}
  virtual ~Endpoint() = default;
  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] Fabric& fabric() const { return fabric_; }

  /// The clock MPI-level timestamps (traces, Comm::wtime) are drawn from:
  /// virtual time on the simulated fabrics, wall-clock time on the
  /// real-threads shared-memory fabric.
  [[nodiscard]] virtual TimePoint now() const;

  /// Sends a control/eager/rdata message. Reliable; ordered per (src,dst).
  /// Transport costs are charged to `self` and/or the modelled NIC.
  virtual void send(sim::Actor& self, int dst, ProtoMsg msg) = 0;

  /// Pull-mode fabrics: stages payload for a remote pull_bulk. `on_pulled`
  /// fires when the data has left local memory (sender completion).
  virtual std::uint64_t stage_bulk(sim::Actor& self, Bytes data,
                                   std::function<void()> on_pulled);

  /// Pull-mode fabrics: fetches remote staged data into local memory.
  virtual void pull_bulk(sim::Actor& self, int src, std::uint64_t key,
                         std::function<void(Bytes)> on_data);

  /// Hardware broadcast to every other rank (caps().hw_broadcast only).
  virtual void hw_broadcast(sim::Actor& self, ProtoMsg msg);

  /// Enters the fabric's hardware barrier (caps().hw_barrier only). The
  /// fabric delivers one kBarrier message to every rank — this one
  /// included — once all ranks have entered.
  virtual void hw_barrier_enter(sim::Actor& self);

  // --- bulk data plane (per-pair transport selection) ----------------------
  //
  // Push-mode fabrics with a dedicated bulk plane move rendezvous payloads
  // OUTSIDE the framed control channel, so a 64 MiB transfer cannot
  // head-of-line-block eager envelopes. Protocol (driven by the engine):
  //
  //   receiver: bulk_post(src, cookie, dst, cap)  -- BEFORE sending CTS
  //   sender:   bulk_send(dst, cookie, data, n)   -- on CTS; async, data
  //             must stay valid until kBulkSent is delivered locally
  //   fabric:   streams bytes opportunistically from poll()/wait_activity,
  //             clamps writes at `cap` (discarding overflow), then
  //             delivers kBulkDelivered (receiver) / kBulkSent (sender).
  //
  // The registration always precedes the transfer header on the wire
  // because bulk_post happens before the CTS leaves the receiver and the
  // sender writes bulk bytes only after the CTS arrives.

  /// The plane carrying bulk payloads to `peer`. kInline (the default)
  /// keeps the classic kRdata path; self-sends are always kInline.
  [[nodiscard]] virtual BulkPlane bulk_plane(int peer) const {
    (void)peer;
    return BulkPlane::kInline;
  }

  /// Receiver: register the posted buffer for an expected bulk arrival
  /// from `src` with transfer cookie `cookie` (the sender's request id).
  /// At most `capacity` bytes are written; overflow is consumed and
  /// discarded (the engine reports truncation from the RTS size).
  virtual void bulk_post(int src, std::uint64_t cookie, void* dst,
                         std::size_t capacity);

  /// Sender: start the asynchronous bulk transfer of `size` bytes to
  /// `dst`. `data` is borrowed — it must remain valid until the fabric
  /// delivers the matching kBulkSent completion note.
  virtual void bulk_send(sim::Actor& self, int dst, std::uint64_t cookie,
                         const void* data, std::size_t size);

  // --- one-sided window seam ------------------------------------------------
  //
  // Fabrics whose ranks share an address space (ShmFabric) can satisfy
  // Put/Get with plain loads and stores into the peer's registered window;
  // everyone else falls back to the message protocol (kRma* frames). The
  // window layer exposes its segment at creation, asks rma_direct() per
  // peer after a barrier, and commits to one strategy for the window's
  // lifetime. acc_sink is an opaque pointer the window layer interprets
  // (the target's serialized accumulate buffer); the fabric only stores it.

  /// A directly addressable view of a peer's window segment.
  struct RmaSegment {
    std::byte* base = nullptr;
    std::int64_t bytes = 0;
    void* acc_sink = nullptr;
  };

  /// Registers this rank's window segment under `key` (collective window
  /// creation calls this on every rank before the creation barrier).
  virtual void rma_expose(std::uint64_t key, void* base, std::int64_t bytes,
                          void* acc_sink);

  /// Withdraws a segment registered with rma_expose (window free).
  virtual void rma_retract(std::uint64_t key);

  /// True if `peer`'s segment `key` is directly addressable from this
  /// rank, filling `out`. Default: no shared address space — message mode.
  [[nodiscard]] virtual bool rma_direct(int peer, std::uint64_t key,
                                        RmaSegment* out);

  /// Dequeues the next arrived message, if any. Stream fabrics perform the
  /// actual (charged) socket reads here, which is why `self` is needed.
  virtual std::optional<ProtoMsg> poll(sim::Actor& self);

  /// Blocks until something may have arrived. Condition-variable
  /// semantics: callers re-check poll() in a loop. Simulated fabrics park
  /// the actor on a Trigger; the shared-memory fabric parks the OS thread.
  virtual void wait_activity(sim::Actor& self);

  /// Wakes a blocked wait_activity without a delivery (completion
  /// callbacks — e.g. a DMA pull finishing — use this).
  virtual void wake() { activity_.notify_all(); }

 protected:
  /// Delivery from the fabric's event machinery: enqueue + wake.
  void deliver(ProtoMsg msg);
  /// Wakes a blocked engine without delivering (e.g. readable stream).
  void notify_activity() { activity_.notify_all(); }

  Fabric& fabric_;
  int rank_;
  std::deque<ProtoMsg> incoming_;
  sim::Trigger activity_;
};

class Fabric {
 public:
  virtual ~Fabric() = default;
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  [[nodiscard]] virtual int nranks() const = 0;
  [[nodiscard]] virtual Endpoint& endpoint(int rank) = 0;
  [[nodiscard]] const FabricCaps& caps() const { return caps_; }
  [[nodiscard]] const MpiCosts& mpi_costs() const { return mpi_costs_; }

  /// The driving simulator. Only the simulated fabrics have one; the
  /// real-threads shared-memory fabric (src/fabric/shm_fabric.h) runs on
  /// OS threads and wall-clock time instead.
  [[nodiscard]] sim::Kernel& kernel() const {
    LCMPI_CHECK(kernel_ != nullptr, "this fabric runs on real threads, not a sim kernel");
    return *kernel_;
  }

 protected:
  Fabric(sim::Kernel& kernel, FabricCaps caps, MpiCosts costs)
      : kernel_(&kernel), caps_(caps), mpi_costs_(costs) {}
  /// Kernel-less base for fabrics driven by real threads.
  Fabric(FabricCaps caps, MpiCosts costs) : caps_(caps), mpi_costs_(costs) {}

  sim::Kernel* kernel_ = nullptr;
  FabricCaps caps_;
  MpiCosts mpi_costs_;
};

}  // namespace lcmpi::fabric
