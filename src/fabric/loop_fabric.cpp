#include "src/fabric/loop_fabric.h"

namespace lcmpi::fabric {

LoopFabric::LoopFabric(sim::Kernel& kernel, int nranks, Options opt)
    : Fabric(kernel, opt.caps, opt.costs), opt_(opt) {
  for (int i = 0; i < nranks; ++i) eps_.push_back(std::make_unique<Ep>(*this, i));
}

Endpoint& LoopFabric::endpoint(int rank) {
  LCMPI_CHECK(rank >= 0 && rank < nranks(), "rank out of range");
  return *eps_[static_cast<std::size_t>(rank)];
}

void LoopFabric::Ep::send(sim::Actor&, int dst, ProtoMsg msg) {
  msg.src = rank_;
  Ep& target = *owner_.eps_[static_cast<std::size_t>(dst)];
  fabric_.kernel().schedule(owner_.opt_.latency, [&target, msg = std::move(msg)]() mutable {
    target.receive(std::move(msg));
  });
}

std::uint64_t LoopFabric::Ep::stage_bulk(sim::Actor&, Bytes data,
                                         std::function<void()> on_pulled) {
  const std::uint64_t key = next_key_++;
  staged_.emplace(key, Staged{std::move(data), std::move(on_pulled)});
  return key;
}

void LoopFabric::Ep::pull_bulk(sim::Actor&, int src, std::uint64_t key,
                               std::function<void(Bytes)> on_data) {
  Ep& source = *owner_.eps_[static_cast<std::size_t>(src)];
  fabric_.kernel().schedule(owner_.opt_.latency, [&source, key,
                                                  on_data = std::move(on_data)]() mutable {
    auto it = source.staged_.find(key);
    LCMPI_CHECK(it != source.staged_.end(), "pull of unknown staged key");
    Bytes data = std::move(it->second.data);
    auto on_pulled = std::move(it->second.on_pulled);
    source.staged_.erase(it);
    if (on_pulled) on_pulled();
    on_data(std::move(data));
  });
}

void LoopFabric::Ep::hw_broadcast(sim::Actor&, ProtoMsg msg) {
  msg.src = rank_;
  for (auto& ep : owner_.eps_) {
    if (ep.get() == this) continue;
    ProtoMsg copy = msg;
    Ep* target = ep.get();
    fabric_.kernel().schedule(owner_.opt_.latency, [target, copy = std::move(copy)]() mutable {
      target->receive(std::move(copy));
    });
  }
}

}  // namespace lcmpi::fabric
