#include "src/fabric/socket_fabric.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>
#include <utility>

#include "src/util/env.h"

#if defined(__linux__) && defined(SO_ZEROCOPY) && defined(MSG_ZEROCOPY)
#include <linux/errqueue.h>
#define LCMPI_HAVE_ZEROCOPY 1
#else
#define LCMPI_HAVE_ZEROCOPY 0
#endif

namespace lcmpi::fabric {
namespace {

using Clock = std::chrono::steady_clock;

// Frame header behind the u32 length prefix. Full-width fields: this wire
// is private to the fabric, so nothing is squeezed into Table-1 widths.
struct FrameHeader {
  std::uint8_t kind = 0;  // MsgKind, or kByeKind for the goodbye record
  std::uint8_t mode = 0;
  std::int32_t tag = 0;
  std::uint32_t context = 0;
  std::uint32_t size = 0;
  std::uint32_t credit = 0;
  std::uint64_t sender_req = 0;
  std::uint64_t bulk_key = 0;
  std::uint64_t seq = 0;
};

// Clean-shutdown sentinel; never a live MsgKind (those start at 1).
constexpr std::uint8_t kByeKind = 0;

[[noreturn]] void die(const std::string& what) { throw FabricError(what); }

std::string errno_str() { return std::strerror(errno); }

void set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  LCMPI_CHECK(flags >= 0, "fcntl(F_GETFL) failed");
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  LCMPI_CHECK(::fcntl(fd, F_SETFL, want) == 0, "fcntl(F_SETFL) failed");
}

void set_cloexec(int fd) { (void)::fcntl(fd, F_SETFD, FD_CLOEXEC); }

/// Blocking full write during a handshake (EINTR-safe).
void write_all(int fd, const void* data, std::size_t n, const char* what) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd, p + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      die(std::string(what) + ": write failed: " + errno_str());
    }
    off += static_cast<std::size_t>(w);
  }
}

/// Blocking full read during the rendezvous (EINTR-safe; EOF is fatal —
/// a peer died mid-handshake).
void read_all(int fd, void* data, std::size_t n, const char* what) {
  auto* p = static_cast<unsigned char*>(data);
  std::size_t off = 0;
  while (off < n) {
    const ssize_t r = ::recv(fd, p + off, n - off, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      die(std::string(what) + ": read failed: " + errno_str());
    }
    if (r == 0) die(std::string(what) + ": peer closed during rendezvous");
    off += static_cast<std::size_t>(r);
  }
}

/// Bounded full read for post-accept handshakes: the dialer wrote its
/// Hello immediately after connect, so this returns promptly; the
/// deadline only guards against a dialer that died mid-handshake with
/// the connection still open. Works on blocking and nonblocking fds
/// (poll-first).
void read_all_within(int fd, void* data, std::size_t n,
                     Clock::time_point deadline, const char* what) {
  auto* p = static_cast<unsigned char*>(data);
  std::size_t off = 0;
  while (off < n) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (left.count() <= 0) die(std::string(what) + ": handshake timed out");
    pollfd pf{fd, POLLIN, 0};
    const int rc = ::poll(&pf, 1, static_cast<int>(left.count()));
    if (rc < 0) {
      if (errno == EINTR) continue;
      die(std::string(what) + ": poll failed: " + errno_str());
    }
    if (rc == 0) continue;
    const ssize_t r = ::recv(fd, p + off, n - off, 0);
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      die(std::string(what) + ": read failed: " + errno_str());
    }
    if (r == 0) die(std::string(what) + ": peer closed during handshake");
    off += static_cast<std::size_t>(r);
  }
}

struct Addr {
  sockaddr_storage ss{};
  socklen_t len = 0;
  int family() const { return ss.ss_family; }
};

Addr unix_addr(const std::string& path) {
  Addr a;
  auto* sun = reinterpret_cast<sockaddr_un*>(&a.ss);
  sun->sun_family = AF_UNIX;
  LCMPI_CHECK(path.size() < sizeof(sun->sun_path), "AF_UNIX path too long");
  std::memcpy(sun->sun_path, path.c_str(), path.size() + 1);
  a.len = static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) + path.size() + 1);
  return a;
}

/// `addr_be` is an IPv4 address in network byte order (as carried in the
/// Hello table and PeerAddr) — never implied loopback: the caller decides.
Addr inet_addr_port(std::uint32_t addr_be, std::uint16_t port) {
  Addr a;
  auto* sin = reinterpret_cast<sockaddr_in*>(&a.ss);
  sin->sin_family = AF_INET;
  sin->sin_port = htons(port);
  sin->sin_addr.s_addr = addr_be;
  a.len = sizeof(sockaddr_in);
  return a;
}

std::string ipv4_str(std::uint32_t addr_be) {
  char buf[INET_ADDRSTRLEN] = {};
  in_addr in{};
  in.s_addr = addr_be;
  (void)::inet_ntop(AF_INET, &in, buf, sizeof buf);
  return buf;
}

/// Resolves a hostname or dotted quad to an IPv4 address (network byte
/// order) via getaddrinfo(3). Empty means loopback — the single-box
/// default every pre-launcher caller relied on.
std::uint32_t resolve_ipv4(const std::string& host, const char* what) {
  if (host.empty()) return htonl(INADDR_LOOPBACK);
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &res);
  if (rc != 0 || res == nullptr) {
    die(std::string(what) + ": cannot resolve \"" + host +
        "\": " + ::gai_strerror(rc));
  }
  const std::uint32_t addr =
      reinterpret_cast<const sockaddr_in*>(res->ai_addr)->sin_addr.s_addr;
  ::freeaddrinfo(res);
  return addr;
}

/// The local IPv4 address of a connected socket — what the routing table
/// picked to reach the peer, i.e. the right NIC to advertise on a
/// multi-homed host.
std::uint32_t local_ipv4(int fd) {
  sockaddr_in sin{};
  socklen_t len = sizeof sin;
  LCMPI_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&sin), &len) == 0,
              "getsockname failed");
  return sin.sin_addr.s_addr;
}

/// Atomically publishes rank 0's "a.b.c.d:port" at `path` (temp + rename,
/// so a reader never sees a partial file).
void publish_rendezvous_file(const std::string& path, std::uint32_t addr_be,
                             std::uint16_t port) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) die("cannot write rendezvous file " + tmp);
    out << ipv4_str(addr_be) << ":" << port << "\n";
    if (!out) die("cannot write rendezvous file " + tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0)
    die("cannot publish rendezvous file " + path + ": " + errno_str());
}

/// One read attempt on the rendezvous file; false until rank 0 has
/// published it (atomic rename: existing means complete).
bool try_read_rendezvous_file(const std::string& path, std::uint32_t* addr_be,
                              std::uint16_t* port) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  if (!std::getline(in, line)) return false;
  const auto colon = line.rfind(':');
  if (colon == std::string::npos || colon + 1 >= line.size())
    die("malformed rendezvous file " + path + ": \"" + line + "\"");
  in_addr a{};
  if (::inet_pton(AF_INET, line.substr(0, colon).c_str(), &a) != 1)
    die("malformed rendezvous file " + path + ": \"" + line + "\"");
  long p = 0;
  try {
    p = env::parse_long("rendezvous file port", line.substr(colon + 1), 1, 65535);
  } catch (const env::EnvError& e) {
    die("malformed rendezvous file " + path + ": " + e.what());
  }
  *addr_be = a.s_addr;
  *port = static_cast<std::uint16_t>(p);
  return true;
}

int make_socket(int family) {
  const int fd = ::socket(family, SOCK_STREAM, 0);
  if (fd < 0) die("socket() failed: " + errno_str());
  set_cloexec(fd);
  if (family == AF_INET) {
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }
  return fd;
}

int bind_listener(const Addr& a) {
  const int fd = make_socket(a.family());
  if (a.family() == AF_INET) {
    const int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&a.ss), a.len) != 0)
    die("bind() failed: " + errno_str());
  if (::listen(fd, SOMAXCONN) != 0) die("listen() failed: " + errno_str());
  return fd;
}

std::uint16_t local_port(int fd) {
  sockaddr_in sin{};
  socklen_t len = sizeof sin;
  LCMPI_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&sin), &len) == 0,
              "getsockname failed");
  return ntohs(sin.sin_port);
}

/// Accept with a deadline (bootstrap; poll() bounds a blocking listener).
int accept_within(int listen_fd, Clock::time_point deadline, const char* what) {
  for (;;) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (left.count() <= 0) die(std::string(what) + ": rendezvous accept timed out");
    pollfd p{listen_fd, POLLIN, 0};
    const int rc = ::poll(&p, 1, static_cast<int>(left.count()));
    if (rc < 0) {
      if (errno == EINTR) continue;
      die(std::string(what) + ": poll failed: " + errno_str());
    }
    if (rc == 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
          errno == EWOULDBLOCK)
        continue;
      die(std::string(what) + ": accept failed: " + errno_str());
    }
    set_cloexec(fd);
    return fd;
  }
}

// Identifies a dialing rank to whoever accepts the connection. `intent`
// separates bootstrap rendezvous dials (which carry the dialer's own
// listener address and are closed after the table exchange) from
// data-phase lazy dials; `channel` separates the framed control socket
// (0) from the bulk data socket (1).
struct Hello {
  std::uint32_t magic = 0x4c43'4d50;  // "LCMP"
  std::int32_t rank = -1;
  std::uint32_t addr = 0;             // kInet listener IPv4, network order
  std::uint16_t port = 0;             // kInet listener
  std::uint8_t channel = 0;
  std::uint8_t intent = 0;
  char unix_path[104] = {};           // kUnix listener
};
constexpr std::uint8_t kIntentBoot = 0;
constexpr std::uint8_t kIntentData = 1;

// Per-pair bulk negotiation, exchanged on the bulk socket right after the
// Hello. Both sides willing (kMemfd + AF_UNIX) => the dialer creates a
// memfd and passes it via SCM_RIGHTS; any mismatch degrades the pair to
// plain stream mode — worlds may mix kMemfd and kStream ranks freely.
// The dialer does not wait for the acceptor's reply: it writes its half
// (BulkHello, plus the fd if it wants a ring), marks the channel
// `negotiating`, and queues transfers until the reply arrives through
// the normal nonblocking pump.
struct BulkHello {
  std::uint32_t magic = 0x4c42'4c4b;  // "LBLK"
  std::uint8_t wants_memfd = 0;
  std::uint8_t pad[3] = {};
  std::uint64_t ring_bytes = 0;  // dialer's value sizes the rings
};

// Each bulk transfer is one 16-byte header then `size` raw payload bytes
// — no per-chunk framing on the entire data plane.
constexpr std::size_t kBulkHdrBytes = 16;
void put_bulk_hdr(unsigned char* p, std::uint64_t cookie, std::uint64_t size) {
  std::memcpy(p, &cookie, sizeof cookie);
  std::memcpy(p + sizeof cookie, &size, sizeof size);
}
void get_bulk_hdr(const unsigned char* p, std::uint64_t* cookie, std::uint64_t* size) {
  std::memcpy(cookie, p, sizeof *cookie);
  std::memcpy(size, p + sizeof *cookie, sizeof *size);
}

// MSG_ZEROCOPY pins pages and reaps completions through the error queue;
// below this chunk size the bookkeeping costs more than the copy saves
// (the kernel's own documented guidance is ~10 KB; we are conservative).
constexpr std::size_t kZcMinChunk = 64 * 1024;

// Shared-ring control block: one producer counter and one consumer
// counter per direction, each on its own cache line, both monotonic (the
// ring index is counter % capacity). Lives in the memfd mapping, so the
// atomics synchronize across processes.
struct RingCtl {
  alignas(64) std::atomic<std::uint64_t> head;  // producer: bytes written
  alignas(64) std::atomic<std::uint64_t> tail;  // consumer: bytes read
};

// One direction of the shared ring, as seen by whichever side this is.
// Producer calls writable()/write(); consumer calls readable()/read()/
// discard(). The release store on the counter publishes the memcpy to
// the other process (acquire load on the far side).
struct RingView {
  RingCtl* ctl = nullptr;
  std::byte* data = nullptr;
  std::uint64_t cap = 0;

  [[nodiscard]] std::uint64_t writable() const {
    return cap - (ctl->head.load(std::memory_order_relaxed) -
                  ctl->tail.load(std::memory_order_acquire));
  }
  void write(const void* p, std::uint64_t n) {
    const std::uint64_t head = ctl->head.load(std::memory_order_relaxed);
    const std::uint64_t at = head % cap;
    const std::uint64_t first = std::min(n, cap - at);
    std::memcpy(data + at, p, first);
    if (n > first)
      std::memcpy(data, static_cast<const std::byte*>(p) + first, n - first);
    ctl->head.store(head + n, std::memory_order_release);
  }

  [[nodiscard]] std::uint64_t readable() const {
    return ctl->head.load(std::memory_order_acquire) -
           ctl->tail.load(std::memory_order_relaxed);
  }
  void read(void* p, std::uint64_t n) {
    const std::uint64_t tail = ctl->tail.load(std::memory_order_relaxed);
    const std::uint64_t at = tail % cap;
    const std::uint64_t first = std::min(n, cap - at);
    std::memcpy(p, data + at, first);
    if (n > first)
      std::memcpy(static_cast<std::byte*>(p) + first, data, n - first);
    ctl->tail.store(tail + n, std::memory_order_release);
  }
  void discard(std::uint64_t n) {  // truncated transfer: consume, drop
    ctl->tail.store(ctl->tail.load(std::memory_order_relaxed) + n,
                    std::memory_order_release);
  }
};

/// Passes one fd over an AF_UNIX socket (blocking; handshake only).
void send_fd(int sock, int fd, const char* what) {
  msghdr msg{};
  char token = 'F';
  iovec iov{&token, 1};
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  alignas(cmsghdr) char ctl[CMSG_SPACE(sizeof(int))] = {};
  msg.msg_control = ctl;
  msg.msg_controllen = sizeof ctl;
  cmsghdr* cm = CMSG_FIRSTHDR(&msg);
  cm->cmsg_level = SOL_SOCKET;
  cm->cmsg_type = SCM_RIGHTS;
  cm->cmsg_len = CMSG_LEN(sizeof(int));
  std::memcpy(CMSG_DATA(cm), &fd, sizeof(int));
  for (;;) {
    const ssize_t n = ::sendmsg(sock, &msg, MSG_NOSIGNAL);
    if (n >= 0) return;
    if (errno == EINTR) continue;
    die(std::string(what) + ": fd pass failed: " + errno_str());
  }
}

[[nodiscard]] int recv_fd(int sock, const char* what) {
  msghdr msg{};
  char token = 0;
  iovec iov{&token, 1};
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  alignas(cmsghdr) char ctl[CMSG_SPACE(sizeof(int))] = {};
  msg.msg_control = ctl;
  msg.msg_controllen = sizeof ctl;
  for (;;) {
    const ssize_t n = ::recvmsg(sock, &msg, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      die(std::string(what) + ": fd receive failed: " + errno_str());
    }
    if (n == 0) die(std::string(what) + ": peer closed during fd pass");
    break;
  }
  const cmsghdr* cm = CMSG_FIRSTHDR(&msg);
  LCMPI_CHECK(cm != nullptr && cm->cmsg_level == SOL_SOCKET &&
                  cm->cmsg_type == SCM_RIGHTS &&
                  cm->cmsg_len == CMSG_LEN(sizeof(int)),
              "fd pass: no SCM_RIGHTS attached");
  int fd = -1;
  std::memcpy(&fd, CMSG_DATA(cm), sizeof(int));
  return fd;
}

}  // namespace

// ----------------------------------------------------------- bulk channel

/// Everything one bulk connection owns: the dedicated socket, the
/// optional memfd ring mapping, and both transfer state machines. A pair
/// has one channel per dial direction (usually just one; two after a
/// cross-dial race) — this rank transmits only on the pair's `tx`
/// channel and receives on any.
struct SocketFabric::BulkChan {
  int fd = -1;
  bool closed = false;
  bool dialer = false;  // we initiated this connection (own ring A)
  bool out_armed = false;   // EPOLLOUT armed (stream tx blocked)
  bool tx_listed = false;   // peer is in bulk_tx_pending_
  bool rx_listed = false;   // ring data left unconsumed by a budget cap
  // Dialer side: the acceptor's BulkHello reply has not arrived yet.
  // Transfers queue; nothing is transmitted until the reply lands.
  bool negotiating = false;
  unsigned char neg[sizeof(BulkHello)];
  std::size_t neg_got = 0;
  void* map_base = nullptr;  // non-null: memfd rings negotiated
  std::size_t map_len = 0;
  RingView tx_ring, rx_ring;
  [[nodiscard]] bool use_ring() const { return map_base != nullptr; }

  // Transmit side: FIFO of transfers; head-of-queue progresses in
  // bounded chunks. `data` points into the engine's send buffer, valid
  // until the kBulkSent note (the MPI contract for send completion).
  struct Tx {
    std::uint64_t cookie = 0;
    const std::byte* data = nullptr;
    std::uint64_t size = 0;
    std::uint64_t off = 0;  // payload bytes handed to ring/kernel
    unsigned char hdr[kBulkHdrBytes];
    std::uint64_t hdr_off = 0;
    bool zc_used = false;
    std::uint32_t zc_last = 0;  // highest zerocopy seq this transfer used
  };
  std::deque<Tx> txq;
  // Fully-written transfers whose pages the kernel still references
  // (MSG_ZEROCOPY); kBulkSent is withheld until the errqueue confirms.
  struct ZcWait {
    std::uint64_t cookie = 0;
    std::uint32_t zc_last = 0;
  };
  std::deque<ZcWait> zc_wait;

  // Receive side: one transfer at a time (the plane is a FIFO stream).
  unsigned char rhdr[kBulkHdrBytes];
  std::uint64_t rhdr_got = 0;
  bool in_transfer = false;
  std::uint64_t rx_cookie = 0;
  std::uint64_t rx_size = 0;
  std::uint64_t rx_got = 0;
  std::byte* rx_dst = nullptr;  // registered landing buffer
  std::uint64_t rx_cap = 0;     // bytes past this are consumed and dropped

  bool zc_enabled = false;
  std::uint32_t zc_seq = 0;   // seq the next MSG_ZEROCOPY send will get
  std::uint32_t zc_done = 0;  // all seqs below this are reaped

  ~BulkChan() {
    if (map_base != nullptr) ::munmap(map_base, map_len);
    if (fd >= 0) ::close(fd);
  }
};

// -------------------------------------------------------------- endpoint

class SocketFabric::Ep final : public Endpoint {
 public:
  Ep(SocketFabric& f, int rank) : Endpoint(f, rank), owner_(f) {}

  [[nodiscard]] TimePoint now() const override { return owner_.wall_now(); }

  void send(sim::Actor&, int dst, ProtoMsg msg) override {
    msg.src = rank_;
    owner_.send_frame(dst, msg);
  }

  std::optional<ProtoMsg> poll(sim::Actor&) override {
    // One nonblocking epoll_wait serves every ready socket — accepting
    // inbound dials, parsing control frames, and moving a bounded chunk
    // of any in-flight bulk transfer (which is what keeps a 64 MiB push
    // from starving control traffic). Idle pairs cost nothing.
    if (owner_.arrivals_.empty()) (void)owner_.progress(0);
    if (owner_.arrivals_.empty()) return std::nullopt;
    ProtoMsg m = std::move(owner_.arrivals_.front());
    owner_.arrivals_.pop_front();
    return m;
  }

  void wait_activity(sim::Actor&) override {
    if (!owner_.arrivals_.empty()) return;
    // A bulk transfer that can progress right now is activity: make some
    // and let the caller re-poll instead of parking under it.
    if (owner_.pump_bulk_tx_pending()) return;
    if (owner_.pump_bulk_rx_pending()) return;
    owner_.stats_.idle_polls++;
    (void)owner_.progress(static_cast<int>(owner_.opt_.poll_slice.count()));
  }

  // --- bulk plane ---------------------------------------------------------

  [[nodiscard]] BulkPlane bulk_plane(int peer) const override {
    if (peer == rank_ || owner_.opt_.bulk == Bulk::kInline)
      return BulkPlane::kInline;
    // Before the lazy dial completes the answer is provisional (kStream);
    // the engine only branches on kInline vs not, so pre-negotiation
    // conservatism is safe. Both sides agree on that split because
    // Options::bulk's kInline/non-kInline choice is world-uniform.
    const BulkPair& bp = owner_.bulk_[static_cast<std::size_t>(peer)];
    const BulkChan* c = bp.tx != nullptr ? bp.tx
                        : bp.b != nullptr ? bp.b.get()
                                          : bp.a.get();
    if (c == nullptr || c->negotiating) return BulkPlane::kStream;
    return c->use_ring() ? BulkPlane::kShared : BulkPlane::kStream;
  }

  void bulk_post(int src, std::uint64_t cookie, void* dst,
                 std::size_t capacity) override {
    owner_.bulk_regs_[{src, cookie}] = {dst, capacity};
  }

  void bulk_send(sim::Actor&, int dst, std::uint64_t cookie, const void* data,
                 std::size_t size) override {
    owner_.bulk_queue(dst, cookie, data, size);
  }

  /// Single-threaded process: nothing can be blocked in wait_activity
  /// while this runs, so there is nobody to wake.
  void wake() override {}

 private:
  SocketFabric& owner_;
};

// ---------------------------------------------------------------- fabric

SocketFabric::SocketFabric(int nranks, int rank, const Rendezvous& rdv, Options opt)
    : Fabric(opt.caps, opt.costs),
      nranks_(nranks),
      rank_(rank),
      opt_(opt),
      epoch_(Clock::now()) {
  LCMPI_CHECK(nranks > 0, "SocketFabric needs at least one rank");
  LCMPI_CHECK(rank >= 0 && rank < nranks, "rank out of range");
  peers_.resize(static_cast<std::size_t>(nranks));
  conns_.resize(static_cast<std::size_t>(nranks));
  bulk_.resize(static_cast<std::size_t>(nranks));
  ep_ = std::make_unique<Ep>(*this, rank);
  epfd_ = track_open(::epoll_create1(EPOLL_CLOEXEC));
  if (epfd_ < 0) die(who() + ": epoll_create1 failed: " + errno_str());
  try {
    bootstrap(rdv);
  } catch (...) {
    for (Conn& c : conns_) {
      if (c.a.fd >= 0) ::close(c.a.fd);
      if (c.b.fd >= 0) ::close(c.b.fd);
    }
    bulk_.clear();
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (!listen_path_.empty()) (void)::unlink(listen_path_.c_str());
    ::close(epfd_);
    throw;
  }
}

SocketFabric::~SocketFabric() {
  flush_bulk();
  say_bye();
  for (Conn& c : conns_) {
    close_link(c.a);
    close_link(c.b);
  }
  bulk_.clear();  // BulkChan dtors close bulk fds and unmap rings
  if (listen_fd_ >= 0) track_close(listen_fd_);
  listen_fd_ = -1;
  if (!listen_path_.empty()) (void)::unlink(listen_path_.c_str());
  if (epfd_ >= 0) track_close(epfd_);
  epfd_ = -1;
}

SocketFabric SocketFabric::from_env(Options opt) {
  // Strict parsing throughout: a typo'd LCMPI_RANK must not silently
  // become rank 0 (two processes claiming rank 0 is a rendezvous
  // collision, diagnosed nowhere near the actual mistake). nranks first —
  // the rank range depends on it.
  const long nranks = env::require_long("LCMPI_NRANKS", 1, INT32_MAX);
  const long rank = env::require_long("LCMPI_RANK", 0, nranks - 1);
  Rendezvous rdv;
  const char* dir = std::getenv("LCMPI_SOCKET_DIR");
  const char* port = std::getenv("LCMPI_PORT");
  const char* file = std::getenv("LCMPI_RENDEZVOUS_FILE");
  const char* root = std::getenv("LCMPI_ROOT_ADDR");
  if (dir != nullptr) {
    // AF_UNIX; takes precedence over any inet variable.
    opt.domain = Domain::kUnix;
    rdv.unix_dir = dir;
    // Validate the longest socket path this world will ever build NOW,
    // with the variable named — not at the first lazy dial deep inside
    // unix_addr(), minutes into a run.
    const std::string worst =
        rdv.unix_dir + "/rank-" + std::to_string(nranks - 1) + ".sock";
    const std::size_t limit = sizeof(sockaddr_un{}.sun_path);
    if (std::max(worst.size(), rdv.unix_dir.size() + sizeof("/rendezvous.sock") - 1) >= limit) {
      throw env::EnvError("LCMPI_SOCKET_DIR=\"" + rdv.unix_dir +
                          "\" is too long: socket path \"" + worst +
                          "\" must stay under " + std::to_string(limit) +
                          " bytes (sun_path)");
    }
  } else if (port != nullptr || file != nullptr || root != nullptr) {
    opt.domain = Domain::kInet;
    if (file != nullptr) rdv.rendezvous_file = file;
    if (root != nullptr) {
      // "host" or "host:port" (IPv4 / hostname; resolved at bootstrap).
      const std::string spec = root;
      const auto colon = spec.rfind(':');
      if (colon != std::string::npos) {
        rdv.root_host = spec.substr(0, colon);
        rdv.port = env::parse_port("LCMPI_ROOT_ADDR", spec.substr(colon + 1));
      } else {
        rdv.root_host = spec;
      }
    }
    if (port != nullptr) rdv.port = env::parse_port("LCMPI_PORT", port);
    if (rdv.port == 0 && rdv.rendezvous_file.empty()) {
      throw env::EnvError(
          "LCMPI_ROOT_ADDR=\"" + rdv.root_host +
          "\" names no port and neither LCMPI_PORT nor "
          "LCMPI_RENDEZVOUS_FILE is set — peers cannot find rank 0");
    }
    if (const char* bind = std::getenv("LCMPI_BIND_ADDR")) rdv.bind_host = bind;
    if (const char* adv = std::getenv("LCMPI_ADDR")) rdv.advertise_host = adv;
  } else {
    throw env::EnvError(
        "no rendezvous configured: set LCMPI_SOCKET_DIR (AF_UNIX) or "
        "LCMPI_PORT / LCMPI_RENDEZVOUS_FILE / LCMPI_ROOT_ADDR (AF_INET)");
  }
  return SocketFabric(static_cast<int>(nranks), static_cast<int>(rank), rdv,
                      opt);
}

Endpoint& SocketFabric::endpoint(int rank) {
  LCMPI_CHECK(rank == rank_,
              "SocketFabric holds only the local rank's endpoint (one process per rank)");
  return *ep_;
}

TimePoint SocketFabric::wall_now() const {
  return TimePoint{std::chrono::duration_cast<std::chrono::nanoseconds>(
                       Clock::now() - epoch_)
                       .count()};
}

std::string SocketFabric::who() const { return "rank " + std::to_string(rank_); }

int SocketFabric::track_open(int fd) {
  if (fd >= 0) stats_.fds_open++;
  return fd;
}

void SocketFabric::track_close(int fd) noexcept {
  if (fd >= 0) {
    ::close(fd);
    stats_.fds_open--;
  }
}

void SocketFabric::epoll_add(int fd, FdKind kind, int peer) {
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = (static_cast<std::uint64_t>(kind) << 32) |
                static_cast<std::uint32_t>(peer);
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0)
    die(who() + ": epoll_ctl(ADD) failed: " + errno_str());
}

void SocketFabric::epoll_arm_out(int fd, FdKind kind, int peer, bool on) {
  epoll_event ev{};
  ev.events = EPOLLIN | (on ? EPOLLOUT : 0);
  ev.data.u64 = (static_cast<std::uint64_t>(kind) << 32) |
                static_cast<std::uint32_t>(peer);
  if (::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) != 0)
    die(who() + ": epoll_ctl(MOD) failed: " + errno_str());
}

// ------------------------------------------------------------- bootstrap

void SocketFabric::bootstrap(const Rendezvous& rdv) {
  if (nranks_ == 1) return;  // self-sends never touch the fabric
  const bool unix_domain = opt_.domain == Domain::kUnix;
  LCMPI_CHECK(!unix_domain || !rdv.unix_dir.empty(), "kUnix needs a socket directory");
  LCMPI_CHECK(unix_domain || rdv.port != 0 || rdv.listen_fd >= 0 ||
                  !rdv.rendezvous_file.empty(),
              "kInet needs a rendezvous port, file, or a pre-bound listener");

  const auto deadline = Clock::now() + opt_.dial_deadline;
  const std::string r0_path = unix_domain ? rdv.unix_dir + "/rendezvous.sock" : "";
  const auto rank_path = [&](int r) {
    return rdv.unix_dir + "/rank-" + std::to_string(r) + ".sock";
  };

  // kInet addressing. With no explicit addressing fields the fabric keeps
  // its original single-box behavior: bind and dial 127.0.0.1. Any
  // explicit field switches listeners to bind_host/INADDR_ANY and makes
  // every rank advertise a real address in its Hello.
  const bool explicit_inet =
      !unix_domain &&
      (!rdv.root_host.empty() || !rdv.bind_host.empty() ||
       !rdv.advertise_host.empty() || !rdv.rendezvous_file.empty());
  const std::uint32_t bind_be =
      unix_domain ? 0
      : !rdv.bind_host.empty()
          ? resolve_ipv4(rdv.bind_host, "LCMPI_BIND_ADDR")
          : htonl(explicit_inet ? INADDR_ANY : INADDR_LOOPBACK);

  // The rendezvous exchanges listener addresses ONLY. Data connections
  // are dialed lazily on first send, so rank 0's rendezvous listener
  // must survive the whole run (lazy dials to rank 0 land on it), as
  // must every other rank's listener from the table.
  std::vector<Hello> hellos(static_cast<std::size_t>(nranks_));
  if (rank_ == 0) {
    if (rdv.listen_fd >= 0) {
      listen_fd_ = track_open(rdv.listen_fd);
    } else {
      listen_fd_ = track_open(bind_listener(
          unix_domain ? unix_addr(r0_path) : inet_addr_port(bind_be, rdv.port)));
      if (unix_domain) listen_path_ = r0_path;
    }
    Hello& me = hellos[0];
    me.rank = 0;
    if (unix_domain) {
      LCMPI_CHECK(r0_path.size() < sizeof(me.unix_path), "unix path too long");
      std::memcpy(me.unix_path, r0_path.c_str(), r0_path.size() + 1);
    } else {
      // Rank 0 cannot learn its own dialable address from its (possibly
      // wildcard) listener; it comes from the launcher: LCMPI_ADDR, else
      // LCMPI_ROOT_ADDR, else loopback (same-host worlds).
      me.addr = !rdv.advertise_host.empty()
                    ? resolve_ipv4(rdv.advertise_host, "LCMPI_ADDR")
                : !rdv.root_host.empty()
                    ? resolve_ipv4(rdv.root_host, "LCMPI_ROOT_ADDR")
                    : htonl(INADDR_LOOPBACK);
      me.port = local_port(listen_fd_);
      if (!rdv.rendezvous_file.empty())
        publish_rendezvous_file(rdv.rendezvous_file, me.addr, me.port);
    }
    // Collect all n-1 bootstrap hellos, then broadcast the table and
    // close the rendezvous connections — they carried addresses, not
    // data. (No data dial can arrive before the table is out: every
    // other rank blocks reading it before its data phase starts.)
    std::vector<int> boot(static_cast<std::size_t>(nranks_), -1);
    for (int got = 0; got < nranks_ - 1; ++got) {
      const int fd = accept_within(listen_fd_, deadline, "rank 0");
      Hello h;
      read_all(fd, &h, sizeof h, "rank 0");
      LCMPI_CHECK(h.magic == Hello{}.magic, "bad rendezvous hello");
      LCMPI_CHECK(h.intent == kIntentBoot && h.channel == 0,
                  "data dial before the address table was broadcast");
      LCMPI_CHECK(h.rank > 0 && h.rank < nranks_, "rendezvous rank out of range");
      LCMPI_CHECK(boot[static_cast<std::size_t>(h.rank)] < 0,
                  "duplicate rendezvous hello");
      boot[static_cast<std::size_t>(h.rank)] = fd;
      hellos[static_cast<std::size_t>(h.rank)] = h;
    }
    for (int r = 1; r < nranks_; ++r) {
      write_all(boot[static_cast<std::size_t>(r)], hellos.data(),
                sizeof(Hello) * static_cast<std::size_t>(nranks_), "rank 0");
      ::close(boot[static_cast<std::size_t>(r)]);
    }
  } else {
    // Bind our own listener first so the table can point at it.
    Hello mine;
    mine.rank = rank_;
    if (unix_domain) {
      const std::string path = rank_path(rank_);
      (void)::unlink(path.c_str());
      listen_fd_ = track_open(bind_listener(unix_addr(path)));
      listen_path_ = path;
      LCMPI_CHECK(path.size() < sizeof(mine.unix_path), "unix path too long");
      std::memcpy(mine.unix_path, path.c_str(), path.size() + 1);
    } else {
      listen_fd_ = track_open(bind_listener(inet_addr_port(bind_be, 0)));
      mine.port = local_port(listen_fd_);
    }
    // Find rank 0: a published rendezvous file (poll until it appears —
    // rank 0 may not have bound yet), or the configured root address.
    PeerAddr r0;
    r0.port = rdv.port;
    r0.unix_path = r0_path;
    if (!unix_domain) {
      if (!rdv.rendezvous_file.empty()) {
        auto backoff = opt_.backoff_floor;
        while (!try_read_rendezvous_file(rdv.rendezvous_file, &r0.addr, &r0.port)) {
          if (Clock::now() >= deadline)
            die(who() + ": rendezvous file " + rdv.rendezvous_file +
                " never appeared — rank 0 never came up");
          std::this_thread::sleep_for(backoff);
          backoff = std::min(backoff * 2, opt_.backoff_cap);
          stats_.dial_retries++;
        }
      } else {
        r0.addr = resolve_ipv4(rdv.root_host, "LCMPI_ROOT_ADDR");
      }
    }
    // Dial rank 0 (retrying — it may not have bound yet), introduce
    // ourselves, learn everyone's listener, hang up.
    const int fd = dial(r0, "rank 0 rendezvous", deadline);
    stats_.fds_open--;  // transient: closed right after the table read
    if (!unix_domain) {
      // Our dialable address: LCMPI_ADDR when configured, else whatever
      // source address the kernel routed this very connection from — on a
      // multi-homed host that is exactly the NIC rank 0 (and transitively
      // every peer on its side) can reach us on. Legacy same-box worlds
      // keep advertising loopback.
      mine.addr = !rdv.advertise_host.empty()
                      ? resolve_ipv4(rdv.advertise_host, "LCMPI_ADDR")
                  : explicit_inet ? local_ipv4(fd)
                                  : htonl(INADDR_LOOPBACK);
    }
    write_all(fd, &mine, sizeof mine, who().c_str());
    read_all(fd, hellos.data(), sizeof(Hello) * static_cast<std::size_t>(nranks_),
             who().c_str());
    ::close(fd);
  }

  for (int r = 0; r < nranks_; ++r) {
    const Hello& h = hellos[static_cast<std::size_t>(r)];
    LCMPI_CHECK(r == rank_ || h.rank == r, "rendezvous table incomplete");
    PeerAddr& p = peers_[static_cast<std::size_t>(r)];
    p.addr = h.addr;
    p.port = h.port;
    p.unix_path.assign(h.unix_path,
                       ::strnlen(h.unix_path, sizeof h.unix_path));
  }

  // Data phase: the listener joins the epoll set, nonblocking, and every
  // connection from here on is dialed on demand.
  set_nonblocking(listen_fd_, true);
  epoll_add(listen_fd_, FdKind::kListen, rank_);
}

int SocketFabric::dial(const PeerAddr& to, const std::string& label,
                       Clock::time_point deadline) {
  const bool unix_domain = opt_.domain == Domain::kUnix;
  const Addr addr =
      unix_domain ? unix_addr(to.unix_path)
                  : inet_addr_port(
                        to.addr != 0 ? to.addr : htonl(INADDR_LOOPBACK),
                        to.port);
  auto backoff = opt_.backoff_floor;
  bool first = true;
  for (;;) {
    const int fd = make_socket(addr.family());
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr.ss), addr.len) == 0)
      return track_open(fd);
    const int err = errno;
    ::close(fd);
    const bool retryable = err == ECONNREFUSED || err == ENOENT || err == EAGAIN ||
                           err == ETIMEDOUT || err == EINTR || err == ECONNRESET;
    if (!retryable)
      die(who() + ": connect to " + label + " failed: " + std::strerror(err));
    if (Clock::now() >= deadline)
      die(who() + ": connect to " + label + " timed out (" +
          std::strerror(err) + ") — peer never came up");
    if (!first) stats_.dial_retries++;
    first = false;
    std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * 2, opt_.backoff_cap);
  }
}

// ---------------------------------------------------- lazy connections

SocketFabric::Conn& SocketFabric::ensure_conn(int peer) {
  Conn& c = conns_[static_cast<std::size_t>(peer)];
  if (c.any_open() || c.bye_seen || c.dead) return c;
  // The peer may have dialed us already — its connection could be
  // sitting in the listen backlog. Adopt it before dialing a second
  // socket for the same pair.
  accept_pending();
  if (c.any_open()) return c;
  const int fd =
      dial(peers_[static_cast<std::size_t>(peer)],
           "rank " + std::to_string(peer), Clock::now() + opt_.dial_deadline);
  Hello h;
  h.rank = rank_;
  h.channel = 0;
  h.intent = kIntentData;
  write_all(fd, &h, sizeof h, who().c_str());
  set_nonblocking(fd, true);
  c.a.fd = fd;
  epoll_add(fd, FdKind::kCtlA, peer);
  stats_.lazy_dials++;
  if (!c.connected) {
    c.connected = true;
    stats_.pairs_connected++;
  }
  return c;
}

void SocketFabric::accept_pending() {
  if (listen_fd_ < 0) return;
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      die(who() + ": accept failed: " + errno_str());
    }
    set_cloexec(fd);
    (void)track_open(fd);
    // The dialer wrote its Hello immediately after connect; the bounded
    // read identifies which rank (and which channel) this socket is.
    Hello h;
    read_all_within(fd, &h, sizeof h, Clock::now() + opt_.dial_deadline,
                    who().c_str());
    LCMPI_CHECK(h.magic == Hello{}.magic, "bad data-phase hello");
    LCMPI_CHECK(h.intent == kIntentData, "bootstrap hello on the data phase");
    LCMPI_CHECK(h.rank >= 0 && h.rank < nranks_ && h.rank != rank_,
                "data-phase hello rank out of range");
    if (h.channel == 0)
      file_control(h.rank, fd);
    else
      file_bulk_accept(h.rank, fd);
  }
}

void SocketFabric::file_control(int peer, int fd) {
  Conn& c = conns_[static_cast<std::size_t>(peer)];
  if (c.bye_seen || c.dead) {  // stale dial from a pair already concluded
    track_close(fd);
    return;
  }
  set_nonblocking(fd, true);
  if (c.a.fd < 0 && !c.b_existed) {
    // First connection for this pair: it is the primary — full duplex,
    // and our TX if we ever send.
    c.a.fd = fd;
    epoll_add(fd, FdKind::kCtlA, peer);
  } else {
    // Cross-dial race: we already dialed (and adopted our dial as
    // primary) while the peer's dial was in flight. The accepted socket
    // becomes the secondary, receive-only link — the peer transmits on
    // the connection IT dialed, we transmit on ours, and neither ever
    // switches, so per-direction FIFO holds.
    LCMPI_CHECK(!c.b_existed && c.b.fd < 0, "third control connection for one pair");
    c.b.fd = fd;
    c.b_existed = true;
    epoll_add(fd, FdKind::kCtlB, peer);
  }
  if (!c.connected) {
    c.connected = true;
    stats_.pairs_connected++;
  }
}

// ------------------------------------------------------- progress engine

bool SocketFabric::progress(int timeout_ms) {
  bool made = false;
  std::array<epoll_event, 64> evs;
  int nev;
  do {
    nev = ::epoll_wait(epfd_, evs.data(), static_cast<int>(evs.size()), timeout_ms);
  } while (nev < 0 && errno == EINTR);
  if (nev < 0) die(who() + ": epoll_wait failed: " + errno_str());
  if (nev > 0) stats_.epoll_wakeups++;
  for (int i = 0; i < nev; ++i) {
    const std::uint64_t tag = evs[static_cast<std::size_t>(i)].data.u64;
    const auto kind = static_cast<FdKind>(tag >> 32);
    const int peer = static_cast<int>(tag & 0xffff'ffff);
    const std::uint32_t events = evs[static_cast<std::size_t>(i)].events;
    switch (kind) {
      case FdKind::kListen:
        accept_pending();
        made = true;
        break;
      case FdKind::kCtlA:
      case FdKind::kCtlB: {
        Conn& c = conns_[static_cast<std::size_t>(peer)];
        Link& l = kind == FdKind::kCtlA ? c.a : c.b;
        // Writability is activity too: a blocked send_frame armed
        // EPOLLOUT and is waiting in this very loop to retry.
        if ((events & EPOLLOUT) != 0) made = true;
        if (l.fd >= 0) made = pump_link(peer, l) || made;
        break;
      }
      case FdKind::kBulkA:
      case FdKind::kBulkB: {
        BulkPair& bp = bulk_[static_cast<std::size_t>(peer)];
        BulkChan* b = (kind == FdKind::kBulkA ? bp.a : bp.b).get();
        if ((events & EPOLLOUT) != 0) made = true;
        if (b != nullptr && !b->closed) made = pump_bulk(peer, b) || made;
        break;
      }
    }
  }
  // Keep chunked transfers flowing even when no fd fired (ring space
  // already available, fresh txq entries) and finish budget-capped ring
  // drains — control events above were handled first, which is the point
  // of the cap.
  made = pump_bulk_tx_pending() || made;
  made = pump_bulk_rx_pending() || made;
  return made;
}

// ---------------------------------------------------------- control plane

void SocketFabric::send_frame(int peer, const ProtoMsg& msg) {
  LCMPI_CHECK(peer >= 0 && peer < nranks_ && peer != rank_, "bad destination");
  Conn& c = ensure_conn(peer);
  if (c.dead || c.bye_seen || c.a.fd < 0)
    die(who() + ": send to rank " + std::to_string(peer) + " after it " +
        (c.bye_seen ? "finished" : "died"));

  FrameHeader h;
  h.kind = static_cast<std::uint8_t>(msg.kind);
  h.mode = msg.mode;
  h.tag = msg.tag;
  h.context = msg.context;
  h.size = msg.size;
  h.credit = msg.credit;
  h.sender_req = msg.sender_req;
  h.bulk_key = msg.bulk_key;
  h.seq = msg.seq;

  Bytes frame;
  ByteWriter w(frame);
  w.put(static_cast<std::uint32_t>(sizeof(FrameHeader) + msg.payload.size()));
  w.put(h);
  w.put_bytes(msg.payload.data(), msg.payload.size());

  const auto* p = reinterpret_cast<const unsigned char*>(frame.data());
  std::size_t off = 0;
  while (off < frame.size()) {
    if (c.a.fd < 0)
      die(who() + ": rank " + std::to_string(peer) + " died mid-send");
    const ssize_t n = ::send(c.a.fd, p + off, frame.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Kernel buffer full: transport backpressure. Drain whatever is
      // ready (the peer may be blocked writing to us — send/send
      // deadlock otherwise, since the engine only polls between fabric
      // calls). If nothing is ready, arm EPOLLOUT and wait for real
      // writability instead of spinning on a 1 ms retry clock.
      stats_.send_stalls++;
      if (progress(0)) continue;  // inbound drained; buffer may have cleared
      if (!c.a.out_armed) {
        epoll_arm_out(c.a.fd, FdKind::kCtlA, peer, true);
        c.a.out_armed = true;
      }
      (void)progress(static_cast<int>(opt_.poll_slice.count()));
      continue;
    }
    die(who() + ": rank " + std::to_string(peer) + " died mid-send (" +
        (n < 0 ? errno_str() : "connection closed") + ")");
  }
  if (c.a.out_armed && c.a.fd >= 0) {
    epoll_arm_out(c.a.fd, FdKind::kCtlA, peer, false);
    c.a.out_armed = false;
  }
  stats_.messages_tx++;
  stats_.bytes_tx += frame.size();
}

void SocketFabric::close_link(Link& l) noexcept {
  if (l.fd >= 0) {
    track_close(l.fd);  // closing also removes it from the epoll set
    l.fd = -1;
    l.out_armed = false;
  }
}

bool SocketFabric::pump_link(int peer, Link& l) {
  if (l.fd < 0) return false;
  Conn& c = conns_[static_cast<std::size_t>(peer)];
  bool any = false;
  for (;;) {
    constexpr std::size_t kChunk = 64 * 1024;
    const std::size_t at = l.rx.size();
    l.rx.resize(at + kChunk);
    const ssize_t n = ::recv(l.fd, l.rx.data() + at, kChunk, 0);
    if (n > 0) {
      l.rx.resize(at + static_cast<std::size_t>(n));
      stats_.bytes_rx += static_cast<std::uint64_t>(n);
      any = true;
      if (static_cast<std::size_t>(n) < kChunk) break;  // drained for now
      continue;
    }
    l.rx.resize(at);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // EOF or hard error: classify. The verdict belongs to the peer's TX
    // link (the secondary if a cross-dial created one, else the shared
    // primary): a BYE precedes a clean close there, so EOF without one —
    // after salvaging any complete frames — is a death. EOF on our
    // TX-only link while the peer's TX link is still open stays quiet;
    // the verdict arrives on the other socket.
    const std::string detail = n < 0 ? errno_str() : "EOF without goodbye";
    close_link(l);
    if (!l.rx.empty()) parse_frames(peer, l);  // salvage complete frames
    if (c.bye_seen) return any;
    Link& peer_tx = c.b_existed ? c.b : c.a;
    if (&l == &peer_tx || !c.any_open()) {
      c.dead = true;
      die(who() + ": rank " + std::to_string(peer) + " died (" + detail + ")");
    }
    return any;
  }
  if (any) parse_frames(peer, l);
  return any;
}

void SocketFabric::parse_frames(int peer, Link& l) {
  Conn& c = conns_[static_cast<std::size_t>(peer)];
  std::size_t pos = 0;
  while (l.rx.size() - pos >= sizeof(std::uint32_t)) {
    std::uint32_t len = 0;
    std::memcpy(&len, l.rx.data() + pos, sizeof len);
    LCMPI_CHECK(len >= sizeof(FrameHeader), "runt frame");
    if (l.rx.size() - pos - sizeof len < len) break;  // partial tail
    FrameHeader h;
    std::memcpy(&h, l.rx.data() + pos + sizeof len, sizeof h);
    const std::size_t payload_at = pos + sizeof len + sizeof h;
    const std::size_t payload_len = len - sizeof h;
    if (h.kind == kByeKind) {
      c.bye_seen = true;
    } else {
      ProtoMsg m;
      m.kind = static_cast<MsgKind>(h.kind);
      m.src = peer;
      m.mode = h.mode;
      m.tag = h.tag;
      m.context = h.context;
      m.size = h.size;
      m.credit = h.credit;
      m.sender_req = h.sender_req;
      m.bulk_key = h.bulk_key;
      m.seq = h.seq;
      if (payload_len > 0)
        m.payload.assign(l.rx.begin() + static_cast<std::ptrdiff_t>(payload_at),
                         l.rx.begin() + static_cast<std::ptrdiff_t>(payload_at + payload_len));
      arrivals_.push_back(std::move(m));
      stats_.messages_rx++;
    }
    pos = payload_at + payload_len;
  }
  if (pos > 0) l.rx.erase(l.rx.begin(), l.rx.begin() + static_cast<std::ptrdiff_t>(pos));
}

// ------------------------------------------------------------- bulk plane

SocketFabric::BulkChan& SocketFabric::ensure_bulk(int peer) {
  BulkPair& bp = bulk_[static_cast<std::size_t>(peer)];
  if (bp.tx != nullptr) return *bp.tx;
  // The peer may have dialed a bulk channel to us already; adopt it as
  // our TX too (full duplex) instead of opening a second socket.
  accept_pending();
  if (bp.b != nullptr && !bp.b->closed) {
    bp.tx = bp.b.get();
    return *bp.tx;
  }
  LCMPI_CHECK(bp.a == nullptr, "bulk primary exists without a tx choice");

  const int fd =
      dial(peers_[static_cast<std::size_t>(peer)],
           "rank " + std::to_string(peer) + " (bulk)",
           Clock::now() + opt_.dial_deadline);
  Hello h;
  h.rank = rank_;
  h.channel = 1;
  h.intent = kIntentData;
  write_all(fd, &h, sizeof h, who().c_str());

  auto b = std::make_unique<BulkChan>();
  b->fd = fd;
  b->dialer = true;

  BulkHello mine;
  mine.wants_memfd =
      (opt_.bulk == Bulk::kMemfd && opt_.domain == Domain::kUnix) ? 1 : 0;
  mine.ring_bytes = opt_.bulk_ring_bytes;
  write_all(fd, &mine, sizeof mine, who().c_str());
  if (mine.wants_memfd != 0) {
    // Optimistically build the ring and pass the fd now; if the acceptor
    // declines in its reply we unmap and fall back to stream mode. The
    // dialer's ring size governs (it creates the region); one byte ring
    // per direction, each fronted by its cache-padded control block.
    const auto ring = static_cast<std::size_t>(mine.ring_bytes);
    LCMPI_CHECK(ring > 0, "bulk ring size must be positive");
    const std::size_t map_len = 2 * (sizeof(RingCtl) + ring);
    const int mfd = ::memfd_create("lcmpi-bulk", MFD_CLOEXEC);
    if (mfd < 0) die(who() + ": memfd_create failed: " + errno_str());
    if (::ftruncate(mfd, static_cast<off_t>(map_len)) != 0)
      die(who() + ": ftruncate(memfd) failed: " + errno_str());
    void* base =
        ::mmap(nullptr, map_len, PROT_READ | PROT_WRITE, MAP_SHARED, mfd, 0);
    if (base == MAP_FAILED) die(who() + ": mmap(memfd) failed: " + errno_str());
    b->map_base = base;
    b->map_len = map_len;
    auto* raw = static_cast<std::byte*>(base);
    auto* ctl_a = reinterpret_cast<RingCtl*>(raw);
    std::byte* data_a = raw + sizeof(RingCtl);
    auto* ctl_b = reinterpret_cast<RingCtl*>(raw + sizeof(RingCtl) + ring);
    std::byte* data_b = raw + 2 * sizeof(RingCtl) + ring;
    // Initialize both control blocks BEFORE the fd crosses — the
    // SCM_RIGHTS pass is the synchronization point.
    new (ctl_a) RingCtl;
    new (ctl_b) RingCtl;
    ctl_a->head.store(0, std::memory_order_relaxed);
    ctl_a->tail.store(0, std::memory_order_relaxed);
    ctl_b->head.store(0, std::memory_order_relaxed);
    ctl_b->tail.store(0, std::memory_order_relaxed);
    send_fd(fd, mfd, who().c_str());
    ::close(mfd);  // the mapping keeps the memory alive
    // Ring A carries dialer->acceptor traffic, ring B the reverse.
    b->tx_ring = RingView{ctl_a, data_a, ring};
    b->rx_ring = RingView{ctl_b, data_b, ring};
  } else {
#if LCMPI_HAVE_ZEROCOPY
    // memfd never applies on AF_INET, so the stream decision is final
    // already — no need to wait for the reply.
    if (opt_.bulk_zerocopy && opt_.domain == Domain::kInet) {
      const int one = 1;
      b->zc_enabled =
          ::setsockopt(fd, SOL_SOCKET, SO_ZEROCOPY, &one, sizeof one) == 0;
    }
#endif
  }
  // Nothing more is written until the acceptor's 16-byte reply arrives
  // (read nonblockingly by try_finish_bulk_negotiation); transfers queue.
  b->negotiating = true;
  set_nonblocking(fd, true);
  epoll_add(fd, FdKind::kBulkA, peer);
  stats_.lazy_dials++;
  bp.a = std::move(b);
  bp.tx = bp.a.get();
  return *bp.tx;
}

void SocketFabric::file_bulk_accept(int peer, int fd) {
  BulkPair& bp = bulk_[static_cast<std::size_t>(peer)];
  LCMPI_CHECK(bp.b == nullptr, "second accepted bulk channel for one pair");

  auto b = std::make_unique<BulkChan>();
  b->fd = fd;
  b->dialer = false;

  const auto deadline = Clock::now() + opt_.dial_deadline;
  BulkHello theirs;
  read_all_within(fd, &theirs, sizeof theirs, deadline, who().c_str());
  LCMPI_CHECK(theirs.magic == BulkHello{}.magic, "bad bulk hello");

  BulkHello mine;
  mine.wants_memfd =
      (opt_.bulk == Bulk::kMemfd && opt_.domain == Domain::kUnix) ? 1 : 0;
  mine.ring_bytes = opt_.bulk_ring_bytes;

  if (theirs.wants_memfd != 0) {
    // The dialer already passed its memfd; take delivery regardless and
    // drop it if we are not participating (mixed-mode worlds).
    const int mfd = recv_fd(fd, who().c_str());
    if (mine.wants_memfd != 0) {
      const auto ring = static_cast<std::size_t>(theirs.ring_bytes);
      LCMPI_CHECK(ring > 0, "bulk ring size must be positive");
      const std::size_t map_len = 2 * (sizeof(RingCtl) + ring);
      void* base =
          ::mmap(nullptr, map_len, PROT_READ | PROT_WRITE, MAP_SHARED, mfd, 0);
      if (base == MAP_FAILED)
        die(who() + ": mmap(memfd) failed: " + errno_str());
      b->map_base = base;
      b->map_len = map_len;
      auto* raw = static_cast<std::byte*>(base);
      auto* ctl_a = reinterpret_cast<RingCtl*>(raw);
      std::byte* data_a = raw + sizeof(RingCtl);
      auto* ctl_b = reinterpret_cast<RingCtl*>(raw + sizeof(RingCtl) + ring);
      std::byte* data_b = raw + 2 * sizeof(RingCtl) + ring;
      b->tx_ring = RingView{ctl_b, data_b, ring};
      b->rx_ring = RingView{ctl_a, data_a, ring};
      stats_.memfd_pairs++;
    }
    ::close(mfd);
  }
  write_all(fd, &mine, sizeof mine, who().c_str());
  if (!b->use_ring()) {
#if LCMPI_HAVE_ZEROCOPY
    if (opt_.bulk_zerocopy && opt_.domain == Domain::kInet) {
      const int one = 1;
      b->zc_enabled =
          ::setsockopt(fd, SOL_SOCKET, SO_ZEROCOPY, &one, sizeof one) == 0;
    }
#endif
  }
  set_nonblocking(fd, true);
  epoll_add(fd, FdKind::kBulkB, peer);
  bp.b = std::move(b);
}

bool SocketFabric::try_finish_bulk_negotiation(int peer, BulkChan* b) {
  if (!b->negotiating) return true;
  // Read EXACTLY the 16-byte reply — anything after it is transfer data
  // (doorbells or a header) and belongs to the normal rx pump.
  while (b->neg_got < sizeof(BulkHello)) {
    const ssize_t n =
        ::recv(b->fd, b->neg + b->neg_got, sizeof(BulkHello) - b->neg_got, 0);
    if (n > 0) {
      b->neg_got += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return false;
    bulk_eof(peer, b, n < 0 ? errno_str().c_str() : "EOF during bulk handshake");
    return false;
  }
  BulkHello theirs;
  std::memcpy(&theirs, b->neg, sizeof theirs);
  LCMPI_CHECK(theirs.magic == BulkHello{}.magic, "bad bulk hello reply");
  if (b->map_base != nullptr) {
    if (theirs.wants_memfd != 0) {
      stats_.memfd_pairs++;
    } else {
      // Acceptor declined (kStream rank in a mixed world): stream mode.
      ::munmap(b->map_base, b->map_len);
      b->map_base = nullptr;
      b->map_len = 0;
    }
  }
  b->negotiating = false;
  return true;
}

void SocketFabric::bulk_queue(int peer, std::uint64_t cookie, const void* data,
                              std::size_t size) {
  BulkChan& b = ensure_bulk(peer);
  if (b.closed)
    die(who() + ": bulk send to rank " + std::to_string(peer) + " after it died");
  BulkChan::Tx t;
  t.cookie = cookie;
  t.data = static_cast<const std::byte*>(data);
  t.size = size;
  put_bulk_hdr(t.hdr, cookie, size);
  b.txq.push_back(t);
  note_bulk_tx_pending(peer);
  // Start moving bytes immediately — the common case (ring space or an
  // empty socket buffer) completes small transfers in this one call.
  if (try_finish_bulk_negotiation(peer, &b)) (void)pump_bulk_tx(peer, &b);
}

void SocketFabric::note_bulk_tx_pending(int peer) {
  BulkChan* b = bulk_[static_cast<std::size_t>(peer)].tx;
  if (b == nullptr || b->tx_listed) return;
  b->tx_listed = true;
  bulk_tx_pending_.push_back(peer);
}

bool SocketFabric::pump_bulk(int peer, BulkChan* b) {
  if (b == nullptr || b->closed) return false;
  if (!try_finish_bulk_negotiation(peer, b)) return false;
  bool any = pump_bulk_rx(peer, b);
  if (b->closed) return any;
  any = pump_bulk_tx(peer, b) || any;
  return any;
}

bool SocketFabric::pump_bulk_tx_pending() {
  bool any = false;
  for (std::size_t i = 0; i < bulk_tx_pending_.size();) {
    const int peer = bulk_tx_pending_[i];
    BulkChan* b = bulk_[static_cast<std::size_t>(peer)].tx;
    bool done = b == nullptr || b->closed;
    if (!done) {
      if (try_finish_bulk_negotiation(peer, b))
        any = pump_bulk_tx(peer, b) || any;
      done = b->closed || (b->txq.empty() && b->zc_wait.empty());
    }
    if (done) {
      if (b != nullptr) b->tx_listed = false;
      bulk_tx_pending_[i] = bulk_tx_pending_.back();
      bulk_tx_pending_.pop_back();
    } else {
      ++i;
    }
  }
  return any;
}

void SocketFabric::note_bulk_rx_pending(int peer, BulkChan* b) {
  if (b->rx_listed) return;
  b->rx_listed = true;
  bulk_rx_pending_.push_back(peer);
}

bool SocketFabric::pump_bulk_rx_pending() {
  bool any = false;
  for (std::size_t i = 0; i < bulk_rx_pending_.size();) {
    const int peer = bulk_rx_pending_[i];
    BulkPair& bp = bulk_[static_cast<std::size_t>(peer)];
    bool keep = false;
    for (BulkChan* b : {bp.a.get(), bp.b.get()}) {
      if (b == nullptr || !b->rx_listed) continue;
      b->rx_listed = false;  // pump_bulk_rx re-lists if it caps out again
      if (!b->closed) any = pump_bulk_rx(peer, b) || any;
      keep = keep || b->rx_listed;
    }
    if (keep) {
      ++i;
    } else {
      bulk_rx_pending_[i] = bulk_rx_pending_.back();
      bulk_rx_pending_.pop_back();
    }
  }
  return any;
}

/// EOF/reset on the bulk socket. Mid-transfer (either direction) this is
/// a death; otherwise stay quiet — the control socket's BYE-or-EOF
/// classification owns the verdict for idle peers. Transfers waiting only
/// on zerocopy reaping are NOT mid-transfer: their bytes are fully with
/// the kernel, and a closed connection (ACKed or reset) releases the
/// pinned pages either way, so the send buffer is reusable — complete
/// them rather than racing the errqueue against the peer's clean BYE.
void SocketFabric::bulk_eof(int peer, BulkChan* b, const char* detail) {
  if (!b->zc_wait.empty()) {
    (void)reap_zerocopy(b);  // harvest anything already confirmed
    while (!b->zc_wait.empty()) {
      ProtoMsg m;
      m.kind = MsgKind::kBulkSent;
      m.src = rank_;
      m.sender_req = b->zc_wait.front().cookie;
      arrivals_.push_back(std::move(m));
      b->zc_wait.pop_front();
    }
  }
  // Actually close: a lingering half-dead fd in the epoll set would spin
  // the progress loop on EPOLLHUP forever.
  b->closed = true;
  track_close(b->fd);
  b->fd = -1;
  b->out_armed = false;
  const bool mid = b->in_transfer || !b->txq.empty() || b->negotiating;
  b->negotiating = false;
  if (mid)
    die(who() + ": rank " + std::to_string(peer) + " died mid-bulk-transfer (" +
        detail + ")");
}

/// Parsed a complete 16-byte transfer header: bind the registered landing
/// buffer. The engine guarantees bulk_post ran before its CTS, and the
/// sender only writes after the CTS — so a missing registration is a
/// protocol bug, not a race.
void SocketFabric::begin_bulk_rx(int peer, BulkChan* b) {
  get_bulk_hdr(b->rhdr, &b->rx_cookie, &b->rx_size);
  b->rhdr_got = 0;
  const auto it = bulk_regs_.find({peer, b->rx_cookie});
  LCMPI_CHECK(it != bulk_regs_.end(),
              "bulk transfer with no registered landing buffer");
  b->rx_dst = static_cast<std::byte*>(it->second.first);
  b->rx_cap = it->second.second;
  bulk_regs_.erase(it);
  b->rx_got = 0;
  b->in_transfer = true;
}

void SocketFabric::finish_bulk_rx(int peer, BulkChan* b) {
  b->in_transfer = false;
  stats_.bulk_rx_transfers++;
  stats_.bulk_rx_bytes += b->rx_size;
  ProtoMsg m;
  m.kind = MsgKind::kBulkDelivered;
  m.src = peer;
  m.sender_req = b->rx_cookie;
  m.size = static_cast<std::uint32_t>(b->rx_size);
  arrivals_.push_back(std::move(m));
}

/// Rings a ring-mode peer's doorbell: one byte meaning "state changed"
/// (new data, or space freed). Best-effort — EAGAIN means the socket
/// already holds unread doorbells, which is wake-up enough.
void SocketFabric::ring_doorbell(BulkChan* b) {
  if (b->fd < 0) return;
  const char byte = 1;
  for (;;) {
    const ssize_t n = ::send(b->fd, &byte, 1, MSG_NOSIGNAL);
    if (n > 0) stats_.doorbells_tx++;
    if (n < 0 && errno == EINTR) continue;
    return;  // sent, EAGAIN, or peer gone (classified elsewhere)
  }
}

bool SocketFabric::pump_bulk_rx(int peer, BulkChan* b) {
  if (b == nullptr || b->closed || b->negotiating) return false;
  bool any = false;
  // Fairness budget: cap the bytes one pump copies so a multi-MiB drain
  // (the ring holds up to bulk_ring_bytes) cannot hold the progress loop —
  // and any control frame behind it — for hundreds of microseconds. The
  // remainder is picked up by the level-triggered epoll (stream) or the
  // rx-pending list (ring).
  const std::uint64_t budget = opt_.bulk_chunk_bytes;
  if (b->use_ring()) {
    // Drain doorbell bytes (their only content is "look at the ring").
    char bells[256];
    for (;;) {
      const ssize_t n = ::recv(b->fd, bells, sizeof bells, 0);
      if (n > 0) {
        if (static_cast<std::size_t>(n) < sizeof bells) break;
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      bulk_eof(peer, b, n < 0 ? errno_str().c_str() : "EOF on bulk socket");
      return any;
    }
    // Consume what the ring holds, up to the budget.
    std::uint64_t consumed = 0;
    for (;;) {
      if (consumed >= budget) break;
      const std::uint64_t avail = b->rx_ring.readable();
      if (avail == 0) break;
      if (!b->in_transfer) {
        const std::uint64_t n =
            std::min<std::uint64_t>(avail, kBulkHdrBytes - b->rhdr_got);
        b->rx_ring.read(b->rhdr + b->rhdr_got, n);
        b->rhdr_got += n;
        consumed += n;
        any = true;
        if (b->rhdr_got == kBulkHdrBytes) begin_bulk_rx(peer, b);
        if (b->in_transfer && b->rx_size == 0) finish_bulk_rx(peer, b);
        continue;
      }
      const std::uint64_t n = std::min(
          {avail, b->rx_size - b->rx_got, budget - consumed});
      const std::uint64_t in_cap =
          b->rx_got < b->rx_cap ? std::min(n, b->rx_cap - b->rx_got) : 0;
      if (in_cap > 0) {
        b->rx_ring.read(b->rx_dst + b->rx_got, in_cap);
        b->rx_got += in_cap;
      }
      const std::uint64_t over = n - in_cap;  // truncation: consume + drop
      if (over > 0) {
        b->rx_ring.discard(over);
        b->rx_got += over;
      }
      consumed += n;
      any = true;
      if (b->rx_got == b->rx_size) finish_bulk_rx(peer, b);
    }
    if (consumed > 0) ring_doorbell(b);  // freed ring space: credit
    // Budget hit with data still in the ring: the sender may never ring
    // another doorbell (it could be done writing), so self-schedule.
    if (b->rx_ring.readable() > 0) note_bulk_rx_pending(peer, b);
  } else {
    static thread_local std::vector<unsigned char> overflow(64 * 1024);
    std::uint64_t got = 0;
    for (;;) {
      if (got >= budget) break;  // level-triggered epoll re-reports the rest
      void* dst = nullptr;
      std::size_t want = 0;
      if (!b->in_transfer) {
        dst = b->rhdr + b->rhdr_got;
        want = kBulkHdrBytes - static_cast<std::size_t>(b->rhdr_got);
      } else if (b->rx_got < b->rx_cap) {
        dst = b->rx_dst + b->rx_got;
        want = static_cast<std::size_t>(
            std::min(b->rx_size - b->rx_got, b->rx_cap - b->rx_got));
      } else {
        dst = overflow.data();
        want = static_cast<std::size_t>(std::min<std::uint64_t>(
            b->rx_size - b->rx_got, overflow.size()));
      }
      want = static_cast<std::size_t>(
          std::min<std::uint64_t>(want, budget - got));
      const ssize_t n = ::recv(b->fd, dst, want, 0);
      if (n > 0) {
        any = true;
        got += static_cast<std::uint64_t>(n);
        if (!b->in_transfer) {
          b->rhdr_got += static_cast<std::uint64_t>(n);
          if (b->rhdr_got == kBulkHdrBytes) {
            begin_bulk_rx(peer, b);
            if (b->rx_size == 0) finish_bulk_rx(peer, b);
          }
        } else {
          b->rx_got += static_cast<std::uint64_t>(n);
          if (b->rx_got == b->rx_size) finish_bulk_rx(peer, b);
        }
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      bulk_eof(peer, b, n < 0 ? errno_str().c_str() : "EOF on bulk socket");
      return any;
    }
#if defined(TCP_QUICKACK)
    if (any && opt_.domain == Domain::kInet) {
      // MSG_ZEROCOPY completions on TCP arrive only once the data is
      // ACKed; on an otherwise-quiet connection the delayed-ACK timer
      // (~40 ms) would stall the sender's withheld kBulkSent. Re-arm
      // quickack after every drain so the sender's pages free promptly.
      int one = 1;
      (void)::setsockopt(b->fd, IPPROTO_TCP, TCP_QUICKACK, &one, sizeof one);
    }
#endif
  }
  return any;
}

bool SocketFabric::pump_bulk_tx(int peer, BulkChan* b) {
  if (b == nullptr || b->closed || b->negotiating) return false;
  bool any = false;
  if (!b->zc_wait.empty()) any = reap_zerocopy(b) || any;
  // The chunk budget bounds how much payload one pump moves, so control
  // frames interleave with a long transfer at chunk granularity.
  std::uint64_t budget = opt_.bulk_chunk_bytes;
  bool rang = false;
  bool blocked = false;  // stream socket hit EAGAIN (arm EPOLLOUT)
  while (!b->txq.empty() && budget > 0) {
    BulkChan::Tx& t = b->txq.front();
    if (b->use_ring()) {
      if (t.hdr_off < kBulkHdrBytes) {
        const std::uint64_t n = std::min(kBulkHdrBytes - t.hdr_off,
                                         b->tx_ring.writable());
        if (n == 0) break;
        b->tx_ring.write(t.hdr + t.hdr_off, n);
        t.hdr_off += n;
        any = rang = true;
        if (t.hdr_off < kBulkHdrBytes) break;  // ring crammed full
      }
      if (t.off < t.size) {
        const std::uint64_t n =
            std::min({t.size - t.off, b->tx_ring.writable(), budget});
        if (n == 0) break;  // ring full: the peer's doorbell will wake us
        b->tx_ring.write(t.data + t.off, n);
        t.off += n;
        budget -= n;
        any = rang = true;
      }
    } else {
      if (t.hdr_off < kBulkHdrBytes) {
        const ssize_t n =
            ::send(b->fd, t.hdr + t.hdr_off,
                   static_cast<std::size_t>(kBulkHdrBytes - t.hdr_off),
                   MSG_NOSIGNAL);
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
          blocked = true;
          break;
        }
        if (n <= 0) {
          bulk_eof(peer, b, n < 0 ? errno_str().c_str() : "peer closed");
          return any;
        }
        t.hdr_off += static_cast<std::uint64_t>(n);
        any = true;
        if (t.hdr_off < kBulkHdrBytes) {
          blocked = true;
          break;
        }
      }
      while (t.off < t.size && budget > 0) {
        const std::size_t chunk = static_cast<std::size_t>(
            std::min<std::uint64_t>(t.size - t.off, budget));
        int flags = MSG_NOSIGNAL;
        bool zc = false;
#if LCMPI_HAVE_ZEROCOPY
        if (b->zc_enabled && chunk >= kZcMinChunk) {
          flags |= MSG_ZEROCOPY;
          zc = true;
        }
#endif
        ssize_t n = ::send(b->fd, t.data + t.off, chunk, flags);
#if LCMPI_HAVE_ZEROCOPY
        if (n < 0 && zc && errno == ENOBUFS) {
          // Optmem exhausted: fall back to plain copies for good.
          b->zc_enabled = false;
          zc = false;
          n = ::send(b->fd, t.data + t.off, chunk, MSG_NOSIGNAL);
        }
#endif
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
          blocked = true;
          break;
        }
        if (n <= 0) {
          bulk_eof(peer, b, n < 0 ? errno_str().c_str() : "peer closed");
          return any;
        }
        if (zc) {
          stats_.zerocopy_sends++;
          t.zc_used = true;
          t.zc_last = b->zc_seq;
          b->zc_seq++;
        }
        t.off += static_cast<std::uint64_t>(n);
        budget -= static_cast<std::uint64_t>(n);
        any = true;
      }
      if (blocked) break;
    }
    if (t.hdr_off == kBulkHdrBytes && t.off == t.size) {
      stats_.bulk_tx_transfers++;
      stats_.bulk_tx_bytes += t.size;
      if (t.zc_used && t.zc_last >= b->zc_done) {
        // Pages still pinned by the kernel: hold kBulkSent until the
        // errqueue confirms (the engine's send buffer must stay valid).
        b->zc_wait.push_back({t.cookie, t.zc_last});
      } else {
        ProtoMsg m;
        m.kind = MsgKind::kBulkSent;
        m.src = rank_;
        m.sender_req = t.cookie;
        arrivals_.push_back(std::move(m));
      }
      b->txq.pop_front();
    } else {
      break;
    }
  }
  if (rang) ring_doorbell(b);  // data available
  // A stream sender blocked on a full kernel buffer waits for real
  // writability; everyone else keeps EPOLLOUT off (satellite: no 1 ms
  // POLLOUT retry clock anywhere on the bulk plane).
  if (b->fd >= 0 && blocked != b->out_armed) {
    const FdKind kind = bulk_[static_cast<std::size_t>(peer)].a.get() == b
                            ? FdKind::kBulkA
                            : FdKind::kBulkB;
    epoll_arm_out(b->fd, kind, peer, blocked);
    b->out_armed = blocked;
  }
  return any;
}

bool SocketFabric::reap_zerocopy(BulkChan* b) {
  bool any = false;
#if LCMPI_HAVE_ZEROCOPY
  for (;;) {
    msghdr msg{};
    alignas(cmsghdr) char ctl[256];
    msg.msg_control = ctl;
    msg.msg_controllen = sizeof ctl;
    const ssize_t n = ::recvmsg(b->fd, &msg, MSG_ERRQUEUE);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN: queue empty
    }
    for (cmsghdr* cm = CMSG_FIRSTHDR(&msg); cm != nullptr;
         cm = CMSG_NXTHDR(&msg, cm)) {
      if (cm->cmsg_len < CMSG_LEN(sizeof(sock_extended_err))) continue;
      sock_extended_err serr;
      std::memcpy(&serr, CMSG_DATA(cm), sizeof serr);
      if (serr.ee_errno != 0 || serr.ee_origin != SO_EE_ORIGIN_ZEROCOPY)
        continue;
      // [ee_info, ee_data] is the completed zerocopy-send seq range.
      stats_.zerocopy_completions += serr.ee_data - serr.ee_info + 1;
      b->zc_done = std::max(b->zc_done, serr.ee_data + 1);
    }
  }
#endif
  while (!b->zc_wait.empty() && b->zc_wait.front().zc_last < b->zc_done) {
    ProtoMsg m;
    m.kind = MsgKind::kBulkSent;
    m.src = rank_;
    m.sender_req = b->zc_wait.front().cookie;
    arrivals_.push_back(std::move(m));
    b->zc_wait.pop_front();
    any = true;
  }
  return any;
}

void SocketFabric::flush_bulk() noexcept {
  // Bounded best-effort drain of whatever the bulk plane still owes
  // (normally nothing: every engine send completed before finalize).
  try {
    const auto deadline = Clock::now() + std::chrono::seconds(2);
    for (;;) {
      bool pending = false;
      bool moved = false;
      for (int peer = 0; peer < nranks_; ++peer) {
        if (peer == rank_) continue;
        BulkChan* b = bulk_[static_cast<std::size_t>(peer)].tx;
        if (b == nullptr || b->closed) continue;
        if (b->txq.empty() && b->zc_wait.empty()) continue;
        pending = true;
        if (try_finish_bulk_negotiation(peer, b))
          moved = pump_bulk_tx(peer, b) || moved;
      }
      if (!pending || Clock::now() >= deadline) return;
      if (!moved) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  } catch (...) {
    // Teardown path: a dead peer here is somebody else's error to report.
  }
}

void SocketFabric::say_bye() noexcept {
  // Best-effort goodbye on each live TX link so peers can tell "finished"
  // from "died". The sockets are nonblocking; a full buffer or dead peer
  // just means no BYE.
  Bytes frame;
  ByteWriter w(frame);
  w.put(static_cast<std::uint32_t>(sizeof(FrameHeader)));
  FrameHeader bye;
  bye.kind = kByeKind;
  w.put(bye);
  for (Conn& c : conns_) {
    if (c.a.fd < 0 || c.dead) continue;
    std::size_t off = 0;
    while (off < frame.size()) {
      const ssize_t n = ::send(c.a.fd, frame.data() + off, frame.size() - off,
                               MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      break;  // EAGAIN/EPIPE/anything: give up quietly
    }
  }
}

}  // namespace lcmpi::fabric
