#include "src/fabric/socket_fabric.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <utility>

#if defined(__linux__) && defined(SO_ZEROCOPY) && defined(MSG_ZEROCOPY)
#include <linux/errqueue.h>
#define LCMPI_HAVE_ZEROCOPY 1
#else
#define LCMPI_HAVE_ZEROCOPY 0
#endif

namespace lcmpi::fabric {
namespace {

using Clock = std::chrono::steady_clock;

// Frame header behind the u32 length prefix. Full-width fields: this wire
// is private to the fabric, so nothing is squeezed into Table-1 widths.
struct FrameHeader {
  std::uint8_t kind = 0;  // MsgKind, or kByeKind for the goodbye record
  std::uint8_t mode = 0;
  std::int32_t tag = 0;
  std::uint32_t context = 0;
  std::uint32_t size = 0;
  std::uint32_t credit = 0;
  std::uint64_t sender_req = 0;
  std::uint64_t bulk_key = 0;
  std::uint64_t seq = 0;
};

// Clean-shutdown sentinel; never a live MsgKind (those start at 1).
constexpr std::uint8_t kByeKind = 0;

[[noreturn]] void die(const std::string& what) { throw FabricError(what); }

std::string errno_str() { return std::strerror(errno); }

void set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  LCMPI_CHECK(flags >= 0, "fcntl(F_GETFL) failed");
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  LCMPI_CHECK(::fcntl(fd, F_SETFL, want) == 0, "fcntl(F_SETFL) failed");
}

void set_cloexec(int fd) { (void)::fcntl(fd, F_SETFD, FD_CLOEXEC); }

/// Blocking full write during the rendezvous (EINTR-safe).
void write_all(int fd, const void* data, std::size_t n, const char* what) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd, p + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      die(std::string(what) + ": write failed: " + errno_str());
    }
    off += static_cast<std::size_t>(w);
  }
}

/// Blocking full read during the rendezvous (EINTR-safe; EOF is fatal —
/// a peer died mid-handshake).
void read_all(int fd, void* data, std::size_t n, const char* what) {
  auto* p = static_cast<unsigned char*>(data);
  std::size_t off = 0;
  while (off < n) {
    const ssize_t r = ::recv(fd, p + off, n - off, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      die(std::string(what) + ": read failed: " + errno_str());
    }
    if (r == 0) die(std::string(what) + ": peer closed during rendezvous");
    off += static_cast<std::size_t>(r);
  }
}

struct Addr {
  sockaddr_storage ss{};
  socklen_t len = 0;
  int family() const { return ss.ss_family; }
};

Addr unix_addr(const std::string& path) {
  Addr a;
  auto* sun = reinterpret_cast<sockaddr_un*>(&a.ss);
  sun->sun_family = AF_UNIX;
  LCMPI_CHECK(path.size() < sizeof(sun->sun_path), "AF_UNIX path too long");
  std::memcpy(sun->sun_path, path.c_str(), path.size() + 1);
  a.len = static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) + path.size() + 1);
  return a;
}

Addr inet_addr_port(std::uint16_t port) {
  Addr a;
  auto* sin = reinterpret_cast<sockaddr_in*>(&a.ss);
  sin->sin_family = AF_INET;
  sin->sin_port = htons(port);
  sin->sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  a.len = sizeof(sockaddr_in);
  return a;
}

int make_socket(int family) {
  const int fd = ::socket(family, SOCK_STREAM, 0);
  if (fd < 0) die("socket() failed: " + errno_str());
  set_cloexec(fd);
  if (family == AF_INET) {
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }
  return fd;
}

int bind_listener(const Addr& a) {
  const int fd = make_socket(a.family());
  if (a.family() == AF_INET) {
    const int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&a.ss), a.len) != 0)
    die("bind() failed: " + errno_str());
  if (::listen(fd, SOMAXCONN) != 0) die("listen() failed: " + errno_str());
  return fd;
}

std::uint16_t local_port(int fd) {
  sockaddr_in sin{};
  socklen_t len = sizeof sin;
  LCMPI_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&sin), &len) == 0,
              "getsockname failed");
  return ntohs(sin.sin_port);
}

/// Accept with a deadline (the listener is blocking; poll() bounds it).
int accept_within(int listen_fd, Clock::time_point deadline, const char* what) {
  for (;;) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (left.count() <= 0) die(std::string(what) + ": rendezvous accept timed out");
    pollfd p{listen_fd, POLLIN, 0};
    const int rc = ::poll(&p, 1, static_cast<int>(left.count()));
    if (rc < 0) {
      if (errno == EINTR) continue;
      die(std::string(what) + ": poll failed: " + errno_str());
    }
    if (rc == 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      die(std::string(what) + ": accept failed: " + errno_str());
    }
    set_cloexec(fd);
    return fd;
  }
}

// Rendezvous hello: who is dialing, and (during bootstrap) where their
// own listener lives. `channel` separates the two per-pair connections:
// 0 = framed control socket, 1 = bulk data socket.
struct Hello {
  std::uint32_t magic = 0x4c43'4d50;  // "LCMP"
  std::int32_t rank = -1;
  std::uint16_t port = 0;             // kInet listener
  char unix_path[104] = {};           // kUnix listener
  std::uint8_t channel = 0;
};

// Per-pair bulk negotiation, exchanged on the bulk socket right after the
// Hello. Both sides willing (kMemfd + AF_UNIX) => the dialer creates a
// memfd and passes it via SCM_RIGHTS; any mismatch degrades the pair to
// plain stream mode — worlds may mix kMemfd and kStream ranks freely.
struct BulkHello {
  std::uint32_t magic = 0x4c42'4c4b;  // "LBLK"
  std::uint8_t wants_memfd = 0;
  std::uint8_t pad[3] = {};
  std::uint64_t ring_bytes = 0;  // dialer's value sizes the rings
};

// Each bulk transfer is one 16-byte header then `size` raw payload bytes
// — no per-chunk framing on the entire data plane.
constexpr std::size_t kBulkHdrBytes = 16;
void put_bulk_hdr(unsigned char* p, std::uint64_t cookie, std::uint64_t size) {
  std::memcpy(p, &cookie, sizeof cookie);
  std::memcpy(p + sizeof cookie, &size, sizeof size);
}
void get_bulk_hdr(const unsigned char* p, std::uint64_t* cookie, std::uint64_t* size) {
  std::memcpy(cookie, p, sizeof *cookie);
  std::memcpy(size, p + sizeof *cookie, sizeof *size);
}

// MSG_ZEROCOPY pins pages and reaps completions through the error queue;
// below this chunk size the bookkeeping costs more than the copy saves
// (the kernel's own documented guidance is ~10 KB; we are conservative).
constexpr std::size_t kZcMinChunk = 64 * 1024;

// Shared-ring control block: one producer counter and one consumer
// counter per direction, each on its own cache line, both monotonic (the
// ring index is counter % capacity). Lives in the memfd mapping, so the
// atomics synchronize across processes.
struct RingCtl {
  alignas(64) std::atomic<std::uint64_t> head;  // producer: bytes written
  alignas(64) std::atomic<std::uint64_t> tail;  // consumer: bytes read
};

// One direction of the shared ring, as seen by whichever side this is.
// Producer calls writable()/write(); consumer calls readable()/read()/
// discard(). The release store on the counter publishes the memcpy to
// the other process (acquire load on the far side).
struct RingView {
  RingCtl* ctl = nullptr;
  std::byte* data = nullptr;
  std::uint64_t cap = 0;

  [[nodiscard]] std::uint64_t writable() const {
    return cap - (ctl->head.load(std::memory_order_relaxed) -
                  ctl->tail.load(std::memory_order_acquire));
  }
  void write(const void* p, std::uint64_t n) {
    const std::uint64_t head = ctl->head.load(std::memory_order_relaxed);
    const std::uint64_t at = head % cap;
    const std::uint64_t first = std::min(n, cap - at);
    std::memcpy(data + at, p, first);
    if (n > first)
      std::memcpy(data, static_cast<const std::byte*>(p) + first, n - first);
    ctl->head.store(head + n, std::memory_order_release);
  }

  [[nodiscard]] std::uint64_t readable() const {
    return ctl->head.load(std::memory_order_acquire) -
           ctl->tail.load(std::memory_order_relaxed);
  }
  void read(void* p, std::uint64_t n) {
    const std::uint64_t tail = ctl->tail.load(std::memory_order_relaxed);
    const std::uint64_t at = tail % cap;
    const std::uint64_t first = std::min(n, cap - at);
    std::memcpy(p, data + at, first);
    if (n > first)
      std::memcpy(static_cast<std::byte*>(p) + first, data, n - first);
    ctl->tail.store(tail + n, std::memory_order_release);
  }
  void discard(std::uint64_t n) {  // truncated transfer: consume, drop
    ctl->tail.store(ctl->tail.load(std::memory_order_relaxed) + n,
                    std::memory_order_release);
  }
};

/// Passes one fd over an AF_UNIX socket (blocking; bootstrap only).
void send_fd(int sock, int fd, const char* what) {
  msghdr msg{};
  char token = 'F';
  iovec iov{&token, 1};
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  alignas(cmsghdr) char ctl[CMSG_SPACE(sizeof(int))] = {};
  msg.msg_control = ctl;
  msg.msg_controllen = sizeof ctl;
  cmsghdr* cm = CMSG_FIRSTHDR(&msg);
  cm->cmsg_level = SOL_SOCKET;
  cm->cmsg_type = SCM_RIGHTS;
  cm->cmsg_len = CMSG_LEN(sizeof(int));
  std::memcpy(CMSG_DATA(cm), &fd, sizeof(int));
  for (;;) {
    const ssize_t n = ::sendmsg(sock, &msg, MSG_NOSIGNAL);
    if (n >= 0) return;
    if (errno == EINTR) continue;
    die(std::string(what) + ": fd pass failed: " + errno_str());
  }
}

[[nodiscard]] int recv_fd(int sock, const char* what) {
  msghdr msg{};
  char token = 0;
  iovec iov{&token, 1};
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  alignas(cmsghdr) char ctl[CMSG_SPACE(sizeof(int))] = {};
  msg.msg_control = ctl;
  msg.msg_controllen = sizeof ctl;
  for (;;) {
    const ssize_t n = ::recvmsg(sock, &msg, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      die(std::string(what) + ": fd receive failed: " + errno_str());
    }
    if (n == 0) die(std::string(what) + ": peer closed during fd pass");
    break;
  }
  const cmsghdr* cm = CMSG_FIRSTHDR(&msg);
  LCMPI_CHECK(cm != nullptr && cm->cmsg_level == SOL_SOCKET &&
                  cm->cmsg_type == SCM_RIGHTS &&
                  cm->cmsg_len == CMSG_LEN(sizeof(int)),
              "fd pass: no SCM_RIGHTS attached");
  int fd = -1;
  std::memcpy(&fd, CMSG_DATA(cm), sizeof(int));
  return fd;
}

}  // namespace

// ----------------------------------------------------------- bulk channel

/// Everything one peer pair's bulk data plane owns: the dedicated socket,
/// the optional memfd ring mapping, and both transfer state machines.
struct SocketFabric::BulkChan {
  int fd = -1;
  bool closed = false;
  bool dialer = false;  // we initiated this connection (own ring A)
  void* map_base = nullptr;  // non-null: memfd rings negotiated
  std::size_t map_len = 0;
  RingView tx_ring, rx_ring;
  [[nodiscard]] bool use_ring() const { return map_base != nullptr; }

  // Transmit side: FIFO of transfers; head-of-queue progresses in
  // bounded chunks. `data` points into the engine's send buffer, valid
  // until the kBulkSent note (the MPI contract for send completion).
  struct Tx {
    std::uint64_t cookie = 0;
    const std::byte* data = nullptr;
    std::uint64_t size = 0;
    std::uint64_t off = 0;  // payload bytes handed to ring/kernel
    unsigned char hdr[kBulkHdrBytes];
    std::uint64_t hdr_off = 0;
    bool zc_used = false;
    std::uint32_t zc_last = 0;  // highest zerocopy seq this transfer used
  };
  std::deque<Tx> txq;
  // Fully-written transfers whose pages the kernel still references
  // (MSG_ZEROCOPY); kBulkSent is withheld until the errqueue confirms.
  struct ZcWait {
    std::uint64_t cookie = 0;
    std::uint32_t zc_last = 0;
  };
  std::deque<ZcWait> zc_wait;

  // Receive side: one transfer at a time (the plane is a FIFO stream).
  unsigned char rhdr[kBulkHdrBytes];
  std::uint64_t rhdr_got = 0;
  bool in_transfer = false;
  std::uint64_t rx_cookie = 0;
  std::uint64_t rx_size = 0;
  std::uint64_t rx_got = 0;
  std::byte* rx_dst = nullptr;  // registered landing buffer
  std::uint64_t rx_cap = 0;     // bytes past this are consumed and dropped

  bool zc_enabled = false;
  std::uint32_t zc_seq = 0;   // seq the next MSG_ZEROCOPY send will get
  std::uint32_t zc_done = 0;  // all seqs below this are reaped

  ~BulkChan() {
    if (map_base != nullptr) ::munmap(map_base, map_len);
    if (fd >= 0) ::close(fd);
  }
};

// -------------------------------------------------------------- endpoint

class SocketFabric::Ep final : public Endpoint {
 public:
  Ep(SocketFabric& f, int rank) : Endpoint(f, rank), owner_(f) {}

  [[nodiscard]] TimePoint now() const override { return owner_.wall_now(); }

  void send(sim::Actor&, int dst, ProtoMsg msg) override {
    msg.src = rank_;
    owner_.send_frame(dst, msg);
  }

  std::optional<ProtoMsg> poll(sim::Actor&) override {
    if (owner_.arrivals_.empty()) {
      // One fair sweep over all peers; pump_peer parses complete frames,
      // pump_bulk moves a bounded chunk of any in-flight transfer (which
      // is what keeps a 64 MiB push from starving control traffic).
      const int n = owner_.nranks_;
      for (int i = 0; i < n; ++i) {
        const int peer = owner_.pump_cursor_;
        owner_.pump_cursor_ = owner_.pump_cursor_ + 1 == n ? 0 : owner_.pump_cursor_ + 1;
        if (peer == rank_) continue;
        (void)owner_.pump_peer(peer);
        (void)owner_.pump_bulk(peer);
      }
    }
    if (owner_.arrivals_.empty()) return std::nullopt;
    ProtoMsg m = std::move(owner_.arrivals_.front());
    owner_.arrivals_.pop_front();
    return m;
  }

  void wait_activity(sim::Actor&) override {
    if (!owner_.arrivals_.empty()) return;
    // A bulk transfer that can progress right now is activity: make some
    // and let the caller re-poll instead of parking under it.
    if (owner_.pump_bulk_tx_all()) return;
    auto& fds = pollfds_;
    fds.clear();
    for (int peer = 0; peer < owner_.nranks_; ++peer) {
      const Conn& c = owner_.conns_[static_cast<std::size_t>(peer)];
      if (peer == rank_) continue;
      if (!c.closed) fds.push_back(pollfd{c.fd, POLLIN, 0});
      const BulkChan* b = owner_.bulk_[static_cast<std::size_t>(peer)].get();
      if (b != nullptr && !b->closed) {
        // POLLIN: inbound bytes or a ring doorbell (data or freed space).
        // POLLOUT: only while a stream-mode transfer is blocked on the
        // kernel buffer. Errqueue readiness (zerocopy reap) reports as
        // POLLERR regardless of the event mask.
        short events = POLLIN;
        if (!b->use_ring() && !b->txq.empty()) events |= POLLOUT;
        fds.push_back(pollfd{b->fd, events, 0});
      }
    }
    if (fds.empty()) return;  // all peers gone; caller re-checks and decides
    owner_.stats_.idle_polls++;
    const int rc = ::poll(fds.data(), fds.size(),
                          static_cast<int>(owner_.opt_.poll_slice.count()));
    if (rc < 0 && errno != EINTR)
      die(owner_.who() + ": wait_activity poll failed: " + errno_str());
    // Readable/HUP peers are picked up by the next poll() sweep, which
    // also classifies EOF (clean BYE vs peer death).
  }

  // --- bulk plane ---------------------------------------------------------

  [[nodiscard]] BulkPlane bulk_plane(int peer) const override {
    if (peer == rank_) return BulkPlane::kInline;
    const BulkChan* b = owner_.bulk_[static_cast<std::size_t>(peer)].get();
    if (b == nullptr) return BulkPlane::kInline;
    return b->use_ring() ? BulkPlane::kShared : BulkPlane::kStream;
  }

  void bulk_post(int src, std::uint64_t cookie, void* dst,
                 std::size_t capacity) override {
    owner_.bulk_regs_[{src, cookie}] = {dst, capacity};
  }

  void bulk_send(sim::Actor&, int dst, std::uint64_t cookie, const void* data,
                 std::size_t size) override {
    owner_.bulk_queue(dst, cookie, data, size);
  }

  /// Single-threaded process: nothing can be blocked in wait_activity
  /// while this runs, so there is nobody to wake.
  void wake() override {}

 private:
  SocketFabric& owner_;
  std::vector<pollfd> pollfds_;  // scratch, avoids per-wait allocation
};

// ---------------------------------------------------------------- fabric

SocketFabric::SocketFabric(int nranks, int rank, const Rendezvous& rdv, Options opt)
    : Fabric(opt.caps, opt.costs),
      nranks_(nranks),
      rank_(rank),
      opt_(opt),
      epoch_(Clock::now()) {
  LCMPI_CHECK(nranks > 0, "SocketFabric needs at least one rank");
  LCMPI_CHECK(rank >= 0 && rank < nranks, "rank out of range");
  conns_.resize(static_cast<std::size_t>(nranks));
  bulk_.resize(static_cast<std::size_t>(nranks));
  ep_ = std::make_unique<Ep>(*this, rank);
  try {
    build_mesh(rdv);
  } catch (...) {
    for (Conn& c : conns_)
      if (c.fd >= 0) ::close(c.fd);
    bulk_.clear();
    throw;
  }
}

SocketFabric::~SocketFabric() {
  flush_bulk();
  say_bye();
  for (Conn& c : conns_) {
    if (c.fd >= 0) ::close(c.fd);
    c.fd = -1;
  }
}

SocketFabric SocketFabric::from_env(Options opt) {
  const char* rank_env = std::getenv("LCMPI_RANK");
  const char* n_env = std::getenv("LCMPI_NRANKS");
  LCMPI_CHECK(rank_env != nullptr && n_env != nullptr,
              "LCMPI_RANK/LCMPI_NRANKS not set");
  Rendezvous rdv;
  if (const char* dir = std::getenv("LCMPI_SOCKET_DIR"); dir != nullptr) {
    opt.domain = Domain::kUnix;
    rdv.unix_dir = dir;
  } else if (const char* port = std::getenv("LCMPI_PORT"); port != nullptr) {
    opt.domain = Domain::kInet;
    rdv.port = static_cast<std::uint16_t>(std::atoi(port));
  } else {
    LCMPI_CHECK(false, "neither LCMPI_SOCKET_DIR nor LCMPI_PORT set");
  }
  return SocketFabric(std::atoi(n_env), std::atoi(rank_env), rdv, opt);
}

Endpoint& SocketFabric::endpoint(int rank) {
  LCMPI_CHECK(rank == rank_,
              "SocketFabric holds only the local rank's endpoint (one process per rank)");
  return *ep_;
}

TimePoint SocketFabric::wall_now() const {
  return TimePoint{std::chrono::duration_cast<std::chrono::nanoseconds>(
                       Clock::now() - epoch_)
                       .count()};
}

std::string SocketFabric::who() const { return "rank " + std::to_string(rank_); }

// ------------------------------------------------------------- bootstrap

void SocketFabric::build_mesh(const Rendezvous& rdv) {
  if (nranks_ == 1) return;  // self-sends never touch the fabric
  const bool unix_domain = opt_.domain == Domain::kUnix;
  LCMPI_CHECK(!unix_domain || !rdv.unix_dir.empty(), "kUnix needs a socket directory");
  LCMPI_CHECK(unix_domain || rdv.port != 0 || rdv.listen_fd >= 0,
              "kInet needs a rendezvous port or a pre-bound listener");

  const auto deadline = Clock::now() + opt_.dial_deadline;
  const std::string r0_path = unix_domain ? rdv.unix_dir + "/rendezvous.sock" : "";

  // Dial `addr` with exponential backoff until `deadline` — the listener
  // may not exist yet (rank 0 still booting, a higher rank still binding).
  const auto dial = [&](const Addr& addr, const std::string& label) {
    auto backoff = opt_.backoff_floor;
    bool first = true;
    for (;;) {
      const int fd = make_socket(addr.family());
      if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr.ss), addr.len) == 0)
        return fd;
      const int err = errno;
      ::close(fd);
      const bool retryable = err == ECONNREFUSED || err == ENOENT || err == EAGAIN ||
                             err == ETIMEDOUT || err == EINTR || err == ECONNRESET;
      if (!retryable)
        die(who() + ": connect to " + label + " failed: " + std::strerror(err));
      if (Clock::now() >= deadline)
        die(who() + ": connect to " + label + " timed out (" +
            std::strerror(err) + ") — peer never came up");
      if (!first) stats_.dial_retries++;
      first = false;
      std::this_thread::sleep_for(backoff);
      backoff = std::min(backoff * 2, opt_.backoff_cap);
    }
  };

  // Per-rank listener addresses, filled by the rendezvous.
  std::vector<std::uint16_t> ports(static_cast<std::size_t>(nranks_), 0);
  const auto rank_path = [&](int r) {
    return rdv.unix_dir + "/rank-" + std::to_string(r) + ".sock";
  };

  // With a bulk plane every pair has TWO connections: the dialer dials
  // the same listener twice, tagging each Hello with its channel. A
  // world mixing kInline with bulk-enabled ranks would disagree on the
  // accept counts below and hang until the deadline — Options::bulk's
  // kInline/non-kInline split must be uniform (kStream vs kMemfd may
  // mix; that is what the BulkHello negotiation is for).
  const bool bulk_on = opt_.bulk != Bulk::kInline;
  const int conns_per_pair = bulk_on ? 2 : 1;

  // Accept `expected` connections, filing each by its hello's (rank,
  // channel). Bulk channels complete their BulkHello/memfd handshake
  // inline — it only ever involves the dialer on the far end of this fd,
  // which wrote its side of the handshake right after connecting.
  const auto accept_mesh = [&](int lfd, int expected, int max_rank,
                               std::vector<Hello>* stash) {
    for (int got = 0; got < expected; ++got) {
      const int fd = accept_within(lfd, deadline, who().c_str());
      Hello h;
      read_all(fd, &h, sizeof h, who().c_str());
      LCMPI_CHECK(h.magic == Hello{}.magic, "bad mesh hello");
      LCMPI_CHECK(h.rank > 0 && h.rank < max_rank, "mesh hello rank out of range");
      if (h.channel == 0) {
        Conn& c = conns_[static_cast<std::size_t>(h.rank)];
        LCMPI_CHECK(c.fd < 0, "duplicate mesh hello");
        c.fd = fd;
        if (stash != nullptr) (*stash)[static_cast<std::size_t>(h.rank)] = h;
      } else {
        LCMPI_CHECK(bulk_on && h.channel == 1, "bad mesh hello channel");
        LCMPI_CHECK(bulk_[static_cast<std::size_t>(h.rank)] == nullptr,
                    "duplicate bulk hello");
        bulk_handshake(h.rank, fd, /*dialer=*/false);
      }
    }
  };

  int listen_fd = -1;
  if (rank_ == 0) {
    if (rdv.listen_fd >= 0) {
      listen_fd = rdv.listen_fd;
    } else {
      listen_fd = bind_listener(unix_domain ? unix_addr(r0_path)
                                            : inet_addr_port(rdv.port));
    }
    // Collect the hellos; each rendezvous control connection IS the
    // 0<->r link, and each bulk connection handshakes on arrival.
    std::vector<Hello> hellos(static_cast<std::size_t>(nranks_));
    accept_mesh(listen_fd, (nranks_ - 1) * conns_per_pair, nranks_, &hellos);
    // Broadcast the listener table.
    for (int r = 1; r < nranks_; ++r)
      write_all(conns_[static_cast<std::size_t>(r)].fd, hellos.data(),
                sizeof(Hello) * static_cast<std::size_t>(nranks_), "rank 0");
  } else {
    // Bind our own listener first so the table can point at it.
    Hello mine;
    mine.rank = rank_;
    if (unix_domain) {
      const std::string path = rank_path(rank_);
      (void)::unlink(path.c_str());
      listen_fd = bind_listener(unix_addr(path));
      LCMPI_CHECK(path.size() < sizeof(mine.unix_path), "unix path too long");
      std::memcpy(mine.unix_path, path.c_str(), path.size() + 1);
    } else {
      listen_fd = bind_listener(inet_addr_port(0));
      mine.port = local_port(listen_fd);
    }
    // Dial rank 0 (twice with a bulk plane), introduce ourselves, learn
    // everyone's listener.
    const Addr r0_addr = unix_domain ? unix_addr(r0_path) : inet_addr_port(rdv.port);
    const int r0 = dial(r0_addr, "rank 0 rendezvous");
    conns_[0].fd = r0;
    write_all(r0, &mine, sizeof mine, who().c_str());
    if (bulk_on) {
      const int bfd = dial(r0_addr, "rank 0 bulk");
      Hello bh = mine;
      bh.channel = 1;
      write_all(bfd, &bh, sizeof bh, who().c_str());
      bulk_handshake(0, bfd, /*dialer=*/true);
    }
    std::vector<Hello> hellos(static_cast<std::size_t>(nranks_));
    read_all(r0, hellos.data(), sizeof(Hello) * static_cast<std::size_t>(nranks_),
             who().c_str());

    // Mesh completion: dial every higher rank's listener...
    for (int peer = rank_ + 1; peer < nranks_; ++peer) {
      const Hello& h = hellos[static_cast<std::size_t>(peer)];
      const Addr a = unix_domain ? unix_addr(h.unix_path) : inet_addr_port(h.port);
      const int fd = dial(a, "rank " + std::to_string(peer));
      Hello id = mine;
      write_all(fd, &id, sizeof id, who().c_str());
      conns_[static_cast<std::size_t>(peer)].fd = fd;
      if (bulk_on) {
        const int bfd = dial(a, "rank " + std::to_string(peer) + " bulk");
        Hello bid = mine;
        bid.channel = 1;
        write_all(bfd, &bid, sizeof bid, who().c_str());
        bulk_handshake(peer, bfd, /*dialer=*/true);
      }
    }
    // ...and accept from every lower nonzero rank.
    accept_mesh(listen_fd, (rank_ - 1) * conns_per_pair, rank_, nullptr);
  }

  if (listen_fd >= 0 && listen_fd != rdv.listen_fd) ::close(listen_fd);
  if (rank_ == 0 && rdv.listen_fd >= 0) ::close(rdv.listen_fd);
  if (unix_domain) {
    if (rank_ == 0) (void)::unlink(r0_path.c_str());
    else (void)::unlink(rank_path(rank_).c_str());
  }

  for (int peer = 0; peer < nranks_; ++peer) {
    if (peer == rank_) continue;
    const Conn& c = conns_[static_cast<std::size_t>(peer)];
    LCMPI_CHECK(c.fd >= 0, "mesh incomplete");
    set_nonblocking(c.fd, true);
    BulkChan* b = bulk_[static_cast<std::size_t>(peer)].get();
    LCMPI_CHECK(!bulk_on || b != nullptr, "bulk mesh incomplete");
    if (b != nullptr) set_nonblocking(b->fd, true);
  }
}

// ------------------------------------------------------------ data phase

void SocketFabric::send_frame(int peer, const ProtoMsg& msg) {
  LCMPI_CHECK(peer >= 0 && peer < nranks_ && peer != rank_, "bad destination");
  Conn& c = conns_[static_cast<std::size_t>(peer)];
  if (c.closed || c.bye_seen)
    die(who() + ": send to rank " + std::to_string(peer) + " after it " +
        (c.bye_seen ? "finished" : "died"));

  FrameHeader h;
  h.kind = static_cast<std::uint8_t>(msg.kind);
  h.mode = msg.mode;
  h.tag = msg.tag;
  h.context = msg.context;
  h.size = msg.size;
  h.credit = msg.credit;
  h.sender_req = msg.sender_req;
  h.bulk_key = msg.bulk_key;
  h.seq = msg.seq;

  Bytes frame;
  ByteWriter w(frame);
  w.put(static_cast<std::uint32_t>(sizeof(FrameHeader) + msg.payload.size()));
  w.put(h);
  w.put_bytes(msg.payload.data(), msg.payload.size());

  const auto* p = reinterpret_cast<const unsigned char*>(frame.data());
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::send(c.fd, p + off, frame.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Kernel buffer full: transport backpressure. Keep draining our own
      // inbound sockets while waiting for POLLOUT — the peer may be
      // blocked writing to us (send/send deadlock otherwise, since the
      // engine only polls between fabric calls). Drained frames queue in
      // arrivals_, which poll() serves in order.
      stats_.send_stalls++;
      bool drained = false;
      for (int src = 0; src < nranks_; ++src) {
        if (src == rank_) continue;
        drained = pump_peer(src) || drained;
        // Keep the bulk plane moving too: the peer may be waiting for
        // our bulk bytes (or ring space) before it can drain the control
        // socket we are blocked on. pump_bulk never re-enters send_frame.
        drained = pump_bulk(src) || drained;
      }
      if (drained) continue;  // buffer may have cleared meanwhile
      pollfd pf{c.fd, POLLOUT, 0};
      const int rc = ::poll(&pf, 1, 1 /*ms*/);
      if (rc < 0 && errno != EINTR)
        die(who() + ": poll(POLLOUT) failed: " + errno_str());
      continue;
    }
    die(who() + ": rank " + std::to_string(peer) + " died mid-send (" +
        (n < 0 ? errno_str() : "connection closed") + ")");
  }
  stats_.messages_tx++;
  stats_.bytes_tx += frame.size();
}

bool SocketFabric::pump_peer(int peer) {
  Conn& c = conns_[static_cast<std::size_t>(peer)];
  if (c.closed) return false;
  bool any = false;
  for (;;) {
    constexpr std::size_t kChunk = 64 * 1024;
    const std::size_t at = c.rx.size();
    c.rx.resize(at + kChunk);
    const ssize_t n = ::recv(c.fd, c.rx.data() + at, kChunk, 0);
    if (n > 0) {
      c.rx.resize(at + static_cast<std::size_t>(n));
      stats_.bytes_rx += static_cast<std::uint64_t>(n);
      any = true;
      if (static_cast<std::size_t>(n) < kChunk) break;  // drained for now
      continue;
    }
    c.rx.resize(at);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // EOF or hard error: classify. A BYE followed by EOF is a peer that
    // finished cleanly; anything else is a death.
    ::close(c.fd);
    c.closed = true;
    if (!c.bye_seen) {
      if (!c.rx.empty()) parse_frames(peer);  // salvage complete frames
      if (c.bye_seen) return any;             // the BYE was in the tail
      die(who() + ": rank " + std::to_string(peer) + " died (" +
          (n < 0 ? errno_str() : "EOF without goodbye") + ")");
    }
    return any;
  }
  if (any) parse_frames(peer);
  return any;
}

void SocketFabric::parse_frames(int peer) {
  Conn& c = conns_[static_cast<std::size_t>(peer)];
  std::size_t pos = 0;
  while (c.rx.size() - pos >= sizeof(std::uint32_t)) {
    std::uint32_t len = 0;
    std::memcpy(&len, c.rx.data() + pos, sizeof len);
    LCMPI_CHECK(len >= sizeof(FrameHeader), "runt frame");
    if (c.rx.size() - pos - sizeof len < len) break;  // partial tail
    FrameHeader h;
    std::memcpy(&h, c.rx.data() + pos + sizeof len, sizeof h);
    const std::size_t payload_at = pos + sizeof len + sizeof h;
    const std::size_t payload_len = len - sizeof h;
    if (h.kind == kByeKind) {
      c.bye_seen = true;
    } else {
      ProtoMsg m;
      m.kind = static_cast<MsgKind>(h.kind);
      m.src = peer;
      m.mode = h.mode;
      m.tag = h.tag;
      m.context = h.context;
      m.size = h.size;
      m.credit = h.credit;
      m.sender_req = h.sender_req;
      m.bulk_key = h.bulk_key;
      m.seq = h.seq;
      if (payload_len > 0)
        m.payload.assign(c.rx.begin() + static_cast<std::ptrdiff_t>(payload_at),
                         c.rx.begin() + static_cast<std::ptrdiff_t>(payload_at + payload_len));
      arrivals_.push_back(std::move(m));
      stats_.messages_rx++;
    }
    pos = payload_at + payload_len;
  }
  if (pos > 0) c.rx.erase(c.rx.begin(), c.rx.begin() + static_cast<std::ptrdiff_t>(pos));
}

// ------------------------------------------------------------- bulk plane

void SocketFabric::bulk_handshake(int peer, int fd, bool dialer) {
  auto b = std::make_unique<BulkChan>();
  b->fd = fd;
  b->dialer = dialer;

  BulkHello mine;
  mine.wants_memfd =
      (opt_.bulk == Bulk::kMemfd && opt_.domain == Domain::kUnix) ? 1 : 0;
  mine.ring_bytes = opt_.bulk_ring_bytes;
  write_all(fd, &mine, sizeof mine, who().c_str());
  BulkHello theirs;
  read_all(fd, &theirs, sizeof theirs, who().c_str());
  LCMPI_CHECK(theirs.magic == BulkHello{}.magic, "bad bulk hello");

  if (mine.wants_memfd != 0 && theirs.wants_memfd != 0) {
    // The dialer's ring size governs (it creates the region); one byte
    // ring per direction, each fronted by its cache-padded control block.
    const std::size_t ring = static_cast<std::size_t>(
        dialer ? mine.ring_bytes : theirs.ring_bytes);
    LCMPI_CHECK(ring > 0, "bulk ring size must be positive");
    const std::size_t map_len = 2 * (sizeof(RingCtl) + ring);
    int mfd = -1;
    if (dialer) {
      mfd = ::memfd_create("lcmpi-bulk", MFD_CLOEXEC);
      if (mfd < 0) die(who() + ": memfd_create failed: " + errno_str());
      if (::ftruncate(mfd, static_cast<off_t>(map_len)) != 0)
        die(who() + ": ftruncate(memfd) failed: " + errno_str());
    } else {
      mfd = recv_fd(fd, who().c_str());
    }
    void* base = ::mmap(nullptr, map_len, PROT_READ | PROT_WRITE, MAP_SHARED,
                        mfd, 0);
    if (base == MAP_FAILED) die(who() + ": mmap(memfd) failed: " + errno_str());
    b->map_base = base;
    b->map_len = map_len;
    auto* raw = static_cast<std::byte*>(base);
    auto* ctl_a = reinterpret_cast<RingCtl*>(raw);
    std::byte* data_a = raw + sizeof(RingCtl);
    auto* ctl_b = reinterpret_cast<RingCtl*>(raw + sizeof(RingCtl) + ring);
    std::byte* data_b = raw + 2 * sizeof(RingCtl) + ring;
    if (dialer) {
      // Initialize both control blocks BEFORE the fd crosses — the
      // SCM_RIGHTS pass is the synchronization point.
      new (ctl_a) RingCtl;
      new (ctl_b) RingCtl;
      ctl_a->head.store(0, std::memory_order_relaxed);
      ctl_a->tail.store(0, std::memory_order_relaxed);
      ctl_b->head.store(0, std::memory_order_relaxed);
      ctl_b->tail.store(0, std::memory_order_relaxed);
      send_fd(fd, mfd, who().c_str());
    }
    ::close(mfd);  // the mapping keeps the memory alive
    // Ring A carries dialer->acceptor traffic, ring B the reverse.
    b->tx_ring = dialer ? RingView{ctl_a, data_a, ring} : RingView{ctl_b, data_b, ring};
    b->rx_ring = dialer ? RingView{ctl_b, data_b, ring} : RingView{ctl_a, data_a, ring};
    stats_.memfd_pairs++;
  } else {
#if LCMPI_HAVE_ZEROCOPY
    if (opt_.bulk_zerocopy && opt_.domain == Domain::kInet) {
      const int one = 1;
      b->zc_enabled =
          ::setsockopt(fd, SOL_SOCKET, SO_ZEROCOPY, &one, sizeof one) == 0;
    }
#endif
  }
  bulk_[static_cast<std::size_t>(peer)] = std::move(b);
}

void SocketFabric::bulk_queue(int peer, std::uint64_t cookie, const void* data,
                              std::size_t size) {
  BulkChan* b = bulk_[static_cast<std::size_t>(peer)].get();
  LCMPI_CHECK(b != nullptr, "bulk_send without a negotiated bulk channel");
  if (b->closed)
    die(who() + ": bulk send to rank " + std::to_string(peer) + " after it died");
  BulkChan::Tx t;
  t.cookie = cookie;
  t.data = static_cast<const std::byte*>(data);
  t.size = size;
  put_bulk_hdr(t.hdr, cookie, size);
  b->txq.push_back(t);
  // Start moving bytes immediately — the common case (ring space or an
  // empty socket buffer) completes small transfers in this one call.
  (void)pump_bulk_tx(peer);
}

bool SocketFabric::pump_bulk(int peer) {
  if (bulk_[static_cast<std::size_t>(peer)] == nullptr) return false;
  bool any = pump_bulk_rx(peer);
  any = pump_bulk_tx(peer) || any;
  return any;
}

bool SocketFabric::pump_bulk_tx_all() {
  bool any = false;
  for (int peer = 0; peer < nranks_; ++peer) {
    if (peer == rank_ || bulk_[static_cast<std::size_t>(peer)] == nullptr)
      continue;
    any = pump_bulk_tx(peer) || any;
  }
  return any;
}

/// EOF/reset on the bulk socket. Mid-transfer (either direction) this is
/// a death; otherwise stay quiet — the control socket's BYE-or-EOF
/// classification owns the verdict for idle peers. Transfers waiting only
/// on zerocopy reaping are NOT mid-transfer: their bytes are fully with
/// the kernel, and a closed connection (ACKed or reset) releases the
/// pinned pages either way, so the send buffer is reusable — complete
/// them rather than racing the errqueue against the peer's clean BYE.
void SocketFabric::bulk_eof(int peer, const char* detail) {
  BulkChan* b = bulk_[static_cast<std::size_t>(peer)].get();
  if (!b->zc_wait.empty()) {
    (void)reap_zerocopy(peer);  // harvest anything already confirmed
    while (!b->zc_wait.empty()) {
      ProtoMsg m;
      m.kind = MsgKind::kBulkSent;
      m.src = rank_;
      m.sender_req = b->zc_wait.front().cookie;
      arrivals_.push_back(std::move(m));
      b->zc_wait.pop_front();
    }
  }
  b->closed = true;
  if (b->in_transfer || !b->txq.empty())
    die(who() + ": rank " + std::to_string(peer) + " died mid-bulk-transfer (" +
        detail + ")");
}

/// Parsed a complete 16-byte transfer header: bind the registered landing
/// buffer. The engine guarantees bulk_post ran before its CTS, and the
/// sender only writes after the CTS — so a missing registration is a
/// protocol bug, not a race.
void SocketFabric::begin_bulk_rx(int peer) {
  BulkChan* b = bulk_[static_cast<std::size_t>(peer)].get();
  get_bulk_hdr(b->rhdr, &b->rx_cookie, &b->rx_size);
  b->rhdr_got = 0;
  const auto it = bulk_regs_.find({peer, b->rx_cookie});
  LCMPI_CHECK(it != bulk_regs_.end(),
              "bulk transfer with no registered landing buffer");
  b->rx_dst = static_cast<std::byte*>(it->second.first);
  b->rx_cap = it->second.second;
  bulk_regs_.erase(it);
  b->rx_got = 0;
  b->in_transfer = true;
}

void SocketFabric::finish_bulk_rx(int peer) {
  BulkChan* b = bulk_[static_cast<std::size_t>(peer)].get();
  b->in_transfer = false;
  stats_.bulk_rx_transfers++;
  stats_.bulk_rx_bytes += b->rx_size;
  ProtoMsg m;
  m.kind = MsgKind::kBulkDelivered;
  m.src = peer;
  m.sender_req = b->rx_cookie;
  m.size = static_cast<std::uint32_t>(b->rx_size);
  arrivals_.push_back(std::move(m));
}

/// Rings a ring-mode peer's doorbell: one byte meaning "state changed"
/// (new data, or space freed). Best-effort — EAGAIN means the socket
/// already holds unread doorbells, which is wake-up enough.
void SocketFabric::ring_doorbell(int peer) {
  BulkChan* b = bulk_[static_cast<std::size_t>(peer)].get();
  const char byte = 1;
  for (;;) {
    const ssize_t n = ::send(b->fd, &byte, 1, MSG_NOSIGNAL);
    if (n > 0) stats_.doorbells_tx++;
    if (n < 0 && errno == EINTR) continue;
    return;  // sent, EAGAIN, or peer gone (classified elsewhere)
  }
}

bool SocketFabric::pump_bulk_rx(int peer) {
  BulkChan* b = bulk_[static_cast<std::size_t>(peer)].get();
  if (b == nullptr || b->closed) return false;
  bool any = false;
  if (b->use_ring()) {
    // Drain doorbell bytes (their only content is "look at the ring").
    char bells[256];
    for (;;) {
      const ssize_t n = ::recv(b->fd, bells, sizeof bells, 0);
      if (n > 0) {
        if (static_cast<std::size_t>(n) < sizeof bells) break;
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      bulk_eof(peer, n < 0 ? errno_str().c_str() : "EOF on bulk socket");
      return any;
    }
    // Consume everything the ring holds right now.
    std::uint64_t consumed = 0;
    for (;;) {
      const std::uint64_t avail = b->rx_ring.readable();
      if (avail == 0) break;
      if (!b->in_transfer) {
        const std::uint64_t n =
            std::min<std::uint64_t>(avail, kBulkHdrBytes - b->rhdr_got);
        b->rx_ring.read(b->rhdr + b->rhdr_got, n);
        b->rhdr_got += n;
        consumed += n;
        any = true;
        if (b->rhdr_got == kBulkHdrBytes) begin_bulk_rx(peer);
        if (b->in_transfer && b->rx_size == 0) finish_bulk_rx(peer);
        continue;
      }
      const std::uint64_t n = std::min(avail, b->rx_size - b->rx_got);
      const std::uint64_t in_cap =
          b->rx_got < b->rx_cap ? std::min(n, b->rx_cap - b->rx_got) : 0;
      if (in_cap > 0) {
        b->rx_ring.read(b->rx_dst + b->rx_got, in_cap);
        b->rx_got += in_cap;
      }
      const std::uint64_t over = n - in_cap;  // truncation: consume + drop
      if (over > 0) {
        b->rx_ring.discard(over);
        b->rx_got += over;
      }
      consumed += n;
      any = true;
      if (b->rx_got == b->rx_size) finish_bulk_rx(peer);
    }
    if (consumed > 0) ring_doorbell(peer);  // freed ring space: credit
  } else {
    static thread_local std::vector<unsigned char> overflow(64 * 1024);
    for (;;) {
      void* dst = nullptr;
      std::size_t want = 0;
      if (!b->in_transfer) {
        dst = b->rhdr + b->rhdr_got;
        want = kBulkHdrBytes - static_cast<std::size_t>(b->rhdr_got);
      } else if (b->rx_got < b->rx_cap) {
        dst = b->rx_dst + b->rx_got;
        want = static_cast<std::size_t>(
            std::min(b->rx_size - b->rx_got, b->rx_cap - b->rx_got));
      } else {
        dst = overflow.data();
        want = static_cast<std::size_t>(std::min<std::uint64_t>(
            b->rx_size - b->rx_got, overflow.size()));
      }
      const ssize_t n = ::recv(b->fd, dst, want, 0);
      if (n > 0) {
        any = true;
        if (!b->in_transfer) {
          b->rhdr_got += static_cast<std::uint64_t>(n);
          if (b->rhdr_got == kBulkHdrBytes) {
            begin_bulk_rx(peer);
            if (b->rx_size == 0) finish_bulk_rx(peer);
          }
        } else {
          b->rx_got += static_cast<std::uint64_t>(n);
          if (b->rx_got == b->rx_size) finish_bulk_rx(peer);
        }
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      bulk_eof(peer, n < 0 ? errno_str().c_str() : "EOF on bulk socket");
      return any;
    }
  }
  return any;
}

bool SocketFabric::pump_bulk_tx(int peer) {
  BulkChan* b = bulk_[static_cast<std::size_t>(peer)].get();
  if (b == nullptr || b->closed) return false;
  bool any = false;
  if (!b->zc_wait.empty()) any = reap_zerocopy(peer) || any;
  // The chunk budget bounds how much payload one pump moves, so control
  // frames interleave with a long transfer at chunk granularity.
  std::uint64_t budget = opt_.bulk_chunk_bytes;
  bool rang = false;
  while (!b->txq.empty() && budget > 0) {
    BulkChan::Tx& t = b->txq.front();
    if (b->use_ring()) {
      if (t.hdr_off < kBulkHdrBytes) {
        const std::uint64_t n = std::min(kBulkHdrBytes - t.hdr_off,
                                         b->tx_ring.writable());
        if (n == 0) break;
        b->tx_ring.write(t.hdr + t.hdr_off, n);
        t.hdr_off += n;
        any = rang = true;
        if (t.hdr_off < kBulkHdrBytes) break;  // ring crammed full
      }
      if (t.off < t.size) {
        const std::uint64_t n =
            std::min({t.size - t.off, b->tx_ring.writable(), budget});
        if (n == 0) break;  // ring full: the peer's doorbell will wake us
        b->tx_ring.write(t.data + t.off, n);
        t.off += n;
        budget -= n;
        any = rang = true;
      }
    } else {
      if (t.hdr_off < kBulkHdrBytes) {
        const ssize_t n =
            ::send(b->fd, t.hdr + t.hdr_off,
                   static_cast<std::size_t>(kBulkHdrBytes - t.hdr_off),
                   MSG_NOSIGNAL);
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (n <= 0) {
          bulk_eof(peer, n < 0 ? errno_str().c_str() : "peer closed");
          return any;
        }
        t.hdr_off += static_cast<std::uint64_t>(n);
        any = true;
        if (t.hdr_off < kBulkHdrBytes) break;
      }
      bool blocked = false;
      while (t.off < t.size && budget > 0) {
        const std::size_t chunk = static_cast<std::size_t>(
            std::min<std::uint64_t>(t.size - t.off, budget));
        int flags = MSG_NOSIGNAL;
        bool zc = false;
#if LCMPI_HAVE_ZEROCOPY
        if (b->zc_enabled && chunk >= kZcMinChunk) {
          flags |= MSG_ZEROCOPY;
          zc = true;
        }
#endif
        ssize_t n = ::send(b->fd, t.data + t.off, chunk, flags);
#if LCMPI_HAVE_ZEROCOPY
        if (n < 0 && zc && errno == ENOBUFS) {
          // Optmem exhausted: fall back to plain copies for good.
          b->zc_enabled = false;
          zc = false;
          n = ::send(b->fd, t.data + t.off, chunk, MSG_NOSIGNAL);
        }
#endif
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
          blocked = true;
          break;
        }
        if (n <= 0) {
          bulk_eof(peer, n < 0 ? errno_str().c_str() : "peer closed");
          return any;
        }
        if (zc) {
          stats_.zerocopy_sends++;
          t.zc_used = true;
          t.zc_last = b->zc_seq;
          b->zc_seq++;
        }
        t.off += static_cast<std::uint64_t>(n);
        budget -= static_cast<std::uint64_t>(n);
        any = true;
      }
      if (blocked) break;
    }
    if (t.hdr_off == kBulkHdrBytes && t.off == t.size) {
      stats_.bulk_tx_transfers++;
      stats_.bulk_tx_bytes += t.size;
      if (t.zc_used && t.zc_last >= b->zc_done) {
        // Pages still pinned by the kernel: hold kBulkSent until the
        // errqueue confirms (the engine's send buffer must stay valid).
        b->zc_wait.push_back({t.cookie, t.zc_last});
      } else {
        ProtoMsg m;
        m.kind = MsgKind::kBulkSent;
        m.src = rank_;
        m.sender_req = t.cookie;
        arrivals_.push_back(std::move(m));
      }
      b->txq.pop_front();
    } else {
      break;
    }
  }
  if (rang) ring_doorbell(peer);  // data available
  return any;
}

bool SocketFabric::reap_zerocopy(int peer) {
  BulkChan* b = bulk_[static_cast<std::size_t>(peer)].get();
  bool any = false;
#if LCMPI_HAVE_ZEROCOPY
  for (;;) {
    msghdr msg{};
    alignas(cmsghdr) char ctl[256];
    msg.msg_control = ctl;
    msg.msg_controllen = sizeof ctl;
    const ssize_t n = ::recvmsg(b->fd, &msg, MSG_ERRQUEUE);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN: queue empty
    }
    for (cmsghdr* cm = CMSG_FIRSTHDR(&msg); cm != nullptr;
         cm = CMSG_NXTHDR(&msg, cm)) {
      if (cm->cmsg_len < CMSG_LEN(sizeof(sock_extended_err))) continue;
      sock_extended_err serr;
      std::memcpy(&serr, CMSG_DATA(cm), sizeof serr);
      if (serr.ee_errno != 0 || serr.ee_origin != SO_EE_ORIGIN_ZEROCOPY)
        continue;
      // [ee_info, ee_data] is the completed zerocopy-send seq range.
      stats_.zerocopy_completions += serr.ee_data - serr.ee_info + 1;
      b->zc_done = std::max(b->zc_done, serr.ee_data + 1);
    }
  }
#endif
  while (!b->zc_wait.empty() && b->zc_wait.front().zc_last < b->zc_done) {
    ProtoMsg m;
    m.kind = MsgKind::kBulkSent;
    m.src = rank_;
    m.sender_req = b->zc_wait.front().cookie;
    arrivals_.push_back(std::move(m));
    b->zc_wait.pop_front();
    any = true;
  }
  return any;
}

void SocketFabric::flush_bulk() noexcept {
  // Bounded best-effort drain of whatever the bulk plane still owes
  // (normally nothing: every engine send completed before finalize).
  try {
    const auto deadline = Clock::now() + std::chrono::seconds(2);
    for (;;) {
      bool pending = false;
      bool progress = false;
      for (int peer = 0; peer < nranks_; ++peer) {
        if (peer == rank_) continue;
        BulkChan* b = bulk_[static_cast<std::size_t>(peer)].get();
        if (b == nullptr || b->closed) continue;
        if (b->txq.empty() && b->zc_wait.empty()) continue;
        pending = true;
        progress = pump_bulk_tx(peer) || progress;
      }
      if (!pending || Clock::now() >= deadline) return;
      if (!progress) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  } catch (...) {
    // Teardown path: a dead peer here is somebody else's error to report.
  }
}

void SocketFabric::say_bye() noexcept {
  // Best-effort goodbye so peers can tell "finished" from "died". The
  // sockets are nonblocking; a full buffer or dead peer just means no BYE.
  Bytes frame;
  ByteWriter w(frame);
  w.put(static_cast<std::uint32_t>(sizeof(FrameHeader)));
  FrameHeader bye;
  bye.kind = kByeKind;
  w.put(bye);
  for (int peer = 0; peer < nranks_; ++peer) {
    if (peer == rank_) continue;
    Conn& c = conns_[static_cast<std::size_t>(peer)];
    if (c.fd < 0 || c.closed) continue;
    std::size_t off = 0;
    while (off < frame.size()) {
      const ssize_t n = ::send(c.fd, frame.data() + off, frame.size() - off,
                               MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      break;  // EAGAIN/EPIPE/anything: give up quietly
    }
  }
}

}  // namespace lcmpi::fabric
