#include "src/fabric/socket_fabric.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <utility>

namespace lcmpi::fabric {
namespace {

using Clock = std::chrono::steady_clock;

// Frame header behind the u32 length prefix. Full-width fields: this wire
// is private to the fabric, so nothing is squeezed into Table-1 widths.
struct FrameHeader {
  std::uint8_t kind = 0;  // MsgKind, or kByeKind for the goodbye record
  std::uint8_t mode = 0;
  std::int32_t tag = 0;
  std::uint32_t context = 0;
  std::uint32_t size = 0;
  std::uint32_t credit = 0;
  std::uint64_t sender_req = 0;
  std::uint64_t bulk_key = 0;
  std::uint64_t seq = 0;
};

// Clean-shutdown sentinel; never a live MsgKind (those start at 1).
constexpr std::uint8_t kByeKind = 0;

[[noreturn]] void die(const std::string& what) { throw FabricError(what); }

std::string errno_str() { return std::strerror(errno); }

void set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  LCMPI_CHECK(flags >= 0, "fcntl(F_GETFL) failed");
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  LCMPI_CHECK(::fcntl(fd, F_SETFL, want) == 0, "fcntl(F_SETFL) failed");
}

void set_cloexec(int fd) { (void)::fcntl(fd, F_SETFD, FD_CLOEXEC); }

/// Blocking full write during the rendezvous (EINTR-safe).
void write_all(int fd, const void* data, std::size_t n, const char* what) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd, p + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      die(std::string(what) + ": write failed: " + errno_str());
    }
    off += static_cast<std::size_t>(w);
  }
}

/// Blocking full read during the rendezvous (EINTR-safe; EOF is fatal —
/// a peer died mid-handshake).
void read_all(int fd, void* data, std::size_t n, const char* what) {
  auto* p = static_cast<unsigned char*>(data);
  std::size_t off = 0;
  while (off < n) {
    const ssize_t r = ::recv(fd, p + off, n - off, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      die(std::string(what) + ": read failed: " + errno_str());
    }
    if (r == 0) die(std::string(what) + ": peer closed during rendezvous");
    off += static_cast<std::size_t>(r);
  }
}

struct Addr {
  sockaddr_storage ss{};
  socklen_t len = 0;
  int family() const { return ss.ss_family; }
};

Addr unix_addr(const std::string& path) {
  Addr a;
  auto* sun = reinterpret_cast<sockaddr_un*>(&a.ss);
  sun->sun_family = AF_UNIX;
  LCMPI_CHECK(path.size() < sizeof(sun->sun_path), "AF_UNIX path too long");
  std::memcpy(sun->sun_path, path.c_str(), path.size() + 1);
  a.len = static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) + path.size() + 1);
  return a;
}

Addr inet_addr_port(std::uint16_t port) {
  Addr a;
  auto* sin = reinterpret_cast<sockaddr_in*>(&a.ss);
  sin->sin_family = AF_INET;
  sin->sin_port = htons(port);
  sin->sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  a.len = sizeof(sockaddr_in);
  return a;
}

int make_socket(int family) {
  const int fd = ::socket(family, SOCK_STREAM, 0);
  if (fd < 0) die("socket() failed: " + errno_str());
  set_cloexec(fd);
  if (family == AF_INET) {
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }
  return fd;
}

int bind_listener(const Addr& a) {
  const int fd = make_socket(a.family());
  if (a.family() == AF_INET) {
    const int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&a.ss), a.len) != 0)
    die("bind() failed: " + errno_str());
  if (::listen(fd, SOMAXCONN) != 0) die("listen() failed: " + errno_str());
  return fd;
}

std::uint16_t local_port(int fd) {
  sockaddr_in sin{};
  socklen_t len = sizeof sin;
  LCMPI_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&sin), &len) == 0,
              "getsockname failed");
  return ntohs(sin.sin_port);
}

/// Accept with a deadline (the listener is blocking; poll() bounds it).
int accept_within(int listen_fd, Clock::time_point deadline, const char* what) {
  for (;;) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (left.count() <= 0) die(std::string(what) + ": rendezvous accept timed out");
    pollfd p{listen_fd, POLLIN, 0};
    const int rc = ::poll(&p, 1, static_cast<int>(left.count()));
    if (rc < 0) {
      if (errno == EINTR) continue;
      die(std::string(what) + ": poll failed: " + errno_str());
    }
    if (rc == 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      die(std::string(what) + ": accept failed: " + errno_str());
    }
    set_cloexec(fd);
    return fd;
  }
}

// Rendezvous hello: who is dialing, and (during bootstrap) where their
// own listener lives.
struct Hello {
  std::uint32_t magic = 0x4c43'4d50;  // "LCMP"
  std::int32_t rank = -1;
  std::uint16_t port = 0;             // kInet listener
  char unix_path[104] = {};           // kUnix listener
};

}  // namespace

// -------------------------------------------------------------- endpoint

class SocketFabric::Ep final : public Endpoint {
 public:
  Ep(SocketFabric& f, int rank) : Endpoint(f, rank), owner_(f) {}

  [[nodiscard]] TimePoint now() const override { return owner_.wall_now(); }

  void send(sim::Actor&, int dst, ProtoMsg msg) override {
    msg.src = rank_;
    owner_.send_frame(dst, msg);
  }

  std::optional<ProtoMsg> poll(sim::Actor&) override {
    if (owner_.arrivals_.empty()) {
      // One fair sweep over all peers; pump_peer parses complete frames.
      const int n = owner_.nranks_;
      for (int i = 0; i < n; ++i) {
        const int peer = owner_.pump_cursor_;
        owner_.pump_cursor_ = owner_.pump_cursor_ + 1 == n ? 0 : owner_.pump_cursor_ + 1;
        if (peer == rank_) continue;
        (void)owner_.pump_peer(peer);
      }
    }
    if (owner_.arrivals_.empty()) return std::nullopt;
    ProtoMsg m = std::move(owner_.arrivals_.front());
    owner_.arrivals_.pop_front();
    return m;
  }

  void wait_activity(sim::Actor&) override {
    if (!owner_.arrivals_.empty()) return;
    auto& fds = pollfds_;
    fds.clear();
    for (int peer = 0; peer < owner_.nranks_; ++peer) {
      const Conn& c = owner_.conns_[static_cast<std::size_t>(peer)];
      if (peer == rank_ || c.closed) continue;
      fds.push_back(pollfd{c.fd, POLLIN, 0});
    }
    if (fds.empty()) return;  // all peers gone; caller re-checks and decides
    owner_.stats_.idle_polls++;
    const int rc = ::poll(fds.data(), fds.size(),
                          static_cast<int>(owner_.opt_.poll_slice.count()));
    if (rc < 0 && errno != EINTR)
      die(owner_.who() + ": wait_activity poll failed: " + errno_str());
    // Readable/HUP peers are picked up by the next poll() sweep, which
    // also classifies EOF (clean BYE vs peer death).
  }

  /// Single-threaded process: nothing can be blocked in wait_activity
  /// while this runs, so there is nobody to wake.
  void wake() override {}

 private:
  SocketFabric& owner_;
  std::vector<pollfd> pollfds_;  // scratch, avoids per-wait allocation
};

// ---------------------------------------------------------------- fabric

SocketFabric::SocketFabric(int nranks, int rank, const Rendezvous& rdv, Options opt)
    : Fabric(opt.caps, opt.costs),
      nranks_(nranks),
      rank_(rank),
      opt_(opt),
      epoch_(Clock::now()) {
  LCMPI_CHECK(nranks > 0, "SocketFabric needs at least one rank");
  LCMPI_CHECK(rank >= 0 && rank < nranks, "rank out of range");
  conns_.resize(static_cast<std::size_t>(nranks));
  ep_ = std::make_unique<Ep>(*this, rank);
  try {
    build_mesh(rdv);
  } catch (...) {
    for (Conn& c : conns_)
      if (c.fd >= 0) ::close(c.fd);
    throw;
  }
}

SocketFabric::~SocketFabric() {
  say_bye();
  for (Conn& c : conns_) {
    if (c.fd >= 0) ::close(c.fd);
    c.fd = -1;
  }
}

SocketFabric SocketFabric::from_env(Options opt) {
  const char* rank_env = std::getenv("LCMPI_RANK");
  const char* n_env = std::getenv("LCMPI_NRANKS");
  LCMPI_CHECK(rank_env != nullptr && n_env != nullptr,
              "LCMPI_RANK/LCMPI_NRANKS not set");
  Rendezvous rdv;
  if (const char* dir = std::getenv("LCMPI_SOCKET_DIR"); dir != nullptr) {
    opt.domain = Domain::kUnix;
    rdv.unix_dir = dir;
  } else if (const char* port = std::getenv("LCMPI_PORT"); port != nullptr) {
    opt.domain = Domain::kInet;
    rdv.port = static_cast<std::uint16_t>(std::atoi(port));
  } else {
    LCMPI_CHECK(false, "neither LCMPI_SOCKET_DIR nor LCMPI_PORT set");
  }
  return SocketFabric(std::atoi(n_env), std::atoi(rank_env), rdv, opt);
}

Endpoint& SocketFabric::endpoint(int rank) {
  LCMPI_CHECK(rank == rank_,
              "SocketFabric holds only the local rank's endpoint (one process per rank)");
  return *ep_;
}

TimePoint SocketFabric::wall_now() const {
  return TimePoint{std::chrono::duration_cast<std::chrono::nanoseconds>(
                       Clock::now() - epoch_)
                       .count()};
}

std::string SocketFabric::who() const { return "rank " + std::to_string(rank_); }

// ------------------------------------------------------------- bootstrap

void SocketFabric::build_mesh(const Rendezvous& rdv) {
  if (nranks_ == 1) return;  // self-sends never touch the fabric
  const bool unix_domain = opt_.domain == Domain::kUnix;
  LCMPI_CHECK(!unix_domain || !rdv.unix_dir.empty(), "kUnix needs a socket directory");
  LCMPI_CHECK(unix_domain || rdv.port != 0 || rdv.listen_fd >= 0,
              "kInet needs a rendezvous port or a pre-bound listener");

  const auto deadline = Clock::now() + opt_.dial_deadline;
  const std::string r0_path = unix_domain ? rdv.unix_dir + "/rendezvous.sock" : "";

  // Dial `addr` with exponential backoff until `deadline` — the listener
  // may not exist yet (rank 0 still booting, a higher rank still binding).
  const auto dial = [&](const Addr& addr, const std::string& label) {
    auto backoff = opt_.backoff_floor;
    bool first = true;
    for (;;) {
      const int fd = make_socket(addr.family());
      if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr.ss), addr.len) == 0)
        return fd;
      const int err = errno;
      ::close(fd);
      const bool retryable = err == ECONNREFUSED || err == ENOENT || err == EAGAIN ||
                             err == ETIMEDOUT || err == EINTR || err == ECONNRESET;
      if (!retryable)
        die(who() + ": connect to " + label + " failed: " + std::strerror(err));
      if (Clock::now() >= deadline)
        die(who() + ": connect to " + label + " timed out (" +
            std::strerror(err) + ") — peer never came up");
      if (!first) stats_.dial_retries++;
      first = false;
      std::this_thread::sleep_for(backoff);
      backoff = std::min(backoff * 2, opt_.backoff_cap);
    }
  };

  // Per-rank listener addresses, filled by the rendezvous.
  std::vector<std::uint16_t> ports(static_cast<std::size_t>(nranks_), 0);
  const auto rank_path = [&](int r) {
    return rdv.unix_dir + "/rank-" + std::to_string(r) + ".sock";
  };

  int listen_fd = -1;
  if (rank_ == 0) {
    if (rdv.listen_fd >= 0) {
      listen_fd = rdv.listen_fd;
    } else {
      listen_fd = bind_listener(unix_domain ? unix_addr(r0_path)
                                            : inet_addr_port(rdv.port));
    }
    // Collect n-1 hellos; the rendezvous connection IS the 0<->r link.
    std::vector<Hello> hellos(static_cast<std::size_t>(nranks_));
    for (int got = 1; got < nranks_; ++got) {
      const int fd = accept_within(listen_fd, deadline, "rank 0");
      Hello h;
      read_all(fd, &h, sizeof h, "rank 0");
      LCMPI_CHECK(h.magic == Hello{}.magic, "bad rendezvous hello");
      LCMPI_CHECK(h.rank > 0 && h.rank < nranks_, "hello rank out of range");
      Conn& c = conns_[static_cast<std::size_t>(h.rank)];
      LCMPI_CHECK(c.fd < 0, "duplicate rendezvous hello");
      c.fd = fd;
      hellos[static_cast<std::size_t>(h.rank)] = h;
    }
    // Broadcast the listener table.
    for (int r = 1; r < nranks_; ++r)
      write_all(conns_[static_cast<std::size_t>(r)].fd, hellos.data(),
                sizeof(Hello) * static_cast<std::size_t>(nranks_), "rank 0");
  } else {
    // Bind our own listener first so the table can point at it.
    Hello mine;
    mine.rank = rank_;
    if (unix_domain) {
      const std::string path = rank_path(rank_);
      (void)::unlink(path.c_str());
      listen_fd = bind_listener(unix_addr(path));
      LCMPI_CHECK(path.size() < sizeof(mine.unix_path), "unix path too long");
      std::memcpy(mine.unix_path, path.c_str(), path.size() + 1);
    } else {
      listen_fd = bind_listener(inet_addr_port(0));
      mine.port = local_port(listen_fd);
    }
    // Dial rank 0, introduce ourselves, learn everyone's listener.
    const int r0 = dial(unix_domain ? unix_addr(r0_path) : inet_addr_port(rdv.port),
                        "rank 0 rendezvous");
    conns_[0].fd = r0;
    write_all(r0, &mine, sizeof mine, who().c_str());
    std::vector<Hello> hellos(static_cast<std::size_t>(nranks_));
    read_all(r0, hellos.data(), sizeof(Hello) * static_cast<std::size_t>(nranks_),
             who().c_str());

    // Mesh completion: dial every higher rank's listener...
    for (int peer = rank_ + 1; peer < nranks_; ++peer) {
      const Hello& h = hellos[static_cast<std::size_t>(peer)];
      const Addr a = unix_domain ? unix_addr(h.unix_path) : inet_addr_port(h.port);
      const int fd = dial(a, "rank " + std::to_string(peer));
      Hello id = mine;
      write_all(fd, &id, sizeof id, who().c_str());
      conns_[static_cast<std::size_t>(peer)].fd = fd;
    }
    // ...and accept one connection from every lower nonzero rank.
    for (int expected = 1; expected < rank_; ++expected) {
      const int fd = accept_within(listen_fd, deadline, who().c_str());
      Hello h;
      read_all(fd, &h, sizeof h, who().c_str());
      LCMPI_CHECK(h.magic == Hello{}.magic, "bad mesh hello");
      LCMPI_CHECK(h.rank > 0 && h.rank < rank_, "mesh hello rank out of range");
      Conn& c = conns_[static_cast<std::size_t>(h.rank)];
      LCMPI_CHECK(c.fd < 0, "duplicate mesh hello");
      c.fd = fd;
    }
  }

  if (listen_fd >= 0 && listen_fd != rdv.listen_fd) ::close(listen_fd);
  if (rank_ == 0 && rdv.listen_fd >= 0) ::close(rdv.listen_fd);
  if (unix_domain) {
    if (rank_ == 0) (void)::unlink(r0_path.c_str());
    else (void)::unlink(rank_path(rank_).c_str());
  }

  for (int peer = 0; peer < nranks_; ++peer) {
    if (peer == rank_) continue;
    const Conn& c = conns_[static_cast<std::size_t>(peer)];
    LCMPI_CHECK(c.fd >= 0, "mesh incomplete");
    set_nonblocking(c.fd, true);
  }
}

// ------------------------------------------------------------ data phase

void SocketFabric::send_frame(int peer, const ProtoMsg& msg) {
  LCMPI_CHECK(peer >= 0 && peer < nranks_ && peer != rank_, "bad destination");
  Conn& c = conns_[static_cast<std::size_t>(peer)];
  if (c.closed || c.bye_seen)
    die(who() + ": send to rank " + std::to_string(peer) + " after it " +
        (c.bye_seen ? "finished" : "died"));

  FrameHeader h;
  h.kind = static_cast<std::uint8_t>(msg.kind);
  h.mode = msg.mode;
  h.tag = msg.tag;
  h.context = msg.context;
  h.size = msg.size;
  h.credit = msg.credit;
  h.sender_req = msg.sender_req;
  h.bulk_key = msg.bulk_key;
  h.seq = msg.seq;

  Bytes frame;
  ByteWriter w(frame);
  w.put(static_cast<std::uint32_t>(sizeof(FrameHeader) + msg.payload.size()));
  w.put(h);
  w.put_bytes(msg.payload.data(), msg.payload.size());

  const auto* p = reinterpret_cast<const unsigned char*>(frame.data());
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::send(c.fd, p + off, frame.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Kernel buffer full: transport backpressure. Keep draining our own
      // inbound sockets while waiting for POLLOUT — the peer may be
      // blocked writing to us (send/send deadlock otherwise, since the
      // engine only polls between fabric calls). Drained frames queue in
      // arrivals_, which poll() serves in order.
      stats_.send_stalls++;
      bool drained = false;
      for (int src = 0; src < nranks_; ++src)
        if (src != rank_) drained = pump_peer(src) || drained;
      if (drained) continue;  // buffer may have cleared meanwhile
      pollfd pf{c.fd, POLLOUT, 0};
      const int rc = ::poll(&pf, 1, 1 /*ms*/);
      if (rc < 0 && errno != EINTR)
        die(who() + ": poll(POLLOUT) failed: " + errno_str());
      continue;
    }
    die(who() + ": rank " + std::to_string(peer) + " died mid-send (" +
        (n < 0 ? errno_str() : "connection closed") + ")");
  }
  stats_.messages_tx++;
  stats_.bytes_tx += frame.size();
}

bool SocketFabric::pump_peer(int peer) {
  Conn& c = conns_[static_cast<std::size_t>(peer)];
  if (c.closed) return false;
  bool any = false;
  for (;;) {
    constexpr std::size_t kChunk = 64 * 1024;
    const std::size_t at = c.rx.size();
    c.rx.resize(at + kChunk);
    const ssize_t n = ::recv(c.fd, c.rx.data() + at, kChunk, 0);
    if (n > 0) {
      c.rx.resize(at + static_cast<std::size_t>(n));
      stats_.bytes_rx += static_cast<std::uint64_t>(n);
      any = true;
      if (static_cast<std::size_t>(n) < kChunk) break;  // drained for now
      continue;
    }
    c.rx.resize(at);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // EOF or hard error: classify. A BYE followed by EOF is a peer that
    // finished cleanly; anything else is a death.
    ::close(c.fd);
    c.closed = true;
    if (!c.bye_seen) {
      if (!c.rx.empty()) parse_frames(peer);  // salvage complete frames
      if (c.bye_seen) return any;             // the BYE was in the tail
      die(who() + ": rank " + std::to_string(peer) + " died (" +
          (n < 0 ? errno_str() : "EOF without goodbye") + ")");
    }
    return any;
  }
  if (any) parse_frames(peer);
  return any;
}

void SocketFabric::parse_frames(int peer) {
  Conn& c = conns_[static_cast<std::size_t>(peer)];
  std::size_t pos = 0;
  while (c.rx.size() - pos >= sizeof(std::uint32_t)) {
    std::uint32_t len = 0;
    std::memcpy(&len, c.rx.data() + pos, sizeof len);
    LCMPI_CHECK(len >= sizeof(FrameHeader), "runt frame");
    if (c.rx.size() - pos - sizeof len < len) break;  // partial tail
    FrameHeader h;
    std::memcpy(&h, c.rx.data() + pos + sizeof len, sizeof h);
    const std::size_t payload_at = pos + sizeof len + sizeof h;
    const std::size_t payload_len = len - sizeof h;
    if (h.kind == kByeKind) {
      c.bye_seen = true;
    } else {
      ProtoMsg m;
      m.kind = static_cast<MsgKind>(h.kind);
      m.src = peer;
      m.mode = h.mode;
      m.tag = h.tag;
      m.context = h.context;
      m.size = h.size;
      m.credit = h.credit;
      m.sender_req = h.sender_req;
      m.bulk_key = h.bulk_key;
      m.seq = h.seq;
      if (payload_len > 0)
        m.payload.assign(c.rx.begin() + static_cast<std::ptrdiff_t>(payload_at),
                         c.rx.begin() + static_cast<std::ptrdiff_t>(payload_at + payload_len));
      arrivals_.push_back(std::move(m));
      stats_.messages_rx++;
    }
    pos = payload_at + payload_len;
  }
  if (pos > 0) c.rx.erase(c.rx.begin(), c.rx.begin() + static_cast<std::ptrdiff_t>(pos));
}

void SocketFabric::say_bye() noexcept {
  // Best-effort goodbye so peers can tell "finished" from "died". The
  // sockets are nonblocking; a full buffer or dead peer just means no BYE.
  Bytes frame;
  ByteWriter w(frame);
  w.put(static_cast<std::uint32_t>(sizeof(FrameHeader)));
  FrameHeader bye;
  bye.kind = kByeKind;
  w.put(bye);
  for (int peer = 0; peer < nranks_; ++peer) {
    if (peer == rank_) continue;
    Conn& c = conns_[static_cast<std::size_t>(peer)];
    if (c.fd < 0 || c.closed) continue;
    std::size_t off = 0;
    while (off < frame.size()) {
      const ssize_t n = ::send(c.fd, frame.data() + off, frame.size() - off,
                               MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      break;  // EAGAIN/EPIPE/anything: give up quietly
    }
  }
}

}  // namespace lcmpi::fabric
