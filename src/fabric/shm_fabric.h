// ShmFabric — the real-threads shared-memory fabric.
//
// Every other fabric in the tree is simulated: one kernel thread, virtual
// time, modelled costs. This one is real: each MPI rank runs on its own OS
// thread (runtime::ThreadsWorld), and ProtoMsg envelopes *and* rendezvous
// payloads move through bounded lock-free SPSC rings
// (src/util/spsc_ring.h) — one ring per directed rank pair, so per-(src,
// dst) FIFO order (the MPI non-overtaking substrate every engine assumes)
// is a structural property, not a locking discipline.
//
// Protocol shape, mirroring the paper's ATM/TCP port rather than the
// Meiko one: push-mode rendezvous (RTS → CTS through the rings; nothing
// is staged in sender memory for a remote pull, which would need
// cross-thread synchronization the rings already provide) and per-sender
// credit flow control at the MPI layer. Rendezvous PAYLOADS default to
// the shared-memory bulk plane (BulkPlane::kShared): the sender thread
// copies once, straight into the buffer the receiver registered with
// bulk_post — ring slots carry only envelopes and completion notes. Backpressure is two-layered:
// credits bound the *bytes* a sender may have parked at a receiver, and
// ring occupancy bounds the *messages* in flight — a producer hitting a
// full ring parks on the ring's mutex/condvar pad until the consumer
// drains a slot.
//
// Blocking receives park the endpoint on one ParkingLot shared by all of
// its inbound rings ("anything for me"), after a short spin for the
// latency-critical ping-pong case. MpiCosts are zero: host work takes
// real time here, and endpoint now() reports wall-clock nanoseconds since
// fabric construction, which is what makes this the repo's first source
// of real (not virtual) latency numbers.
#pragma once

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "src/fabric/fabric.h"
#include "src/util/spsc_ring.h"

namespace lcmpi::fabric {

class ShmFabric final : public Fabric {
 public:
  struct Options {
    FabricCaps caps;
    /// Zero by default: matching/copy work costs whatever it costs the
    /// host CPU; there is no virtual clock to charge.
    MpiCosts costs;
    /// Slots per directed-pair ring (rounded up to a power of two).
    /// Small enough that an unresponsive receiver exerts backpressure,
    /// large enough that a credit window of eager messages fits.
    std::size_t ring_slots = 1024;
    /// Bulk plane (BulkPlane::kShared): rendezvous payloads are copied by
    /// the sender thread straight into the buffer the receiver registered
    /// with bulk_post — ONE copy for contiguous types, instead of staging
    /// through ring slots. false reverts to the inline kRdata path (the
    /// pre-bulk-plane baseline, kept for ablation).
    bool bulk_direct = true;
    /// Multiplexed mode for large N. Default (false): one SPSC ring per
    /// directed pair — O(N²) rings, the latency fast path. true: each
    /// receiver owns ONE shared MPMC ring that every sender produces
    /// into, so an idle pair costs nothing; a pair is promoted to its own
    /// dedicated SPSC ring once its sender has pushed mux_promote_after
    /// messages (high-traffic pairs get the fast path back). Promotion
    /// keeps per-(src,dst) FIFO: the sender's last mux message is a
    /// marker, and the receiver never reads the promoted ring until the
    /// marker has been consumed.
    bool mux = false;
    /// Shared per-receiver MPMC ring capacity (mux mode).
    std::size_t mux_ring_slots = 4096;
    /// Messages a sender pushes into the mux ring before the pair is
    /// promoted to a dedicated SPSC ring.
    std::size_t mux_promote_after = 64;
    Options() {
      caps.hw_broadcast = false;  // software tree broadcast
      caps.pull_bulk = false;     // push-mode rendezvous (CTS/RDATA)
      caps.flow = FlowControl::kCredit;
      caps.eager_threshold = 180;
    }
  };

  explicit ShmFabric(int nranks, Options opt = {});
  ~ShmFabric() override;

  [[nodiscard]] int nranks() const override { return static_cast<int>(eps_.size()); }
  [[nodiscard]] Endpoint& endpoint(int rank) override;

  /// Wall-clock nanoseconds since fabric construction (= endpoint now()).
  [[nodiscard]] TimePoint wall_now() const;

  /// Aggregated transport counters (relaxed atomics; exact once quiescent).
  struct Stats {
    std::uint64_t messages = 0;    // successful ring pushes
    std::uint64_t full_parks = 0;  // sender parked on a full ring
    std::uint64_t idle_parks = 0;  // receiver parked awaiting traffic
    std::uint64_t bulk_transfers = 0;  // direct posted-buffer handoffs
    std::uint64_t bulk_bytes = 0;      // bytes moved by those handoffs
    // Mux mode (all zero when Options::mux is false).
    std::uint64_t mux_msgs = 0;        // messages that rode a shared MPMC ring
    std::uint64_t promoted_pairs = 0;  // pairs upgraded to a dedicated ring
    std::uint64_t mux_pairs = 0;       // active pairs still multiplexed
  };
  [[nodiscard]] Stats stats() const;

 private:
  class Ep;
  using Channel = util::SpscChannel<ProtoMsg>;
  using MuxChannel = util::MpmcChannel<ProtoMsg>;

  [[nodiscard]] Channel& chan(int src, int dst) {
    return *chans_[static_cast<std::size_t>(src) * eps_.size() +
                   static_cast<std::size_t>(dst)];
  }
  /// Mux mode: the promoted-ring slot for a pair (nullptr until the
  /// sender promotes it; written only by the src thread, read by dst).
  [[nodiscard]] std::atomic<Channel*>& promoted(int src, int dst) {
    return promoted_[static_cast<std::size_t>(src) * eps_.size() +
                     static_cast<std::size_t>(dst)];
  }

  // One-sided windows: every rank's exposed segment, keyed by (rank, win
  // key). Ranks share this process's address space, so an origin resolves
  // a peer's segment here once at window creation and then satisfies
  // Put/Get with plain stores/loads (the window fence's barrier provides
  // the happens-before edges; see src/core/win.h).
  std::mutex rma_mu_;
  std::map<std::pair<int, std::uint64_t>, Endpoint::RmaSegment> rma_segs_;

  Options opt_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<std::unique_ptr<Channel>> chans_;  // [src * n + dst]; empty in mux mode
  // Mux mode: one shared inbound MPMC ring per receiver...
  std::vector<std::unique_ptr<MuxChannel>> mux_;
  // ...plus a lazily-filled promoted-pair table [src * n + dst] (raw
  // pointers: single-writer slots, deleted in the fabric dtor).
  std::unique_ptr<std::atomic<Channel*>[]> promoted_;
  std::vector<std::unique_ptr<Ep>> eps_;
};

}  // namespace lcmpi::fabric
