// MeikoFabric — the paper's low-latency path, directly over Meiko DMAs
// and remote transactions (no tport widget in the way).
//
// Envelope/eager traffic rides remote transactions into the pre-allocated
// per-sender envelope slot (FlowControl::kSingleSlot); rendezvous data is
// staged for a receiver-initiated DMA pull served by the sender's Elan;
// MPI_Bcast maps onto the hardware broadcast. All matching costs are
// charged by the engine to the rank actor — the SPARC — which is exactly
// the design decision Fig. 2 measures against the Elan-matching MPICH.
#pragma once

#include <memory>
#include <vector>

#include "src/fabric/fabric.h"
#include "src/meiko/machine.h"

namespace lcmpi::fabric {

/// Machine ports used by this fabric.
inline constexpr int kMpiTxnPort = 2;
inline constexpr int kMpiBcastPort = 3;
/// One-sided frames ride the remote-word/remote-event machinery
/// (Machine::rma_txn) on their own port, at calibrated RMA costs.
inline constexpr int kMpiRmaPort = 4;

class MeikoFabric final : public Fabric {
 public:
  /// Builds endpoints for every node of `machine` (rank == node id).
  explicit MeikoFabric(meiko::Machine& machine);

  [[nodiscard]] int nranks() const override { return machine_.size(); }
  [[nodiscard]] Endpoint& endpoint(int rank) override;
  [[nodiscard]] meiko::Machine& machine() const { return machine_; }

 private:
  class Ep;
  static FabricCaps caps_from(const meiko::Calib& c);
  static MpiCosts costs_from(const meiko::Calib& c);

  meiko::Machine& machine_;
  std::vector<std::unique_ptr<Ep>> eps_;
};

class MeikoFabric::Ep final : public Endpoint {
 public:
  Ep(MeikoFabric& f, int rank);

  void send(sim::Actor& self, int dst, ProtoMsg msg) override;
  std::uint64_t stage_bulk(sim::Actor& self, Bytes data,
                           std::function<void()> on_pulled) override;
  void pull_bulk(sim::Actor& self, int src, std::uint64_t key,
                 std::function<void(Bytes)> on_data) override;
  void hw_broadcast(sim::Actor& self, ProtoMsg msg) override;
  void hw_barrier_enter(sim::Actor& self) override;
  std::optional<ProtoMsg> poll(sim::Actor& self) override;

 private:
  MeikoFabric& owner_;
};

}  // namespace lcmpi::fabric
