// SocketFabric — real multi-process execution over kernel stream sockets.
//
// ShmFabric (§6d) made one rank = one OS thread inside a single address
// space; this fabric takes the next rung the paper's ATM/Ethernet port
// implies: one rank = one OS *process*, with every byte crossing the
// kernel's socket layer (AF_UNIX by default, AF_INET/127.0.0.1 on
// request). The unchanged MPI engine runs verbatim on top — eager ≤
// threshold with the envelope, CTS-then-push rendezvous, per-sender
// credit flow control — exactly the seam MPICH2's channel abstraction
// exposes between protocol and wire.
//
// Topology and bootstrap (§6h): connections are LAZY. The rank-0
// rendezvous only exchanges the listener table — every rank r>0 binds its
// own listener, dials rank 0, sends a Hello naming its listener, and
// reads back the full table; rank 0 collects the n-1 hellos and
// broadcasts. No data socket exists until a pair actually talks: the
// first send to a peer dials its listener and identifies the dialing
// rank with a short post-accept Hello, so an idle pair costs zero fds
// and zero poll work — per-rank fd count follows the communication
// graph, not N.
//
// Progress engine: one epoll(7) instance per rank holds the listener and
// every live socket, level-triggered. poll() does one epoll_wait(0)
// instead of a recv sweep over all peers; wait_activity parks in
// epoll_wait with a bounded slice. EPOLLOUT is armed (EPOLL_CTL_MOD)
// only while a sender is actually blocked on a full kernel buffer and
// disarmed as soon as the write completes — idle sockets contribute
// nothing to any wakeup.
//
// Wire format: length-prefixed records ([u32 frame length][fixed header]
// [payload]), full-width fields (no 16-bit context squeeze — this wire is
// ours, not Table 1's). All I/O is short-read/short-write/EINTR-safe.
//
// Cross-dial races: two ranks may dial each other simultaneously; the
// kernel listen backlog absorbs both. Each side keeps the connection it
// dialed as its primary (TX) link and files the accepted one as a
// secondary, receive-only link — a rank never switches TX sockets, so
// per-direction FIFO holds structurally.
//
// Failure model: each fabric sends a BYE record on its TX link before
// closing (ranks finish at different times; a goodbye is not an error).
// EOF or ECONNRESET on the peer's TX link *without* a preceding BYE means
// the peer process died — poll()/send() throw FabricError instead of
// letting a blocked receive hang forever. A peer that dies before ever
// connecting is invisible here; the SocketWorld launcher detects that
// (a result pipe closing recordless) and kills/reports.
//
// Bulk data plane (Options::bulk, default kMemfd): rendezvous payloads
// leave the framed control socket entirely, on a second lazily-dialed
// per-pair socket — raw streaming, one 16-byte {cookie, size} header per
// transfer — with co-located AF_UNIX pairs upgrading to a memfd-backed
// pair of mmap'd byte rings (BulkHello + SCM_RIGHTS at dial time; the
// dialer writes its half of the handshake and keeps transmitting into
// the queue until the acceptor's reply arrives asynchronously).
// Transfers pump in bounded chunks interleaved with control-plane
// progress, so a 64 MiB push never head-of-line-blocks an eager ping —
// the latency/bandwidth isolation the paper gets from separating its
// protocol and data channels.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/fabric/fabric.h"

namespace lcmpi::fabric {

class SocketFabric final : public Fabric {
 public:
  /// Which kernel transport carries the connections.
  enum class Domain : std::uint8_t { kUnix, kInet };

  /// How rendezvous payloads travel (the bulk data plane).
  ///
  ///  kInline — the pre-bulk-plane baseline: payloads ride the framed
  ///            control socket as kRdata (head-of-line-blocks envelopes;
  ///            kept for ablation/benchmark comparison). Must be uniform
  ///            across the world: kInline ranks dial no bulk sockets.
  ///  kStream — a SECOND per-pair socket dedicated to bulk bytes: raw
  ///            streaming with one 16-byte header per transfer (no
  ///            per-chunk framing), MSG_ZEROCOPY opportunistically where
  ///            the kernel supports it (AF_INET).
  ///  kMemfd  — as kStream, plus co-located AF_UNIX pairs negotiate a
  ///            memfd + mmap'd byte ring per direction at dial time and
  ///            do single-copy receives straight into the posted buffer;
  ///            pairs where either side lacks memfd support (or the
  ///            domain is AF_INET) degrade to the stream socket.
  enum class Bulk : std::uint8_t { kInline, kStream, kMemfd };

  struct Options {
    FabricCaps caps;
    /// Zero: host work takes real time, as on ShmFabric.
    MpiCosts costs;
    Domain domain = Domain::kUnix;
    Bulk bulk = Bulk::kMemfd;
    /// Per-direction memfd ring capacity (kMemfd pairs).
    std::size_t bulk_ring_bytes = 4 << 20;
    /// Max bulk payload bytes moved per pump: bounds how long a huge
    /// transfer can monopolize the progress loop between control-plane
    /// polls (the anti-head-of-line knob).
    std::size_t bulk_chunk_bytes = 256 << 10;
    /// Attempt SO_ZEROCOPY/MSG_ZEROCOPY on AF_INET bulk stream sockets
    /// (completion-reaped via MSG_ERRQUEUE; plain send on any failure).
    bool bulk_zerocopy = true;
    /// Rendezvous/connect patience: per-attempt backoff doubles from
    /// `backoff_floor` to `backoff_cap`; giving up after `dial_deadline`
    /// total raises FabricError (a peer that never came up).
    std::chrono::milliseconds backoff_floor{1};
    std::chrono::milliseconds backoff_cap{100};
    std::chrono::milliseconds dial_deadline{10'000};
    /// wait_activity epoll_wait slice (bounds wakeup staleness only;
    /// arrivals interrupt it immediately).
    std::chrono::milliseconds poll_slice{100};
    Options() {
      caps.hw_broadcast = false;  // software tree broadcast
      caps.pull_bulk = false;     // push-mode rendezvous (CTS/RDATA)
      caps.flow = FlowControl::kCredit;
      caps.eager_threshold = 180;
    }
  };

  /// Where rank 0 listens for the rendezvous. `unix_dir` (kUnix) is a
  /// private directory for this world's socket files; `port` (kInet) is
  /// rank 0's rendezvous port. `listen_fd` optionally hands rank 0 a
  /// pre-bound listener inherited from the launcher (how SocketWorld gets
  /// an ephemeral AF_INET port with no conflict window); -1 makes rank 0
  /// bind the named address itself. Rank 0's rendezvous listener stays
  /// open for the whole run — it doubles as the data-phase listener lazy
  /// dials land on.
  ///
  /// Multi-host addressing (kInet): with every field below empty the
  /// fabric behaves as before — listeners bind 127.0.0.1 and peers dial
  /// loopback (the single-box SocketWorld contract). Setting any of them
  /// switches to explicit addressing: listeners bind `bind_host` (empty →
  /// INADDR_ANY), rank 0 is dialed at `root_host`, and each rank
  /// advertises `advertise_host` in its Hello — or, when that is empty,
  /// the local address `getsockname(2)` reports on its bootstrap
  /// connection to rank 0, which picks the right NIC automatically on a
  /// multi-homed host. Hostnames resolve via getaddrinfo(3) (IPv4).
  ///
  /// `rendezvous_file` replaces a pre-agreed port: rank 0 binds an
  /// ephemeral port and atomically publishes "a.b.c.d:port\n" at that
  /// path (write-to-temp + rename); other ranks poll the file until it
  /// appears. The file must be on a filesystem all ranks share.
  struct Rendezvous {
    std::string unix_dir;
    std::uint16_t port = 0;
    int listen_fd = -1;
    std::string root_host;        // where rank 0 listens (dial target)
    std::string bind_host;        // local listener bind address
    std::string advertise_host;   // address peers should dial for this rank
    std::string rendezvous_file;  // rank-0-published "addr:port" path
  };

  /// Builds this rank's attachment: binds its listener and runs the
  /// table-exchange rendezvous (blocking, with retry). No peer data
  /// connection exists yet — those are dialed on first send. Call once
  /// per process; throws FabricError if the rendezvous fails.
  SocketFabric(int nranks, int rank, const Rendezvous& rdv, Options opt = {});
  ~SocketFabric() override;

  /// Attachment described entirely by environment — the contract for
  /// external launchers (lcmpirun, ssh loops, shell scripts) that exec
  /// one binary per rank with no pipes or inherited fds. Required:
  /// LCMPI_RANK, LCMPI_NRANKS, and one rendezvous of LCMPI_SOCKET_DIR
  /// (AF_UNIX; takes precedence), LCMPI_PORT, or LCMPI_RENDEZVOUS_FILE
  /// (both AF_INET). Optional for AF_INET: LCMPI_ROOT_ADDR ("host" or
  /// "host:port" — where rank 0 listens), LCMPI_BIND_ADDR, LCMPI_ADDR
  /// (this rank's advertised address). All values are parsed strictly;
  /// malformed or out-of-range input throws env::EnvError naming the
  /// variable.
  [[nodiscard]] static SocketFabric from_env(Options opt = {});

  /// The options this fabric was built with (post-from_env resolution:
  /// e.g. `domain` reflects which rendezvous the env actually selected).
  [[nodiscard]] const Options& options() const { return opt_; }

  [[nodiscard]] int nranks() const override { return nranks_; }
  [[nodiscard]] int local_rank() const { return rank_; }
  /// Only the local rank's endpoint exists in this process.
  [[nodiscard]] Endpoint& endpoint(int rank) override;

  /// Wall-clock nanoseconds since fabric construction (= endpoint now()).
  [[nodiscard]] TimePoint wall_now() const;

  struct Stats {
    std::uint64_t messages_tx = 0;   // frames written
    std::uint64_t messages_rx = 0;   // frames parsed
    std::uint64_t bytes_tx = 0;      // framed bytes written
    std::uint64_t bytes_rx = 0;      // framed bytes read
    std::uint64_t send_stalls = 0;   // EAGAIN on write (kernel buffer full)
    std::uint64_t idle_polls = 0;    // wait_activity entered epoll_wait
    std::uint64_t dial_retries = 0;  // connect attempts beyond the first
    // Scale (the lazy-connection story: all sublinear in N for sparse
    // communication graphs).
    std::uint64_t fds_open = 0;         // gauge: live fds (epoll, listener, links)
    std::uint64_t pairs_connected = 0;  // peers ever control-connected
    std::uint64_t lazy_dials = 0;       // data-phase dials we initiated
    std::uint64_t epoll_wakeups = 0;    // epoll_wait returns with >=1 event
    // Bulk data plane (zero when Options::bulk == Bulk::kInline).
    std::uint64_t bulk_tx_transfers = 0;  // bulk_send transfers completed
    std::uint64_t bulk_rx_transfers = 0;  // inbound transfers delivered
    std::uint64_t bulk_tx_bytes = 0;      // payload bytes sent on the bulk plane
    std::uint64_t bulk_rx_bytes = 0;      // payload bytes received on the bulk plane
    std::uint64_t memfd_pairs = 0;        // pairs that negotiated a shared ring
    std::uint64_t doorbells_tx = 0;       // ring doorbell bytes written
    std::uint64_t zerocopy_sends = 0;     // MSG_ZEROCOPY sendmsg calls issued
    std::uint64_t zerocopy_completions = 0;  // errqueue notifications reaped
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  class Ep;
  friend class Ep;

  /// One direction-capable socket of a control pair.
  struct Link {
    int fd = -1;
    Bytes rx;               // unparsed bytes (partial frame tail)
    bool out_armed = false;  // EPOLLOUT currently requested
  };

  /// Control-plane state for one peer. `a` is the primary link (our TX;
  /// also RX when the pair shares one socket); `b` exists only after a
  /// cross-dial race and is receive-only — the peer transmits on the
  /// socket *it* dialed. Death is judged on the peer's TX link: EOF
  /// without a BYE there (after salvaging buffered frames) is fatal.
  struct Conn {
    Link a;
    Link b;
    bool b_existed = false;   // a secondary link was ever filed
    bool connected = false;   // counted in pairs_connected
    bool bye_seen = false;    // peer announced clean shutdown
    bool dead = false;        // peer death observed (error already raised)
    [[nodiscard]] bool any_open() const { return a.fd >= 0 || b.fd >= 0; }
  };

  /// Where a peer's listener lives (from the rendezvous table).
  struct PeerAddr {
    std::uint32_t addr = 0;  // kInet: IPv4, network byte order
    std::uint16_t port = 0;  // kInet
    std::string unix_path;   // kUnix
  };

  /// Per-pair bulk channel state (second socket, optional shared ring).
  /// Full definition lives in the .cpp — the header stays free of the
  /// mmap/atomics plumbing.
  struct BulkChan;

  /// Bulk channels for one peer: `a` is the one we dialed (our TX side;
  /// also RX), `b` one the peer dialed first (RX only, from our side).
  struct BulkPair {
    std::unique_ptr<BulkChan> a;
    std::unique_ptr<BulkChan> b;
    /// Sticky TX choice: `a` if we dialed first, `b` if we adopted the
    /// peer's dial. Never switches once set, so bulk FIFO holds per pair.
    BulkChan* tx = nullptr;
  };

  /// What an epoll event tag refers to (packed into epoll_data.u64).
  enum class FdKind : std::uint32_t { kListen, kCtlA, kCtlB, kBulkA, kBulkB };

  void bootstrap(const Rendezvous& rdv);
  [[nodiscard]] int dial(const PeerAddr& to, const std::string& label,
                         std::chrono::steady_clock::time_point deadline);
  /// Ensures a control link to `peer` exists: accepts any pending inbound
  /// dial first (the peer may have beaten us), then dials its listener.
  Conn& ensure_conn(int peer);
  /// Ensures a primary bulk channel to `peer` exists (dialing + starting
  /// the async BulkHello negotiation if needed).
  BulkChan& ensure_bulk(int peer);
  /// Drains the listener: accepts every pending connection, reads its
  /// identifying Hello (bounded-blocking), and files it as a control or
  /// bulk link for the dialing rank.
  void accept_pending();
  void file_control(int peer, int fd);
  void file_bulk_accept(int peer, int fd);
  /// Central progress: one epoll_wait (timeout_ms; 0 = nonblocking),
  /// dispatching every ready fd, then a tx pass over bulk channels with
  /// queued work. Returns true if any bytes moved or events fired.
  bool progress(int timeout_ms);
  void epoll_add(int fd, FdKind kind, int peer);
  void epoll_arm_out(int fd, FdKind kind, int peer, bool on);
  /// Drains one control link until EAGAIN, parsing complete frames into
  /// arrivals_. Returns true if anything new arrived. Throws FabricError
  /// on unannounced EOF/reset of the peer's TX link.
  bool pump_link(int peer, Link& l);
  void parse_frames(int peer, Link& l);
  void close_link(Link& l) noexcept;
  void send_frame(int peer, const ProtoMsg& msg);
  /// Bulk-plane progress for one channel: finish any pending BulkHello
  /// negotiation, receive side (ring or stream, into the registered
  /// landing buffer), then transmit side (chunk-capped, primary only).
  bool pump_bulk(int peer, BulkChan* b);
  bool pump_bulk_rx(int peer, BulkChan* b);
  bool pump_bulk_tx(int peer, BulkChan* b);
  /// One tx pass over bulk channels with queued transfers or pending
  /// zerocopy completions; true if any bytes moved.
  bool pump_bulk_tx_pending();
  /// Marks `peer`'s primary bulk channel as having queued tx work.
  void note_bulk_tx_pending(int peer);
  /// One rx pass over ring channels whose drain hit the per-pump budget
  /// with data still readable. The stream path never needs this (the
  /// level-triggered epoll re-reports unread socket data), but ring data
  /// past the last doorbell would otherwise sit until the next unrelated
  /// wakeup.
  bool pump_bulk_rx_pending();
  void note_bulk_rx_pending(int peer, BulkChan* b);
  bool try_finish_bulk_negotiation(int peer, BulkChan* b);
  void bulk_queue(int peer, std::uint64_t cookie, const void* data,
                  std::size_t size);
  void bulk_eof(int peer, BulkChan* b, const char* detail);
  void begin_bulk_rx(int peer, BulkChan* b);
  void finish_bulk_rx(int peer, BulkChan* b);
  void ring_doorbell(BulkChan* b);
  bool reap_zerocopy(BulkChan* b);
  void flush_bulk() noexcept;  // bounded best-effort tx drain before BYE
  void say_bye() noexcept;
  [[nodiscard]] int track_open(int fd);   // fds_open++ passthrough
  void track_close(int fd) noexcept;      // close + fds_open--
  [[nodiscard]] std::string who() const;  // "rank R" for error texts

  int nranks_;
  int rank_;
  Options opt_;
  std::chrono::steady_clock::time_point epoch_;
  int epfd_ = -1;
  int listen_fd_ = -1;
  std::string listen_path_;              // our unix socket file (to unlink)
  std::vector<PeerAddr> peers_;          // listener table, by rank
  std::vector<Conn> conns_;              // by peer rank
  std::vector<BulkPair> bulk_;           // by peer rank
  std::vector<int> bulk_tx_pending_;     // peers whose primary has queued tx
  std::vector<int> bulk_rx_pending_;     // peers with budget-capped ring rx
  /// Landing buffers registered by bulk_post, keyed (src, cookie).
  std::map<std::pair<int, std::uint64_t>, std::pair<void*, std::size_t>>
      bulk_regs_;
  std::deque<ProtoMsg> arrivals_;  // parsed, FIFO per source
  Stats stats_;
  std::unique_ptr<Ep> ep_;
};

}  // namespace lcmpi::fabric
