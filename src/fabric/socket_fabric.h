// SocketFabric — real multi-process execution over kernel stream sockets.
//
// ShmFabric (§6d) made one rank = one OS thread inside a single address
// space; this fabric takes the next rung the paper's ATM/Ethernet port
// implies: one rank = one OS *process*, with every byte crossing the
// kernel's socket layer (AF_UNIX by default, AF_INET/127.0.0.1 on
// request). The unchanged MPI engine runs verbatim on top — eager ≤
// threshold with the envelope, CTS-then-push rendezvous, per-sender
// credit flow control — exactly the seam MPICH2's channel abstraction
// exposes between protocol and wire.
//
// Topology and bootstrap: a full mesh of pre-connected stream sockets,
// built by a rank-0 rendezvous. Every rank r>0 binds its own listener,
// connects to rank 0's well-known rendezvous address (retrying with
// exponential backoff — rank 0 may not have bound yet), and sends a hello
// naming itself and its listener. Rank 0 collects all n-1 hellos, then
// broadcasts the address table; the rendezvous connections themselves
// become the 0<->r mesh links, and each remaining pair (i, j), 0 < i < j,
// is completed by i dialing j's listener. Rendezvous I/O is blocking;
// after the mesh is up every socket switches to nonblocking for the data
// phase.
//
// Wire format: length-prefixed records ([u32 frame length][fixed header]
// [payload]), full-width fields (no 16-bit context squeeze — this wire is
// ours, not Table 1's). All I/O is short-read/short-write/EINTR-safe. A
// blocked sender (kernel socket buffer full, EAGAIN) drains its inbound
// sockets into the arrival queue while waiting for POLLOUT — the same
// discipline ShmFabric uses to break send/send deadlocks, because the
// engine only polls between fabric calls.
//
// Failure model: each fabric sends a BYE record before closing (ranks
// finish at different times; a goodbye is not an error). EOF or
// ECONNRESET *without* a preceding BYE means the peer process died —
// poll()/send() throw FabricError instead of letting a blocked receive
// hang forever. wait_activity is a poll(2) over every live peer socket
// with a bounded slice (condition-variable semantics: callers re-check).
//
// Bulk data plane (Options::bulk, default kMemfd): rendezvous payloads
// leave the framed control socket entirely. Each pair gets a SECOND
// dedicated socket — raw streaming, one 16-byte {cookie, size} header per
// transfer, no per-chunk framing — and co-located AF_UNIX pairs upgrade
// further to a memfd-backed pair of mmap'd byte rings (one per
// direction), negotiated with a BulkHello + SCM_RIGHTS fd pass at mesh
// time: the sender's single copy lands in shared memory and the receiver
// copies straight into the buffer the engine registered with bulk_post.
// Transfers pump in bounded chunks interleaved with control-plane polls,
// so a 64 MiB push no longer head-of-line-blocks an eager ping — the
// latency/bandwidth isolation the paper gets from separating its
// protocol and data channels.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/fabric/fabric.h"

namespace lcmpi::fabric {

class SocketFabric final : public Fabric {
 public:
  /// Which kernel transport carries the mesh.
  enum class Domain : std::uint8_t { kUnix, kInet };

  /// How rendezvous payloads travel (the bulk data plane).
  ///
  ///  kInline — the pre-bulk-plane baseline: payloads ride the framed
  ///            control socket as kRdata (head-of-line-blocks envelopes;
  ///            kept for ablation/benchmark comparison). Must be uniform
  ///            across the world: kInline ranks build no bulk sockets.
  ///  kStream — a SECOND per-pair socket dedicated to bulk bytes: raw
  ///            streaming with one 16-byte header per transfer (no
  ///            per-chunk framing), MSG_ZEROCOPY opportunistically where
  ///            the kernel supports it (AF_INET).
  ///  kMemfd  — as kStream, plus co-located AF_UNIX pairs negotiate a
  ///            memfd + mmap'd byte ring per direction at Hello time and
  ///            do single-copy receives straight into the posted buffer;
  ///            pairs where either side lacks memfd support (or the
  ///            domain is AF_INET) degrade to the stream socket.
  enum class Bulk : std::uint8_t { kInline, kStream, kMemfd };

  struct Options {
    FabricCaps caps;
    /// Zero: host work takes real time, as on ShmFabric.
    MpiCosts costs;
    Domain domain = Domain::kUnix;
    Bulk bulk = Bulk::kMemfd;
    /// Per-direction memfd ring capacity (kMemfd pairs).
    std::size_t bulk_ring_bytes = 4 << 20;
    /// Max bulk payload bytes moved per pump: bounds how long a huge
    /// transfer can monopolize the progress loop between control-plane
    /// polls (the anti-head-of-line knob).
    std::size_t bulk_chunk_bytes = 256 << 10;
    /// Attempt SO_ZEROCOPY/MSG_ZEROCOPY on AF_INET bulk stream sockets
    /// (completion-reaped via MSG_ERRQUEUE; plain send on any failure).
    bool bulk_zerocopy = true;
    /// Rendezvous/connect patience: per-attempt backoff doubles from
    /// `backoff_floor` to `backoff_cap`; giving up after `dial_deadline`
    /// total raises FabricError (a peer that never came up).
    std::chrono::milliseconds backoff_floor{1};
    std::chrono::milliseconds backoff_cap{100};
    std::chrono::milliseconds dial_deadline{10'000};
    /// wait_activity poll(2) slice (bounds wakeup staleness only;
    /// arrivals interrupt it immediately).
    std::chrono::milliseconds poll_slice{100};
    Options() {
      caps.hw_broadcast = false;  // software tree broadcast
      caps.pull_bulk = false;     // push-mode rendezvous (CTS/RDATA)
      caps.flow = FlowControl::kCredit;
      caps.eager_threshold = 180;
    }
  };

  /// Where rank 0 listens for the rendezvous. `unix_dir` (kUnix) is a
  /// private directory for this world's socket files; `port` (kInet) is
  /// rank 0's rendezvous port on 127.0.0.1. `listen_fd` optionally hands
  /// rank 0 a pre-bound listener inherited from the launcher (how
  /// SocketWorld gets an ephemeral AF_INET port with no conflict window);
  /// -1 makes rank 0 bind the named address itself.
  struct Rendezvous {
    std::string unix_dir;
    std::uint16_t port = 0;
    int listen_fd = -1;
  };

  /// Builds this rank's attachment: binds/dials the mesh (blocking, with
  /// retry) and leaves every connection nonblocking. Call once per
  /// process; throws FabricError if the mesh cannot be built.
  SocketFabric(int nranks, int rank, const Rendezvous& rdv, Options opt = {});
  ~SocketFabric() override;

  /// Attachment described by LCMPI_RANK / LCMPI_NRANKS plus either
  /// LCMPI_SOCKET_DIR (AF_UNIX) or LCMPI_PORT (AF_INET) — the env
  /// contract for external launchers that re-exec one binary per rank.
  [[nodiscard]] static SocketFabric from_env(Options opt = {});

  [[nodiscard]] int nranks() const override { return nranks_; }
  [[nodiscard]] int local_rank() const { return rank_; }
  /// Only the local rank's endpoint exists in this process.
  [[nodiscard]] Endpoint& endpoint(int rank) override;

  /// Wall-clock nanoseconds since fabric construction (= endpoint now()).
  [[nodiscard]] TimePoint wall_now() const;

  struct Stats {
    std::uint64_t messages_tx = 0;   // frames written
    std::uint64_t messages_rx = 0;   // frames parsed
    std::uint64_t bytes_tx = 0;      // framed bytes written
    std::uint64_t bytes_rx = 0;      // framed bytes read
    std::uint64_t send_stalls = 0;   // EAGAIN on write (kernel buffer full)
    std::uint64_t idle_polls = 0;    // wait_activity entered poll(2)
    std::uint64_t dial_retries = 0;  // rendezvous connect attempts beyond the first
    // Bulk data plane (zero when Options::bulk == Bulk::kInline).
    std::uint64_t bulk_tx_transfers = 0;  // bulk_send transfers completed
    std::uint64_t bulk_rx_transfers = 0;  // inbound transfers delivered
    std::uint64_t bulk_tx_bytes = 0;      // payload bytes sent on the bulk plane
    std::uint64_t bulk_rx_bytes = 0;      // payload bytes received on the bulk plane
    std::uint64_t memfd_pairs = 0;        // pairs that negotiated a shared ring
    std::uint64_t doorbells_tx = 0;       // ring doorbell bytes written
    std::uint64_t zerocopy_sends = 0;     // MSG_ZEROCOPY sendmsg calls issued
    std::uint64_t zerocopy_completions = 0;  // errqueue notifications reaped
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  class Ep;
  friend class Ep;

  /// One mesh connection (index = peer rank; self slot unused).
  struct Conn {
    int fd = -1;
    Bytes rx;                 // unparsed bytes (partial frame tail)
    bool bye_seen = false;    // peer announced clean shutdown
    bool closed = false;      // fd closed (after EOF)
  };

  /// Per-pair bulk channel state (second socket, optional shared ring).
  /// Full definition lives in the .cpp — the header stays free of the
  /// mmap/atomics plumbing.
  struct BulkChan;

  void build_mesh(const Rendezvous& rdv);
  /// Second-socket handshake for one peer: BulkHello exchange, then (both
  /// willing, AF_UNIX) memfd creation/passing + ring mapping. `dialer` is
  /// true when this rank initiated the connection — the dialer creates
  /// the memfd and owns ring direction A.
  void bulk_handshake(int peer, int fd, bool dialer);
  /// Drains fd until EAGAIN, parsing complete frames into arrivals_.
  /// Returns true if anything new arrived. Throws FabricError on
  /// unannounced EOF/reset.
  bool pump_peer(int peer);
  void parse_frames(int peer);
  void send_frame(int peer, const ProtoMsg& msg);
  /// Bulk-plane progress for one peer: receive side (ring or stream, into
  /// the registered landing buffer) then transmit side (chunk-capped).
  /// Returns true if any bytes moved or completions surfaced.
  bool pump_bulk(int peer);
  bool pump_bulk_rx(int peer);
  bool pump_bulk_tx(int peer);
  /// One tx pass over every peer; true if any bytes moved (wait_activity
  /// uses this to avoid parking while a transfer could progress).
  bool pump_bulk_tx_all();
  void bulk_queue(int peer, std::uint64_t cookie, const void* data,
                  std::size_t size);
  void bulk_eof(int peer, const char* detail);
  void begin_bulk_rx(int peer);
  void finish_bulk_rx(int peer);
  void ring_doorbell(int peer);
  bool reap_zerocopy(int peer);
  void flush_bulk() noexcept;  // bounded best-effort tx drain before BYE
  void say_bye() noexcept;
  [[nodiscard]] std::string who() const;  // "rank R" for error texts

  int nranks_;
  int rank_;
  Options opt_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<Conn> conns_;           // by peer rank
  std::vector<std::unique_ptr<BulkChan>> bulk_;  // by peer rank (null: no plane)
  /// Landing buffers registered by bulk_post, keyed (src, cookie).
  std::map<std::pair<int, std::uint64_t>, std::pair<void*, std::size_t>>
      bulk_regs_;
  std::deque<ProtoMsg> arrivals_;     // parsed, FIFO per source
  int pump_cursor_ = 0;               // round-robin fairness over peers
  Stats stats_;
  std::unique_ptr<Ep> ep_;
};

}  // namespace lcmpi::fabric
