// SocketFabric — real multi-process execution over kernel stream sockets.
//
// ShmFabric (§6d) made one rank = one OS thread inside a single address
// space; this fabric takes the next rung the paper's ATM/Ethernet port
// implies: one rank = one OS *process*, with every byte crossing the
// kernel's socket layer (AF_UNIX by default, AF_INET/127.0.0.1 on
// request). The unchanged MPI engine runs verbatim on top — eager ≤
// threshold with the envelope, CTS-then-push rendezvous, per-sender
// credit flow control — exactly the seam MPICH2's channel abstraction
// exposes between protocol and wire.
//
// Topology and bootstrap: a full mesh of pre-connected stream sockets,
// built by a rank-0 rendezvous. Every rank r>0 binds its own listener,
// connects to rank 0's well-known rendezvous address (retrying with
// exponential backoff — rank 0 may not have bound yet), and sends a hello
// naming itself and its listener. Rank 0 collects all n-1 hellos, then
// broadcasts the address table; the rendezvous connections themselves
// become the 0<->r mesh links, and each remaining pair (i, j), 0 < i < j,
// is completed by i dialing j's listener. Rendezvous I/O is blocking;
// after the mesh is up every socket switches to nonblocking for the data
// phase.
//
// Wire format: length-prefixed records ([u32 frame length][fixed header]
// [payload]), full-width fields (no 16-bit context squeeze — this wire is
// ours, not Table 1's). All I/O is short-read/short-write/EINTR-safe. A
// blocked sender (kernel socket buffer full, EAGAIN) drains its inbound
// sockets into the arrival queue while waiting for POLLOUT — the same
// discipline ShmFabric uses to break send/send deadlocks, because the
// engine only polls between fabric calls.
//
// Failure model: each fabric sends a BYE record before closing (ranks
// finish at different times; a goodbye is not an error). EOF or
// ECONNRESET *without* a preceding BYE means the peer process died —
// poll()/send() throw FabricError instead of letting a blocked receive
// hang forever. wait_activity is a poll(2) over every live peer socket
// with a bounded slice (condition-variable semantics: callers re-check).
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/fabric/fabric.h"

namespace lcmpi::fabric {

class SocketFabric final : public Fabric {
 public:
  /// Which kernel transport carries the mesh.
  enum class Domain : std::uint8_t { kUnix, kInet };

  struct Options {
    FabricCaps caps;
    /// Zero: host work takes real time, as on ShmFabric.
    MpiCosts costs;
    Domain domain = Domain::kUnix;
    /// Rendezvous/connect patience: per-attempt backoff doubles from
    /// `backoff_floor` to `backoff_cap`; giving up after `dial_deadline`
    /// total raises FabricError (a peer that never came up).
    std::chrono::milliseconds backoff_floor{1};
    std::chrono::milliseconds backoff_cap{100};
    std::chrono::milliseconds dial_deadline{10'000};
    /// wait_activity poll(2) slice (bounds wakeup staleness only;
    /// arrivals interrupt it immediately).
    std::chrono::milliseconds poll_slice{100};
    Options() {
      caps.hw_broadcast = false;  // software tree broadcast
      caps.pull_bulk = false;     // push-mode rendezvous (CTS/RDATA)
      caps.flow = FlowControl::kCredit;
      caps.eager_threshold = 180;
    }
  };

  /// Where rank 0 listens for the rendezvous. `unix_dir` (kUnix) is a
  /// private directory for this world's socket files; `port` (kInet) is
  /// rank 0's rendezvous port on 127.0.0.1. `listen_fd` optionally hands
  /// rank 0 a pre-bound listener inherited from the launcher (how
  /// SocketWorld gets an ephemeral AF_INET port with no conflict window);
  /// -1 makes rank 0 bind the named address itself.
  struct Rendezvous {
    std::string unix_dir;
    std::uint16_t port = 0;
    int listen_fd = -1;
  };

  /// Builds this rank's attachment: binds/dials the mesh (blocking, with
  /// retry) and leaves every connection nonblocking. Call once per
  /// process; throws FabricError if the mesh cannot be built.
  SocketFabric(int nranks, int rank, const Rendezvous& rdv, Options opt = {});
  ~SocketFabric() override;

  /// Attachment described by LCMPI_RANK / LCMPI_NRANKS plus either
  /// LCMPI_SOCKET_DIR (AF_UNIX) or LCMPI_PORT (AF_INET) — the env
  /// contract for external launchers that re-exec one binary per rank.
  [[nodiscard]] static SocketFabric from_env(Options opt = {});

  [[nodiscard]] int nranks() const override { return nranks_; }
  [[nodiscard]] int local_rank() const { return rank_; }
  /// Only the local rank's endpoint exists in this process.
  [[nodiscard]] Endpoint& endpoint(int rank) override;

  /// Wall-clock nanoseconds since fabric construction (= endpoint now()).
  [[nodiscard]] TimePoint wall_now() const;

  struct Stats {
    std::uint64_t messages_tx = 0;   // frames written
    std::uint64_t messages_rx = 0;   // frames parsed
    std::uint64_t bytes_tx = 0;      // framed bytes written
    std::uint64_t bytes_rx = 0;      // framed bytes read
    std::uint64_t send_stalls = 0;   // EAGAIN on write (kernel buffer full)
    std::uint64_t idle_polls = 0;    // wait_activity entered poll(2)
    std::uint64_t dial_retries = 0;  // rendezvous connect attempts beyond the first
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  class Ep;
  friend class Ep;

  /// One mesh connection (index = peer rank; self slot unused).
  struct Conn {
    int fd = -1;
    Bytes rx;                 // unparsed bytes (partial frame tail)
    bool bye_seen = false;    // peer announced clean shutdown
    bool closed = false;      // fd closed (after EOF)
  };

  void build_mesh(const Rendezvous& rdv);
  /// Drains fd until EAGAIN, parsing complete frames into arrivals_.
  /// Returns true if anything new arrived. Throws FabricError on
  /// unannounced EOF/reset.
  bool pump_peer(int peer);
  void parse_frames(int peer);
  void send_frame(int peer, const ProtoMsg& msg);
  void say_bye() noexcept;
  [[nodiscard]] std::string who() const;  // "rank R" for error texts

  int nranks_;
  int rank_;
  Options opt_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<Conn> conns_;           // by peer rank
  std::deque<ProtoMsg> arrivals_;     // parsed, FIFO per source
  int pump_cursor_ = 0;               // round-robin fairness over peers
  Stats stats_;
  std::unique_ptr<Ep> ep_;
};

}  // namespace lcmpi::fabric
