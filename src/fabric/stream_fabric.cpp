#include "src/fabric/stream_fabric.h"

#include <utility>

namespace lcmpi::fabric {
namespace {

// The 24-byte control block (plus 1 type byte = the paper's 25 bytes of
// MPI protocol information per message).
struct Control {
  std::uint32_t credit = 0;      // flow-control credit returned
  std::int32_t tag = 0;
  std::uint16_t context = 0;
  std::uint8_t mode = 0;
  std::uint8_t pad = 0;
  std::uint32_t size = 0;        // payload bytes that follow (or msg size for RTS)
  std::uint32_t sender_req = 0;
  std::uint32_t seq = 0;
};
static_assert(sizeof(Control) == kControlBytes, "control block must stay 24 bytes");

Bytes encode(const ProtoMsg& m) {
  LCMPI_CHECK(m.sender_req <= 0xffffffffULL && m.seq <= 0xffffffffULL &&
                  m.context <= 0xffffULL,
              "field exceeds stream wire width");
  Control c;
  c.credit = m.credit;
  c.tag = m.tag;
  c.context = static_cast<std::uint16_t>(m.context);
  c.mode = m.mode;
  c.size = m.size;
  c.sender_req = static_cast<std::uint32_t>(m.sender_req);
  c.seq = static_cast<std::uint32_t>(m.seq);

  Bytes out;
  ByteWriter w(out);
  w.put(static_cast<std::uint8_t>(m.kind));
  w.put(c);
  w.put_bytes(m.payload.data(), m.payload.size());
  return out;
}

}  // namespace

StreamFabric::StreamFabric(sim::Kernel& kernel,
                           std::vector<std::vector<inet::StreamEndpoint*>> streams,
                           Options opt, std::vector<inet::DatagramSocket*> bcast_socks)
    : Fabric(kernel,
             [&] {
               FabricCaps caps;
               caps.hw_broadcast = !bcast_socks.empty();
               caps.pull_bulk = false;
               caps.flow = opt.flow;
               caps.eager_threshold = opt.eager_threshold;
               caps.credit_bytes = opt.credit_bytes;
               caps.control_record_bytes = 1 + kControlBytes;
               return caps;
             }(),
             opt.costs) {
  LCMPI_CHECK(bcast_socks.empty() || bcast_socks.size() == streams.size(),
              "broadcast socket count mismatch");
  const std::uint16_t bcast_port =
      bcast_socks.empty() ? 0 : bcast_socks.front()->port();
  for (std::size_t i = 0; i < streams.size(); ++i) {
    inet::DatagramSocket* bs = bcast_socks.empty() ? nullptr : bcast_socks[i];
    LCMPI_CHECK(bs == nullptr || bs->port() == bcast_port,
                "broadcast sockets must share one port");
    eps_.push_back(std::make_unique<Ep>(*this, static_cast<int>(i), std::move(streams[i]),
                                        bs, bcast_port));
  }
}

Endpoint& StreamFabric::endpoint(int rank) {
  LCMPI_CHECK(rank >= 0 && rank < nranks(), "rank out of range");
  return *eps_[static_cast<std::size_t>(rank)];
}

StreamFabric::Ep::Ep(StreamFabric& f, int rank, std::vector<inet::StreamEndpoint*> peers,
                     inet::DatagramSocket* bcast_sock, std::uint16_t bcast_port)
    : Endpoint(f, rank), peers_(std::move(peers)), bcast_sock_(bcast_sock),
      bcast_port_(bcast_port) {
  for (inet::StreamEndpoint* s : peers_) {
    if (s == nullptr) continue;
    // Readiness notification: wakes an engine blocked in wait_activity.
    s->set_on_readable([this] { notify_activity(); });
  }
  if (bcast_sock_ != nullptr)
    bcast_sock_->set_on_arrival([this](inet::Datagram d) { on_bcast_datagram(std::move(d)); });
}

namespace {
// Broadcast chunk header: context, bcast sequence, payload size, chunking.
struct BcastChunkHeader {
  std::uint32_t context = 0;
  std::uint32_t seq = 0;
  std::uint32_t total_size = 0;
  std::uint16_t chunk_idx = 0;
  std::uint16_t nchunks = 0;
};
}  // namespace

void StreamFabric::Ep::hw_broadcast(sim::Actor& self, ProtoMsg msg) {
  LCMPI_CHECK(bcast_sock_ != nullptr, "no broadcast socket configured");
  const std::int64_t max_chunk =
      bcast_sock_->max_payload() - static_cast<std::int64_t>(sizeof(BcastChunkHeader));
  const std::int64_t total = static_cast<std::int64_t>(msg.payload.size());
  const auto nchunks =
      static_cast<std::uint16_t>(total == 0 ? 1 : (total + max_chunk - 1) / max_chunk);
  for (std::uint16_t i = 0; i < nchunks; ++i) {
    BcastChunkHeader h;
    h.context = msg.context;
    h.seq = static_cast<std::uint32_t>(msg.seq);
    h.total_size = static_cast<std::uint32_t>(total);
    h.chunk_idx = i;
    h.nchunks = nchunks;
    const std::int64_t off = i * max_chunk;
    const std::int64_t len = std::min<std::int64_t>(max_chunk, total - off);
    Bytes dgram;
    ByteWriter w(dgram);
    w.put(h);
    if (len > 0) w.put_bytes(msg.payload.data() + off, static_cast<std::size_t>(len));
    bcast_sock_->send_broadcast(self, bcast_port_, std::move(dgram));
  }
}

void StreamFabric::Ep::on_bcast_datagram(inet::Datagram d) {
  ByteReader r(d.data);
  const auto h = r.get<BcastChunkHeader>();
  PartialBcast& p = partial_[d.src_host];
  if (h.chunk_idx == 0) {
    p = PartialBcast{};
    p.context = h.context;
    p.seq = h.seq;
    p.nchunks = h.nchunks;
    p.data.reserve(h.total_size);
  }
  LCMPI_CHECK(h.chunk_idx == p.next_chunk && h.seq == p.seq,
              "broadcast chunk out of order");
  Bytes chunk = r.rest();
  p.data.insert(p.data.end(), chunk.begin(), chunk.end());
  ++p.next_chunk;
  if (p.next_chunk < p.nchunks) return;
  ProtoMsg msg;
  msg.kind = MsgKind::kBcast;
  msg.src = d.src_host;
  msg.context = p.context;
  msg.seq = p.seq;
  msg.size = static_cast<std::uint32_t>(p.data.size());
  msg.payload = std::move(p.data);
  partial_.erase(d.src_host);
  deliver(std::move(msg));
}

void StreamFabric::Ep::send(sim::Actor& self, int dst, ProtoMsg msg) {
  LCMPI_CHECK(dst >= 0 && dst < static_cast<int>(peers_.size()) && peers_[static_cast<std::size_t>(dst)],
              "no stream to destination");
  msg.src = rank_;
  if (msg.kind == MsgKind::kEager || msg.kind == MsgKind::kRdata)
    msg.size = static_cast<std::uint32_t>(msg.payload.size());
  // One write: type byte + control block + piggybacked payload. The write
  // syscall and per-byte copy are charged to the caller by the stream.
  peers_[static_cast<std::size_t>(dst)]->write(self, encode(msg));
}

std::optional<ProtoMsg> StreamFabric::Ep::poll(sim::Actor& self) {
  // Deliveries already parsed (none normally; queue kept for symmetry).
  if (auto ready = Endpoint::poll(self)) return ready;

  const int n = static_cast<int>(peers_.size());
  for (int off = 0; off < n; ++off) {
    const int peer = (scan_from_ + off) % n;
    inet::StreamEndpoint* s = peers_[static_cast<std::size_t>(peer)];
    if (s == nullptr || s->available() == 0) continue;
    scan_from_ = (peer + 1) % n;

    // Table 1's receive path: read the type byte, then the control block,
    // then (for data-bearing records) the payload. Each is a charged read.
    std::uint8_t type = 0;
    s->read_exact(self, &type, 1);
    Control c;
    s->read_exact(self, &c, sizeof c);

    ProtoMsg m;
    m.kind = static_cast<MsgKind>(type);
    m.src = peer;
    m.credit = c.credit;
    m.tag = c.tag;
    m.context = c.context;
    m.mode = c.mode;
    m.size = c.size;
    m.sender_req = c.sender_req;
    m.seq = c.seq;
    if ((m.kind == MsgKind::kEager || m.kind == MsgKind::kRdata) && c.size > 0) {
      m.payload.resize(c.size);
      s->read_exact(self, m.payload.data(), c.size);
    }
    return m;
  }
  return std::nullopt;
}

}  // namespace lcmpi::fabric
