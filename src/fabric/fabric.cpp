#include "src/fabric/fabric.h"

namespace lcmpi::fabric {

TimePoint Endpoint::now() const { return fabric_.kernel().now(); }

std::uint64_t Endpoint::stage_bulk(sim::Actor&, Bytes, std::function<void()>) {
  throw InternalError("this fabric does not support pull-mode rendezvous");
}

void Endpoint::pull_bulk(sim::Actor&, int, std::uint64_t, std::function<void(Bytes)>) {
  throw InternalError("this fabric does not support pull-mode rendezvous");
}

void Endpoint::hw_broadcast(sim::Actor&, ProtoMsg) {
  throw InternalError("this fabric does not support hardware broadcast");
}

void Endpoint::hw_barrier_enter(sim::Actor&) {
  throw InternalError("this fabric does not support hardware barrier");
}

void Endpoint::bulk_post(int, std::uint64_t, void*, std::size_t) {
  throw InternalError("this fabric has no bulk data plane (bulk_plane() is kInline)");
}

void Endpoint::bulk_send(sim::Actor&, int, std::uint64_t, const void*, std::size_t) {
  throw InternalError("this fabric has no bulk data plane (bulk_plane() is kInline)");
}

void Endpoint::rma_expose(std::uint64_t, void*, std::int64_t, void*) {
  // Message-mode fabrics have nothing to register: kRma* frames carry the
  // window key and the target's engine routes them to its window layer.
}

void Endpoint::rma_retract(std::uint64_t) {}

bool Endpoint::rma_direct(int, std::uint64_t, RmaSegment*) { return false; }

std::optional<ProtoMsg> Endpoint::poll(sim::Actor&) {
  if (incoming_.empty()) return std::nullopt;
  ProtoMsg m = std::move(incoming_.front());
  incoming_.pop_front();
  return m;
}

void Endpoint::wait_activity(sim::Actor& self) { self.wait(activity_); }

void Endpoint::deliver(ProtoMsg msg) {
  incoming_.push_back(std::move(msg));
  activity_.notify_all();
}

}  // namespace lcmpi::fabric
