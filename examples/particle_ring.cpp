// Example: pairwise particle interactions on the workstation cluster (§6.2).
//
// Runs the ring-exchange force computation over MPI-on-TCP, on both the
// 155 Mb/s ATM switch and the shared 10 Mb/s Ethernet, and verifies the
// forces against the serial O(P^2) reference — the paper's Fig. 9 workload
// as a runnable program.
//
//   ./particle_ring [particles] [procs]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/apps/particles.h"
#include "src/runtime/world.h"

using namespace lcmpi;

int main(int argc, char** argv) {
  const int count = argc > 1 ? std::atoi(argv[1]) : 128;
  const int procs = argc > 2 ? std::atoi(argv[2]) : 8;

  const auto particles = apps::random_particles(count, 99);
  const auto reference = apps::forces_serial(particles);

  std::printf("computing %d-particle pairwise forces on %d cluster hosts\n", count, procs);

  auto run_on = [&](runtime::Media media, const char* name) {
    std::vector<std::vector<apps::Force>> per_rank(static_cast<std::size_t>(procs));
    runtime::ClusterWorld w(procs, media, runtime::Transport::kTcp);
    const Duration t = w.run([&](mpi::Comm& c, sim::Actor& self) {
      per_rank[static_cast<std::size_t>(c.rank())] =
          apps::forces_ring(c, self, particles, apps::sgi_profile());
    });
    std::vector<apps::Force> flat;
    for (auto& part : per_rank) flat.insert(flat.end(), part.begin(), part.end());
    double max_err = 0.0;
    for (std::size_t i = 0; i < reference.size(); ++i)
      max_err = std::max({max_err, std::abs(flat[i].fx - reference[i].fx),
                          std::abs(flat[i].fy - reference[i].fy),
                          std::abs(flat[i].fz - reference[i].fz)});
    std::printf("  mpi/tcp/%-4s %10s   max force error %.2e %s\n", name,
                to_string(t).c_str(), max_err, max_err < 1e-9 ? "(correct)" : "(WRONG)");
    return max_err < 1e-9;
  };

  const bool atm_ok = run_on(runtime::Media::kAtm, "atm");
  const bool eth_ok = run_on(runtime::Media::kEthernet, "eth");
  return atm_ok && eth_ok ? 0 : 1;
}
