// Example: the paper's broadcast-driven linear equation solver (§6.1).
//
// Solves a dense N x N system on a simulated Meiko CS/2, comparing the
// low-latency MPI (hardware broadcast) against the MPICH baseline
// (point-to-point tree over tport), and checks the answer against the
// serial solver.
//
//   ./linear_solver [N] [procs]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/apps/solver.h"
#include "src/runtime/world.h"

using namespace lcmpi;

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 96;
  const int procs = argc > 2 ? std::atoi(argv[2]) : 8;

  const apps::LinearSystem sys = apps::LinearSystem::random(n, 2024);
  const std::vector<double> reference = apps::solve_serial(sys);

  std::printf("solving a %dx%d dense system on %d simulated Meiko nodes\n", n, n, procs);

  std::vector<double> x;
  mpi::Profiler rank0_profile;
  runtime::MeikoWorld lw(procs);
  const Duration lowlat = lw.run([&](mpi::Comm& c, sim::Actor& self) {
    if (c.rank() == 0) c.set_profiler(&rank0_profile);
    auto got = apps::solve_parallel(c, self, sys, apps::sparc_profile());
    if (c.rank() == 0) x = got;
  });

  runtime::MpichMeikoWorld mw(procs);
  const Duration mpich = mw.run([&](mpi::MpichComm& c, sim::Actor& self) {
    (void)apps::solve_parallel(c, self, sys, apps::sparc_profile());
  });

  double max_err = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i)
    max_err = std::max(max_err, std::abs(x[i] - reference[i]));

  std::printf("  low-latency MPI (hw broadcast):  %s\n", to_string(lowlat).c_str());
  std::printf("  MPICH/tport (p2p broadcast):     %s\n", to_string(mpich).c_str());
  std::printf("  max |x - x_serial| = %.2e %s\n", max_err,
              max_err < 1e-8 ? "(correct)" : "(WRONG)");

  std::printf("\nrank 0 MPI profile (low-latency run, profiling interface):\n");
  rank0_profile.report().print();
  std::printf("time inside MPI: %s of %s total\n",
              to_string(rank0_profile.total_time()).c_str(), to_string(lowlat).c_str());
  return max_err < 1e-8 ? 0 : 1;
}
