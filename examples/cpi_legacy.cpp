// Example: the classic MPICH demo program `cpi.c` (compute pi by numeric
// integration), ported onto the C compatibility API essentially verbatim.
// A 1996 MPI program runs unmodified over the simulated Meiko CS/2 —
// the portability promise the MPI standard (and the paper) is about.
//
//   ./cpi_legacy [intervals] [procs]          # simulated Meiko CS/2
//   lcmpirun -n 4 ./cpi_legacy [intervals]    # real processes/cluster
//
// Under lcmpirun the binary detects the LCMPI_* environment and runs as
// ONE rank of a real socket-fabric world instead of simulating all of
// them — the same legacy program, now actually distributed.
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/capi/mpi.h"
#include "src/runtime/bootstrap.h"

namespace {

// ------------------------- begin "legacy" program -------------------------
int g_intervals = 10000;

void cpi_main() {
  int myid, numprocs;
  double PI25DT = 3.141592653589793238462643;
  double mypi, pi, h, sum, x;

  MPI_Init(nullptr, nullptr);
  MPI_Comm_rank(MPI_COMM_WORLD, &myid);
  MPI_Comm_size(MPI_COMM_WORLD, &numprocs);

  int n = myid == 0 ? g_intervals : 0;
  double startwtime = 0.0;
  if (myid == 0) startwtime = MPI_Wtime();
  MPI_Bcast(&n, 1, MPI_INT, 0, MPI_COMM_WORLD);

  h = 1.0 / (double)n;
  sum = 0.0;
  for (int i = myid + 1; i <= n; i += numprocs) {
    x = h * ((double)i - 0.5);
    sum += 4.0 / (1.0 + x * x);
  }
  mypi = h * sum;

  MPI_Reduce(&mypi, &pi, 1, MPI_DOUBLE, MPI_SUM, 0, MPI_COMM_WORLD);

  if (myid == 0) {
    printf("pi is approximately %.16f, Error is %.16f\n", pi, fabs(pi - PI25DT));
    printf("wall clock time = %f (simulated seconds)\n", MPI_Wtime() - startwtime);
  }
  MPI_Finalize();
}
// -------------------------- end "legacy" program ---------------------------

}  // namespace

int main(int argc, char** argv) {
  g_intervals = argc > 1 ? std::atoi(argv[1]) : 10000;

  if (lcmpi::runtime::bootstrap::env_launched()) {
    // Started by lcmpirun: this process IS one rank; the world's size
    // and wiring come from the environment.
    return lcmpi::capi::run_env(cpi_main);
  }

  const int procs = argc > 2 ? std::atoi(argv[2]) : 8;
  lcmpi::runtime::MeikoWorld world(procs);
  lcmpi::capi::run_on(world, cpi_main);
  return 0;
}
