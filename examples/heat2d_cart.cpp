// Example: 2-D heat diffusion on a Cartesian process grid.
//
// Uses the virtual-topology API (MPI_Cart-style): dims_create factors the
// world into a 2-D grid, cart_shift finds the four neighbours (PROC_NULL
// at the edges), and each time step exchanges row/column halos — columns
// travel as a strided vector datatype, exercising non-contiguous
// communication end to end. Verified against a serial run.
//
//   ./heat2d_cart [n] [steps] [procs]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/core/cart.h"
#include "src/runtime/world.h"

using namespace lcmpi;

namespace {

std::vector<double> serial_heat2d(std::vector<double> u, int n, int steps, double alpha) {
  std::vector<double> next(u.size());
  auto at = [&](const std::vector<double>& g, int r, int c) {
    if (r < 0 || r >= n || c < 0 || c >= n) return 0.0;
    return g[static_cast<std::size_t>(r) * static_cast<std::size_t>(n) +
             static_cast<std::size_t>(c)];
  };
  for (int s = 0; s < steps; ++s) {
    for (int r = 0; r < n; ++r)
      for (int c = 0; c < n; ++c)
        next[static_cast<std::size_t>(r) * static_cast<std::size_t>(n) +
             static_cast<std::size_t>(c)] =
            at(u, r, c) + alpha * (at(u, r - 1, c) + at(u, r + 1, c) + at(u, r, c - 1) +
                                   at(u, r, c + 1) - 4 * at(u, r, c));
    u.swap(next);
  }
  return u;
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 48;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 20;
  const int procs = argc > 3 ? std::atoi(argv[3]) : 4;
  const double alpha = 0.15;

  const std::vector<int> dims = mpi::dims_create(procs, 2);
  if (n % dims[0] != 0 || n % dims[1] != 0) {
    std::fprintf(stderr, "grid %dx%d does not tile %d cells\n", dims[0], dims[1], n);
    return 2;
  }

  std::vector<double> initial(static_cast<std::size_t>(n) * n, 0.0);
  initial[static_cast<std::size_t>(n / 2) * n + n / 2] = 1000.0;
  const std::vector<double> want = serial_heat2d(initial, n, steps, alpha);

  std::vector<double> got(want.size(), 0.0);
  runtime::MeikoWorld world(procs);
  const Duration t = world.run([&](mpi::Comm& comm, sim::Actor&) {
    auto cart = mpi::CartComm::create(comm, dims, {false, false});
    if (!cart) return;
    mpi::Comm& cc = cart->comm();
    const auto coords = cart->my_coords();
    const int rows = n / dims[0];
    const int cols = n / dims[1];
    const int row0 = coords[0] * rows;
    const int col0 = coords[1] * cols;
    auto dt = mpi::Datatype::double_type();
    const int stride = cols + 2;
    // One local column, including ghost rows stripped: `rows` doubles
    // strided by the padded row length.
    auto col_type = mpi::Datatype::vector(rows, 1, stride, dt);

    // Local block padded with a one-cell halo on each side.
    std::vector<double> u(static_cast<std::size_t>(rows + 2) * static_cast<std::size_t>(stride), 0.0);
    std::vector<double> next(u.size(), 0.0);
    auto idx = [&](int r, int c) {
      return static_cast<std::size_t>(r) * static_cast<std::size_t>(stride) +
             static_cast<std::size_t>(c);
    };
    for (int r = 0; r < rows; ++r)
      for (int c = 0; c < cols; ++c)
        u[idx(r + 1, c + 1)] =
            initial[static_cast<std::size_t>(row0 + r) * n + (col0 + c)];

    const auto v = cart->shift(0, 1);   // vertical: source above, dest below
    const auto h = cart->shift(1, 1);   // horizontal: source left, dest right

    for (int s = 0; s < steps; ++s) {
      std::vector<mpi::Request> reqs;
      // Rows are contiguous; columns use the strided datatype.
      reqs.push_back(cc.isend(&u[idx(rows, 1)], cols, dt, v.dest, 0));
      reqs.push_back(cc.isend(&u[idx(1, 1)], cols, dt, v.source, 1));
      reqs.push_back(cc.isend(&u[idx(1, cols)], 1, col_type, h.dest, 2));
      reqs.push_back(cc.isend(&u[idx(1, 1)], 1, col_type, h.source, 3));
      cc.recv(&u[idx(0, 1)], cols, dt, v.source, 0);
      cc.recv(&u[idx(rows + 1, 1)], cols, dt, v.dest, 1);
      cc.recv(&u[idx(1, 0)], 1, col_type, h.source, 2);
      cc.recv(&u[idx(1, cols + 1)], 1, col_type, h.dest, 3);
      cc.wait_all(reqs);
      // Edges bordering PROC_NULL keep their zero halos (fixed boundary).
      if (v.source == mpi::kProcNull)
        for (int c = 0; c <= cols + 1; ++c) u[idx(0, c)] = 0.0;
      if (v.dest == mpi::kProcNull)
        for (int c = 0; c <= cols + 1; ++c) u[idx(rows + 1, c)] = 0.0;
      if (h.source == mpi::kProcNull)
        for (int r = 0; r <= rows + 1; ++r) u[idx(r, 0)] = 0.0;
      if (h.dest == mpi::kProcNull)
        for (int r = 0; r <= rows + 1; ++r) u[idx(r, cols + 1)] = 0.0;

      for (int r = 1; r <= rows; ++r)
        for (int c = 1; c <= cols; ++c)
          next[idx(r, c)] = u[idx(r, c)] + alpha * (u[idx(r - 1, c)] + u[idx(r + 1, c)] +
                                                    u[idx(r, c - 1)] + u[idx(r, c + 1)] -
                                                    4 * u[idx(r, c)]);
      std::swap(u, next);
    }

    // Gather blocks back to rank 0 via variable-displacement sends.
    std::vector<double> block(static_cast<std::size_t>(rows) * cols);
    for (int r = 0; r < rows; ++r)
      for (int c = 0; c < cols; ++c)
        block[static_cast<std::size_t>(r) * cols + c] = u[idx(r + 1, c + 1)];
    if (cc.rank() == 0) {
      auto place = [&](int rank, const std::vector<double>& b) {
        const auto rc = cart->coords(rank);
        for (int r = 0; r < rows; ++r)
          for (int c = 0; c < cols; ++c)
            got[static_cast<std::size_t>(rc[0] * rows + r) * n + (rc[1] * cols + c)] =
                b[static_cast<std::size_t>(r) * cols + c];
      };
      place(0, block);
      std::vector<double> other(block.size());
      for (int src = 1; src < cc.size(); ++src) {
        mpi::Status st = cc.recv(other.data(), static_cast<int>(other.size()), dt,
                                 mpi::kAnySource, 9);
        place(st.source, other);
      }
    } else {
      cc.send(block.data(), static_cast<int>(block.size()), dt, 0, 9);
    }
  });

  double max_err = 0.0;
  for (std::size_t i = 0; i < want.size(); ++i)
    max_err = std::max(max_err, std::abs(got[i] - want[i]));
  std::printf("heat2d_cart: %dx%d grid on %dx%d ranks, %d steps -> %s, max error %.2e %s\n",
              n, n, dims[0], dims[1], steps, to_string(t).c_str(), max_err,
              max_err < 1e-9 ? "(correct)" : "(WRONG)");
  return max_err < 1e-9 ? 0 : 1;
}
