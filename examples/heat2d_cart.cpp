// Example: 2-D heat diffusion on a Cartesian process grid.
//
// Thin wrapper over apps::heat2d_parallel (src/apps/heat2d.h). The halo
// exchange runs either two-sided (isend/recv pairs, the MPI-1 form) or
// one-sided (MPI-2 window of halo landing strips: fence / Put / fence) —
// both produce bit-identical grids, verified here against a serial run.
//
//   ./heat2d_cart [n] [steps] [procs] [two-sided|one-sided]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "src/apps/heat2d.h"
#include "src/core/cart.h"
#include "src/runtime/world.h"

using namespace lcmpi;

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 48;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 20;
  const int procs = argc > 3 ? std::atoi(argv[3]) : 4;
  const char* mode_arg = argc > 4 ? argv[4] : "two-sided";
  const double alpha = 0.15;

  apps::HaloMode mode;
  if (std::strcmp(mode_arg, "two-sided") == 0) {
    mode = apps::HaloMode::kTwoSided;
  } else if (std::strcmp(mode_arg, "one-sided") == 0) {
    mode = apps::HaloMode::kOneSided;
  } else {
    std::fprintf(stderr, "unknown halo mode '%s' (want two-sided|one-sided)\n", mode_arg);
    return 2;
  }

  const std::vector<int> dims = mpi::dims_create(procs, 2);
  if (n % dims[0] != 0 || n % dims[1] != 0) {
    std::fprintf(stderr, "grid %dx%d does not tile %d cells\n", dims[0], dims[1], n);
    return 2;
  }

  std::vector<double> initial(static_cast<std::size_t>(n) * n, 0.0);
  initial[static_cast<std::size_t>(n / 2) * n + n / 2] = 1000.0;
  const std::vector<double> want = apps::heat2d_serial(initial, n, steps, alpha);

  std::vector<double> got;
  runtime::MeikoWorld world(procs);
  const Duration t = world.run([&](mpi::Comm& comm, sim::Actor&) {
    auto mine = apps::heat2d_parallel(comm, dims, initial, n, steps, alpha, mode);
    if (!mine.empty()) got = std::move(mine);
  });

  if (got.size() != want.size()) {
    std::fprintf(stderr, "no assembled grid came back from rank 0\n");
    return 1;
  }
  double max_err = 0.0;
  for (std::size_t i = 0; i < want.size(); ++i)
    max_err = std::max(max_err, std::abs(got[i] - want[i]));
  std::printf(
      "heat2d_cart: %dx%d grid on %dx%d ranks, %d steps, %s halos -> %s, max error %.2e %s\n",
      n, n, dims[0], dims[1], steps, mode_arg, to_string(t).c_str(), max_err,
      max_err < 1e-9 ? "(correct)" : "(WRONG)");
  return max_err < 1e-9 ? 0 : 1;
}
