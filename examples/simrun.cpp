// simrun — an mpirun-style driver for the SIMULATED platforms (the real-
// cluster launcher is `lcmpirun`, src/tools).
//
// Picks a platform, a rank count, and a built-in application, runs it, and
// reports simulated time plus a rank-0 MPI profile. Ties the whole library
// together from one command line:
//
//   ./simrun --platform meiko        --ranks 16 --app solver    --n 128
//   ./simrun --platform mpich        --ranks 8  --app particles --n 24
//   ./simrun --platform tcp-atm      --ranks 8  --app particles --n 128
//   ./simrun --platform tcp-eth      --ranks 4  --app solver    --n 96
//   ./simrun --platform rudp-atm     --ranks 4  --app matmul    --n 64
//   ./simrun --platform meiko --ranks 8 --app pingpong --n 4096
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/apps/matmul.h"
#include "src/apps/particles.h"
#include "src/apps/solver.h"
#include "src/runtime/world.h"

using namespace lcmpi;

namespace {

struct Args {
  std::string platform = "meiko";
  std::string app = "solver";
  int ranks = 8;
  int n = 96;
  bool profile = false;
};

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: simrun [--platform meiko|mpich|tcp-atm|tcp-eth|rudp-atm]\n"
               "                [--ranks N] [--app solver|matmul|particles|pingpong]\n"
               "                [--n SIZE] [--profile]\n");
  std::exit(2);
}

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        usage();
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--platform")) a.platform = need_value("--platform");
    else if (!std::strcmp(argv[i], "--app")) a.app = need_value("--app");
    else if (!std::strcmp(argv[i], "--ranks")) a.ranks = std::atoi(need_value("--ranks"));
    else if (!std::strcmp(argv[i], "--n")) a.n = std::atoi(need_value("--n"));
    else if (!std::strcmp(argv[i], "--profile")) a.profile = true;
    else usage();
  }
  if (a.ranks < 1 || a.n < 1) usage();
  return a;
}

/// The selected application, templated over the communicator type.
template <typename C>
void run_app(const Args& args, C& comm, sim::Actor& self,
             const apps::ComputeProfile& compute) {
  if (args.app == "solver") {
    (void)apps::solve_parallel(comm, self, apps::LinearSystem::random(args.n, 7), compute);
  } else if (args.app == "matmul") {
    LCMPI_CHECK(args.n % comm.size() == 0, "--n must divide --ranks for matmul");
    (void)apps::matmul_parallel(comm, self, apps::random_matrix(args.n, 1),
                                apps::random_matrix(args.n, 2), args.n, compute);
  } else if (args.app == "particles") {
    (void)apps::forces_ring(comm, self, apps::random_particles(args.n, 3), compute);
  } else if (args.app == "pingpong") {
    if (comm.size() < 2) throw InternalError("pingpong needs at least 2 ranks");
    Bytes buf(static_cast<std::size_t>(args.n), std::byte{1});
    auto bt = mpi::Datatype::byte_type();
    if (comm.rank() == 0) {
      for (int i = 0; i < 100; ++i) {
        comm.send(buf.data(), args.n, bt, 1, 1);
        comm.recv(buf.data(), args.n, bt, 1, 2);
      }
    } else if (comm.rank() == 1) {
      for (int i = 0; i < 100; ++i) {
        comm.recv(buf.data(), args.n, bt, 0, 1);
        comm.send(buf.data(), args.n, bt, 0, 2);
      }
    }
  } else {
    throw InternalError("unknown app: " + args.app);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  std::printf("simrun: %s on %s, %d ranks, n=%d\n", args.app.c_str(),
              args.platform.c_str(), args.ranks, args.n);

  mpi::Profiler profile;
  Duration elapsed{};
  try {
    if (args.platform == "mpich") {
      runtime::MpichMeikoWorld w(args.ranks);
      elapsed = w.run([&](mpi::MpichComm& c, sim::Actor& self) {
        run_app(args, c, self, apps::sparc_profile());
      });
    } else {
      auto rank_fn = [&](mpi::Comm& c, sim::Actor& self) {
        if (args.profile && c.rank() == 0) c.set_profiler(&profile);
        const bool meiko = args.platform == "meiko";
        run_app(args, c, self, meiko ? apps::sparc_profile() : apps::sgi_profile());
      };
      if (args.platform == "meiko") {
        runtime::MeikoWorld w(args.ranks);
        elapsed = w.run(rank_fn);
      } else if (args.platform == "tcp-atm") {
        runtime::ClusterWorld w(args.ranks, runtime::Media::kAtm, runtime::Transport::kTcp);
        elapsed = w.run(rank_fn);
      } else if (args.platform == "tcp-eth") {
        runtime::ClusterWorld w(args.ranks, runtime::Media::kEthernet,
                                runtime::Transport::kTcp);
        elapsed = w.run(rank_fn);
      } else if (args.platform == "rudp-atm") {
        runtime::ClusterWorld w(args.ranks, runtime::Media::kAtm,
                                runtime::Transport::kRudp);
        elapsed = w.run(rank_fn);
      } else {
        usage();
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "simrun: %s\n", e.what());
    return 1;
  }

  std::printf("simulated time: %s\n", to_string(elapsed).c_str());
  if (args.profile) {
    std::printf("\nrank 0 MPI profile:\n");
    profile.report().print();
  }
  return 0;
}
