// Quickstart: the library in one page.
//
// Builds a 4-node simulated Meiko CS/2, runs one MPI rank per node, and
// exercises the basics: point-to-point send/recv with status, nonblocking
// ops, probe, a broadcast (hardware-assisted on this platform), and an
// allreduce — all in deterministic virtual time, printed at the end.
//
//   ./quickstart
#include <cstdio>
#include <string>

#include "src/runtime/world.h"

using namespace lcmpi;

int main() {
  runtime::MeikoWorld world(4);

  const Duration elapsed = world.run([](mpi::Comm& comm, sim::Actor&) {
    const int me = comm.rank();
    const int n = comm.size();
    auto i32 = mpi::Datatype::int32_type();

    // --- point-to-point: ring shift with status --------------------------
    const std::int32_t token = me * 100;
    std::int32_t received = -1;
    mpi::Status st = comm.sendrecv(&token, 1, i32, (me + 1) % n, /*sendtag=*/7,
                                   &received, 1, i32, (me + n - 1) % n, /*recvtag=*/7);
    std::printf("[rank %d] got %d from rank %d (tag %d)\n", me, received, st.source,
                st.tag);

    // --- nonblocking + probe ----------------------------------------------
    if (me == 0) {
      std::int32_t v = 42;
      comm.send(&v, 1, i32, 1, 9);
    } else if (me == 1) {
      mpi::Status p = comm.probe(mpi::kAnySource, mpi::kAnyTag);
      std::printf("[rank 1] probe: %lld bytes waiting from rank %d\n",
                  static_cast<long long>(p.count_bytes), p.source);
      std::int32_t v = 0;
      mpi::Request r = comm.irecv(&v, 1, i32, p.source, p.tag);
      comm.wait(r);
      std::printf("[rank 1] received %d\n", v);
    }

    // --- collectives --------------------------------------------------------
    double pi = me == 0 ? 3.14159 : 0.0;
    comm.bcast(&pi, 1, mpi::Datatype::double_type(), 0);  // hardware broadcast

    std::int32_t mine = me + 1;
    std::int32_t sum = 0;
    comm.allreduce(&mine, &sum, 1, i32, mpi::Op::kSum);
    if (me == 0)
      std::printf("[rank 0] bcast value %.5f, allreduce sum %d (expect %d)\n", pi, sum,
                  n * (n + 1) / 2);
    comm.barrier();
  });

  std::printf("\nsimulated Meiko CS/2 time: %s\n", to_string(elapsed).c_str());
  return 0;
}
