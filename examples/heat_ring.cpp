// Example: 1-D heat diffusion with halo exchange.
//
// A domain-decomposition workload beyond the paper's two applications: a
// rod is split across ranks, and each time step exchanges one-cell halos
// with both neighbours using the paper's recommended pattern (nonblocking
// sends, blocking receives, then waits). Demonstrates the library on a
// stencil code and verifies against a serial run.
//
//   ./heat_ring [cells] [steps] [procs]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/runtime/world.h"

using namespace lcmpi;

namespace {

std::vector<double> serial_heat(std::vector<double> u, int steps, double alpha) {
  const std::size_t n = u.size();
  std::vector<double> next(n);
  for (int s = 0; s < steps; ++s) {
    for (std::size_t i = 0; i < n; ++i) {
      const double left = i > 0 ? u[i - 1] : 0.0;
      const double right = i + 1 < n ? u[i + 1] : 0.0;
      next[i] = u[i] + alpha * (left - 2 * u[i] + right);
    }
    u.swap(next);
  }
  return u;
}

}  // namespace

int main(int argc, char** argv) {
  const int cells = argc > 1 ? std::atoi(argv[1]) : 240;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 50;
  const int procs = argc > 3 ? std::atoi(argv[3]) : 6;
  const double alpha = 0.2;
  if (cells % procs != 0) {
    std::fprintf(stderr, "cells must divide procs\n");
    return 2;
  }

  // Initial condition: a hot spike in the middle.
  std::vector<double> initial(static_cast<std::size_t>(cells), 0.0);
  initial[static_cast<std::size_t>(cells / 2)] = 100.0;
  const std::vector<double> want = serial_heat(initial, steps, alpha);

  std::vector<double> got(static_cast<std::size_t>(cells));
  runtime::MeikoWorld world(procs);
  const Duration t = world.run([&](mpi::Comm& comm, sim::Actor&) {
    const int me = comm.rank();
    const int n = comm.size();
    const int local = cells / n;
    auto dt = mpi::Datatype::double_type();

    // Local slab with two ghost cells.
    std::vector<double> u(static_cast<std::size_t>(local) + 2, 0.0);
    std::vector<double> next(u.size(), 0.0);
    for (int i = 0; i < local; ++i)
      u[static_cast<std::size_t>(i) + 1] = initial[static_cast<std::size_t>(me * local + i)];

    for (int s = 0; s < steps; ++s) {
      std::vector<mpi::Request> sends;
      if (me > 0) sends.push_back(comm.isend(&u[1], 1, dt, me - 1, 1));
      if (me < n - 1)
        sends.push_back(comm.isend(&u[static_cast<std::size_t>(local)], 1, dt, me + 1, 2));
      if (me < n - 1)
        comm.recv(&u[static_cast<std::size_t>(local) + 1], 1, dt, me + 1, 1);
      else
        u[static_cast<std::size_t>(local) + 1] = 0.0;
      if (me > 0) comm.recv(&u[0], 1, dt, me - 1, 2);
      else u[0] = 0.0;
      comm.wait_all(sends);

      for (int i = 1; i <= local; ++i)
        next[static_cast<std::size_t>(i)] =
            u[static_cast<std::size_t>(i)] +
            alpha * (u[static_cast<std::size_t>(i) - 1] - 2 * u[static_cast<std::size_t>(i)] +
                     u[static_cast<std::size_t>(i) + 1]);
      std::swap(u, next);
    }

    comm.gather(&u[1], local, got.data(), dt, 0);
  });

  double max_err = 0.0;
  for (std::size_t i = 0; i < want.size(); ++i)
    max_err = std::max(max_err, std::abs(got[i] - want[i]));
  std::printf("heat_ring: %d cells, %d steps, %d ranks -> %s, max error %.2e %s\n",
              cells, steps, procs, to_string(t).c_str(), max_err,
              max_err < 1e-9 ? "(correct)" : "(WRONG)");
  return max_err < 1e-9 ? 0 : 1;
}
