// Extension study: one-way latency decomposition on the Meiko, from the
// protocol tracer — the same style of breakdown Table 1 gives for TCP,
// produced here for the paper's own low-latency implementation.
//
// Components per message:
//   build    = isend entry -> protocol message handed to the fabric
//   flight   = fabric hand-off -> envelope at the receiver's engine
//   match    = arrival -> matched against the posted queue
//   deliver  = match -> payload in the user buffer (eager copy, or the
//              rendezvous DMA pull for large messages)
#include "bench/common.h"

#include "src/core/trace.h"

namespace lcmpi::bench {
namespace {

struct Breakdown {
  double build_us = 0, flight_us = 0, match_us = 0, deliver_us = 0, total_us = 0;
};

Breakdown measure(int bytes) {
  mpi::MsgTrace trace;
  mpi::EngineConfig cfg;
  cfg.trace = &trace;
  runtime::MeikoWorld w(2, {}, cfg);
  w.run([&, bytes](mpi::Comm& c, sim::Actor& self) {
    Bytes buf(static_cast<std::size_t>(bytes));
    if (c.rank() == 0) {
      c.send(buf.data(), bytes, mpi::Datatype::byte_type(), 1, 0);
    } else {
      c.recv(buf.data(), bytes, mpi::Datatype::byte_type(), 0, 0);
      (void)self;
    }
  });
  Breakdown b;
  LCMPI_CHECK(trace.traced_messages() == 1, "expected exactly one traced message");
  const mpi::MsgTrace::Key key = trace.all().begin()->first;
  auto span_us = [&](mpi::MsgEvent from, mpi::MsgEvent to) {
    auto s = trace.span(key, from, to);
    return s ? s->usec() : 0.0;
  };
  b.build_us = span_us(mpi::MsgEvent::kIsendStart, mpi::MsgEvent::kLaunched);
  b.flight_us = span_us(mpi::MsgEvent::kLaunched, mpi::MsgEvent::kArrived);
  b.match_us = span_us(mpi::MsgEvent::kArrived, mpi::MsgEvent::kMatched);
  b.deliver_us = span_us(mpi::MsgEvent::kMatched, mpi::MsgEvent::kDelivered);
  b.total_us = span_us(mpi::MsgEvent::kIsendStart, mpi::MsgEvent::kDelivered);
  return b;
}

int run() {
  banner("Extension", "Meiko one-way latency decomposition (protocol tracer)");

  Table t({"bytes", "build_us", "flight_us", "match_us", "deliver_us", "oneway_us",
           "protocol"});
  for (int bytes : {1, 64, 180, 512, 4096, 65536}) {
    const Breakdown b = measure(bytes);
    t.add_row({std::to_string(bytes), fmt(b.build_us), fmt(b.flight_us), fmt(b.match_us),
               fmt(b.deliver_us), fmt(b.total_us),
               bytes <= 180 ? "eager" : "rendezvous"});
  }
  t.print();
  std::printf("\nthe 'deliver' column is the paper's Fig. 1 story in one table: a\n"
              "per-byte receiver copy in the eager rows, a fixed request handshake\n"
              "plus a 39 MB/s DMA in the rendezvous rows.\n");
  return 0;
}

}  // namespace
}  // namespace lcmpi::bench

int main() { return lcmpi::bench::run(); }
