// Figure 3: Meiko bandwidth.
//
// Throughput vs message size for the raw tport widget, the low-latency
// MPI, and the MPICH baseline. All three should approach the DMA engine's
// 39 MB/s ceiling, with the low-latency implementation at or above MPICH
// because its lower per-message latency leaves more of each transfer in
// the DMA.
#include "bench/common.h"

namespace lcmpi::bench {
namespace {

int run() {
  banner("Figure 3", "Meiko bandwidth");

  Table t({"bytes", "tport_MBps", "mpi_lowlat_MBps", "mpi_mpich_MBps"});
  double best = 0.0;
  for (int bytes : bandwidth_sizes()) {
    TportWorld tw;
    const double tport = tw.bandwidth_mbps(bytes);
    runtime::MeikoWorld lw(2);
    const double lowlat = mpi_bandwidth_mbps(lw, bytes);
    runtime::MpichMeikoWorld mw(2);
    const double mpich = mpi_bandwidth_mbps(mw, bytes);
    best = std::max({best, tport, lowlat, mpich});
    t.add_row({std::to_string(bytes), fmt(tport), fmt(lowlat), fmt(mpich)});
  }
  t.print();
  std::printf("\npeak measured bandwidth: %.1f MB/s (paper: best possible DMA 39 MB/s)\n",
              best);
  return 0;
}

}  // namespace
}  // namespace lcmpi::bench

int main() { return lcmpi::bench::run(); }
