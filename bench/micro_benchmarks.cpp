// google-benchmark microbenchmarks of the library's real hot paths (these
// measure wall-clock cost of the implementation itself, complementing the
// virtual-time figures the per-figure harnesses report).
#include <benchmark/benchmark.h>

#include "src/core/datatype.h"
#include "src/core/matching.h"
#include "src/sim/kernel.h"
#include "src/sim/mailbox.h"
#include "src/util/rng.h"

namespace lcmpi {
namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Kernel k;
    for (int i = 0; i < n; ++i)
      k.schedule(microseconds(static_cast<double>(i % 97)), [] {});
    k.run();
    benchmark::DoNotOptimize(k.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(10000);

void BM_ActorPingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::Kernel k;
    sim::Mailbox<int> to_b, to_a;
    int hops = 0;
    k.spawn("a", [&](sim::Actor& self) {
      for (int i = 0; i < 100; ++i) {
        to_b.push(i);
        hops += to_a.pop(self);
      }
    });
    k.spawn("b", [&](sim::Actor& self) {
      for (int i = 0; i < 100; ++i) {
        (void)to_b.pop(self);
        to_a.push(1);
      }
    });
    k.run();
    benchmark::DoNotOptimize(hops);
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_ActorPingPong);

void BM_MatchingUnexpectedScan(benchmark::State& state) {
  const auto depth = static_cast<int>(state.range(0));
  mpi::UnexpectedQueue q;
  for (int i = 0; i < depth; ++i) {
    fabric::ProtoMsg m;
    m.context = 0;
    m.src = i % 8;
    m.tag = i;
    q.add(std::move(m));
  }
  std::size_t scanned = 0;
  for (auto _ : state) {
    const auto* hit = q.peek(0, mpi::kAnySource, depth - 1, &scanned);
    benchmark::DoNotOptimize(hit);
  }
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_MatchingUnexpectedScan)->Arg(16)->Arg(256);

void BM_DatatypePackContiguous(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  std::vector<double> src(static_cast<std::size_t>(n), 1.5);
  auto t = mpi::Datatype::double_type();
  for (auto _ : state) {
    Bytes packed = t.pack(src.data(), n);
    benchmark::DoNotOptimize(packed.data());
  }
  state.SetBytesProcessed(state.iterations() * n * 8);
}
BENCHMARK(BM_DatatypePackContiguous)->Arg(1024)->Arg(65536);

void BM_DatatypePackStridedColumn(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  std::vector<double> matrix(static_cast<std::size_t>(n) * n, 2.0);
  auto col = mpi::Datatype::vector(n, 1, n, mpi::Datatype::double_type());
  for (auto _ : state) {
    Bytes packed = col.pack(matrix.data(), 1);
    benchmark::DoNotOptimize(packed.data());
  }
  state.SetBytesProcessed(state.iterations() * n * 8);
}
BENCHMARK(BM_DatatypePackStridedColumn)->Arg(64)->Arg(256);

void BM_RngThroughput(benchmark::State& state) {
  Rng rng(1);
  std::uint64_t acc = 0;
  for (auto _ : state) acc ^= rng.next_u64();
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_RngThroughput);

}  // namespace
}  // namespace lcmpi

BENCHMARK_MAIN();
