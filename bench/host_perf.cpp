// Host-time performance harness (wall-clock, not virtual time).
//
// Everything else in bench/ measures the *model* — virtual nanoseconds that
// reproduce the paper's figures. This harness measures the *simulator*: how
// fast the host executes matching lookups, kernel events, and whole solver
// runs. It exists to (a) prove the bucketed matcher's O(1) host-time claim
// against the retained linear reference, and (b) catch host-side perf
// regressions, while golden_determinism_test proves the same changes left
// virtual time bit-identical.
//
// Usage: host_perf [--quick] [--out PATH]
//   --quick  ~10x fewer iterations (CI smoke mode)
//   --out    JSON output path (default: BENCH_host.json in the cwd)
//
// JSON schema (lcmpi-host-perf-v10):
//   matching[]   — ns/match for bucketed vs linear posted + unexpected
//                  queues at several steady-state depths, with speedups
//   event_kernel — callback-event dispatch and timer borrow/cancel/release
//                  throughput (events per host second), per scheduler backend
//   scheduler    — timer-heavy TCP-cluster workload (ring traffic over an
//                  ATM cluster plus per-host connection-table timer wheels):
//                  events per host second for the calendar queue vs the heap
//                  reference, with a cross-backend determinism check. The
//                  process exits nonzero if the calendar queue regresses
//                  below the heap or the two backends diverge in virtual time.
//   actors       — switch-heavy trigger ping-pong: context switches per host
//                  second for the fiber backend vs the thread reference, with
//                  a cross-backend determinism check, plus an actor-lifecycle
//                  churn point (fiber stack pool reuse / high-water). The
//                  process exits nonzero if fibers deliver < 5x the thread
//                  backend's switches/sec or the backends diverge.
//   cluster_points[] — whole-cluster runs on the non-default fabrics
//                  (Ethernet media, RUDP transport): events and virtual ms
//                  simulated per host second
//   threads_world — REAL execution numbers (wall clock, not virtual):
//                  SPSC-ring vs mutex/condvar channel throughput and
//                  ping-pong between two OS threads, plus a 2-rank MPI
//                  ping-pong over ThreadsWorld/ShmFabric. The process
//                  exits nonzero if the ring delivers < 5x the mutex
//                  channel's msgs/sec.
//   rma          — REAL one-sided numbers over ThreadsWorld/ShmFabric: the
//                  amortized cost of a small MPI_Put on the DIRECT strategy
//                  (epochs of 1024 back-to-back 8 B puts, fence included in
//                  the division) next to the empty-epoch fence cost, gated
//                  against the two-sided 8 B eager ping-pong RTT measured in
//                  the same run. A direct put is one store into the target's
//                  window, so its amortized cost must undercut the full
//                  send/recv round trip; the process exits nonzero if it
//                  does not.
//   socket_world — REAL multi-process numbers: a 2-rank MPI ping-pong over
//                  SocketWorld (one forked process per rank, kernel stream
//                  sockets), once per domain (AF_UNIX and AF_INET loopback).
//                  Wall time includes fork + rendezvous, so this is a whole-
//                  launch figure, not a pure wire latency. Per domain: the
//                  8-byte msgs/sec point (gated against the pre-lazy-dial
//                  full-mesh baseline — the epoll/lazy rewrite must not tax
//                  the 2-rank hot path) and a 64 B .. 64 KiB size sweep fit
//                  to t(N) = a + b*N one-way (a = latency, 1/b = bandwidth,
//                  the MPICH reporting convention). The process exits
//                  nonzero if either domain's msgs/sec drops below its floor.
//   socket_scale — the lazy-connection gate: a 256-process all-to-one eager
//                  burst. Rank 0's fd count is O(N) by design (degree N-1);
//                  every other rank must finish with a constant handful of
//                  fds (<= nonroot_fd_budget). The process exits nonzero on
//                  failure or a budget breach.
//   launcher     — REAL exec-based launch numbers (the lcmpirun path):
//                  host_perf re-execs ITSELF via bootstrap::launch — each
//                  rank is a fresh process wired purely by LCMPI_* env, no
//                  fork-inherited state — and measures (a) the 2-rank
//                  AF_UNIX 8 B ping-pong msgs/sec on that path, gated
//                  against the same floor as the fork-based socket_world
//                  (exec must not tax the steady-state hot path), and (b)
//                  an N-rank spawn: wall seconds to launch, ring-exchange,
//                  and reap N env-bootstrapped processes, with the max
//                  non-root fd gauge shipped back and held to the O(log N)
//                  budget. The process exits nonzero if the floor or the
//                  budget is missed.
//   bulk_plane   — REAL bulk-data-plane numbers: a one-way rendezvous
//                  bandwidth sweep (64 KiB .. 4 MiB) per transport —
//                  ThreadsWorld direct handoff, SocketWorld AF_UNIX with the
//                  memfd ring / dedicated stream socket / inline (pre-bulk
//                  baseline) planes, and AF_INET with MSG_ZEROCOPY — with a
//                  least-squares y(N) = a + b*N fit per transport (a = fixed
//                  per-transfer cost, 1/b = asymptotic bytes/sec). Timings
//                  are taken INSIDE rank 0 and shipped out via run_collect,
//                  so fork + rendezvous cost is excluded. Two gates: the
//                  memfd plane must deliver >= 2x the inline plane's
//                  large-transfer bandwidth, and the eager ping-pong RTT
//                  measured concurrently with a huge in-flight rendezvous
//                  must stay <= 2x the idle RTT or inside an absolute
//                  envelope (bulk/control isolation — the whole point of
//                  the split data plane; the envelope keeps idle-latency
//                  improvements from flunking the ratio). The process
//                  exits nonzero if either gate fails.
//   collectives  — VIRTUAL-time sweep of the collective-algorithm engine on
//                  the CS/2 model: (size x ranks x algorithm) for bcast and
//                  allreduce with hw offload disabled, an hw-enabled bcast
//                  column, and the Fig. 7 solver re-run per forced
//                  algorithm. Two gates feed the exit code: the
//                  auto-selection table must land within 10% of the best
//                  fixed algorithm at every swept point, and the modelled
//                  Elan hardware broadcast must beat the software binomial
//                  tree at >= 8 ranks.
//   end_to_end   — 16-rank Meiko solver: virtual ms simulated per host s
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/apps/particles.h"
#include "src/apps/solver.h"
#include "src/atmnet/atm.h"
#include "src/core/matching.h"
#include "src/core/matching_ref.h"
#include "src/core/profile.h"
#include "src/core/win.h"
#include "src/inet/cluster.h"
#include "src/inet/tcp.h"
#include "src/runtime/bootstrap.h"
#include "src/runtime/world.h"
#include "src/sim/fiber.h"
#include "src/sim/kernel.h"
#include "src/util/bytes.h"
#include "src/util/env.h"
#include "src/util/rng.h"
#include "src/util/spsc_ring.h"

namespace lcmpi::bench {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Defeats dead-code elimination of the measured loops.
std::size_t g_sink = 0;

// --- matching: steady-state lookups at fixed depth ---------------------------
//
// The depth-isolating shape of bench/ext_matching_depth: `depth - 1` parked
// entries from other sources sit at the front of the queue (receives whose
// peers have not sent yet / unexpected messages nobody asked for), and the
// entry the lookup wants arrived last. The linear matcher scans past every
// parked entry on every lookup; the bucketed matcher goes straight to the
// target source's bucket. Each iteration matches (a hit) and re-adds the
// target, holding depth constant. The *virtual* charge is `depth` entries
// for both implementations — only host time differs.

template <typename Q>
double posted_ns_per_match(int depth, int iters) {
  Q q;
  std::uint64_t id = 1;
  for (int i = 0; i < depth - 1; ++i)
    q.post({/*context=*/1, /*src=*/i, /*tag=*/0, /*request_id=*/id++});
  const int target = depth - 1;
  q.post({1, target, 0, id++});
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    std::size_t scanned = 0;
    auto e = q.match(1, target, 0, &scanned);
    g_sink += scanned + (e ? 1u : 0u);
    q.post({1, target, 0, id++});
  }
  return seconds_since(t0) * 1e9 / iters;
}

template <typename Q>
double unexpected_ns_per_match(int depth, int iters) {
  Q q;
  std::uint64_t id = 1;
  const auto park = [&q, &id](int src) {
    fabric::ProtoMsg m;
    m.kind = fabric::MsgKind::kEager;
    m.context = 1;
    m.src = src;
    m.tag = 0;
    m.sender_req = id++;
    q.add(std::move(m));
  };
  for (int i = 0; i < depth - 1; ++i) park(i);
  const int target = depth - 1;
  park(target);
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    std::size_t scanned = 0;
    auto m = q.match(1, target, 0, &scanned);
    g_sink += scanned + (m ? 1u : 0u);
    park(target);
  }
  return seconds_since(t0) * 1e9 / iters;
}

struct MatchingPoint {
  int depth;
  double posted_linear_ns, posted_bucketed_ns, posted_speedup;
  double unexpected_linear_ns, unexpected_bucketed_ns, unexpected_speedup;
};

MatchingPoint matching_point(int depth, int iters) {
  MatchingPoint p{};
  p.depth = depth;
  p.posted_bucketed_ns = posted_ns_per_match<mpi::PostedQueue>(depth, iters);
  p.posted_linear_ns = posted_ns_per_match<mpi::LinearPostedQueue>(depth, iters);
  p.posted_speedup = p.posted_linear_ns / p.posted_bucketed_ns;
  p.unexpected_bucketed_ns =
      unexpected_ns_per_match<mpi::UnexpectedQueue>(depth, iters);
  p.unexpected_linear_ns =
      unexpected_ns_per_match<mpi::LinearUnexpectedQueue>(depth, iters);
  p.unexpected_speedup = p.unexpected_linear_ns / p.unexpected_bucketed_ns;
  return p;
}

// --- event kernel ------------------------------------------------------------

/// Callback events scheduled and dispatched in waves (bounded queue).
double fn_events_per_sec(sim::SchedBackend backend, int total) {
  sim::Kernel k(backend);
  const int wave = 100'000;
  long long done = 0;
  const auto t0 = Clock::now();
  for (int scheduled = 0; scheduled < total; scheduled += wave) {
    const int n = std::min(wave, total - scheduled);
    for (int i = 0; i < n; ++i)
      k.schedule(microseconds(i + 1), [&done] { ++done; });
    k.run();
  }
  g_sink += static_cast<std::size_t>(done);
  return done / seconds_since(t0);
}

/// Timer churn: borrow a cancellation cell, cancel, pop the dead event —
/// the wait_with_timeout fast path where the trigger fires first.
double timer_churn_per_sec(sim::SchedBackend backend, int total) {
  sim::Kernel k(backend);
  const int wave = 100'000;
  const auto t0 = Clock::now();
  for (int scheduled = 0; scheduled < total; scheduled += wave) {
    const int n = std::min(wave, total - scheduled);
    for (int i = 0; i < n; ++i) {
      sim::EventHandle h = k.schedule(microseconds(i + 1), [] {});
      h.cancel();
    }
    k.run();
  }
  return total / seconds_since(t0);
}

// --- scheduler: timer-heavy TCP cluster --------------------------------------
//
// The workload the calendar queue is sized against (ROADMAP: host_perf only
// covered the Meiko fabric before this point). An 8-host ATM cluster runs
// TCP ring traffic — every hop arms delayed-ACK and RTO timers — while each
// host additionally maintains a connection-table timer wheel: kTableTimers
// cancellable timers spread over the next ~10 ms of virtual time, all
// cancelled and re-armed every wheel tick, the way a TCP stack re-arms
// per-connection retransmit clocks on every ACK. The scheduler therefore
// sees a large standing timer population with constant cancel/re-arm churn
// (the heap pays O(log n) per operation on it, the calendar queue O(1)),
// with real protocol traffic interleaved so pop order still matters.
//
// Both backends run the identical deterministic workload; virtual time and
// event counts must match exactly (checked), and host time gives events/sec.

struct SchedPoint {
  double host_s = 0;
  double events_per_sec = 0;
  std::uint64_t events = 0;
  std::int64_t virtual_ns = 0;
  std::int64_t tcp_timer_arms = 0;  // RTO + delayed-ACK arms, all endpoints
};

struct SchedResult {
  int hosts = 8;
  int table_timers = 1024;
  SchedPoint calendar, heap;
  double speedup = 0;
  bool deterministic = false;
  bool calendar_at_least_heap = false;
};

SchedPoint tcp_timer_workload(sim::SchedBackend backend, int hosts,
                              int table_timers, int wheel_ticks, int ring_laps) {
  SchedPoint out;
  const auto t0 = Clock::now();
  sim::Kernel kernel(backend);
  atmnet::AtmNetwork net{kernel, hosts};
  inet::InetCluster cluster{net, inet::atm_profile()};
  std::vector<inet::TcpConnection*> ring;
  ring.reserve(static_cast<std::size_t>(hosts));
  for (int h = 0; h < hosts; ++h)
    ring.push_back(&cluster.tcp_pair(h, (h + 1) % hosts));

  // Per-host connection-table wheel: a self-rescheduling tick that cancels
  // the previous generation of table timers and arms a fresh one at
  // deterministic pseudo-random deadlines. Most timers die cancelled (like
  // RTO clocks on an ACKed connection); the survivors of the last tick fire.
  struct Wheel {
    std::vector<sim::EventHandle> timers;
    Rng rng{0};
    int ticks_left = 0;
  };
  std::vector<Wheel> wheels(static_cast<std::size_t>(hosts));
  std::function<void(int)> tick = [&](int h) {
    Wheel& w = wheels[static_cast<std::size_t>(h)];
    for (sim::EventHandle& t : w.timers) t.cancel();
    w.timers.clear();
    for (int i = 0; i < table_timers; ++i) {
      const Duration d{w.rng.uniform(1'000, 10'000'000)};  // 1 µs .. 10 ms
      w.timers.push_back(kernel.schedule(d, [] {}));
    }
    if (--w.ticks_left > 0)
      kernel.schedule(microseconds(200), [&tick, h] { tick(h); });
  };
  for (int h = 0; h < hosts; ++h) {
    wheels[static_cast<std::size_t>(h)].rng = Rng(0x9E3779B9u + static_cast<std::uint64_t>(h));
    wheels[static_cast<std::size_t>(h)].ticks_left = wheel_ticks;
    kernel.schedule(microseconds(1 + h), [&tick, h] { tick(h); });
  }

  // Ring traffic: a token circulates `ring_laps` times; every hop crosses a
  // TCP connection, arming ACK/RTO timers against the standing wheel load.
  for (int h = 0; h < hosts; ++h) {
    kernel.spawn("host" + std::to_string(h), [&, h](sim::Actor& self) {
      inet::TcpEndpoint& rx = ring[static_cast<std::size_t>((h + hosts - 1) % hosts)]->b();
      inet::TcpEndpoint& tx = ring[static_cast<std::size_t>(h)]->a();
      Bytes token(256, std::byte{7});
      if (h == 0) tx.write(self, token);  // inject
      for (int lap = 0; lap < ring_laps; ++lap) {
        Bytes in(token.size());
        rx.read_exact(self, in.data(), in.size());
        if (h == 0 && lap + 1 == ring_laps) break;  // token retired at origin
        tx.write(self, in);
      }
    });
  }

  kernel.run();
  out.host_s = seconds_since(t0);
  out.events = kernel.events_executed();
  out.virtual_ns = kernel.now().ns;
  out.events_per_sec = static_cast<double>(out.events) / out.host_s;
  for (inet::TcpConnection* c : ring)
    out.tcp_timer_arms += c->a().rto_timer_arms() + c->a().delayed_ack_timer_arms() +
                          c->b().rto_timer_arms() + c->b().delayed_ack_timer_arms();
  return out;
}

SchedResult scheduler_point(bool quick) {
  SchedResult r;
  const int wheel_ticks = quick ? 60 : 300;
  const int ring_laps = quick ? 60 : 300;
  // Best of two runs per backend damps host-side noise; the virtual-time
  // observables are identical across runs by construction (determinism).
  for (int rep = 0; rep < 2; ++rep) {
    SchedPoint c = tcp_timer_workload(sim::SchedBackend::kCalendar, r.hosts,
                                      r.table_timers, wheel_ticks, ring_laps);
    if (rep == 0 || c.events_per_sec > r.calendar.events_per_sec) r.calendar = c;
    SchedPoint h = tcp_timer_workload(sim::SchedBackend::kHeap, r.hosts,
                                      r.table_timers, wheel_ticks, ring_laps);
    if (rep == 0 || h.events_per_sec > r.heap.events_per_sec) r.heap = h;
  }
  r.speedup = r.calendar.events_per_sec / r.heap.events_per_sec;
  r.deterministic = r.calendar.virtual_ns == r.heap.virtual_ns &&
                    r.calendar.events == r.heap.events &&
                    r.calendar.tcp_timer_arms == r.heap.tcp_timer_arms;
  r.calendar_at_least_heap = r.calendar.events_per_sec >= r.heap.events_per_sec;
  return r;
}

// --- actors: switch-heavy trigger ping-pong ----------------------------------
//
// Two actors bounce a token through a pair of Triggers; every round is two
// wakes, each costing one kernel→actor and one actor→kernel transfer plus a
// wake event — the simulated-MPI blocking pattern with all payload work
// stripped out, so host time is dominated by the context-switch mechanism
// itself. The thread reference pays two futex round trips per transfer; the
// fiber backend a few dozen instructions. Both backends run the identical
// event schedule (checked: virtual time, switch and event counts).

struct ActorPoint {
  double host_s = 0;
  double switches_per_sec = 0;
  std::uint64_t switches = 0;
  std::uint64_t events = 0;
  std::int64_t virtual_ns = 0;
  sim::ActorStats stats;
};

ActorPoint actor_switch_workload(sim::ActorBackend backend, int rounds) {
  ActorPoint out;
  const auto t0 = Clock::now();
  sim::Kernel kernel(backend);
  sim::Trigger ping, pong;
  int turn = 0;
  kernel.spawn("ping", [&](sim::Actor& a) {
    for (int i = 0; i < rounds; ++i) {
      turn = 1;
      pong.notify_all();
      while (turn != 0) a.wait(ping);
    }
  });
  kernel.spawn("pong", [&](sim::Actor& a) {
    for (int i = 0; i < rounds; ++i) {
      while (turn != 1) a.wait(pong);
      turn = 0;
      ping.notify_all();
    }
  });
  kernel.run();
  out.host_s = seconds_since(t0);
  out.stats = kernel.actor_stats();
  out.switches = out.stats.switches;
  out.events = kernel.events_executed();
  out.virtual_ns = kernel.now().ns;
  out.switches_per_sec = static_cast<double>(out.switches) / out.host_s;
  return out;
}

/// Actor churn: waves of trivial actors that finish on their first resume,
/// so the fiber backend's stack pool serves every spawn after the first
/// from its free list. Reported per backend (stack numbers are fiber-only).
ActorPoint actor_lifecycle_workload(sim::ActorBackend backend, int spawns) {
  ActorPoint out;
  const auto t0 = Clock::now();
  long long done = 0;
  {
    sim::Kernel kernel(backend);
    for (int i = 0; i < spawns; ++i)
      kernel.spawn("a" + std::to_string(i), [&done](sim::Actor& self) {
        self.advance(Duration{0});
        ++done;
      });
    kernel.run();
    out.host_s = seconds_since(t0);
    out.stats = kernel.actor_stats();
    out.switches = out.stats.switches;
    out.events = kernel.events_executed();
    out.virtual_ns = kernel.now().ns;
  }
  g_sink += static_cast<std::size_t>(done);
  out.switches_per_sec = static_cast<double>(out.switches) / out.host_s;
  return out;
}

struct ActorResult {
  int rounds = 0;
  int spawns = 0;
  ActorPoint fibers, threads;
  ActorPoint lifecycle_fibers, lifecycle_threads;
  double speedup = 0;
  bool deterministic = false;
  bool meets_bar = false;   // fibers >= 5x threads switches/sec
  bool comparable = false;  // both backends actually available
};

ActorResult actor_point(bool quick) {
  ActorResult r;
  r.rounds = quick ? 20'000 : 100'000;
  r.spawns = quick ? 2'000 : 10'000;
  r.comparable = sim::fibers_available();
  // Best of two runs per backend damps host-side noise; virtual-time
  // observables are identical across runs by construction.
  for (int rep = 0; rep < 2; ++rep) {
    ActorPoint fb = actor_switch_workload(sim::ActorBackend::kFibers, r.rounds);
    if (rep == 0 || fb.switches_per_sec > r.fibers.switches_per_sec) r.fibers = fb;
    ActorPoint th = actor_switch_workload(sim::ActorBackend::kThreads, r.rounds);
    if (rep == 0 || th.switches_per_sec > r.threads.switches_per_sec) r.threads = th;
  }
  r.lifecycle_fibers =
      actor_lifecycle_workload(sim::ActorBackend::kFibers, r.spawns);
  r.lifecycle_threads =
      actor_lifecycle_workload(sim::ActorBackend::kThreads, r.spawns);
  r.speedup = r.fibers.switches_per_sec / r.threads.switches_per_sec;
  r.deterministic = r.fibers.virtual_ns == r.threads.virtual_ns &&
                    r.fibers.switches == r.threads.switches &&
                    r.fibers.events == r.threads.events &&
                    r.lifecycle_fibers.virtual_ns == r.lifecycle_threads.virtual_ns;
  r.meets_bar = !r.comparable || r.speedup >= 5.0;
  return r;
}

// --- cluster points: non-default fabrics -------------------------------------
//
// Whole-platform runs over the cluster media/transport combinations the
// default benches do not already track as host-perf numbers: the shared
// Ethernet segment (every frame serialises on the bus, contention events
// dominate) and the reliable-UDP transport (per-datagram ack/retransmit
// timers instead of TCP's stream machinery).

struct ClusterPoint {
  const char* media = "";
  const char* transport = "";
  int ranks = 8;
  int particles = 64;
  double virtual_ms = 0;
  double host_s = 0;
  std::uint64_t events = 0;
  double events_per_sec = 0;
  double sim_ms_per_host_s = 0;
};

ClusterPoint cluster_point(runtime::Media media, runtime::Transport transport,
                           const std::vector<apps::Particle>& particles) {
  ClusterPoint p;
  p.media = media == runtime::Media::kEthernet ? "ethernet" : "atm";
  p.transport = transport == runtime::Transport::kRudp ? "rudp" : "tcp";
  p.particles = static_cast<int>(particles.size());
  runtime::ClusterWorld w(p.ranks, media, transport);
  const auto t0 = Clock::now();
  const Duration d = w.run([&](mpi::Comm& c, sim::Actor& self) {
    (void)apps::forces_ring(c, self, particles, apps::sgi_profile());
  });
  p.host_s = seconds_since(t0);
  p.virtual_ms = static_cast<double>(d.ns) / 1e6;
  p.events = w.kernel().events_executed();
  p.events_per_sec = static_cast<double>(p.events) / p.host_s;
  p.sim_ms_per_host_s = p.virtual_ms / p.host_s;
  return p;
}

// --- threads world: real execution over the SPSC-ring fabric -----------------
//
// Everything above measures the simulator; this section measures the one
// backend that is not a simulation. Two channel microbenchmarks compare the
// lock-free SPSC ring against the in-tree mutex/condvar reference under the
// identical two-thread workloads — one-way streaming throughput (the ring's
// design target: a burst of eager envelopes) and request/response ping-pong
// (the latency shape MPI blocking calls produce). A third point runs a real
// 2-rank MPI ping-pong through ThreadsWorld, so protocol cost (matching,
// credits, parking) is included, not just raw slot transfer. Failed spins
// yield rather than burn the timeslice: on single-CPU hosts the other side
// needs the core to make progress at all.

struct ThreadsWorldResult {
  std::uint64_t channel_items = 0, pingpong_rounds = 0, mpi_rounds = 0;
  double ring_msgs_per_sec = 0, mutex_msgs_per_sec = 0;
  double ring_rt_per_sec = 0, mutex_rt_per_sec = 0;
  double throughput_speedup = 0, pingpong_speedup = 0;
  double mpi_usec_per_rtt = 0, mpi_msgs_per_sec = 0;
  fabric::ShmFabric::Stats mpi_stats;
  bool meets_bar = false;  // ring >= 5x mutex msgs/sec
};

double ring_throughput(std::uint64_t items) {
  util::SpscRing<std::uint64_t> ring(1024);
  const auto t0 = Clock::now();
  std::thread consumer([&ring, items] {
    std::uint64_t got = 0, acc = 0;
    while (got < items) {
      if (auto v = ring.try_pop()) {
        acc += *v;
        ++got;
      } else {
        std::this_thread::yield();
      }
    }
    g_sink += static_cast<std::size_t>(acc);
  });
  for (std::uint64_t i = 0; i < items; ++i) {
    std::uint64_t v = i;
    while (!ring.try_push(std::move(v))) std::this_thread::yield();
  }
  consumer.join();
  return static_cast<double>(items) / seconds_since(t0);
}

double mutex_throughput(std::uint64_t items) {
  util::MutexChannel<std::uint64_t> ch(1024);
  const auto forever = Clock::now() + std::chrono::minutes(10);
  const auto t0 = Clock::now();
  std::thread consumer([&ch, items, forever] {
    std::uint64_t got = 0, acc = 0;
    while (got < items) {
      if (auto v = ch.pop_until(forever)) {
        acc += *v;
        ++got;
      }
    }
    g_sink += static_cast<std::size_t>(acc);
  });
  for (std::uint64_t i = 0; i < items; ++i) {
    std::uint64_t v = i;
    ch.push_until(v, forever);
  }
  consumer.join();
  return static_cast<double>(items) / seconds_since(t0);
}

double ring_pingpong(std::uint64_t rounds) {
  util::SpscRing<std::uint64_t> req(16), rsp(16);
  const auto t0 = Clock::now();
  std::thread echo([&req, &rsp, rounds] {
    for (std::uint64_t i = 0; i < rounds; ++i) {
      std::optional<std::uint64_t> v;
      while (!(v = req.try_pop())) std::this_thread::yield();
      while (!rsp.try_push(std::move(*v))) std::this_thread::yield();
    }
  });
  for (std::uint64_t i = 0; i < rounds; ++i) {
    std::uint64_t v = i;
    while (!req.try_push(std::move(v))) std::this_thread::yield();
    std::optional<std::uint64_t> r;
    while (!(r = rsp.try_pop())) std::this_thread::yield();
    g_sink += static_cast<std::size_t>(*r & 1);
  }
  echo.join();
  return static_cast<double>(rounds) / seconds_since(t0);
}

double mutex_pingpong(std::uint64_t rounds) {
  util::MutexChannel<std::uint64_t> req(16), rsp(16);
  const auto forever = Clock::now() + std::chrono::minutes(10);
  const auto t0 = Clock::now();
  std::thread echo([&req, &rsp, rounds, forever] {
    for (std::uint64_t i = 0; i < rounds; ++i) {
      auto v = req.pop_until(forever);
      rsp.push_until(*v, forever);
    }
  });
  for (std::uint64_t i = 0; i < rounds; ++i) {
    std::uint64_t v = i;
    req.push_until(v, forever);
    auto r = rsp.pop_until(forever);
    g_sink += static_cast<std::size_t>(*r & 1);
  }
  echo.join();
  return static_cast<double>(rounds) / seconds_since(t0);
}

ThreadsWorldResult threads_world_point(bool quick) {
  ThreadsWorldResult r;
  r.channel_items = quick ? 200'000 : 2'000'000;
  r.pingpong_rounds = quick ? 20'000 : 200'000;
  r.mpi_rounds = quick ? 1'000 : 10'000;
  // Best of two runs damps scheduler noise on shared hosts.
  for (int rep = 0; rep < 2; ++rep) {
    r.ring_msgs_per_sec = std::max(r.ring_msgs_per_sec, ring_throughput(r.channel_items));
    r.mutex_msgs_per_sec =
        std::max(r.mutex_msgs_per_sec, mutex_throughput(r.channel_items));
    r.ring_rt_per_sec = std::max(r.ring_rt_per_sec, ring_pingpong(r.pingpong_rounds));
    r.mutex_rt_per_sec =
        std::max(r.mutex_rt_per_sec, mutex_pingpong(r.pingpong_rounds));
  }
  r.throughput_speedup = r.ring_msgs_per_sec / r.mutex_msgs_per_sec;
  r.pingpong_speedup = r.ring_rt_per_sec / r.mutex_rt_per_sec;

  const std::uint64_t rounds = r.mpi_rounds;
  runtime::ThreadsWorld world(2);
  const Duration wall = world.run([rounds](mpi::Comm& c, sim::Actor&) {
    const auto byte = mpi::Datatype::byte_type();
    unsigned char buf[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    for (std::uint64_t i = 0; i < rounds; ++i) {
      if (c.rank() == 0) {
        c.send(buf, sizeof buf, byte, 1, 1);
        c.recv(buf, sizeof buf, byte, 1, 2);
      } else {
        c.recv(buf, sizeof buf, byte, 0, 1);
        c.send(buf, sizeof buf, byte, 0, 2);
      }
    }
  });
  r.mpi_usec_per_rtt = static_cast<double>(wall.ns) / 1e3 / static_cast<double>(rounds);
  r.mpi_msgs_per_sec =
      static_cast<double>(2 * rounds) / (static_cast<double>(wall.ns) / 1e9);
  r.mpi_stats = world.fabric().stats();
  r.meets_bar = r.throughput_speedup >= 5.0;
  return r;
}

// --- one-sided RMA -----------------------------------------------------------
//
// The window layer's whole pitch on shared memory is that a Put is a store:
// no envelope, no matching, no target-side progress. This point prices that
// claim with wall clocks. Two ranks, one 64 B window each, epochs of 1024
// back-to-back 8-byte puts into the peer's half (disjoint per-origin slots,
// per the §6i conflict rules) closed by a fence; the amortized per-put cost
// divides the fence in. A second fence-only run prices the empty epoch so
// the two components can be read separately. The gate compares against the
// two-sided 8 B eager ping-pong RTT from the SAME harness run: one-sided
// must undercut the round trip it replaces.

struct RmaResult {
  std::uint64_t puts_per_epoch = 0, epochs = 0;
  double put_usec_amortized = 0;  // wall / (epochs * puts), fences included
  double fence_usec = 0;          // empty-epoch fence, wall / epochs
  double eager_rtt_usec = 0;      // same-run two-sided floor
  bool direct = false;            // the window committed to the DIRECT strategy
  bool meets_bar = false;         // put_usec_amortized <= eager_rtt_usec
};

RmaResult rma_point(bool quick, double eager_rtt_usec) {
  RmaResult r;
  r.puts_per_epoch = 1024;
  r.epochs = quick ? 20 : 200;
  r.eager_rtt_usec = eager_rtt_usec;

  bool direct = true;
  {
    runtime::ThreadsWorld world(2);
    const Duration wall = world.run([&r, &direct](mpi::Comm& c, sim::Actor&) {
      const auto byte = mpi::Datatype::byte_type();
      unsigned char wbuf[64] = {0};
      unsigned char src[8] = {1, 2, 3, 4, 5, 6, 7, 8};
      mpi::Win win(c, wbuf, sizeof wbuf, 1);
      if (c.rank() == 0) direct = win.direct_mode();
      const int peer = 1 - c.rank();
      const std::int64_t disp = c.rank() * 8;  // my slot on the peer
      for (std::uint64_t e = 0; e < r.epochs; ++e) {
        for (std::uint64_t i = 0; i < r.puts_per_epoch; ++i)
          win.put(src, 8, byte, peer, disp, 8, byte);
        win.fence();
      }
      win.free();
    });
    r.put_usec_amortized = static_cast<double>(wall.ns) / 1e3 /
                           static_cast<double>(r.epochs * r.puts_per_epoch);
  }
  {
    runtime::ThreadsWorld world(2);
    const Duration wall = world.run([&r](mpi::Comm& c, sim::Actor&) {
      unsigned char wbuf[64] = {0};
      mpi::Win win(c, wbuf, sizeof wbuf, 1);
      for (std::uint64_t e = 0; e < r.epochs; ++e) win.fence();
      win.free();
    });
    r.fence_usec = static_cast<double>(wall.ns) / 1e3 / static_cast<double>(r.epochs);
  }
  r.direct = direct;
  r.meets_bar = r.direct && r.put_usec_amortized <= r.eager_rtt_usec;
  return r;
}

// --- fit helper (shared by socket-world ping-pong and the bulk sweep) --------

struct BulkFit {
  double a_usec = 0;        // fixed per-transfer cost (fit intercept)
  double bytes_per_sec = 0; // asymptotic bandwidth (1 / fit slope)
};

struct BulkSweepPoint {
  std::size_t bytes = 0;
  double usec_per_transfer = 0;
  double mb_per_sec = 0;
};

/// Least squares for t(N) = a + b*N over the sweep points — the MPICH
/// methodology: the intercept is the size-independent latency, the
/// reciprocal slope the asymptotic bandwidth.
BulkFit fit_points(const std::vector<BulkSweepPoint>& pts) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const double n = static_cast<double>(pts.size());
  for (const BulkSweepPoint& p : pts) {
    const double x = static_cast<double>(p.bytes);
    const double y = p.usec_per_transfer * 1e-6;
    sx += x; sy += y; sxx += x * x; sxy += x * y;
  }
  const double denom = n * sxx - sx * sx;
  const double b = (n * sxy - sx * sy) / denom;
  BulkFit f;
  f.a_usec = (sy - b * sx) / n * 1e6;
  f.bytes_per_sec = b > 0 ? 1.0 / b : 0;
  return f;
}

// --- socket world ------------------------------------------------------------
//
// Whole-launch numbers: the measured wall clock spans fork, rendezvous, the
// ping-pong exchange, and teardown, because that is what run_sockets() gives
// every caller. Rounds are sized so the exchange dominates on a healthy host.
//
// Two kinds of result per domain: the 8-byte msgs/sec point (regression-gated
// against the pre-lazy-connection full-mesh baseline — laziness must not tax
// the N=2 hot path), and a message-size sweep fit to t(N) = a + b*N
// (one-way time), separating protocol latency from stream bandwidth the same
// way the bulk sweep below does.

// N=2 msgs/sec floors. Full-mesh baselines (BENCH_host.json before the epoll
// rewrite, full mode): unix 53929 msgs/s, inet 51253 msgs/s; the floor is
// ~0.75x to absorb host noise. Quick mode amortises the launch cost over 10x
// fewer rounds, so its floor is half the full-mode one.
constexpr double kUnixMsgsFloorFull = 40'000;
constexpr double kInetMsgsFloorFull = 38'000;

struct SocketWorldResult {
  std::uint64_t rounds = 0;
  double unix_usec_per_rtt = 0, unix_msgs_per_sec = 0;
  double inet_usec_per_rtt = 0, inet_msgs_per_sec = 0;
  double unix_floor = 0, inet_floor = 0;
  std::vector<BulkSweepPoint> unix_sweep, inet_sweep;  // one-way usec per size
  BulkFit unix_fit, inet_fit;
  bool meets_bar = false;  // both domains at or above their msgs/sec floor
};

SocketWorldResult socket_world_point(bool quick) {
  SocketWorldResult r;
  r.rounds = quick ? 2'000 : 20'000;
  r.unix_floor = quick ? kUnixMsgsFloorFull / 2 : kUnixMsgsFloorFull;
  r.inet_floor = quick ? kInetMsgsFloorFull / 2 : kInetMsgsFloorFull;
  const auto pingpong_wall = [](fabric::SocketFabric::Domain d, std::size_t size,
                                std::uint64_t rounds) {
    const auto prog = [size, rounds](mpi::Comm& c, sim::Actor&) {
      const auto byte = mpi::Datatype::byte_type();
      std::vector<unsigned char> buf(size, 0x5c);
      for (std::uint64_t i = 0; i < rounds; ++i) {
        if (c.rank() == 0) {
          c.send(buf.data(), static_cast<int>(size), byte, 1, 1);
          c.recv(buf.data(), static_cast<int>(size), byte, 1, 2);
        } else {
          c.recv(buf.data(), static_cast<int>(size), byte, 0, 1);
          c.send(buf.data(), static_cast<int>(size), byte, 0, 2);
        }
      }
      // Runs in a forked rank: throwing (not EXPECT) reaches the launcher.
      if (buf[0] != 0x5c) throw std::runtime_error("socket ping-pong corrupted payload");
    };
    fabric::SocketFabric::Options opt;
    opt.domain = d;
    return runtime::run_sockets(2, prog, opt);
  };
  const auto domain = [&](fabric::SocketFabric::Domain d, double& usec_per_rtt,
                          double& msgs_per_sec, std::vector<BulkSweepPoint>& sweep,
                          BulkFit& fit) {
    const Duration wall = pingpong_wall(d, 8, r.rounds);
    usec_per_rtt =
        static_cast<double>(wall.ns) / 1e3 / static_cast<double>(r.rounds);
    msgs_per_sec = static_cast<double>(2 * r.rounds) /
                   (static_cast<double>(wall.ns) / 1e9);
    for (const std::size_t size : {std::size_t{64}, std::size_t{1024},
                                   std::size_t{8192}, std::size_t{65536}}) {
      // Fewer rounds as sizes grow: the big points are bandwidth-bound.
      const std::uint64_t rounds =
          std::max<std::uint64_t>(r.rounds / (1 + size / 1024), 200);
      const Duration w = pingpong_wall(d, size, rounds);
      BulkSweepPoint p;
      p.bytes = size;
      p.usec_per_transfer =
          static_cast<double>(w.ns) / 1e3 / static_cast<double>(2 * rounds);
      p.mb_per_sec = static_cast<double>(size) / (p.usec_per_transfer * 1e-6) / 1e6;
      sweep.push_back(p);
    }
    fit = fit_points(sweep);
  };
  domain(fabric::SocketFabric::Domain::kUnix, r.unix_usec_per_rtt,
         r.unix_msgs_per_sec, r.unix_sweep, r.unix_fit);
  domain(fabric::SocketFabric::Domain::kInet, r.inet_usec_per_rtt,
         r.inet_msgs_per_sec, r.inet_sweep, r.inet_fit);
  r.meets_bar =
      r.unix_msgs_per_sec >= r.unix_floor && r.inet_msgs_per_sec >= r.inet_floor;
  return r;
}

// --- socket world at scale ---------------------------------------------------
//
// The lazy-connection gate: 256 processes, every non-root rank fires one
// eager message at rank 0 and exits. Under the old full-mesh startup this
// burned 2(N-1)+2 fds on EVERY rank before the first byte moved; with lazy
// dialing only rank 0 (degree N-1) pays O(N) — every other rank holds a
// constant handful of fds no matter how wide the world is. Per-rank gauges
// come back over the launcher pipes (run_collect_fab).

struct SocketScaleResult {
  int ranks = 0;
  std::uint64_t root_fds = 0;          // rank 0: O(N) by design (degree N-1)
  std::uint64_t max_nonroot_fds = 0;   // must stay O(1)
  std::uint64_t max_nonroot_pairs = 0;
  bool completed = false;
  bool fds_bar = false;  // completed && max_nonroot_fds <= kNonRootFdBudget
};

// epoll + listener + one dialed control pair (plus cross-dial and bulk
// headroom): far under any O(N) growth at 256 ranks.
constexpr std::uint64_t kNonRootFdBudget = 16;

SocketScaleResult socket_scale_point() {
  SocketScaleResult r;
  r.ranks = 256;
  runtime::SocketWorld world(r.ranks);
  const std::vector<Bytes> raw = world.run_collect_fab(
      [](mpi::Comm& c, sim::Actor&, fabric::SocketFabric& fab) {
        const auto i32 = mpi::Datatype::int32_type();
        if (c.rank() == 0) {
          std::int64_t sum = 0;
          for (int src = 1; src < c.size(); ++src) {
            std::int32_t v = -1;
            c.recv(&v, 1, i32, mpi::kAnySource, 3);
            sum += v;
          }
          const std::int64_t n = c.size() - 1;
          if (sum != n * (n + 1) / 2)
            throw std::runtime_error("all-to-one burst sum mismatch");
        } else {
          std::int32_t v = c.rank();
          c.send(&v, 1, i32, 0, 3);
        }
        Bytes b;
        ByteWriter w(b);
        w.put<std::uint64_t>(fab.stats().fds_open);
        w.put<std::uint64_t>(fab.stats().pairs_connected);
        return b;
      });
  r.completed = true;
  for (int rank = 0; rank < r.ranks; ++rank) {
    ByteReader rd(raw[static_cast<std::size_t>(rank)]);
    const auto fds = rd.get<std::uint64_t>();
    const auto pairs = rd.get<std::uint64_t>();
    if (rank == 0) {
      r.root_fds = fds;
    } else {
      r.max_nonroot_fds = std::max(r.max_nonroot_fds, fds);
      r.max_nonroot_pairs = std::max(r.max_nonroot_pairs, pairs);
    }
  }
  r.fds_bar = r.completed && r.max_nonroot_fds <= kNonRootFdBudget;
  return r;
}

// --- launcher: the exec/env bootstrap path (lcmpirun) ------------------------
//
// Everything above that runs real processes forks them, inheriting the
// parent's address space and a result pipe. The lcmpirun path execs cold
// processes wired purely by LCMPI_* environment — this section proves that
// path costs nothing at steady state (same ping-pong floor as the forked
// socket_world) and scales (N ranks spawned/reaped, non-root fds O(log N)).
// host_perf re-execs ITSELF as the rank binary: when bootstrap::env_launched()
// the process runs launcher_child() instead of the benchmark suite, and
// results travel back through an LCMPI_BENCH_OUT file (there are no pipes on
// this path — that is the point).

struct LauncherResult {
  std::uint64_t rounds = 0;
  double usec_per_rtt = 0, msgs_per_sec = 0, msgs_floor = 0;
  int spawn_ranks = 0;
  double spawn_secs = 0, ranks_per_sec = 0;
  std::uint64_t max_nonroot_fds = 0, fd_budget = 0;
  bool completed = false;
  bool meets_bar = false;  // completed && floor met && fds within budget
};

std::string self_exe() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  return buf;
}

/// Non-root fd budget for an N-rank ring + barrier world: host_perf's O(1)
/// allowance plus two fds per dissemination-barrier round.
std::uint64_t launcher_fd_budget(int nranks) {
  std::uint64_t budget = kNonRootFdBudget;
  for (int span = 1; span < nranks; span *= 2) budget += 2;
  return budget;
}

/// The rank side of the launcher section (this binary, re-exec'd).
int launcher_child() {
  const char* mode_env = std::getenv("LCMPI_BENCH_MODE");
  const std::string mode = mode_env != nullptr ? mode_env : "pingpong";
  const char* out_env = std::getenv("LCMPI_BENCH_OUT");
  const std::string out = out_env != nullptr ? out_env : "";
  std::uint64_t rounds = 2'000;
  if (const char* r = std::getenv("LCMPI_BENCH_ROUNDS"))
    rounds = static_cast<std::uint64_t>(
        env::parse_long("LCMPI_BENCH_ROUNDS", r, 1, 100'000'000));
  return runtime::bootstrap::rank_main_fab(
      [&](mpi::Comm& c, sim::Actor&, fabric::SocketFabric& fab) {
        const auto byte = mpi::Datatype::byte_type();
        if (mode == "pingpong") {
          unsigned char b = 0x5c;
          const int peer = 1 - c.rank();
          const auto half = [&](int warm_rounds, bool lead) {
            for (int i = 0; i < warm_rounds; ++i) {
              if (lead) {
                c.send(&b, 1, byte, peer, 1);
                c.recv(&b, 1, byte, peer, 2);
              } else {
                c.recv(&b, 1, byte, peer, 1);
                c.send(&b, 1, byte, peer, 2);
              }
            }
          };
          half(64, c.rank() == 0);  // warmup: dials + credit priming
          const auto t0 = std::chrono::steady_clock::now();
          half(static_cast<int>(rounds), c.rank() == 0);
          const double secs = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count();
          if (c.rank() == 0 && !out.empty()) {
            std::ofstream f(out);
            f << (secs * 1e6 / static_cast<double>(rounds)) << " "
              << (static_cast<double>(rounds) / secs) << "\n";
          }
        } else {  // "ring": neighbor exchange, then ship the fd gauge home
          const auto i32 = mpi::Datatype::int32_type();
          const int n = c.size();
          const int me = c.rank();
          std::int32_t token = me, got = -1;
          c.sendrecv(&token, 1, i32, (me + 1) % n, 1, &got, 1, i32,
                     (me + n - 1) % n, 1);
          if (got != (me + n - 1) % n)
            throw std::runtime_error("launcher ring token mismatch");
          c.barrier();
          std::uint64_t fds = fab.stats().fds_open;
          if (me != 0) {
            c.send(&fds, sizeof(fds), byte, 0, 2);
          } else {
            std::uint64_t max_fds = 0;
            for (int src = 1; src < n; ++src) {
              c.recv(&fds, sizeof(fds), byte, mpi::kAnySource, 2);
              max_fds = std::max(max_fds, fds);
            }
            if (!out.empty()) {
              std::ofstream f(out);
              f << max_fds << "\n";
            }
          }
        }
      });
}

LauncherResult launcher_point(bool quick) {
  namespace bs = runtime::bootstrap;
  LauncherResult r;
  r.rounds = quick ? 2'000 : 20'000;
  r.msgs_floor = quick ? kUnixMsgsFloorFull / 2 : kUnixMsgsFloorFull;
  r.spawn_ranks = quick ? 64 : 128;
  r.fd_budget = launcher_fd_budget(r.spawn_ranks);
  const std::string self = self_exe();
  std::string dir = "/tmp/lcmpi-hperf.XXXXXX";
  if (self.empty() || ::mkdtemp(dir.data()) == nullptr) return r;

  bs::LaunchSpec pp;
  pp.nranks = 2;
  pp.cmd = {self};
  pp.extra_env = {"LCMPI_BENCH_MODE=pingpong",
                  "LCMPI_BENCH_OUT=" + dir + "/pingpong",
                  "LCMPI_BENCH_ROUNDS=" + std::to_string(r.rounds)};
  const bs::LaunchResult ppres = bs::launch(pp);
  bool ok = ppres.ok;
  if (ok) {
    std::ifstream f(dir + "/pingpong");
    ok = static_cast<bool>(f >> r.usec_per_rtt >> r.msgs_per_sec);
  }

  if (ok) {
    bs::LaunchSpec ring;
    ring.nranks = r.spawn_ranks;
    ring.cmd = {self};
    ring.extra_env = {"LCMPI_BENCH_MODE=ring",
                      "LCMPI_BENCH_OUT=" + dir + "/ring"};
    const auto t0 = std::chrono::steady_clock::now();
    const bs::LaunchResult rres = bs::launch(ring);
    r.spawn_secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    ok = rres.ok;
    if (ok) {
      r.ranks_per_sec = static_cast<double>(r.spawn_ranks) / r.spawn_secs;
      std::ifstream f(dir + "/ring");
      ok = static_cast<bool>(f >> r.max_nonroot_fds);
    }
  }
  (void)::unlink((dir + "/pingpong").c_str());
  (void)::unlink((dir + "/ring").c_str());
  (void)::rmdir(dir.c_str());
  r.completed = ok;
  r.meets_bar = r.completed && r.msgs_per_sec >= r.msgs_floor &&
                r.max_nonroot_fds <= r.fd_budget;
  return r;
}

// --- bulk plane: per-transport rendezvous bandwidth + control isolation ------
//
// The zero-copy bulk plane exists to make two numbers better: large-transfer
// bandwidth (fewer copies per byte) and small-message latency while a large
// transfer is in flight (bulk bytes no longer head-of-line-block the framed
// control channel). This section measures both on the real backends.
//
// Bandwidth: rank 0 pushes `reps` rendezvous messages of N bytes to rank 1
// and waits for a 1-byte ack; N sweeps 64 KiB -> 4 MiB. Per-transfer time is
// fit with least squares to t(N) = a + b*N, so the per-transfer fixed cost
// (a) and the marginal cost per byte (b, reported as 1/b bytes/sec) separate
// cleanly even though small-N points include protocol overhead. Timing runs
// inside rank 0 (after a warmup transfer and a barrier), so fork/rendezvous
// setup never pollutes the fit.
//
// Isolation: with a huge rendezvous in flight 1 -> 0, rank 0 runs eager
// ping-pongs against rank 1 and compares the loaded RTT to the idle RTT
// measured moments earlier in the same world. On the inline plane the bulk
// payload serialises ahead of control frames; on the split planes the bulk
// bytes move in 256 KiB pump quanta on their own socket/ring, so control
// frames overtake them.

struct BulkTransport {
  std::string name;
  std::vector<BulkSweepPoint> points;
  BulkFit fit;
};

struct BulkPlaneResult {
  int reps = 0;
  std::vector<std::size_t> sizes;
  std::vector<BulkTransport> transports;
  double memfd_vs_inline = 0;   // bandwidth ratio at the largest size
  bool bandwidth_bar = false;   // memfd >= 2x inline at >= 1 MiB
  std::size_t isolation_bulk_bytes = 0;
  std::uint64_t isolation_rounds = 0;
  double idle_usec_per_rtt = 0;
  double loaded_usec_per_rtt = 0;
  double isolation_ratio = 0;
  // Loaded RTT <= 2x idle, OR within an absolute envelope. The pure
  // ratio punishes idle-latency improvements: the epoll rewrite halved
  // idle RTT (~22 -> ~10 us) while also improving loaded RTT (~44 ->
  // ~30 us), which *raises* the ratio. Genuine head-of-line blocking —
  // e.g. one unbudgeted 4 MiB ring drain — costs hundreds of us, far
  // outside the envelope.
  bool isolation_bar = false;
};

/// Absolute loaded-RTT envelope for the isolation bar (see above).
constexpr double kIsolationLoadedEnvelopeUsec = 36.0;

/// One-way rendezvous push, timed inside rank 0: barrier, `reps` pipelined
/// sends of `size` bytes (the receiver pre-posts every irecv, netpipe-style,
/// so the RTS/CTS handshakes overlap the data and the plane's streaming
/// rate is what gets measured), then a 1-byte ack so the clock stops at
/// full delivery. Returns the measured seconds (meaningful on rank 0 only).
double bulk_push_seconds(mpi::Comm& c, std::size_t size, int reps) {
  const auto byte = mpi::Datatype::byte_type();
  std::vector<unsigned char> buf(size, 0xb5);
  unsigned char ack = 0;
  // Warmup: first rendezvous on a fresh pair walks the negotiation path.
  if (c.rank() == 0) {
    c.send(buf.data(), static_cast<int>(size), byte, 1, 7);
  } else {
    c.recv(buf.data(), static_cast<int>(size), byte, 0, 7);
  }
  c.barrier();
  const auto t0 = Clock::now();
  std::vector<mpi::Request> window;
  window.reserve(static_cast<std::size_t>(reps));
  if (c.rank() == 0) {
    for (int i = 0; i < reps; ++i)
      window.push_back(c.isend(buf.data(), static_cast<int>(size), byte, 1, 7));
    c.wait_all(window);
    c.recv(&ack, 1, byte, 1, 8);
  } else {
    for (int i = 0; i < reps; ++i)
      window.push_back(c.irecv(buf.data(), static_cast<int>(size), byte, 0, 7));
    c.wait_all(window);
    c.send(&ack, 1, byte, 0, 8);
  }
  return seconds_since(t0);
}

/// Eager ping-pong RTT idle, then again with a huge rendezvous in flight
/// 1 -> 0. Writes {idle_s, loaded_s} (rank 0 only).
void bulk_isolation_program(mpi::Comm& c, std::size_t bulk_bytes,
                            std::uint64_t rounds, double out[2]) {
  const auto byte = mpi::Datatype::byte_type();
  unsigned char small[64] = {1};
  const auto pingpong = [&](int tag_out, int tag_in) {
    for (std::uint64_t i = 0; i < rounds; ++i) {
      if (c.rank() == 0) {
        c.send(small, sizeof small, byte, 1, tag_out);
        c.recv(small, sizeof small, byte, 1, tag_in);
      } else {
        c.recv(small, sizeof small, byte, 0, tag_out);
        c.send(small, sizeof small, byte, 0, tag_in);
      }
    }
  };
  c.barrier();
  auto t0 = Clock::now();
  pingpong(1, 2);
  out[0] = seconds_since(t0);
  c.barrier();
  std::vector<unsigned char> big(bulk_bytes, 0x7e);
  if (c.rank() == 0) {
    mpi::Request r = c.irecv(big.data(), static_cast<int>(bulk_bytes), byte, 1, 99);
    t0 = Clock::now();
    pingpong(3, 4);
    out[1] = seconds_since(t0);
    c.wait(r);
  } else {
    mpi::Request r = c.isend(big.data(), static_cast<int>(bulk_bytes), byte, 0, 99);
    pingpong(3, 4);
    c.wait(r);
  }
  c.barrier();
}

Bytes pack_doubles(const double* v, std::size_t n) {
  Bytes out(n * sizeof(double));
  std::memcpy(out.data(), v, out.size());
  return out;
}

double unpack_double(const Bytes& b, std::size_t i) {
  double v = 0;
  std::memcpy(&v, b.data() + i * sizeof(double), sizeof(double));
  return v;
}

BulkPlaneResult bulk_plane_point(bool quick) {
  BulkPlaneResult r;
  // Enough reps to amortise scheduler quanta — on a single-CPU host the
  // two rank processes time-slice, so short runs measure the scheduler.
  r.reps = quick ? 32 : 64;
  r.sizes = {64 << 10, 256 << 10, 1 << 20, 4 << 20};

  const auto add_transport = [&](std::string name,
                                 const std::function<double(std::size_t)>& run) {
    BulkTransport t;
    t.name = std::move(name);
    for (const std::size_t size : r.sizes) {
      BulkSweepPoint p;
      p.bytes = size;
      // Best of two launches damps host noise on the small sizes.
      double s = run(size);
      s = std::min(s, run(size));
      p.usec_per_transfer = s * 1e6 / r.reps;
      p.mb_per_sec = static_cast<double>(size) * r.reps / s / 1e6;
      t.points.push_back(p);
    }
    t.fit = fit_points(t.points);
    r.transports.push_back(std::move(t));
  };

  add_transport("threads-shm", [&](std::size_t size) {
    double s = 0;
    runtime::ThreadsWorld world(2);
    world.run([&](mpi::Comm& c, sim::Actor&) {
      const double mine = bulk_push_seconds(c, size, r.reps);
      if (c.rank() == 0) s = mine;
    });
    return s;
  });
  const auto socket_bw = [&](fabric::SocketFabric::Options opt,
                             std::size_t size) {
    runtime::SocketWorld world(2, opt);
    std::vector<Bytes> out =
        world.run_collect([&](mpi::Comm& c, sim::Actor&) -> Bytes {
          const double s = bulk_push_seconds(c, size, r.reps);
          return pack_doubles(&s, 1);
        });
    return unpack_double(out[0], 0);
  };
  {
    fabric::SocketFabric::Options opt;  // AF_UNIX + memfd ring (default)
    add_transport("unix-memfd",
                  [&, opt](std::size_t size) { return socket_bw(opt, size); });
  }
  {
    fabric::SocketFabric::Options opt;
    opt.bulk = fabric::SocketFabric::Bulk::kStream;
    add_transport("unix-stream",
                  [&, opt](std::size_t size) { return socket_bw(opt, size); });
  }
  {
    fabric::SocketFabric::Options opt;
    opt.bulk = fabric::SocketFabric::Bulk::kInline;  // pre-bulk baseline
    add_transport("unix-inline",
                  [&, opt](std::size_t size) { return socket_bw(opt, size); });
  }
  {
    fabric::SocketFabric::Options opt;
    opt.domain = fabric::SocketFabric::Domain::kInet;  // stream + MSG_ZEROCOPY
    add_transport("inet-stream",
                  [&, opt](std::size_t size) { return socket_bw(opt, size); });
  }

  const auto find = [&](const char* name) -> const BulkTransport& {
    for (const BulkTransport& t : r.transports)
      if (t.name == name) return t;
    std::fprintf(stderr, "bulk_plane: missing transport %s\n", name);
    std::exit(1);
  };
  // Gate on the measured >= 1 MiB points (both must clear), not the fit:
  // the fit's intercept can soak up noise the gate should see.
  const BulkTransport& memfd = find("unix-memfd");
  const BulkTransport& inline_t = find("unix-inline");
  double worst = 1e9;
  for (std::size_t i = 0; i < r.sizes.size(); ++i) {
    if (r.sizes[i] < (1u << 20)) continue;
    worst = std::min(worst, memfd.points[i].mb_per_sec / inline_t.points[i].mb_per_sec);
  }
  r.memfd_vs_inline = worst;
  r.bandwidth_bar = worst >= 2.0;

  // Control/bulk isolation on the default SocketWorld transport.
  r.isolation_bulk_bytes = quick ? (8u << 20) : (64u << 20);
  r.isolation_rounds = quick ? 300 : 1500;
  {
    runtime::SocketWorld world(2);
    std::vector<Bytes> out =
        world.run_collect([&](mpi::Comm& c, sim::Actor&) -> Bytes {
          double t[2] = {0, 0};
          bulk_isolation_program(c, r.isolation_bulk_bytes, r.isolation_rounds, t);
          return pack_doubles(t, 2);
        });
    r.idle_usec_per_rtt =
        unpack_double(out[0], 0) * 1e6 / static_cast<double>(r.isolation_rounds);
    r.loaded_usec_per_rtt =
        unpack_double(out[0], 1) * 1e6 / static_cast<double>(r.isolation_rounds);
  }
  r.isolation_ratio = r.loaded_usec_per_rtt / r.idle_usec_per_rtt;
  r.isolation_bar = r.isolation_ratio <= 2.0 ||
                    r.loaded_usec_per_rtt <= kIsolationLoadedEnvelopeUsec;
  return r;
}

// --- collectives engine ------------------------------------------------------
//
// Virtual-time sweep of the software collective algorithms on the CS/2
// model: (message size x ranks x algorithm) for bcast and allreduce, with
// hardware offload DISABLED so the software algorithms are actually
// measured, plus one hw-enabled bcast column. Two gates:
//   * the auto-selection table must land within 10% of the best fixed
//     algorithm at every swept point (the crossover table earns its keep);
//   * the modelled Elan hardware broadcast must beat the software binomial
//     tree at >= 8 ranks (the paper's core hardware-broadcast claim).
// Also re-runs the Fig. 7 solver study once per forced algorithm (hw
// offload off, so the force reaches the solver's broadcasts) plus the
// hw-offload row benches compare against.

struct CollSweepPoint {
  int ranks = 0;
  std::int64_t bytes = 0;
  double fixed_usec[3] = {0, 0, 0};  // indexed by coll::Algo
  double auto_usec = 0;
  double hw_usec = 0;          // bcast only; 0 for allreduce
  mpi::coll::Algo auto_choice = mpi::coll::Algo::kBinomial;
  bool auto_ok = false;        // auto <= 1.1x best fixed
  bool hw_ok = true;           // ranks < 8 || hw < binomial (bcast only)
};

struct CollFig7Row {
  int procs = 0;
  double fixed_s[3] = {0, 0, 0};
  double hw_s = 0;
};

struct CollectivesResult {
  std::vector<CollSweepPoint> bcast;
  std::vector<CollSweepPoint> allreduce;
  std::vector<CollFig7Row> fig7;
  bool auto_bar = true;  // every swept point's auto_ok
  bool hw_bar = true;    // every bcast point's hw_ok
};

/// Virtual us per collective on the Meiko model. `force` pins a software
/// algorithm (nullopt = the selection table); `hw` enables the Elan
/// offload (which outranks any force for world-spanning comms).
double coll_virtual_usec(int ranks, int doubles, bool is_allreduce,
                         std::optional<mpi::coll::Algo> force, bool hw) {
  mpi::EngineConfig cfg;
  cfg.coll.force = force;
  cfg.use_hw_bcast = hw;
  cfg.use_hw_barrier = hw;
  runtime::MeikoWorld w(ranks, {}, cfg);
  constexpr int kReps = 4;
  const Duration d = w.run([&](mpi::Comm& c, sim::Actor&) {
    std::vector<double> buf(static_cast<std::size_t>(doubles), 1.0);
    std::vector<double> out(static_cast<std::size_t>(doubles));
    c.barrier();  // absorb startup skew outside the measured reps
    for (int i = 0; i < kReps; ++i) {
      if (is_allreduce) {
        c.allreduce(buf.data(), out.data(), doubles, mpi::Datatype::double_type(),
                    mpi::Op::kSum);
        std::swap(buf, out);
      } else {
        c.bcast(buf.data(), doubles, mpi::Datatype::double_type(), 0);
      }
    }
  });
  return d.usec() / kReps;
}

CollectivesResult collectives_point(bool quick) {
  CollectivesResult r;
  const std::vector<int> ranks = quick ? std::vector<int>{2, 8, 16}
                                       : std::vector<int>{2, 4, 8, 16};
  // 256 B / 16 KiB / 256 KiB / 1 MiB of doubles: one size per selection
  // zone plus both crossover boundaries.
  const std::vector<int> counts = quick ? std::vector<int>{32, 2048, 32768}
                                        : std::vector<int>{32, 2048, 32768, 131072};
  for (const bool is_allreduce : {false, true}) {
    for (const int n : ranks) {
      for (const int doubles : counts) {
        CollSweepPoint p;
        p.ranks = n;
        p.bytes = static_cast<std::int64_t>(doubles) * 8;
        double best = 0;
        for (const mpi::coll::Algo a : mpi::coll::kAllAlgos) {
          const double us = coll_virtual_usec(n, doubles, is_allreduce, a, false);
          p.fixed_usec[static_cast<int>(a)] = us;
          if (best == 0 || us < best) best = us;
        }
        p.auto_usec = coll_virtual_usec(n, doubles, is_allreduce, std::nullopt, false);
        p.auto_choice = mpi::coll::select(
            is_allreduce ? mpi::coll::Kind::kAllreduce : mpi::coll::Kind::kBcast,
            p.bytes, n, mpi::coll::Tuning{});
        p.auto_ok = p.auto_usec <= 1.1 * best;
        if (!p.auto_ok) r.auto_bar = false;
        if (!is_allreduce) {
          p.hw_usec = coll_virtual_usec(n, doubles, false, std::nullopt, true);
          p.hw_ok = n < 8 ||
                    p.hw_usec < p.fixed_usec[static_cast<int>(mpi::coll::Algo::kBinomial)];
          if (!p.hw_ok) r.hw_bar = false;
        }
        (is_allreduce ? r.allreduce : r.bcast).push_back(p);
      }
    }
  }
  // Fig. 7 solver study per algorithm (hw off so the force matters), plus
  // the hw-offload row everything in bench/ compares against.
  const apps::LinearSystem sys = apps::LinearSystem::random(96, 5);
  const std::vector<int> procs = quick ? std::vector<int>{4, 16}
                                       : std::vector<int>{2, 4, 8, 16};
  for (const int p : procs) {
    CollFig7Row row;
    row.procs = p;
    auto solver_s = [&](std::optional<mpi::coll::Algo> force, bool hw) {
      mpi::EngineConfig cfg;
      cfg.coll.force = force;
      cfg.use_hw_bcast = hw;
      cfg.use_hw_barrier = hw;
      runtime::MeikoWorld w(p, {}, cfg);
      return w
          .run([&](mpi::Comm& c, sim::Actor& self) {
            (void)apps::solve_parallel(c, self, sys, apps::sparc_profile());
          })
          .sec();
    };
    for (const mpi::coll::Algo a : mpi::coll::kAllAlgos)
      row.fixed_s[static_cast<int>(a)] = solver_s(a, false);
    row.hw_s = solver_s(std::nullopt, true);
    r.fig7.push_back(row);
  }
  return r;
}

// --- end to end --------------------------------------------------------------

struct EndToEnd {
  int ranks = 16;
  int solver_n = 96;
  double virtual_ms = 0;
  double host_s = 0;
  double sim_ms_per_host_s = 0;
};

EndToEnd solver_end_to_end() {
  EndToEnd e;
  const apps::LinearSystem sys = apps::LinearSystem::random(e.solver_n, 42);
  runtime::MeikoWorld w(e.ranks);
  const auto t0 = Clock::now();
  const Duration d = w.run([&](mpi::Comm& c, sim::Actor& self) {
    (void)apps::solve_parallel(c, self, sys, apps::sparc_profile());
  });
  e.host_s = seconds_since(t0);
  e.virtual_ms = static_cast<double>(d.ns) / 1e6;
  e.sim_ms_per_host_s = e.virtual_ms / e.host_s;
  return e;
}

// --- output ------------------------------------------------------------------

struct EventKernelNumbers {
  double fn_eps_calendar = 0, fn_eps_heap = 0;
  double timer_cps_calendar = 0, timer_cps_heap = 0;
};

void write_json(const std::string& path, bool quick,
                const std::vector<MatchingPoint>& pts,
                const EventKernelNumbers& ek, const SchedResult& sched,
                const ActorResult& actors,
                const std::vector<ClusterPoint>& cluster,
                const ThreadsWorldResult& tw, const RmaResult& rma,
                const SocketWorldResult& sw,
                const SocketScaleResult& scale, const LauncherResult& lr,
                const BulkPlaneResult& bp, const CollectivesResult& coll,
                const EndToEnd& e2e) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "host_perf: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"schema\": \"lcmpi-host-perf-v10\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"matching\": [\n");
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const MatchingPoint& p = pts[i];
    std::fprintf(f,
                 "    {\"depth\": %d, "
                 "\"posted_linear_ns\": %.1f, \"posted_bucketed_ns\": %.1f, "
                 "\"posted_speedup\": %.2f, "
                 "\"unexpected_linear_ns\": %.1f, \"unexpected_bucketed_ns\": %.1f, "
                 "\"unexpected_speedup\": %.2f}%s\n",
                 p.depth, p.posted_linear_ns, p.posted_bucketed_ns,
                 p.posted_speedup, p.unexpected_linear_ns, p.unexpected_bucketed_ns,
                 p.unexpected_speedup, i + 1 < pts.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"event_kernel\": {"
               "\"fn_events_per_sec_calendar\": %.0f, "
               "\"fn_events_per_sec_heap\": %.0f, "
               "\"timer_churn_per_sec_calendar\": %.0f, "
               "\"timer_churn_per_sec_heap\": %.0f},\n",
               ek.fn_eps_calendar, ek.fn_eps_heap, ek.timer_cps_calendar,
               ek.timer_cps_heap);
  std::fprintf(f,
               "  \"scheduler\": {\"workload\": \"tcp_timer_wheel\", "
               "\"hosts\": %d, \"table_timers\": %d,\n"
               "    \"calendar\": {\"events\": %llu, \"host_s\": %.3f, "
               "\"events_per_sec\": %.0f},\n"
               "    \"heap\": {\"events\": %llu, \"host_s\": %.3f, "
               "\"events_per_sec\": %.0f},\n"
               "    \"speedup\": %.2f, \"virtual_ns\": %lld, "
               "\"tcp_timer_arms\": %lld, \"deterministic\": %s},\n",
               sched.hosts, sched.table_timers,
               static_cast<unsigned long long>(sched.calendar.events),
               sched.calendar.host_s, sched.calendar.events_per_sec,
               static_cast<unsigned long long>(sched.heap.events),
               sched.heap.host_s, sched.heap.events_per_sec, sched.speedup,
               static_cast<long long>(sched.calendar.virtual_ns),
               static_cast<long long>(sched.calendar.tcp_timer_arms),
               sched.deterministic ? "true" : "false");
  const auto actor_side = [f](const char* name, const ActorPoint& p,
                              const char* trailing) {
    std::fprintf(f,
                 "    \"%s\": {\"switches\": %llu, \"host_s\": %.3f, "
                 "\"switches_per_sec\": %.0f, \"stacks_allocated\": %llu, "
                 "\"stack_reuses\": %llu, \"stack_high_water\": %zu}%s\n",
                 name, static_cast<unsigned long long>(p.switches), p.host_s,
                 p.switches_per_sec,
                 static_cast<unsigned long long>(p.stats.stacks_allocated),
                 static_cast<unsigned long long>(p.stats.stack_reuses),
                 p.stats.stack_high_water, trailing);
  };
  std::fprintf(f,
               "  \"actors\": {\"workload\": \"trigger_pingpong\", "
               "\"rounds\": %d, \"spawns\": %d,\n",
               actors.rounds, actors.spawns);
  actor_side("fibers", actors.fibers, ",");
  actor_side("threads", actors.threads, ",");
  actor_side("lifecycle_fibers", actors.lifecycle_fibers, ",");
  actor_side("lifecycle_threads", actors.lifecycle_threads, ",");
  std::fprintf(f,
               "    \"speedup\": %.2f, \"virtual_ns\": %lld, "
               "\"deterministic\": %s, \"comparable\": %s},\n",
               actors.speedup, static_cast<long long>(actors.fibers.virtual_ns),
               actors.deterministic ? "true" : "false",
               actors.comparable ? "true" : "false");
  std::fprintf(f, "  \"cluster_points\": [\n");
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const ClusterPoint& p = cluster[i];
    std::fprintf(f,
                 "    {\"media\": \"%s\", \"transport\": \"%s\", "
                 "\"ranks\": %d, \"particles\": %d, \"virtual_ms\": %.3f, "
                 "\"host_s\": %.3f, \"events\": %llu, "
                 "\"events_per_sec\": %.0f, \"sim_ms_per_host_s\": %.1f}%s\n",
                 p.media, p.transport, p.ranks, p.particles, p.virtual_ms,
                 p.host_s, static_cast<unsigned long long>(p.events),
                 p.events_per_sec, p.sim_ms_per_host_s,
                 i + 1 < cluster.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"threads_world\": {\"channel_items\": %llu, "
               "\"pingpong_rounds\": %llu, \"mpi_rounds\": %llu,\n"
               "    \"ring_msgs_per_sec\": %.0f, \"mutex_msgs_per_sec\": %.0f, "
               "\"throughput_speedup\": %.2f,\n"
               "    \"ring_roundtrips_per_sec\": %.0f, "
               "\"mutex_roundtrips_per_sec\": %.0f, \"pingpong_speedup\": %.2f,\n"
               "    \"mpi_usec_per_rtt\": %.2f, \"mpi_msgs_per_sec\": %.0f, "
               "\"fabric_messages\": %llu, \"fabric_full_parks\": %llu, "
               "\"fabric_idle_parks\": %llu},\n",
               static_cast<unsigned long long>(tw.channel_items),
               static_cast<unsigned long long>(tw.pingpong_rounds),
               static_cast<unsigned long long>(tw.mpi_rounds),
               tw.ring_msgs_per_sec, tw.mutex_msgs_per_sec, tw.throughput_speedup,
               tw.ring_rt_per_sec, tw.mutex_rt_per_sec, tw.pingpong_speedup,
               tw.mpi_usec_per_rtt, tw.mpi_msgs_per_sec,
               static_cast<unsigned long long>(tw.mpi_stats.messages),
               static_cast<unsigned long long>(tw.mpi_stats.full_parks),
               static_cast<unsigned long long>(tw.mpi_stats.idle_parks));
  std::fprintf(f,
               "  \"rma\": {\"puts_per_epoch\": %llu, \"epochs\": %llu, "
               "\"put_usec_amortized\": %.3f, \"fence_usec\": %.2f, "
               "\"eager_rtt_usec\": %.2f, \"direct\": %s, \"meets_bar\": %s},\n",
               static_cast<unsigned long long>(rma.puts_per_epoch),
               static_cast<unsigned long long>(rma.epochs),
               rma.put_usec_amortized, rma.fence_usec, rma.eager_rtt_usec,
               rma.direct ? "true" : "false", rma.meets_bar ? "true" : "false");
  const auto sweep_json = [f](const char* name, const std::vector<BulkSweepPoint>& v,
                              const BulkFit& fit) {
    std::fprintf(f, "    \"%s_sweep\": [", name);
    for (std::size_t j = 0; j < v.size(); ++j)
      std::fprintf(f, "{\"bytes\": %zu, \"oneway_usec\": %.2f, \"mb_per_sec\": %.1f}%s",
                   v[j].bytes, v[j].usec_per_transfer, v[j].mb_per_sec,
                   j + 1 < v.size() ? ", " : "");
    std::fprintf(f, "],\n    \"%s_fit_a_usec\": %.2f, \"%s_fit_mb_per_sec\": %.1f,\n",
                 name, fit.a_usec, name, fit.bytes_per_sec / 1e6);
  };
  std::fprintf(f,
               "  \"socket_world\": {\"rounds\": %llu,\n"
               "    \"unix_usec_per_rtt\": %.2f, \"unix_msgs_per_sec\": %.0f, "
               "\"unix_msgs_floor\": %.0f,\n"
               "    \"inet_usec_per_rtt\": %.2f, \"inet_msgs_per_sec\": %.0f, "
               "\"inet_msgs_floor\": %.0f,\n",
               static_cast<unsigned long long>(sw.rounds), sw.unix_usec_per_rtt,
               sw.unix_msgs_per_sec, sw.unix_floor, sw.inet_usec_per_rtt,
               sw.inet_msgs_per_sec, sw.inet_floor);
  sweep_json("unix", sw.unix_sweep, sw.unix_fit);
  sweep_json("inet", sw.inet_sweep, sw.inet_fit);
  std::fprintf(f, "    \"msgs_bar\": %s},\n", sw.meets_bar ? "true" : "false");
  std::fprintf(f,
               "  \"socket_scale\": {\"ranks\": %d, \"root_fds\": %llu, "
               "\"max_nonroot_fds\": %llu, \"max_nonroot_pairs\": %llu, "
               "\"nonroot_fd_budget\": %llu, \"completed\": %s, \"fds_bar\": %s},\n",
               scale.ranks, static_cast<unsigned long long>(scale.root_fds),
               static_cast<unsigned long long>(scale.max_nonroot_fds),
               static_cast<unsigned long long>(scale.max_nonroot_pairs),
               static_cast<unsigned long long>(kNonRootFdBudget),
               scale.completed ? "true" : "false",
               scale.fds_bar ? "true" : "false");
  std::fprintf(f,
               "  \"launcher\": {\"rounds\": %llu, \"usec_per_rtt\": %.2f, "
               "\"msgs_per_sec\": %.0f, \"msgs_floor\": %.0f,\n"
               "    \"spawn_ranks\": %d, \"spawn_secs\": %.3f, "
               "\"ranks_per_sec\": %.0f, \"max_nonroot_fds\": %llu, "
               "\"nonroot_fd_budget\": %llu,\n"
               "    \"completed\": %s, \"launcher_bar\": %s},\n",
               static_cast<unsigned long long>(lr.rounds), lr.usec_per_rtt,
               lr.msgs_per_sec, lr.msgs_floor, lr.spawn_ranks, lr.spawn_secs,
               lr.ranks_per_sec,
               static_cast<unsigned long long>(lr.max_nonroot_fds),
               static_cast<unsigned long long>(lr.fd_budget),
               lr.completed ? "true" : "false",
               lr.meets_bar ? "true" : "false");
  std::fprintf(f, "  \"bulk_plane\": {\"reps\": %d,\n    \"transports\": [\n",
               bp.reps);
  for (std::size_t i = 0; i < bp.transports.size(); ++i) {
    const BulkTransport& t = bp.transports[i];
    std::fprintf(f, "      {\"name\": \"%s\", \"points\": [", t.name.c_str());
    for (std::size_t j = 0; j < t.points.size(); ++j)
      std::fprintf(f, "{\"bytes\": %zu, \"usec_per_transfer\": %.1f, "
                      "\"mb_per_sec\": %.1f}%s",
                   t.points[j].bytes, t.points[j].usec_per_transfer,
                   t.points[j].mb_per_sec, j + 1 < t.points.size() ? ", " : "");
    std::fprintf(f, "],\n       \"fit_a_usec\": %.1f, \"fit_mb_per_sec\": %.1f}%s\n",
                 t.fit.a_usec, t.fit.bytes_per_sec / 1e6,
                 i + 1 < bp.transports.size() ? "," : "");
  }
  std::fprintf(f,
               "    ],\n    \"memfd_vs_inline\": %.2f, "
               "\"bandwidth_bar\": %s,\n"
               "    \"isolation\": {\"bulk_bytes\": %zu, \"rounds\": %llu, "
               "\"idle_usec_per_rtt\": %.2f, \"loaded_usec_per_rtt\": %.2f, "
               "\"ratio\": %.2f, \"loaded_envelope_usec\": %.1f, "
               "\"isolation_bar\": %s}},\n",
               bp.memfd_vs_inline, bp.bandwidth_bar ? "true" : "false",
               bp.isolation_bulk_bytes,
               static_cast<unsigned long long>(bp.isolation_rounds),
               bp.idle_usec_per_rtt, bp.loaded_usec_per_rtt, bp.isolation_ratio,
               kIsolationLoadedEnvelopeUsec,
               bp.isolation_bar ? "true" : "false");
  const auto coll_sweep = [f](const char* name, const std::vector<CollSweepPoint>& v,
                              bool has_hw) {
    std::fprintf(f, "    \"%s\": [\n", name);
    for (std::size_t i = 0; i < v.size(); ++i) {
      const CollSweepPoint& p = v[i];
      std::fprintf(f,
                   "      {\"ranks\": %d, \"bytes\": %lld, "
                   "\"binomial_usec\": %.2f, \"scatter_allgather_usec\": %.2f, "
                   "\"ring_usec\": %.2f, \"auto_usec\": %.2f, "
                   "\"auto_choice\": \"%s\", \"auto_ok\": %s",
                   p.ranks, static_cast<long long>(p.bytes), p.fixed_usec[0],
                   p.fixed_usec[1], p.fixed_usec[2], p.auto_usec,
                   mpi::coll::name(p.auto_choice), p.auto_ok ? "true" : "false");
      if (has_hw)
        std::fprintf(f, ", \"hw_usec\": %.2f, \"hw_ok\": %s", p.hw_usec,
                     p.hw_ok ? "true" : "false");
      std::fprintf(f, "}%s\n", i + 1 < v.size() ? "," : "");
    }
    std::fprintf(f, "    ],\n");
  };
  std::fprintf(f, "  \"collectives\": {\n");
  coll_sweep("bcast", coll.bcast, true);
  coll_sweep("allreduce", coll.allreduce, false);
  std::fprintf(f, "    \"fig7_per_algorithm\": [\n");
  for (std::size_t i = 0; i < coll.fig7.size(); ++i) {
    const CollFig7Row& row = coll.fig7[i];
    std::fprintf(f,
                 "      {\"procs\": %d, \"binomial_s\": %.4f, "
                 "\"scatter_allgather_s\": %.4f, \"ring_s\": %.4f, "
                 "\"hw_offload_s\": %.4f}%s\n",
                 row.procs, row.fixed_s[0], row.fixed_s[1], row.fixed_s[2],
                 row.hw_s, i + 1 < coll.fig7.size() ? "," : "");
  }
  std::fprintf(f, "    ],\n    \"auto_bar\": %s, \"hw_bar\": %s},\n",
               coll.auto_bar ? "true" : "false", coll.hw_bar ? "true" : "false");
  std::fprintf(f,
               "  \"end_to_end\": {\"ranks\": %d, \"solver_n\": %d, "
               "\"virtual_ms\": %.3f, \"host_s\": %.3f, "
               "\"sim_ms_per_host_s\": %.1f}\n",
               e2e.ranks, e2e.solver_n, e2e.virtual_ms, e2e.host_s,
               e2e.sim_ms_per_host_s);
  std::fprintf(f, "}\n");
  std::fclose(f);
}

int run(int argc, char** argv) {
  // Re-exec'd as one rank of the launcher section: run the rank program,
  // not the benchmark suite.
  if (runtime::bootstrap::env_launched()) return launcher_child();
  bool quick = false;
  std::string out = "BENCH_host.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: host_perf [--quick] [--out PATH]\n");
      return 2;
    }
  }

  const int match_iters = quick ? 20'000 : 200'000;
  const int event_total = quick ? 100'000 : 1'000'000;

  std::printf("host_perf: matching (steady-state, non-wildcard, ns/match)\n");
  std::printf("%8s %14s %14s %9s %14s %14s %9s\n", "depth", "post_lin",
              "post_bucket", "speedup", "unexp_lin", "unexp_bucket", "speedup");
  std::vector<MatchingPoint> pts;
  bool meets_bar = false;
  for (int depth : {16, 64, 256, 1024}) {
    const MatchingPoint p = matching_point(depth, match_iters);
    pts.push_back(p);
    std::printf("%8d %14.1f %14.1f %8.2fx %14.1f %14.1f %8.2fx\n", p.depth,
                p.posted_linear_ns, p.posted_bucketed_ns, p.posted_speedup,
                p.unexpected_linear_ns, p.unexpected_bucketed_ns,
                p.unexpected_speedup);
    if (depth >= 256 && p.posted_speedup >= 5.0 && p.unexpected_speedup >= 5.0)
      meets_bar = true;
  }
  std::printf("matching speedup bar (>=5x at depth>=256): %s\n",
              meets_bar ? "PASS" : "FAIL");

  std::printf("\nhost_perf: event kernel (calendar | heap)\n");
  EventKernelNumbers ek;
  ek.fn_eps_calendar = fn_events_per_sec(sim::SchedBackend::kCalendar, event_total);
  ek.fn_eps_heap = fn_events_per_sec(sim::SchedBackend::kHeap, event_total);
  ek.timer_cps_calendar =
      timer_churn_per_sec(sim::SchedBackend::kCalendar, event_total);
  ek.timer_cps_heap = timer_churn_per_sec(sim::SchedBackend::kHeap, event_total);
  std::printf("  fn events/sec:    %.0f | %.0f\n", ek.fn_eps_calendar,
              ek.fn_eps_heap);
  std::printf("  timer churn/sec:  %.0f | %.0f\n", ek.timer_cps_calendar,
              ek.timer_cps_heap);

  std::printf("\nhost_perf: scheduler (timer-heavy TCP cluster, calendar vs heap)\n");
  const SchedResult sched = scheduler_point(quick);
  std::printf("  calendar: %.0f events/sec (%llu events in %.3f s)\n",
              sched.calendar.events_per_sec,
              static_cast<unsigned long long>(sched.calendar.events),
              sched.calendar.host_s);
  std::printf("  heap:     %.0f events/sec (%llu events in %.3f s)\n",
              sched.heap.events_per_sec,
              static_cast<unsigned long long>(sched.heap.events),
              sched.heap.host_s);
  std::printf("  speedup: %.2fx, tcp timer arms: %lld, deterministic: %s\n",
              sched.speedup,
              static_cast<long long>(sched.calendar.tcp_timer_arms),
              sched.deterministic ? "yes" : "NO");
  const bool sched_ok = sched.calendar_at_least_heap && sched.deterministic;
  std::printf("scheduler bar (calendar >= heap events/sec, identical virtual "
              "time): %s\n",
              sched_ok ? "PASS" : "FAIL");

  std::printf("\nhost_perf: actors (switch-heavy trigger ping-pong, fibers vs "
              "threads)\n");
  const ActorResult actors = actor_point(quick);
  std::printf("  fibers:  %.0f switches/sec (%llu switches in %.3f s)\n",
              actors.fibers.switches_per_sec,
              static_cast<unsigned long long>(actors.fibers.switches),
              actors.fibers.host_s);
  std::printf("  threads: %.0f switches/sec (%llu switches in %.3f s)\n",
              actors.threads.switches_per_sec,
              static_cast<unsigned long long>(actors.threads.switches),
              actors.threads.host_s);
  std::printf("  speedup: %.1fx, deterministic: %s\n", actors.speedup,
              actors.deterministic ? "yes" : "NO");
  std::printf("  lifecycle (%d spawns), fiber backend:\n", actors.spawns);
  mpi::actor_report(actors.lifecycle_fibers.stats).print();
  const bool actor_ok = actors.meets_bar && actors.deterministic;
  std::printf("actor bar (fibers >= 5x threads switches/sec, identical "
              "virtual time): %s\n",
              actor_ok ? "PASS" : "FAIL");

  std::printf("\nhost_perf: cluster points (non-default fabrics, 8-rank "
              "particle ring)\n");
  const auto cluster_particles = apps::random_particles(64, 11);
  std::vector<ClusterPoint> cluster;
  cluster.push_back(cluster_point(runtime::Media::kEthernet,
                                  runtime::Transport::kTcp, cluster_particles));
  cluster.push_back(cluster_point(runtime::Media::kAtm,
                                  runtime::Transport::kRudp, cluster_particles));
  for (const ClusterPoint& p : cluster)
    std::printf("  %s/%s: %.0f events/sec, %.1f sim-ms/host-s "
                "(%.3f virtual ms in %.3f s)\n",
                p.media, p.transport, p.events_per_sec, p.sim_ms_per_host_s,
                p.virtual_ms, p.host_s);

  std::printf("\nhost_perf: threads world (real OS threads, wall clock)\n");
  const ThreadsWorldResult tw = threads_world_point(quick);
  std::printf("  channel throughput: ring %.0f msgs/s | mutex %.0f msgs/s "
              "(%.1fx)\n",
              tw.ring_msgs_per_sec, tw.mutex_msgs_per_sec, tw.throughput_speedup);
  std::printf("  channel ping-pong:  ring %.0f rt/s | mutex %.0f rt/s (%.1fx)\n",
              tw.ring_rt_per_sec, tw.mutex_rt_per_sec, tw.pingpong_speedup);
  std::printf("  mpi ping-pong (2 ranks, 8 B): %.2f us/rtt, %.0f msgs/s "
              "(%llu fabric msgs, %llu full parks, %llu idle parks)\n",
              tw.mpi_usec_per_rtt, tw.mpi_msgs_per_sec,
              static_cast<unsigned long long>(tw.mpi_stats.messages),
              static_cast<unsigned long long>(tw.mpi_stats.full_parks),
              static_cast<unsigned long long>(tw.mpi_stats.idle_parks));
  std::printf("threads-world bar (ring >= 5x mutex channel msgs/sec): %s\n",
              tw.meets_bar ? "PASS" : "FAIL");

  std::printf("\nhost_perf: one-sided RMA (ThreadsWorld direct strategy, "
              "wall clock)\n");
  const RmaResult rma = rma_point(quick, tw.mpi_usec_per_rtt);
  std::printf("  put 8 B amortized (%llu puts/epoch x %llu epochs, fences "
              "in): %.3f us/put | empty fence: %.2f us | strategy: %s\n",
              static_cast<unsigned long long>(rma.puts_per_epoch),
              static_cast<unsigned long long>(rma.epochs),
              rma.put_usec_amortized, rma.fence_usec,
              rma.direct ? "direct" : "message");
  std::printf("rma bar (amortized shm put <= %.2f us two-sided eager rtt): "
              "%s\n",
              rma.eager_rtt_usec, rma.meets_bar ? "PASS" : "FAIL");

  std::printf("\nhost_perf: socket world (one process per rank, kernel "
              "sockets, whole-launch wall clock)\n");
  const SocketWorldResult sw = socket_world_point(quick);
  std::printf("  mpi ping-pong (2 ranks, 8 B, %llu rounds):\n",
              static_cast<unsigned long long>(sw.rounds));
  std::printf("    unix: %.2f us/rtt, %.0f msgs/s (floor %.0f)\n",
              sw.unix_usec_per_rtt, sw.unix_msgs_per_sec, sw.unix_floor);
  std::printf("    inet: %.2f us/rtt, %.0f msgs/s (floor %.0f)\n",
              sw.inet_usec_per_rtt, sw.inet_msgs_per_sec, sw.inet_floor);
  const auto print_sweep_fit = [](const char* name,
                                  const std::vector<BulkSweepPoint>& v,
                                  const BulkFit& fit) {
    std::printf("    %s sweep (one-way us):", name);
    for (const BulkSweepPoint& p : v)
      std::printf(" %zuB=%.1f", p.bytes, p.usec_per_transfer);
    std::printf("  | fit a=%.1f us, 1/b=%.0f MB/s\n", fit.a_usec,
                fit.bytes_per_sec / 1e6);
  };
  print_sweep_fit("unix", sw.unix_sweep, sw.unix_fit);
  print_sweep_fit("inet", sw.inet_sweep, sw.inet_fit);
  std::printf("socket-world bar (msgs/sec >= pre-lazy full-mesh floor, both "
              "domains): %s\n",
              sw.meets_bar ? "PASS" : "FAIL");

  std::printf("\nhost_perf: socket world at scale (lazy connections, "
              "all-to-one burst)\n");
  const SocketScaleResult scale = socket_scale_point();
  std::printf("  N=%d: root fds %llu, max non-root fds %llu (budget %llu), "
              "max non-root pairs %llu\n",
              scale.ranks, static_cast<unsigned long long>(scale.root_fds),
              static_cast<unsigned long long>(scale.max_nonroot_fds),
              static_cast<unsigned long long>(kNonRootFdBudget),
              static_cast<unsigned long long>(scale.max_nonroot_pairs));
  std::printf("socket-scale bar (burst completes, non-root fds O(1)): %s\n",
              scale.fds_bar ? "PASS" : "FAIL");

  std::printf("\nhost_perf: launcher (exec/env bootstrap — the lcmpirun "
              "path, AF_UNIX)\n");
  const LauncherResult lr = launcher_point(quick);
  std::printf("  2-rank ping-pong: %.2f us/rtt, %.0f msgs/s (floor %.0f)\n",
              lr.usec_per_rtt, lr.msgs_per_sec, lr.msgs_floor);
  std::printf("  N=%d spawn+ring+reap: %.3f s (%.0f ranks/s), max non-root "
              "fds %llu (budget %llu)\n",
              lr.spawn_ranks, lr.spawn_secs, lr.ranks_per_sec,
              static_cast<unsigned long long>(lr.max_nonroot_fds),
              static_cast<unsigned long long>(lr.fd_budget));
  std::printf("launcher bar (completed, msgs/sec >= socket-world floor, "
              "non-root fds O(log N)): %s\n",
              lr.meets_bar ? "PASS" : "FAIL");

  std::printf("\nhost_perf: bulk plane (rendezvous bandwidth sweep + "
              "control/bulk isolation)\n");
  const BulkPlaneResult bp = bulk_plane_point(quick);
  std::printf("  %-12s %10s %10s %10s %10s | fit a=%s, 1/b=%s\n", "transport",
              "64K", "256K", "1M", "4M", "usec", "MB/s");
  for (const BulkTransport& t : bp.transports) {
    std::printf("  %-12s", t.name.c_str());
    for (const BulkSweepPoint& p : t.points) std::printf(" %9.1f", p.mb_per_sec);
    std::printf("  | a=%.1f us, %.0f MB/s\n", t.fit.a_usec,
                t.fit.bytes_per_sec / 1e6);
  }
  std::printf("  memfd vs inline bandwidth (worst point >= 1 MiB): %.2fx\n",
              bp.memfd_vs_inline);
  std::printf("bulk bandwidth bar (memfd >= 2x inline at >= 1 MiB): %s\n",
              bp.bandwidth_bar ? "PASS" : "FAIL");
  std::printf("  control RTT: idle %.2f us, with %zu MiB bulk in flight "
              "%.2f us (%.2fx)\n",
              bp.idle_usec_per_rtt, bp.isolation_bulk_bytes >> 20,
              bp.loaded_usec_per_rtt, bp.isolation_ratio);
  std::printf(
      "bulk/control isolation bar (loaded <= 2x idle or <= %.0f us): %s\n",
      kIsolationLoadedEnvelopeUsec, bp.isolation_bar ? "PASS" : "FAIL");

  std::printf("\nhost_perf: collectives engine (CS/2 model, virtual us per "
              "call; software algorithms, hw offload column)\n");
  const CollectivesResult coll = collectives_point(quick);
  const auto print_sweep = [](const char* name, const std::vector<CollSweepPoint>& v,
                              bool has_hw) {
    std::printf("  %s:\n  %6s %9s %10s %10s %10s %10s %18s%s\n", name, "ranks",
                "bytes", "binomial", "scat_ag", "ring", "auto", "auto_choice",
                has_hw ? "         hw" : "");
    for (const CollSweepPoint& p : v) {
      std::printf("  %6d %9lld %10.1f %10.1f %10.1f %10.1f %18s", p.ranks,
                  static_cast<long long>(p.bytes), p.fixed_usec[0], p.fixed_usec[1],
                  p.fixed_usec[2], p.auto_usec, mpi::coll::name(p.auto_choice));
      if (has_hw) std::printf(" %10.1f", p.hw_usec);
      std::printf("%s%s\n", p.auto_ok ? "" : "  AUTO-MISS",
                  p.hw_ok ? "" : "  HW-SLOW");
    }
  };
  print_sweep("bcast", coll.bcast, true);
  print_sweep("allreduce", coll.allreduce, false);
  std::printf("  fig7 solver per algorithm (seconds; hw off for the fixed "
              "columns):\n  %6s %10s %10s %10s %10s\n", "procs", "binomial",
              "scat_ag", "ring", "hw_offload");
  for (const CollFig7Row& row : coll.fig7)
    std::printf("  %6d %10.4f %10.4f %10.4f %10.4f\n", row.procs, row.fixed_s[0],
                row.fixed_s[1], row.fixed_s[2], row.hw_s);
  std::printf("collectives auto bar (auto <= 1.1x best fixed at every point): "
              "%s\n", coll.auto_bar ? "PASS" : "FAIL");
  std::printf("collectives hw bar (Elan bcast < software binomial at >= 8 "
              "ranks): %s\n", coll.hw_bar ? "PASS" : "FAIL");

  std::printf("\nhost_perf: end-to-end (16-rank Meiko solver, N=96)\n");
  const EndToEnd e2e = solver_end_to_end();
  std::printf("  virtual: %.3f ms, host: %.3f s -> %.1f sim-ms/host-s\n",
              e2e.virtual_ms, e2e.host_s, e2e.sim_ms_per_host_s);

  write_json(out, quick, pts, ek, sched, actors, cluster, tw, rma, sw, scale,
             lr, bp, coll, e2e);
  std::printf("\nwrote %s\n", out.c_str());
  return meets_bar && sched_ok && actor_ok && tw.meets_bar && rma.meets_bar &&
                 sw.meets_bar && scale.fds_bar && lr.meets_bar &&
                 bp.bandwidth_bar && bp.isolation_bar && coll.auto_bar &&
                 coll.hw_bar
             ? 0
             : 1;
}

}  // namespace
}  // namespace lcmpi::bench

int main(int argc, char** argv) { return lcmpi::bench::run(argc, argv); }
