// Host-time performance harness (wall-clock, not virtual time).
//
// Everything else in bench/ measures the *model* — virtual nanoseconds that
// reproduce the paper's figures. This harness measures the *simulator*: how
// fast the host executes matching lookups, kernel events, and whole solver
// runs. It exists to (a) prove the bucketed matcher's O(1) host-time claim
// against the retained linear reference, and (b) catch host-side perf
// regressions, while golden_determinism_test proves the same changes left
// virtual time bit-identical.
//
// Usage: host_perf [--quick] [--out PATH]
//   --quick  ~10x fewer iterations (CI smoke mode)
//   --out    JSON output path (default: BENCH_host.json in the cwd)
//
// JSON schema (lcmpi-host-perf-v1):
//   matching[]   — ns/match for bucketed vs linear posted + unexpected
//                  queues at several steady-state depths, with speedups
//   event_kernel — callback-event dispatch and timer borrow/cancel/release
//                  throughput (events per host second)
//   end_to_end   — 16-rank Meiko solver: virtual ms simulated per host s
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/apps/solver.h"
#include "src/core/matching.h"
#include "src/core/matching_ref.h"
#include "src/runtime/world.h"
#include "src/sim/kernel.h"

namespace lcmpi::bench {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Defeats dead-code elimination of the measured loops.
std::size_t g_sink = 0;

// --- matching: steady-state lookups at fixed depth ---------------------------
//
// The depth-isolating shape of bench/ext_matching_depth: `depth - 1` parked
// entries from other sources sit at the front of the queue (receives whose
// peers have not sent yet / unexpected messages nobody asked for), and the
// entry the lookup wants arrived last. The linear matcher scans past every
// parked entry on every lookup; the bucketed matcher goes straight to the
// target source's bucket. Each iteration matches (a hit) and re-adds the
// target, holding depth constant. The *virtual* charge is `depth` entries
// for both implementations — only host time differs.

template <typename Q>
double posted_ns_per_match(int depth, int iters) {
  Q q;
  std::uint64_t id = 1;
  for (int i = 0; i < depth - 1; ++i)
    q.post({/*context=*/1, /*src=*/i, /*tag=*/0, /*request_id=*/id++});
  const int target = depth - 1;
  q.post({1, target, 0, id++});
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    std::size_t scanned = 0;
    auto e = q.match(1, target, 0, &scanned);
    g_sink += scanned + (e ? 1u : 0u);
    q.post({1, target, 0, id++});
  }
  return seconds_since(t0) * 1e9 / iters;
}

template <typename Q>
double unexpected_ns_per_match(int depth, int iters) {
  Q q;
  std::uint64_t id = 1;
  const auto park = [&q, &id](int src) {
    fabric::ProtoMsg m;
    m.kind = fabric::MsgKind::kEager;
    m.context = 1;
    m.src = src;
    m.tag = 0;
    m.sender_req = id++;
    q.add(std::move(m));
  };
  for (int i = 0; i < depth - 1; ++i) park(i);
  const int target = depth - 1;
  park(target);
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    std::size_t scanned = 0;
    auto m = q.match(1, target, 0, &scanned);
    g_sink += scanned + (m ? 1u : 0u);
    park(target);
  }
  return seconds_since(t0) * 1e9 / iters;
}

struct MatchingPoint {
  int depth;
  double posted_linear_ns, posted_bucketed_ns, posted_speedup;
  double unexpected_linear_ns, unexpected_bucketed_ns, unexpected_speedup;
};

MatchingPoint matching_point(int depth, int iters) {
  MatchingPoint p{};
  p.depth = depth;
  p.posted_bucketed_ns = posted_ns_per_match<mpi::PostedQueue>(depth, iters);
  p.posted_linear_ns = posted_ns_per_match<mpi::LinearPostedQueue>(depth, iters);
  p.posted_speedup = p.posted_linear_ns / p.posted_bucketed_ns;
  p.unexpected_bucketed_ns =
      unexpected_ns_per_match<mpi::UnexpectedQueue>(depth, iters);
  p.unexpected_linear_ns =
      unexpected_ns_per_match<mpi::LinearUnexpectedQueue>(depth, iters);
  p.unexpected_speedup = p.unexpected_linear_ns / p.unexpected_bucketed_ns;
  return p;
}

// --- event kernel ------------------------------------------------------------

/// Callback events scheduled and dispatched in waves (bounded heap).
double fn_events_per_sec(int total) {
  sim::Kernel k;
  const int wave = 100'000;
  long long done = 0;
  const auto t0 = Clock::now();
  for (int scheduled = 0; scheduled < total; scheduled += wave) {
    const int n = std::min(wave, total - scheduled);
    for (int i = 0; i < n; ++i)
      k.schedule(microseconds(i + 1), [&done] { ++done; });
    k.run();
  }
  g_sink += static_cast<std::size_t>(done);
  return done / seconds_since(t0);
}

/// Timer churn: borrow a cancellation cell, cancel, pop the dead event —
/// the wait_with_timeout fast path where the trigger fires first.
double timer_churn_per_sec(int total) {
  sim::Kernel k;
  const int wave = 100'000;
  const auto t0 = Clock::now();
  for (int scheduled = 0; scheduled < total; scheduled += wave) {
    const int n = std::min(wave, total - scheduled);
    for (int i = 0; i < n; ++i) {
      sim::EventHandle h = k.schedule(microseconds(i + 1), [] {});
      h.cancel();
    }
    k.run();
  }
  return total / seconds_since(t0);
}

// --- end to end --------------------------------------------------------------

struct EndToEnd {
  int ranks = 16;
  int solver_n = 96;
  double virtual_ms = 0;
  double host_s = 0;
  double sim_ms_per_host_s = 0;
};

EndToEnd solver_end_to_end() {
  EndToEnd e;
  const apps::LinearSystem sys = apps::LinearSystem::random(e.solver_n, 42);
  runtime::MeikoWorld w(e.ranks);
  const auto t0 = Clock::now();
  const Duration d = w.run([&](mpi::Comm& c, sim::Actor& self) {
    (void)apps::solve_parallel(c, self, sys, apps::sparc_profile());
  });
  e.host_s = seconds_since(t0);
  e.virtual_ms = static_cast<double>(d.ns) / 1e6;
  e.sim_ms_per_host_s = e.virtual_ms / e.host_s;
  return e;
}

// --- output ------------------------------------------------------------------

void write_json(const std::string& path, bool quick,
                const std::vector<MatchingPoint>& pts, double fn_eps,
                double timer_cps, const EndToEnd& e2e) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "host_perf: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"schema\": \"lcmpi-host-perf-v1\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"matching\": [\n");
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const MatchingPoint& p = pts[i];
    std::fprintf(f,
                 "    {\"depth\": %d, "
                 "\"posted_linear_ns\": %.1f, \"posted_bucketed_ns\": %.1f, "
                 "\"posted_speedup\": %.2f, "
                 "\"unexpected_linear_ns\": %.1f, \"unexpected_bucketed_ns\": %.1f, "
                 "\"unexpected_speedup\": %.2f}%s\n",
                 p.depth, p.posted_linear_ns, p.posted_bucketed_ns,
                 p.posted_speedup, p.unexpected_linear_ns, p.unexpected_bucketed_ns,
                 p.unexpected_speedup, i + 1 < pts.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"event_kernel\": {\"fn_events_per_sec\": %.0f, "
               "\"timer_churn_per_sec\": %.0f},\n",
               fn_eps, timer_cps);
  std::fprintf(f,
               "  \"end_to_end\": {\"ranks\": %d, \"solver_n\": %d, "
               "\"virtual_ms\": %.3f, \"host_s\": %.3f, "
               "\"sim_ms_per_host_s\": %.1f}\n",
               e2e.ranks, e2e.solver_n, e2e.virtual_ms, e2e.host_s,
               e2e.sim_ms_per_host_s);
  std::fprintf(f, "}\n");
  std::fclose(f);
}

int run(int argc, char** argv) {
  bool quick = false;
  std::string out = "BENCH_host.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: host_perf [--quick] [--out PATH]\n");
      return 2;
    }
  }

  const int match_iters = quick ? 20'000 : 200'000;
  const int event_total = quick ? 100'000 : 1'000'000;

  std::printf("host_perf: matching (steady-state, non-wildcard, ns/match)\n");
  std::printf("%8s %14s %14s %9s %14s %14s %9s\n", "depth", "post_lin",
              "post_bucket", "speedup", "unexp_lin", "unexp_bucket", "speedup");
  std::vector<MatchingPoint> pts;
  bool meets_bar = false;
  for (int depth : {16, 64, 256, 1024}) {
    const MatchingPoint p = matching_point(depth, match_iters);
    pts.push_back(p);
    std::printf("%8d %14.1f %14.1f %8.2fx %14.1f %14.1f %8.2fx\n", p.depth,
                p.posted_linear_ns, p.posted_bucketed_ns, p.posted_speedup,
                p.unexpected_linear_ns, p.unexpected_bucketed_ns,
                p.unexpected_speedup);
    if (depth >= 256 && p.posted_speedup >= 5.0 && p.unexpected_speedup >= 5.0)
      meets_bar = true;
  }
  std::printf("matching speedup bar (>=5x at depth>=256): %s\n",
              meets_bar ? "PASS" : "FAIL");

  std::printf("\nhost_perf: event kernel\n");
  const double fn_eps = fn_events_per_sec(event_total);
  const double timer_cps = timer_churn_per_sec(event_total);
  std::printf("  fn events/sec:    %.0f\n", fn_eps);
  std::printf("  timer churn/sec:  %.0f\n", timer_cps);

  std::printf("\nhost_perf: end-to-end (16-rank Meiko solver, N=96)\n");
  const EndToEnd e2e = solver_end_to_end();
  std::printf("  virtual: %.3f ms, host: %.3f s -> %.1f sim-ms/host-s\n",
              e2e.virtual_ms, e2e.host_s, e2e.sim_ms_per_host_s);

  write_json(out, quick, pts, fn_eps, timer_cps, e2e);
  std::printf("\nwrote %s\n", out.c_str());
  return meets_bar ? 0 : 1;
}

}  // namespace
}  // namespace lcmpi::bench

int main(int argc, char** argv) { return lcmpi::bench::run(argc, argv); }
