// Figure 4: ATM round-trip latency of the available user-level protocols.
//
// Fore's direct AAL3/4 access path vs TCP vs UDP, all over the ATM
// interface. The paper's finding: the Fore adaptation layers are NOT
// significantly faster than TCP/UDP — STREAMS processing dominates — and
// except at small sizes the three are indistinguishable. This motivated
// confining the MPI work to TCP and UDP.
#include "bench/common.h"

#include "src/inet/tcp.h"

namespace lcmpi::bench {
namespace {

struct AtmRaw {
  sim::Kernel kernel;
  atmnet::AtmNetwork net{kernel, 2};
  inet::InetCluster cluster{net, inet::atm_profile()};
};

double dgram_rtt_us(bool raw_api, int bytes, int iters = 8) {
  AtmRaw w;
  inet::DatagramSocket& a =
      raw_api ? w.cluster.raw_socket(0, 700) : w.cluster.udp_socket(0, 700);
  inet::DatagramSocket& b =
      raw_api ? w.cluster.raw_socket(1, 701) : w.cluster.udp_socket(1, 701);
  double rtt = 0.0;
  w.kernel.spawn("ping", [&, bytes, iters](sim::Actor& self) {
    a.send_to(self, 1, 701, Bytes(static_cast<std::size_t>(bytes)));
    (void)a.recv(self);
    const TimePoint t0 = self.now();
    for (int i = 0; i < iters; ++i) {
      a.send_to(self, 1, 701, Bytes(static_cast<std::size_t>(bytes)));
      (void)a.recv(self);
    }
    rtt = (self.now() - t0).usec() / iters;
  });
  w.kernel.spawn("pong", [&, iters](sim::Actor& self) {
    for (int i = 0; i < iters + 1; ++i) {
      inet::Datagram d = b.recv(self);
      b.send_to(self, d.src_host, d.src_port, std::move(d.data));
    }
  });
  w.kernel.run();
  return rtt;
}

double tcp_rtt_us(int bytes, int iters = 8) {
  AtmRaw w;
  inet::TcpConnection& c = w.cluster.tcp_pair(0, 1);
  double rtt = 0.0;
  w.kernel.spawn("ping", [&, bytes, iters](sim::Actor& self) {
    Bytes buf(static_cast<std::size_t>(bytes), std::byte{1});
    Bytes in(buf.size());
    c.a().write(self, buf);
    c.a().read_exact(self, in.data(), in.size());
    const TimePoint t0 = self.now();
    for (int i = 0; i < iters; ++i) {
      c.a().write(self, buf);
      c.a().read_exact(self, in.data(), in.size());
    }
    rtt = (self.now() - t0).usec() / iters;
  });
  w.kernel.spawn("pong", [&, bytes, iters](sim::Actor& self) {
    Bytes in(static_cast<std::size_t>(bytes));
    for (int i = 0; i < iters + 1; ++i) {
      c.b().read_exact(self, in.data(), in.size());
      c.b().write(self, in);
    }
  });
  w.kernel.run();
  return rtt;
}

int run() {
  banner("Figure 4", "ATM round-trip latency: Fore AAL4 vs TCP vs UDP");

  Table t({"bytes", "fore_aal4_us", "tcp_us", "udp_us"});
  for (int bytes : latency_sizes()) {
    t.add_row({std::to_string(bytes), fmt(dgram_rtt_us(true, bytes)),
               fmt(tcp_rtt_us(bytes)), fmt(dgram_rtt_us(false, bytes))});
  }
  t.print();
  std::printf("\npaper: \"Except for small message sizes, the latency of these\n"
              "protocols are indistinguishable from each other.\"\n");
  return 0;
}

}  // namespace
}  // namespace lcmpi::bench

int main() { return lcmpi::bench::run(); }
