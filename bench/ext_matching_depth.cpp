// Ablation: where matching runs, isolated by queue depth.
//
// The paper's central Meiko design choice is matching on the 40 MHz SPARC
// instead of the 10 MHz Elan: "the slower Elan may not be able to handle
// the somewhat intensive message matching as quickly as the faster SPARC".
// This harness isolates exactly that term: the receiver pre-posts K
// receives whose tags never match, then measures the round trip of a
// message that must scan past all K entries — on the low-latency MPI
// (SPARC scan, 0.25 us/entry) and on MPICH-over-tport (Elan scan,
// 0.8 us/entry). The gap grows linearly with depth, at the per-entry
// rate ratio of the two processors.
#include <utility>

#include "bench/common.h"
#include "src/core/profile.h"

namespace lcmpi::bench {
namespace {

/// RTT of a tag-999 ping with `depth` unmatchable receives posted first.
/// When `stats` is non-null (low-latency engine only), the receiver rank's
/// matching counters are copied out at the end of the run.
template <typename World>
double rtt_at_depth(World& w, int depth,
                    std::pair<mpi::MatchStats, mpi::MatchStats>* stats = nullptr) {
  double rtt = 0.0;
  w.run([&, depth](auto& c, sim::Actor& self) {
    auto bt = mpi::Datatype::byte_type();
    std::uint8_t b = 1;
    if (c.rank() == 0) {
      self.advance(milliseconds(1));  // receiver posts its queue first
      constexpr int kIters = 8;
      // Warm-up.
      c.send(&b, 1, bt, 1, 999);
      c.recv(&b, 1, bt, 1, 998);
      const TimePoint t0 = self.now();
      for (int i = 0; i < kIters; ++i) {
        c.send(&b, 1, bt, 1, 999);
        c.recv(&b, 1, bt, 1, 998);
      }
      rtt = (self.now() - t0).usec() / kIters;
      // Release the parked receives.
      for (int k = 0; k < depth; ++k) c.send(&b, 1, bt, 1, k);
    } else {
      std::vector<std::uint8_t> sink(static_cast<std::size_t>(depth) + 1);
      std::vector<decltype(c.irecv(&b, 1, bt, 0, 0))> parked;
      for (int k = 0; k < depth; ++k)
        parked.push_back(c.irecv(&sink[static_cast<std::size_t>(k)], 1, bt, 0, k));
      for (int i = 0; i < 9; ++i) {
        c.recv(&b, 1, bt, 0, 999);  // must scan past `depth` entries
        c.send(&b, 1, bt, 0, 998);
      }
      c.wait_all(parked);
      if constexpr (requires { c.engine(); }) {
        if (stats != nullptr)
          *stats = {c.engine().posted_match_stats(),
                    c.engine().unexpected_match_stats()};
      }
    }
  });
  return rtt;
}

int run() {
  banner("Ablation", "matching-queue depth: SPARC (low-latency) vs Elan (MPICH)");

  Table t({"posted_depth", "lowlat_rtt_us", "mpich_rtt_us", "lowlat_delta_us",
           "mpich_delta_us"});
  double base_ll = 0.0, base_mp = 0.0;
  for (int depth : {0, 8, 16, 32, 64, 128}) {
    runtime::MeikoWorld lw(2);
    const double ll = rtt_at_depth(lw, depth);
    runtime::MpichMeikoWorld mw(2);
    const double mp = rtt_at_depth(mw, depth);
    if (depth == 0) {
      base_ll = ll;
      base_mp = mp;
    }
    t.add_row({std::to_string(depth), fmt(ll), fmt(mp), fmt(ll - base_ll),
               fmt(mp - base_mp)});
  }
  t.print();
  std::printf("\nthe per-posted-entry scan penalty is ~0.5 us on the 40 MHz SPARC vs\n"
              "~1.6 us on the 10 MHz Elan (two scans per round trip), so deep queues\n"
              "punish Elan-side matching ~3x harder — the paper's design argument.\n");

  // Receiver-side matching counters at the deepest point. entries_scanned is
  // the *logical* linear-scan count billed as virtual time; buckets/max_bucket
  // show how the host-side bucketed matcher actually dissected that work.
  std::pair<mpi::MatchStats, mpi::MatchStats> stats;
  runtime::MeikoWorld sw(2);
  (void)rtt_at_depth(sw, 128, &stats);
  std::printf("\nreceiver matching counters (low-latency engine, depth 128):\n");
  mpi::matching_report(stats.first, stats.second).print();
  return 0;
}

}  // namespace
}  // namespace lcmpi::bench

int main() { return lcmpi::bench::run(); }
