// Figure 1: Meiko transfer mechanisms.
//
// Round-trip time vs message size for the two transfer mechanisms the
// hybrid protocol chooses between: eager ("Buffering": data overlapped
// with matching, temporary receiver-side copy) vs rendezvous ("No
// buffering": envelope first, then a DMA pull directly into the user
// buffer). The paper's curves intersect at 180 bytes, which is where the
// implementation sets its crossover. Also sweeps the threshold as an
// ablation of that design choice.
#include "bench/common.h"

namespace lcmpi::bench {
namespace {

double rtt_forced(int bytes, std::int64_t threshold) {
  mpi::EngineConfig cfg;
  cfg.eager_threshold_override = threshold;
  runtime::MeikoWorld w(2, {}, cfg);
  return mpi_pingpong_rtt_us(w, bytes, 6);
}

int run() {
  banner("Figure 1", "Meiko transfer mechanisms: buffering vs no buffering");

  Table t({"bytes", "buffering_rtt_us", "no_buffering_rtt_us", "winner"});
  double crossover = -1.0;
  double prev_diff = 0.0;
  int prev_size = 0;
  for (int bytes : {1, 16, 32, 64, 96, 128, 160, 180, 200, 256, 320, 384, 448, 512}) {
    const double eager = rtt_forced(bytes, 1 << 20);  // always eager
    const double rndv = rtt_forced(bytes, 0);         // always rendezvous
    const double diff = eager - rndv;
    if (crossover < 0 && diff > 0 && prev_diff < 0 && diff != prev_diff) {
      // Linear interpolation of the zero crossing.
      crossover = prev_size + (bytes - prev_size) * (-prev_diff) / (diff - prev_diff);
    }
    prev_diff = diff;
    prev_size = bytes;
    t.add_row({std::to_string(bytes), fmt(eager), fmt(rndv),
               eager < rndv ? "buffering" : "no-buffering"});
  }
  t.print();
  std::printf("\nmeasured crossover: %.0f bytes (paper: 180 bytes)\n", crossover);

  std::printf("\nAblation — end-to-end RTT at the hybrid protocol's default\n"
              "threshold vs forced-eager and forced-rendezvous:\n");
  Table a({"bytes", "hybrid_180_us", "always_eager_us", "always_rndv_us"});
  for (int bytes : {64, 180, 512, 4096}) {
    a.add_row({std::to_string(bytes), fmt(rtt_forced(bytes, 180)),
               fmt(rtt_forced(bytes, 1 << 20)), fmt(rtt_forced(bytes, 0))});
  }
  a.print();
  return 0;
}

}  // namespace
}  // namespace lcmpi::bench

int main() { return lcmpi::bench::run(); }
