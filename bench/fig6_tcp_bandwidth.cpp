// Figure 6: TCP bandwidth — raw TCP vs MPI-over-TCP on both media.
//
// The MPI protocol costs are per message, so at large transfers the MPI
// curves converge to the raw TCP curves; ATM's 155 Mb/s link dominates the
// shared 10 Mb/s Ethernet by more than an order of magnitude.
#include "bench/common.h"

#include "src/inet/tcp.h"

namespace lcmpi::bench {
namespace {

double raw_tcp_bw_mbps(runtime::Media media, int bytes, int reps = 3) {
  sim::Kernel kernel;
  std::unique_ptr<atmnet::Network> net;
  std::unique_ptr<inet::InetCluster> cluster;
  if (media == runtime::Media::kAtm) {
    net = std::make_unique<atmnet::AtmNetwork>(kernel, 2);
    cluster = std::make_unique<inet::InetCluster>(*net, inet::atm_profile());
  } else {
    net = std::make_unique<atmnet::EthernetNetwork>(kernel, 2);
    cluster = std::make_unique<inet::InetCluster>(*net, inet::ethernet_profile());
  }
  inet::TcpConnection& c = cluster->tcp_pair(0, 1);
  double mbps = 0.0;
  kernel.spawn("tx", [&, bytes, reps](sim::Actor& self) {
    Bytes buf(static_cast<std::size_t>(bytes), std::byte{1});
    Bytes fin(1);
    c.a().write(self, buf);
    c.a().read_exact(self, fin.data(), 1);
    const TimePoint t0 = self.now();
    for (int i = 0; i < reps; ++i) c.a().write(self, buf);
    c.a().read_exact(self, fin.data(), 1);
    mbps = static_cast<double>(bytes) * reps / (self.now() - t0).sec() / 1e6;
  });
  kernel.spawn("rx", [&, bytes, reps](sim::Actor& self) {
    Bytes in(static_cast<std::size_t>(bytes));
    Bytes fin(1, std::byte{1});
    for (int i = 0; i < reps + 1; ++i) {
      c.b().read_exact(self, in.data(), in.size());
      if (i == 0 || i == reps) c.b().write(self, fin);
    }
  });
  kernel.run();
  return mbps;
}

int run() {
  using runtime::Media;
  using runtime::Transport;
  banner("Figure 6", "TCP bandwidth");

  Table t({"bytes", "tcp_eth_MBps", "tcp_atm_MBps", "mpi_tcp_eth_MBps",
           "mpi_tcp_atm_MBps"});
  for (int bytes : bandwidth_sizes()) {
    runtime::ClusterWorld we(2, Media::kEthernet, Transport::kTcp);
    runtime::ClusterWorld wa(2, Media::kAtm, Transport::kTcp);
    t.add_row({std::to_string(bytes), fmt(raw_tcp_bw_mbps(Media::kEthernet, bytes)),
               fmt(raw_tcp_bw_mbps(Media::kAtm, bytes)),
               fmt(mpi_bandwidth_mbps(we, bytes, 3)),
               fmt(mpi_bandwidth_mbps(wa, bytes, 3))});
  }
  t.print();
  std::printf("\nwire ceilings: Ethernet 10 Mb/s = 1.25 MB/s; ATM 155 Mb/s with the\n"
              "48/53 cell tax = ~17.5 MB/s of goodput.\n");
  return 0;
}

}  // namespace
}  // namespace lcmpi::bench

int main() { return lcmpi::bench::run(); }
