// Figure 7: Meiko linear equation solver, 1-32 processes.
//
// The solver's only communication is broadcast, so it isolates the two
// MPI_Bcast implementations: MPICH's point-to-point tree over tport vs the
// low-latency MPI's use of the Meiko hardware broadcast. The low-latency
// curve should sit below MPICH everywhere and scale further.
#include "bench/common.h"

#include "src/apps/matmul.h"
#include "src/apps/solver.h"

namespace lcmpi::bench {
namespace {

int run() {
  banner("Figure 7", "Meiko linear equation solver (time vs processes)");

  constexpr int kN = 192;
  constexpr int kMatN = 128;  // divides every tested process count
  const apps::LinearSystem sys = apps::LinearSystem::random(kN, 42);

  Table t({"procs", "mpich_s", "lowlat_s", "speedup_lowlat"});
  double lowlat1 = 0.0;
  for (int p : {1, 2, 4, 8, 16, 32}) {
    runtime::MpichMeikoWorld mw(p);
    const double mpich_s =
        mw.run([&](mpi::MpichComm& c, sim::Actor& self) {
            (void)apps::solve_parallel(c, self, sys, apps::sparc_profile());
          })
            .sec();
    runtime::MeikoWorld lw(p);
    const double lowlat_s =
        lw.run([&](mpi::Comm& c, sim::Actor& self) {
            (void)apps::solve_parallel(c, self, sys, apps::sparc_profile());
          })
            .sec();
    if (p == 1) lowlat1 = lowlat_s;
    t.add_row({std::to_string(p), fmt(mpich_s, 4), fmt(lowlat_s, 4),
               fmt(lowlat1 / lowlat_s, 2)});
  }
  t.print();
  std::printf("\nN = %d unknowns; broadcast-only communication. Paper Fig. 7 shows\n"
              "the low-latency (hardware broadcast) implementation below MPICH's\n"
              "point-to-point broadcast at every process count.\n", kN);

  // §6.1: "We also implemented matrix multiplication; the performance
  // results are similar to that of the linear equation solver."
  std::printf("\nMatrix multiply (%dx%d), same comparison:\n", kMatN, kMatN);
  Table m({"procs", "mpich_s", "lowlat_s"});
  const auto a = apps::random_matrix(kMatN, 1);
  const auto b = apps::random_matrix(kMatN, 2);
  for (int p : {1, 2, 4, 8, 16, 32}) {
    runtime::MpichMeikoWorld mw(p);
    const double mpich_s =
        mw.run([&](mpi::MpichComm& c, sim::Actor& self) {
            (void)apps::matmul_parallel(c, self, a, b, kMatN, apps::sparc_profile());
          })
            .sec();
    runtime::MeikoWorld lw(p);
    const double lowlat_s =
        lw.run([&](mpi::Comm& c, sim::Actor& self) {
            (void)apps::matmul_parallel(c, self, a, b, kMatN, apps::sparc_profile());
          })
            .sec();
    m.add_row({std::to_string(p), fmt(mpich_s, 4), fmt(lowlat_s, 4)});
  }
  m.print();
  return 0;
}

}  // namespace
}  // namespace lcmpi::bench

int main() { return lcmpi::bench::run(); }
