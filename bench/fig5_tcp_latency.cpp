// Figure 5: TCP round-trip latency — raw TCP vs MPI-over-TCP on both media.
//
// Four series as in the paper (tcp/eth, tcp/atm, mpi/tcp/eth, mpi/tcp/atm),
// plus the reliable-UDP MPI series (the paper reports it performs like the
// TCP version) and a flow-control ablation: the Meiko's single-envelope
// discipline applied over TCP, which the paper rejects in §5.1.
#include "bench/common.h"

#include "src/inet/tcp.h"

namespace lcmpi::bench {
namespace {

double raw_tcp_rtt_us(runtime::Media media, int bytes, int iters = 8) {
  sim::Kernel kernel;
  std::unique_ptr<atmnet::Network> net;
  std::unique_ptr<inet::InetCluster> cluster;
  if (media == runtime::Media::kAtm) {
    net = std::make_unique<atmnet::AtmNetwork>(kernel, 2);
    cluster = std::make_unique<inet::InetCluster>(*net, inet::atm_profile());
  } else {
    net = std::make_unique<atmnet::EthernetNetwork>(kernel, 2);
    cluster = std::make_unique<inet::InetCluster>(*net, inet::ethernet_profile());
  }
  inet::TcpConnection& c = cluster->tcp_pair(0, 1);
  double rtt = 0.0;
  kernel.spawn("ping", [&, bytes, iters](sim::Actor& self) {
    Bytes buf(static_cast<std::size_t>(bytes), std::byte{1});
    Bytes in(buf.size());
    c.a().write(self, buf);
    c.a().read_exact(self, in.data(), in.size());
    const TimePoint t0 = self.now();
    for (int i = 0; i < iters; ++i) {
      c.a().write(self, buf);
      c.a().read_exact(self, in.data(), in.size());
    }
    rtt = (self.now() - t0).usec() / iters;
  });
  kernel.spawn("pong", [&, bytes, iters](sim::Actor& self) {
    Bytes in(static_cast<std::size_t>(bytes));
    for (int i = 0; i < iters + 1; ++i) {
      c.b().read_exact(self, in.data(), in.size());
      c.b().write(self, in);
    }
  });
  kernel.run();
  return rtt;
}

double mpi_rtt_us(runtime::Media media, runtime::Transport tr, int bytes,
                  fabric::FlowControl flow = fabric::FlowControl::kCredit) {
  fabric::StreamFabric::Options opt;
  opt.flow = flow;
  runtime::ClusterWorld w(2, media, tr, {}, opt);
  return mpi_pingpong_rtt_us(w, bytes, 8);
}

int run() {
  using runtime::Media;
  using runtime::Transport;
  banner("Figure 5", "TCP round-trip latency (plus reliable-UDP MPI, paper §5.3)");

  Table t({"bytes", "tcp_eth_us", "tcp_atm_us", "mpi_tcp_eth_us", "mpi_tcp_atm_us",
           "mpi_rudp_atm_us"});
  for (int bytes : latency_sizes()) {
    t.add_row({std::to_string(bytes), fmt(raw_tcp_rtt_us(Media::kEthernet, bytes)),
               fmt(raw_tcp_rtt_us(Media::kAtm, bytes)),
               fmt(mpi_rtt_us(Media::kEthernet, Transport::kTcp, bytes)),
               fmt(mpi_rtt_us(Media::kAtm, Transport::kTcp, bytes)),
               fmt(mpi_rtt_us(Media::kAtm, Transport::kRudp, bytes))});
  }
  t.print();

  std::printf("\npaper reference points: raw 1 B RTT 925 us (Ethernet), 1065 us (ATM);\n"
              "MPI adds roughly constant protocol overhead on top (Table 1).\n");

  std::printf("\nAblation — flow control over mpi/tcp/atm with 4 outstanding sends\n"
              "(single envelope slot vs credit; paper §5.1 explains why credit):\n");
  for (auto [name, flow] : {std::pair{"credit", fabric::FlowControl::kCredit},
                            std::pair{"single-slot", fabric::FlowControl::kSingleSlot}}) {
    fabric::StreamFabric::Options opt;
    opt.flow = flow;
    runtime::ClusterWorld w(2, Media::kAtm, Transport::kTcp, {}, opt);
    double total_us = 0.0;
    w.run([&](mpi::Comm& c, sim::Actor& self) {
      auto bt = mpi::Datatype::byte_type();
      Bytes buf(512, std::byte{2});
      if (c.rank() == 0) {
        const TimePoint t0 = self.now();
        std::vector<mpi::Request> reqs;
        for (int i = 0; i < 4; ++i)
          reqs.push_back(c.isend(buf.data(), 512, bt, 1, i));
        c.wait_all(reqs);
        std::uint8_t fin = 0;
        c.recv(&fin, 1, bt, 1, 99);
        total_us = (self.now() - t0).usec();
      } else {
        Bytes in(512);
        for (int i = 0; i < 4; ++i) c.recv(in.data(), 512, bt, 0, i);
        std::uint8_t fin = 1;
        c.send(&fin, 1, bt, 0, 99);
      }
    });
    std::printf("  %-12s %8.1f us for 4 pipelined 512 B sends\n", name, total_us);
  }
  return 0;
}

}  // namespace
}  // namespace lcmpi::bench

int main() { return lcmpi::bench::run(); }
