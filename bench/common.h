// Shared measurement drivers for the per-figure benchmark harnesses.
//
// Every bench prints the series the corresponding paper figure plots (and
// the paper's quoted values where it quotes any), from a fresh simulation
// per data point so measurements never contaminate each other.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "src/meiko/tport.h"
#include "src/runtime/world.h"
#include "src/util/table.h"

namespace lcmpi::bench {

/// MPI ping-pong round-trip time in microseconds (works for mpi::Comm and
/// mpi::MpichComm worlds alike).
template <typename World>
double mpi_pingpong_rtt_us(World& w, int bytes, int iters = 10) {
  double rtt = 0.0;
  w.run([&, bytes, iters](auto& c, sim::Actor& self) {
    Bytes buf(static_cast<std::size_t>(bytes), std::byte{5});
    Bytes in(buf.size());
    auto t = mpi::Datatype::byte_type();
    if (c.rank() == 0) {
      c.send(buf.data(), bytes, t, 1, 1);
      c.recv(in.data(), bytes, t, 1, 2);
      const TimePoint t0 = self.now();
      for (int i = 0; i < iters; ++i) {
        c.send(buf.data(), bytes, t, 1, 1);
        c.recv(in.data(), bytes, t, 1, 2);
      }
      rtt = (self.now() - t0).usec() / iters;
    } else {
      for (int i = 0; i < iters + 1; ++i) {
        c.recv(in.data(), bytes, t, 0, 1);
        c.send(in.data(), bytes, t, 0, 2);
      }
    }
  });
  return rtt;
}

/// One-way MPI streaming bandwidth in MB/s (final ack closes the clock).
template <typename World>
double mpi_bandwidth_mbps(World& w, int bytes, int reps = 4) {
  double mbps = 0.0;
  w.run([&, bytes, reps](auto& c, sim::Actor& self) {
    Bytes buf(static_cast<std::size_t>(bytes), std::byte{3});
    auto t = mpi::Datatype::byte_type();
    if (c.rank() == 0) {
      // Warm-up round.
      c.send(buf.data(), bytes, t, 1, 1);
      std::uint8_t fin = 0;
      c.recv(&fin, 1, t, 1, 2);
      const TimePoint t0 = self.now();
      for (int i = 0; i < reps; ++i) c.send(buf.data(), bytes, t, 1, 1);
      c.recv(&fin, 1, t, 1, 2);
      mbps = static_cast<double>(bytes) * reps / (self.now() - t0).sec() / 1e6;
    } else {
      std::uint8_t fin = 1;
      for (int i = 0; i < reps + 1; ++i) {
        c.recv(buf.data(), bytes, t, 0, 1);
        if (i == 0 || i == reps) c.send(&fin, 1, t, 0, 2);
      }
    }
  });
  return mbps;
}

/// A bare two-node Meiko machine with tport widgets (no MPI), for the raw
/// tport baselines in Figs. 2 and 3.
struct TportWorld {
  sim::Kernel kernel;
  meiko::Machine machine{kernel, 2};
  meiko::Tport t0{machine, 0};
  meiko::Tport t1{machine, 1};

  double pingpong_rtt_us(int bytes, int iters = 10) {
    double rtt = 0.0;
    kernel.spawn("ping", [&, bytes, iters](sim::Actor& self) {
      Bytes buf(static_cast<std::size_t>(bytes), std::byte{1});
      t0.send(self, 1, 1, buf);
      (void)t0.recv(self, 2, ~0ULL);
      const TimePoint a = self.now();
      for (int i = 0; i < iters; ++i) {
        t0.send(self, 1, 1, buf);
        (void)t0.recv(self, 2, ~0ULL);
      }
      rtt = (self.now() - a).usec() / iters;
    });
    kernel.spawn("pong", [&, iters](sim::Actor& self) {
      for (int i = 0; i < iters + 1; ++i) {
        meiko::TportMessage m = t1.recv(self, 1, ~0ULL);
        t1.send(self, 0, 2, std::move(m.data));
      }
    });
    kernel.run();
    return rtt;
  }

  double bandwidth_mbps(int bytes, int reps = 4) {
    double mbps = 0.0;
    kernel.spawn("tx", [&, bytes, reps](sim::Actor& self) {
      Bytes buf(static_cast<std::size_t>(bytes), std::byte{1});
      t0.send(self, 1, 1, buf);
      (void)t0.recv(self, 2, ~0ULL);
      const TimePoint a = self.now();
      for (int i = 0; i < reps; ++i) t0.send(self, 1, 1, buf);
      (void)t0.recv(self, 2, ~0ULL);
      mbps = static_cast<double>(bytes) * reps / (self.now() - a).sec() / 1e6;
    });
    kernel.spawn("rx", [&, reps](sim::Actor& self) {
      for (int i = 0; i < reps + 1; ++i) {
        (void)t1.recv(self, 1, ~0ULL);
        if (i == 0 || i == reps) t1.send(self, 0, 2, Bytes(1));
      }
    });
    kernel.run();
    return mbps;
  }
};

/// Standard message-size sweeps used across figures.
inline std::vector<int> latency_sizes() {
  return {1, 2, 4, 8, 16, 32, 64, 128, 180, 256, 512, 1024, 2048, 4096};
}
inline std::vector<int> bandwidth_sizes() {
  return {1024, 4096, 16384, 65536, 262144, 1048576};
}

/// Prints the standard bench banner.
inline void banner(const char* figure, const char* caption) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, caption);
  std::printf("(reproduction of: Jones, Singh, Agrawal, \"Low Latency MPI for\n");
  std::printf(" Meiko CS/2 and ATM Clusters\", IPPS 1997)\n");
  std::printf("==============================================================\n");
}

}  // namespace lcmpi::bench
