// Figure 2: Meiko round-trip latency.
//
// Round-trip time vs message size for three stacks:
//   * Meiko tport        — the raw widget, no MPI (paper: 52 us at 1 B);
//   * MPI (low latency)  — this library, matching on the SPARC over raw
//                          DMAs/transactions (paper: 104 us at 1 B, with a
//                          visible bend at the 180 B protocol crossover);
//   * MPI (MPICH)        — the tport-based baseline, matching on the Elan
//                          (paper: 210 us at 1 B).
#include "bench/common.h"

namespace lcmpi::bench {
namespace {

int run() {
  banner("Figure 2", "Meiko round-trip latency");

  Table t({"bytes", "tport_us", "mpi_lowlat_us", "mpi_mpich_us"});
  for (int bytes : latency_sizes()) {
    TportWorld tw;
    const double tport = tw.pingpong_rtt_us(bytes);
    runtime::MeikoWorld lw(2);
    const double lowlat = mpi_pingpong_rtt_us(lw, bytes);
    runtime::MpichMeikoWorld mw(2);
    const double mpich = mpi_pingpong_rtt_us(mw, bytes);
    t.add_row({std::to_string(bytes), fmt(tport), fmt(lowlat), fmt(mpich)});
  }
  t.print();

  TportWorld tw;
  runtime::MeikoWorld lw(2);
  runtime::MpichMeikoWorld mw(2);
  std::printf("\n1-byte RTT — paper vs measured:\n");
  std::printf("  tport            52 us   vs  %.1f us\n", tw.pingpong_rtt_us(1));
  std::printf("  MPI low latency 104 us   vs  %.1f us\n", mpi_pingpong_rtt_us(lw, 1));
  std::printf("  MPI MPICH       210 us   vs  %.1f us\n", mpi_pingpong_rtt_us(mw, 1));
  return 0;
}

}  // namespace
}  // namespace lcmpi::bench

int main() { return lcmpi::bench::run(); }
