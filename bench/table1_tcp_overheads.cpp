// Table 1: MPI round-trip overheads with TCP — the latency decomposition.
//
// Reproduces each line of the paper's table by measuring the corresponding
// operation through the simulated stack:
//   line 1: raw TCP 1-byte round trip;
//   line 2: the marginal cost of writing the 25 bytes of MPI protocol
//           information (1 type byte + 4 credit + 20 envelope/DMA info)
//           along with the payload;
//   line 3: the read() that fetches the message type byte;
//   line 4: the read() that fetches the envelope/control block;
//   line 5: MPI matching on the host.
// A consistency check compares raw-RTT + 2x(sum of added lines) against
// the measured MPI-over-TCP round trip.
#include "bench/common.h"

#include "src/fabric/stream_fabric.h"
#include "src/inet/tcp.h"

namespace lcmpi::bench {
namespace {

struct Decomposition {
  double raw_rtt_us;
  double info_write_us;
  double read_type_us;
  double read_envelope_us;
  double matching_us;
  double mpi_rtt_us;
};

Decomposition measure(runtime::Media media) {
  Decomposition d{};

  // --- raw 1-byte TCP RTT ----------------------------------------------------
  sim::Kernel kernel;
  std::unique_ptr<atmnet::Network> net;
  std::unique_ptr<inet::InetCluster> cluster;
  if (media == runtime::Media::kAtm) {
    net = std::make_unique<atmnet::AtmNetwork>(kernel, 2);
    cluster = std::make_unique<inet::InetCluster>(*net, inet::atm_profile());
  } else {
    net = std::make_unique<atmnet::EthernetNetwork>(kernel, 2);
    cluster = std::make_unique<inet::InetCluster>(*net, inet::ethernet_profile());
  }
  inet::TcpConnection& conn = cluster->tcp_pair(0, 1);
  inet::TcpConnection& probeconn = cluster->tcp_pair(0, 1);

  kernel.spawn("ping", [&](sim::Actor& self) {
    Bytes one(1, std::byte{1});
    Bytes in(1);
    conn.a().write(self, one);
    conn.a().read_exact(self, in.data(), 1);
    TimePoint t0 = self.now();
    for (int i = 0; i < 8; ++i) {
      conn.a().write(self, one);
      conn.a().read_exact(self, in.data(), 1);
    }
    d.raw_rtt_us = (self.now() - t0).usec() / 8;

    // --- line 2: marginal cost of the 25-byte header on a write -------------
    Bytes with_info(26, std::byte{2});
    t0 = self.now();
    probeconn.a().write(self, with_info);
    const double w26 = (self.now() - t0).usec();
    t0 = self.now();
    probeconn.a().write(self, one);
    const double w1 = (self.now() - t0).usec();
    d.info_write_us = w26 - w1;
  });
  kernel.spawn("pong", [&](sim::Actor& self) {
    Bytes in(1);
    for (int i = 0; i < 9; ++i) {
      conn.b().read_exact(self, in.data(), 1);
      conn.b().write(self, in);
    }
    // --- lines 3 and 4: the two added reads ---------------------------------
    self.advance(milliseconds(5));  // both probe writes have landed
    std::uint8_t type = 0;
    TimePoint t0 = self.now();
    probeconn.b().read_exact(self, &type, 1);
    d.read_type_us = (self.now() - t0).usec();
    std::uint8_t envelope[24];
    t0 = self.now();
    probeconn.b().read_exact(self, envelope, 24);
    d.read_envelope_us = (self.now() - t0).usec();
    // Drain the leftover probe bytes.
    Bytes rest(2);
    probeconn.b().read_exact(self, rest.data(), 2);
  });
  kernel.run();

  // --- line 5: matching cost (the engine charges this per match) -------------
  d.matching_us = fabric::StreamFabric::Options().costs.match.usec();

  // --- consistency: full MPI-over-TCP 1-byte RTT ------------------------------
  runtime::ClusterWorld w(2, media, runtime::Transport::kTcp);
  d.mpi_rtt_us = mpi_pingpong_rtt_us(w, 1, 8);
  return d;
}

int run() {
  banner("Table 1", "MPI round-trip overheads with TCP");

  const Decomposition atm = measure(runtime::Media::kAtm);
  const Decomposition eth = measure(runtime::Media::kEthernet);

  Table t({"component", "ATM_us", "Eth_us", "paper_ATM_us", "paper_Eth_us"});
  t.add_row({"1 byte round-trip latency", fmt(atm.raw_rtt_us), fmt(eth.raw_rtt_us),
             "1065", "925"});
  t.add_row({"25 byte info overhead", fmt(atm.info_write_us), fmt(eth.info_write_us),
             "5", "45"});
  t.add_row({"Read for msg type", fmt(atm.read_type_us), fmt(eth.read_type_us), "85",
             "65"});
  t.add_row({"Read for envelope", fmt(atm.read_envelope_us), fmt(eth.read_envelope_us),
             "85", "65"});
  t.add_row({"Overheads for matching", fmt(atm.matching_us), fmt(eth.matching_us), "35",
             "35"});
  t.print();

  auto added = [](const Decomposition& d) {
    return d.info_write_us + d.read_type_us + d.read_envelope_us + d.matching_us;
  };
  std::printf("\nconsistency: measured MPI/TCP 1 B RTT vs raw + 2 x (added lines)\n");
  std::printf("  ATM: measured %.0f us, predicted %.0f us\n", atm.mpi_rtt_us,
              atm.raw_rtt_us + 2 * added(atm));
  std::printf("  Eth: measured %.0f us, predicted %.0f us\n", eth.mpi_rtt_us,
              eth.raw_rtt_us + 2 * added(eth));
  std::printf("\nnote: the paper tabulates per-message costs; a round trip pays each\n"
              "added component twice (once per direction).\n");
  return 0;
}

}  // namespace
}  // namespace lcmpi::bench

int main() { return lcmpi::bench::run(); }
