// Figure 9: Pairwise interactions on the workstation cluster, 128
// particles, MPI over TCP on Ethernet vs ATM.
//
// The cluster's TCP latencies are so high that only larger problems scale;
// at 128 particles ATM wins clearly — the ring messages are fairly large,
// exploiting ATM's bandwidth, and the switched fabric has no contention
// while every Ethernet message serialises on the shared bus.
#include "bench/common.h"

#include "src/apps/particles.h"

namespace lcmpi::bench {
namespace {

int run() {
  using runtime::Media;
  using runtime::Transport;
  banner("Figure 9", "TCP particle pairwise interactions (128 particles)");

  const auto particles = apps::random_particles(128, 11);

  Table t({"procs", "mpi_tcp_eth_ms", "mpi_tcp_atm_ms"});
  for (int p : {1, 2, 4, 8}) {
    runtime::ClusterWorld we(p, Media::kEthernet, Transport::kTcp);
    const double eth_ms =
        we.run([&](mpi::Comm& c, sim::Actor& self) {
            (void)apps::forces_ring(c, self, particles, apps::sgi_profile());
          })
            .msec();
    runtime::ClusterWorld wa(p, Media::kAtm, Transport::kTcp);
    const double atm_ms =
        wa.run([&](mpi::Comm& c, sim::Actor& self) {
            (void)apps::forces_ring(c, self, particles, apps::sgi_profile());
          })
            .msec();
    t.add_row({std::to_string(p), fmt(eth_ms, 2), fmt(atm_ms, 2)});
  }
  t.print();
  std::printf("\npaper Fig. 9: \"The ATM shows a clear performance gain, primarily\n"
              "because there is no network contention and fairly large messages are\n"
              "used, exploiting ATM's higher bandwidth.\"\n");
  return 0;
}

}  // namespace
}  // namespace lcmpi::bench

int main() { return lcmpi::bench::run(); }
