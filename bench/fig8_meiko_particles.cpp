// Figure 8: Meiko particle pairwise interactions, 24 particles, 1-8
// processes.
//
// The ring exchange sends small partitions (a few hundred bytes), so the
// per-message latency gap between the low-latency MPI and MPICH shows
// directly; with an even load the processes hit the communication phases
// nearly simultaneously, which is the paper's argument for why a lower
// latency mechanism is beneficial here.
#include "bench/common.h"

#include "src/apps/particles.h"

namespace lcmpi::bench {
namespace {

int run() {
  banner("Figure 8", "Meiko particle pairwise interactions (24 particles)");

  const auto particles = apps::random_particles(24, 7);

  Table t({"procs", "mpich_us", "lowlat_us"});
  for (int p : {1, 2, 3, 4, 6, 8}) {
    runtime::MpichMeikoWorld mw(p);
    const double mpich_us =
        mw.run([&](mpi::MpichComm& c, sim::Actor& self) {
            (void)apps::forces_ring(c, self, particles, apps::sparc_profile());
          })
            .usec();
    runtime::MeikoWorld lw(p);
    const double lowlat_us =
        lw.run([&](mpi::Comm& c, sim::Actor& self) {
            (void)apps::forces_ring(c, self, particles, apps::sparc_profile());
          })
            .usec();
    t.add_row({std::to_string(p), fmt(mpich_us, 1), fmt(lowlat_us, 1)});
  }
  t.print();
  std::printf("\npaper Fig. 8: with only 24 particles the problem is latency-bound;\n"
              "the low-latency implementation scales to 8 processes where MPICH's\n"
              "per-message overhead erodes the gain.\n");
  return 0;
}

}  // namespace
}  // namespace lcmpi::bench

int main() { return lcmpi::bench::run(); }
