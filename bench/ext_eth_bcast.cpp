// Extension study: MPI_Bcast over Ethernet link-layer broadcast.
//
// The paper cites Bruck, Dolev, Ho, Rosu & Strong's use of the Ethernet's
// broadcast nature for efficient collectives, and notes that "the
// exploitation of hardware broadcast gives a more efficient implementation
// than would be possible using only point-to-point communication" — the
// same argument it makes for the Meiko hardware broadcast. This harness
// quantifies that claim on our cluster model: broadcast time and solver
// time with the point-to-point tree vs the link-layer broadcast extension.
#include "bench/common.h"

#include "src/apps/solver.h"

namespace lcmpi::bench {
namespace {

using runtime::ClusterWorld;
using runtime::Media;
using runtime::Transport;

double bcast_sweep_us(int ranks, int doubles, bool link_broadcast) {
  mpi::EngineConfig cfg;
  cfg.coll.force = mpi::coll::Algo::kBinomial;  // isolate tree vs link broadcast
  ClusterWorld w(ranks, Media::kEthernet, Transport::kTcp, cfg, {}, link_broadcast);
  return w
      .run([&](mpi::Comm& c, sim::Actor&) {
        std::vector<double> buf(static_cast<std::size_t>(doubles));
        for (int i = 0; i < 5; ++i)
          c.bcast(buf.data(), doubles, mpi::Datatype::double_type(), 0);
        c.barrier();
      })
      .usec() / 5.0;
}

int run() {
  banner("Extension", "MPI_Bcast over Ethernet link-layer broadcast (after Bruck et al.)");

  Table t({"ranks", "doubles", "p2p_tree_us", "link_bcast_us", "speedup"});
  for (int ranks : {2, 4, 8}) {
    for (int doubles : {16, 128, 1024}) {
      const double tree = bcast_sweep_us(ranks, doubles, false);
      const double bc = bcast_sweep_us(ranks, doubles, true);
      t.add_row({std::to_string(ranks), std::to_string(doubles), fmt(tree), fmt(bc),
                 fmt(tree / bc, 2)});
    }
  }
  t.print();

  std::printf("\nEnd-to-end: the Fig. 7 solver workload on the Ethernet cluster\n");
  Table s({"procs", "p2p_tree_s", "link_bcast_s"});
  const apps::LinearSystem sys = apps::LinearSystem::random(96, 5);
  for (int p : {2, 4, 8}) {
    auto run_solver = [&](bool bc) {
      mpi::EngineConfig cfg;
      cfg.coll.force = mpi::coll::Algo::kBinomial;  // pure tree vs link broadcast
      ClusterWorld w(p, Media::kEthernet, Transport::kTcp, cfg, {}, bc);
      return w
          .run([&](mpi::Comm& c, sim::Actor& self) {
            (void)apps::solve_parallel(c, self, sys, apps::sgi_profile());
          })
          .sec();
    };
    s.add_row({std::to_string(p), fmt(run_solver(false), 3), fmt(run_solver(true), 3)});
  }
  s.print();
  return 0;
}

}  // namespace
}  // namespace lcmpi::bench

int main() { return lcmpi::bench::run(); }
