// Randomized differential equivalence: the calendar queue
// (src/sim/kernel.h) must pop the *identical* event sequence as the
// retained binary-heap reference (src/sim/kernel_ref.h) — same (time, seq)
// order, same fire times, same cancellation outcomes — because the kernel
// converts pop order straight into the executed schedule, and every golden
// virtual-time figure in EXPERIMENTS.md is pinned on that order.
//
// Two layers:
//  * queue-level: random push/pop/peek sequences driven directly at both
//    EventQueue backends, honouring the queue contract (push times never
//    precede the last popped time). Workloads include same-timestamp
//    bursts (FIFO tie-break stress), far-future spills (ladder overflow
//    rung), and dense/sparse mixtures that force width re-estimation and
//    bucket-array resizes.
//  * kernel-level: the same seeded actor/timer workload run on
//    Kernel(kCalendar) and Kernel(kHeap), asserting identical event
//    traces, cancellation outcomes, and final virtual clocks.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/kernel.h"
#include "src/sim/kernel_ref.h"
#include "src/util/rng.h"

namespace lcmpi::sim {
namespace {

// ------------------------------------------------------------- queue level

struct QueueWorkload {
  std::uint64_t seed = 1;
  int ops = 6000;
  double p_push = 0.6;        // else pop (if non-empty)
  double p_burst = 0.1;       // same-timestamp burst of 2..17 events
  double p_far = 0.05;        // far-future push (forces overflow rung)
  std::int64_t near_ns = 50'000;   // near-horizon spread
  std::int64_t far_ns = 50'000'000'000;  // far-horizon spread (~50 s)
};

Event make_event(TimePoint t, std::uint64_t seq) {
  Event ev;
  ev.time = t;
  ev.seq = seq;
  return ev;
}

// Drives both backends with an identical op sequence and checks every pop
// and peek agree. Push times respect the contract: never before the time
// of the last pop.
void run_queue_workload(const QueueWorkload& cfg) {
  CalendarQueue cal;
  HeapEventQueue heap;
  Rng rng(cfg.seed);
  std::uint64_t next_seq = 0;
  std::int64_t clock_floor = 0;  // time of last pop

  auto push_both = [&](std::int64_t t_ns) {
    const TimePoint t{t_ns};
    const std::uint64_t seq = next_seq++;
    cal.push(make_event(t, seq));
    heap.push(make_event(t, seq));
  };

  for (int op = 0; op < cfg.ops; ++op) {
    ASSERT_EQ(cal.size(), heap.size()) << "op " << op << " seed " << cfg.seed;
    const double r = rng.next_double();
    if (r < cfg.p_push || cal.size() == 0) {
      const double kind = rng.next_double();
      if (kind < cfg.p_burst) {
        // Same-timestamp burst: FIFO tie-break must hold across backends.
        const std::int64_t t = clock_floor + rng.uniform(0, cfg.near_ns);
        const int n = static_cast<int>(2 + rng.next_below(16));
        for (int i = 0; i < n; ++i) push_both(t);
      } else if (kind < cfg.p_burst + cfg.p_far) {
        // Far-future event: lands in the calendar's overflow rung and must
        // still surface in exact order once the window reaches it.
        push_both(clock_floor + cfg.near_ns + rng.uniform(1, cfg.far_ns));
      } else {
        push_both(clock_floor + rng.uniform(0, cfg.near_ns));
      }
    } else {
      const Event* pc = cal.peek();
      const Event* ph = heap.peek();
      ASSERT_NE(pc, nullptr) << "op " << op << " seed " << cfg.seed;
      ASSERT_NE(ph, nullptr) << "op " << op << " seed " << cfg.seed;
      ASSERT_EQ(pc->time.ns, ph->time.ns) << "op " << op << " seed " << cfg.seed;
      ASSERT_EQ(pc->seq, ph->seq) << "op " << op << " seed " << cfg.seed;
      const Event ec = cal.pop();
      const Event eh = heap.pop();
      ASSERT_EQ(ec.time.ns, eh.time.ns) << "op " << op << " seed " << cfg.seed;
      ASSERT_EQ(ec.seq, eh.seq) << "op " << op << " seed " << cfg.seed;
      ASSERT_GE(ec.time.ns, clock_floor) << "op " << op << " seed " << cfg.seed;
      clock_floor = ec.time.ns;
    }
  }

  // Drain: the remaining pops must agree one-for-one.
  while (cal.size() > 0) {
    ASSERT_EQ(heap.size(), cal.size());
    const Event ec = cal.pop();
    const Event eh = heap.pop();
    ASSERT_EQ(ec.time.ns, eh.time.ns) << "drain, seed " << cfg.seed;
    ASSERT_EQ(ec.seq, eh.seq) << "drain, seed " << cfg.seed;
    ASSERT_GE(ec.time.ns, clock_floor);
    clock_floor = ec.time.ns;
  }
  EXPECT_EQ(heap.size(), 0u);
}

TEST(SchedPropertyTest, RandomPushPopAgreesAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    QueueWorkload cfg;
    cfg.seed = seed;
    run_queue_workload(cfg);
  }
}

TEST(SchedPropertyTest, BurstHeavyWorkloadKeepsFifoTieBreak) {
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    QueueWorkload cfg;
    cfg.seed = seed;
    cfg.p_burst = 0.6;  // mostly same-timestamp bursts
    cfg.near_ns = 500;  // few distinct timestamps -> heavy collisions
    run_queue_workload(cfg);
  }
}

TEST(SchedPropertyTest, FarFutureSpillsThroughOverflowRung) {
  for (std::uint64_t seed = 200; seed < 210; ++seed) {
    QueueWorkload cfg;
    cfg.seed = seed;
    cfg.p_far = 0.4;  // constant ladder spills and rebuilds
    run_queue_workload(cfg);
  }
}

TEST(SchedPropertyTest, PopHeavyDrainAndRefill) {
  for (std::uint64_t seed = 300; seed < 310; ++seed) {
    QueueWorkload cfg;
    cfg.seed = seed;
    cfg.p_push = 0.35;  // queue repeatedly drains to near-empty
    run_queue_workload(cfg);
  }
}

TEST(SchedPropertyTest, OverflowRungIsActuallyExercised) {
  // Sanity on the harness itself: the far-future workload must route events
  // through the overflow rung and trigger rebuilds, otherwise the spill
  // tests above aren't testing what they claim.
  CalendarQueue cal;
  std::uint64_t seq = 0;
  for (int i = 0; i < 64; ++i) cal.push(make_event(TimePoint{i * 100}, seq++));
  std::size_t peak_overflow = 0;
  for (int i = 0; i < 64; ++i) {
    cal.push(make_event(TimePoint{1'000'000'000 + i * 1'000'000}, seq++));
    peak_overflow = std::max(peak_overflow, cal.overflow_size());
  }
  EXPECT_GT(peak_overflow, 0u);
  std::int64_t prev = -1;
  while (cal.size() > 0) {
    const Event ev = cal.pop();
    EXPECT_GT(ev.time.ns, prev);
    prev = ev.time.ns;
  }
  EXPECT_GT(cal.rebuild_count(), 0u);
}

TEST(SchedPropertyTest, BucketArrayGrowsAndShrinksWithPopulation) {
  CalendarQueue cal;
  const std::size_t initial = cal.bucket_count();
  std::uint64_t seq = 0;
  for (int i = 0; i < 100'000; ++i)
    cal.push(make_event(TimePoint{(i % 1000) * 10}, seq++));
  EXPECT_GT(cal.bucket_count(), initial);
  while (cal.size() > 8) (void)cal.pop();
  // Shrink happens on the rebuild after the population collapses; push a
  // far event to force one.
  cal.push(make_event(TimePoint{100'000'000'000}, seq++));
  while (cal.size() > 0) (void)cal.pop();
  EXPECT_LE(cal.bucket_count(), initial * 2);
}

// ------------------------------------------------------------ kernel level

// One seeded workload of actors, cancellable timers, reschedules (cancel +
// re-arm), and trigger traffic. Returns the full observable trace.
struct KernelTrace {
  std::vector<std::string> events;     // "<ns>:<label>" in execution order
  std::vector<int> cancelled;          // timer ids whose callbacks never ran
  std::int64_t final_ns = 0;
  std::uint64_t executed = 0;
};

KernelTrace run_kernel_workload(SchedBackend backend, std::uint64_t seed) {
  KernelTrace trace;
  Kernel k(backend);
  Rng rng(seed);
  Trigger tick;
  std::vector<EventHandle> handles(64);
  std::vector<bool> ran(512, false);

  // A driver actor that schedules, cancels, and reschedules timers.
  k.spawn("driver", [&](Actor& self) {
    int next_id = 0;
    for (int round = 0; round < 120; ++round) {
      const double r = rng.next_double();
      if (r < 0.5 && next_id < 512) {
        const int id = next_id++;
        const int slot = id % 64;
        const Duration d = microseconds(rng.uniform(1, 400));
        handles[slot] = k.schedule(d, [&trace, &ran, &k, id] {
          ran[static_cast<std::size_t>(id)] = true;
          trace.events.push_back(std::to_string(k.now().ns) + ":t" + std::to_string(id));
        });
      } else if (r < 0.7) {
        handles[rng.next_below(64)].cancel();  // may be stale/fired: no-op
      } else if (r < 0.85 && next_id < 512) {
        // Reschedule: cancel a slot then arm a fresh timer in it.
        const int slot = static_cast<int>(rng.next_below(64));
        handles[static_cast<std::size_t>(slot)].cancel();
        const int id = next_id++;
        const Duration d = microseconds(rng.uniform(1, 400));
        handles[static_cast<std::size_t>(slot)] =
            k.schedule(d, [&trace, &ran, &k, id] {
              ran[static_cast<std::size_t>(id)] = true;
              trace.events.push_back(std::to_string(k.now().ns) + ":t" +
                                     std::to_string(id));
            });
      } else {
        tick.notify_all();
      }
      self.advance(microseconds(rng.uniform(1, 50)));
    }
    tick.notify_all();
  });

  // Waiter actors racing timeouts against trigger notifies (exercises the
  // allocation-free wake path and cell recycling under both backends).
  for (int w = 0; w < 3; ++w) {
    k.spawn("waiter" + std::to_string(w), [&, w](Actor& self) {
      for (int i = 0; i < 40; ++i) {
        const bool fired = self.wait_with_timeout(tick, microseconds(37 + w * 13));
        trace.events.push_back(std::to_string(self.now().ns) + ":w" +
                               std::to_string(w) + (fired ? "+" : "-"));
      }
    });
  }

  k.run();
  for (int id = 0; id < 512; ++id)
    if (!ran[static_cast<std::size_t>(id)]) trace.cancelled.push_back(id);
  trace.final_ns = k.now().ns;
  trace.executed = k.events_executed();
  return trace;
}

TEST(SchedPropertyTest, KernelWorkloadIdenticalAcrossBackends) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const KernelTrace cal = run_kernel_workload(SchedBackend::kCalendar, seed);
    const KernelTrace heap = run_kernel_workload(SchedBackend::kHeap, seed);
    ASSERT_EQ(cal.events, heap.events) << "seed " << seed;
    EXPECT_EQ(cal.cancelled, heap.cancelled) << "seed " << seed;
    EXPECT_EQ(cal.final_ns, heap.final_ns) << "seed " << seed;
    EXPECT_EQ(cal.executed, heap.executed) << "seed " << seed;
  }
}

TEST(SchedPropertyTest, BackendSelectionFactoryAndNames) {
  auto cal = make_event_queue(SchedBackend::kCalendar);
  auto heap = make_event_queue(SchedBackend::kHeap);
  EXPECT_STREQ(cal->name(), "calendar");
  EXPECT_STREQ(heap->name(), "heap");
  Kernel kc(SchedBackend::kCalendar);
  Kernel kh(SchedBackend::kHeap);
  EXPECT_EQ(kc.backend(), SchedBackend::kCalendar);
  EXPECT_EQ(kh.backend(), SchedBackend::kHeap);
  EXPECT_STREQ(kc.scheduler_name(), "calendar");
  EXPECT_STREQ(kh.scheduler_name(), "heap");
}

}  // namespace
}  // namespace lcmpi::sim
