// Golden determinism: the paper-figure workloads must produce *bit-identical*
// virtual times across host-side optimizations. The constants below were
// harvested from the original linear-scan matcher and allocating event
// kernel; the bucketed matcher (src/core/matching.h) and the pooled event
// kernel (src/sim/kernel.*) must reproduce them exactly, because host-time
// engineering is only legitimate here if it leaves the model's physics —
// including the per-entry matching charges — untouched.
//
// If a test in this file fails after an intentional cost-model change (new
// MpiCosts rates, protocol change, fabric timing change), re-harvest the
// constants and say so in the commit; if it fails after a "pure perf"
// change, the change is not pure.
// The fig4/fig6 constants (ATM protocol ladder, TCP stream bandwidth) were
// harvested from the binary-heap event kernel immediately before the
// calendar-queue swap; the calendar backend must reproduce them exactly,
// and the cross-backend test at the bottom re-runs key figures under the
// retained heap reference (LCMPI_SCHED=heap) to pin that both backends
// execute the identical schedule.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>

#include "src/apps/solver.h"
#include "src/atmnet/atm.h"
#include "src/atmnet/ethernet.h"
#include "src/core/datatype.h"
#include "src/inet/cluster.h"
#include "src/inet/tcp.h"
#include "src/runtime/world.h"

namespace lcmpi {
namespace {

/// Forces one environment variable for every Kernel constructed in scope.
class ScopedEnv {
 public:
  ScopedEnv(const char* var, const char* value) : var_(var) {
    const char* old = std::getenv(var);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    ::setenv(var, value, /*overwrite=*/1);
  }
  ~ScopedEnv() {
    if (had_)
      ::setenv(var_, saved_.c_str(), 1);
    else
      ::unsetenv(var_);
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* var_;
  std::string saved_;
  bool had_ = false;
};

/// Forces a scheduler backend (LCMPI_SCHED=calendar|heap) in scope.
class ScopedSchedBackend : public ScopedEnv {
 public:
  explicit ScopedSchedBackend(const char* backend)
      : ScopedEnv("LCMPI_SCHED", backend) {}
};

/// Forces an actor backend (LCMPI_ACTORS=fibers|threads) in scope.
class ScopedActorBackend : public ScopedEnv {
 public:
  explicit ScopedActorBackend(const char* backend)
      : ScopedEnv("LCMPI_ACTORS", backend) {}
};

/// Steady-state ping-pong: one warm-up round trip, then kIters timed round
/// trips on rank 0's virtual clock. Mirrors bench/fig2_latency.cpp.
template <typename World, typename CommT>
std::int64_t pingpong_ns(World& w, int bytes, int iters) {
  std::int64_t elapsed_ns = 0;
  w.run([&](CommT& c, sim::Actor& self) {
    Bytes buf(static_cast<std::size_t>(bytes), std::byte{5});
    Bytes in(buf.size());
    auto t = mpi::Datatype::byte_type();
    if (c.rank() == 0) {
      c.send(buf.data(), bytes, t, 1, 1);
      c.recv(in.data(), bytes, t, 1, 2);
      const TimePoint t0 = self.now();
      for (int i = 0; i < iters; ++i) {
        c.send(buf.data(), bytes, t, 1, 1);
        c.recv(in.data(), bytes, t, 1, 2);
      }
      elapsed_ns = (self.now() - t0).ns;
    } else {
      for (int i = 0; i < iters + 1; ++i) {
        c.recv(in.data(), bytes, t, 0, 1);
        c.send(in.data(), bytes, t, 0, 2);
      }
    }
  });
  return elapsed_ns;
}

TEST(GoldenDeterminismTest, Fig2MeikoPingpongVirtualTimes) {
  struct Point { int bytes; std::int64_t ns; };
  // 10 timed iterations, Meiko low-latency MPI, 2 ranks.
  constexpr Point kGolden[] = {
      {1, 1006760},      {2, 1009400},    {4, 1014680},   {8, 1025240},
      {16, 1046360},     {32, 1088600},   {64, 1173080},  {128, 1342040},
      {180, 1479320},    {256, 1534520},  {512, 1665800}, {1024, 1928360},
      {2048, 2453480},   {4096, 3503740},
  };
  for (const Point& p : kGolden) {
    runtime::MeikoWorld w(2);
    EXPECT_EQ((pingpong_ns<runtime::MeikoWorld, mpi::Comm>(w, p.bytes, 10)), p.ns)
        << "fig2 " << p.bytes << "B drifted from seed";
  }
}

TEST(GoldenDeterminismTest, Fig2MpichBaselineVirtualTime) {
  runtime::MpichMeikoWorld w(2);
  EXPECT_EQ((pingpong_ns<runtime::MpichMeikoWorld, mpi::MpichComm>(w, 64, 10)),
            2047680);
}

TEST(GoldenDeterminismTest, Fig5TcpAtmPingpongVirtualTimes) {
  struct Point { int bytes; std::int64_t ns; };
  // 4 timed iterations, ATM media over the TCP transport stack.
  constexpr Point kGolden[] = {{16, 6469960}, {1024, 7891528}};
  for (const Point& p : kGolden) {
    runtime::ClusterWorld w(2, runtime::Media::kAtm, runtime::Transport::kTcp);
    EXPECT_EQ((pingpong_ns<runtime::ClusterWorld, mpi::Comm>(w, p.bytes, 4)), p.ns)
        << "fig5_tcp " << p.bytes << "B drifted from seed";
  }
}

/// Fig 4 protocol-ladder round trips: raw AAL3/4 datagrams vs UDP vs TCP on
/// the ATM cluster. One warm-up, then `iters` timed round trips. Mirrors
/// bench/fig4_atm_protocols.cpp.
std::int64_t fig4_dgram_rtt_ns(bool raw_api, int bytes, int iters = 8) {
  sim::Kernel kernel;
  atmnet::AtmNetwork net{kernel, 2};
  inet::InetCluster cluster{net, inet::atm_profile()};
  inet::DatagramSocket& a =
      raw_api ? cluster.raw_socket(0, 700) : cluster.udp_socket(0, 700);
  inet::DatagramSocket& b =
      raw_api ? cluster.raw_socket(1, 701) : cluster.udp_socket(1, 701);
  std::int64_t elapsed = 0;
  kernel.spawn("ping", [&, bytes, iters](sim::Actor& self) {
    a.send_to(self, 1, 701, Bytes(static_cast<std::size_t>(bytes)));
    (void)a.recv(self);
    const TimePoint t0 = self.now();
    for (int i = 0; i < iters; ++i) {
      a.send_to(self, 1, 701, Bytes(static_cast<std::size_t>(bytes)));
      (void)a.recv(self);
    }
    elapsed = (self.now() - t0).ns;
  });
  kernel.spawn("pong", [&, iters](sim::Actor& self) {
    for (int i = 0; i < iters + 1; ++i) {
      inet::Datagram d = b.recv(self);
      b.send_to(self, d.src_host, d.src_port, std::move(d.data));
    }
  });
  kernel.run();
  return elapsed;
}

std::int64_t fig4_tcp_rtt_ns(int bytes, int iters = 8) {
  sim::Kernel kernel;
  atmnet::AtmNetwork net{kernel, 2};
  inet::InetCluster cluster{net, inet::atm_profile()};
  inet::TcpConnection& c = cluster.tcp_pair(0, 1);
  std::int64_t elapsed = 0;
  kernel.spawn("ping", [&, bytes, iters](sim::Actor& self) {
    Bytes buf(static_cast<std::size_t>(bytes), std::byte{1});
    Bytes in(buf.size());
    c.a().write(self, buf);
    c.a().read_exact(self, in.data(), in.size());
    const TimePoint t0 = self.now();
    for (int i = 0; i < iters; ++i) {
      c.a().write(self, buf);
      c.a().read_exact(self, in.data(), in.size());
    }
    elapsed = (self.now() - t0).ns;
  });
  kernel.spawn("pong", [&, bytes, iters](sim::Actor& self) {
    Bytes in(static_cast<std::size_t>(bytes));
    for (int i = 0; i < iters + 1; ++i) {
      c.b().read_exact(self, in.data(), in.size());
      c.b().write(self, in);
    }
  });
  kernel.run();
  return elapsed;
}

TEST(GoldenDeterminismTest, Fig4AtmProtocolVirtualTimes) {
  struct Point { int bytes; std::int64_t aal4_ns, udp_ns, tcp_ns; };
  // 8 timed round trips per protocol on the 2-host ATM cluster.
  constexpr Point kGolden[] = {
      {1, 7255520, 8695520, 8695520},
      {64, 7544160, 8984160, 9035936},
      {1024, 9577920, 11017920, 11069696},
  };
  for (const Point& p : kGolden) {
    EXPECT_EQ(fig4_dgram_rtt_ns(/*raw_api=*/true, p.bytes), p.aal4_ns)
        << "fig4 aal4 " << p.bytes << "B drifted from seed";
    EXPECT_EQ(fig4_dgram_rtt_ns(/*raw_api=*/false, p.bytes), p.udp_ns)
        << "fig4 udp " << p.bytes << "B drifted from seed";
    EXPECT_EQ(fig4_tcp_rtt_ns(p.bytes), p.tcp_ns)
        << "fig4 tcp " << p.bytes << "B drifted from seed";
  }
}

/// Fig 6 one-way TCP stream: `reps` back-to-back writes, timed on the
/// sender from after a warm-up write until the receiver's final-ack byte
/// returns. Mirrors bench/fig6_tcp_bandwidth.cpp.
std::int64_t fig6_raw_tcp_stream_ns(runtime::Media media, int bytes,
                                    int reps = 3) {
  sim::Kernel kernel;
  std::unique_ptr<atmnet::Network> net;
  std::unique_ptr<inet::InetCluster> cluster;
  if (media == runtime::Media::kAtm) {
    net = std::make_unique<atmnet::AtmNetwork>(kernel, 2);
    cluster = std::make_unique<inet::InetCluster>(*net, inet::atm_profile());
  } else {
    net = std::make_unique<atmnet::EthernetNetwork>(kernel, 2);
    cluster = std::make_unique<inet::InetCluster>(*net, inet::ethernet_profile());
  }
  inet::TcpConnection& c = cluster->tcp_pair(0, 1);
  std::int64_t elapsed = 0;
  kernel.spawn("tx", [&, bytes, reps](sim::Actor& self) {
    Bytes buf(static_cast<std::size_t>(bytes), std::byte{1});
    Bytes fin(1);
    c.a().write(self, buf);
    c.a().read_exact(self, fin.data(), 1);
    const TimePoint t0 = self.now();
    for (int i = 0; i < reps; ++i) c.a().write(self, buf);
    c.a().read_exact(self, fin.data(), 1);
    elapsed = (self.now() - t0).ns;
  });
  kernel.spawn("rx", [&, bytes, reps](sim::Actor& self) {
    Bytes in(static_cast<std::size_t>(bytes));
    Bytes fin(1, std::byte{1});
    for (int i = 0; i < reps + 1; ++i) {
      c.b().read_exact(self, in.data(), in.size());
      if (i == 0 || i == reps) c.b().write(self, fin);
    }
  });
  kernel.run();
  return elapsed;
}

std::int64_t fig6_mpi_bw_ns(runtime::Media media, int bytes, int reps = 3) {
  runtime::ClusterWorld w(2, media, runtime::Transport::kTcp);
  std::int64_t elapsed = 0;
  w.run([&, bytes, reps](mpi::Comm& c, sim::Actor& self) {
    Bytes buf(static_cast<std::size_t>(bytes), std::byte{3});
    auto t = mpi::Datatype::byte_type();
    if (c.rank() == 0) {
      c.send(buf.data(), bytes, t, 1, 1);
      std::uint8_t fin = 0;
      c.recv(&fin, 1, t, 1, 2);
      const TimePoint t0 = self.now();
      for (int i = 0; i < reps; ++i) c.send(buf.data(), bytes, t, 1, 1);
      c.recv(&fin, 1, t, 1, 2);
      elapsed = (self.now() - t0).ns;
    } else {
      std::uint8_t fin = 1;
      for (int i = 0; i < reps + 1; ++i) {
        c.recv(buf.data(), bytes, t, 0, 1);
        if (i == 0 || i == reps) c.send(&fin, 1, t, 0, 2);
      }
    }
  });
  return elapsed;
}

TEST(GoldenDeterminismTest, Fig6TcpStreamVirtualTimes) {
  struct Point { int bytes; std::int64_t eth_ns, atm_ns; };
  // 3 timed back-to-back stream writes over the raw TCP endpoints.
  constexpr Point kGolden[] = {
      {4096, 11935680, 2401037},
      {65536, 179705880, 14831254},
  };
  for (const Point& p : kGolden) {
    EXPECT_EQ(fig6_raw_tcp_stream_ns(runtime::Media::kEthernet, p.bytes), p.eth_ns)
        << "fig6 raw eth " << p.bytes << "B drifted from seed";
    EXPECT_EQ(fig6_raw_tcp_stream_ns(runtime::Media::kAtm, p.bytes), p.atm_ns)
        << "fig6 raw atm " << p.bytes << "B drifted from seed";
  }
}

TEST(GoldenDeterminismTest, Fig6MpiBandwidthVirtualTimes) {
  EXPECT_EQ(fig6_mpi_bw_ns(runtime::Media::kEthernet, 16384), 51318975);
  EXPECT_EQ(fig6_mpi_bw_ns(runtime::Media::kAtm, 16384), 11552671);
}

TEST(GoldenDeterminismTest, KeyFiguresIdenticalUnderHeapReference) {
  // The same pinned constants re-checked under the retained heap backend:
  // the calendar queue and the reference must execute the identical event
  // schedule, so every figure is backend-invariant.
  for (const char* backend : {"heap", "calendar"}) {
    ScopedSchedBackend scope(backend);
    {
      runtime::MeikoWorld w(2);
      EXPECT_EQ((pingpong_ns<runtime::MeikoWorld, mpi::Comm>(w, 64, 10)),
                1173080) << "fig2 64B under " << backend;
    }
    {
      runtime::ClusterWorld w(2, runtime::Media::kAtm, runtime::Transport::kTcp);
      EXPECT_EQ((pingpong_ns<runtime::ClusterWorld, mpi::Comm>(w, 1024, 4)),
                7891528) << "fig5 1024B under " << backend;
    }
    EXPECT_EQ(fig4_tcp_rtt_ns(64), 9035936) << "fig4 tcp 64B under " << backend;
    EXPECT_EQ(fig6_raw_tcp_stream_ns(runtime::Media::kAtm, 4096), 2401037)
        << "fig6 raw atm 4096B under " << backend;
  }
}

TEST(GoldenDeterminismTest, KeyFiguresIdenticalAcrossActorAndSchedBackends) {
  // The full backend cross-product — {fiber, thread} actors × {calendar,
  // heap} scheduler — re-checked against the pinned constants. The actor
  // backend decides only *how* control transfers to an actor, never *which*
  // actor runs next, so every figure must be invariant across all four
  // combinations.
  // Collective selection must stay on the auto table: a forced-algorithm
  // CI leg (LCMPI_COLL=...) must not perturb these figures — on the Meiko
  // the solver's collectives ride the hardware broadcast/barrier, which a
  // software-algorithm force never disables.
  ScopedEnv coll_scope("LCMPI_COLL", "");
  for (const char* actors : {"fibers", "threads"}) {
    ScopedActorBackend actor_scope(actors);
    for (const char* sched : {"calendar", "heap"}) {
      ScopedSchedBackend sched_scope(sched);
      {
        runtime::MeikoWorld w(2);
        EXPECT_EQ((pingpong_ns<runtime::MeikoWorld, mpi::Comm>(w, 64, 10)),
                  1173080) << "fig2 64B under " << actors << "/" << sched;
      }
      {
        runtime::ClusterWorld w(2, runtime::Media::kAtm,
                                runtime::Transport::kTcp);
        EXPECT_EQ((pingpong_ns<runtime::ClusterWorld, mpi::Comm>(w, 1024, 4)),
                  7891528) << "fig5 1024B under " << actors << "/" << sched;
      }
      EXPECT_EQ(fig4_tcp_rtt_ns(64), 9035936)
          << "fig4 tcp 64B under " << actors << "/" << sched;
      EXPECT_EQ(fig6_raw_tcp_stream_ns(runtime::Media::kAtm, 4096), 2401037)
          << "fig6 raw atm 4096B under " << actors << "/" << sched;
    }
    // One solver point per actor backend: exercises collectives and the
    // C API-free MPI path with many concurrent ranks.
    runtime::MeikoWorld w(4);
    const Duration d = w.run([&](mpi::Comm& c, sim::Actor& self) {
      (void)apps::solve_parallel(c, self, apps::LinearSystem::random(96, 42),
                                 apps::sparc_profile());
    });
    EXPECT_EQ(d.ns, 28680492) << "fig7 p=4 under " << actors;
  }
}

TEST(GoldenDeterminismTest, Fig7SolverVirtualTimes) {
  ScopedEnv coll_scope("LCMPI_COLL", "");  // pin the auto selection table
  const apps::LinearSystem sys = apps::LinearSystem::random(96, 42);
  struct Point { int p; std::int64_t ns; };
  // Re-harvested when the solver's closing barrier moved onto the modelled
  // Elan hardware barrier (it was a software dissemination barrier before);
  // p=1 skips the barrier entirely and is unchanged.
  constexpr Point kLowlat[] = {{1, 60828800},  {2, 43534892}, {4, 28680492},
                               {8, 21248492},  {16, 17522892}};
  for (const Point& pt : kLowlat) {
    runtime::MeikoWorld w(pt.p);
    const Duration d = w.run([&](mpi::Comm& c, sim::Actor& self) {
      (void)apps::solve_parallel(c, self, sys, apps::sparc_profile());
    });
    EXPECT_EQ(d.ns, pt.ns) << "fig7 lowlat p=" << pt.p << " drifted from seed";
  }
  constexpr Point kMpich[] = {{1, 60828800}, {4, 63661891}};
  for (const Point& pt : kMpich) {
    runtime::MpichMeikoWorld w(pt.p);
    const Duration d = w.run([&](mpi::MpichComm& c, sim::Actor& self) {
      (void)apps::solve_parallel(c, self, sys, apps::sparc_profile());
    });
    EXPECT_EQ(d.ns, pt.ns) << "fig7 mpich p=" << pt.p << " drifted from seed";
  }
}

}  // namespace
}  // namespace lcmpi
